// Bandwidth tuning walkthrough (paper Section 3).
//
// Shows why bandwidth selection dominates KDE estimation quality: the same
// sample is evaluated under Scott's rule, Smoothed Cross Validation, the
// feedback-optimized batch bandwidth, and deliberately broken bandwidths
// (too small / too large — Figure 2's over/underfitting), on a correlated
// dataset where the normal-reference rule misfires.

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "kde/batch.h"
#include "kde/engine.h"
#include "kde/kde_estimator.h"
#include "kde/scv.h"
#include "parallel/device.h"
#include "runtime/driver.h"
#include "runtime/executor.h"
#include "workload/workload.h"

namespace {

double Evaluate(fkde::KdeEngine* engine,
                const std::vector<fkde::Query>& test) {
  double total = 0.0;
  for (const auto& query : test) {
    total += std::abs(engine->Estimate(query.box) - query.selectivity);
  }
  return total / static_cast<double>(test.size());
}

void Report(const char* label, fkde::KdeEngine* engine,
            const std::vector<fkde::Query>& test) {
  std::printf("  %-22s error %.5f   h = [", label, Evaluate(engine, test));
  for (std::size_t k = 0; k < engine->dims(); ++k) {
    std::printf("%s%.4g", k ? ", " : "", engine->bandwidth()[k]);
  }
  std::printf("]\n");
}

}  // namespace

int main() {
  using namespace fkde;

  Table table = GenerateForestLike(150000, /*seed=*/11);
  table = ProjectRandomAttributes(table, 3, /*seed=*/12);
  Rng rng(13);

  WorkloadGenerator generator(table);
  const WorkloadSpec dt = ParseWorkloadName("dt").ValueOrDie();
  const std::vector<Query> training = generator.Generate(dt, 100, &rng);
  const std::vector<Query> test = generator.Generate(dt, 200, &rng);

  Device device(DeviceProfile::OpenClCpu());
  DeviceSample sample(&device, 1024, table.num_cols());
  sample.LoadFromTable(table, &rng).AbortIfError("sample");
  KdeEngine engine(&sample, KernelType::kGaussian);

  std::printf("bandwidth selection on a correlated 3D dataset "
              "(terrain clusters):\n");
  const std::vector<double> scott = engine.bandwidth();
  Report("scott (heuristic)", &engine, test);

  // Figure 2(a): a bandwidth 50x too small overfits the sample.
  std::vector<double> tiny = scott;
  for (double& h : tiny) h *= 0.02;
  engine.SetBandwidth(tiny).AbortIfError("tiny bandwidth");
  Report("scott / 50 (overfit)", &engine, test);

  // Figure 2(b): a bandwidth 50x too large loses all local structure.
  std::vector<double> huge = scott;
  for (double& h : huge) h *= 50.0;
  engine.SetBandwidth(huge).AbortIfError("huge bandwidth");
  Report("scott * 50 (underfit)", &engine, test);

  // Statistics-style selection: smoothed cross validation on the sample.
  const std::size_t s = sample.size();
  std::vector<float> staging(s * sample.dims());
  device.CopyToHost(sample.buffer(), 0, staging.size(), staging.data());
  std::vector<double> host_sample(staging.begin(), staging.end());
  const std::vector<double> scv =
      ScvSelectBandwidth(host_sample, s, sample.dims(), scott).ValueOrDie();
  engine.SetBandwidth(scv).AbortIfError("scv bandwidth");
  Report("smoothed cross valid.", &engine, test);

  // The paper's contribution: minimize the actual estimation error over
  // observed queries (optimization problem 5).
  engine.SetBandwidth(scott).AbortIfError("reset");
  BatchOptions options;
  const BatchReport report =
      OptimizeBandwidthBatch(&engine, training, options, &rng).ValueOrDie();
  Report("feedback-optimized", &engine, test);
  std::printf("\nbatch optimization: training loss %.3g -> %.3g in %zu "
              "objective evaluations\n",
              report.initial_error, report.final_error, report.evaluations);
  return 0;
}
