// GPU offload anatomy (paper Section 5).
//
// Dissects one estimate + feedback round trip on the simulated GPU: which
// kernels launch, what crosses the PCI-Express bus, and what the device
// cost model charges. Demonstrates the transfer-efficiency claim — after
// the one-time sample upload, per-query traffic is a few hundred bytes.

#include <cstdio>

#include "common/rng.h"
#include "data/generators.h"
#include "kde/kde_estimator.h"
#include "parallel/device.h"
#include "runtime/executor.h"
#include "workload/workload.h"

namespace {

void PrintDelta(const char* stage, const fkde::TransferLedger& before,
                const fkde::TransferLedger& after, double modeled_ms) {
  std::printf("  %-28s %3llu launches  %6llu B down  %6llu B up   %.3f ms\n",
              stage,
              static_cast<unsigned long long>(after.kernel_launches -
                                              before.kernel_launches),
              static_cast<unsigned long long>(after.bytes_to_device -
                                              before.bytes_to_device),
              static_cast<unsigned long long>(after.bytes_to_host -
                                              before.bytes_to_host),
              modeled_ms);
}

}  // namespace

int main() {
  using namespace fkde;

  ClusterBoxesParams params;
  params.rows = 200000;
  params.dims = 8;
  Table table = GenerateClusterBoxes(params, /*seed=*/3);
  Executor executor(&table);
  executor.BuildIndex();

  Device device(DeviceProfile::SimulatedGtx460());
  std::printf("device: %s  (launch %.0f us, transfer %.0f us + %.1f GB/s, "
              "%.2g point-attrs/s)\n\n",
              device.profile().name.c_str(),
              device.profile().launch_latency_s * 1e6,
              device.profile().transfer_latency_s * 1e6,
              device.profile().transfer_bandwidth / 1e9,
              device.profile().compute_throughput);

  // Model construction: the ONE bulk transfer of the estimator's life.
  TransferLedger before = device.ledger();
  double t0 = device.ModeledSeconds();
  KdeConfig config;
  config.sample_size = 16384;
  auto estimator = KdeSelectivityEstimator::Create(
                       KdeSelectivityEstimator::Mode::kAdaptive, &device,
                       &table, config)
                       .MoveValueOrDie();
  PrintDelta("ANALYZE (sample upload)", before, device.ledger(),
             (device.ModeledSeconds() - t0) * 1e3);

  // One query through the full Figure 3 pipeline.
  Rng rng(4);
  WorkloadGenerator generator(table);
  const Query query =
      generator.GenerateOne(ParseWorkloadName("dt").ValueOrDie(), &rng);

  before = device.ledger();
  t0 = device.ModeledSeconds();
  const double estimate = estimator->EstimateSelectivity(query.box);
  PrintDelta("estimate (bounds->scalar)", before, device.ledger(),
             (device.ModeledSeconds() - t0) * 1e3);

  before = device.ledger();
  t0 = device.ModeledSeconds();
  estimator->ObserveTrueSelectivity(query.box, query.selectivity);
  PrintDelta("feedback (adapt + karma)", before, device.ledger(),
             (device.ModeledSeconds() - t0) * 1e3);

  std::printf("\nestimate %.5f vs true %.5f  (sample %zu x %zud floats "
              "stays resident)\n",
              estimate, query.selectivity, config.sample_size,
              table.num_cols());

  // Steady-state traffic over 100 queries.
  const std::vector<Query> workload = generator.Generate(
      ParseWorkloadName("dt").ValueOrDie(), 100, &rng);
  before = device.ledger();
  for (const Query& q : workload) {
    (void)estimator->EstimateSelectivity(q.box);
    estimator->ObserveTrueSelectivity(q.box, q.selectivity);
  }
  const TransferLedger& after = device.ledger();
  std::printf("steady state: %.0f B/query down, %.0f B/query up "
              "(vs %.0f kB to re-upload the sample)\n",
              (after.bytes_to_device - before.bytes_to_device) / 100.0,
              (after.bytes_to_host - before.bytes_to_host) / 100.0,
              config.sample_size * table.num_cols() * 4 / 1024.0);
  return 0;
}
