// Evolving database demo (paper Section 6.5 in miniature).
//
// An archive-style workload: clusters of fresh data arrive, old clusters
// are deleted, and queries favor recent data. A static Scott's-rule model
// goes stale; the self-tuning estimator tracks the changes through
// RMSprop bandwidth updates, reservoir inserts, and Karma-based sample
// replacement.

#include <cstdio>

#include "kde/kde_estimator.h"
#include "parallel/device.h"
#include "runtime/evolving_runner.h"
#include "runtime/executor.h"
#include "runtime/factory.h"
#include "workload/evolving.h"

int main() {
  using namespace fkde;

  EvolvingParams params;
  params.dims = 5;
  params.cycles = 6;

  // Phase 0: load the initial clusters so the estimators have data to
  // sample at construction time (the paper builds after the initial load).
  Table table(params.dims);
  Executor executor(&table);
  EvolvingWorkload preload(params, /*seed=*/5);
  {
    EvolvingEvent event;
    std::size_t initial =
        params.initial_clusters * params.tuples_per_cluster;
    while (initial > 0 && preload.Next(table, &event)) {
      if (event.kind == EvolvingEvent::Kind::kInsert) {
        executor.Insert(event.row, event.tag);
        --initial;
      }
      // Pre-load queries are dropped; the run below records everything.
    }
  }

  Device device(DeviceProfile::SimulatedGtx460());
  EstimatorBuildContext context;
  context.device = &device;
  context.executor = &executor;

  auto run = [&](const char* name) {
    // Fresh copy of the workload stream and table for each estimator so
    // the comparisons see identical histories.
    Table run_table = table;
    Executor run_executor(&run_table);
    EstimatorBuildContext run_context = context;
    run_context.executor = &run_executor;
    auto estimator = BuildEstimator(name, run_context).MoveValueOrDie();
    EvolvingWorkload workload(params, /*seed=*/5);
    // Skip the preload part of the stream (already applied to the table).
    EvolvingEvent event;
    std::size_t initial =
        params.initial_clusters * params.tuples_per_cluster;
    Table scratch(params.dims);
    while (initial > 0 && workload.Next(scratch, &event)) {
      if (event.kind == EvolvingEvent::Kind::kInsert) {
        scratch.Insert(event.row, event.tag);
        --initial;
      }
    }
    const EvolvingTrace trace =
        RunEvolving(estimator.get(), &run_executor, &workload);
    std::printf("%-14s", name);
    const std::size_t window = trace.absolute_errors.size() / 6;
    for (std::size_t w = 0; w < 6; ++w) {
      std::printf("  %.4f",
                  trace.WindowMean(w * window, (w + 1) * window));
    }
    std::printf("\n");
  };

  std::printf("mean absolute error per sixth of the evolving run "
              "(%zu cycles of insert+archive):\n", params.cycles);
  std::printf("%-14s  %s\n", "estimator",
              "early  ->                              late");
  run("kde_heuristic");
  run("stholes");
  run("kde_adaptive");
  std::printf("\nkde_adaptive tracks the moving clusters; the static "
              "heuristic model drifts off.\n");
  return 0;
}
