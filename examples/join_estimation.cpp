// Join selectivity estimation (the paper's Section 8 future-work item).
//
// PK-FK joins have a known result distribution: |R JOIN S| = |S| and a
// uniform sample of S joined to its PK partners is a uniform sample of
// the join result. Feeding that sample into the KDE machinery yields
// selectivity estimates for multidimensional predicates over the join —
// here, a customers/orders schema where order value correlates with
// customer income, which a per-table independence approach cannot see.

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "data/join.h"
#include "histogram/avi.h"
#include "kde/batch.h"
#include "kde/engine.h"
#include "workload/workload.h"

int main() {
  using namespace fkde;
  Rng rng(1);

  // Customers: key, income, age. Orders: customer_key, amount, quantity.
  // Order amounts scale with the customer's income (cross-table
  // correlation, invisible to independent per-table statistics).
  const std::size_t num_customers = 20000;
  const std::size_t num_orders = 120000;
  Table customers(3);
  for (std::size_t i = 0; i < num_customers; ++i) {
    const double income = std::exp(rng.Gaussian(10.5, 0.6));
    const double age = std::clamp(rng.Gaussian(42.0, 14.0), 18.0, 95.0);
    customers.Insert(std::vector<double>{static_cast<double>(i), income,
                                         age});
  }
  Table orders(3);
  for (std::size_t i = 0; i < num_orders; ++i) {
    const std::size_t customer = rng.UniformInt(num_customers);
    const double income = customers.At(customer, 1);
    const double amount =
        income * rng.Uniform(0.001, 0.01) + rng.Exponential(1.0 / 20.0);
    const double quantity = 1.0 + rng.Exponential(0.5);
    orders.Insert(std::vector<double>{static_cast<double>(customer), amount,
                                      quantity});
  }

  JoinSpec spec;
  spec.pk_table = &customers;
  spec.pk_column = 0;
  spec.fk_table = &orders;
  spec.fk_column = 0;
  spec.pk_attributes = {1, 2};  // income, age
  spec.fk_attributes = {1, 2};  // amount, quantity

  // Sample the join result (no materialization needed) and build the KDE
  // model on it; materialize only to compute exact truths for evaluation.
  Table join_sample = SampleJoin(spec, 1024, &rng).MoveValueOrDie();
  Table join_full = MaterializeJoin(spec).MoveValueOrDie();

  Device device(DeviceProfile::SimulatedGtx460());
  DeviceSample sample(&device, join_sample.num_rows(),
                      join_sample.num_cols());
  sample.LoadRows(join_sample.raw(), join_sample.num_rows())
      .AbortIfError("sample upload");
  KdeEngine engine(&sample, KernelType::kGaussian);

  // Predicates over the join: "income in [..] AND amount in [..] AND ...".
  WorkloadGenerator generator(join_full);
  const WorkloadSpec dt = ParseWorkloadName("dt").ValueOrDie();
  const std::vector<Query> training = generator.Generate(dt, 80, &rng);
  const std::vector<Query> test = generator.Generate(dt, 200, &rng);

  // Independence baseline: per-attribute histograms over the join sample.
  AviHistogram avi = AviHistogram::Build(join_sample, 64).ValueOrDie();

  auto evaluate = [&](auto&& estimate) {
    double total = 0.0;
    for (const Query& q : test) total += std::abs(estimate(q) - q.selectivity);
    return total / static_cast<double>(test.size());
  };

  const double scott_error =
      evaluate([&](const Query& q) { return engine.Estimate(q.box); });
  BatchOptions options;
  const BatchReport report =
      OptimizeBandwidthBatch(&engine, training, options, &rng).ValueOrDie();
  const double tuned_error =
      evaluate([&](const Query& q) { return engine.Estimate(q.box); });
  const double avi_error = evaluate(
      [&](const Query& q) { return avi.EstimateSelectivity(q.box); });

  std::printf("selectivity estimation over customers JOIN orders "
              "(4 joined attributes, %zu test queries):\n",
              test.size());
  std::printf("  %-34s %.5f\n", "AVI on join sample (independence)",
              avi_error);
  std::printf("  %-34s %.5f\n", "KDE on join sample (Scott)", scott_error);
  std::printf("  %-34s %.5f   (%zu objective evals)\n",
              "KDE on join sample (optimized)", tuned_error,
              report.evaluations);
  std::printf("\njoin sample: %zu rows drawn from a %zu-row join result "
              "without materializing it\n",
              join_sample.num_rows(), join_full.num_rows());
  return 0;
}
