// Why selectivity estimates matter: a miniature cost-based optimizer
// (the paper's Section 1 motivation — "the optimizer uses these estimates
// to make assumptions about the costs of candidate plans; incorrect
// estimates can cause unexpectedly bad query performance").
//
// Query shape:  SELECT ... WHERE x IN [a,b] AND y IN [c,d] ORDER BY z
// Candidate plans:
//   filter+sort : scan and filter (cost N), then sort the k matching
//                 rows (cost k log2 k);
//   ordered idx : read a z-ordered index, filtering on the fly — sorted
//                 output for a constant factor (cost 3 N).
// The right choice hinges on the JOINT selectivity of the two-predicate
// conjunction. On correlated data, the attribute-value-independence
// estimate can be wrong by orders of magnitude, steering the optimizer
// into the slow plan; the feedback-optimized KDE stays near-optimal.

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "histogram/avi.h"
#include "runtime/driver.h"
#include "runtime/executor.h"
#include "runtime/factory.h"
#include "workload/workload.h"

namespace {

using namespace fkde;

double SortPlanCost(double n, double k) {
  return n + (k > 1.0 ? k * std::log2(k) : 0.0);
}
double IndexPlanCost(double n) { return 3.0 * n; }

}  // namespace

int main() {
  Rng rng(1);
  // Strongly correlated pair (y tracks x) plus an independent sort key.
  const std::size_t n = 200000;
  Table table(3);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.Uniform();
    const double y = std::clamp(x + rng.Gaussian(0.0, 0.02), 0.0, 1.0);
    table.Insert(std::vector<double>{x, y, rng.Uniform()});
  }
  Executor executor(&table);
  executor.BuildIndex();

  // Diagonal-band conjunctions: x and y ranges that AGREE (so the true
  // joint selectivity is close to the 1D selectivity, but independence
  // predicts its square).
  struct PredicateQuery {
    Box box;
    double truth;
  };
  std::vector<PredicateQuery> workload;
  std::vector<Query> training;
  for (int i = 0; i < 250; ++i) {
    const double center = rng.Uniform(0.05, 0.95);
    const double half = rng.Uniform(0.05, 0.15);
    const Box box({center - half, center - half, 0.0},
                  {center + half, center + half, 1.0});
    const double truth = executor.TrueSelectivity(box);
    if (i < 80) {
      training.push_back({box, truth});
    } else {
      workload.push_back({box, truth});
    }
  }

  Device device(DeviceProfile::SimulatedGtx460());
  EstimatorBuildContext context;
  context.device = &device;
  context.executor = &executor;
  context.training = training;

  auto evaluate = [&](const char* label, auto&& estimate) {
    double total_cost = 0.0, optimal_cost = 0.0;
    int wrong = 0;
    for (const PredicateQuery& q : workload) {
      const double dn = static_cast<double>(n);
      const double est_k = estimate(q.box) * dn;
      const double true_k = q.truth * dn;
      const bool pick_sort =
          SortPlanCost(dn, est_k) < IndexPlanCost(dn);
      const double chosen = pick_sort ? SortPlanCost(dn, true_k)
                                      : IndexPlanCost(dn);
      const double best =
          std::min(SortPlanCost(dn, true_k), IndexPlanCost(dn));
      total_cost += chosen;
      optimal_cost += best;
      if (chosen > best * 1.0001) ++wrong;
    }
    std::printf("  %-28s %5.1f%% above optimal cost, %3d/%zu wrong plans\n",
                label, 100.0 * (total_cost / optimal_cost - 1.0), wrong,
                workload.size());
  };

  std::printf("plan selection on 'x AND y' conjunctions over correlated "
              "attributes (%zu queries):\n", workload.size());

  AviHistogram avi = AviHistogram::Build(table, 256).ValueOrDie();
  evaluate("AVI (independence)",
           [&](const Box& box) { return avi.EstimateSelectivity(box); });

  auto heuristic = BuildEstimator("kde_heuristic", context).MoveValueOrDie();
  evaluate("KDE, Scott's rule", [&](const Box& box) {
    return heuristic->EstimateSelectivity(box);
  });

  auto batch = BuildEstimator("kde_batch", context).MoveValueOrDie();
  evaluate("KDE, feedback-optimized", [&](const Box& box) {
    return batch->EstimateSelectivity(box);
  });

  evaluate("oracle (exact truth)",
           [&](const Box& box) { return executor.TrueSelectivity(box); });
  return 0;
}
