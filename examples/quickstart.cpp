// Quickstart: build a self-tuning KDE selectivity estimator over a table,
// run a workload through the feedback loop, and watch the estimation error
// drop as the model adapts.
//
// This touches the whole public API surface: dataset generation, workload
// generation, estimator construction via the factory, and the feedback
// driver.

#include <cstdio>

#include "common/rng.h"
#include "data/generators.h"
#include "parallel/device.h"
#include "runtime/driver.h"
#include "runtime/executor.h"
#include "runtime/factory.h"
#include "workload/workload.h"

int main() {
  using namespace fkde;

  // 1. A correlated, clustered dataset (the synthetic generator of
  //    Gunopulos et al. that the paper also evaluates on): 100K rows, 3D.
  ClusterBoxesParams params;
  params.rows = 100000;
  params.dims = 3;
  Table table = GenerateClusterBoxes(params, /*seed=*/1);
  Executor executor(&table);
  executor.BuildIndex();

  // 2. A data-centered workload with 1% target selectivity ("DT").
  Rng rng(2);
  WorkloadGenerator generator(table);
  const WorkloadSpec spec = ParseWorkloadName("dt").ValueOrDie();
  const std::vector<Query> training = generator.Generate(spec, 100, &rng);
  const std::vector<Query> test = generator.Generate(spec, 300, &rng);

  // 3. Build two estimators on a (simulated) GPU: the naive Scott's-rule
  //    KDE and the paper's feedback-optimized variant.
  Device device(DeviceProfile::SimulatedGtx460());
  EstimatorBuildContext context;
  context.device = &device;
  context.executor = &executor;
  context.memory_bytes = table.num_cols() * 4096;  // The paper's budget.
  context.training = training;

  auto heuristic =
      BuildEstimator("kde_heuristic", context).MoveValueOrDie();
  auto batch = BuildEstimator("kde_batch", context).MoveValueOrDie();

  // 4. Run the test workload through the feedback loop and compare.
  const RunStats h_stats = FeedbackDriver::RunPrecomputed(heuristic.get(), test);
  const RunStats b_stats = FeedbackDriver::RunPrecomputed(batch.get(), test);

  std::printf("mean absolute selectivity estimation error over %zu queries\n",
              test.size());
  std::printf("  %-16s %.5f\n", heuristic->name().c_str(),
              h_stats.MeanAbsoluteError());
  std::printf("  %-16s %.5f   (bandwidth tuned on %zu training queries)\n",
              batch->name().c_str(), b_stats.MeanAbsoluteError(),
              training.size());

  const TransferLedger& ledger = device.ledger();
  std::printf("\ndevice traffic: %llu launches, %.1f kB to device, "
              "%.1f kB back\n",
              static_cast<unsigned long long>(ledger.kernel_launches),
              ledger.bytes_to_device / 1024.0, ledger.bytes_to_host / 1024.0);
  return 0;
}
