/// \file main.cc
/// \brief fkde-lint command-line driver.
///
/// Usage:
///   fkde_lint_tool [options] [files...]
///     -p <dir|compile_commands.json>  analyze every "file" entry of an
///                                     exported compilation database
///     --filter <prefix>    keep only database files under this prefix
///     --headers <dir>      also analyze every *.h under dir (recursive)
///     --checks a,b,c       run a subset of checks
///     --json <path>        write the findings report as JSON
///     --expect <path>      fixture mode: compare findings against an
///                          expectation file (lines of
///                          `<basename>:<line>: [<check>] <substring>`);
///                          exit 0 iff they match exactly
///     --expect-clean       exit 0 iff there are no unsuppressed findings
///
/// Exit codes: 0 success/clean, 1 findings or expectation mismatch,
/// 2 usage or I/O error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.h"
#include "model.h"

namespace {

using fkde_lint::Finding;

std::string Basename(const std::string& path) {
  const std::size_t pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

/// Pulls the "file" entries out of a compile_commands.json without a
/// JSON library: scans for `"file"` keys and unescapes the values.
std::vector<std::string> DatabaseFiles(const std::string& db_path) {
  std::vector<std::string> files;
  std::ifstream in(db_path);
  if (!in) return files;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::string key = "\"file\"";
  std::size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    pos = text.find('"', pos);
    if (pos == std::string::npos) break;
    ++pos;
    std::string value;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      value.push_back(text[pos]);
      ++pos;
    }
    files.push_back(value);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<std::string> HeaderFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  std::filesystem::recursive_directory_iterator it(dir, ec);
  if (ec) return files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".h") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

struct Expectation {
  std::string basename;
  int line = 0;
  std::string check;
  std::string substring;
  bool matched = false;
};

std::vector<Expectation> LoadExpectations(const std::string& path,
                                          bool& ok) {
  std::vector<Expectation> out;
  std::ifstream in(path);
  if (!in) {
    ok = false;
    return out;
  }
  ok = true;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // <basename>:<line>: [<check>] <substring>
    const std::size_t c1 = line.find(':');
    if (c1 == std::string::npos) continue;
    const std::size_t c2 = line.find(':', c1 + 1);
    if (c2 == std::string::npos) continue;
    const std::size_t ob = line.find('[', c2);
    const std::size_t cb = line.find(']', ob == std::string::npos ? 0 : ob);
    if (ob == std::string::npos || cb == std::string::npos) continue;
    Expectation e;
    e.basename = line.substr(0, c1);
    e.line = std::atoi(line.substr(c1 + 1, c2 - c1 - 1).c_str());
    e.check = line.substr(ob + 1, cb - ob - 1);
    std::size_t msg = cb + 1;
    while (msg < line.size() && line[msg] == ' ') ++msg;
    e.substring = line.substr(msg);
    out.push_back(std::move(e));
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<std::string> checks;
  std::string filter;
  std::string json_path;
  std::string expect_path;
  bool expect_clean = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* opt) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "fkde-lint: missing value for " << opt << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-p") {
      std::string p = next("-p");
      if (std::filesystem::is_directory(p)) {
        p += "/compile_commands.json";
      }
      auto db = DatabaseFiles(p);
      if (db.empty()) {
        std::cerr << "fkde-lint: no files found in database " << p << "\n";
        return 2;
      }
      files.insert(files.end(), db.begin(), db.end());
    } else if (arg == "--filter") {
      filter = next("--filter");
    } else if (arg == "--headers") {
      auto hs = HeaderFiles(next("--headers"));
      files.insert(files.end(), hs.begin(), hs.end());
    } else if (arg == "--checks") {
      std::stringstream ss(next("--checks"));
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) checks.push_back(item);
      }
    } else if (arg == "--json") {
      json_path = next("--json");
    } else if (arg == "--expect") {
      expect_path = next("--expect");
    } else if (arg == "--expect-clean") {
      expect_clean = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fkde-lint: unknown option " << arg << "\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (!filter.empty()) {
    std::erase_if(files, [&](const std::string& f) {
      return f.compare(0, filter.size(), filter) != 0;
    });
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  if (files.empty()) {
    std::cerr << "fkde-lint: no input files\n";
    return 2;
  }

  std::vector<Finding> all;
  int io_errors = 0;
  for (const std::string& f : files) {
    const fkde_lint::SourceFile sf = fkde_lint::BuildModel(f);
    if (sf.io_error) {
      std::cerr << "fkde-lint: cannot read " << f << "\n";
      ++io_errors;
      continue;
    }
    auto fs = fkde_lint::RunChecks(sf, checks);
    all.insert(all.end(), fs.begin(), fs.end());
  }

  int unsuppressed = 0;
  int suppressed = 0;
  for (const Finding& f : all) {
    if (f.suppressed) {
      ++suppressed;
      continue;
    }
    ++unsuppressed;
    std::cout << f.path << ":" << f.line << ": [" << f.check << "] "
              << f.message << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"files\": " << files.size()
        << ",\n  \"suppressed\": " << suppressed
        << ",\n  \"findings\": [\n";
    bool first = true;
    for (const Finding& f : all) {
      if (f.suppressed) continue;
      if (!first) out << ",\n";
      first = false;
      out << "    {\"check\": \"" << f.check << "\", \"file\": \""
          << JsonEscape(f.path) << "\", \"line\": " << f.line
          << ", \"message\": \"" << JsonEscape(f.message) << "\"}";
    }
    out << "\n  ]\n}\n";
  }

  if (!expect_path.empty()) {
    bool loaded = false;
    auto expectations = LoadExpectations(expect_path, loaded);
    if (!loaded) {
      std::cerr << "fkde-lint: cannot read expectations " << expect_path
                << "\n";
      return 2;
    }
    bool failed = false;
    for (const Finding& f : all) {
      if (f.suppressed) continue;
      bool matched = false;
      for (Expectation& e : expectations) {
        if (e.matched || e.basename != Basename(f.path) ||
            e.line != f.line || e.check != f.check) {
          continue;
        }
        if (!e.substring.empty() &&
            f.message.find(e.substring) == std::string::npos) {
          continue;
        }
        e.matched = true;
        matched = true;
        break;
      }
      if (!matched) {
        std::cerr << "fkde-lint: unexpected finding: " << Basename(f.path)
                  << ":" << f.line << ": [" << f.check << "] " << f.message
                  << "\n";
        failed = true;
      }
    }
    for (const Expectation& e : expectations) {
      if (!e.matched) {
        std::cerr << "fkde-lint: expected finding not reported: "
                  << e.basename << ":" << e.line << ": [" << e.check
                  << "] " << e.substring << "\n";
        failed = true;
      }
    }
    if (io_errors > 0) return 2;
    return failed ? 1 : 0;
  }

  std::cerr << "fkde-lint: " << files.size() << " file(s), "
            << unsuppressed << " finding(s), " << suppressed
            << " suppressed\n";
  if (io_errors > 0) return 2;
  if (expect_clean) return unsuppressed == 0 ? 0 : 1;
  return unsuppressed == 0 ? 0 : 1;
}
