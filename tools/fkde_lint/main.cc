/// \file main.cc
/// \brief fkde-lint command-line driver.
///
/// Usage:
///   fkde_lint_tool [options] [files...]
///     -p <dir|compile_commands.json>  analyze every "file" entry of an
///                                     exported compilation database
///     --filter <prefix>    keep only database files under this prefix
///                          (repeatable; a file passes if any matches)
///     --headers <dir>      also analyze every *.h under dir (recursive,
///                          repeatable)
///     --checks a,b,c       run a subset of checks
///     --whole-program      two-pass mode: summarize every input TU,
///                          link the summaries into a program index,
///                          and run the checks interprocedurally
///     --emit-summaries <dir>  write one .sum file per TU (pass 1
///                          artifact; checks still run)
///     --summaries <dir|file>  load serialized summaries into the
///                          program index (repeatable; implies
///                          --whole-program linking)
///     --baseline <report.json>  findings matching a committed report
///                          (by check + file basename + message) are
///                          counted but do not fail the run
///     --json <path>        write the findings report as JSON
///     --expect <path>      fixture mode: compare findings against an
///                          expectation file (lines of
///                          `<basename>:<line>: [<check>] <substring>`);
///                          exit 0 iff they match exactly
///     --expect-clean       exit 0 iff there are no unsuppressed,
///                          non-baselined findings
///
/// Exit codes: 0 success/clean, 1 findings or expectation mismatch,
/// 2 usage or I/O error.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.h"
#include "model.h"
#include "summary.h"

namespace {

using fkde_lint::Finding;
using fkde_lint::ProgramIndex;
using fkde_lint::SourceFile;
using fkde_lint::TuSummary;

std::string Basename(const std::string& path) {
  const std::size_t pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

/// Pulls the "file" entries out of a compile_commands.json without a
/// JSON library: scans for `"file"` keys and unescapes the values.
std::vector<std::string> DatabaseFiles(const std::string& db_path) {
  std::vector<std::string> files;
  std::ifstream in(db_path);
  if (!in) return files;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  const std::string key = "\"file\"";
  std::size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    pos = text.find('"', pos);
    if (pos == std::string::npos) break;
    ++pos;
    std::string value;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      value.push_back(text[pos]);
      ++pos;
    }
    files.push_back(value);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<std::string> HeaderFiles(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  std::filesystem::recursive_directory_iterator it(dir, ec);
  if (ec) return files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".h") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

struct Expectation {
  std::string basename;
  int line = 0;
  std::string check;
  std::string substring;
  bool matched = false;
};

std::vector<Expectation> LoadExpectations(const std::string& path,
                                          bool& ok) {
  std::vector<Expectation> out;
  std::ifstream in(path);
  if (!in) {
    ok = false;
    return out;
  }
  ok = true;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // <basename>:<line>: [<check>] <substring>
    const std::size_t c1 = line.find(':');
    if (c1 == std::string::npos) continue;
    const std::size_t c2 = line.find(':', c1 + 1);
    if (c2 == std::string::npos) continue;
    const std::size_t ob = line.find('[', c2);
    const std::size_t cb = line.find(']', ob == std::string::npos ? 0 : ob);
    if (ob == std::string::npos || cb == std::string::npos) continue;
    Expectation e;
    e.basename = line.substr(0, c1);
    e.line = std::atoi(line.substr(c1 + 1, c2 - c1 - 1).c_str());
    e.check = line.substr(ob + 1, cb - ob - 1);
    std::size_t msg = cb + 1;
    while (msg < line.size() && line[msg] == ' ') ++msg;
    e.substring = line.substr(msg);
    out.push_back(std::move(e));
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string JsonUnescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out.push_back(s[i] == 'n' ? '\n' : s[i]);
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

/// One baseline entry: check + file basename + message. Line numbers
/// deliberately don't participate — unrelated edits shifting a known
/// finding must not break the gate.
struct BaselineEntry {
  std::string check;
  std::string basename;
  std::string message;
};

/// Parses the tool's own --json output (no JSON library: scans for the
/// "check"/"file"/"message" string values of each findings object).
std::vector<BaselineEntry> LoadBaseline(const std::string& path, bool& ok) {
  std::vector<BaselineEntry> out;
  std::ifstream in(path);
  if (!in) {
    ok = false;
    return out;
  }
  ok = true;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  auto value_after = [&](const std::string& key, std::size_t from,
                         std::size_t limit, std::string* val) {
    std::size_t pos = text.find("\"" + key + "\"", from);
    if (pos == std::string::npos || pos > limit) return false;
    pos = text.find('"', pos + key.size() + 2);
    if (pos == std::string::npos) return false;
    ++pos;
    std::string raw;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) {
        raw.push_back(text[pos]);
        ++pos;
      }
      raw.push_back(text[pos]);
      ++pos;
    }
    *val = JsonUnescape(raw);
    return true;
  };
  std::size_t pos = 0;
  while ((pos = text.find("{\"check\"", pos)) != std::string::npos) {
    const std::size_t end = text.find('}', pos);
    if (end == std::string::npos) break;
    BaselineEntry e;
    std::string file;
    if (value_after("check", pos, end, &e.check) &&
        value_after("file", pos, end, &file) &&
        value_after("message", pos, end, &e.message)) {
      e.basename = Basename(file);
      out.push_back(std::move(e));
    }
    pos = end;
  }
  return out;
}

/// Turns a TU path into a summary file name: slashes become '_'.
std::string SummaryFileName(const std::string& path) {
  std::string name = path;
  for (char& c : name) {
    if (c == '/' || c == '\\') c = '_';
  }
  return name + ".sum";
}

std::vector<std::string> SummaryInputs(const std::string& arg) {
  std::vector<std::string> out;
  std::error_code ec;
  if (std::filesystem::is_directory(arg, ec)) {
    for (const auto& entry :
         std::filesystem::recursive_directory_iterator(arg, ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".sum") {
        out.push_back(entry.path().string());
      }
    }
    std::sort(out.begin(), out.end());
  } else {
    out.push_back(arg);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::vector<std::string> checks;
  std::vector<std::string> filters;
  std::vector<std::string> summary_inputs;
  std::string json_path;
  std::string expect_path;
  std::string emit_dir;
  std::string baseline_path;
  bool expect_clean = false;
  bool whole_program = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* opt) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "fkde-lint: missing value for " << opt << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "-p") {
      std::string p = next("-p");
      if (std::filesystem::is_directory(p)) {
        p += "/compile_commands.json";
      }
      auto db = DatabaseFiles(p);
      if (db.empty()) {
        std::cerr << "fkde-lint: no files found in database " << p << "\n";
        return 2;
      }
      files.insert(files.end(), db.begin(), db.end());
    } else if (arg == "--filter") {
      filters.push_back(next("--filter"));
    } else if (arg == "--headers") {
      auto hs = HeaderFiles(next("--headers"));
      files.insert(files.end(), hs.begin(), hs.end());
    } else if (arg == "--checks") {
      std::stringstream ss(next("--checks"));
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) checks.push_back(item);
      }
    } else if (arg == "--json") {
      json_path = next("--json");
    } else if (arg == "--expect") {
      expect_path = next("--expect");
    } else if (arg == "--expect-clean") {
      expect_clean = true;
    } else if (arg == "--whole-program") {
      whole_program = true;
    } else if (arg == "--emit-summaries") {
      emit_dir = next("--emit-summaries");
    } else if (arg == "--summaries") {
      auto in = SummaryInputs(next("--summaries"));
      summary_inputs.insert(summary_inputs.end(), in.begin(), in.end());
      whole_program = true;  // Loaded summaries imply linking.
    } else if (arg == "--baseline") {
      baseline_path = next("--baseline");
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "fkde-lint: unknown option " << arg << "\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (!filters.empty()) {
    std::erase_if(files, [&](const std::string& f) {
      for (const std::string& p : filters) {
        if (f.compare(0, p.size(), p) == 0) return false;
      }
      return true;
    });
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  if (files.empty() && summary_inputs.empty()) {
    std::cerr << "fkde-lint: no input files\n";
    return 2;
  }

  int io_errors = 0;

  // Pass 1: model every TU and distill its summary.
  std::vector<SourceFile> models;
  std::vector<TuSummary> summaries;
  models.reserve(files.size());
  for (const std::string& f : files) {
    SourceFile sf = fkde_lint::BuildModel(f);
    if (sf.io_error) {
      std::cerr << "fkde-lint: cannot read " << f << "\n";
      ++io_errors;
      continue;
    }
    summaries.push_back(fkde_lint::Summarize(sf));
    models.push_back(std::move(sf));
  }
  for (const std::string& f : summary_inputs) {
    std::ifstream in(f, std::ios::binary);
    if (!in) {
      std::cerr << "fkde-lint: cannot read summary " << f << "\n";
      ++io_errors;
      continue;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    TuSummary tu;
    if (!fkde_lint::ParseTuSummary(ss.str(), &tu)) {
      std::cerr << "fkde-lint: malformed summary " << f << "\n";
      ++io_errors;
      continue;
    }
    summaries.push_back(std::move(tu));
  }

  if (!emit_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(emit_dir, ec);
    for (std::size_t i = 0; i < models.size(); ++i) {
      const std::string out_path =
          emit_dir + "/" + SummaryFileName(models[i].path);
      std::ofstream out(out_path, std::ios::binary);
      if (!out) {
        std::cerr << "fkde-lint: cannot write " << out_path << "\n";
        ++io_errors;
        continue;
      }
      out << fkde_lint::SerializeTuSummary(summaries[i]);
    }
  }

  // Pass 2: link and check.
  std::vector<Finding> all;
  if (whole_program) {
    ProgramIndex index;
    for (const TuSummary& tu : summaries) index.Add(tu);
    for (const SourceFile& sf : models) {
      auto fs = fkde_lint::RunChecks(sf, checks, &index);
      all.insert(all.end(), fs.begin(), fs.end());
    }
    auto ps = fkde_lint::RunProgramChecks(index, checks);
    all.insert(all.end(), ps.begin(), ps.end());
  } else {
    for (std::size_t i = 0; i < models.size(); ++i) {
      auto fs = fkde_lint::RunChecks(models[i], checks, nullptr);
      all.insert(all.end(), fs.begin(), fs.end());
      // snapshot-completeness still fires per-TU when one TU holds both
      // the friend-declaring class and the codec (the fixture shape).
      ProgramIndex single;
      single.Add(summaries[i]);
      auto ps = fkde_lint::RunProgramChecks(single, checks);
      all.insert(all.end(), ps.begin(), ps.end());
    }
  }

  // Baseline filtering: a finding present in the committed report is
  // reported but does not fail the run.
  int baselined = 0;
  std::vector<bool> is_baselined(all.size(), false);
  if (!baseline_path.empty()) {
    bool loaded = false;
    auto baseline = LoadBaseline(baseline_path, loaded);
    if (!loaded) {
      std::cerr << "fkde-lint: cannot read baseline " << baseline_path
                << "\n";
      return 2;
    }
    std::vector<bool> used(baseline.size(), false);
    for (std::size_t i = 0; i < all.size(); ++i) {
      if (all[i].suppressed) continue;
      for (std::size_t b = 0; b < baseline.size(); ++b) {
        if (used[b] || baseline[b].check != all[i].check ||
            baseline[b].basename != Basename(all[i].path) ||
            baseline[b].message != all[i].message) {
          continue;
        }
        used[b] = true;
        is_baselined[i] = true;
        ++baselined;
        break;
      }
    }
  }

  int unsuppressed = 0;
  int suppressed = 0;
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Finding& f = all[i];
    if (f.suppressed) {
      ++suppressed;
      continue;
    }
    if (is_baselined[i]) {
      std::cout << f.path << ":" << f.line << ": [" << f.check
                << "] (baselined) " << f.message << "\n";
      continue;
    }
    ++unsuppressed;
    std::cout << f.path << ":" << f.line << ": [" << f.check << "] "
              << f.message << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"files\": " << files.size()
        << ",\n  \"suppressed\": " << suppressed
        << ",\n  \"baselined\": " << baselined
        << ",\n  \"findings\": [\n";
    bool first = true;
    for (std::size_t i = 0; i < all.size(); ++i) {
      const Finding& f = all[i];
      if (f.suppressed) continue;
      if (!first) out << ",\n";
      first = false;
      out << "    {\"check\": \"" << f.check << "\", \"file\": \""
          << JsonEscape(f.path) << "\", \"line\": " << f.line
          << ", \"baselined\": " << (is_baselined[i] ? "true" : "false")
          << ", \"message\": \"" << JsonEscape(f.message) << "\"}";
    }
    out << "\n  ]\n}\n";
  }

  if (!expect_path.empty()) {
    bool loaded = false;
    auto expectations = LoadExpectations(expect_path, loaded);
    if (!loaded) {
      std::cerr << "fkde-lint: cannot read expectations " << expect_path
                << "\n";
      return 2;
    }
    bool failed = false;
    for (std::size_t i = 0; i < all.size(); ++i) {
      const Finding& f = all[i];
      if (f.suppressed || is_baselined[i]) continue;
      bool matched = false;
      for (Expectation& e : expectations) {
        if (e.matched || e.basename != Basename(f.path) ||
            e.line != f.line || e.check != f.check) {
          continue;
        }
        if (!e.substring.empty() &&
            f.message.find(e.substring) == std::string::npos) {
          continue;
        }
        e.matched = true;
        matched = true;
        break;
      }
      if (!matched) {
        std::cerr << "fkde-lint: unexpected finding: " << Basename(f.path)
                  << ":" << f.line << ": [" << f.check << "] " << f.message
                  << "\n";
        failed = true;
      }
    }
    for (const Expectation& e : expectations) {
      if (!e.matched) {
        std::cerr << "fkde-lint: expected finding not reported: "
                  << e.basename << ":" << e.line << ": [" << e.check
                  << "] " << e.substring << "\n";
        failed = true;
      }
    }
    if (io_errors > 0) return 2;
    return failed ? 1 : 0;
  }

  std::cerr << "fkde-lint: " << files.size() << " file(s), "
            << unsuppressed << " finding(s), " << suppressed
            << " suppressed, " << baselined << " baselined\n";
  if (io_errors > 0) return 2;
  if (expect_clean) return unsuppressed == 0 ? 0 : 1;
  return unsuppressed == 0 ? 0 : 1;
}
