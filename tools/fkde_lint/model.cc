/// \file model.cc
/// \brief The bundled token frontend: turns a TokenStream into the
/// SourceFile model described in model.h.
///
/// The extraction is a handful of linear passes per function body:
///
///   1. parameter registration,
///   2. a statement pass (aliasing, declarations, access arrays,
///      scratch/readback/enqueue sites, named lambdas, returns),
///   3. a synchronization pass (Wait/Finish/blocking calls),
///   4. launch-site resolution (nearest-preceding access array and
///      lambda variable by token position),
///   5. escape/benign finalization.
///
/// Precision notes live next to the code they concern; the guiding rule
/// is "no false positives on the real codebase": where the token model
/// cannot decide, it degrades toward silence for staleness-style checks
/// while keeping completeness checks intact.

#include "model.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace fkde_lint {

namespace {

/// Identifiers that do not name a buffer when they terminate a postfix
/// chain: `sums[si].get()` means `sums`, not `get`.
bool IsAccessorName(std::string_view s) {
  return s == "get" || s == "device_data" || s == "data" || s == "size" ||
         s == "begin" || s == "end" || s == "c_str" || s == "front" ||
         s == "back";
}

bool IsControlKeyword(std::string_view s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype" || s == "static_assert" || s == "new" ||
         s == "delete" || s == "else" || s == "do" || s == "case" ||
         s == "co_await" || s == "co_return" || s == "throw";
}

bool IsAccessBuilder(std::string_view s) {
  return s == "Reads" || s == "Writes" || s == "ReadsWrites";
}

/// A bracket token that opens a balanced group we can jump over.
bool IsOpenBracket(const Token& t) {
  return t.kind == TokKind::kPunct && t.text.size() == 1 &&
         (t.text[0] == '(' || t.text[0] == '[' || t.text[0] == '{');
}

}  // namespace

std::string FunctionInfo::Find(const std::string& key) const {
  std::string k = key;
  for (int guard = 0; guard < 64; ++guard) {
    auto it = parent.find(k);
    if (it == parent.end() || it->second == k) return k;
    k = it->second;
  }
  return k;
}

bool FunctionInfo::SameClass(const std::string& a,
                             const std::string& b) const {
  return Find(a) == Find(b);
}

std::string TerminalKey(const TokenStream& ts, std::size_t begin,
                        std::size_t end) {
  std::string result;
  std::size_t i = begin;
  end = std::min(end, ts.tokens.size());
  while (i < end) {
    const Token& t = ts.tokens[i];
    if (t.kind == TokKind::kPunct && t.text.size() == 1 &&
        (t.text[0] == '(' || t.text[0] == '[' || t.text[0] == '{')) {
      const std::size_t m = ts.match[i];
      i = (m > i && m < end) ? m + 1 : i + 1;
      continue;
    }
    if (t.kind == TokKind::kIdent) {
      bool accessor = false;
      if (IsAccessorName(t.text) && i > begin) {
        const Token& p = ts.tokens[i - 1];
        accessor = IsPunct(p, ".") || IsPunct(p, "->");
      }
      if (!accessor) result.assign(t.text);
    }
    ++i;
  }
  return result;
}

std::string DeviceDataChainKey(const TokenStream& ts, std::size_t devpos) {
  // devpos names `device_data`; tokens[devpos-1] should be `.` or `->`.
  if (devpos < 2) return {};
  if (!IsPunct(ts.tokens[devpos - 1], ".") &&
      !IsPunct(ts.tokens[devpos - 1], "->")) {
    return {};
  }
  // Walk the postfix chain backwards: idents, `.`/`->`/`::` links, and
  // balanced ()/[] groups.
  std::size_t k = devpos - 2;
  std::size_t start = devpos - 2;
  for (int guard = 0; guard < 256; ++guard) {
    const Token& t = ts.tokens[k];
    if (t.kind == TokKind::kPunct && t.text.size() == 1 &&
        (t.text[0] == ')' || t.text[0] == ']')) {
      const std::size_t m = ts.match[k];
      if (m >= k || m == 0) break;
      start = m;
      k = m - 1;
      if (k == 0) break;
      continue;
    }
    if (t.kind == TokKind::kIdent) {
      start = k;
      if (k >= 2 && (IsPunct(ts.tokens[k - 1], ".") ||
                     IsPunct(ts.tokens[k - 1], "->") ||
                     IsPunct(ts.tokens[k - 1], "::"))) {
        k -= 2;
        continue;
      }
      break;
    }
    break;
  }
  return TerminalKey(ts, start, devpos - 1);
}

namespace {

/// Per-function extraction state and passes.
class Extractor {
 public:
  Extractor(const TokenStream& ts, const std::string& contents,
            FunctionInfo& fn)
      : ts_(ts), contents_(contents), fn_(fn) {}

  void Run() {
    RegisterParams();
    StatementPass();
    SyncPass();
    CallLockFieldPass();
    LaunchPass();
    Finalize();
  }

  const std::map<std::string, bool>& summary_uses() const {
    return summary_uses_;
  }
  void set_signature(std::size_t sig_open) { sig_open_ = sig_open; }

 private:
  const Token& Tok(std::size_t i) const { return ts_.tokens[i]; }
  std::size_t Match(std::size_t i) const { return ts_.match[i]; }

  std::size_t Offset(std::size_t i) const {
    return static_cast<std::size_t>(Tok(i).text.data() - contents_.data());
  }

  std::string Slice(std::size_t from_tok, std::size_t to_tok) const {
    const std::size_t a = Offset(from_tok);
    const std::size_t b = Offset(to_tok) + Tok(to_tok).text.size();
    return contents_.substr(a, b - a);
  }

  void Union(const std::string& a, const std::string& b) {
    if (a.empty() || b.empty() || a == b) return;
    const std::string ra = fn_.Find(a);
    const std::string rb = fn_.Find(b);
    if (ra != rb) fn_.parent[ra] = rb;
    fn_.parent.try_emplace(a, a);
    fn_.parent.try_emplace(b, b);
  }

  /// Splits [begin, end) by commas outside (), [], {} and <>.
  std::vector<std::pair<std::size_t, std::size_t>> SplitArgs(
      std::size_t begin, std::size_t end) const {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    int angle = 0;
    std::size_t start = begin;
    for (std::size_t i = begin; i < end;) {
      const Token& t = Tok(i);
      if (IsOpenBracket(t)) {
        const std::size_t m = Match(i);
        i = (m > i && m <= end) ? m + 1 : i + 1;
        continue;
      }
      if (IsPunct(t, "<")) ++angle;
      if (IsPunct(t, ">") && angle > 0) --angle;
      if (IsPunct(t, ">>") && angle > 0) angle = std::max(0, angle - 2);
      if (IsPunct(t, ",") && angle == 0) {
        out.emplace_back(start, i);
        start = i + 1;
      }
      ++i;
    }
    if (start < end) out.emplace_back(start, end);
    return out;
  }

  /// First top-level `=` in [begin, end), or end.
  std::size_t FindTopEq(std::size_t begin, std::size_t end) const {
    for (std::size_t i = begin; i < end;) {
      const Token& t = Tok(i);
      if (IsOpenBracket(t)) {
        const std::size_t m = Match(i);
        i = (m > i && m <= end) ? m + 1 : i + 1;
        continue;
      }
      if (IsPunct(t, "=")) return i;
      ++i;
    }
    return end;
  }

  bool HasTopPunct(std::size_t begin, std::size_t end,
                   std::string_view p) const {
    for (std::size_t i = begin; i < end;) {
      const Token& t = Tok(i);
      if (IsOpenBracket(t)) {
        const std::size_t m = Match(i);
        i = (m > i && m <= end) ? m + 1 : i + 1;
        continue;
      }
      if (IsPunct(t, p)) return true;
      ++i;
    }
    return false;
  }

  std::string FirstIdent(std::size_t begin, std::size_t end) const {
    for (std::size_t i = begin; i < end; ++i) {
      if (Tok(i).kind == TokKind::kIdent) return std::string(Tok(i).text);
    }
    return {};
  }

  void RegisterParams() {
    if (sig_open_ == 0) return;
    const std::size_t close = Match(sig_open_);
    if (close <= sig_open_) return;
    for (auto [b, e] : SplitArgs(sig_open_ + 1, close)) {
      const std::size_t eq = FindTopEq(b, e);
      const std::string name = TerminalKey(ts_, b, eq);
      if (name.empty() || name == "void") continue;
      fn_.locals.insert(name);
      fn_.escaping.insert(name);
      params_.insert(name);
    }
  }

  // --------------------------------------------------------------- //

  void StatementPass() {
    std::size_t i = fn_.body_begin + 1;
    int depth = 0;
    std::size_t stmt_start = i;
    while (i < fn_.body_end) {
      const Token& t = Tok(i);
      if (t.kind == TokKind::kPunct && t.text.size() == 1) {
        const char c = t.text[0];
        if (c == '(' || c == '[') {
          const std::size_t m = Match(i);
          i = (m > i) ? m + 1 : i + 1;
          continue;
        }
        if (c == '{') {
          // Initializer / lambda-body braces belong to the current
          // statement when an `=` (or `return`) was already seen;
          // otherwise this opens a block.
          const bool in_stmt =
              FindTopEq(stmt_start, i) != i ||
              (stmt_start < i && IsIdent(Tok(stmt_start), "return"));
          if (in_stmt) {
            const std::size_t m = Match(i);
            i = (m > i) ? m + 1 : i + 1;
            continue;
          }
          ProcessStmt(stmt_start, i, depth);
          ++depth;
          ++i;
          stmt_start = i;
          continue;
        }
        if (c == '}') {
          ProcessStmt(stmt_start, i, depth);
          depth = std::max(0, depth - 1);
          ++i;
          stmt_start = i;
          continue;
        }
        if (c == ';') {
          ProcessStmt(stmt_start, i, depth);
          ++i;
          stmt_start = i;
          continue;
        }
      }
      ++i;
    }
    ProcessStmt(stmt_start, fn_.body_end, 0);
  }

  void ProcessStmt(std::size_t s, std::size_t e, int depth) {
    if (s >= e) return;
    bool conditional = false;
    // Strip leading else / if(...) / for(...) / while(...).
    for (int guard = 0; guard < 8 && s < e; ++guard) {
      if (IsIdent(Tok(s), "else")) {
        ++s;
        conditional = true;
        continue;
      }
      if ((IsIdent(Tok(s), "if") || IsIdent(Tok(s), "for") ||
           IsIdent(Tok(s), "while")) &&
          s + 1 < e && IsPunct(Tok(s + 1), "(")) {
        const std::size_t m = Match(s + 1);
        if (m <= s + 1 || m >= e) return;  // Header only; no tail stmt.
        s = m + 1;
        conditional = true;
        continue;
      }
      break;
    }
    if (s >= e) return;
    current_depth_for_decl_ = depth;

    if (IsIdent(Tok(s), "return")) {
      const std::string key = TerminalKey(ts_, s + 1, e);
      if (!key.empty()) fn_.returned.insert(key);
      return;
    }

    const std::size_t eq = FindTopEq(s, e);

    // ---- access entries appearing anywhere in this statement ---- //
    std::vector<AccessEntry> entries;
    std::vector<std::pair<std::size_t, std::size_t>> builder_spans;
    for (std::size_t j = s; j < e; ++j) {
      if (Tok(j).kind != TokKind::kIdent || !IsAccessBuilder(Tok(j).text)) {
        continue;
      }
      if (j + 1 >= e || !IsPunct(Tok(j + 1), "(")) continue;
      const std::size_t close = Match(j + 1);
      if (close <= j + 1) continue;
      auto args = SplitArgs(j + 2, close);
      AccessEntry entry;
      entry.token = j;
      entry.line = Tok(j).line;
      entry.text = Slice(j, close);
      if (!args.empty()) {
        entry.key = TerminalKey(ts_, args[0].first, args[0].second);
      }
      if (!entry.key.empty()) {
        builder_spans.emplace_back(j, close);
        entries.push_back(std::move(entry));
      }
    }
    // A `?` outside the builder calls (e.g. `cond ? Writes(a) : Writes(b)`
    // inside a braced initializer) makes every entry conditional.
    bool has_ternary = false;
    for (std::size_t j = s; j < e && !has_ternary; ++j) {
      if (!IsPunct(Tok(j), "?")) continue;
      bool inside_builder = false;
      for (auto [bb, be] : builder_spans) {
        if (j > bb && j < be) inside_builder = true;
      }
      if (!inside_builder) has_ternary = true;
    }
    for (AccessEntry& entry : entries) {
      entry.conditional = conditional || has_ternary;
    }

    std::string lhs_terminal;
    std::string lhs_base;
    bool is_decl = false;
    if (eq < e) {
      const bool has_member = HasTopPunct(s, eq, ".") ||
                              HasTopPunct(s, eq, "->");
      lhs_terminal = TerminalKey(ts_, s, eq);
      lhs_base = has_member ? FirstIdent(s, eq) : lhs_terminal;
      is_decl = ClassifyDecl(s, eq, has_member);
      if (is_decl) RegisterDecl(s, eq, lhs_terminal, eq + 1, e);
      HandleRhs(eq, e, lhs_base, lhs_terminal,
                conditional || depth > 0, has_ternary);
    } else {
      HandleNoEqStmt(s, e, conditional || depth > 0, has_ternary);
    }

    // ---- attach entries ---- //
    if (entries.empty()) return;
    // Braced array declaration: the entries in this statement seed it.
    if (is_decl && DeclaresAccessArray(s, eq)) {
      fn_.access_arrays.push_back(
          {lhs_terminal, eq, depth, std::move(entries)});
      return;
    }
    // `acc[na++] = Reads(...)`: attach to the nearest preceding array.
    if (eq < e && !lhs_terminal.empty()) {
      for (auto it = fn_.access_arrays.rbegin();
           it != fn_.access_arrays.rend(); ++it) {
        if (it->name != lhs_terminal) continue;
        for (AccessEntry& entry : entries) {
          entry.conditional =
              entry.conditional || depth > it->decl_depth;
          it->entries.push_back(std::move(entry));
        }
        return;
      }
    }
    // Inline braced list in a call argument: launches claim by span.
    for (AccessEntry& entry : entries) {
      fn_.loose_entries.push_back(std::move(entry));
    }
  }

  bool ClassifyDecl(std::size_t s, std::size_t eq, bool has_member) const {
    if (has_member) return false;
    if (eq - s < 2) return false;
    if (Tok(s).kind == TokKind::kPunct) return false;  // `*out = ...`
    // Count identifiers before the first `[` (if any).
    int idents_before_bracket = 0;
    for (std::size_t i = s; i < eq; ++i) {
      if (IsPunct(Tok(i), "[")) {
        return idents_before_bracket >= 2;
      }
      if (Tok(i).kind == TokKind::kIdent) ++idents_before_bracket;
    }
    return idents_before_bracket >= 2;  // Single ident => assignment.
  }

  bool DeclaresAccessArray(std::size_t s, std::size_t eq) const {
    bool saw_type = false;
    bool saw_bracket = false;
    for (std::size_t i = s; i < eq; ++i) {
      if (IsIdent(Tok(i), "BufferAccess")) saw_type = true;
      if (IsPunct(Tok(i), "[")) saw_bracket = true;
    }
    return saw_type && saw_bracket;
  }

  void RegisterDecl(std::size_t s, std::size_t eq, const std::string& name,
                    std::size_t rhs_b, std::size_t rhs_e) {
    if (name.empty()) return;
    fn_.locals.insert(name);
    std::string type;
    for (std::size_t i = s; i < eq; ++i) {
      if (Tok(i).text == name && i + 1 >= eq) break;
      type.append(Tok(i).text);
      type.push_back(' ');
    }
    decl_types_[name] = type;
    if (type.find("Scratch") != std::string::npos) {
      fn_.scratch_handles.insert(name);
    }
    if (type.find('&') != std::string::npos) {
      // Reference declaration: remember the init's identifiers; the
      // name escapes when any of them does (resolved in Finalize()).
      std::vector<std::string> ids;
      for (std::size_t i = rhs_b; i < rhs_e; ++i) {
        if (Tok(i).kind == TokKind::kIdent &&
            !IsAccessorName(Tok(i).text)) {
          ids.emplace_back(Tok(i).text);
        }
      }
      ref_inits_[name] = std::move(ids);
    }
  }

  void HandleRhs(std::size_t eq, std::size_t e,
                 const std::string& lhs_base,
                 const std::string& lhs_terminal, bool conditional,
                 bool has_ternary) {
    const std::size_t b = eq + 1;
    // Named lambda variable?
    if (b < e && IsPunct(Tok(b), "[")) {
      LambdaInfo info = ParseLambda(b, e);
      if (info.valid && !lhs_terminal.empty()) {
        info.decl_token = eq;
        fn_.lambda_vars.emplace_back(lhs_terminal, info);
        return;
      }
    }

    bool handled_alias = false;
    for (std::size_t j = b; j < e; ++j) {
      if (Tok(j).kind != TokKind::kIdent) continue;
      const std::string_view id = Tok(j).text;
      if (id == "AcquireScratch") {
        fn_.scratches.push_back(
            {Tok(j).line, j, lhs_base, lhs_terminal});
        if (!lhs_terminal.empty()) {
          fn_.bufferish.insert(lhs_terminal);
          fn_.scratch_handles.insert(lhs_terminal);
        }
        handled_alias = true;
      } else if (id == "CreateBuffer") {
        if (!lhs_terminal.empty()) fn_.bufferish.insert(lhs_terminal);
        handled_alias = true;
      } else if (id == "make_shared" || id == "make_unique") {
        // Host-side keep-alive handles (e.g. a shared_ptr<vector>
        // captured by a kernel) are benign unless they wrap a buffer.
        bool wraps_buffer = false;
        for (std::size_t k = b; k < e; ++k) {
          if (IsIdent(Tok(k), "DeviceBuffer")) wraps_buffer = true;
        }
        if (!wraps_buffer && !lhs_terminal.empty()) {
          fn_.benign.insert(lhs_terminal);
        }
        handled_alias = true;
      } else if (id.size() > 7 && id.substr(0, 7) == "Enqueue" &&
                 j + 1 < e && IsPunct(Tok(j + 1), "(")) {
        const std::string qbase = FirstIdent(b, j);
        fn_.enqueue_assigns.push_back(
            {qbase, lhs_base.empty() ? lhs_terminal : lhs_base, false, j});
        const std::size_t close = Match(j + 1);
        if (close > j + 1) fn_.async_arg_spans.emplace_back(j + 2, close);
        if (id == "EnqueueCopyToHost") {
          fn_.readbacks.push_back({Tok(j).line, j, qbase,
                                   lhs_base.empty() ? lhs_terminal
                                                    : lhs_base,
                                   lhs_terminal, false});
        }
        handled_alias = true;
      } else if (id == "device_data" && j >= 2 &&
                 (IsPunct(Tok(j - 1), ".") || IsPunct(Tok(j - 1), "->"))) {
        const std::string key = DeviceDataChainKey(ts_, j);
        if (!key.empty()) {
          fn_.bufferish.insert(key);
          if (!handled_alias && !lhs_terminal.empty()) {
            Union(lhs_terminal, key);
            fn_.bufferish.insert(lhs_terminal);
          }
          handled_alias = true;
          auto [it, inserted] = summary_uses_.try_emplace(
              key, conditional || has_ternary);
          if (!inserted && it->second && !(conditional || has_ternary)) {
            it->second = false;  // Unconditional use dominates.
          }
        }
      }
    }
    if (handled_alias || lhs_terminal.empty()) return;

    // Chain-only RHS: alias or record the call it came from.
    if (!IsChainOnly(b, e)) return;
    for (auto [ab, ae] : TernaryArms(b, e)) {
      // A call `Name(args)`: remember where the value came from so a
      // capture of it can expand a view summary.
      std::size_t last_ident = ae;
      for (std::size_t j = ab; j < ae;) {
        if (IsOpenBracket(Tok(j))) {
          const std::size_t m = Match(j);
          j = (m > j && m <= ae) ? m + 1 : j + 1;
          continue;
        }
        if (Tok(j).kind == TokKind::kIdent) last_ident = j;
        ++j;
      }
      if (last_ident == ae) continue;
      const std::string term = TerminalKey(ts_, ab, ae);
      if (term.empty() || term == "nullptr" || term == "this") continue;
      if (last_ident + 1 < ae && IsPunct(Tok(last_ident + 1), "(") &&
          Tok(last_ident).text == term) {
        fn_.call_refs[lhs_terminal] = term;
      } else {
        Union(lhs_terminal, term);
        if (fn_.scratch_handles.count(term)) {
          fn_.scratch_handles.insert(lhs_terminal);
        }
      }
    }
  }

  void HandleNoEqStmt(std::size_t s, std::size_t e, bool conditional,
                      bool has_ternary) {
    (void)conditional;
    (void)has_ternary;
    for (std::size_t j = s; j < e; ++j) {
      if (Tok(j).kind != TokKind::kIdent) continue;
      const std::string_view id = Tok(j).text;
      if (id == "AcquireScratch") {
        fn_.scratches.push_back({Tok(j).line, j, "", ""});
      } else if (id == "swap" && j + 1 < e && IsPunct(Tok(j + 1), "(")) {
        const std::size_t close = Match(j + 1);
        if (close > j + 1) {
          auto args = SplitArgs(j + 2, close);
          if (args.size() == 2) {
            Union(TerminalKey(ts_, args[0].first, args[0].second),
                  TerminalKey(ts_, args[1].first, args[1].second));
          }
        }
      } else if (id.size() > 7 && id.substr(0, 7) == "Enqueue" &&
                 j + 1 < e && IsPunct(Tok(j + 1), "(")) {
        const std::size_t close = Match(j + 1);
        if (close > j + 1) fn_.async_arg_spans.emplace_back(j + 2, close);
        if (id == "EnqueueCopyToHost") {
          bool chained = close + 2 < e && IsPunct(Tok(close + 1), ".") &&
                         IsIdent(Tok(close + 2), "Wait");
          fn_.readbacks.push_back(
              {Tok(j).line, j, FirstIdent(s, j), "", "", chained});
        }
      } else if (id == "device_data" && j >= 2 &&
                 (IsPunct(Tok(j - 1), ".") || IsPunct(Tok(j - 1), "->"))) {
        const std::string key = DeviceDataChainKey(ts_, j);
        if (!key.empty()) fn_.bufferish.insert(key);
      }
    }
    // Declaration without initializer: `Type name;`, `Type name[N];`,
    // `Type name(args);`.
    RegisterPlainDecl(s, e);
  }

  void RegisterPlainDecl(std::size_t s, std::size_t e) {
    if (HasTopPunct(s, e, ".") || HasTopPunct(s, e, "->")) return;
    if (Tok(s).kind != TokKind::kIdent || IsControlKeyword(Tok(s).text)) {
      return;
    }
    int idents = 0;
    std::string name;
    std::string type;
    int angle = 0;
    for (std::size_t i = s; i < e; ++i) {
      const Token& t = Tok(i);
      if (IsPunct(t, "<")) ++angle;
      if (IsPunct(t, ">") && angle > 0) --angle;
      if (IsPunct(t, "[")) {
        if (idents >= 2 && !name.empty()) break;
        return;
      }
      if (IsPunct(t, "(")) {
        // Declaration with ctor args needs >= 2 identifiers before the
        // paren and the name must not be `::`-qualified (a call).
        if (idents >= 2 && !name.empty() && i >= 1 &&
            Tok(i - 1).kind == TokKind::kIdent &&
            !(i >= 2 && IsPunct(Tok(i - 2), "::"))) {
          break;
        }
        return;
      }
      if (t.kind == TokKind::kIdent && angle == 0) {
        ++idents;
        if (!name.empty()) {
          type.append(name);
          type.push_back(' ');
        }
        name.assign(t.text);
      } else if (t.kind == TokKind::kPunct &&
                 (t.text == "*" || t.text == "&" || t.text == "::")) {
        if (!name.empty()) {
          type.append(name);
          type.push_back(' ');
          name.clear();
        }
        type.append(t.text);
        type.push_back(' ');
      }
    }
    if (idents < 2 || name.empty()) return;
    fn_.locals.insert(name);
    decl_types_[name] = type;
    if (type.find("Scratch") != std::string::npos) {
      fn_.scratch_handles.insert(name);
    }
    if (DeclaresAccessArray(s, e)) {
      fn_.access_arrays.push_back({name, s, current_depth_for_decl_, {}});
    }
  }

  LambdaInfo ParseLambda(std::size_t open, std::size_t limit) {
    LambdaInfo info;
    const std::size_t close = Match(open);
    if (close <= open || close >= limit) return info;
    for (auto [b, e] : SplitArgs(open + 1, close)) {
      if (b >= e) continue;
      if (e - b == 1 && (IsPunct(Tok(b), "=") || IsPunct(Tok(b), "&"))) {
        info.capture_default = true;
        continue;
      }
      std::string name;
      for (std::size_t i = b; i < e; ++i) {
        if (Tok(i).kind == TokKind::kIdent) {
          name.assign(Tok(i).text);
          break;
        }
      }
      if (name.empty()) continue;
      info.captures.push_back(name);
      // Init capture `[x = expr]`: alias the capture to its source.
      const std::size_t ieq = FindTopEq(b, e);
      if (ieq < e && IsChainOnly(ieq + 1, e)) {
        Union(name, TerminalKey(ts_, ieq + 1, e));
      }
    }
    std::size_t j = close + 1;
    if (j < limit && IsPunct(Tok(j), "(")) {
      const std::size_t m = Match(j);
      if (m <= j) return info;
      j = m + 1;
    }
    for (int guard = 0; guard < 32 && j < limit; ++guard) {
      if (IsIdent(Tok(j), "mutable") || IsIdent(Tok(j), "constexpr")) {
        ++j;
        continue;
      }
      if (IsIdent(Tok(j), "noexcept")) {
        ++j;
        if (j < limit && IsPunct(Tok(j), "(")) j = Match(j) + 1;
        continue;
      }
      if (IsPunct(Tok(j), "->")) {
        ++j;
        while (j < limit && !IsPunct(Tok(j), "{")) ++j;
        continue;
      }
      break;
    }
    if (j >= limit || !IsPunct(Tok(j), "{")) return info;
    const std::size_t bend = Match(j);
    if (bend <= j) return info;
    info.body_begin = j;
    info.body_end = bend;
    info.line = Tok(open).line;
    info.valid = true;
    return info;
  }

  bool IsChainOnly(std::size_t b, std::size_t e) const {
    for (std::size_t i = b; i < e; ++i) {
      const Token& t = Tok(i);
      switch (t.kind) {
        case TokKind::kIdent:
        case TokKind::kNumber:
          continue;
        case TokKind::kString:
          return false;
        case TokKind::kPunct:
          if (t.text == "::" || t.text == "." || t.text == "->" ||
              t.text == "(" || t.text == ")" || t.text == "[" ||
              t.text == "]" || t.text == "&" || t.text == "*" ||
              t.text == "?" || t.text == ":" || t.text == ",") {
            continue;
          }
          return false;
        case TokKind::kEnd:
          return false;
      }
    }
    return true;
  }

  std::vector<std::pair<std::size_t, std::size_t>> TernaryArms(
      std::size_t b, std::size_t e) const {
    std::vector<std::pair<std::size_t, std::size_t>> out;
    std::size_t start = b;
    for (std::size_t i = b; i < e;) {
      if (IsOpenBracket(Tok(i))) {
        const std::size_t m = Match(i);
        i = (m > i && m <= e) ? m + 1 : i + 1;
        continue;
      }
      if (IsPunct(Tok(i), "?") || IsPunct(Tok(i), ":")) {
        out.emplace_back(start, i);
        start = i + 1;
      }
      ++i;
    }
    out.emplace_back(start, e);
    return out;
  }

  // --------------------------------------------------------------- //

  void SyncPass() {
    for (std::size_t j = fn_.body_begin + 1; j < fn_.body_end; ++j) {
      if (Tok(j).kind != TokKind::kIdent) continue;
      const std::string_view id = Tok(j).text;
      const bool called = j + 1 < fn_.body_end && IsPunct(Tok(j + 1), "(");
      if (!called) continue;
      const bool member = j > 0 && (IsPunct(Tok(j - 1), ".") ||
                                    IsPunct(Tok(j - 1), "->"));
      if (id == "Wait" && member && IsPunct(Tok(j - 1), ".")) {
        fn_.blocking_points.push_back(j);
        const std::string base = PostfixChainBase(j - 2);
        if (!base.empty()) fn_.waited_bases.insert(base);
      } else if (id == "Finish" && member) {
        fn_.blocking_points.push_back(j);
        fn_.finishes.emplace_back(PostfixChainBase(j - 2), j);
      } else if ((id == "CopyToHost" || id == "CopyToDevice" ||
                  id == "Launch" || id == "Synchronize") &&
                 member) {
        fn_.blocking_points.push_back(j);
      } else if (id == "ReduceSum" || id == "ReduceSumSegments") {
        fn_.blocking_points.push_back(j);
      }
    }
  }

  // --------------------------------------------------------------- //

  /// Records every named call site, scoped-lock acquisition, and
  /// trailing-underscore member reference — the raw material for the
  /// lock-discipline and streaming-lifecycle checks and for
  /// interprocedural function facts.
  void CallLockFieldPass() {
    for (std::size_t j = fn_.body_begin + 1; j < fn_.body_end; ++j) {
      const Token& t = Tok(j);
      if (t.kind != TokKind::kIdent) continue;
      const std::string_view id = t.text;
      if (id.size() > 1 && id.back() == '_') {
        fn_.fields.insert(std::string(id));
      }
      if (id == "lock_guard" || id == "unique_lock" ||
          id == "scoped_lock") {
        RecordLock(j);
        continue;
      }
      if (j + 1 < fn_.body_end && IsPunct(Tok(j + 1), "(") &&
          !IsControlKeyword(id)) {
        CallSite cs;
        cs.name.assign(id);
        cs.token = j;
        cs.line = t.line;
        cs.member =
            IsPunct(Tok(j - 1), ".") || IsPunct(Tok(j - 1), "->");
        if (cs.member && j >= 2) cs.base = PostfixChainBase(j - 2);
        fn_.calls.push_back(std::move(cs));
      }
    }
  }

  /// Token index of the '}' closing the innermost brace scope that
  /// contains `pos` (the function's own '}' when unnested).
  std::size_t EnclosingScopeEnd(std::size_t pos) const {
    std::size_t best = fn_.body_end;
    for (std::size_t i = fn_.body_begin + 1; i < pos; ++i) {
      if (!IsPunct(Tok(i), "{")) continue;
      const std::size_t m = Match(i);
      if (m > pos && m <= fn_.body_end && m < best) best = m;
    }
    return best;
  }

  /// `j` names lock_guard / unique_lock / scoped_lock. Parses
  /// `<...> var(mutex[, policy])` and records one LockSite per mutex
  /// argument (scoped_lock may take several).
  void RecordLock(std::size_t j) {
    std::size_t k = j + 1;
    if (k < fn_.body_end && IsPunct(Tok(k), "<")) {
      int depth = 0;
      while (k < fn_.body_end) {
        if (IsPunct(Tok(k), "<")) {
          ++depth;
        } else if (IsPunct(Tok(k), ">")) {
          if (--depth == 0) {
            ++k;
            break;
          }
        } else if (IsPunct(Tok(k), ">>")) {
          depth -= 2;
          if (depth <= 0) {
            ++k;
            break;
          }
        }
        ++k;
      }
    }
    if (k >= fn_.body_end || Tok(k).kind != TokKind::kIdent) return;
    ++k;
    if (k >= fn_.body_end || !IsPunct(Tok(k), "(")) return;
    const std::size_t close = Match(k);
    if (close <= k) return;
    const auto args = SplitArgs(k + 1, close);
    if (args.empty()) return;
    bool try_lock = false;
    for (std::size_t a = 1; a < args.size(); ++a) {
      for (std::size_t p = args[a].first; p < args[a].second; ++p) {
        if (Tok(p).kind == TokKind::kIdent &&
            (Tok(p).text == "try_to_lock" || Tok(p).text == "defer_lock")) {
          try_lock = true;
        }
      }
    }
    const bool multi = Tok(j).text == "scoped_lock";
    const std::size_t scope_end = EnclosingScopeEnd(j);
    const std::size_t count = multi ? args.size() : 1;
    for (std::size_t a = 0; a < count && a < args.size(); ++a) {
      if (args[a].second <= args[a].first) continue;
      const std::string key =
          TerminalKey(ts_, args[a].first, args[a].second);
      if (key.empty() || key == "try_to_lock" || key == "defer_lock" ||
          key == "adopt_lock") {
        continue;
      }
      LockSite lk;
      lk.mutex_key = key;
      lk.mutex_text = Slice(args[a].first, args[a].second - 1);
      lk.token = j;
      lk.scope_end = scope_end;
      lk.line = Tok(j).line;
      lk.try_lock = try_lock;
      fn_.locks.push_back(std::move(lk));
    }
  }

  /// First identifier of the postfix chain ending at token `k`
  /// (`done[si].Wait()` from the `]`/ident before `.Wait` -> "done").
  std::string PostfixChainBase(std::size_t k) const {
    std::string base;
    for (int guard = 0; guard < 256; ++guard) {
      const Token& t = Tok(k);
      if (t.kind == TokKind::kPunct && t.text.size() == 1 &&
          (t.text[0] == ']' || t.text[0] == ')')) {
        const std::size_t m = Match(k);
        if (m >= k || m == 0) break;
        k = m - 1;
        continue;
      }
      if (t.kind == TokKind::kIdent) {
        base.assign(t.text);
        if (k >= 2 && (IsPunct(Tok(k - 1), ".") ||
                       IsPunct(Tok(k - 1), "->"))) {
          k -= 2;
          continue;
        }
        break;
      }
      break;
    }
    return base;
  }

  // --------------------------------------------------------------- //

  void LaunchPass() {
    for (std::size_t j = fn_.body_begin + 1; j < fn_.body_end; ++j) {
      if (Tok(j).kind != TokKind::kIdent) continue;
      const bool is_enqueue = Tok(j).text == "EnqueueLaunch";
      const bool is_direct =
          Tok(j).text == "Launch" && j > 0 &&
          (IsPunct(Tok(j - 1), "->") || IsPunct(Tok(j - 1), "."));
      if (!is_enqueue && !is_direct) continue;
      if (j + 1 >= fn_.body_end || !IsPunct(Tok(j + 1), "(")) continue;
      const std::size_t close = Match(j + 1);
      if (close <= j + 1) continue;
      auto args = SplitArgs(j + 2, close);

      LaunchSite ls;
      ls.line = Tok(j).line;
      ls.token = j;
      if (!args.empty() && Tok(args[0].first).kind == TokKind::kString) {
        std::string_view lit = Tok(args[0].first).text;
        if (lit.size() >= 2) ls.kernel_name.assign(lit.substr(1, lit.size() - 2));
      }
      if (args.size() > 3) ResolveBody(args[3], j, ls);
      if (args.size() > 4) ResolveAccesses(args[4], j, ls);
      fn_.launches.push_back(std::move(ls));
    }
  }

  void ResolveBody(std::pair<std::size_t, std::size_t> arg, std::size_t site,
                   LaunchSite& ls) {
    auto [b, e] = arg;
    if (b >= e) return;
    if (IsPunct(Tok(b), "[")) {
      ls.body = ParseLambda(b, e + 1);
      ls.body_resolved = ls.body.valid;
      return;
    }
    if (e - b == 1 && Tok(b).kind == TokKind::kIdent) {
      const std::string name(Tok(b).text);
      for (auto it = fn_.lambda_vars.rbegin(); it != fn_.lambda_vars.rend();
           ++it) {
        if (it->first == name && it->second.decl_token < site) {
          ls.body = it->second;
          ls.body_resolved = true;
          return;
        }
      }
    }
  }

  void ResolveAccesses(std::pair<std::size_t, std::size_t> arg,
                       std::size_t site, LaunchSite& ls) {
    auto [b, e] = arg;
    if (b >= e) return;
    // `{}` or `{ Reads(...), ... }`.
    if (IsPunct(Tok(b), "{")) {
      for (const AccessEntry& entry : fn_.loose_entries) {
        if (entry.token > b && entry.token < e) {
          ls.entries.push_back(entry);
        }
      }
      ls.has_accesses = !ls.entries.empty();
      return;
    }
    // `std::span<const BufferAccess>(acc, na)` or a plain identifier.
    std::string name;
    bool span_wrapper = false;
    for (std::size_t i = b; i < e; ++i) {
      if (IsIdent(Tok(i), "span")) span_wrapper = true;
    }
    if (span_wrapper) {
      // Last top-level `(` group holds the (array, count) args.
      for (std::size_t i = b; i < e;) {
        if (IsPunct(Tok(i), "(")) {
          const std::size_t m = Match(i);
          if (m > i && m <= e) {
            auto inner = SplitArgs(i + 1, m);
            if (!inner.empty()) {
              name = TerminalKey(ts_, inner[0].first, inner[0].second);
            }
            i = m + 1;
            continue;
          }
        }
        ++i;
      }
    } else {
      name = TerminalKey(ts_, b, e);
    }
    if (name.empty()) return;
    ls.access_array = name;
    for (auto it = fn_.access_arrays.rbegin(); it != fn_.access_arrays.rend();
         ++it) {
      if (it->name != name || it->decl_token >= site) continue;
      for (const AccessEntry& entry : it->entries) {
        if (entry.token < site) ls.entries.push_back(entry);
      }
      ls.has_accesses = true;
      return;
    }
    // No local declaration: a forwarded span parameter (wrapper
    // function such as Device::Launch) — not this function's problem.
    ls.forwarded = true;
  }

  // --------------------------------------------------------------- //

  void Finalize() {
    for (const std::string& r : fn_.returned) fn_.escaping.insert(r);
    // Reference declarations escape when any init identifier does;
    // two rounds cover ref-of-ref chains.
    for (int round = 0; round < 2; ++round) {
      for (const auto& [name, ids] : ref_inits_) {
        for (const std::string& id : ids) {
          if (!fn_.locals.count(id) || fn_.escaping.count(id)) {
            fn_.escaping.insert(name);
            break;
          }
        }
      }
    }
    for (auto& ea : fn_.enqueue_assigns) {
      ea.lhs_escapes = !ea.lhs_base.empty() &&
                       (fn_.escaping.count(ea.lhs_base) ||
                        !fn_.locals.count(ea.lhs_base));
    }
    // Benign-by-declared-type captures.
    static const char* kBenign[] = {
        "size_t", "int", "double", "float", "bool", "char", "long",
        "unsigned", "short", "Event", "string", "auto &", "string_view"};
    for (const auto& [name, type] : decl_types_) {
      if (type.find("DeviceBuffer") != std::string::npos ||
          type.find("Scratch") != std::string::npos) {
        continue;
      }
      for (const char* b : kBenign) {
        if (type.find(b) != std::string::npos) {
          fn_.benign.insert(name);
          break;
        }
      }
      if ((type.find("vector") != std::string::npos ||
           type.find("shared_ptr") != std::string::npos ||
           type.find("array") != std::string::npos ||
           type.find("span") != std::string::npos) &&
          type.find("BufferAccess") == std::string::npos) {
        fn_.benign.insert(name);
      }
    }
    // A buffer key is never benign.
    for (const std::string& b : fn_.bufferish) fn_.benign.erase(b);
  }

  const TokenStream& ts_;
  const std::string& contents_;
  FunctionInfo& fn_;
  std::size_t sig_open_ = 0;
  std::set<std::string> params_;
  std::map<std::string, std::string> decl_types_;
  std::map<std::string, std::vector<std::string>> ref_inits_;
  std::map<std::string, bool> summary_uses_;
  int current_depth_for_decl_ = 0;
};

/// Finds function definitions: `name (params) [quals] { body }`.
struct FnCandidate {
  std::string name;
  std::size_t sig_open = 0;
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  int line = 0;
  bool hot = false;
};

std::vector<FnCandidate> FindFunctions(const TokenStream& ts) {
  std::vector<FnCandidate> out;
  const auto& toks = ts.tokens;
  for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
    if (!IsPunct(toks[i], "(")) continue;
    const std::size_t close = ts.match[i];
    if (close <= i) continue;
    const Token& prev = toks[i - 1];
    if (prev.kind != TokKind::kIdent || IsControlKeyword(prev.text)) {
      continue;
    }
    if (i >= 2 && IsPunct(toks[i - 2], "]")) continue;  // Lambda.
    // Walk from the `)` to the body `{`, skipping qualifiers, trailing
    // return types, and constructor initializer lists.
    std::size_t j = close + 1;
    bool ok = true;
    for (int guard = 0; guard < 128 && j < toks.size(); ++guard) {
      const Token& t = toks[j];
      if (IsIdent(t, "const") || IsIdent(t, "override") ||
          IsIdent(t, "final") || IsIdent(t, "mutable")) {
        ++j;
        continue;
      }
      if (IsIdent(t, "noexcept") || IsIdent(t, "throw")) {
        ++j;
        if (j < toks.size() && IsPunct(toks[j], "(")) {
          const std::size_t m = ts.match[j];
          if (m <= j) { ok = false; break; }
          j = m + 1;
        }
        continue;
      }
      if (IsPunct(t, "&") || IsPunct(t, "&&")) {
        ++j;
        continue;
      }
      if (IsPunct(t, "->")) {  // Trailing return type.
        ++j;
        while (j < toks.size() && !IsPunct(toks[j], "{") &&
               !IsPunct(toks[j], ";") && !IsPunct(toks[j], "=")) {
          ++j;
        }
        continue;
      }
      if (IsPunct(t, ":")) {  // Constructor initializer list.
        ++j;
        bool init_ok = true;
        for (int g2 = 0; g2 < 64 && j < toks.size(); ++g2) {
          while (j < toks.size() && (toks[j].kind == TokKind::kIdent ||
                                     IsPunct(toks[j], "::"))) {
            ++j;
          }
          if (j >= toks.size() ||
              (!IsPunct(toks[j], "(") && !IsPunct(toks[j], "{"))) {
            init_ok = false;
            break;
          }
          const std::size_t m = ts.match[j];
          if (m <= j) { init_ok = false; break; }
          j = m + 1;
          if (j < toks.size() && IsPunct(toks[j], ",")) {
            ++j;
            continue;
          }
          break;
        }
        if (!init_ok) ok = false;
        if (!ok) break;
        continue;
      }
      if (IsPunct(t, "{")) break;
      ok = false;
      break;
    }
    if (!ok || j >= toks.size() || !IsPunct(toks[j], "{")) continue;
    const std::size_t bend = ts.match[j];
    if (bend <= j) continue;
    FnCandidate c;
    c.name.assign(prev.text);
    c.sig_open = i;
    c.body_begin = j;
    c.body_end = bend;
    c.line = toks[j].line;
    // FKDE_HOT anywhere in the signature tokens (back to the previous
    // statement/body boundary).
    for (std::size_t k = i; k-- > 0;) {
      if (IsPunct(toks[k], ";") || IsPunct(toks[k], "}") ||
          IsPunct(toks[k], "{")) {
        break;
      }
      if (IsIdent(toks[k], "FKDE_HOT")) {
        c.hot = true;
        break;
      }
      if (i - k > 64) break;
    }
    out.push_back(std::move(c));
  }
  // Keep only candidates not nested inside another candidate's body.
  std::vector<FnCandidate> top;
  for (const FnCandidate& c : out) {
    bool nested = false;
    for (const FnCandidate& o : out) {
      if (o.body_begin < c.sig_open && c.body_end < o.body_end) {
        nested = true;
        break;
      }
    }
    if (!nested) top.push_back(c);
  }
  return top;
}

/// Finds classes declaring `friend class ModelSnapshotAccess` and
/// collects their persistent members (trailing-underscore names at
/// class scope). A member may be excluded from the snapshot audit by a
/// preceding `FKDE_SNAPSHOT_EXCLUDE("reason")` macro or a
/// `// FKDE_SNAPSHOT_EXCLUDE(reason)` comment on the same or previous
/// line. Also flags the TU that defines the codec class itself.
void ScanSnapshotClasses(SourceFile& sf) {
  const TokenStream& ts = sf.stream;
  const auto& toks = ts.tokens;

  std::map<int, std::string> comment_excludes;
  for (const Comment& c : ts.comments) {
    const std::size_t pos = c.text.find("FKDE_SNAPSHOT_EXCLUDE");
    if (pos == std::string_view::npos) continue;
    std::string reason;
    const std::size_t open = c.text.find('(', pos);
    const std::size_t closep = c.text.rfind(')');
    if (open != std::string_view::npos &&
        closep != std::string_view::npos && closep > open) {
      reason.assign(c.text.substr(open + 1, closep - open - 1));
    }
    // Covers a member on the comment's own line(s) or the next one.
    for (int line = c.line; line <= c.end_line + 1; ++line) {
      comment_excludes[line] = reason;
    }
  }

  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!IsIdent(toks[i], "class") && !IsIdent(toks[i], "struct")) continue;
    if (toks[i + 1].kind != TokKind::kIdent) continue;
    const std::string name(toks[i + 1].text);
    // Find the class body '{', bailing on forward declarations and
    // template-parameter uses of the keyword.
    std::size_t b = i + 2;
    while (b < toks.size() && !IsPunct(toks[b], "{") &&
           !IsPunct(toks[b], ";") && !IsPunct(toks[b], "(") &&
           !IsPunct(toks[b], ">") && !IsPunct(toks[b], ",")) {
      ++b;
    }
    if (b >= toks.size() || !IsPunct(toks[b], "{")) continue;
    const std::size_t end = ts.match[b];
    if (end <= b) continue;
    if (name == "ModelSnapshotAccess") sf.defines_snapshot_codec = true;

    bool is_snapshot_class = false;
    for (std::size_t k = b + 1; k + 2 < end; ++k) {
      if (IsIdent(toks[k], "friend") && IsIdent(toks[k + 1], "class") &&
          IsIdent(toks[k + 2], "ModelSnapshotAccess")) {
        is_snapshot_class = true;
        break;
      }
    }
    if (!is_snapshot_class) continue;

    SnapshotClassInfo info;
    info.name = name;
    info.line = toks[i].line;
    bool pending_exclude = false;
    std::string pending_reason;
    std::size_t k = b + 1;
    while (k < end) {
      const Token& t = toks[k];
      if (IsIdent(t, "FKDE_SNAPSHOT_EXCLUDE") && k + 1 < end &&
          IsPunct(toks[k + 1], "(")) {
        const std::size_t m = ts.match[k + 1];
        pending_exclude = true;
        pending_reason.clear();
        if (m > k + 2 && toks[k + 2].kind == TokKind::kString) {
          std::string_view lit = toks[k + 2].text;
          if (lit.size() >= 2) {
            pending_reason.assign(lit.substr(1, lit.size() - 2));
          }
        }
        k = m > k + 1 ? m + 1 : k + 2;
        continue;
      }
      if (IsPunct(t, "(")) {
        // Member function: skip parameters, qualifiers, and any inline
        // body so its local mentions don't read as data members.
        const std::size_t m = ts.match[k];
        if (m <= k) {
          ++k;
          continue;
        }
        std::size_t j = m + 1;
        for (int guard = 0; guard < 32 && j < end; ++guard) {
          if (IsIdent(toks[j], "const") || IsIdent(toks[j], "override") ||
              IsIdent(toks[j], "final") || IsIdent(toks[j], "noexcept") ||
              IsPunct(toks[j], "&") || IsPunct(toks[j], "&&")) {
            ++j;
            continue;
          }
          if (IsPunct(toks[j], "->")) {
            while (j < end && !IsPunct(toks[j], "{") &&
                   !IsPunct(toks[j], ";")) {
              ++j;
            }
            continue;
          }
          if (IsPunct(toks[j], "{")) {
            const std::size_t bm = ts.match[j];
            j = bm > j ? bm + 1 : j + 1;
          }
          break;
        }
        k = j;
        continue;
      }
      if (IsPunct(t, "{")) {
        // Nested class/enum body or a brace initializer.
        const std::size_t m = ts.match[k];
        k = m > k ? m + 1 : k + 1;
        continue;
      }
      if (t.kind == TokKind::kIdent && t.text.size() > 1 &&
          t.text.back() == '_' && k + 1 < end &&
          (IsPunct(toks[k + 1], ";") || IsPunct(toks[k + 1], "=") ||
           IsPunct(toks[k + 1], "{"))) {
        SnapshotMember mb;
        mb.name.assign(t.text);
        mb.line = t.line;
        if (pending_exclude) {
          mb.excluded = true;
          mb.reason = pending_reason;
        } else if (auto ce = comment_excludes.find(t.line);
                   ce != comment_excludes.end()) {
          mb.excluded = true;
          mb.reason = ce->second;
        }
        info.members.push_back(std::move(mb));
        pending_exclude = false;
        pending_reason.clear();
      }
      ++k;
    }
    sf.snapshot_classes.push_back(std::move(info));
  }
}

void ParseSuppressions(const TokenStream& ts,
                       std::map<int, std::set<std::string>>& out) {
  constexpr std::string_view kTag = "FKDE_LINT_SUPPRESS";
  for (const Comment& c : ts.comments) {
    const std::size_t pos = c.text.find(kTag);
    if (pos == std::string_view::npos) continue;
    std::size_t open = c.text.find('(', pos);
    if (open == std::string_view::npos) continue;
    std::size_t closep = c.text.find(')', open);
    if (closep == std::string_view::npos) continue;
    std::set<std::string> checks;
    std::string cur;
    for (std::size_t i = open + 1; i <= closep; ++i) {
      const char ch = c.text[i];
      if (ch == ',' || ch == ')') {
        if (!cur.empty()) checks.insert(cur);
        cur.clear();
      } else if (!std::isspace(static_cast<unsigned char>(ch))) {
        cur.push_back(ch);
      }
    }
    if (checks.empty()) checks.insert("*");
    for (int line = c.line; line <= c.end_line; ++line) {
      out[line].insert(checks.begin(), checks.end());
    }
  }
}

}  // namespace

SourceFile BuildModel(const std::string& path) {
  SourceFile sf;
  sf.path = path;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    sf.io_error = true;
    return sf;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  sf.contents = ss.str();
  sf.stream = Tokenize(sf.contents);
  ParseSuppressions(sf.stream, sf.suppressions);
  ScanSnapshotClasses(sf);

  for (const FnCandidate& c : FindFunctions(sf.stream)) {
    FunctionInfo fn;
    fn.name = c.name;
    fn.line = c.line;
    fn.body_begin = c.body_begin;
    fn.body_end = c.body_end;
    fn.hot = c.hot;
    Extractor ex(sf.stream, sf.contents, fn);
    ex.set_signature(c.sig_open);
    ex.Run();
    if (!ex.summary_uses().empty()) {
      ViewSummary& vs = sf.summaries[fn.name];
      for (const auto& [key, cond] : ex.summary_uses()) {
        auto [it, inserted] = vs.keys.try_emplace(key, cond);
        if (!inserted && it->second && !cond) it->second = false;
      }
    }
    sf.functions.push_back(std::move(fn));
  }

  // View-builder summaries compose: when a function's returned value was
  // initialized from another summarized function of this TU
  // (`view = MomentsView(shard); ...; return view;`), the callee's
  // packed keys are part of the caller's summary too. Fixpoint handles
  // chains of builders.
  for (bool changed = true; changed;) {
    changed = false;
    for (const FunctionInfo& fn : sf.functions) {
      for (const auto& [var, callee] : fn.call_refs) {
        if (callee == fn.name || !fn.returned.count(var)) continue;
        const auto it = sf.summaries.find(callee);
        if (it == sf.summaries.end()) continue;
        ViewSummary& vs = sf.summaries[fn.name];
        for (const auto& [key, cond] : it->second.keys) {
          auto [kit, inserted] = vs.keys.try_emplace(key, cond);
          if (inserted) {
            changed = true;
          } else if (kit->second && !cond) {
            kit->second = false;
            changed = true;
          }
        }
      }
    }
  }
  return sf;
}

}  // namespace fkde_lint
