/// \file summary.cc
/// \brief TuSummary distillation, (de)serialization, and ProgramIndex
/// merging. The text format is documented in DESIGN §9.

#include "summary.h"

#include <sstream>

namespace fkde_lint {

namespace {

bool IsAllocName(std::string_view id) {
  return id == "malloc" || id == "calloc" || id == "realloc" ||
         id == "aligned_alloc" || id == "strdup" || id == "make_unique" ||
         id == "make_shared";
}

bool IsGrowthName(std::string_view id) {
  return id == "push_back" || id == "emplace_back" || id == "resize" ||
         id == "reserve" || id == "insert" || id == "emplace" ||
         id == "assign" || id == "append";
}

/// Body-wide allocation scan, mirroring the hot-alloc check's notion of
/// "allocates" so interprocedural hot-alloc agrees with the local one.
bool BodyAllocates(const SourceFile& sf, const FunctionInfo& fn) {
  const auto& toks = sf.stream.tokens;
  for (std::size_t j = fn.body_begin + 1; j < fn.body_end; ++j) {
    const Token& t = toks[j];
    if (t.kind != TokKind::kIdent) continue;
    const bool member = j > 0 && (IsPunct(toks[j - 1], ".") ||
                                  IsPunct(toks[j - 1], "->"));
    if (t.text == "new" && !member) return true;
    const bool called = j + 1 < fn.body_end && IsPunct(toks[j + 1], "(");
    if (!called) continue;
    if (IsAllocName(t.text)) return true;
    if (member && IsGrowthName(t.text)) return true;
  }
  return false;
}

/// Member names (trailing '_' preceded by '.'/'->') referenced inside
/// the body of `fn` — the codec field sets.
std::set<std::string> MemberAccessFields(const SourceFile& sf,
                                         const FunctionInfo& fn) {
  std::set<std::string> out;
  const auto& toks = sf.stream.tokens;
  for (std::size_t j = fn.body_begin + 1; j < fn.body_end; ++j) {
    const Token& t = toks[j];
    if (t.kind != TokKind::kIdent || t.text.size() < 2 ||
        t.text.back() != '_') {
      continue;
    }
    if (j > 0 && (IsPunct(toks[j - 1], ".") || IsPunct(toks[j - 1], "->"))) {
      out.insert(std::string(t.text));
    }
  }
  return out;
}

FunctionFacts DistillFacts(const SourceFile& sf, const FunctionInfo& fn) {
  FunctionFacts f;
  f.blocks = !fn.blocking_points.empty();
  f.allocates = BodyAllocates(sf, fn);
  for (const auto& [base, tok] : fn.finishes) {
    (void)base;
    (void)tok;
    f.drains = true;
  }
  for (const LockSite& lk : fn.locks) {
    if (lk.mutex_key.find("registry") != std::string::npos) {
      f.acquires_registry = true;
    } else if (!lk.try_lock) {
      f.acquires_admission = true;
    }
  }
  for (const CallSite& c : fn.calls) {
    if (c.name == "StreamBegin") f.begins_stream = true;
    if (c.name == "StreamRetire" || c.name == "StreamFeedback") {
      f.retires_stream = true;
    }
    if (c.name == "EnableStreaming") f.enables_stream = true;
    if (c.name == "DisableStreaming") f.disables_stream = true;
    if (c.name == "Quiesce" || c.name == "SnapshotModel" ||
        c.name == "SaveSnapshot") {
      f.quiesces = true;
    }
    if (c.name == "Synchronize") f.drains = true;
  }
  return f;
}

std::vector<std::string> SplitWs(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ss(line);
  std::string w;
  while (ss >> w) out.push_back(std::move(w));
  return out;
}

}  // namespace

TuSummary Summarize(const SourceFile& sf) {
  TuSummary tu;
  tu.path = sf.path;
  tu.views = sf.summaries;
  tu.snapshot_classes = sf.snapshot_classes;
  for (const FunctionInfo& fn : sf.functions) {
    const FunctionFacts f = DistillFacts(sf, fn);
    if (!f.Any()) continue;
    // OR-merge across same-named overloads within the TU.
    FunctionFacts& slot = tu.facts[fn.name];
    slot.blocks |= f.blocks;
    slot.drains |= f.drains;
    slot.allocates |= f.allocates;
    slot.acquires_registry |= f.acquires_registry;
    slot.acquires_admission |= f.acquires_admission;
    slot.begins_stream |= f.begins_stream;
    slot.retires_stream |= f.retires_stream;
    slot.enables_stream |= f.enables_stream;
    slot.disables_stream |= f.disables_stream;
    slot.quiesces |= f.quiesces;
  }
  if (sf.defines_snapshot_codec) {
    tu.has_codec = true;
    for (const FunctionInfo& fn : sf.functions) {
      if (fn.name == "Snapshot") {
        auto fields = MemberAccessFields(sf, fn);
        tu.save_fields.insert(fields.begin(), fields.end());
        if (tu.save_line == 0) tu.save_line = fn.line;
      } else if (fn.name == "Restore") {
        auto fields = MemberAccessFields(sf, fn);
        tu.restore_fields.insert(fields.begin(), fields.end());
        if (tu.restore_line == 0) tu.restore_line = fn.line;
      }
    }
  }
  return tu;
}

std::string SerializeTuSummary(const TuSummary& tu) {
  std::ostringstream out;
  out << "fkde-lint-summary 1\n";
  out << "tu " << tu.path << "\n";
  for (const auto& [name, vs] : tu.views) {
    out << "view " << name;
    for (const auto& [key, cond] : vs.keys) {
      out << ' ' << key << ':' << (cond ? 1 : 0);
    }
    out << "\n";
  }
  for (const auto& [name, f] : tu.facts) {
    out << "fact " << name << ' ';
    if (f.blocks) out << 'b';
    if (f.drains) out << 'd';
    if (f.allocates) out << 'a';
    if (f.acquires_registry) out << 'r';
    if (f.acquires_admission) out << 'm';
    if (f.begins_stream) out << 'B';
    if (f.retires_stream) out << 'R';
    if (f.enables_stream) out << 'E';
    if (f.disables_stream) out << 'D';
    if (f.quiesces) out << 'q';
    out << "\n";
  }
  for (const SnapshotClassInfo& cls : tu.snapshot_classes) {
    out << "class " << cls.name << ' ' << cls.line << "\n";
    for (const SnapshotMember& mb : cls.members) {
      out << "member " << mb.name << ' ' << mb.line << ' '
          << (mb.excluded ? 1 : 0);
      if (!mb.reason.empty()) out << ' ' << mb.reason;
      out << "\n";
    }
    out << "endclass\n";
  }
  if (tu.has_codec) {
    out << "codec " << tu.save_line << ' ' << tu.restore_line << "\n";
    out << "save";
    for (const std::string& fld : tu.save_fields) out << ' ' << fld;
    out << "\nrestore";
    for (const std::string& fld : tu.restore_fields) out << ' ' << fld;
    out << "\n";
  }
  return out.str();
}

bool ParseTuSummary(const std::string& text, TuSummary* out) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || SplitWs(line) !=
      std::vector<std::string>{"fkde-lint-summary", "1"}) {
    return false;
  }
  SnapshotClassInfo* open_class = nullptr;
  while (std::getline(in, line)) {
    auto w = SplitWs(line);
    if (w.empty()) continue;
    if (w[0] == "tu" && w.size() >= 2) {
      out->path = w[1];
    } else if (w[0] == "view" && w.size() >= 2) {
      ViewSummary& vs = out->views[w[1]];
      for (std::size_t i = 2; i < w.size(); ++i) {
        const std::size_t colon = w[i].rfind(':');
        if (colon == std::string::npos) continue;
        vs.keys[w[i].substr(0, colon)] = w[i].substr(colon + 1) == "1";
      }
    } else if (w[0] == "fact" && w.size() >= 3) {
      FunctionFacts& f = out->facts[w[1]];
      for (char c : w[2]) {
        if (c == 'b') f.blocks = true;
        if (c == 'd') f.drains = true;
        if (c == 'a') f.allocates = true;
        if (c == 'r') f.acquires_registry = true;
        if (c == 'm') f.acquires_admission = true;
        if (c == 'B') f.begins_stream = true;
        if (c == 'R') f.retires_stream = true;
        if (c == 'E') f.enables_stream = true;
        if (c == 'D') f.disables_stream = true;
        if (c == 'q') f.quiesces = true;
      }
    } else if (w[0] == "class" && w.size() >= 3) {
      out->snapshot_classes.emplace_back();
      open_class = &out->snapshot_classes.back();
      open_class->name = w[1];
      open_class->line = std::atoi(w[2].c_str());
    } else if (w[0] == "member" && w.size() >= 4 && open_class) {
      SnapshotMember mb;
      mb.name = w[1];
      mb.line = std::atoi(w[2].c_str());
      mb.excluded = w[3] == "1";
      for (std::size_t i = 4; i < w.size(); ++i) {
        if (!mb.reason.empty()) mb.reason += ' ';
        mb.reason += w[i];
      }
      open_class->members.push_back(std::move(mb));
    } else if (w[0] == "endclass") {
      open_class = nullptr;
    } else if (w[0] == "codec" && w.size() >= 3) {
      out->has_codec = true;
      out->save_line = std::atoi(w[1].c_str());
      out->restore_line = std::atoi(w[2].c_str());
    } else if (w[0] == "save") {
      for (std::size_t i = 1; i < w.size(); ++i) out->save_fields.insert(w[i]);
    } else if (w[0] == "restore") {
      for (std::size_t i = 1; i < w.size(); ++i) {
        out->restore_fields.insert(w[i]);
      }
    }
  }
  return true;
}

void ProgramIndex::Add(const TuSummary& tu) {
  for (const auto& [name, vs] : tu.views) {
    if (ambiguous_views.count(name)) continue;
    auto it = views.find(name);
    if (it == views.end()) {
      views.emplace(name, vs);
      continue;
    }
    // Same key set: merge conditionality (unconditional dominates).
    // Different key sets: the name is ambiguous across TUs — expanding
    // either definition could charge a kernel with buffers it never
    // touches, so never expand it.
    bool same_keys = it->second.keys.size() == vs.keys.size();
    if (same_keys) {
      for (const auto& [key, cond] : vs.keys) {
        if (!it->second.keys.count(key)) {
          same_keys = false;
          break;
        }
      }
    }
    if (!same_keys) {
      views.erase(it);
      ambiguous_views.insert(name);
      continue;
    }
    for (const auto& [key, cond] : vs.keys) {
      if (!cond) it->second.keys[key] = false;
    }
  }
  for (const auto& [name, f] : tu.facts) {
    FunctionFacts& slot = facts[name];
    slot.blocks |= f.blocks;
    slot.drains |= f.drains;
    slot.allocates |= f.allocates;
    slot.acquires_registry |= f.acquires_registry;
    slot.acquires_admission |= f.acquires_admission;
    slot.begins_stream |= f.begins_stream;
    slot.retires_stream |= f.retires_stream;
    slot.enables_stream |= f.enables_stream;
    slot.disables_stream |= f.disables_stream;
    slot.quiesces |= f.quiesces;
  }
  for (const SnapshotClassInfo& cls : tu.snapshot_classes) {
    bool dup = false;
    for (const auto& [path, existing] : snapshot_classes) {
      if (existing.name == cls.name) {
        dup = true;
        break;
      }
    }
    if (!dup) snapshot_classes.emplace_back(tu.path, cls);
  }
  if (tu.has_codec) {
    has_codec = true;
    if (codec_path.empty()) codec_path = tu.path;
    if (save_line == 0) save_line = tu.save_line;
    if (restore_line == 0) restore_line = tu.restore_line;
    save_fields.insert(tu.save_fields.begin(), tu.save_fields.end());
    restore_fields.insert(tu.restore_fields.begin(),
                          tu.restore_fields.end());
  }
}

const ViewSummary* ProgramIndex::View(const std::string& name) const {
  if (ambiguous_views.count(name)) return nullptr;
  auto it = views.find(name);
  return it == views.end() ? nullptr : &it->second;
}

const FunctionFacts* ProgramIndex::Facts(const std::string& name) const {
  auto it = facts.find(name);
  return it == facts.end() ? nullptr : &it->second;
}

}  // namespace fkde_lint
