/// \file checks.cc
/// \brief Implementations of the seven fkde-lint checks over
/// SourceFile, optionally linked through a whole-program index.

#include "checks.h"

#include <algorithm>
#include <map>
#include <set>

namespace fkde_lint {

namespace {

bool Enabled(const std::vector<std::string>& enabled, const char* name) {
  if (enabled.empty()) return true;
  return std::find(enabled.begin(), enabled.end(), name) != enabled.end();
}

/// True when `name`'s alias class contains a key seen in a buffer
/// position (Reads/Writes subject, device_data, CreateBuffer,
/// AcquireScratch).
bool ClassBufferish(const FunctionInfo& fn, const std::string& name) {
  const std::string rep = fn.Find(name);
  for (const std::string& b : fn.bufferish) {
    if (fn.Find(b) == rep) return true;
  }
  return false;
}

/// A name escapes when it is a parameter, is returned, is bound to
/// non-local state, or was never locally declared (member/global).
bool Escapes(const FunctionInfo& fn, const std::string& name) {
  if (name.empty()) return false;
  return fn.escaping.count(name) > 0 || fn.locals.count(name) == 0;
}

void Emit(std::vector<Finding>& out, const SourceFile& sf,
          const char* check, int line, std::string message) {
  Finding f;
  f.check = check;
  f.path = sf.path;
  f.line = line;
  f.message = std::move(message);
  for (int l : {line, line - 1}) {
    auto it = sf.suppressions.find(l);
    if (it != sf.suppressions.end() &&
        (it->second.count(check) || it->second.count("*"))) {
      f.suppressed = true;
      break;
    }
  }
  out.push_back(std::move(f));
}

// ------------------------------------------------------------------ //
// access-set

struct Use {
  std::string display;  ///< A name to print (capture or summary key).
  bool from_summary = false;
};

/// Resolves a callee name to a view summary: same-TU summaries first,
/// then the whole-program index (null in per-TU mode).
const ViewSummary* ResolveView(const SourceFile& sf,
                               const ProgramIndex* program,
                               const std::string& callee) {
  auto sit = sf.summaries.find(callee);
  if (sit != sf.summaries.end() && !sit->second.keys.empty()) {
    return &sit->second;
  }
  if (program) {
    const ViewSummary* vs = program->View(callee);
    if (vs && !vs->keys.empty()) return vs;
  }
  return nullptr;
}

void CheckAccessSet(const SourceFile& sf, const FunctionInfo& fn,
                    const ProgramIndex* program, std::vector<Finding>& out) {
  const TokenStream& ts = sf.stream;
  for (const LaunchSite& ls : fn.launches) {
    if (ls.forwarded) continue;
    const std::string kname =
        ls.kernel_name.empty() ? fn.name : ls.kernel_name;
    if (!ls.has_accesses) {
      Emit(out, sf, "access-set", ls.line,
           "kernel '" + kname +
               "' is launched with an empty access set (opaque to the "
               "hazard checker)");
      continue;
    }
    if (!ls.body_resolved) continue;  // Nothing to compare against.

    std::map<std::string, Use> uses;  // class rep -> info
    bool staleness_ok = true;
    auto add_use = [&](const std::string& key, bool from_summary) {
      const std::string rep = fn.Find(key);
      auto [it, inserted] = uses.try_emplace(rep, Use{key, from_summary});
      if (!inserted && it->second.from_summary && !from_summary) {
        it->second = Use{key, false};
      }
    };

    for (const std::string& c : ls.body.captures) {
      auto cr = fn.call_refs.find(c);
      if (cr != fn.call_refs.end()) {
        if (const ViewSummary* vs = ResolveView(sf, program, cr->second)) {
          for (const auto& [key, cond] : vs->keys) {
            add_use(key, true);
          }
          continue;
        }
      }
      if (ClassBufferish(fn, c)) {
        add_use(c, false);
        continue;
      }
      if (fn.benign.count(c)) continue;
      // Unknown capture: completeness still runs on what we resolved,
      // but a stale-declaration verdict would be unsafe.
      staleness_ok = false;
    }
    if (ls.body.capture_default) {
      for (std::size_t j = ls.body.body_begin + 1; j < ls.body.body_end;
           ++j) {
        if (ts.tokens[j].kind != TokKind::kIdent) continue;
        const std::string id(ts.tokens[j].text);
        auto cr = fn.call_refs.find(id);
        if (cr != fn.call_refs.end()) {
          if (const ViewSummary* vs = ResolveView(sf, program, cr->second)) {
            for (const auto& [key, cond] : vs->keys) {
              add_use(key, true);
            }
            continue;
          }
        }
        if (ClassBufferish(fn, id)) add_use(id, false);
      }
    }
    // Direct buffer touches inside the body.
    for (std::size_t j = ls.body.body_begin + 1; j < ls.body.body_end;
         ++j) {
      if (IsIdent(ts.tokens[j], "device_data")) {
        const std::string key = DeviceDataChainKey(ts, j);
        if (!key.empty()) add_use(key, false);
      }
    }

    std::set<std::string> declared;
    for (const AccessEntry& e : ls.entries) {
      declared.insert(fn.Find(e.key));
    }
    for (const auto& [rep, use] : uses) {
      if (declared.count(rep)) continue;
      Emit(out, sf, "access-set", ls.line,
           "kernel '" + kname + "' touches buffer '" + use.display +
               "' that is missing from its declared access set");
    }
    if (staleness_ok) {
      for (const AccessEntry& e : ls.entries) {
        if (uses.count(fn.Find(e.key))) continue;
        Emit(out, sf, "access-set", e.line,
             "access set declares buffer '" + e.key + "' that kernel '" +
                 kname + "' never touches (stale declaration)");
      }
    }
  }
}

// ------------------------------------------------------------------ //
// readback-sync

/// True when a call after `token` drains queued work: the callee's
/// facts say it calls Finish()/Synchronize (e.g. `Drain()` helpers
/// defined in another TU).
bool LaterDrainingCall(const FunctionInfo& fn, const ProgramIndex* program,
                       std::size_t token) {
  if (!program) return false;
  for (const CallSite& c : fn.calls) {
    if (c.token <= token || c.name == fn.name) continue;
    const FunctionFacts* f = program->Facts(c.name);
    if (f && f->drains) return true;
  }
  return false;
}

void CheckReadbackSync(const SourceFile& sf, const FunctionInfo& fn,
                       const ProgramIndex* program,
                       std::vector<Finding>& out) {
  for (const ReadbackSite& rb : fn.readbacks) {
    if (rb.chained_wait) continue;
    if (rb.lhs_terminal.empty() && rb.lhs_base.empty()) {
      // Discarded event. The queue is in-order, so a later Finish() or
      // a later *waited* enqueue on the same queue orders the copy
      // before any host read.
      bool ordered = false;
      for (const auto& [base, tok] : fn.finishes) {
        if (tok > rb.token && (base == rb.queue_base || base.empty())) {
          ordered = true;
          break;
        }
      }
      if (!ordered) {
        for (const auto& ea : fn.enqueue_assigns) {
          if (ea.token > rb.token && ea.queue_base == rb.queue_base &&
              (ea.lhs_escapes || fn.waited_bases.count(ea.lhs_base))) {
            ordered = true;
            break;
          }
        }
      }
      if (!ordered) ordered = LaterDrainingCall(fn, program, rb.token);
      if (!ordered) {
        Emit(out, sf, "readback-sync", rb.line,
             "EnqueueCopyToHost result is discarded and no later "
             "Wait()/Finish() on queue '" +
                 rb.queue_base + "' orders the host read");
      }
      continue;
    }
    if (Escapes(fn, rb.lhs_base) || Escapes(fn, rb.lhs_terminal)) continue;
    if (fn.waited_bases.count(rb.lhs_base) ||
        fn.waited_bases.count(rb.lhs_terminal)) {
      continue;
    }
    Emit(out, sf, "readback-sync", rb.line,
         "readback event '" + rb.lhs_terminal +
             "' never reaches Wait()/Finish(); the host buffer may be "
             "read before the copy completes");
  }
}

// ------------------------------------------------------------------ //
// hot-alloc

const char* AllocCall(std::string_view id) {
  static constexpr std::string_view kCalls[] = {
      "malloc", "calloc", "realloc", "aligned_alloc", "strdup",
      "make_unique", "make_shared"};
  for (std::string_view c : kCalls) {
    if (id == c) return c.data();
  }
  return nullptr;
}

const char* GrowthCall(std::string_view id) {
  static constexpr std::string_view kCalls[] = {
      "push_back", "emplace_back", "resize",  "reserve",
      "insert",    "emplace",      "assign",  "append"};
  for (std::string_view c : kCalls) {
    if (id == c) return c.data();
  }
  return nullptr;
}

bool IsOwningContainer(std::string_view id) {
  static constexpr std::string_view kTypes[] = {
      "vector", "string", "basic_string", "map",  "unordered_map",
      "set",    "unordered_set",          "deque", "list", "function"};
  for (std::string_view t : kTypes) {
    if (id == t) return true;
  }
  return false;
}

void ScanHotRegion(const SourceFile& sf, const ProgramIndex* program,
                   std::size_t begin, std::size_t end,
                   const std::string& context, std::vector<Finding>& out) {
  const auto& toks = sf.stream.tokens;
  for (std::size_t j = begin + 1; j < end; ++j) {
    const Token& t = toks[j];
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "new" &&
        !(j > 0 && (IsPunct(toks[j - 1], ".") ||
                    IsPunct(toks[j - 1], "->")))) {
      Emit(out, sf, "hot-alloc", t.line,
           "heap allocation ('new') inside " + context);
      continue;
    }
    const bool called = j + 1 < end && IsPunct(toks[j + 1], "(");
    if (called) {
      if (const char* a = AllocCall(t.text)) {
        Emit(out, sf, "hot-alloc", t.line,
             "allocating call '" + std::string(a) + "' inside " + context);
        continue;
      }
      if (j > 0 && (IsPunct(toks[j - 1], ".") ||
                    IsPunct(toks[j - 1], "->"))) {
        if (const char* g = GrowthCall(t.text)) {
          Emit(out, sf, "hot-alloc", t.line,
               "allocating container call '" + std::string(g) +
                   "' inside " + context);
          continue;
        }
      }
      // Interprocedural: a callee whose summary says it allocates.
      if (program && !GrowthCall(t.text)) {
        const FunctionFacts* f = program->Facts(std::string(t.text));
        if (f && f->allocates) {
          Emit(out, sf, "hot-alloc", t.line,
               "call to '" + std::string(t.text) +
                   "', which allocates, inside " + context);
          continue;
        }
      }
    }
    // std::vector<...> v / std::string s(...) constructed in the body.
    if (IsOwningContainer(t.text) && j >= 2 &&
        IsPunct(toks[j - 1], "::") && IsIdent(toks[j - 2], "std")) {
      // Skip template arguments, then decide: a reference/pointer type
      // position is fine, a constructed object is not.
      std::size_t k = j + 1;
      if (k < end && IsPunct(toks[k], "<")) {
        int angle = 0;
        while (k < end) {
          if (IsPunct(toks[k], "<")) ++angle;
          if (IsPunct(toks[k], ">")) --angle;
          if (IsPunct(toks[k], ">>")) angle -= 2;
          ++k;
          if (angle <= 0) break;
        }
      }
      if (k < end && !IsPunct(toks[k], "&") && !IsPunct(toks[k], "*") &&
          !IsPunct(toks[k], ">") && !IsPunct(toks[k], ",") &&
          !IsPunct(toks[k], ")")) {
        Emit(out, sf, "hot-alloc", t.line,
             "allocating container 'std::" + std::string(t.text) +
                 "' constructed inside " + context);
      }
    }
  }
}

void CheckHotAlloc(const SourceFile& sf, const FunctionInfo& fn,
                   const ProgramIndex* program, std::vector<Finding>& out) {
  std::set<std::size_t> seen;
  if (fn.hot) {
    seen.insert(fn.body_begin);
    ScanHotRegion(sf, program, fn.body_begin, fn.body_end,
                  "FKDE_HOT function '" + fn.name + "'", out);
  }
  for (const LaunchSite& ls : fn.launches) {
    if (!ls.body_resolved) continue;
    if (!seen.insert(ls.body.body_begin).second) continue;
    const std::string kname =
        ls.kernel_name.empty() ? fn.name : ls.kernel_name;
    ScanHotRegion(sf, program, ls.body.body_begin, ls.body.body_end,
                  "kernel '" + kname + "'", out);
  }
}

// ------------------------------------------------------------------ //
// scratch-lifetime

void CheckScratchLifetime(const SourceFile& sf, const FunctionInfo& fn,
                          const ProgramIndex* program,
                          std::vector<Finding>& out) {
  const auto& toks = sf.stream.tokens;
  for (const ScratchSite& sc : fn.scratches) {
    if (sc.lhs_terminal.empty() && sc.lhs_base.empty()) {
      Emit(out, sf, "scratch-lifetime", sc.line,
           "AcquireScratch handle is discarded; the scratch returns to "
           "the pool immediately");
      continue;
    }
    if (Escapes(fn, sc.lhs_base) || Escapes(fn, sc.lhs_terminal)) {
      continue;  // Parked in a member / returned to the caller.
    }
    const std::string rep = fn.Find(sc.lhs_terminal);
    std::size_t last_async = 0;
    for (const auto& [b, e] : fn.async_arg_spans) {
      for (std::size_t j = b; j < e; ++j) {
        if (toks[j].kind == TokKind::kIdent &&
            fn.Find(std::string(toks[j].text)) == rep) {
          last_async = std::max(last_async, j);
        }
      }
    }
    if (last_async == 0) continue;  // Only used by blocking calls.
    // Held alive by a kernel capture? Only a ScratchBuffer-valued name
    // (shared_ptr copy) extends the lifetime — a raw pointer from
    // `device_data()` shares the alias class but not the ownership.
    const auto holds = [&](const std::string& name) {
      return fn.scratch_handles.count(name) != 0 && fn.Find(name) == rep;
    };
    bool held = false;
    for (const LaunchSite& ls : fn.launches) {
      if (!ls.body_resolved) continue;
      for (const std::string& c : ls.body.captures) {
        if (holds(c)) held = true;
      }
      if (ls.body.capture_default) {
        for (std::size_t j = ls.body.body_begin + 1;
             j < ls.body.body_end && !held; ++j) {
          if (toks[j].kind == TokKind::kIdent &&
              holds(std::string(toks[j].text))) {
            held = true;
          }
        }
      }
      if (held) break;
    }
    if (held) continue;
    // Or does a blocking point drain the queue after the last use?
    bool drained = false;
    for (std::size_t p : fn.blocking_points) {
      if (p >= last_async) drained = true;
    }
    // A call into another TU that blocks or drains counts too.
    if (!drained && LaterDrainingCall(fn, program, last_async - 1)) {
      drained = true;
    }
    if (drained) continue;
    Emit(out, sf, "scratch-lifetime", sc.line,
         "scratch '" + sc.lhs_terminal +
             "' may be released before queued work that references it "
             "completes (no hold capture or blocking point)");
  }
}

// ------------------------------------------------------------------ //
// lock-discipline

/// Naming convention (documented in README.md): the catalog-level
/// registry lock is any mutex whose name contains "registry". Plain
/// worker/device mutexes (`mu_`, `pool_mu_`) are admission-level.
bool IsRegistryKey(const std::string& key) {
  return key.find("registry") != std::string::npos;
}

void CheckLockDiscipline(const SourceFile& sf, const FunctionInfo& fn,
                         const ProgramIndex* program,
                         std::vector<Finding>& out) {
  const auto& toks = sf.stream.tokens;
  std::set<std::size_t> flagged;  // Dedup across the two scans below.
  for (const LockSite& lk : fn.locks) {
    if (!IsRegistryKey(lk.mutex_key) || lk.try_lock) continue;
    const std::size_t begin = lk.token;
    const std::size_t end = lk.scope_end;
    for (const LockSite& other : fn.locks) {
      if (other.token <= begin || other.token >= end) continue;
      if (other.try_lock || !flagged.insert(other.token).second) continue;
      if (IsRegistryKey(other.mutex_key)) {
        Emit(out, sf, "lock-discipline", other.line,
             "registry mutex '" + other.mutex_text +
                 "' re-acquired while '" + lk.mutex_text +
                 "' is already held (self-deadlock)");
      } else {
        Emit(out, sf, "lock-discipline", other.line,
             "per-entry mutex '" + other.mutex_text +
                 "' acquired while registry mutex '" + lk.mutex_text +
                 "' is held (lock-order inversion: admission locks must "
                 "be taken outside the registry lock)");
      }
    }
    for (std::size_t p : fn.blocking_points) {
      if (p <= begin || p >= end) continue;
      if (!flagged.insert(p).second) continue;
      Emit(out, sf, "lock-discipline", toks[p].line,
           "blocking call '" + std::string(toks[p].text) +
               "' while holding registry mutex '" + lk.mutex_text + "'");
    }
    for (const CallSite& c : fn.calls) {
      if (c.token <= begin || c.token >= end) continue;
      if (flagged.count(c.token)) continue;
      if (c.name == "Quiesce") {
        flagged.insert(c.token);
        Emit(out, sf, "lock-discipline", c.line,
             "blocking call 'Quiesce' while holding registry mutex '" +
                 lk.mutex_text + "'");
        continue;
      }
      if (!program || c.name == fn.name) continue;
      const FunctionFacts* f = program->Facts(c.name);
      if (!f) continue;
      if (f->acquires_registry) {
        flagged.insert(c.token);
        Emit(out, sf, "lock-discipline", c.line,
             "call to '" + c.name +
                 "' re-acquires the registry mutex while '" +
                 lk.mutex_text + "' is held (self-deadlock)");
      } else if (f->acquires_admission) {
        flagged.insert(c.token);
        Emit(out, sf, "lock-discipline", c.line,
             "call to '" + c.name +
                 "' acquires a per-entry mutex while registry mutex '" +
                 lk.mutex_text + "' is held (lock-order inversion)");
      } else if (f->blocks || f->quiesces) {
        flagged.insert(c.token);
        Emit(out, sf, "lock-discipline", c.line,
             "call to blocking '" + c.name +
                 "' while holding registry mutex '" + lk.mutex_text + "'");
      }
    }
  }
}

// ------------------------------------------------------------------ //
// streaming-lifecycle

bool IsStreamApiName(const std::string& name) {
  return name == "EnableStreaming" || name == "DisableStreaming" ||
         name == "StreamBegin" || name == "StreamDeliver" ||
         name == "StreamFeedback" || name == "StreamRetire";
}

void CheckStreamingLifecycle(const SourceFile& sf, const FunctionInfo& fn,
                             const ProgramIndex* program,
                             std::vector<Finding>& out) {
  // The API definitions (and wrappers forwarding under the same name)
  // are the protocol's implementation, not a client of it.
  if (IsStreamApiName(fn.name) || fn.name == "Quiesce") return;
  std::vector<const CallSite*> begins, retires, enables, disables;
  for (const CallSite& c : fn.calls) {
    if (c.name == "StreamBegin") begins.push_back(&c);
    if (c.name == "StreamRetire" || c.name == "StreamFeedback") {
      retires.push_back(&c);
    }
    if (c.name == "EnableStreaming") enables.push_back(&c);
    if (c.name == "DisableStreaming") disables.push_back(&c);
  }
  // Helper calls whose facts retire/disable on our behalf.
  bool helper_retires = false;
  bool helper_disables = false;
  std::size_t last_retire_tok = 0;
  for (const CallSite& c : fn.calls) {
    if (program && !IsStreamApiName(c.name) && c.name != fn.name) {
      const FunctionFacts* f = program->Facts(c.name);
      if (f && f->retires_stream) {
        helper_retires = true;
        last_retire_tok = std::max(last_retire_tok, c.token);
      }
      if (f && f->disables_stream) helper_disables = true;
    }
  }
  for (const CallSite* r : retires) {
    last_retire_tok = std::max(last_retire_tok, r->token);
  }

  if (!begins.empty()) {
    if (retires.empty() && !helper_retires) {
      Emit(out, sf, "streaming-lifecycle", begins.front()->line,
           "StreamBegin in '" + fn.name +
               "' is never matched by StreamRetire/StreamFeedback; the "
               "ticket cannot retire on any path");
    }
    // The statically-open region: from the first begin to the last
    // retire (or the end of the function when nothing retires).
    const std::size_t open_begin = begins.front()->token;
    const std::size_t open_end =
        last_retire_tok > 0 ? last_retire_tok : fn.body_end;
    for (const CallSite& c : fn.calls) {
      if (c.token <= open_begin || c.token >= open_end) continue;
      bool bad = c.name == "Quiesce" || c.name == "SnapshotModel" ||
                 c.name == "SaveSnapshot" || c.name == "Evict";
      if (!bad && program && !IsStreamApiName(c.name) &&
          c.name != fn.name) {
        const FunctionFacts* f = program->Facts(c.name);
        bad = f && f->quiesces;
      }
      if (bad) {
        Emit(out, sf, "streaming-lifecycle", c.line,
             "'" + c.name +
                 "' is reachable while a streamed ticket is statically "
                 "open (between StreamBegin and the last retire)");
      }
    }
  }
  for (const CallSite* e : enables) {
    bool matched = helper_disables;
    for (const CallSite* d : disables) {
      if (d->base == e->base) matched = true;
    }
    if (!matched) {
      Emit(out, sf, "streaming-lifecycle", e->line,
           "EnableStreaming on '" +
               (e->base.empty() ? std::string("this") : e->base) +
               "' has no matching DisableStreaming in '" + fn.name + "'");
    }
  }
}

}  // namespace

std::vector<Finding> RunChecks(const SourceFile& sf,
                               const std::vector<std::string>& enabled,
                               const ProgramIndex* program) {
  std::vector<Finding> out;
  if (sf.io_error) return out;
  for (const FunctionInfo& fn : sf.functions) {
    if (Enabled(enabled, "access-set")) {
      CheckAccessSet(sf, fn, program, out);
    }
    if (Enabled(enabled, "readback-sync")) {
      CheckReadbackSync(sf, fn, program, out);
    }
    if (Enabled(enabled, "hot-alloc")) CheckHotAlloc(sf, fn, program, out);
    if (Enabled(enabled, "scratch-lifetime")) {
      CheckScratchLifetime(sf, fn, program, out);
    }
    if (Enabled(enabled, "lock-discipline")) {
      CheckLockDiscipline(sf, fn, program, out);
    }
    if (Enabled(enabled, "streaming-lifecycle")) {
      CheckStreamingLifecycle(sf, fn, program, out);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.check < b.check;
            });
  return out;
}

std::vector<Finding> RunProgramChecks(
    const ProgramIndex& index, const std::vector<std::string>& enabled) {
  std::vector<Finding> out;
  if (!Enabled(enabled, "snapshot-completeness")) return out;
  // Only meaningful when the index saw both a snapshot-friend class and
  // the codec: a header analyzed alone stays silent.
  if (!index.has_codec || index.snapshot_classes.empty()) return out;
  auto basename = [](const std::string& p) {
    const std::size_t pos = p.find_last_of('/');
    return pos == std::string::npos ? p : p.substr(pos + 1);
  };
  for (const auto& [path, cls] : index.snapshot_classes) {
    for (const SnapshotMember& mb : cls.members) {
      if (mb.excluded) continue;
      if (!index.save_fields.count(mb.name)) {
        Finding f;
        f.check = "snapshot-completeness";
        f.path = path;
        f.line = mb.line;
        f.message = "persistent member '" + mb.name + "' of '" + cls.name +
                    "' is never written by the snapshot save path "
                    "(ModelSnapshotAccess::Snapshot in " +
                    basename(index.codec_path) +
                    "); serialize it or annotate it with "
                    "FKDE_SNAPSHOT_EXCLUDE(reason)";
        out.push_back(std::move(f));
      }
      if (!index.restore_fields.count(mb.name)) {
        Finding f;
        f.check = "snapshot-completeness";
        f.path = path;
        f.line = mb.line;
        f.message = "persistent member '" + mb.name + "' of '" + cls.name +
                    "' is never restored by ModelSnapshotAccess::Restore "
                    "in " +
                    basename(index.codec_path) +
                    "; restore it or annotate it with "
                    "FKDE_SNAPSHOT_EXCLUDE(reason)";
        out.push_back(std::move(f));
      }
    }
  }
  return out;
}

}  // namespace fkde_lint
