/// \file checks.h
/// \brief The four fkde-lint checks and their findings.
///
/// Check names (used in diagnostics, `--checks`, and the
/// `FKDE_LINT_SUPPRESS(name)` escape hatch):
///
///   * `access-set`       — kernel capture/declaration completeness and
///                          staleness at EnqueueLaunch / Device::Launch.
///   * `readback-sync`    — every EnqueueCopyToHost result reaches an
///                          Event::Wait / Queue::Finish (or escapes to a
///                          caller who can wait).
///   * `hot-alloc`        — no allocation inside kernel bodies or
///                          FKDE_HOT functions.
///   * `scratch-lifetime` — AcquireScratch handles are parked, held by
///                          the kernel, or outlive a blocking point.

#ifndef FKDE_TOOLS_LINT_CHECKS_H_
#define FKDE_TOOLS_LINT_CHECKS_H_

#include <string>
#include <vector>

#include "model.h"

namespace fkde_lint {

struct Finding {
  std::string check;    ///< One of the four check names.
  std::string path;
  int line = 0;
  std::string message;
  bool suppressed = false;
};

inline constexpr const char* kAllChecks[] = {
    "access-set", "readback-sync", "hot-alloc", "scratch-lifetime"};

/// Runs every check in `enabled` (empty = all) over one modeled file.
/// Findings covered by a FKDE_LINT_SUPPRESS comment are returned with
/// `suppressed = true` so the report can count them.
std::vector<Finding> RunChecks(const SourceFile& sf,
                               const std::vector<std::string>& enabled);

}  // namespace fkde_lint

#endif  // FKDE_TOOLS_LINT_CHECKS_H_
