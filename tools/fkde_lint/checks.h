/// \file checks.h
/// \brief The seven fkde-lint checks and their findings.
///
/// Check names (used in diagnostics, `--checks`, and the
/// `FKDE_LINT_SUPPRESS(name)` escape hatch):
///
///   * `access-set`       — kernel capture/declaration completeness and
///                          staleness at EnqueueLaunch / Device::Launch.
///   * `readback-sync`    — every EnqueueCopyToHost result reaches an
///                          Event::Wait / Queue::Finish (or escapes to a
///                          caller who can wait).
///   * `hot-alloc`        — no allocation inside kernel bodies or
///                          FKDE_HOT functions.
///   * `scratch-lifetime` — AcquireScratch handles are parked, held by
///                          the kernel, or outlive a blocking point.
///   * `lock-discipline`  — the catalog registry mutex (any mutex whose
///                          name contains "registry") is never held
///                          across a per-entry mutex acquire, a blocking
///                          point, or a re-acquire of itself.
///   * `streaming-lifecycle` — StreamBegin is matched by
///                          StreamRetire/StreamFeedback, EnableStreaming
///                          by DisableStreaming, and no Quiesce/snapshot
///                          call is reachable while a ticket is
///                          statically open.
///   * `snapshot-completeness` — every persistent member of a class
///                          declaring `friend class ModelSnapshotAccess`
///                          is written by both the save and restore
///                          paths or carries FKDE_SNAPSHOT_EXCLUDE.
///
/// The first six run per function; when a `ProgramIndex` is supplied
/// they additionally resolve out-of-TU callees through function facts
/// and cross-TU view summaries. snapshot-completeness is a
/// program-level check over the merged index (per-TU invocations get a
/// single-TU index, so it only fires when class and codec share a TU).

#ifndef FKDE_TOOLS_LINT_CHECKS_H_
#define FKDE_TOOLS_LINT_CHECKS_H_

#include <string>
#include <vector>

#include "model.h"
#include "summary.h"

namespace fkde_lint {

struct Finding {
  std::string check;    ///< One of the seven check names.
  std::string path;
  int line = 0;
  std::string message;
  bool suppressed = false;
};

inline constexpr const char* kAllChecks[] = {
    "access-set",      "readback-sync",      "hot-alloc",
    "scratch-lifetime", "lock-discipline",   "streaming-lifecycle",
    "snapshot-completeness"};

/// Runs every per-function check in `enabled` (empty = all) over one
/// modeled file. Findings covered by a FKDE_LINT_SUPPRESS comment are
/// returned with `suppressed = true` so the report can count them.
/// `program` may be null (per-TU mode): out-of-TU callees stay opaque.
std::vector<Finding> RunChecks(const SourceFile& sf,
                               const std::vector<std::string>& enabled,
                               const ProgramIndex* program);

inline std::vector<Finding> RunChecks(
    const SourceFile& sf, const std::vector<std::string>& enabled) {
  return RunChecks(sf, enabled, nullptr);
}

/// Program-level checks over the merged index (today:
/// snapshot-completeness). FKDE_SNAPSHOT_EXCLUDE is the suppression
/// mechanism here — line suppressions don't apply.
std::vector<Finding> RunProgramChecks(
    const ProgramIndex& index, const std::vector<std::string>& enabled);

}  // namespace fkde_lint

#endif  // FKDE_TOOLS_LINT_CHECKS_H_
