/// \file lexer.h
/// \brief Minimal C++ tokenizer for fkde-lint's source model.
///
/// fkde-lint's bundled frontend works on raw (un-preprocessed) token
/// streams: the project's command-stream discipline is expressed in a
/// small, idiomatic surface syntax (`EnqueueLaunch`, `Reads`/`Writes`/
/// `ReadsWrites`, `AcquireScratch`, lambda kernel bodies), so a faithful
/// lexer plus bracket matching recovers everything the checks need
/// without a full C++ frontend. A Clang LibTooling frontend producing
/// the same SourceFile model is the planned drop-in upgrade (see
/// tools/fkde_lint/README.md); the check layer is frontend-agnostic.
///
/// The lexer handles line/block comments (retained, for the
/// `FKDE_LINT_SUPPRESS` escape hatch), string/char literals (including
/// raw strings), preprocessor lines (skipped, with continuations), and
/// maximal-munch multi-character operators. It never throws: malformed
/// input degrades to punctuation tokens and the checks simply see less.

#ifndef FKDE_TOOLS_LINT_LEXER_H_
#define FKDE_TOOLS_LINT_LEXER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace fkde_lint {

enum class TokKind {
  kIdent,   ///< Identifiers and keywords (no keyword table needed).
  kNumber,  ///< Numeric literals.
  kString,  ///< String or character literals (quotes included).
  kPunct,   ///< Operators and punctuation, maximal munch.
  kEnd,     ///< One-past-the-last sentinel token.
};

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string_view text;  ///< View into the owning SourceFile's contents.
  int line = 0;           ///< 1-based source line.
};

/// A comment retained for suppression parsing.
struct Comment {
  std::string_view text;  ///< Full comment text including delimiters.
  int line = 0;           ///< Line the comment starts on.
  int end_line = 0;       ///< Line the comment ends on (block comments).
};

/// Tokenized view of one file. `contents` owns the bytes every
/// string_view points into; keep the object alive while using tokens.
struct TokenStream {
  std::vector<Token> tokens;     ///< Ends with a kEnd sentinel.
  std::vector<Comment> comments; ///< In source order.
  /// For every bracket token index, the index of its matching partner
  /// (() {} []), or 0 for the sentinel/no-match. match[i] == i means
  /// unmatched.
  std::vector<std::size_t> match;
};

/// Tokenizes `contents`. Never fails; unrecognized bytes become
/// single-character punctuation.
TokenStream Tokenize(std::string_view contents);

/// True for an identifier token with exactly this text.
inline bool IsIdent(const Token& t, std::string_view s) {
  return t.kind == TokKind::kIdent && t.text == s;
}

/// True for a punctuation token with exactly this text.
inline bool IsPunct(const Token& t, std::string_view s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

}  // namespace fkde_lint

#endif  // FKDE_TOOLS_LINT_LEXER_H_
