#include "lexer.h"

#include <array>
#include <cctype>

namespace fkde_lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-character operators, longest first within each leading char.
constexpr std::array<std::string_view, 36> kMultiOps = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>",
    "<=>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=",
    "/=",  "%=", "&=", "|=", "^=", ".*", "##", "//", "/*", "*/",
    "",    "",   "",   "",   "",  ""};

}  // namespace

TokenStream Tokenize(std::string_view src) {
  TokenStream out;
  std::size_t i = 0;
  int line = 1;
  const std::size_t n = src.size();

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honoring backslash
    // continuations. Only when '#' starts the line (modulo whitespace).
    if (c == '#') {
      bool line_start = true;
      for (std::size_t k = i; k-- > 0;) {
        if (src[k] == '\n') break;
        if (!std::isspace(static_cast<unsigned char>(src[k]))) {
          line_start = false;
          break;
        }
      }
      if (line_start) {
        while (i < n) {
          if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
            ++line;
            i += 2;
            continue;
          }
          if (src[i] == '\n') break;
          ++i;
        }
        continue;
      }
      out.tokens.push_back({TokKind::kPunct, src.substr(i, 1), line});
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && peek(1) == '/') {
      const std::size_t start = i;
      while (i < n && src[i] != '\n') ++i;
      out.comments.push_back({src.substr(start, i - start), line, line});
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      const std::size_t start = i;
      const int start_line = line;
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) i += 2;
      out.comments.push_back(
          {src.substr(start, i - start), start_line, line});
      continue;
    }
    // Raw string literal: R"delim( ... )delim", with optional encoding
    // prefix (u8R, uR, UR, LR). The prefix must be consumed here — if it
    // falls through to the identifier rule, the payload lexes as an
    // ordinary string that ends at the first inner quote and every
    // bracket after it desynchronizes.
    std::size_t rpfx = std::string_view::npos;
    if (c == 'R' && peek(1) == '"') {
      rpfx = 0;
    } else if ((c == 'u' || c == 'U' || c == 'L') && peek(1) == 'R' &&
               peek(2) == '"') {
      rpfx = 1;
    } else if (c == 'u' && peek(1) == '8' && peek(2) == 'R' &&
               peek(3) == '"') {
      rpfx = 2;
    }
    if (rpfx != std::string_view::npos) {
      const std::size_t r = i + rpfx;  // Position of 'R'.
      std::size_t d = r + 2;
      while (d < n && src[d] != '(' && src[d] != '\n' && d - r < 20) ++d;
      if (d < n && src[d] == '(') {
        std::string closer;
        closer.reserve(d - r);
        closer.push_back(')');
        closer.append(src.substr(r + 2, d - (r + 2)));
        closer.push_back('"');
        const std::size_t end = src.find(closer, d + 1);
        const std::size_t stop =
            end == std::string_view::npos ? n : end + closer.size();
        const int start_line = line;
        for (std::size_t k = i; k < stop; ++k) {
          if (src[k] == '\n') ++line;
        }
        out.tokens.push_back(
            {TokKind::kString, src.substr(i, stop - i), start_line});
        i = stop;
        continue;
      }
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const std::size_t start = i;
      ++i;
      while (i < n && src[i] != c) {
        if (src[i] == '\\' && i + 1 < n) ++i;
        if (src[i] == '\n') ++line;  // Tolerate unterminated literals.
        ++i;
      }
      if (i < n) ++i;
      out.tokens.push_back(
          {TokKind::kString, src.substr(start, i - start), line});
      continue;
    }
    // Identifier.
    if (IsIdentStart(c)) {
      const std::size_t start = i;
      while (i < n && IsIdentChar(src[i])) ++i;
      out.tokens.push_back(
          {TokKind::kIdent, src.substr(start, i - start), line});
      continue;
    }
    // Number (also eats 1e-3, 0x1f, 1'000, trailing suffixes).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      const std::size_t start = i;
      while (i < n) {
        const char d = src[i];
        if (d == '\'') {
          // C++14 digit separator: only valid between alphanumerics.
          // A bare quote after a number opens a char literal — eating
          // it would swallow the literal and desynchronize the stream.
          if (i + 1 < n &&
              std::isalnum(static_cast<unsigned char>(src[i + 1]))) {
            i += 2;
            continue;
          }
          break;
        }
        if (IsIdentChar(d) || d == '.') {
          ++i;
        } else if ((d == '+' || d == '-') && i > start &&
                   (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                    src[i - 1] == 'p' || src[i - 1] == 'P')) {
          ++i;
        } else {
          break;
        }
      }
      out.tokens.push_back(
          {TokKind::kNumber, src.substr(start, i - start), line});
      continue;
    }
    // Punctuation: maximal munch over the multi-op table.
    std::size_t len = 1;
    for (std::string_view op : kMultiOps) {
      if (op.empty()) break;
      if (op.size() > n - i) continue;
      if (src.substr(i, op.size()) == op && op.size() > len) len = op.size();
    }
    // "//" and "/*" never reach here (handled above); "*/" inside code is
    // malformed anyway — emit as-is.
    out.tokens.push_back({TokKind::kPunct, src.substr(i, len), line});
    i += len;
  }
  out.tokens.push_back({TokKind::kEnd, {}, line});

  // Bracket matching: one stack — (), {}, [] nest properly in valid C++.
  out.match.assign(out.tokens.size(), 0);
  std::vector<std::size_t> stack;
  for (std::size_t t = 0; t < out.tokens.size(); ++t) {
    const Token& tok = out.tokens[t];
    if (tok.kind != TokKind::kPunct || tok.text.size() != 1) continue;
    const char p = tok.text[0];
    if (p == '(' || p == '{' || p == '[') {
      stack.push_back(t);
      out.match[t] = t;  // Unmatched until proven otherwise.
    } else if (p == ')' || p == '}' || p == ']') {
      const char open = p == ')' ? '(' : (p == '}' ? '{' : '[');
      // Tolerate mismatches: pop until the matching opener kind.
      while (!stack.empty() &&
             out.tokens[stack.back()].text[0] != open) {
        stack.pop_back();
      }
      if (!stack.empty()) {
        out.match[stack.back()] = t;
        out.match[t] = stack.back();
        stack.pop_back();
      } else {
        out.match[t] = t;
      }
    }
  }
  return out;
}

}  // namespace fkde_lint
