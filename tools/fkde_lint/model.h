/// \file model.h
/// \brief fkde-lint's per-TU source model: functions, buffer alias
/// classes, declared access-sets, launch/readback/scratch sites.
///
/// The model is what the checks consume; it is deliberately independent
/// of how it was extracted (today: the bundled token frontend in
/// model.cc; tomorrow: a Clang LibTooling frontend producing the same
/// structures — see README.md). All reasoning is *name-class* based:
///
///  * Every device-buffer-ish expression is normalized to a **terminal
///    key** — the last identifier of its postfix chain, skipping
///    `.get()` / `.device_data()` / index and call argument lists. So
///    `engine_->shard_contributions(si)`, `*bs.bounds`, `sums[si].get()`
///    normalize to `shard_contributions`, `bounds`, `sums`.
///  * Within one function, assignments/initializations union keys into
///    **alias classes** (union-find): `double* out =
///    moments[si]->device_data();` puts `out` and `moments` in one
///    class; `std::swap(dst, spare)`, `in_buf = dst;`, reference
///    bindings, and ternaries union likewise. Classes are
///    flow-insensitive — ping-pong reduction buffers legitimately
///    collapse into one class, trading precision for zero false
///    positives on that idiom.
///  * Functions that package buffer pointers into a struct (the
///    `ShardKernelView` builder) get a **summary**: the set of buffer
///    keys whose `.device_data()` appears in their body, each flagged
///    conditional when guarded by `if`/`?:`. A capture initialized from
///    such a call expands to the summary's keys at the launch site.
///
/// A key is **bufferish** when it was seen as the subject of
/// `Reads`/`Writes`/`ReadsWrites`, `.device_data()`, `CreateBuffer`, or
/// `AcquireScratch`. Only classes containing a bufferish key
/// participate in the access-set check; scalar aliasing noise is inert.

#ifndef FKDE_TOOLS_LINT_MODEL_H_
#define FKDE_TOOLS_LINT_MODEL_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.h"

namespace fkde_lint {

/// One declared BufferAccess entry of an access array.
struct AccessEntry {
  std::string key;       ///< Normalized buffer key.
  std::string text;      ///< Source text of the builder call, for messages.
  int line = 0;
  std::size_t token = 0;     ///< Token index of the builder ident.
  bool conditional = false;  ///< Guarded by if/?: relative to the array.
};

/// One declared access array (`BufferAccess acc[4];` or
/// `const BufferAccess acc[] = {...};`). The same name may be declared
/// in sibling scopes (if/else arms); launch sites resolve the nearest
/// preceding declaration by token position.
struct AccessArray {
  std::string name;
  std::size_t decl_token = 0;
  int decl_depth = 0;  ///< Brace depth of the declaration, for marking
                       ///< entries added in nested scopes conditional.
  std::vector<AccessEntry> entries;
};

/// A kernel lambda: capture names plus body token range.
struct LambdaInfo {
  std::vector<std::string> captures;  ///< Explicit capture names.
  bool capture_default = false;       ///< [=] or [&] present.
  std::size_t body_begin = 0;         ///< Token index of the body '{'.
  std::size_t body_end = 0;           ///< Token index of the matching '}'.
  std::size_t decl_token = 0;         ///< For named lambda variables.
  int line = 0;
  bool valid = false;
};

/// One EnqueueLaunch / Device::Launch call site, with the access-set
/// declaration already resolved (nearest preceding array of that name,
/// or the inline braced list).
struct LaunchSite {
  int line = 0;
  std::size_t token = 0;     ///< Token index of the call ident.
  std::string kernel_name;   ///< The string literal, if present.
  LambdaInfo body;           ///< Resolved kernel body (possibly via a
                             ///< named local lambda variable).
  bool body_resolved = false;
  std::string access_array;  ///< Name of the access array, empty if inline.
  std::vector<AccessEntry> entries;  ///< Resolved declared entries.
  bool has_accesses = false; ///< False => opaque kernel.
  bool forwarded = false;    ///< Accesses arg is a forwarded span
                             ///< parameter (wrapper function) — skip.
};

/// One EnqueueCopyToHost call site (readback discipline check).
struct ReadbackSite {
  int line = 0;
  std::size_t token = 0;       ///< Index of the EnqueueCopyToHost ident.
  std::string queue_base;      ///< Base ident of the queue expression.
  std::string lhs_base;        ///< Base ident of the assignment LHS ("" if
                               ///< the returned event is discarded).
  std::string lhs_terminal;    ///< Terminal ident of the LHS.
  bool chained_wait = false;   ///< `EnqueueCopyToHost(...).Wait()`.
};

/// One AcquireScratch call site (scratch lifetime check).
struct ScratchSite {
  int line = 0;
  std::size_t token = 0;
  std::string lhs_base;      ///< "" when the handle is discarded.
  std::string lhs_terminal;
};

/// One named call site inside a function body (free or member call).
/// The raw material for interprocedural linking: lock-discipline and
/// streaming-lifecycle resolve these names against per-TU function
/// facts when a whole-program index is available.
struct CallSite {
  std::string name;          ///< Callee identifier.
  std::string base;          ///< Receiver base ident ("" for free calls).
  std::size_t token = 0;     ///< Token index of the callee ident.
  int line = 0;
  bool member = false;       ///< Preceded by '.' or '->'.
};

/// One scoped-lock acquisition: `std::lock_guard<std::mutex> l(mu);`
/// (also unique_lock / scoped_lock). The guard's lifetime is the
/// innermost enclosing brace scope.
struct LockSite {
  std::string mutex_key;     ///< Terminal key of the mutex expression.
  std::string mutex_text;    ///< Source text of the mutex arg, for messages.
  std::size_t token = 0;     ///< Token index of the guard-type ident.
  std::size_t scope_end = 0; ///< Token index of the enclosing scope's '}'.
  int line = 0;
  bool try_lock = false;     ///< try_to_lock / defer_lock — non-blocking.
};

/// One analyzed function (or method) definition.
struct FunctionInfo {
  std::string name;          ///< Terminal identifier (no qualifiers).
  int line = 0;              ///< Line of the body '{'.
  std::size_t body_begin = 0;
  std::size_t body_end = 0;
  bool hot = false;          ///< FKDE_HOT in the signature.

  /// Union-find over normalized keys (resolved; query via Find()).
  std::map<std::string, std::string> parent;
  std::set<std::string> bufferish;    ///< Keys seen in buffer positions.
  /// Names declared inside this function (params included). A name
  /// assigned to but never declared is a member/global — it escapes.
  std::set<std::string> locals;
  /// Keys whose class escapes the function: members/globals the key was
  /// bound to, returned locals, and function parameters.
  std::set<std::string> escaping;
  /// Capture name -> called function name, for summary expansion
  /// (`view = ShardView(si)`).
  std::map<std::string, std::string> call_refs;
  /// Names with provably host-only types (size_t/double/Event/...), or
  /// initialized via make_shared of host data — ignored as captures.
  std::set<std::string> benign;
  /// Declared access arrays, in declaration order.
  std::vector<AccessArray> access_arrays;
  /// Entries not attached to any named array (inline braced lists in
  /// call arguments); launches claim them by token span.
  std::vector<AccessEntry> loose_entries;
  /// Named local lambdas (`auto body = [...](...) {...};`), in
  /// declaration order; launches resolve the nearest preceding one.
  std::vector<std::pair<std::string, LambdaInfo>> lambda_vars;

  std::vector<LaunchSite> launches;
  std::vector<ReadbackSite> readbacks;
  std::vector<ScratchSite> scratches;
  /// Names that hold a ScratchBuffer *by value* (shared_ptr copy):
  /// AcquireScratch assignment targets, ScratchBuffer-typed
  /// declarations, and chain-only aliases of either. Only these keep a
  /// scratch allocation alive when captured — a raw pointer from
  /// `device_data()` shares the alias class but not the ownership.
  std::set<std::string> scratch_handles;

  /// Token indices of blocking synchronization points: `.Wait(`,
  /// `Finish(`, blocking `CopyToHost`/`CopyToDevice`/`Launch`,
  /// `ReduceSum(`/`ReduceSumSegments(`.
  std::vector<std::size_t> blocking_points;
  /// Base idents that are waited on somewhere: `X.Wait()`/`X[i].Wait()`.
  std::set<std::string> waited_bases;
  /// Queue base idents that see a `Finish()` call, with token position.
  std::vector<std::pair<std::string, std::size_t>> finishes;
  /// Later-enqueue rule inputs: (queue_base, lhs_base, token) of every
  /// `X = Q->Enqueue*(...)` assignment.
  struct EnqueueAssign {
    std::string queue_base;
    std::string lhs_base;
    bool lhs_escapes = false;
    std::size_t token = 0;
  };
  std::vector<EnqueueAssign> enqueue_assigns;
  /// Token spans (begin, end) of Enqueue* call argument lists, used to
  /// detect asynchronous uses of scratch classes.
  std::vector<std::pair<std::size_t, std::size_t>> async_arg_spans;
  /// Names returned from this function.
  std::set<std::string> returned;
  /// Every named call site in the body, in token order.
  std::vector<CallSite> calls;
  /// Scoped-lock acquisitions (lock_guard/unique_lock/scoped_lock).
  std::vector<LockSite> locks;
  /// Member names (trailing '_') referenced anywhere in the body.
  std::set<std::string> fields;

  /// Resolved union-find lookup (const: path not compressed).
  std::string Find(const std::string& key) const;
  /// True when `a` and `b` are in the same alias class.
  bool SameClass(const std::string& a, const std::string& b) const;
};

/// A struct-builder summary: buffer keys packaged by a function.
struct ViewSummary {
  /// key -> conditional (guarded by if/?:).
  std::map<std::string, bool> keys;
};

/// One persistent data member of a snapshot-friend class.
struct SnapshotMember {
  std::string name;
  int line = 0;
  bool excluded = false;   ///< Carries FKDE_SNAPSHOT_EXCLUDE(reason).
  std::string reason;
};

/// A class granting `friend class ModelSnapshotAccess` — its members
/// are the persistence surface the snapshot-completeness check audits.
struct SnapshotClassInfo {
  std::string name;
  int line = 0;
  std::vector<SnapshotMember> members;
};

/// Fully extracted model of one translation unit.
struct SourceFile {
  std::string path;
  std::string contents;   ///< Owns the bytes tokens view into.
  TokenStream stream;
  std::vector<FunctionInfo> functions;
  /// Function name -> summary, for capture expansion across functions
  /// of the same TU.
  std::map<std::string, ViewSummary> summaries;
  /// line -> suppressed check names ("*" suppresses all) parsed from
  /// `// FKDE_LINT_SUPPRESS(check): reason` comments. A suppression on
  /// line L covers findings on L and L+1.
  std::map<int, std::set<std::string>> suppressions;
  /// Classes declaring `friend class ModelSnapshotAccess`.
  std::vector<SnapshotClassInfo> snapshot_classes;
  /// True when this TU defines `class ModelSnapshotAccess { ... }` —
  /// i.e. it is the snapshot codec TU.
  bool defines_snapshot_codec = false;
  bool io_error = false;
};

/// Loads and models one file. Sets io_error when unreadable.
SourceFile BuildModel(const std::string& path);

/// Normalizes an expression token range [begin, end) to its terminal
/// key; empty string when no identifier chain is present. Exposed for
/// tests and the check layer.
std::string TerminalKey(const TokenStream& ts, std::size_t begin,
                        std::size_t end);

/// Given the token index of a `device_data` identifier, walks the
/// postfix chain backwards and returns its terminal key
/// (`bs.bounds->device_data()` -> "bounds"). Used by the check layer to
/// spot direct buffer uses inside kernel bodies.
std::string DeviceDataChainKey(const TokenStream& ts, std::size_t devpos);

}  // namespace fkde_lint

#endif  // FKDE_TOOLS_LINT_MODEL_H_
