/// \file summary.h
/// \brief Per-TU function summaries and the whole-program index.
///
/// fkde-lint's two-pass mode works on this layer:
///
///   * **Pass 1** models each TU of the compilation database and
///     distills it to a `TuSummary` — view-builder summaries, boolean
///     `FunctionFacts` per function (blocks, drains, allocates, lock
///     acquisitions, streaming calls), the snapshot-friend classes with
///     their persistent members, and (for the codec TU) the field sets
///     written by the save/restore paths. Summaries serialize to a
///     line-oriented text file, one per TU (`--emit-summaries`).
///   * **Pass 2** merges summaries — freshly built or loaded from disk
///     (`--summaries`) — into a `ProgramIndex` and re-runs the checks
///     with it, so calls into other TUs resolve instead of being
///     treated as opaque.
///
/// Linking is by function *name*, mirroring the model's name-class
/// philosophy. Two defenses keep that sound in the flagging direction:
/// view summaries whose key sets disagree across TUs are marked
/// ambiguous and never expanded, and facts are OR-merged so they can
/// only add conservative knowledge (a callee that might block is
/// treated as blocking).

#ifndef FKDE_TOOLS_LINT_SUMMARY_H_
#define FKDE_TOOLS_LINT_SUMMARY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "model.h"

namespace fkde_lint {

/// Boolean distillation of one function body, OR-merged across TUs.
struct FunctionFacts {
  bool blocks = false;             ///< Contains a blocking sync point.
  bool drains = false;             ///< Finish()/Synchronize on a queue.
  bool allocates = false;          ///< Heap/container allocation.
  bool acquires_registry = false;  ///< Locks a *registry*-named mutex.
  bool acquires_admission = false; ///< Locks any other (non-try) mutex.
  bool begins_stream = false;      ///< Calls StreamBegin.
  bool retires_stream = false;     ///< Calls StreamRetire/StreamFeedback.
  bool enables_stream = false;     ///< Calls EnableStreaming.
  bool disables_stream = false;    ///< Calls DisableStreaming.
  bool quiesces = false;           ///< Calls Quiesce or a snapshot entry.

  bool Any() const {
    return blocks || drains || allocates || acquires_registry ||
           acquires_admission || begins_stream || retires_stream ||
           enables_stream || disables_stream || quiesces;
  }
};

/// Everything pass 2 needs to know about one TU.
struct TuSummary {
  std::string path;
  std::map<std::string, ViewSummary> views;
  std::map<std::string, FunctionFacts> facts;
  std::vector<SnapshotClassInfo> snapshot_classes;
  /// Codec TU only (defines `class ModelSnapshotAccess`): member names
  /// written by the save (`Snapshot`) and restore (`Restore`) paths.
  bool has_codec = false;
  std::set<std::string> save_fields;
  std::set<std::string> restore_fields;
  int save_line = 0;
  int restore_line = 0;
};

/// Distills a modeled TU. Functions whose facts are all false are
/// omitted from `facts` — absence means "nothing interesting".
TuSummary Summarize(const SourceFile& sf);

/// Line-oriented text serialization (format documented in DESIGN §9).
std::string SerializeTuSummary(const TuSummary& tu);

/// Parses `SerializeTuSummary` output. Returns false on malformed
/// input (wrong magic/version); partial records are skipped.
bool ParseTuSummary(const std::string& text, TuSummary* out);

/// The merged whole-program view consumed by the checks.
struct ProgramIndex {
  std::map<std::string, ViewSummary> views;
  std::set<std::string> ambiguous_views;  ///< Conflicting defs — never expanded.
  std::map<std::string, FunctionFacts> facts;
  /// (defining path, class) for every snapshot-friend class seen.
  std::vector<std::pair<std::string, SnapshotClassInfo>> snapshot_classes;
  bool has_codec = false;
  std::string codec_path;
  std::set<std::string> save_fields;
  std::set<std::string> restore_fields;
  int save_line = 0;
  int restore_line = 0;

  void Add(const TuSummary& tu);
  /// Null when unknown or ambiguous.
  const ViewSummary* View(const std::string& name) const;
  const FunctionFacts* Facts(const std::string& name) const;
};

}  // namespace fkde_lint

#endif  // FKDE_TOOLS_LINT_SUMMARY_H_
