#include "histogram/genhist.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "workload/workload.h"

namespace fkde {
namespace {

Table Clustered(std::size_t rows, std::size_t dims, std::uint64_t seed) {
  ClusterBoxesParams params;
  params.rows = rows;
  params.dims = dims;
  params.num_clusters = 5;
  params.noise_fraction = 0.1;
  return GenerateClusterBoxes(params, seed);
}

TEST(GenHist, BuildRejectsBadInputs) {
  Table empty(2);
  EXPECT_FALSE(GenHist::Build(empty).ok());
  Table table = Clustered(100, 2, 1);
  GenHistOptions options;
  options.max_buckets = 1;
  EXPECT_FALSE(GenHist::Build(table, options).ok());
  options = GenHistOptions();
  options.initial_resolution = 1;
  EXPECT_FALSE(GenHist::Build(table, options).ok());
  options = GenHistOptions();
  options.resolution_decay = 1.5;
  EXPECT_FALSE(GenHist::Build(table, options).ok());
  options = GenHistOptions();
  options.density_threshold = 0.5;
  EXPECT_FALSE(GenHist::Build(table, options).ok());
}

TEST(GenHist, MassIsConserved) {
  const Table table = Clustered(20000, 3, 2);
  GenHist hist = GenHist::Build(table).ValueOrDie();
  EXPECT_DOUBLE_EQ(hist.TotalFrequency(), 20000.0);
  // Whole-domain query returns ~everything.
  EXPECT_NEAR(hist.EstimateSelectivity(table.Bounds()), 1.0, 1e-9);
}

TEST(GenHist, RespectsBucketBudget) {
  const Table table = Clustered(30000, 3, 3);
  GenHistOptions options;
  options.max_buckets = 40;
  GenHist hist = GenHist::Build(table, options).ValueOrDie();
  EXPECT_LE(hist.NumBuckets(), 40u);
  EXPECT_GT(hist.NumBuckets(), 5u);  // Clustered data produces buckets.
  EXPECT_EQ(hist.ModelBytes(), hist.NumBuckets() * 4 * 7);
}

TEST(GenHist, BeatsUniformAssumptionOnClusteredData) {
  const Table table = Clustered(50000, 2, 4);
  GenHist hist = GenHist::Build(table).ValueOrDie();
  const WorkloadGenerator generator(table);
  Rng rng(5);
  const auto queries =
      generator.Generate(ParseWorkloadName("dt").ValueOrDie(), 60, &rng);
  const Box bounds = table.Bounds();
  double genhist_error = 0.0, uniform_error = 0.0;
  for (const Query& q : queries) {
    genhist_error += std::abs(hist.EstimateSelectivity(q.box) -
                              q.selectivity);
    // Pure uniformity assumption over the domain.
    double volume_fraction = 1.0;
    for (std::size_t j = 0; j < 2; ++j) {
      const double lo = std::max(q.box.lower(j), bounds.lower(j));
      const double hi = std::min(q.box.upper(j), bounds.upper(j));
      volume_fraction *= std::max(hi - lo, 0.0) / bounds.Extent(j);
    }
    uniform_error += std::abs(volume_fraction - q.selectivity);
  }
  EXPECT_LT(genhist_error, 0.6 * uniform_error);
}

TEST(GenHist, EstimatesAreValidSelectivities) {
  const Table table = Clustered(10000, 4, 6);
  GenHist hist = GenHist::Build(table).ValueOrDie();
  Rng rng(7);
  for (int round = 0; round < 50; ++round) {
    std::vector<double> lo(4), hi(4);
    for (int j = 0; j < 4; ++j) {
      const double a = rng.Uniform(-0.5, 1.5), b = rng.Uniform(-0.5, 1.5);
      lo[j] = std::min(a, b);
      hi[j] = std::max(a, b);
    }
    const double est = hist.EstimateSelectivity(Box(lo, hi));
    ASSERT_GE(est, 0.0);
    ASSERT_LE(est, 1.0);
  }
}

TEST(GenHist, UniformDataProducesFewBuckets) {
  Rng rng(8);
  Table table(2);
  for (int i = 0; i < 20000; ++i) {
    table.Insert(std::vector<double>{rng.Uniform(), rng.Uniform()});
  }
  GenHist hist = GenHist::Build(table).ValueOrDie();
  // No strong density contrast: few (mostly residual) buckets, and the
  // uniformity estimate is accurate.
  const Box box({0.25, 0.1}, {0.75, 0.9});
  EXPECT_NEAR(hist.EstimateSelectivity(box), 0.4, 0.05);
}

TEST(GenHist, ConstantAttributeHandled) {
  Rng rng(9);
  Table table(2);
  for (int i = 0; i < 5000; ++i) {
    table.Insert(std::vector<double>{rng.Uniform(), 3.0});
  }
  GenHist hist = GenHist::Build(table).ValueOrDie();
  EXPECT_NEAR(hist.EstimateSelectivity(Box({0.0, 2.0}, {1.0, 4.0})), 1.0,
              0.05);
}

TEST(GenHist, DeterministicForSeed) {
  const Table table = Clustered(10000, 2, 10);
  GenHistOptions options;
  options.seed = 99;
  GenHist a = GenHist::Build(table, options).ValueOrDie();
  GenHist b = GenHist::Build(table, options).ValueOrDie();
  const Box box({0.1, 0.2}, {0.6, 0.8});
  EXPECT_DOUBLE_EQ(a.EstimateSelectivity(box), b.EstimateSelectivity(box));
  EXPECT_EQ(a.NumBuckets(), b.NumBuckets());
}

}  // namespace
}  // namespace fkde
