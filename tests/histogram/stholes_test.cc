#include "histogram/stholes.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "workload/workload.h"

namespace fkde {
namespace {

struct SthFixture {
  SthFixture(std::size_t rows, std::size_t dims, std::uint64_t seed,
             SthOptions options = SthOptions()) {
    ClusterBoxesParams params;
    params.rows = rows;
    params.dims = dims;
    params.num_clusters = 5;
    table = std::make_unique<Table>(GenerateClusterBoxes(params, seed));
    counter = [t = table.get()](const Box& box) {
      return t->CountInBox(box);
    };
    histogram = std::make_unique<STHoles>(table->Bounds(), table->num_rows(),
                                          counter, options);
  }

  void Feed(const Box& box) {
    const double truth = static_cast<double>(table->CountInBox(box)) /
                         static_cast<double>(table->num_rows());
    (void)histogram->EstimateSelectivity(box);
    histogram->ObserveTrueSelectivity(box, truth);
  }

  std::unique_ptr<Table> table;
  RegionCounter counter;
  std::unique_ptr<STHoles> histogram;
};

TEST(STHoles, InitialEstimateIsUniformityAssumption) {
  SthFixture f(10000, 2, 1);
  // Only the root bucket: estimate = fraction of the domain volume.
  const Box domain = f.table->Bounds();
  const Box half({domain.lower(0), domain.lower(1)},
                 {domain.Center(0), domain.upper(1)});
  const double est = f.histogram->EstimateSelectivity(half);
  const double volume_fraction = half.Volume() / domain.Volume();
  EXPECT_NEAR(est, volume_fraction, 1e-9);
}

TEST(STHoles, LearnsExactAnswerForRepeatedQuery) {
  SthFixture f(10000, 2, 2);
  const Box query({0.2, 0.2}, {0.4, 0.5});
  const double truth = static_cast<double>(f.table->CountInBox(query)) /
                       static_cast<double>(f.table->num_rows());
  f.Feed(query);
  // After drilling the exact hole, the estimate is (nearly) exact.
  EXPECT_NEAR(f.histogram->EstimateSelectivity(query), truth,
              0.05 * std::max(truth, 0.01) + 1e-6);
}

TEST(STHoles, FeedbackImprovesWorkloadAccuracy) {
  SthFixture f(30000, 3, 3);
  WorkloadGenerator generator(*f.table);
  Rng rng(4);
  const WorkloadSpec spec = ParseWorkloadName("dt").ValueOrDie();
  const auto training = generator.Generate(spec, 150, &rng);
  const auto test = generator.Generate(spec, 50, &rng);

  auto error_on_test = [&] {
    double total = 0.0;
    for (const Query& q : test) {
      total += std::abs(f.histogram->EstimateSelectivity(q.box) -
                        q.selectivity);
    }
    return total / test.size();
  };
  const double before = error_on_test();
  for (const Query& q : training) f.Feed(q.box);
  const double after = error_on_test();
  EXPECT_LT(after, before);
  f.histogram->CheckInvariants();
}

TEST(STHoles, InvariantsHoldUnderHeavyRefinement) {
  SthFixture f(20000, 3, 5);
  WorkloadGenerator generator(*f.table);
  Rng rng(6);
  for (const char* workload : {"dt", "dv", "ut", "uv"}) {
    const auto queries = generator.Generate(
        ParseWorkloadName(workload).ValueOrDie(), 50, &rng);
    for (const Query& q : queries) f.Feed(q.box);
    f.histogram->CheckInvariants();
  }
}

TEST(STHoles, BudgetIsEnforced) {
  SthOptions options;
  options.max_buckets = 16;
  SthFixture f(20000, 2, 7, options);
  WorkloadGenerator generator(*f.table);
  Rng rng(8);
  const auto queries =
      generator.Generate(ParseWorkloadName("dt").ValueOrDie(), 200, &rng);
  for (const Query& q : queries) {
    f.Feed(q.box);
    ASSERT_LE(f.histogram->NumBuckets(), 16u);
  }
  f.histogram->CheckInvariants();
  // The model must have actually used its budget.
  EXPECT_GT(f.histogram->NumBuckets(), 4u);
}

TEST(STHoles, ModelBytesScaleWithBuckets) {
  SthFixture f(5000, 3, 9);
  const std::size_t before = f.histogram->ModelBytes();
  WorkloadGenerator generator(*f.table);
  Rng rng(10);
  const auto queries =
      generator.Generate(ParseWorkloadName("dt").ValueOrDie(), 50, &rng);
  for (const Query& q : queries) f.Feed(q.box);
  EXPECT_GT(f.histogram->ModelBytes(), before);
  EXPECT_EQ(f.histogram->ModelBytes(),
            f.histogram->NumBuckets() * 4 * (2 * 3 + 1));
}

TEST(STHoles, QueriesOutsideDomainGrowRoot) {
  SthFixture f(5000, 2, 11);
  const Box outside({2.0, 2.0}, {3.0, 3.0});  // Data lives in [0,1]^2.
  (void)f.histogram->EstimateSelectivity(outside);
  f.histogram->ObserveTrueSelectivity(outside, 0.0);
  f.histogram->CheckInvariants();
  // After growth, estimating there must work and be ~0.
  EXPECT_NEAR(f.histogram->EstimateSelectivity(outside), 0.0, 0.05);
}

TEST(STHoles, EmptyRegionLearnedAsEmpty) {
  SthFixture f(20000, 2, 12);
  // Find an empty box (clustered data leaves gaps).
  Rng rng(13);
  Box empty_box({0.0, 0.0}, {0.0, 0.0});
  bool found = false;
  for (int attempt = 0; attempt < 200 && !found; ++attempt) {
    std::vector<double> lo(2), hi(2);
    for (int j = 0; j < 2; ++j) {
      lo[j] = rng.Uniform(0.0, 0.9);
      hi[j] = lo[j] + 0.05;
    }
    const Box candidate(lo, hi);
    if (f.table->CountInBox(candidate) == 0) {
      empty_box = candidate;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  f.Feed(empty_box);
  EXPECT_NEAR(f.histogram->EstimateSelectivity(empty_box), 0.0, 1e-9);
}

TEST(STHoles, TotalFrequencyTracksRelationSize) {
  SthFixture f(10000, 2, 14);
  WorkloadGenerator generator(*f.table);
  Rng rng(15);
  const auto queries =
      generator.Generate(ParseWorkloadName("dv").ValueOrDie(), 100, &rng);
  for (const Query& q : queries) f.Feed(q.box);
  // Frequencies stay in the right order of magnitude (conservation is
  // approximate under drilling + merging, exact under pure drilling).
  EXPECT_GT(f.histogram->TotalFrequency(), 0.3 * 10000);
  EXPECT_LT(f.histogram->TotalFrequency(), 3.0 * 10000);
}

TEST(STHoles, AdaptsAfterBulkDelete) {
  SthFixture f(20000, 2, 16);
  // Learn the dense region, then delete a cluster and re-learn.
  std::vector<double> lo(2, 1e300), hi(2, -1e300);
  for (std::size_t i = 0; i < f.table->num_rows(); ++i) {
    if (f.table->Tag(i) != 0) continue;
    for (int j = 0; j < 2; ++j) {
      lo[j] = std::min(lo[j], f.table->At(i, j));
      hi[j] = std::max(hi[j], f.table->At(i, j));
    }
  }
  const Box cluster_box(lo, hi);
  f.Feed(cluster_box);
  const double before_delete = f.histogram->EstimateSelectivity(cluster_box);
  EXPECT_GT(before_delete, 0.0);

  const std::size_t removed = f.table->DeleteByTag(0);
  f.histogram->OnDelete(removed, f.table->num_rows());
  f.Feed(cluster_box);  // Feedback reports the (much lower) new truth.
  const double truth = static_cast<double>(f.table->CountInBox(cluster_box)) /
                       static_cast<double>(f.table->num_rows());
  EXPECT_NEAR(f.histogram->EstimateSelectivity(cluster_box), truth,
              0.3 * std::max(truth, 0.01));
}

TEST(STHoles, SelectivityClampedToUnitInterval) {
  SthFixture f(1000, 2, 17);
  WorkloadGenerator generator(*f.table);
  Rng rng(18);
  const auto queries =
      generator.Generate(ParseWorkloadName("uv").ValueOrDie(), 50, &rng);
  for (const Query& q : queries) {
    const double est = f.histogram->EstimateSelectivity(q.box);
    EXPECT_GE(est, 0.0);
    EXPECT_LE(est, 1.0);
    f.Feed(q.box);
  }
}

TEST(SthBucketBudget, MatchesPaperFormula) {
  // d * 4kB at 4 bytes per value and 2d+1 values per bucket.
  EXPECT_EQ(SthBucketBudgetForBytes(8 * 4096, 8), (8u * 4096u) / (4u * 17u));
  EXPECT_EQ(SthBucketBudgetForBytes(3 * 4096, 3), (3u * 4096u) / (4u * 7u));
  // Floor of 4 buckets.
  EXPECT_EQ(SthBucketBudgetForBytes(1, 3), 4u);
}

// Parameterized dimensional sweep of refinement + invariants.
class SthDimsSweep : public ::testing::TestWithParam<int> {};

TEST_P(SthDimsSweep, RefinementKeepsInvariantsAndImproves) {
  const int dims = GetParam();
  SthFixture f(10000, dims, 20 + dims);
  WorkloadGenerator generator(*f.table);
  Rng rng(30 + dims);
  const auto training = generator.Generate(
      ParseWorkloadName("dt").ValueOrDie(), 100, &rng);
  const auto test = generator.Generate(
      ParseWorkloadName("dt").ValueOrDie(), 40, &rng);
  auto test_error = [&] {
    double total = 0.0;
    for (const Query& q : test) {
      total += std::abs(f.histogram->EstimateSelectivity(q.box) -
                        q.selectivity);
    }
    return total / test.size();
  };
  const double before = test_error();
  for (const Query& q : training) f.Feed(q.box);
  f.histogram->CheckInvariants();
  EXPECT_LT(test_error(), before);
}

INSTANTIATE_TEST_SUITE_P(Dims, SthDimsSweep, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace fkde
