#include "histogram/avi.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"

namespace fkde {
namespace {

TEST(Avi, ExactOnUniformIndependentData) {
  Rng rng(1);
  Table table(2);
  for (int i = 0; i < 50000; ++i) {
    table.Insert(std::vector<double>{rng.Uniform(), rng.Uniform()});
  }
  AviHistogram avi = AviHistogram::Build(table, 64).ValueOrDie();
  const Box box({0.1, 0.3}, {0.5, 0.8});
  // Independent uniforms: truth = 0.4 * 0.5 = 0.2.
  EXPECT_NEAR(avi.EstimateSelectivity(box), 0.2, 0.02);
}

TEST(Avi, MarginalSelectivityIsCdfDifference) {
  Rng rng(2);
  Table table(1);
  for (int i = 0; i < 20000; ++i) {
    table.Insert(std::vector<double>{rng.Gaussian(0.0, 1.0)});
  }
  AviHistogram avi = AviHistogram::Build(table, 128).ValueOrDie();
  // P(-1 <= X <= 1) ~ 0.6827 for a standard normal.
  EXPECT_NEAR(avi.MarginalSelectivity(0, -1.0, 1.0), 0.6827, 0.03);
  EXPECT_NEAR(avi.MarginalSelectivity(0, -10.0, 10.0), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(avi.MarginalSelectivity(0, 5.0, 4.0), 0.0);
}

TEST(Avi, FailsOnCorrelatedData) {
  // Perfectly correlated attributes: x2 = x1. The diagonal band query
  // has true selectivity ~0.1 but AVI predicts 0.1 * 0.1 = 0.01.
  Rng rng(3);
  Table table(2);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Uniform();
    table.Insert(std::vector<double>{x, x});
  }
  AviHistogram avi = AviHistogram::Build(table, 64).ValueOrDie();
  const Box band({0.4, 0.4}, {0.5, 0.5});
  const double truth = static_cast<double>(table.CountInBox(band)) / 20000.0;
  EXPECT_NEAR(truth, 0.1, 0.01);                   // Data is on the diagonal.
  EXPECT_NEAR(avi.EstimateSelectivity(band), 0.01, 0.005);  // AVI collapses.
}

TEST(Avi, HandlesHeavilyRepeatedValues) {
  Table table(1);
  for (int i = 0; i < 1000; ++i) {
    table.Insert(std::vector<double>{i < 900 ? 5.0 : static_cast<double>(i)});
  }
  AviHistogram avi = AviHistogram::Build(table, 16).ValueOrDie();
  // The spike at 5.0 holds 90% of rows.
  EXPECT_NEAR(avi.MarginalSelectivity(0, 5.0, 5.0), 0.9, 0.05);
}

TEST(Avi, EquiDepthBucketsBalanceFractions) {
  Rng rng(4);
  Table table(1);
  for (int i = 0; i < 10000; ++i) {
    table.Insert(std::vector<double>{rng.Exponential(1.0)});
  }
  AviHistogram avi = AviHistogram::Build(table, 32).ValueOrDie();
  // Any interval covering k buckets should hold ~k/32 of the data; probe
  // via quantiles of the distribution.
  EXPECT_NEAR(avi.MarginalSelectivity(0, 0.0, 0.6931), 0.5, 0.03);  // Median.
}

TEST(Avi, BuildRejectsBadInput) {
  Table empty(2);
  EXPECT_FALSE(AviHistogram::Build(empty, 8).ok());
  Table table(1);
  table.Insert(std::vector<double>{1.0});
  EXPECT_FALSE(AviHistogram::Build(table, 0).ok());
}

TEST(Avi, ModelBytesBounded) {
  const Table table = GenerateBikeLike(2000, 5);
  AviHistogram avi = AviHistogram::Build(table, 64).ValueOrDie();
  EXPECT_GT(avi.ModelBytes(), 0u);
  // <= dims * (edges + fractions) * 8 bytes.
  EXPECT_LE(avi.ModelBytes(), 16u * (65u + 64u) * 8u);
  EXPECT_EQ(avi.dims(), 16u);
}

}  // namespace
}  // namespace fkde
