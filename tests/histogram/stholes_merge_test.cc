// Targeted tests of STHoles merging behavior and degenerate budgets.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "histogram/stholes.h"
#include "workload/workload.h"

namespace fkde {
namespace {

struct MergeFixture {
  explicit MergeFixture(std::size_t max_buckets, std::uint64_t seed = 3) {
    ClusterBoxesParams params;
    params.rows = 15000;
    params.dims = 2;
    params.num_clusters = 6;
    table = std::make_unique<Table>(GenerateClusterBoxes(params, seed));
    SthOptions options;
    options.max_buckets = max_buckets;
    histogram = std::make_unique<STHoles>(
        table->Bounds(), table->num_rows(),
        [t = table.get()](const Box& box) { return t->CountInBox(box); },
        options);
  }

  void Feed(const Box& box) {
    const double truth = static_cast<double>(table->CountInBox(box)) /
                         static_cast<double>(table->num_rows());
    (void)histogram->EstimateSelectivity(box);
    histogram->ObserveTrueSelectivity(box, truth);
  }

  void FeedWorkload(std::size_t count, std::uint64_t seed) {
    const WorkloadGenerator generator(*table);
    Rng rng(seed);
    for (const Query& q : generator.Generate(
             ParseWorkloadName("dt").ValueOrDie(), count, &rng)) {
      Feed(q.box);
    }
  }

  std::unique_ptr<Table> table;
  std::unique_ptr<STHoles> histogram;
};

TEST(SthMerge, BudgetOfOneKeepsOnlyRoot) {
  MergeFixture f(1);
  f.FeedWorkload(50, 4);
  EXPECT_EQ(f.histogram->NumBuckets(), 1u);
  f.histogram->CheckInvariants();
  // Still a usable (if crude) estimator.
  const double est =
      f.histogram->EstimateSelectivity(f.table->Bounds());
  EXPECT_GT(est, 0.5);
}

TEST(SthMerge, TinyBudgetsStayConsistent) {
  for (std::size_t budget : {2u, 3u, 5u}) {
    MergeFixture f(budget);
    f.FeedWorkload(80, budget);
    EXPECT_LE(f.histogram->NumBuckets(), budget);
    f.histogram->CheckInvariants();
  }
}

TEST(SthMerge, FrequenciesRemainNonNegativeUnderChurn) {
  MergeFixture f(24);
  // Alternate wildly different query shapes to force drills + merges.
  Rng rng(9);
  for (int i = 0; i < 150; ++i) {
    std::vector<double> lo(2), hi(2);
    for (int j = 0; j < 2; ++j) {
      const double a = rng.Uniform(), b = rng.Uniform();
      lo[j] = std::min(a, b);
      hi[j] = std::max(a, b);
    }
    f.Feed(Box(lo, hi));
    f.histogram->CheckInvariants();  // Includes frequency >= 0.
  }
}

TEST(SthMerge, MergePreservesApproximateTotalFrequency) {
  MergeFixture big(1000);
  MergeFixture small(16);
  big.FeedWorkload(100, 5);
  small.FeedWorkload(100, 5);
  // Both trees should still account for roughly the relation size.
  const double n = 15000.0;
  EXPECT_NEAR(big.histogram->TotalFrequency(), n, 0.5 * n);
  EXPECT_NEAR(small.histogram->TotalFrequency(), n, 0.5 * n);
}

TEST(SthMerge, AccuracyDegradesGracefullyWithBudget) {
  // Smaller budgets must not be catastrophically worse — merging picks
  // low-penalty merges. (Weak monotonicity, allowing noise.)
  const WorkloadGenerator* generator = nullptr;
  auto error_with_budget = [&](std::size_t budget) {
    MergeFixture f(budget, 7);
    WorkloadGenerator local_generator(*f.table);
    generator = &local_generator;
    Rng rng(8);
    const auto training = local_generator.Generate(
        ParseWorkloadName("dt").ValueOrDie(), 120, &rng);
    const auto test = local_generator.Generate(
        ParseWorkloadName("dt").ValueOrDie(), 60, &rng);
    for (const Query& q : training) f.Feed(q.box);
    double total = 0.0;
    for (const Query& q : test) {
      total += std::abs(f.histogram->EstimateSelectivity(q.box) -
                        q.selectivity);
    }
    return total / test.size();
  };
  const double rich = error_with_budget(400);
  const double poor = error_with_budget(8);
  EXPECT_LT(rich, poor * 1.1);  // Rich budget at least matches poor.
}

TEST(SthMerge, RepeatedIdenticalFeedbackIsStable) {
  MergeFixture f(64);
  const Box box({0.2, 0.2}, {0.5, 0.6});
  for (int i = 0; i < 30; ++i) f.Feed(box);
  f.histogram->CheckInvariants();
  // The learned bucket keeps the exact answer; no oscillation.
  const double truth = static_cast<double>(f.table->CountInBox(box)) /
                       static_cast<double>(f.table->num_rows());
  EXPECT_NEAR(f.histogram->EstimateSelectivity(box), truth,
              0.05 * std::max(truth, 0.01));
  // And the bucket count stabilized well under the budget (epsilon guard
  // prevents churn).
  EXPECT_LE(f.histogram->NumBuckets(), 8u);
}

TEST(SthMerge, ZeroVolumeQueriesDoNotCorruptTree) {
  MergeFixture f(64);
  const Box degenerate({0.3, 0.3}, {0.3, 0.7});  // Zero width in dim 0.
  (void)f.histogram->EstimateSelectivity(degenerate);
  f.histogram->ObserveTrueSelectivity(degenerate, 0.0);
  f.histogram->CheckInvariants();
  f.FeedWorkload(20, 10);
  f.histogram->CheckInvariants();
}

}  // namespace
}  // namespace fkde
