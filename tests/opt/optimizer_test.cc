#include "opt/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fkde {
namespace {

Problem QuadraticProblem(std::vector<double> center, double lo, double hi) {
  Problem problem;
  const std::size_t d = center.size();
  problem.lower.assign(d, lo);
  problem.upper.assign(d, hi);
  problem.objective = [center](std::span<const double> x,
                               std::span<double> grad) {
    double f = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double delta = x[i] - center[i];
      f += delta * delta;
      if (!grad.empty()) grad[i] = 2.0 * delta;
    }
    return f;
  };
  return problem;
}

TEST(Lbfgsb, ConvergesOnSeparableQuadratic) {
  const Problem problem = QuadraticProblem({1.0, -2.0, 3.0}, -10.0, 10.0);
  const std::vector<double> x0 = {5.0, 5.0, 5.0};
  const OptimizeResult result = MinimizeLbfgsb(problem, x0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 1.0, 1e-5);
  EXPECT_NEAR(result.x[1], -2.0, 1e-5);
  EXPECT_NEAR(result.x[2], 3.0, 1e-5);
  EXPECT_NEAR(result.f, 0.0, 1e-9);
}

TEST(Lbfgsb, RespectsActiveBounds) {
  // Minimum at (5, 5) but the box caps at 2: solution clamps to the bound.
  const Problem problem = QuadraticProblem({5.0, 5.0}, -2.0, 2.0);
  const OptimizeResult result = MinimizeLbfgsb(problem, {{0.0, 0.0}});
  EXPECT_NEAR(result.x[0], 2.0, 1e-8);
  EXPECT_NEAR(result.x[1], 2.0, 1e-8);
}

TEST(Lbfgsb, StartOutsideBoundsIsClamped) {
  const Problem problem = QuadraticProblem({0.0}, -1.0, 1.0);
  const OptimizeResult result = MinimizeLbfgsb(problem, {{100.0}});
  EXPECT_NEAR(result.x[0], 0.0, 1e-6);
}

TEST(Lbfgsb, RosenbrockValley) {
  Problem problem;
  problem.lower = {-5.0, -5.0};
  problem.upper = {5.0, 5.0};
  problem.objective = [](std::span<const double> x, std::span<double> grad) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    if (!grad.empty()) {
      grad[0] = -2.0 * a - 400.0 * x[0] * b;
      grad[1] = 200.0 * b;
    }
    return a * a + 100.0 * b * b;
  };
  LocalOptions options;
  options.max_iterations = 500;
  const OptimizeResult result =
      MinimizeLbfgsb(problem, {{-1.2, 1.0}}, options);
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
  EXPECT_NEAR(result.x[1], 1.0, 1e-3);
}

TEST(Lbfgsb, IllConditionedQuadratic) {
  Problem problem;
  problem.lower = {-100.0, -100.0};
  problem.upper = {100.0, 100.0};
  problem.objective = [](std::span<const double> x, std::span<double> grad) {
    if (!grad.empty()) {
      grad[0] = 2.0 * 1000.0 * x[0];
      grad[1] = 2.0 * 0.01 * x[1];
    }
    return 1000.0 * x[0] * x[0] + 0.01 * x[1] * x[1];
  };
  LocalOptions options;
  options.max_iterations = 400;
  const OptimizeResult result =
      MinimizeLbfgsb(problem, {{1.0, 50.0}}, options);
  EXPECT_NEAR(result.f, 0.0, 1e-4);
}

TEST(Lbfgsb, TinyObjectiveScaleStillMoves) {
  // Regression guard: losses in the bandwidth problem are O(1e-6); the
  // optimizer must still make progress rather than declare convergence.
  Problem problem;
  problem.lower = {-10.0};
  problem.upper = {10.0};
  problem.objective = [](std::span<const double> x, std::span<double> grad) {
    const double delta = x[0] - 3.0;
    if (!grad.empty()) grad[0] = 2e-6 * delta;
    return 1e-6 * delta * delta;
  };
  const OptimizeResult result = MinimizeLbfgsb(problem, {{0.0}});
  EXPECT_NEAR(result.x[0], 3.0, 1e-3);
}

TEST(Mlsl, EscapesLocalMinimum) {
  // Double well: local minimum near x=-1 (f=0.05), global near x=1.1
  // (f=-1). Local search from x0=-1 stays put; MLSL must find the global.
  Problem problem;
  problem.lower = {-3.0};
  problem.upper = {3.0};
  problem.objective = [](std::span<const double> x, std::span<double> grad) {
    // f(x) = (x^2 - 1)^2 - 0.5 x  -> wells near +-1, right one deeper.
    const double v = x[0] * x[0] - 1.0;
    if (!grad.empty()) grad[0] = 4.0 * x[0] * v - 0.5;
    return v * v - 0.5 * x[0];
  };
  Rng rng(7);
  const OptimizeResult local = MinimizeLbfgsb(problem, {{-1.0}});
  EXPECT_LT(local.x[0], 0.0);  // Confirms the trap exists.
  GlobalOptions global;
  global.num_samples = 32;
  global.starts_per_round = 4;
  const OptimizeResult result = MinimizeMlsl(problem, {{-1.0}}, &rng, global);
  EXPECT_GT(result.x[0], 0.9);
}

TEST(Mlsl, DeterministicForFixedSeed) {
  const Problem problem = QuadraticProblem({0.3, -0.7}, -2.0, 2.0);
  Rng rng1(11), rng2(11);
  const OptimizeResult r1 = MinimizeMlsl(problem, {{1.0, 1.0}}, &rng1);
  const OptimizeResult r2 = MinimizeMlsl(problem, {{1.0, 1.0}}, &rng2);
  EXPECT_EQ(r1.x, r2.x);
  EXPECT_EQ(r1.evaluations, r2.evaluations);
}

TEST(GradientCheck, AcceptsCorrectGradient) {
  const Problem problem = QuadraticProblem({1.0, 2.0}, -5.0, 5.0);
  const std::vector<double> x = {0.5, -1.5};
  EXPECT_LT(MaxGradientError(problem.objective, x), 1e-6);
}

TEST(GradientCheck, RejectsWrongGradient) {
  Objective wrong = [](std::span<const double> x, std::span<double> grad) {
    if (!grad.empty()) grad[0] = 1.0;  // True gradient is 2x.
    return x[0] * x[0];
  };
  const std::vector<double> x = {3.0};
  EXPECT_GT(MaxGradientError(wrong, x), 0.5);
}

// Parameterized sweep: random convex quadratics in several dimensions all
// converge to their (interior) optimum.
class LbfgsbSweep : public ::testing::TestWithParam<int> {};

TEST_P(LbfgsbSweep, RandomConvexQuadratics) {
  const int d = GetParam();
  Rng rng(100 + d);
  std::vector<double> center(d), scale(d), x0(d);
  for (int i = 0; i < d; ++i) {
    center[i] = rng.Uniform(-2.0, 2.0);
    scale[i] = rng.Uniform(0.1, 10.0);
    x0[i] = rng.Uniform(-4.0, 4.0);
  }
  Problem problem;
  problem.lower.assign(d, -5.0);
  problem.upper.assign(d, 5.0);
  problem.objective = [&](std::span<const double> x, std::span<double> grad) {
    double f = 0.0;
    for (int i = 0; i < d; ++i) {
      const double delta = x[i] - center[i];
      f += scale[i] * delta * delta;
      if (!grad.empty()) grad[i] = 2.0 * scale[i] * delta;
    }
    return f;
  };
  const OptimizeResult result = MinimizeLbfgsb(problem, x0);
  for (int i = 0; i < d; ++i) {
    EXPECT_NEAR(result.x[i], center[i], 1e-4) << "dim " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, LbfgsbSweep, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace fkde
