#include "workload/workload.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace fkde {
namespace {

Table ClusteredTable(std::size_t rows, std::size_t dims, std::uint64_t seed) {
  ClusterBoxesParams params;
  params.rows = rows;
  params.dims = dims;
  return GenerateClusterBoxes(params, seed);
}

TEST(WorkloadSpec, ParseAndNames) {
  EXPECT_EQ(ParseWorkloadName("dt").ValueOrDie().Name(), "DT");
  EXPECT_EQ(ParseWorkloadName("DV").ValueOrDie().Name(), "DV");
  EXPECT_EQ(ParseWorkloadName("Ut").ValueOrDie().Name(), "UT");
  EXPECT_EQ(ParseWorkloadName("uv").ValueOrDie().Name(), "UV");
  EXPECT_FALSE(ParseWorkloadName("xx").ok());
}

TEST(WorkloadSpec, NonDefaultTargetShownInName) {
  WorkloadSpec spec = ParseWorkloadName("dt").ValueOrDie();
  spec.target_value = 0.05;
  EXPECT_EQ(spec.Name(), "DT(0.05)");
}

TEST(WorkloadSpec, AllWorkloadsInOrder) {
  const auto all = AllWorkloads();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].Name(), "DT");
  EXPECT_EQ(all[1].Name(), "DV");
  EXPECT_EQ(all[2].Name(), "UT");
  EXPECT_EQ(all[3].Name(), "UV");
}

TEST(WorkloadGenerator, DtHitsTargetSelectivity) {
  const Table table = ClusteredTable(50000, 3, 1);
  const WorkloadGenerator generator(table);
  Rng rng(2);
  const auto queries =
      generator.Generate(ParseWorkloadName("dt").ValueOrDie(), 50, &rng);
  ASSERT_EQ(queries.size(), 50u);
  // Data-centered targets are reachable: most queries land near 1%.
  std::size_t near_target = 0;
  for (const Query& q : queries) {
    EXPECT_GE(q.selectivity, 0.0);
    if (q.selectivity > 0.005 && q.selectivity < 0.02) ++near_target;
  }
  EXPECT_GE(near_target, 45u);
}

TEST(WorkloadGenerator, DvHitsTargetVolume) {
  const Table table = ClusteredTable(20000, 3, 3);
  const WorkloadGenerator generator(table);
  Rng rng(4);
  const WorkloadSpec spec = ParseWorkloadName("dv").ValueOrDie();
  const auto queries = generator.Generate(spec, 30, &rng);
  const Box bounds = generator.data_bounds();
  double domain_volume = 1.0;
  for (std::size_t j = 0; j < 3; ++j) domain_volume *= bounds.Extent(j);
  for (const Query& q : queries) {
    EXPECT_NEAR(q.box.Volume() / domain_volume, 0.01, 1e-9);
  }
}

TEST(WorkloadGenerator, DvSelectivitiesVaryWidely) {
  // The paper motivates DV as "a wide spectrum of selectivities".
  const Table table = ClusteredTable(50000, 3, 5);
  const WorkloadGenerator generator(table);
  Rng rng(6);
  const auto queries =
      generator.Generate(ParseWorkloadName("dv").ValueOrDie(), 100, &rng);
  double lo = 1.0, hi = 0.0;
  for (const Query& q : queries) {
    lo = std::min(lo, q.selectivity);
    hi = std::max(hi, q.selectivity);
  }
  EXPECT_GT(hi, 10.0 * std::max(lo, 1e-6));
}

TEST(WorkloadGenerator, UvIsMostlyEmpty) {
  // Uniform centers + 1% volume in clustered data: most queries miss the
  // clusters (paper: "a random workload with mostly empty queries").
  ClusterBoxesParams params;
  params.rows = 50000;
  params.dims = 8;
  params.noise_fraction = 0.02;
  const Table table = GenerateClusterBoxes(params, 7);
  const WorkloadGenerator generator(table);
  Rng rng(8);
  const auto queries =
      generator.Generate(ParseWorkloadName("uv").ValueOrDie(), 100, &rng);
  std::size_t empty = 0;
  for (const Query& q : queries) {
    if (q.selectivity < 1e-4) ++empty;
  }
  EXPECT_GE(empty, 60u);
}

TEST(WorkloadGenerator, RecordedSelectivityIsExact) {
  const Table table = ClusteredTable(10000, 2, 9);
  const WorkloadGenerator generator(table);
  Rng rng(10);
  for (const char* name : {"dt", "dv", "ut", "uv"}) {
    const auto queries =
        generator.Generate(ParseWorkloadName(name).ValueOrDie(), 10, &rng);
    for (const Query& q : queries) {
      const double exact = static_cast<double>(table.CountInBox(q.box)) /
                           static_cast<double>(table.num_rows());
      EXPECT_DOUBLE_EQ(q.selectivity, exact) << name;
    }
  }
}

TEST(WorkloadGenerator, DeterministicGivenRngState) {
  const Table table = ClusteredTable(5000, 3, 11);
  const WorkloadGenerator generator(table);
  Rng rng1(12), rng2(12);
  const auto a =
      generator.Generate(ParseWorkloadName("dt").ValueOrDie(), 20, &rng1);
  const auto b =
      generator.Generate(ParseWorkloadName("dt").ValueOrDie(), 20, &rng2);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_TRUE(a[i].box == b[i].box);
    EXPECT_DOUBLE_EQ(a[i].selectivity, b[i].selectivity);
  }
}

TEST(WorkloadGenerator, QueryShapesVary) {
  const Table table = ClusteredTable(5000, 2, 13);
  const WorkloadGenerator generator(table);
  Rng rng(14);
  const auto queries =
      generator.Generate(ParseWorkloadName("dv").ValueOrDie(), 20, &rng);
  // Aspect ratios differ across queries.
  double min_aspect = 1e18, max_aspect = -1e18;
  for (const Query& q : queries) {
    const double aspect = q.box.Extent(0) / q.box.Extent(1);
    min_aspect = std::min(min_aspect, aspect);
    max_aspect = std::max(max_aspect, aspect);
  }
  EXPECT_GT(max_aspect / min_aspect, 1.2);
}

}  // namespace
}  // namespace fkde
