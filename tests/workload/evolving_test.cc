#include "workload/evolving.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

namespace fkde {
namespace {

EvolvingParams SmallParams() {
  EvolvingParams params;
  params.dims = 3;
  params.initial_clusters = 3;
  params.tuples_per_cluster = 100;
  params.cycles = 4;
  params.inserts_per_query = 20;
  return params;
}

TEST(Evolving, EventStreamAccounting) {
  const EvolvingParams params = SmallParams();
  EvolvingWorkload workload(params, 1);
  Table table(params.dims);
  EvolvingEvent event;
  std::size_t inserts = 0, deletes = 0, queries = 0;
  while (workload.Next(table, &event)) {
    switch (event.kind) {
      case EvolvingEvent::Kind::kInsert:
        table.Insert(event.row, event.tag);
        ++inserts;
        break;
      case EvolvingEvent::Kind::kDeleteCluster:
        table.DeleteByTag(event.tag);
        ++deletes;
        break;
      case EvolvingEvent::Kind::kQuery:
        ++queries;
        break;
    }
  }
  // 3 initial clusters + 4 cycle clusters, 100 tuples each.
  EXPECT_EQ(inserts, 700u);
  EXPECT_EQ(deletes, 4u);  // One cluster archived per cycle.
  EXPECT_NEAR(static_cast<double>(queries),
              static_cast<double>(workload.TotalQueries()), 2.0);
}

TEST(Evolving, TableSizeStaysBoundedAfterInitialLoad) {
  const EvolvingParams params = SmallParams();
  EvolvingWorkload workload(params, 2);
  Table table(params.dims);
  EvolvingEvent event;
  std::size_t max_size = 0;
  while (workload.Next(table, &event)) {
    if (event.kind == EvolvingEvent::Kind::kInsert) {
      table.Insert(event.row, event.tag);
    } else if (event.kind == EvolvingEvent::Kind::kDeleteCluster) {
      table.DeleteByTag(event.tag);
    }
    max_size = std::max(max_size, table.num_rows());
  }
  // Grows to initial load + one new cluster before the first archive.
  EXPECT_LE(max_size, 4u * params.tuples_per_cluster);
  // Steady state after the final delete: still 3 clusters' worth.
  EXPECT_EQ(table.num_rows(), 3u * params.tuples_per_cluster);
}

TEST(Evolving, DeletesTargetOldestCluster) {
  const EvolvingParams params = SmallParams();
  EvolvingWorkload workload(params, 3);
  Table table(params.dims);
  EvolvingEvent event;
  std::vector<std::uint32_t> deleted;
  while (workload.Next(table, &event)) {
    if (event.kind == EvolvingEvent::Kind::kInsert) {
      table.Insert(event.row, event.tag);
    } else if (event.kind == EvolvingEvent::Kind::kDeleteCluster) {
      deleted.push_back(event.tag);
      table.DeleteByTag(event.tag);
    }
  }
  // Oldest-first: tags 0, 1, 2, 3.
  EXPECT_EQ(deleted, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(Evolving, QueriesCarryExactCurrentSelectivity) {
  const EvolvingParams params = SmallParams();
  EvolvingWorkload workload(params, 4);
  Table table(params.dims);
  EvolvingEvent event;
  int checked = 0;
  while (workload.Next(table, &event)) {
    switch (event.kind) {
      case EvolvingEvent::Kind::kInsert:
        table.Insert(event.row, event.tag);
        break;
      case EvolvingEvent::Kind::kDeleteCluster:
        table.DeleteByTag(event.tag);
        break;
      case EvolvingEvent::Kind::kQuery: {
        const double exact =
            static_cast<double>(table.CountInBox(event.query.box)) /
            static_cast<double>(table.num_rows());
        ASSERT_DOUBLE_EQ(event.query.selectivity, exact);
        ++checked;
        break;
      }
    }
  }
  EXPECT_GT(checked, 20);
}

TEST(Evolving, QueriesApproachTargetSelectivity) {
  EvolvingParams params = SmallParams();
  params.tuples_per_cluster = 500;
  EvolvingWorkload workload(params, 5);
  Table table(params.dims);
  EvolvingEvent event;
  std::size_t near = 0, total = 0;
  while (workload.Next(table, &event)) {
    if (event.kind == EvolvingEvent::Kind::kInsert) {
      table.Insert(event.row, event.tag);
    } else if (event.kind == EvolvingEvent::Kind::kDeleteCluster) {
      table.DeleteByTag(event.tag);
    } else {
      ++total;
      if (event.query.selectivity > 0.003 &&
          event.query.selectivity < 0.03) {
        ++near;
      }
    }
  }
  EXPECT_GT(static_cast<double>(near) / static_cast<double>(total), 0.8);
}

TEST(Evolving, RecencyBiasFavorsNewClusters) {
  // Count query centers inside the newest vs the oldest live cluster's
  // box: the newest must win clearly with decay 0.45.
  EvolvingParams params = SmallParams();
  params.cycles = 6;
  EvolvingWorkload workload(params, 6);
  Table table(params.dims);
  EvolvingEvent event;
  std::map<std::uint32_t, std::size_t> hits_by_tag;
  std::uint32_t newest_tag = 2;  // After initial load, tags grow.
  std::set<std::uint32_t> live = {0, 1, 2};
  while (workload.Next(table, &event)) {
    if (event.kind == EvolvingEvent::Kind::kInsert) {
      table.Insert(event.row, event.tag);
      if (event.tag > newest_tag) {
        newest_tag = event.tag;
        live.insert(event.tag);
      }
    } else if (event.kind == EvolvingEvent::Kind::kDeleteCluster) {
      table.DeleteByTag(event.tag);
      live.erase(event.tag);
    } else {
      // Attribute the query to the cluster of the nearest data point to
      // its center (cheap proxy).
      std::vector<double> center(params.dims);
      for (std::size_t j = 0; j < params.dims; ++j) {
        center[j] = event.query.box.Center(j);
      }
      double best = 1e300;
      std::uint32_t best_tag = 0;
      for (std::size_t i = 0; i < table.num_rows(); ++i) {
        double dist = 0.0;
        for (std::size_t j = 0; j < params.dims; ++j) {
          const double delta = table.At(i, j) - center[j];
          dist += delta * delta;
        }
        if (dist < best) {
          best = dist;
          best_tag = table.Tag(i);
        }
      }
      const std::size_t age =
          newest_tag - best_tag;  // 0 = newest live cluster.
      ++hits_by_tag[static_cast<std::uint32_t>(age > 2 ? 3 : age)];
    }
  }
  // Newest (age 0) queried more than twice as often as age 2+.
  EXPECT_GT(hits_by_tag[0], 2 * (hits_by_tag[2] + hits_by_tag[3]));
}

TEST(Evolving, DeterministicStream) {
  const EvolvingParams params = SmallParams();
  EvolvingWorkload w1(params, 9), w2(params, 9);
  Table t1(params.dims), t2(params.dims);
  EvolvingEvent e1, e2;
  for (int i = 0; i < 500; ++i) {
    const bool more1 = w1.Next(t1, &e1);
    const bool more2 = w2.Next(t2, &e2);
    ASSERT_EQ(more1, more2);
    if (!more1) break;
    ASSERT_EQ(static_cast<int>(e1.kind), static_cast<int>(e2.kind));
    if (e1.kind == EvolvingEvent::Kind::kInsert) {
      ASSERT_EQ(e1.row, e2.row);
      t1.Insert(e1.row, e1.tag);
      t2.Insert(e2.row, e2.tag);
    } else if (e1.kind == EvolvingEvent::Kind::kDeleteCluster) {
      t1.DeleteByTag(e1.tag);
      t2.DeleteByTag(e2.tag);
    } else {
      ASSERT_TRUE(e1.query.box == e2.query.box);
    }
  }
}

}  // namespace
}  // namespace fkde
