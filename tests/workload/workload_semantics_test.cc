// Deeper semantic checks of the workload classes against the paper's
// Section 6.1.3 descriptions, plus the evolving workload's archive probes.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "data/generators.h"
#include "workload/evolving.h"
#include "workload/workload.h"

namespace fkde {
namespace {

Table Clustered(std::uint64_t seed) {
  ClusterBoxesParams params;
  params.rows = 40000;
  params.dims = 3;
  params.noise_fraction = 0.05;
  return GenerateClusterBoxes(params, seed);
}

TEST(WorkloadSemantics, UtHasHighlyDiverseVolumes) {
  // Paper: UT is "a random workload with queries having highly diverse
  // query volumes" — uniform centers in sparse regions must grow much
  // larger boxes to reach the selectivity target.
  const Table table = Clustered(1);
  const WorkloadGenerator generator(table);
  Rng rng(2);
  const auto queries =
      generator.Generate(ParseWorkloadName("ut").ValueOrDie(), 80, &rng);
  double min_volume = 1e300, max_volume = 0.0;
  for (const Query& q : queries) {
    min_volume = std::min(min_volume, q.box.Volume());
    max_volume = std::max(max_volume, q.box.Volume());
  }
  EXPECT_GT(max_volume / min_volume, 50.0);
}

TEST(WorkloadSemantics, DtVolumesTrackLocalDensity) {
  // Data-centered selectivity targets: queries inside dense clusters stay
  // small; the volume spread is far narrower than UT's.
  const Table table = Clustered(3);
  const WorkloadGenerator generator(table);
  Rng rng(4);
  const auto dt =
      generator.Generate(ParseWorkloadName("dt").ValueOrDie(), 80, &rng);
  const auto ut =
      generator.Generate(ParseWorkloadName("ut").ValueOrDie(), 80, &rng);
  auto volume_spread = [](const std::vector<Query>& queries) {
    std::vector<double> volumes;
    for (const Query& q : queries) volumes.push_back(q.box.Volume());
    return Quantile(volumes, 0.9) / std::max(Quantile(volumes, 0.1), 1e-300);
  };
  EXPECT_LT(volume_spread(dt), volume_spread(ut));
}

TEST(WorkloadSemantics, UvAndDvShareVolumeButNotEmptiness) {
  // Same 1% target volume; data-centered DV queries hit data, uniform UV
  // queries are mostly empty (paper's characterization).
  ClusterBoxesParams params;
  params.rows = 40000;
  params.dims = 8;
  params.noise_fraction = 0.02;
  const Table table = GenerateClusterBoxes(params, 5);
  const WorkloadGenerator generator(table);
  Rng rng(6);
  const auto dv =
      generator.Generate(ParseWorkloadName("dv").ValueOrDie(), 60, &rng);
  const auto uv =
      generator.Generate(ParseWorkloadName("uv").ValueOrDie(), 60, &rng);
  auto empty_fraction = [](const std::vector<Query>& queries) {
    std::size_t empty = 0;
    for (const Query& q : queries) {
      if (q.selectivity == 0.0) ++empty;
    }
    return static_cast<double>(empty) / queries.size();
  };
  EXPECT_LT(empty_fraction(dv), 0.4);
  EXPECT_GT(empty_fraction(uv), empty_fraction(dv));
}

TEST(WorkloadSemantics, ArchiveProbesAppearAfterFirstDelete) {
  EvolvingParams params;
  params.dims = 3;
  params.tuples_per_cluster = 300;
  params.cycles = 4;
  params.archive_probe_probability = 0.5;  // Amplify for the test.
  EvolvingWorkload workload(params, 7);
  Table table(params.dims);
  EvolvingEvent event;
  bool any_delete = false;
  std::size_t probes_after_delete = 0, queries_after_delete = 0;
  while (workload.Next(table, &event)) {
    switch (event.kind) {
      case EvolvingEvent::Kind::kInsert:
        table.Insert(event.row, event.tag);
        break;
      case EvolvingEvent::Kind::kDeleteCluster:
        table.DeleteByTag(event.tag);
        any_delete = true;
        break;
      case EvolvingEvent::Kind::kQuery:
        if (any_delete) {
          ++queries_after_delete;
          // Probes are recognizable by near-zero selectivity over a
          // recently emptied region.
          if (event.query.selectivity < 0.002) ++probes_after_delete;
        }
        break;
    }
  }
  ASSERT_GT(queries_after_delete, 10u);
  // With probability 0.5, a solid share of post-delete queries are
  // (mostly empty) archive probes.
  EXPECT_GT(static_cast<double>(probes_after_delete) /
                static_cast<double>(queries_after_delete),
            0.2);
}

TEST(WorkloadSemantics, ZeroProbeProbabilityDisablesProbes) {
  EvolvingParams params;
  params.dims = 2;
  params.tuples_per_cluster = 200;
  params.cycles = 3;
  params.archive_probe_probability = 0.0;
  EvolvingWorkload workload(params, 8);
  Table table(params.dims);
  EvolvingEvent event;
  while (workload.Next(table, &event)) {
    if (event.kind == EvolvingEvent::Kind::kInsert) {
      table.Insert(event.row, event.tag);
    } else if (event.kind == EvolvingEvent::Kind::kDeleteCluster) {
      table.DeleteByTag(event.tag);
    } else {
      // Every query chases the DT target; with probes disabled, extreme
      // emptiness is rare (clusters always contain the 1% target).
      EXPECT_GT(event.query.selectivity, 0.001);
    }
  }
}

}  // namespace
}  // namespace fkde
