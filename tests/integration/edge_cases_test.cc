// Edge-case and failure-injection tests across module boundaries:
// degenerate data, single points, constant attributes, extreme queries.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "histogram/stholes.h"
#include "kde/kde_estimator.h"
#include "runtime/executor.h"
#include "runtime/factory.h"
#include "workload/workload.h"

namespace fkde {
namespace {

TEST(EdgeCases, SingleRowTable) {
  Table table(2);
  table.Insert(std::vector<double>{0.5, 0.5});
  Device device(DeviceProfile::OpenClCpu());
  KdeConfig config;
  config.sample_size = 16;
  auto estimator =
      KdeSelectivityEstimator::Create(
          KdeSelectivityEstimator::Mode::kHeuristic, &device, &table, config)
          .MoveValueOrDie();
  // Degenerate sigma handled by the Scott fallback; estimates stay valid.
  const double inside =
      estimator->EstimateSelectivity(Box({0.0, 0.0}, {1.0, 1.0}));
  const double outside =
      estimator->EstimateSelectivity(Box({10.0, 10.0}, {11.0, 11.0}));
  EXPECT_GT(inside, 0.9);
  EXPECT_LT(outside, 0.1);
}

TEST(EdgeCases, ConstantAttribute) {
  // Column 1 is constant: Scott sigma = 0 -> epsilon bandwidth fallback.
  Rng rng(1);
  Table table(2);
  for (int i = 0; i < 5000; ++i) {
    table.Insert(std::vector<double>{rng.Uniform(), 7.0});
  }
  Device device(DeviceProfile::OpenClCpu());
  KdeConfig config;
  config.sample_size = 256;
  auto estimator =
      KdeSelectivityEstimator::Create(
          KdeSelectivityEstimator::Mode::kAdaptive, &device, &table, config)
          .MoveValueOrDie();
  // Query containing the constant: behaves like a 1D estimator.
  const double hit =
      estimator->EstimateSelectivity(Box({0.2, 6.0}, {0.7, 8.0}));
  EXPECT_NEAR(hit, 0.5, 0.1);
  // Query missing the constant value entirely.
  const double miss =
      estimator->EstimateSelectivity(Box({0.2, 8.0}, {0.7, 9.0}));
  EXPECT_LT(miss, 0.05);
  // Feedback must not blow up the epsilon bandwidth.
  for (int i = 0; i < 30; ++i) {
    estimator->ObserveTrueSelectivity(Box({0.2, 6.0}, {0.7, 8.0}), 0.5);
  }
  for (double h : estimator->bandwidth()) {
    EXPECT_TRUE(std::isfinite(h));
    EXPECT_GT(h, 0.0);
  }
}

TEST(EdgeCases, ZeroVolumeQueryBox) {
  ClusterBoxesParams params;
  params.rows = 5000;
  params.dims = 2;
  Table table = GenerateClusterBoxes(params, 2);
  Device device(DeviceProfile::OpenClCpu());
  KdeConfig config;
  config.sample_size = 128;
  auto estimator =
      KdeSelectivityEstimator::Create(
          KdeSelectivityEstimator::Mode::kHeuristic, &device, &table, config)
          .MoveValueOrDie();
  const double degenerate =
      estimator->EstimateSelectivity(Box({0.5, 0.0}, {0.5, 1.0}));
  EXPECT_DOUBLE_EQ(degenerate, 0.0);  // Measure-zero region.
}

TEST(EdgeCases, QueryFarOutsideDomain) {
  ClusterBoxesParams params;
  params.rows = 5000;
  params.dims = 3;
  Table table = GenerateClusterBoxes(params, 3);
  Executor executor(&table);
  Device device(DeviceProfile::OpenClCpu());
  EstimatorBuildContext context;
  context.device = &device;
  context.executor = &executor;
  for (const std::string& name : EstimatorNames()) {
    if (name == "kde_batch") continue;  // Needs training queries.
    auto estimator = BuildEstimator(name, context).MoveValueOrDie();
    const double estimate = estimator->EstimateSelectivity(
        Box({100.0, 100.0, 100.0}, {101.0, 101.0, 101.0}));
    EXPECT_GE(estimate, 0.0) << name;
    EXPECT_LT(estimate, 0.01) << name;
  }
}

TEST(EdgeCases, HugeQueryCoveringEverything) {
  ClusterBoxesParams params;
  params.rows = 5000;
  params.dims = 2;
  Table table = GenerateClusterBoxes(params, 4);
  Executor executor(&table);
  Device device(DeviceProfile::OpenClCpu());
  EstimatorBuildContext context;
  context.device = &device;
  context.executor = &executor;
  const Box everything({-1e6, -1e6}, {1e6, 1e6});
  for (const std::string name : {"kde_heuristic", "stholes", "avi"}) {
    auto estimator = BuildEstimator(name, context).MoveValueOrDie();
    EXPECT_NEAR(estimator->EstimateSelectivity(everything), 1.0, 0.01)
        << name;
  }
}

TEST(EdgeCases, SthDomainGrowthViaInserts) {
  Table table(2);
  for (int i = 0; i < 100; ++i) {
    table.Insert(std::vector<double>{i / 100.0, i / 100.0});
  }
  STHoles histogram(table.Bounds(), table.num_rows(),
                    [&table](const Box& box) {
                      return table.CountInBox(box);
                    });
  // Insert far outside the original domain; the root must grow.
  const std::vector<double> far = {50.0, -3.0};
  table.Insert(far);
  histogram.OnInsert(far, table.num_rows());
  histogram.CheckInvariants();
  (void)histogram.EstimateSelectivity(Box({49.0, -4.0}, {51.0, -2.0}));
}

TEST(EdgeCases, WorkloadOnTinyTable) {
  Table table(2);
  Rng rng(5);
  for (int i = 0; i < 12; ++i) {
    table.Insert(std::vector<double>{rng.Uniform(), rng.Uniform()});
  }
  const WorkloadGenerator generator(table);
  for (const char* name : {"dt", "dv", "ut", "uv"}) {
    const auto queries = generator.Generate(
        ParseWorkloadName(name).ValueOrDie(), 5, &rng);
    for (const Query& q : queries) {
      EXPECT_GE(q.selectivity, 0.0) << name;
      EXPECT_LE(q.selectivity, 1.0) << name;
    }
  }
}

TEST(EdgeCases, FeedbackWithExtremeTruths) {
  ClusterBoxesParams params;
  params.rows = 5000;
  params.dims = 2;
  Table table = GenerateClusterBoxes(params, 6);
  Device device(DeviceProfile::OpenClCpu());
  KdeConfig config;
  config.sample_size = 128;
  auto estimator =
      KdeSelectivityEstimator::Create(
          KdeSelectivityEstimator::Mode::kAdaptive, &device, &table, config)
          .MoveValueOrDie();
  const Box box({0.1, 0.1}, {0.9, 0.9});
  // Alternate truth = 0 and truth = 1 feedback: pathological but must
  // never destabilize the bandwidth into NaN/zero/infinity.
  for (int i = 0; i < 100; ++i) {
    (void)estimator->EstimateSelectivity(box);
    estimator->ObserveTrueSelectivity(box, (i % 2 == 0) ? 0.0 : 1.0);
    for (double h : estimator->bandwidth()) {
      ASSERT_TRUE(std::isfinite(h));
      ASSERT_GT(h, 0.0);
    }
  }
}

TEST(EdgeCases, ReservoirWithSampleEqualToTable) {
  // Sample size == table size: every insert must still be handled sanely.
  Table table(1);
  for (int i = 0; i < 64; ++i) {
    table.Insert(std::vector<double>{static_cast<double>(i)});
  }
  Device device(DeviceProfile::OpenClCpu());
  KdeConfig config;
  config.sample_size = 64;
  auto estimator =
      KdeSelectivityEstimator::Create(
          KdeSelectivityEstimator::Mode::kAdaptive, &device, &table, config)
          .MoveValueOrDie();
  for (int i = 64; i < 128; ++i) {
    const std::vector<double> row = {static_cast<double>(i)};
    table.Insert(row);
    estimator->OnInsert(row, table.num_rows());
  }
  const double high =
      estimator->EstimateSelectivity(Box({63.5}, {130.0}));
  EXPECT_GT(high, 0.2);  // New rows visible in the sample.
}

}  // namespace
}  // namespace fkde
