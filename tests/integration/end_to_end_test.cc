// End-to-end integration tests: the paper's headline claims, verified on
// small configurations through the same harness the benchmarks use.

#include <gtest/gtest.h>


// The bench harness lives in bench/, not src/, so the protocol is
// re-implemented minimally here from public APIs — which doubles as a
// compilation test that the public API is sufficient for a downstream
// user to run the full experiment loop.

#include "data/generators.h"
#include "kde/kde_estimator.h"
#include "runtime/driver.h"
#include "runtime/evolving_runner.h"
#include "runtime/executor.h"
#include "runtime/factory.h"
#include "workload/evolving.h"
#include "workload/workload.h"

namespace fkde {
namespace {

struct Experiment {
  Experiment(const std::string& dataset, std::size_t dims,
             const char* workload, std::uint64_t seed) {
    table = GenerateDataset(dataset, 30000, dims, seed).MoveValueOrDie();
    executor = std::make_unique<Executor>(&table);
    executor->BuildIndex();
    device = std::make_unique<Device>(DeviceProfile::OpenClCpu());
    WorkloadGenerator generator(table);
    Rng rng(seed + 1);
    const WorkloadSpec spec = ParseWorkloadName(workload).ValueOrDie();
    training = generator.Generate(spec, 80, &rng);
    test = generator.Generate(spec, 150, &rng);
  }

  double ErrorOf(const std::string& name) {
    EstimatorBuildContext context;
    context.device = device.get();
    context.executor = executor.get();
    context.training = training;
    auto estimator = BuildEstimator(name, context).MoveValueOrDie();
    if (name == "kde_adaptive" || name == "stholes") {
      FeedbackDriver::Train(estimator.get(), training);
    }
    return FeedbackDriver::RunPrecomputed(estimator.get(), test)
        .MeanAbsoluteError();
  }

  Table table{1};
  std::unique_ptr<Executor> executor;
  std::unique_ptr<Device> device;
  std::vector<Query> training;
  std::vector<Query> test;
};

// Claim 1 (Section 6.2): bandwidth optimization over query feedback beats
// Scott's rule — across datasets and workloads.
TEST(EndToEnd, BatchBeatsHeuristicAcrossTheGrid) {
  std::size_t wins = 0, cells = 0;
  for (const char* dataset : {"synthetic", "forest", "protein"}) {
    for (const char* workload : {"dt", "dv"}) {
      Experiment experiment(dataset, 3, workload, 11);
      ++cells;
      if (experiment.ErrorOf("kde_batch") <
          experiment.ErrorOf("kde_heuristic")) {
        ++wins;
      }
    }
  }
  // The paper reports >90%; demand a clear majority on this small grid.
  EXPECT_GE(wins * 2, cells * 2 - 1) << wins << "/" << cells;
}

// Claim 2 (Section 6.2): the adaptive estimator lands between Heuristic
// and Batch.
TEST(EndToEnd, AdaptiveBeatsHeuristic) {
  Experiment experiment("synthetic", 3, "dt", 13);
  const double heuristic = experiment.ErrorOf("kde_heuristic");
  const double adaptive = experiment.ErrorOf("kde_adaptive");
  EXPECT_LT(adaptive, heuristic);
}

// Claim 3 (Section 6.2): the optimized KDE estimators are competitive
// with (typically better than) STHoles.
TEST(EndToEnd, BatchCompetitiveWithSTHoles) {
  std::size_t wins = 0, cells = 0;
  for (const char* workload : {"dt", "dv"}) {
    for (std::uint64_t seed : {17, 18}) {
      Experiment experiment("synthetic", 3, workload, seed);
      ++cells;
      if (experiment.ErrorOf("kde_batch") < experiment.ErrorOf("stholes")) {
        ++wins;
      }
    }
  }
  EXPECT_GE(wins * 2, cells);  // At least half on this small grid.
}

// Claim 4 (Section 6.5): under churn, the self-tuning estimator tracks
// the database while the static one degrades.
TEST(EndToEnd, AdaptiveTracksEvolvingData) {
  EvolvingParams params;
  params.dims = 5;
  params.cycles = 6;

  auto run = [&](const char* name) {
    Table table(params.dims);
    Executor executor(&table);
    EvolvingWorkload workload(params, 23);
    EvolvingEvent event;
    std::size_t pending =
        params.initial_clusters * params.tuples_per_cluster;
    while (pending > 0 && workload.Next(table, &event)) {
      if (event.kind == EvolvingEvent::Kind::kInsert) {
        executor.Insert(event.row, event.tag);
        --pending;
      }
    }
    Device device(DeviceProfile::OpenClCpu());
    EstimatorBuildContext context;
    context.device = &device;
    context.executor = &executor;
    auto estimator = BuildEstimator(name, context).MoveValueOrDie();
    const EvolvingTrace trace =
        RunEvolving(estimator.get(), &executor, &workload);
    const std::size_t n = trace.absolute_errors.size();
    return trace.WindowMean(n / 2, n);  // Steady-churn half.
  };

  const double heuristic = run("kde_heuristic");
  const double adaptive = run("kde_adaptive");
  EXPECT_LT(adaptive, 0.75 * heuristic);
}

// Claim 5 (Sections 2.4/5): after construction, per-query device traffic
// is orders of magnitude below the sample size.
TEST(EndToEnd, SteadyStateTrafficIsTiny) {
  Table table = GenerateDataset("synthetic", 20000, 4, 29).MoveValueOrDie();
  Device device(DeviceProfile::SimulatedGtx460());
  KdeConfig config;
  config.sample_size = 4096;
  auto estimator =
      KdeSelectivityEstimator::Create(
          KdeSelectivityEstimator::Mode::kAdaptive, &device, &table, config)
          .MoveValueOrDie();
  WorkloadGenerator generator(table);
  Rng rng(31);
  const auto queries =
      generator.Generate(ParseWorkloadName("dt").ValueOrDie(), 50, &rng);
  const auto before = device.ledger();
  for (const Query& q : queries) {
    (void)estimator->EstimateSelectivity(q.box);
    estimator->ObserveTrueSelectivity(q.box, q.selectivity);
  }
  const auto after = device.ledger();
  const double per_query_bytes =
      static_cast<double>(after.total_bytes() - before.total_bytes()) /
      queries.size();
  const double sample_bytes = 4096.0 * 4.0 * sizeof(float);
  EXPECT_LT(per_query_bytes, sample_bytes / 10.0);
}

// Claim 6: the whole pipeline is deterministic for a fixed seed.
TEST(EndToEnd, DeterministicPipeline) {
  auto run_once = [] {
    Experiment experiment("forest", 3, "dt", 37);
    return experiment.ErrorOf("kde_batch");
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

// Claim 7 (Section 6.3): larger samples give better estimates.
TEST(EndToEnd, ErrorShrinksWithSampleSize) {
  Table table = GenerateDataset("forest", 60000, 3, 41).MoveValueOrDie();
  Executor executor(&table);
  executor.BuildIndex();
  Device device(DeviceProfile::OpenClCpu());
  WorkloadGenerator generator(table);
  Rng rng(42);
  const auto test =
      generator.Generate(ParseWorkloadName("dt").ValueOrDie(), 150, &rng);

  auto error_at = [&](std::size_t sample_size) {
    KdeConfig config;
    config.sample_size = sample_size;
    auto estimator =
        KdeSelectivityEstimator::Create(
            KdeSelectivityEstimator::Mode::kHeuristic, &device, &table,
            config)
            .MoveValueOrDie();
    return FeedbackDriver::RunPrecomputed(estimator.get(), test)
        .MeanAbsoluteError();
  };
  EXPECT_LT(error_at(8192), error_at(256));
}

}  // namespace
}  // namespace fkde
