// Assorted coverage for API corners not exercised elsewhere.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "opt/optimizer.h"
#include "parallel/device.h"

namespace fkde {
namespace {

TEST(DeviceEdge, ZeroSizedBuffersAndTransfers) {
  Device device(DeviceProfile::OpenClCpu());
  auto buffer = device.CreateBuffer<double>(0);
  EXPECT_TRUE(buffer.empty());
  // Zero-length transfers are legal no-ops: nothing moves, so they are
  // neither metered in the ledger nor charged on the modeled clocks.
  device.CopyToDevice<double>(nullptr, 0, &buffer);
  EXPECT_EQ(device.ledger().transfers_to_device, 0u);
  EXPECT_EQ(device.ledger().bytes_to_device, 0u);
  EXPECT_DOUBLE_EQ(device.ModeledSeconds(), 0.0);
}

TEST(DeviceEdgeDeath, OutOfBoundsTransfersCheck) {
  Device device(DeviceProfile::OpenClCpu());
  auto buffer = device.CreateBuffer<float>(4);
  float host[8] = {};
  EXPECT_DEATH(device.CopyToDevice(host, 8, &buffer), "out of bounds");
  EXPECT_DEATH(device.CopyToHost(buffer, 2, 4, host), "out of bounds");
}

TEST(DeviceEdge, EmptyLaunchStillCharged) {
  Device device(DeviceProfile::OpenClCpu());
  bool ran = false;
  device.Launch("noop", 0, 1.0,
                [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(device.ledger().kernel_launches, 1u);
  EXPECT_GT(device.ModeledSeconds(), 0.0);
}

TEST(OptimizerEdge, MlslNeverLeavesBounds) {
  Problem problem;
  problem.lower = {-1.0, 0.5};
  problem.upper = {2.0, 3.0};
  problem.objective = [&](std::span<const double> x, std::span<double> g) {
    // Assert inside the objective: the solver must only evaluate within
    // the box (clamped starts and projected steps).
    EXPECT_GE(x[0], -1.0 - 1e-12);
    EXPECT_LE(x[0], 2.0 + 1e-12);
    EXPECT_GE(x[1], 0.5 - 1e-12);
    EXPECT_LE(x[1], 3.0 + 1e-12);
    if (!g.empty()) {
      g[0] = 2.0 * x[0];
      g[1] = 2.0 * (x[1] - 1.0);
    }
    return x[0] * x[0] + (x[1] - 1.0) * (x[1] - 1.0);
  };
  Rng rng(3);
  const OptimizeResult result = MinimizeMlsl(problem, {{1.5, 2.5}}, &rng);
  EXPECT_NEAR(result.x[0], 0.0, 1e-5);
  EXPECT_NEAR(result.x[1], 1.0, 1e-5);
}

TEST(OptimizerEdge, MaxIterationsRespected) {
  Problem problem;
  problem.lower = {-1e6};
  problem.upper = {1e6};
  std::size_t evaluations = 0;
  problem.objective = [&](std::span<const double> x, std::span<double> g) {
    ++evaluations;
    if (!g.empty()) g[0] = 2.0 * (x[0] - 12345.0);
    return (x[0] - 12345.0) * (x[0] - 12345.0);
  };
  LocalOptions options;
  options.max_iterations = 3;
  const OptimizeResult result = MinimizeLbfgsb(problem, {{0.0}}, options);
  EXPECT_LE(result.iterations, 3u);
  EXPECT_EQ(result.evaluations, evaluations);
}

TEST(OptimizerEdge, InfiniteObjectiveValuesAreRejectedInLineSearch) {
  // A cliff beyond x = 1: the solver must back off instead of stepping
  // into the infinite region.
  Problem problem;
  problem.lower = {-10.0};
  problem.upper = {10.0};
  problem.objective = [&](std::span<const double> x, std::span<double> g) {
    if (x[0] > 1.0) return std::numeric_limits<double>::infinity();
    if (!g.empty()) g[0] = -1.0;  // Constant pull toward the cliff.
    return -x[0];
  };
  const OptimizeResult result = MinimizeLbfgsb(problem, {{0.0}});
  EXPECT_LE(result.x[0], 1.0 + 1e-9);
  EXPECT_TRUE(std::isfinite(result.f));
}

TEST(GeneratorEdge, ProjectionToAllColumnsIsIdentityUpToOrder) {
  const Table full = GenerateProteinLike(100, 1);
  const Table projected = ProjectRandomAttributes(full, 9, 2);
  EXPECT_EQ(projected.num_cols(), 9u);
  // Columns are sorted by source index, so this is the identity.
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      ASSERT_DOUBLE_EQ(projected.At(i, j), full.At(i, j));
    }
  }
}

TEST(RngEdge, UniformIntOneIsAlwaysZero) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(std::uint64_t{1}), 0u);
}

}  // namespace
}  // namespace fkde
