// Tests that the device cost model reproduces the performance *shape* of
// the paper's Figure 7 (Section 6.4) — the claims EXPERIMENTS.md relies
// on. These are model-level tests: fast and deterministic.

#include <gtest/gtest.h>

#include "data/generators.h"
#include "kde/kde_estimator.h"
#include "parallel/device.h"
#include "runtime/executor.h"
#include "runtime/factory.h"
#include "workload/workload.h"

namespace fkde {
namespace {

class PerfModel : public ::testing::Test {
 protected:
  void SetUp() override {
    table_ = GenerateDataset("synthetic", 150000, 8, 3).MoveValueOrDie();
    executor_ = std::make_unique<Executor>(&table_);
    executor_->BuildIndex();
    WorkloadGenerator generator(table_);
    Rng rng(4);
    queries_ = generator.Generate(ParseWorkloadName("uv").ValueOrDie(), 30,
                                  &rng);
  }

  /// Modeled seconds per query for (estimator, device, sample points).
  /// Between each estimate and its feedback the modeled host clock
  /// advances by a query-execution budget comfortably above the largest
  /// enqueued gradient pass here (131072 x 8 dims x 3 ops ~= 12 ms at CPU
  /// throughput, ~3 ms on the GPU profile): the window in which the
  /// paper's database executes the query and the adaptive estimator's
  /// enqueued device work drains. External time is excluded from
  /// ModeledSeconds, so heuristic numbers are unaffected.
  double ModeledMsPerQuery(const std::string& estimator_name,
                           const DeviceProfile& profile,
                           std::size_t points) {
    constexpr double kQueryExecutionS = 20e-3;
    Device device(profile);
    EstimatorBuildContext context;
    context.device = &device;
    context.executor = executor_.get();
    context.memory_bytes = points * 8 * sizeof(float);
    auto estimator =
        BuildEstimator(estimator_name, context).MoveValueOrDie();
    (void)estimator->EstimateSelectivity(queries_[0].box);
    device.AdvanceHostTime(kQueryExecutionS);
    estimator->ObserveTrueSelectivity(queries_[0].box,
                                      queries_[0].selectivity);
    device.ResetModeledTime();
    for (const Query& query : queries_) {
      (void)estimator->EstimateSelectivity(query.box);
      device.AdvanceHostTime(kQueryExecutionS);
      estimator->ObserveTrueSelectivity(query.box, query.selectivity);
    }
    return device.ModeledSeconds() * 1e3 / queries_.size();
  }

  Table table_{1};
  std::unique_ptr<Executor> executor_;
  std::vector<Query> queries_;
};

TEST_F(PerfModel, FlatThenLinearScaling) {
  const DeviceProfile gpu = DeviceProfile::SimulatedGtx460();
  const double t1k = ModeledMsPerQuery("kde_heuristic", gpu, 1024);
  const double t4k = ModeledMsPerQuery("kde_heuristic", gpu, 4096);
  const double t64k = ModeledMsPerQuery("kde_heuristic", gpu, 65536);
  const double t128k = ModeledMsPerQuery("kde_heuristic", gpu, 131072);
  // Latency-dominated region: quadrupling the model barely moves time.
  EXPECT_LT(t4k / t1k, 1.6);
  // Compute-dominated region: doubling the model ~doubles time.
  EXPECT_GT(t128k / t64k, 1.5);
  EXPECT_LT(t128k / t64k, 2.5);
}

TEST_F(PerfModel, GpuAboutFourTimesFasterAtLargeModels) {
  const double cpu = ModeledMsPerQuery("kde_heuristic",
                                       DeviceProfile::OpenClCpu(), 131072);
  const double gpu = ModeledMsPerQuery(
      "kde_heuristic", DeviceProfile::SimulatedGtx460(), 131072);
  EXPECT_GT(cpu / gpu, 2.5);
  EXPECT_LT(cpu / gpu, 6.0);
}

TEST_F(PerfModel, AdaptiveOverheadIsConstantLatency) {
  // The adaptive-vs-heuristic gap must not scale with the model: the
  // gradient compute is hidden behind query execution (Section 5.5).
  const DeviceProfile gpu = DeviceProfile::SimulatedGtx460();
  const double gap_small = ModeledMsPerQuery("kde_adaptive", gpu, 1024) -
                           ModeledMsPerQuery("kde_heuristic", gpu, 1024);
  const double gap_large = ModeledMsPerQuery("kde_adaptive", gpu, 131072) -
                           ModeledMsPerQuery("kde_heuristic", gpu, 131072);
  EXPECT_GT(gap_small, 0.0);
  EXPECT_GT(gap_large, 0.0);
  // "Constant": within a factor ~2 across a 128x model growth.
  EXPECT_LT(gap_large / gap_small, 2.0);
}

TEST_F(PerfModel, AdaptiveUnderOneMsAt128KOnGpu) {
  // Paper: "the GPU can estimate a selectivity with Adaptive on a model
  // of 128K elements in under 1 ms". Allow modest slack for the model.
  const double ms = ModeledMsPerQuery(
      "kde_adaptive", DeviceProfile::SimulatedGtx460(), 131072);
  EXPECT_LT(ms, 2.5);
}

TEST_F(PerfModel, CpuAboutOneMsAt32K) {
  // Paper: CPU estimates ~32K-point models in about 1 ms.
  const double ms = ModeledMsPerQuery("kde_heuristic",
                                      DeviceProfile::OpenClCpu(), 32768);
  EXPECT_GT(ms, 0.3);
  EXPECT_LT(ms, 3.0);
}

}  // namespace
}  // namespace fkde
