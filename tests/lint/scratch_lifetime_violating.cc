// fkde-lint fixture: scratch-lifetime violations. Analyzed (not
// compiled) by `ctest -L lint`. ScratchBuffer is a pooled shared_ptr:
// the allocation returns to the pool when the last handle drops, so a
// handle must outlive every queued kernel that dereferences it.
#include "parallel/command_queue.h"
#include "parallel/device.h"

namespace fkde {

// The kernel captures only the raw pointer; the handle dies when the
// function returns, so the pool can hand the memory to someone else
// while the kernel is still writing through `t`.
void ReleasedWhileQueued(Device* dev, CommandQueue* queue,
                         DeviceBuffer<double>& out, std::size_t rows) {
  ScratchBuffer tmp = dev->AcquireScratch(rows);
  double* t = tmp->device_data();
  double* b = out.device_data();
  const BufferAccess acc[] = {Writes(*tmp, 0, rows), Writes(out, 0, rows)};
  queue->EnqueueLaunch(
      "fixture_unheld_scratch", rows, 1.0,
      [t, b](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          t[i] = 1.0;
          b[i] = t[i];
        }
      },
      acc);
}

// Acquiring without binding the handle releases the scratch before
// anything can use it.
void DiscardedHandle(Device* dev) {
  dev->AcquireScratch(256);
}

}  // namespace fkde
