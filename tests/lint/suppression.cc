// fkde-lint fixture: the FKDE_LINT_SUPPRESS escape hatch. Analyzed
// (not compiled) by `ctest -L lint`. The first readback is suppressed
// with a reason and must NOT be reported; the second, identical one
// has no suppression and must still be reported — proving suppressions
// are per-line, not per-file.
#include "parallel/command_queue.h"
#include "parallel/device.h"

namespace fkde {

void SuppressedReadback(CommandQueue* queue, DeviceBuffer<double>& buf,
                        double* host, std::size_t rows) {
  // FKDE_LINT_SUPPRESS(readback-sync): the caller waits on the queue.
  queue->EnqueueCopyToHost(buf, 0, rows, host);
}

void UnsuppressedReadback(CommandQueue* queue, DeviceBuffer<double>& buf,
                          double* host, std::size_t rows) {
  queue->EnqueueCopyToHost(buf, 0, rows, host);
}

}  // namespace fkde
