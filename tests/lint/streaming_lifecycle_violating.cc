// fkde-lint fixture: streaming-lifecycle violations. This TU is never
// compiled; it is analyzed by fkde-lint in `ctest -L lint` and mirrors
// client code driving the ticketed streaming API of
// KdeSelectivityEstimator (StreamBegin / StreamDeliver /
// StreamFeedback / StreamRetire, EnableStreaming / DisableStreaming).
// Expected diagnostics are pinned in
// streaming_lifecycle_violating.expected.
#include "kde/kde_estimator.h"
#include "runtime/streaming_executor.h"

namespace fkde {

// Admits a ticket and walks away: nothing on any path retires it, so
// the slot leaks and DisableStreaming's all-retired precondition can
// never hold again.
double LeakTicket(KdeSelectivityEstimator* model, const Box& box) {
  const std::uint64_t ticket = model->StreamBegin(box);
  return model->StreamDeliver(ticket);
}

// Quiesces between StreamBegin and the retire: Quiesce asserts no
// tickets are open, so this path fires the assert (or, worse, folds
// device state out from under an in-flight ticket).
double SnapshotMidFlight(KdeSelectivityEstimator* model, const Box& box,
                         double truth) {
  const std::uint64_t ticket = model->StreamBegin(box);
  const double estimate = model->StreamDeliver(ticket);
  model->Quiesce();
  model->StreamFeedback(ticket, truth);
  return estimate;
}

// Enables streaming and returns without disabling it: the sample
// rebalancer stays frozen and the model is stuck in streamed mode.
void ForgetDisable(KdeSelectivityEstimator* model) {
  model->EnableStreaming(4);
}

}  // namespace fkde
