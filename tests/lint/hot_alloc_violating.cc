// fkde-lint fixture: hot-alloc violations. Analyzed (not compiled) by
// `ctest -L lint`. Heap allocation inside a kernel body or an FKDE_HOT
// function stalls the dispatcher threads on the allocator lock.
#include <vector>

#include "common/annotations.h"
#include "parallel/command_queue.h"
#include "parallel/device.h"

namespace fkde {

// Allocating container constructed on the per-point hot path.
FKDE_HOT double SumWithTemporary(const double* x, std::size_t n) {
  std::vector<double> tmp(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    tmp[i] = x[i] * x[i];
    total += tmp[i];
  }
  return total;
}

// Raw `new` inside a kernel body; per-worker scratch must come from
// Device::AcquireScratch instead.
void KernelWithNew(CommandQueue* queue, DeviceBuffer<double>& out,
                   std::size_t rows) {
  double* b = out.device_data();
  const BufferAccess acc[] = {Writes(out, 0, rows)};
  queue->EnqueueLaunch(
      "fixture_kernel_new", rows, 1.0,
      [b](std::size_t begin, std::size_t end) {
        double* tmp = new double[end - begin];
        for (std::size_t i = begin; i < end; ++i) {
          tmp[i - begin] = 1.0;
          b[i] = tmp[i - begin];
        }
        delete[] tmp;
      },
      acc);
}

// Growing a container inside a kernel body reallocates under load.
void KernelWithPushBack(CommandQueue* queue, DeviceBuffer<double>& out,
                        std::vector<double>& sink, std::size_t rows) {
  double* b = out.device_data();
  const BufferAccess acc[] = {Writes(out, 0, rows)};
  queue->EnqueueLaunch(
      "fixture_kernel_grow", rows, 1.0,
      [b, &sink](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          b[i] = 0.0;
          sink.push_back(b[i]);
        }
      },
      acc);
}

}  // namespace fkde
