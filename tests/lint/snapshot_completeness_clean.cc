// fkde-lint fixture: snapshot-completeness clean pattern. Every
// persistent member of the snapshot-friend class is either written by
// BOTH the save and restore paths of the ModelSnapshotAccess codec or
// carries an FKDE_SNAPSHOT_EXCLUDE with a written reason (the macro
// form and the comment form are both exercised).
#include "common/annotations.h"

namespace fkde {

class FixtureModel {
 public:
  double Estimate() const { return alpha_ * beta_; }

 private:
  friend class ModelSnapshotAccess;

  double alpha_ = 0.0;
  double beta_ = 0.0;
  FKDE_SNAPSHOT_EXCLUDE("borrowed pointer; the caller re-supplies it")
  const void* table_ = nullptr;
  // FKDE_SNAPSHOT_EXCLUDE("session scratch; cleared before every snapshot")
  double scratch_ = 0.0;
};

class ModelSnapshotAccess {
 public:
  static void Snapshot(Writer& w, const FixtureModel* m);
  static void Restore(Reader& r, FixtureModel* m);
};

void ModelSnapshotAccess::Snapshot(Writer& w, const FixtureModel* m) {
  w.F64(m->alpha_);
  w.F64(m->beta_);
}

void ModelSnapshotAccess::Restore(Reader& r, FixtureModel* m) {
  m->alpha_ = r.F64();
  m->beta_ = r.F64();
}

}  // namespace fkde
