# Exercises fkde-lint's two-pass mode end to end, the way CI uses it:
#
#   pass 1: analyze the helper TU alone and --emit-summaries its
#           serialized TuSummary (must itself be clean);
#   pass 2: analyze the violating TU with --summaries pointing at the
#           bundle from pass 1 — the out-of-TU view builder resolves
#           and the hidden access-set violation is caught, pinned
#           against cross_tu_violating.expected.
#
# Run via: cmake -DTOOL=... -DFIXTURES=... -DWORKDIR=... -P two_pass_test.cmake

foreach(var TOOL FIXTURES WORKDIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "two_pass_test.cmake: -D${var}=... is required")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORKDIR}")
file(MAKE_DIRECTORY "${WORKDIR}")

# Pass 1: summarize the helper TU.
execute_process(
  COMMAND "${TOOL}" "${FIXTURES}/cross_tu_helper.cc"
          --emit-summaries "${WORKDIR}" --expect-clean
  RESULT_VARIABLE pass1)
if(NOT pass1 EQUAL 0)
  message(FATAL_ERROR "pass 1 (summarize helper) failed: ${pass1}")
endif()

# The summary filename is the analyzed path with separators mangled to
# underscores, so it varies with how the fixture dir was spelled; glob.
file(GLOB summary_files "${WORKDIR}/*cross_tu_helper.cc.sum")
if(summary_files STREQUAL "")
  message(FATAL_ERROR "pass 1 emitted no helper summary in ${WORKDIR}")
endif()

# Pass 2: link the bundle while analyzing the violating TU. The pinned
# .expected both requires the cross-TU finding and forbids extras.
execute_process(
  COMMAND "${TOOL}" "${FIXTURES}/cross_tu_violating.cc"
          --summaries "${WORKDIR}"
          --expect "${FIXTURES}/cross_tu_violating.expected"
  RESULT_VARIABLE pass2)
if(NOT pass2 EQUAL 0)
  message(FATAL_ERROR "pass 2 (link summaries) failed: ${pass2}")
endif()

# Control: without the bundle the same TU must be silent — proving the
# finding above really came from cross-TU linking, not TU-local text.
execute_process(
  COMMAND "${TOOL}" "${FIXTURES}/cross_tu_violating.cc" --expect-clean
  RESULT_VARIABLE control)
if(NOT control EQUAL 0)
  message(FATAL_ERROR "control (per-TU run) was not clean: ${control}")
endif()
