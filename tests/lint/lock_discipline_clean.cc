// fkde-lint fixture: lock-discipline clean patterns. Mirrors the
// production idiom of src/runtime/catalog.cc — the registry mutex
// only ever guards map surgery, admission mutexes are taken after it
// is released, and the eviction scan uses try_to_lock so it can skip
// busy entries instead of blocking under the registry lock.
#include <memory>
#include <mutex>

#include "runtime/catalog.h"

namespace fkde {

// The blessed sequence: registry lock for the map lookup only, entry
// admission lock taken in a fresh scope after the registry lock is
// released.
double LookupThenEstimate(ModelCatalog* catalog, const std::string& name,
                          const Box& box) {
  std::shared_ptr<CatalogEntry> entry;
  {
    std::lock_guard<std::mutex> registry_lock(catalog->registry_mu_);
    entry = catalog->entries_[name];
  }
  std::lock_guard<std::mutex> admission(entry->mu_);
  return entry->model->EstimateSelectivity(box);
}

// Eviction scan: a try_to_lock probe under the registry mutex is
// non-blocking by construction — a busy entry is simply skipped this
// round, so no inversion cycle can form.
void EvictIdle(ModelCatalog* catalog) {
  std::lock_guard<std::mutex> registry_lock(catalog->registry_mu_);
  for (auto& [name, entry] : catalog->entries_) {
    std::unique_lock<std::mutex> probe(entry->mu_, std::try_to_lock);
    if (!probe.owns_lock()) continue;
    entry->resident = false;
  }
}

// Draining the device is fine once nothing is held.
void DrainOutsideRegistry(ModelCatalog* catalog, Device* device) {
  {
    std::lock_guard<std::mutex> registry_lock(catalog->registry_mu_);
    catalog->generation_++;
  }
  device->Synchronize();
}

}  // namespace fkde
