// fkde-lint fixture: streaming descriptor-ring violations. Analyzed
// (not compiled) by `ctest -L lint`. A bounded ring keeps `depth`
// queries in flight; on wrap-around slot k is reused for query
// k+depth. Both functions overwrite or abandon the slot's readback
// event without the host read ever being ordered behind the copy.
#include <cstddef>
#include <vector>

#include "parallel/command_queue.h"
#include "parallel/device.h"

namespace fkde {

// The per-slot event is assigned on admission and simply overwritten
// when the ring wraps: no retire path ever reaches Wait()/Finish(), so
// `staging` may be read while the copy is still in flight.
double StreamThroughRing(CommandQueue* queue, DeviceBuffer<double>& buf,
                         std::size_t depth, std::size_t queries) {
  std::vector<Event> pending(depth);
  std::vector<double> staging(depth, 0.0);
  double folded = 0.0;
  for (std::size_t q = 0; q < queries; ++q) {
    const std::size_t slot = q % depth;
    pending[slot] = queue->EnqueueCopyToHost(buf, q, 1, &staging[slot]);
    folded += staging[slot];
  }
  return folded;
}

// Same wrap-around shape with the admission enqueue discarded outright;
// nothing later on the queue orders the retire-side host reads.
void AdmitWithoutRetire(CommandQueue* queue, DeviceBuffer<double>& buf,
                        double* staging, std::size_t depth,
                        std::size_t queries) {
  for (std::size_t q = 0; q < queries; ++q) {
    queue->EnqueueCopyToHost(buf, q % depth, 1, staging + q % depth);
  }
}

}  // namespace fkde
