// fkde-lint fixture: snapshot-completeness violations. This TU is
// never compiled; it is analyzed by fkde-lint in `ctest -L lint`. It
// packs a miniature snapshot-friend model class AND its
// ModelSnapshotAccess codec into one TU (in the production tree the
// class lives in kde_estimator.h and the codec in kde/snapshot.cc and
// they only meet in whole-program mode). The save path forgets one
// member and the restore path forgets two; the annotated member is
// exempt. Expected diagnostics are pinned in
// snapshot_completeness_violating.expected.
#include "common/annotations.h"

namespace fkde {

class FixtureModel {
 public:
  double Estimate() const { return alpha_ * beta_ + gamma_; }

 private:
  friend class ModelSnapshotAccess;

  double alpha_ = 0.0;       // Saved and restored: fine.
  double beta_ = 0.0;        // Saved, never restored.
  double gamma_ = 0.0;       // Never saved, never restored.
  FKDE_SNAPSHOT_EXCLUDE("rebuilt from alpha_ by the constructor")
  double derived_ = 0.0;     // Annotated: exempt from both paths.
};

class ModelSnapshotAccess {
 public:
  static void Snapshot(Writer& w, const FixtureModel* m);
  static void Restore(Reader& r, FixtureModel* m);
};

void ModelSnapshotAccess::Snapshot(Writer& w, const FixtureModel* m) {
  w.F64(m->alpha_);
  w.F64(m->beta_);
}

void ModelSnapshotAccess::Restore(Reader& r, FixtureModel* m) {
  m->alpha_ = r.F64();
}

}  // namespace fkde
