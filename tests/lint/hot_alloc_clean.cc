// fkde-lint fixture: allocation-free hot paths. Analyzed (not
// compiled) by `ctest -L lint`; must produce zero findings. Stack
// arrays and pre-acquired scratch are the sanctioned patterns.
#include "common/annotations.h"
#include "parallel/command_queue.h"
#include "parallel/device.h"

namespace fkde {

inline constexpr std::size_t kMaxDims = 32;

// Fixed-size stack storage is fine on the hot path.
FKDE_HOT double SumWithStackArray(const double* x, std::size_t d) {
  double partial[kMaxDims];
  double total = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    partial[j] = x[j] * x[j];
    total += partial[j];
  }
  return total;
}

// Scratch acquired outside the kernel body; the body only indexes it.
void KernelWithScratch(Device* dev, CommandQueue* queue,
                       DeviceBuffer<double>& out, std::size_t rows) {
  ScratchBuffer tmp = dev->AcquireScratch(rows);
  double* t = tmp->device_data();
  double* b = out.device_data();
  const BufferAccess acc[] = {Writes(*tmp, 0, rows), Writes(out, 0, rows)};
  queue->EnqueueLaunch(
      "fixture_kernel_scratch", rows, 1.0,
      [tmp, t, b](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          t[i] = 1.0;
          b[i] = t[i];
        }
      },
      acc);
  queue->Finish();
}

}  // namespace fkde
