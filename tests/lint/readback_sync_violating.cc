// fkde-lint fixture: readback-sync violations. Analyzed (not compiled)
// by `ctest -L lint`. Both functions read back device memory without
// ever ordering the host read behind the copy.
#include <vector>

#include "parallel/command_queue.h"
#include "parallel/device.h"

namespace fkde {

// The returned event is bound but never reaches Wait()/Finish();
// `host` may be read before the copy lands.
double UnwaitedReadback(CommandQueue* queue, DeviceBuffer<double>& buf,
                        std::size_t rows) {
  std::vector<double> host(rows);
  Event done = queue->EnqueueCopyToHost(buf, 0, rows, host.data());
  return host[0];
}

// The returned event is discarded outright and no later Finish() on
// the queue orders the host read.
void DiscardedReadback(CommandQueue* queue, DeviceBuffer<double>& buf,
                       double* host, std::size_t rows) {
  queue->EnqueueCopyToHost(buf, 0, rows, host);
}

}  // namespace fkde
