// Unit tests for fkde-lint's bundled tokenizer. Pins the two C++14/11
// features the original lexer mis-tokenized — digit separators
// (1'000'000 desynced into a char literal) and encoding-prefixed raw
// strings (u8R"(...)" split at the identifier boundary) — plus the
// invariants the source model depends on: line numbers and bracket
// matching staying synchronized across them.

#include "lexer.h"

#include <gtest/gtest.h>

namespace fkde_lint {
namespace {

// Tokens minus the kEnd sentinel.
std::vector<Token> Lex(std::string_view src, TokenStream* keep = nullptr) {
  static TokenStream ts;  // Keeps string_views alive per call site.
  ts = Tokenize(src);
  if (keep != nullptr) *keep = ts;
  std::vector<Token> out(ts.tokens.begin(), ts.tokens.end());
  if (!out.empty() && out.back().kind == TokKind::kEnd) out.pop_back();
  return out;
}

TEST(LexerTest, DigitSeparatorsStayOneNumberToken) {
  const auto toks = Lex("x = 1'000'000;");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[2].kind, TokKind::kNumber);
  EXPECT_EQ(toks[2].text, "1'000'000");
}

TEST(LexerTest, HexDigitSeparators) {
  const auto toks = Lex("k = 0xFFFF'FFFF;");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[2].kind, TokKind::kNumber);
  EXPECT_EQ(toks[2].text, "0xFFFF'FFFF");
}

TEST(LexerTest, DigitSeparatorDoesNotEatFollowingCharLiteral) {
  // `case 1:` followed by a char literal: the apostrophe after `1`
  // starts a literal, it is not a separator. The old lexer consumed it
  // into the number and desynced every later token.
  const auto toks = Lex("f(1,'x');");
  ASSERT_EQ(toks.size(), 7u);
  EXPECT_EQ(toks[2].text, "1");
  EXPECT_EQ(toks[2].kind, TokKind::kNumber);
  EXPECT_EQ(toks[4].kind, TokKind::kString);
  EXPECT_EQ(toks[4].text, "'x'");
}

TEST(LexerTest, PlainRawString) {
  const auto toks = Lex("s = R\"(a \"quoted\" ) no)\";");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[2].kind, TokKind::kString);
  EXPECT_EQ(toks[2].text, "R\"(a \"quoted\" ) no)\"");
}

TEST(LexerTest, DelimitedRawString) {
  const auto toks = Lex("s = R\"ab(x)\" )ab\";");
  ASSERT_EQ(toks.size(), 4u);
  EXPECT_EQ(toks[2].kind, TokKind::kString);
  EXPECT_EQ(toks[2].text, "R\"ab(x)\" )ab\"");
}

TEST(LexerTest, EncodingPrefixedRawStrings) {
  // u8R / uR / UR / LR are single raw-string tokens, not an
  // identifier glued to a string.
  const struct {
    const char* src;
    const char* tok;
  } cases[] = {
      {"s = u8R\"(payload)\";", "u8R\"(payload)\""},
      {"s = uR\"(payload)\";", "uR\"(payload)\""},
      {"s = UR\"(payload)\";", "UR\"(payload)\""},
      {"s = LR\"(payload)\";", "LR\"(payload)\""},
  };
  for (const auto& c : cases) {
    const auto toks = Lex(c.src);
    ASSERT_EQ(toks.size(), 4u) << c.src;
    EXPECT_EQ(toks[2].kind, TokKind::kString) << c.src;
    EXPECT_EQ(toks[2].text, c.tok) << c.src;
  }
}

TEST(LexerTest, PrefixWithoutParenIsAnIdentifier) {
  // `u8R` not followed by `"` (or `R"x` with no `(` before the
  // closing quote) must fall back to ordinary tokens, not hang or
  // swallow text.
  const auto toks = Lex("u8R = LR + R;");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "u8R");
  EXPECT_EQ(toks[2].text, "LR");
  EXPECT_EQ(toks[4].text, "R");
}

TEST(LexerTest, MultiLineRawStringKeepsLineNumbers) {
  const auto toks = Lex("a = u8R\"(line1\nline2\nline3)\";\nb = 2;");
  ASSERT_EQ(toks.size(), 8u);
  EXPECT_EQ(toks[2].kind, TokKind::kString);
  EXPECT_EQ(toks[2].line, 1);
  // `b` is on line 4: the three newlines inside the raw string count.
  EXPECT_EQ(toks[4].text, "b");
  EXPECT_EQ(toks[4].line, 4);
}

TEST(LexerTest, BracketMatchingSurvivesSeparatorsAndRawStrings) {
  // Parentheses inside the raw string and apostrophes inside the
  // number must not perturb the bracket matcher.
  TokenStream ts;
  const auto toks =
      Lex("f(1'000, LR\"(unbalanced ( [ {)\", g[2]);", &ts);
  // f ( 1'000 , LR"(...)" , g [ 2 ] ) ;
  ASSERT_EQ(toks.size(), 12u);
  EXPECT_EQ(toks[1].text, "(");
  EXPECT_EQ(ts.match[1], 10u);
  EXPECT_EQ(ts.match[10], 1u);
  EXPECT_EQ(toks[7].text, "[");
  EXPECT_EQ(ts.match[7], 9u);
  EXPECT_EQ(ts.match[9], 7u);
}

TEST(LexerTest, SuppressionCommentsAreRetained) {
  TokenStream ts;
  Lex("x = 1; // FKDE_LINT_SUPPRESS(hot-alloc): reason\ny = 2;", &ts);
  ASSERT_EQ(ts.comments.size(), 1u);
  EXPECT_NE(ts.comments[0].text.find("FKDE_LINT_SUPPRESS"),
            std::string_view::npos);
  EXPECT_EQ(ts.comments[0].line, 1);
}

}  // namespace
}  // namespace fkde_lint
