// fkde-lint fixture: readback discipline done right. Analyzed (not
// compiled) by `ctest -L lint`; must produce zero findings. Covers the
// accepted orderings: explicit Wait(), chained Wait(), a later
// Finish() on the same in-order queue, and an event parked in a member
// for the caller to wait on.
#include <vector>

#include "parallel/command_queue.h"
#include "parallel/device.h"

namespace fkde {

double WaitedReadback(CommandQueue* queue, DeviceBuffer<double>& buf,
                      std::size_t rows) {
  std::vector<double> host(rows);
  Event done = queue->EnqueueCopyToHost(buf, 0, rows, host.data());
  done.Wait();
  return host[0];
}

double ChainedWaitReadback(CommandQueue* queue, DeviceBuffer<double>& buf,
                           std::size_t rows) {
  std::vector<double> host(rows);
  queue->EnqueueCopyToHost(buf, 0, rows, host.data()).Wait();
  return host[0];
}

// In-order queue: a later Finish() orders the discarded copy.
double FinishedReadback(CommandQueue* queue, DeviceBuffer<double>& buf,
                        std::size_t rows) {
  std::vector<double> host(rows);
  queue->EnqueueCopyToHost(buf, 0, rows, host.data());
  queue->Finish();
  return host[0];
}

struct PendingReadback {
  Event pending;

  // The event escapes into a member; the caller synchronizes.
  void Start(CommandQueue* queue, DeviceBuffer<double>& buf, double* host,
             std::size_t rows) {
    pending = queue->EnqueueCopyToHost(buf, 0, rows, host);
  }
};

}  // namespace fkde
