// fkde-lint fixture: helper TU for the cross-TU access-set pair. The
// view builder below packs device pointers for a fused kernel exactly
// like src/kde/engine.cc's shard views. Analyzed alone this TU is
// clean (it launches nothing); its value is the exported summary —
// "PackEstimateView packs the device data of in, weights and out" —
// which pass 2 links into cross_tu_violating.cc / cross_tu_clean.cc.
#include "parallel/command_queue.h"
#include "parallel/device.h"

namespace fkde {

struct EstimateView {
  const double* data;
  const double* weights;
  double* out;
};

EstimateView PackEstimateView(DeviceBuffer<double>& in,
                              DeviceBuffer<double>& weights,
                              DeviceBuffer<double>& out) {
  EstimateView v;
  v.data = in.device_data();
  v.weights = weights.device_data();
  v.out = out.device_data();
  return v;
}

}  // namespace fkde
