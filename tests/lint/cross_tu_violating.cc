// fkde-lint fixture: cross-TU access-set violation. The kernel's
// buffer uses are hidden behind PackEstimateView, which is DEFINED in
// cross_tu_helper.cc — a different TU. Analyzed alone, the capture is
// opaque and the per-TU analyzer must stay conservative (no finding:
// see lint_cross_tu_per_tu_opaque). With the helper's summary linked
// in (whole-program or --summaries), the view expands to
// {in, weights, out} and the missing Reads(weights) declaration is
// caught. Expected diagnostics for the linked run are pinned in
// cross_tu_violating.expected.
#include "parallel/command_queue.h"
#include "parallel/device.h"

namespace fkde {

struct EstimateView;
EstimateView PackEstimateView(DeviceBuffer<double>& in,
                              DeviceBuffer<double>& weights,
                              DeviceBuffer<double>& out);

void WeightedEstimate(CommandQueue* queue, DeviceBuffer<double>& in,
                      DeviceBuffer<double>& weights,
                      DeviceBuffer<double>& out, std::size_t rows) {
  const auto view = PackEstimateView(in, weights, out);
  const BufferAccess acc[] = {Reads(in, 0, rows), Writes(out, 0, rows)};
  queue->EnqueueLaunch(
      "fixture_cross_tu", rows, 1.0,
      [view](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          view.out[i] = view.data[i] * view.weights[i];
        }
      },
      acc);
}

}  // namespace fkde
