// fkde-lint fixture: scratch lifetime done right. Analyzed (not
// compiled) by `ctest -L lint`; must produce zero findings. The three
// sanctioned patterns: a hold capture (ScratchBuffer copied by value
// into the kernel), a blocking point after the last queued use, and
// parking the handle in a member that outlives the queue.
#include "parallel/command_queue.h"
#include "parallel/device.h"

namespace fkde {

// The kernel capture copies the shared_ptr; the pool cannot reclaim
// the scratch until the kernel body is destroyed.
void HeldByCapture(Device* dev, CommandQueue* queue,
                   DeviceBuffer<double>& out, std::size_t rows) {
  ScratchBuffer tmp = dev->AcquireScratch(rows);
  double* t = tmp->device_data();
  double* b = out.device_data();
  const BufferAccess acc[] = {Writes(*tmp, 0, rows), Writes(out, 0, rows)};
  queue->EnqueueLaunch(
      "fixture_held_scratch", rows, 1.0,
      [tmp, t, b](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          t[i] = 1.0;
          b[i] = t[i];
        }
      },
      acc);
}

// Finish() drains the queue before the handle goes out of scope.
void DrainedBeforeRelease(Device* dev, CommandQueue* queue,
                          DeviceBuffer<double>& out, std::size_t rows) {
  ScratchBuffer tmp = dev->AcquireScratch(rows);
  double* t = tmp->device_data();
  double* b = out.device_data();
  const BufferAccess acc[] = {Writes(*tmp, 0, rows), Writes(out, 0, rows)};
  queue->EnqueueLaunch(
      "fixture_drained_scratch", rows, 1.0,
      [t, b](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          t[i] = 2.0;
          b[i] = t[i];
        }
      },
      acc);
  queue->Finish();
}

struct BatchState {
  ScratchBuffer bounds;

  // Parked in a member: the owner synchronizes before reuse.
  void Acquire(Device* dev, std::size_t rows) {
    bounds = dev->AcquireScratch(rows);
  }
};

}  // namespace fkde
