// fkde-lint fixture: the disciplined version of the streaming
// descriptor ring. Before a wrapped slot is reused its previous
// occupant's event is waited, and the tail drains with Finish() before
// the staging buffers are folded.
#include <cstddef>
#include <vector>

#include "parallel/command_queue.h"
#include "parallel/device.h"

namespace fkde {

double StreamThroughRingOrdered(CommandQueue* queue,
                                DeviceBuffer<double>& buf,
                                std::size_t depth, std::size_t queries) {
  std::vector<Event> pending(depth);
  std::vector<double> staging(depth, 0.0);
  double folded = 0.0;
  for (std::size_t q = 0; q < queries; ++q) {
    const std::size_t slot = q % depth;
    // Retire the slot's previous occupant before reuse: the wrap-around
    // WAR hazard resolves by waiting the in-flight readback.
    pending[slot].Wait();
    folded += staging[slot];
    pending[slot] = queue->EnqueueCopyToHost(buf, q, 1, &staging[slot]);
  }
  queue->Finish();  // Drain the tail still in the ring.
  for (std::size_t slot = 0; slot < depth; ++slot) folded += staging[slot];
  return folded;
}

}  // namespace fkde
