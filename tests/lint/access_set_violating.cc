// fkde-lint fixture: access-set violations. This TU is never compiled;
// it is analyzed by fkde-lint in `ctest -L lint` and mirrors the
// production enqueue idiom of src/kde/engine.cc. Expected diagnostics
// are pinned (check, file, line) in access_set_violating.expected.
#include "parallel/command_queue.h"
#include "parallel/device.h"

namespace fkde {

// The kernel body reads `extra` (an alias of `side`), but `side` is
// missing from the declared access set.
void MissingCapture(CommandQueue* queue, DeviceBuffer<double>& in,
                    DeviceBuffer<double>& out, DeviceBuffer<double>& side,
                    std::size_t rows) {
  const double* a = in.device_data();
  double* b = out.device_data();
  const double* extra = side.device_data();
  const BufferAccess acc[] = {Reads(in, 0, rows), Writes(out, 0, rows)};
  queue->EnqueueLaunch(
      "fixture_missing", rows, 1.0,
      [a, b, extra](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) b[i] = a[i] + extra[i];
      },
      acc);
}

// The access set still declares `old_weights` from a previous revision
// of the kernel, which no longer touches it.
void StaleDeclaration(CommandQueue* queue, DeviceBuffer<double>& in,
                      DeviceBuffer<double>& out,
                      DeviceBuffer<double>& old_weights, std::size_t rows) {
  const double* a = in.device_data();
  double* b = out.device_data();
  const double* w = old_weights.device_data();
  const BufferAccess acc[] = {Reads(in, 0, rows), Writes(out, 0, rows),
                              Reads(old_weights, 0, rows)};
  queue->EnqueueLaunch(
      "fixture_stale", rows, 1.0,
      [a, b](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) b[i] = a[i];
      },
      acc);
  (void)w;
}

// No access set at all: the launch is invisible to the hazard checker.
void OpaqueLaunch(CommandQueue* queue, DeviceBuffer<double>& out,
                  std::size_t rows) {
  double* b = out.device_data();
  queue->EnqueueLaunch("fixture_opaque", rows, 1.0,
                       [b](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           b[i] = 0.0;
                         }
                       });
}

}  // namespace fkde
