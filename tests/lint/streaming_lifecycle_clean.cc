// fkde-lint fixture: streaming-lifecycle clean patterns. Mirrors the
// production serving loop of src/runtime/streaming_executor.cc: every
// StreamBegin is retired by StreamFeedback (or StreamRetire on the
// frozen path), EnableStreaming is paired with DisableStreaming, and
// the quiesce happens only after the last ticket has retired.
#include "kde/kde_estimator.h"
#include "runtime/streaming_executor.h"

namespace fkde {

// The canonical depth-k serving loop: admit, deliver, feed back —
// every ticket retires before the function returns.
double ServeOne(KdeSelectivityEstimator* model, const Box& box,
                double truth) {
  const std::uint64_t ticket = model->StreamBegin(box);
  const double estimate = model->StreamDeliver(ticket);
  model->StreamFeedback(ticket, truth);
  return estimate;
}

// Frozen-model replay: retire without feedback is a retire too.
double ServeFrozen(KdeSelectivityEstimator* model, const Box& box) {
  const std::uint64_t ticket = model->StreamBegin(box);
  const double estimate = model->StreamDeliver(ticket);
  model->StreamRetire(ticket);
  return estimate;
}

// A whole streamed session: enable, serve, disable, and only then
// quiesce for the snapshot — no ticket is statically open at the
// Quiesce call.
void ServeSession(KdeSelectivityEstimator* model, const Box& box,
                  double truth) {
  model->EnableStreaming(2);
  const std::uint64_t ticket = model->StreamBegin(box);
  model->StreamDeliver(ticket);
  model->StreamFeedback(ticket, truth);
  model->DisableStreaming();
  model->Quiesce();
}

}  // namespace fkde
