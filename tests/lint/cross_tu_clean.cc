// fkde-lint fixture: cross-TU access-set clean pattern. Same launch
// as cross_tu_violating.cc, but the access set declares every buffer
// the out-of-TU view builder packs — so the linked (whole-program)
// analysis has nothing to flag.
#include "parallel/command_queue.h"
#include "parallel/device.h"

namespace fkde {

struct EstimateView;
EstimateView PackEstimateView(DeviceBuffer<double>& in,
                              DeviceBuffer<double>& weights,
                              DeviceBuffer<double>& out);

void WeightedEstimate(CommandQueue* queue, DeviceBuffer<double>& in,
                      DeviceBuffer<double>& weights,
                      DeviceBuffer<double>& out, std::size_t rows) {
  const auto view = PackEstimateView(in, weights, out);
  const BufferAccess acc[] = {Reads(in, 0, rows), Reads(weights, 0, rows),
                              Writes(out, 0, rows)};
  queue->EnqueueLaunch(
      "fixture_cross_tu_clean", rows, 1.0,
      [view](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          view.out[i] = view.data[i] * view.weights[i];
        }
      },
      acc);
}

}  // namespace fkde
