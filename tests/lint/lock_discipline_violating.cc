// fkde-lint fixture: lock-discipline violations. This TU is never
// compiled; it is analyzed by fkde-lint in `ctest -L lint` and mirrors
// the catalog's two-level locking (registry mutex guarding the entry
// map, per-entry admission mutexes guarding model state). Expected
// diagnostics are pinned in lock_discipline_violating.expected.
#include <mutex>

#include "runtime/catalog.h"

namespace fkde {

// Takes the per-entry admission mutex while still holding the registry
// mutex: a thread holding entry->mu_ and waiting on registry_mu_
// deadlocks against this one (lock-order inversion).
double LookupAndEstimate(ModelCatalog* catalog, CatalogEntry* entry,
                         const Box& box) {
  std::lock_guard<std::mutex> registry_lock(catalog->registry_mu_);
  std::unique_lock<std::mutex> admission(entry->mu_);
  return entry->model->EstimateSelectivity(box);
}

// Re-acquires the registry mutex through a helper scope while the
// outer guard is still alive: immediate self-deadlock on a
// non-recursive mutex.
void TouchTwice(ModelCatalog* catalog) {
  std::lock_guard<std::mutex> outer(catalog->registry_mu_);
  {
    std::lock_guard<std::mutex> inner(catalog->registry_mu_);
  }
}

// Blocks on device work while holding the registry mutex: every
// catalog lookup on every thread stalls behind one model's drain.
void DrainUnderRegistry(ModelCatalog* catalog, Device* device) {
  std::lock_guard<std::mutex> lock(catalog->registry_mu_);
  device->Synchronize();
}

// Quiesce folds in-flight device passes (it waits on read-backs), so
// calling it under the registry mutex is the same stall as above.
void QuiesceUnderRegistry(ModelCatalog* catalog,
                          KdeSelectivityEstimator* model) {
  std::lock_guard<std::mutex> lock(catalog->registry_mu_);
  model->Quiesce();
}

}  // namespace fkde
