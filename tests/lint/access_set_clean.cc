// fkde-lint fixture: access-set discipline done right. Analyzed (not
// compiled) by `ctest -L lint`; must produce zero findings. Exercises
// the idioms the analyzer has to accept without noise: conditional
// entries, incremental `acc[na++] =` arrays, and ternary-initialized
// pointers.
#include "parallel/command_queue.h"
#include "parallel/device.h"

namespace fkde {

// Braced array, every captured buffer declared.
void DeclaredLaunch(CommandQueue* queue, DeviceBuffer<double>& in,
                    DeviceBuffer<double>& out, std::size_t rows) {
  const double* a = in.device_data();
  double* b = out.device_data();
  const BufferAccess acc[] = {Reads(in, 0, rows), Writes(out, 0, rows)};
  queue->EnqueueLaunch(
      "fixture_declared", rows, 1.0,
      [a, b](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) b[i] = a[i] * 2.0;
      },
      acc);
}

// Incrementally built array with a conditionally present buffer: the
// ternary-initialized pointer only counts against the access set when
// the matching conditional entry is absent.
void ConditionalLaunch(CommandQueue* queue, DeviceBuffer<double>& in,
                       DeviceBuffer<double>& out,
                       DeviceBuffer<float>& scales, bool has_scales,
                       std::size_t rows) {
  const double* a = in.device_data();
  double* b = out.device_data();
  const float* sc = has_scales ? scales.device_data() : nullptr;
  BufferAccess acc[3];
  std::size_t na = 0;
  acc[na++] = Reads(in, 0, rows);
  acc[na++] = Writes(out, 0, rows);
  if (has_scales) acc[na++] = Reads(scales, 0, rows);
  queue->EnqueueLaunch(
      "fixture_conditional", rows, 1.0,
      [a, b, sc](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          b[i] = sc != nullptr ? a[i] * sc[i] : a[i];
        }
      },
      acc);
}

}  // namespace fkde
