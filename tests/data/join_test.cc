#include "data/join.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fkde {
namespace {

struct JoinFixture {
  JoinFixture() : pk(2), fk(2) {
    // PK table: key in column 0, attribute 10*key in column 1.
    for (int i = 0; i < 10; ++i) {
      pk.Insert(std::vector<double>{static_cast<double>(i), 10.0 * i});
    }
    // FK table: skewed references (key i appears i+1 times).
    for (int i = 0; i < 10; ++i) {
      for (int r = 0; r <= i; ++r) {
        fk.Insert(std::vector<double>{static_cast<double>(i),
                                      100.0 * i + r});
      }
    }
    spec.pk_table = &pk;
    spec.pk_column = 0;
    spec.fk_table = &fk;
    spec.fk_column = 0;
    spec.pk_attributes = {1};
    spec.fk_attributes = {1};
  }

  Table pk, fk;
  JoinSpec spec;
};

TEST(Join, ValidateAcceptsWellFormedSpec) {
  JoinFixture f;
  EXPECT_TRUE(ValidateJoinSpec(f.spec).ok());
}

TEST(Join, ValidateRejectsNullsAndRanges) {
  JoinFixture f;
  JoinSpec bad = f.spec;
  bad.pk_table = nullptr;
  EXPECT_TRUE(ValidateJoinSpec(bad).IsInvalidArgument());
  bad = f.spec;
  bad.pk_column = 5;
  EXPECT_TRUE(ValidateJoinSpec(bad).IsOutOfRange());
  bad = f.spec;
  bad.fk_attributes = {9};
  EXPECT_TRUE(ValidateJoinSpec(bad).IsOutOfRange());
  bad = f.spec;
  bad.pk_attributes.clear();
  bad.fk_attributes.clear();
  EXPECT_TRUE(ValidateJoinSpec(bad).IsInvalidArgument());
}

TEST(Join, ValidateRejectsDuplicatePk) {
  JoinFixture f;
  f.pk.Insert(std::vector<double>{3.0, 999.0});  // Duplicate key 3.
  EXPECT_FALSE(ValidateJoinSpec(f.spec).ok());
}

TEST(Join, ValidateRejectsDanglingFk) {
  JoinFixture f;
  f.fk.Insert(std::vector<double>{42.0, 0.0});  // No such PK.
  EXPECT_TRUE(ValidateJoinSpec(f.spec).IsFailedPrecondition());
}

TEST(Join, MaterializeHasFkCardinalityAndCorrectPairs) {
  JoinFixture f;
  const Table join = MaterializeJoin(f.spec).MoveValueOrDie();
  EXPECT_EQ(join.num_rows(), f.fk.num_rows());  // |R JOIN S| = |S|.
  EXPECT_EQ(join.num_cols(), 2u);
  for (std::size_t i = 0; i < join.num_rows(); ++i) {
    // fk attribute encodes its key: 100*key + r; pk attribute is 10*key.
    const double pk_attr = join.At(i, 0);
    const double fk_attr = join.At(i, 1);
    EXPECT_DOUBLE_EQ(pk_attr, 10.0 * std::floor(fk_attr / 100.0));
  }
}

TEST(Join, SampleRowsComeFromTheJoinResult) {
  JoinFixture f;
  Rng rng(1);
  const Table sample = SampleJoin(f.spec, 20, &rng).MoveValueOrDie();
  EXPECT_EQ(sample.num_rows(), 20u);
  const Table join = MaterializeJoin(f.spec).MoveValueOrDie();
  for (std::size_t i = 0; i < sample.num_rows(); ++i) {
    bool found = false;
    for (std::size_t j = 0; j < join.num_rows() && !found; ++j) {
      found = sample.At(i, 0) == join.At(j, 0) &&
              sample.At(i, 1) == join.At(j, 1);
    }
    EXPECT_TRUE(found) << "sampled row " << i << " not in join result";
  }
}

TEST(Join, SampleIsUniformOverJoinResult) {
  // PK key k joins to k+1 FK rows, so the probability of seeing key k in
  // the sample is proportional to k+1 (uniform over the RESULT, not over
  // the PK side).
  JoinFixture f;
  Rng rng(2);
  std::vector<std::size_t> hits(10, 0);
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    const Table sample = SampleJoin(f.spec, 5, &rng).MoveValueOrDie();
    for (std::size_t i = 0; i < sample.num_rows(); ++i) {
      ++hits[static_cast<std::size_t>(sample.At(i, 0) / 10.0)];
    }
  }
  const double total = 5.0 * trials;
  const double denom = 55.0;  // sum(k+1) for k=0..9.
  for (std::size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(hits[k] / total, (k + 1) / denom, 0.03) << "key " << k;
  }
}

TEST(Join, SampleLargerThanResultReturnsWholeJoin) {
  JoinFixture f;
  Rng rng(3);
  const Table sample = SampleJoin(f.spec, 10000, &rng).MoveValueOrDie();
  EXPECT_EQ(sample.num_rows(), f.fk.num_rows());
}

TEST(Join, EmptyFkTableRejected) {
  JoinFixture f;
  Table empty_fk(2);
  f.spec.fk_table = &empty_fk;
  Rng rng(4);
  EXPECT_FALSE(SampleJoin(f.spec, 5, &rng).ok());
}

TEST(Join, ProjectionOrderIsPkThenFk) {
  JoinFixture f;
  f.spec.pk_attributes = {1, 0};
  f.spec.fk_attributes = {0};
  const Table join = MaterializeJoin(f.spec).MoveValueOrDie();
  ASSERT_EQ(join.num_cols(), 3u);
  // [pk.attr, pk.key, fk.key] — pk.key == fk.key on every row.
  for (std::size_t i = 0; i < join.num_rows(); ++i) {
    EXPECT_DOUBLE_EQ(join.At(i, 1), join.At(i, 2));
    EXPECT_DOUBLE_EQ(join.At(i, 0), 10.0 * join.At(i, 1));
  }
}

}  // namespace
}  // namespace fkde
