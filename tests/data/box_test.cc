#include "data/box.h"

#include <gtest/gtest.h>

namespace fkde {
namespace {

Box UnitSquare() { return Box({0.0, 0.0}, {1.0, 1.0}); }

TEST(Box, BasicAccessors) {
  const Box box({1.0, 2.0}, {3.0, 6.0});
  EXPECT_EQ(box.dims(), 2u);
  EXPECT_DOUBLE_EQ(box.Extent(0), 2.0);
  EXPECT_DOUBLE_EQ(box.Extent(1), 4.0);
  EXPECT_DOUBLE_EQ(box.Volume(), 8.0);
  EXPECT_DOUBLE_EQ(box.Center(0), 2.0);
  EXPECT_DOUBLE_EQ(box.Center(1), 4.0);
}

TEST(Box, ContainsPointClosed) {
  const Box box = UnitSquare();
  const double inside[] = {0.5, 0.5};
  const double edge[] = {0.0, 1.0};
  const double outside[] = {1.5, 0.5};
  EXPECT_TRUE(box.Contains({inside, 2}));
  EXPECT_TRUE(box.Contains({edge, 2}));
  EXPECT_FALSE(box.Contains({outside, 2}));
}

TEST(Box, FromPointIsDegenerate) {
  const double p[] = {2.0, 3.0};
  const Box box = Box::FromPoint({p, 2});
  EXPECT_DOUBLE_EQ(box.Volume(), 0.0);
  EXPECT_TRUE(box.Contains({p, 2}));
}

TEST(Box, ContainsBox) {
  const Box outer = UnitSquare();
  EXPECT_TRUE(outer.ContainsBox(Box({0.2, 0.2}, {0.8, 0.8})));
  EXPECT_TRUE(outer.ContainsBox(outer));
  EXPECT_FALSE(outer.ContainsBox(Box({0.5, 0.5}, {1.5, 0.9})));
}

TEST(Box, IntersectsSymmetric) {
  const Box a = UnitSquare();
  const Box b({0.5, 0.5}, {2.0, 2.0});
  const Box c({2.0, 2.0}, {3.0, 3.0});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(c.Intersects(a));
  // Touching at a corner counts as (closed) intersection.
  const Box d({1.0, 1.0}, {2.0, 2.0});
  EXPECT_TRUE(a.Intersects(d));
}

TEST(Box, IntersectionIsCommutativeAndContained) {
  const Box a({0.0, 0.0}, {2.0, 2.0});
  const Box b({1.0, -1.0}, {3.0, 1.0});
  const Box ab = a.Intersection(b);
  const Box ba = b.Intersection(a);
  EXPECT_TRUE(ab == ba);
  EXPECT_TRUE(a.ContainsBox(ab));
  EXPECT_TRUE(b.ContainsBox(ab));
  EXPECT_DOUBLE_EQ(ab.Volume(), 1.0);
}

TEST(Box, UnionCoversBoth) {
  const Box a = UnitSquare();
  const Box b({2.0, 2.0}, {3.0, 3.0});
  const Box u = a.Union(b);
  EXPECT_TRUE(u.ContainsBox(a));
  EXPECT_TRUE(u.ContainsBox(b));
  EXPECT_DOUBLE_EQ(u.Volume(), 9.0);
}

TEST(Box, ExpandToContain) {
  Box box = UnitSquare();
  const double p[] = {2.0, -1.0};
  box.ExpandToContain({p, 2});
  EXPECT_TRUE(box.Contains({p, 2}));
  EXPECT_DOUBLE_EQ(box.lower(1), -1.0);
  EXPECT_DOUBLE_EQ(box.upper(0), 2.0);
}

TEST(Box, ScaledAboutCenterPreservesCenter) {
  const Box box({0.0, 2.0}, {4.0, 6.0});
  const Box scaled = box.ScaledAboutCenter(0.5);
  EXPECT_DOUBLE_EQ(scaled.Center(0), box.Center(0));
  EXPECT_DOUBLE_EQ(scaled.Center(1), box.Center(1));
  EXPECT_DOUBLE_EQ(scaled.Volume(), box.Volume() * 0.25);
}

TEST(Box, ScaleToZeroIsDegenerate) {
  const Box box = UnitSquare().ScaledAboutCenter(0.0);
  EXPECT_DOUBLE_EQ(box.Volume(), 0.0);
}

TEST(Box, EqualityAndToString) {
  const Box a = UnitSquare();
  const Box b = UnitSquare();
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.ToString(), "[0,1]x[0,1]");
}

TEST(BoxDeath, InvertedBoundsCheck) {
  EXPECT_DEATH(Box({1.0}, {0.0}), "inverted");
}

TEST(BoxDeath, ArityMismatchCheck) {
  EXPECT_DEATH(Box({1.0, 2.0}, {3.0}), "");
}

// Property sweep: intersection volume never exceeds either operand.
class BoxIntersectionSweep : public ::testing::TestWithParam<int> {};

TEST_P(BoxIntersectionSweep, IntersectionVolumeBounded) {
  // Deterministic pseudo-random boxes from the seed parameter.
  const int seed = GetParam();
  auto next = [state = static_cast<unsigned>(seed * 2654435761u)]() mutable {
    state = state * 1664525u + 1013904223u;
    return (state >> 8) / 16777216.0;
  };
  for (int round = 0; round < 50; ++round) {
    std::vector<double> lo1(3), hi1(3), lo2(3), hi2(3);
    for (int j = 0; j < 3; ++j) {
      const double a = next() * 10.0, b = next() * 10.0;
      lo1[j] = std::min(a, b);
      hi1[j] = std::max(a, b);
      const double c = next() * 10.0, d = next() * 10.0;
      lo2[j] = std::min(c, d);
      hi2[j] = std::max(c, d);
    }
    const Box box1(lo1, hi1), box2(lo2, hi2);
    if (!box1.Intersects(box2)) continue;
    const Box inter = box1.Intersection(box2);
    EXPECT_LE(inter.Volume(), box1.Volume() + 1e-12);
    EXPECT_LE(inter.Volume(), box2.Volume() + 1e-12);
    EXPECT_GE(inter.Volume(), 0.0);
    const Box un = box1.Union(box2);
    EXPECT_GE(un.Volume(), box1.Volume() - 1e-12);
    EXPECT_GE(un.Volume(), box2.Volume() - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoxIntersectionSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace fkde
