#include "data/kdtree_counter.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"

namespace fkde {
namespace {

TEST(KdTree, EmptyTable) {
  Table table(2);
  const KdTreeCounter counter(table);
  EXPECT_EQ(counter.num_points(), 0u);
  EXPECT_EQ(counter.Count(Box({0.0, 0.0}, {1.0, 1.0})), 0u);
}

TEST(KdTree, SinglePoint) {
  Table table(2);
  table.Insert(std::vector<double>{0.5, 0.5});
  const KdTreeCounter counter(table);
  EXPECT_EQ(counter.Count(Box({0.0, 0.0}, {1.0, 1.0})), 1u);
  EXPECT_EQ(counter.Count(Box({0.6, 0.6}, {1.0, 1.0})), 0u);
  // Boundary containment is closed.
  EXPECT_EQ(counter.Count(Box({0.5, 0.5}, {0.5, 0.5})), 1u);
}

TEST(KdTree, AllIdenticalPoints) {
  Table table(3);
  for (int i = 0; i < 100; ++i) {
    table.Insert(std::vector<double>{1.0, 2.0, 3.0});
  }
  const KdTreeCounter counter(table);
  EXPECT_EQ(counter.Count(Box({0.0, 0.0, 0.0}, {5.0, 5.0, 5.0})), 100u);
  EXPECT_EQ(counter.Count(Box({1.5, 0.0, 0.0}, {5.0, 5.0, 5.0})), 0u);
}

TEST(KdTree, SnapshotSemantics) {
  Table table(1);
  for (int i = 0; i < 10; ++i) {
    table.Insert(std::vector<double>{static_cast<double>(i)});
  }
  const KdTreeCounter counter(table);
  table.Insert(std::vector<double>{100.0});
  // The index still reflects the snapshot.
  EXPECT_EQ(counter.Count(Box({-1.0}, {200.0})), 10u);
}

struct SweepCase {
  std::size_t rows;
  std::size_t dims;
  std::uint64_t seed;
};

class KdTreeSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(KdTreeSweep, MatchesLinearScanOnRandomBoxes) {
  const SweepCase c = GetParam();
  ClusterBoxesParams params;
  params.rows = c.rows;
  params.dims = c.dims;
  params.num_clusters = 5;
  const Table table = GenerateClusterBoxes(params, c.seed);
  const KdTreeCounter counter(table);
  EXPECT_EQ(counter.num_points(), c.rows);

  Rng rng(c.seed * 31 + 1);
  for (int round = 0; round < 30; ++round) {
    std::vector<double> lo(c.dims), hi(c.dims);
    for (std::size_t j = 0; j < c.dims; ++j) {
      const double a = rng.Uniform(-0.1, 1.1);
      const double b = rng.Uniform(-0.1, 1.1);
      lo[j] = std::min(a, b);
      hi[j] = std::max(a, b);
    }
    const Box box(lo, hi);
    ASSERT_EQ(counter.Count(box), table.CountInBox(box))
        << "round " << round << " box " << box.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KdTreeSweep,
    ::testing::Values(SweepCase{100, 1, 1}, SweepCase{1000, 2, 2},
                      SweepCase{5000, 3, 3}, SweepCase{10000, 5, 4},
                      SweepCase{20000, 8, 5}, SweepCase{31, 2, 6},
                      SweepCase{33, 4, 7}));

TEST(KdTree, FullDomainCountsEverything) {
  ClusterBoxesParams params;
  params.rows = 5000;
  params.dims = 3;
  const Table table = GenerateClusterBoxes(params, 9);
  const KdTreeCounter counter(table);
  EXPECT_EQ(counter.Count(table.Bounds()), 5000u);
}

}  // namespace
}  // namespace fkde
