#include "data/generators.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fkde {
namespace {

double Correlation(const Table& table, std::size_t a, std::size_t b) {
  const std::size_t n = table.num_rows();
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += table.At(i, a);
    mb += table.At(i, b);
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double da = table.At(i, a) - ma;
    const double db = table.At(i, b) - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  return cov / std::sqrt(va * vb);
}

TEST(ClusterBoxes, RespectsSizeAndDomain) {
  ClusterBoxesParams params;
  params.rows = 10000;
  params.dims = 4;
  const Table table = GenerateClusterBoxes(params, 1);
  EXPECT_EQ(table.num_rows(), 10000u);
  EXPECT_EQ(table.num_cols(), 4u);
  const Box bounds = table.Bounds();
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_GE(bounds.lower(j), 0.0);
    EXPECT_LE(bounds.upper(j), 1.0);
  }
}

TEST(ClusterBoxes, DeterministicPerSeed) {
  ClusterBoxesParams params;
  params.rows = 500;
  params.dims = 3;
  const Table a = GenerateClusterBoxes(params, 42);
  const Table b = GenerateClusterBoxes(params, 42);
  const Table c = GenerateClusterBoxes(params, 43);
  ASSERT_EQ(a.num_rows(), b.num_rows());
  bool all_equal_ab = true, all_equal_ac = true;
  for (std::size_t i = 0; i < a.num_rows(); ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      all_equal_ab &= a.At(i, j) == b.At(i, j);
      all_equal_ac &= a.At(i, j) == c.At(i, j);
    }
  }
  EXPECT_TRUE(all_equal_ab);
  EXPECT_FALSE(all_equal_ac);
}

TEST(ClusterBoxes, TagsIdentifyClustersAndNoise) {
  ClusterBoxesParams params;
  params.rows = 20000;
  params.dims = 2;
  params.num_clusters = 4;
  params.noise_fraction = 0.2;
  const Table table = GenerateClusterBoxes(params, 7);
  std::vector<std::size_t> counts(params.num_clusters + 1, 0);
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    const std::uint32_t tag = table.Tag(i);
    ASSERT_LE(tag, params.num_clusters);
    ++counts[tag];
  }
  // Noise fraction ~20%.
  EXPECT_NEAR(counts[4] / 20000.0, 0.2, 0.02);
  // Clusters share the rest roughly evenly.
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(counts[c] / 20000.0, 0.2, 0.03);
  }
}

TEST(ClusterBoxes, DataIsClustered) {
  // Clustered data occupies far less volume than uniform data: the mean
  // nearest-grid-cell occupancy must be highly skewed. Cheap proxy: the
  // per-dimension variance is much smaller than uniform's 1/12 for at
  // least some dimensions... instead check that a small random box around
  // a data point usually contains many more points than a uniform box.
  ClusterBoxesParams params;
  params.rows = 20000;
  params.dims = 3;
  params.noise_fraction = 0.05;
  const Table table = GenerateClusterBoxes(params, 3);
  Rng rng(4);
  double data_centered = 0.0, uniform_centered = 0.0;
  for (int round = 0; round < 50; ++round) {
    auto make_box = [&](const std::vector<double>& center) {
      std::vector<double> lo(3), hi(3);
      for (int j = 0; j < 3; ++j) {
        lo[j] = center[j] - 0.02;
        hi[j] = center[j] + 0.02;
      }
      return Box(lo, hi);
    };
    const auto row = table.Row(table.RandomRowIndex(&rng));
    data_centered +=
        table.CountInBox(make_box({row[0], row[1], row[2]}));
    uniform_centered += table.CountInBox(
        make_box({rng.Uniform(), rng.Uniform(), rng.Uniform()}));
  }
  EXPECT_GT(data_centered, 5.0 * uniform_centered);
}

TEST(BikeLike, ShapeAndCorrelations) {
  const Table table = GenerateBikeLike(8000, 2);
  EXPECT_EQ(table.num_cols(), 16u);
  EXPECT_EQ(table.num_rows(), 8000u);
  // Temperature and feels-like temperature are nearly collinear.
  EXPECT_GT(Correlation(table, 5, 6), 0.9);
  // Total count equals casual + registered up to noise.
  EXPECT_GT(Correlation(table, 10, 11), 0.8);
  // Humidity is anti-correlated with temperature.
  EXPECT_LT(Correlation(table, 5, 7), -0.2);
}

TEST(ForestLike, MultiModalElevation) {
  const Table table = GenerateForestLike(20000, 3);
  EXPECT_EQ(table.num_cols(), 10u);
  // Elevation spans multiple terrain modes: large overall spread vs the
  // per-mode sd of ~180 max.
  double mn = 1e18, mx = -1e18;
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    mn = std::min(mn, table.At(i, 0));
    mx = std::max(mx, table.At(i, 0));
  }
  EXPECT_GT(mx - mn, 1200.0);
}

TEST(PowerLike, TemporalAutocorrelation) {
  const Table table = GeneratePowerLike(20000, 4);
  EXPECT_EQ(table.num_cols(), 9u);
  // Lag-1 autocorrelation of active power is strong (AR process).
  const std::size_t n = table.num_rows() - 1;
  double m = 0.0;
  for (std::size_t i = 0; i <= n; ++i) m += table.At(i, 0);
  m /= (n + 1);
  double cov = 0.0, var = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (table.At(i, 0) - m) * (table.At(i + 1, 0) - m);
    var += (table.At(i, 0) - m) * (table.At(i, 0) - m);
  }
  EXPECT_GT(cov / var, 0.8);
}

TEST(ProteinLike, HeavyTailsAndCorrelation) {
  const Table table = GenerateProteinLike(20000, 5);
  EXPECT_EQ(table.num_cols(), 9u);
  // Total area and size are strongly correlated through the latent factor.
  EXPECT_GT(Correlation(table, 1, 8), 0.9);
  // Lognormal size: mean well above median (right skew).
  std::vector<double> sizes;
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    sizes.push_back(table.At(i, 8));
  }
  std::sort(sizes.begin(), sizes.end());
  double mean = 0.0;
  for (double s : sizes) mean += s;
  mean /= sizes.size();
  EXPECT_GT(mean, sizes[sizes.size() / 2] * 1.05);
}

TEST(Projection, SelectsSubsetOfColumns) {
  const Table full = GenerateBikeLike(1000, 6);
  const Table projected = ProjectRandomAttributes(full, 3, 77);
  EXPECT_EQ(projected.num_cols(), 3u);
  EXPECT_EQ(projected.num_rows(), full.num_rows());
  // Every projected column must match some source column exactly.
  for (std::size_t pc = 0; pc < 3; ++pc) {
    bool matched = false;
    for (std::size_t fc = 0; fc < full.num_cols() && !matched; ++fc) {
      bool equal = true;
      for (std::size_t i = 0; i < 100; ++i) {
        if (projected.At(i, pc) != full.At(i, fc)) {
          equal = false;
          break;
        }
      }
      matched = equal;
    }
    EXPECT_TRUE(matched) << "projected column " << pc;
  }
}

TEST(Projection, DifferentSeedsPickDifferentColumns) {
  const Table full = GenerateBikeLike(50, 6);
  const Table a = ProjectRandomAttributes(full, 3, 1);
  const Table b = ProjectRandomAttributes(full, 3, 2);
  bool differs = false;
  for (std::size_t i = 0; i < 50 && !differs; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      differs |= a.At(i, j) != b.At(i, j);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(GenerateDataset, AllNamesWork) {
  for (const std::string& name : DatasetNames()) {
    const Result<Table> result = GenerateDataset(name, 2000, 3, 5);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_EQ(result.ValueOrDie().num_cols(), 3u) << name;
    EXPECT_EQ(result.ValueOrDie().num_rows(), 2000u) << name;
  }
}

TEST(GenerateDataset, RejectsUnknownAndOversizedDims) {
  EXPECT_FALSE(GenerateDataset("no_such_dataset", 100, 3, 1).ok());
  EXPECT_FALSE(GenerateDataset("protein", 100, 30, 1).ok());
  EXPECT_FALSE(GenerateDataset("bike", 0, 3, 1).ok());
}

TEST(GenerateDataset, SyntheticSupportsAnyDims) {
  const Table table = GenerateDataset("synthetic", 100, 12, 1).ValueOrDie();
  EXPECT_EQ(table.num_cols(), 12u);
}

}  // namespace
}  // namespace fkde
