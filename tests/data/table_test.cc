#include "data/table.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace fkde {
namespace {

Table MakeTable() {
  Table table(2);
  table.Insert(std::vector<double>{1.0, 10.0}, 0);
  table.Insert(std::vector<double>{2.0, 20.0}, 1);
  table.Insert(std::vector<double>{3.0, 30.0}, 0);
  table.Insert(std::vector<double>{4.0, 40.0}, 1);
  return table;
}

TEST(Table, InsertAndAccess) {
  const Table table = MakeTable();
  EXPECT_EQ(table.num_rows(), 4u);
  EXPECT_EQ(table.num_cols(), 2u);
  EXPECT_DOUBLE_EQ(table.At(2, 1), 30.0);
  const auto row = table.Row(1);
  EXPECT_DOUBLE_EQ(row[0], 2.0);
  EXPECT_DOUBLE_EQ(row[1], 20.0);
  EXPECT_EQ(table.Tag(1), 1u);
}

TEST(Table, UpdateInPlace) {
  Table table = MakeTable();
  table.Update(0, std::vector<double>{9.0, 90.0});
  EXPECT_DOUBLE_EQ(table.At(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(table.At(0, 1), 90.0);
  EXPECT_EQ(table.num_rows(), 4u);
}

TEST(Table, DeleteSwapsWithLast) {
  Table table = MakeTable();
  table.Delete(0);
  EXPECT_EQ(table.num_rows(), 3u);
  // Former last row (4, 40) now occupies slot 0.
  EXPECT_DOUBLE_EQ(table.At(0, 0), 4.0);
  EXPECT_EQ(table.Tag(0), 1u);
}

TEST(Table, DeleteLastRow) {
  Table table = MakeTable();
  table.Delete(3);
  EXPECT_EQ(table.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(table.At(2, 0), 3.0);
}

TEST(Table, DeleteByTagRemovesAllMatching) {
  Table table = MakeTable();
  EXPECT_EQ(table.DeleteByTag(1), 2u);
  EXPECT_EQ(table.num_rows(), 2u);
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    EXPECT_EQ(table.Tag(i), 0u);
  }
  EXPECT_EQ(table.DeleteByTag(99), 0u);
}

TEST(Table, DeleteByTagHandlesAdjacentMatches) {
  // Regression: swap-with-last must re-examine the swapped-in row.
  Table table(1);
  table.Insert(std::vector<double>{1.0}, 7);
  table.Insert(std::vector<double>{2.0}, 7);
  table.Insert(std::vector<double>{3.0}, 7);
  EXPECT_EQ(table.DeleteByTag(7), 3u);
  EXPECT_TRUE(table.empty());
}

TEST(Table, CountInBox) {
  const Table table = MakeTable();
  EXPECT_EQ(table.CountInBox(Box({0.0, 0.0}, {2.5, 25.0})), 2u);
  EXPECT_EQ(table.CountInBox(Box({0.0, 0.0}, {0.5, 5.0})), 0u);
  EXPECT_EQ(table.CountInBox(Box({1.0, 10.0}, {4.0, 40.0})), 4u);
}

TEST(Table, BoundsAreTight) {
  const Table table = MakeTable();
  const Box bounds = table.Bounds();
  EXPECT_DOUBLE_EQ(bounds.lower(0), 1.0);
  EXPECT_DOUBLE_EQ(bounds.upper(0), 4.0);
  EXPECT_DOUBLE_EQ(bounds.lower(1), 10.0);
  EXPECT_DOUBLE_EQ(bounds.upper(1), 40.0);
}

TEST(Table, SampleWithoutReplacementDistinct) {
  Table table(1);
  for (int i = 0; i < 100; ++i) {
    table.Insert(std::vector<double>{static_cast<double>(i)});
  }
  Rng rng(1);
  const auto sample = table.SampleWithoutReplacement(30, &rng);
  EXPECT_EQ(sample.size(), 30u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (std::size_t idx : sample) EXPECT_LT(idx, 100u);
}

TEST(Table, SampleLargerThanTableReturnsAll) {
  Table table(1);
  for (int i = 0; i < 5; ++i) {
    table.Insert(std::vector<double>{static_cast<double>(i)});
  }
  Rng rng(2);
  const auto sample = table.SampleWithoutReplacement(50, &rng);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(Table, SamplingIsApproximatelyUniform) {
  Table table(1);
  const std::size_t n = 50;
  for (std::size_t i = 0; i < n; ++i) {
    table.Insert(std::vector<double>{static_cast<double>(i)});
  }
  std::vector<int> hits(n, 0);
  Rng rng(3);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t idx : table.SampleWithoutReplacement(5, &rng)) {
      ++hits[idx];
    }
  }
  // Each row appears with probability 5/50 = 0.1 per trial.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(hits[i] / static_cast<double>(trials), 0.1, 0.02)
        << "row " << i;
  }
}

TEST(Table, RawLayoutIsRowMajor) {
  const Table table = MakeTable();
  const auto raw = table.raw();
  ASSERT_EQ(raw.size(), 8u);
  EXPECT_DOUBLE_EQ(raw[0], 1.0);
  EXPECT_DOUBLE_EQ(raw[1], 10.0);
  EXPECT_DOUBLE_EQ(raw[2], 2.0);
}

TEST(TableDeath, ArityMismatch) {
  Table table(2);
  EXPECT_DEATH(table.Insert(std::vector<double>{1.0}), "arity");
}

}  // namespace
}  // namespace fkde
