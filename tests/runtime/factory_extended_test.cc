// Factory coverage for the estimators added beyond the paper's five
// (genhist, kde_periodic, avi) and cross-estimator consistency checks.

#include <memory>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "runtime/driver.h"
#include "runtime/executor.h"
#include "runtime/factory.h"

namespace fkde {
namespace {

struct FactoryFixture {
  FactoryFixture() {
    ClusterBoxesParams params;
    params.rows = 20000;
    params.dims = 3;
    table = std::make_unique<Table>(GenerateClusterBoxes(params, 1));
    executor = std::make_unique<Executor>(table.get());
    executor->BuildIndex();
    device = std::make_unique<Device>(DeviceProfile::OpenClCpu());
    WorkloadGenerator generator(*table);
    Rng rng(2);
    const WorkloadSpec dt = ParseWorkloadName("dt").ValueOrDie();
    training = generator.Generate(dt, 60, &rng);
    test = generator.Generate(dt, 80, &rng);
  }

  EstimatorBuildContext Context() {
    EstimatorBuildContext context;
    context.device = device.get();
    context.executor = executor.get();
    context.training = training;
    return context;
  }

  std::unique_ptr<Table> table;
  std::unique_ptr<Executor> executor;
  std::unique_ptr<Device> device;
  std::vector<Query> training;
  std::vector<Query> test;
};

TEST(FactoryExtended, GenHistBuildsAndEstimates) {
  FactoryFixture f;
  auto genhist = BuildEstimator("genhist", f.Context()).MoveValueOrDie();
  EXPECT_EQ(genhist->name(), "genhist");
  const RunStats stats =
      FeedbackDriver::RunPrecomputed(genhist.get(), f.test);
  EXPECT_LT(stats.MeanAbsoluteError(), 0.1);
  // Memory parity with STHoles buckets.
  EXPECT_LE(genhist->ModelBytes(), 3u * 4096u + 64u);
}

TEST(FactoryExtended, PeriodicBuildsViaFactory) {
  FactoryFixture f;
  auto periodic = BuildEstimator("kde_periodic", f.Context()).MoveValueOrDie();
  EXPECT_EQ(periodic->name(), "kde_periodic");
  FeedbackDriver::Train(periodic.get(), f.training);
  FeedbackDriver::Train(periodic.get(), f.training);  // Crosses the window.
  const RunStats stats =
      FeedbackDriver::RunPrecomputed(periodic.get(), f.test);
  EXPECT_LT(stats.MeanAbsoluteError(), 0.05);
}

TEST(FactoryExtended, AllEstimatorsAgreeOnExtremes) {
  FactoryFixture f;
  const Box everything({-100.0, -100.0, -100.0}, {100.0, 100.0, 100.0});
  const Box nothing({50.0, 50.0, 50.0}, {51.0, 51.0, 51.0});
  for (const char* name :
       {"stholes", "genhist", "avi", "kde_heuristic", "kde_batch",
        "kde_periodic", "kde_adaptive"}) {
    auto estimator = BuildEstimator(name, f.Context()).MoveValueOrDie();
    EXPECT_NEAR(estimator->EstimateSelectivity(everything), 1.0, 0.02)
        << name;
    EXPECT_NEAR(estimator->EstimateSelectivity(nothing), 0.0, 0.02) << name;
  }
}

TEST(FactoryExtended, GenHistComparableToStholesOnStaticData) {
  // Both histograms should land in the same error regime on static
  // clustered data (GenHist static vs STHoles after training).
  FactoryFixture f;
  auto genhist = BuildEstimator("genhist", f.Context()).MoveValueOrDie();
  auto stholes = BuildEstimator("stholes", f.Context()).MoveValueOrDie();
  FeedbackDriver::Train(stholes.get(), f.training);
  const double genhist_error =
      FeedbackDriver::RunPrecomputed(genhist.get(), f.test)
          .MeanAbsoluteError();
  const double stholes_error =
      FeedbackDriver::RunPrecomputed(stholes.get(), f.test)
          .MeanAbsoluteError();
  EXPECT_LT(genhist_error, 10.0 * stholes_error + 1e-3);
  EXPECT_LT(stholes_error, 10.0 * genhist_error + 1e-3);
}

TEST(FactoryExtended, SeedChangesKdeSampleButNotStructure) {
  FactoryFixture f;
  EstimatorBuildContext a = f.Context();
  a.seed = 1;
  EstimatorBuildContext b = f.Context();
  b.seed = 2;
  auto kde_a = BuildEstimator("kde_heuristic", a).MoveValueOrDie();
  auto kde_b = BuildEstimator("kde_heuristic", b).MoveValueOrDie();
  // Different samples -> (almost surely) different estimates, same scale.
  const Box box({0.2, 0.2, 0.2}, {0.6, 0.6, 0.6});
  const double est_a = kde_a->EstimateSelectivity(box);
  const double est_b = kde_b->EstimateSelectivity(box);
  EXPECT_NE(est_a, est_b);
  EXPECT_NEAR(est_a, est_b, 0.1);
}

TEST(FactoryExtended, MemoryBudgetDefaultsToPaperRule) {
  FactoryFixture f;
  EstimatorBuildContext context = f.Context();
  context.memory_bytes = 0;  // => d * 4kB.
  auto kde = BuildEstimator("kde_heuristic", context).MoveValueOrDie();
  // 3 * 4096 / (4 * 3) = 1024 sample rows -> payload 12288 bytes.
  EXPECT_GE(kde->ModelBytes(), 1024u * 3u * sizeof(float));
}

}  // namespace
}  // namespace fkde
