// ModelCatalog: multi-model serving on one shared device group. Pins the
// PR's acceptance criteria — interleaved serving across >= 8 models is
// bitwise-identical to isolated single-model runs, and constrained-budget
// evict/snapshot/fault-back cycles restore bitwise-identical estimates —
// plus lifecycle, LRU/pinning, stats, external snapshot persistence, and
// the destruction-order regression for estimators sharing a group.

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "kde/kde_estimator.h"
#include "parallel/device_group.h"
#include "runtime/catalog.h"
#include "runtime/driver.h"
#include "runtime/factory.h"
#include "runtime/topology.h"
#include "workload/workload.h"

namespace fkde {
namespace {

struct Fleet {
  explicit Fleet(std::size_t models, std::size_t queries_per_model = 12,
                 std::uint64_t seed = 3) {
    tables.reserve(models);
    for (std::size_t m = 0; m < models; ++m) {
      const std::uint64_t model_seed = seed * 7919 + m;
      tables.push_back(
          GenerateDataset("synthetic", 3000, 3, model_seed).MoveValueOrDie());
      WorkloadGenerator generator(tables.back());
      Rng rng(model_seed + 17);
      workloads.push_back(
          generator.Generate(ParseWorkloadName("dt").ValueOrDie(),
                             queries_per_model, &rng));
      ModelKey key;
      key.table = "t";
      key.table += std::to_string(m);
      key.columns = {"a", "b", "c"};
      keys.push_back(std::move(key));
      KdeConfig config;
      config.sample_size = 128;
      config.seed = model_seed + 29;
      configs.push_back(config);
    }
  }

  void RegisterAll(ModelCatalog* catalog) const {
    for (std::size_t m = 0; m < keys.size(); ++m) {
      ModelSpec spec;
      spec.mode = KdeSelectivityEstimator::Mode::kAdaptive;
      spec.config = configs[m];
      spec.table = &tables[m];
      ASSERT_TRUE(catalog->Register(keys[m], std::move(spec)).ok());
    }
  }

  /// Round-robin estimate+feedback through the catalog; returns per-model
  /// estimate streams.
  std::vector<std::vector<double>> Serve(ModelCatalog* catalog) const {
    std::vector<std::vector<double>> estimates(keys.size());
    for (std::size_t q = 0; q < workloads[0].size(); ++q) {
      for (std::size_t m = 0; m < keys.size(); ++m) {
        const Query& query = workloads[m][q];
        estimates[m].push_back(
            catalog->Estimate(keys[m], query.box).MoveValueOrDie());
        FKDE_CHECK_OK(
            catalog->Feedback(keys[m], query.box, query.selectivity));
      }
    }
    return estimates;
  }

  std::vector<Table> tables;
  std::vector<std::vector<Query>> workloads;
  std::vector<ModelKey> keys;
  std::vector<KdeConfig> configs;
};

bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

TEST(ModelCatalog, LifecycleRegisterDuplicateDrop) {
  Fleet fleet(1);
  auto group = BuildDeviceGroup("cpu").MoveValueOrDie();
  ModelCatalog catalog(group.get());
  fleet.RegisterAll(&catalog);

  ModelSpec dup;
  dup.table = &fleet.tables[0];
  EXPECT_TRUE(catalog.Register(fleet.keys[0], std::move(dup))
                  .code() == StatusCode::kAlreadyExists);
  EXPECT_EQ(catalog.Keys().size(), 1u);
  EXPECT_EQ(fleet.keys[0].ToString(), "t0(a,b,c)");

  // Lazy build: not resident until the first query.
  EXPECT_FALSE(catalog.StatsFor(fleet.keys[0]).MoveValueOrDie().resident);
  (void)catalog.Estimate(fleet.keys[0], fleet.workloads[0][0].box)
      .MoveValueOrDie();
  const ModelStats stats = catalog.StatsFor(fleet.keys[0]).MoveValueOrDie();
  EXPECT_TRUE(stats.resident);
  EXPECT_EQ(stats.queries_served, 1u);
  EXPECT_GT(stats.device_bytes, 0u);

  EXPECT_TRUE(catalog.Drop(fleet.keys[0]).ok());
  EXPECT_TRUE(catalog.Drop(fleet.keys[0]).IsNotFound());
  EXPECT_FALSE(catalog.Estimate(fleet.keys[0], fleet.workloads[0][0].box)
                   .ok());
}

// The PR's first acceptance pin: >= 8 concurrently-live models on ONE
// shared group, interleaved query+feedback, bitwise-identical to 8
// isolated single-model runs.
TEST(ModelCatalog, EightSharedModelsMatchIsolatedRunsBitwise) {
  Fleet fleet(8);
  auto group = BuildDeviceGroup("gpu").MoveValueOrDie();
  ModelCatalog catalog(group.get());
  fleet.RegisterAll(&catalog);
  const std::vector<std::vector<double>> shared = fleet.Serve(&catalog);

  for (std::size_t m = 0; m < 8; ++m) {
    auto solo_group = BuildDeviceGroup("gpu").MoveValueOrDie();
    auto solo = KdeSelectivityEstimator::Create(
                    KdeSelectivityEstimator::Mode::kAdaptive,
                    solo_group.get(), &fleet.tables[m], fleet.configs[m])
                    .MoveValueOrDie();
    std::vector<double> isolated;
    for (const Query& q : fleet.workloads[m]) {
      isolated.push_back(solo->EstimateSelectivity(q.box));
      solo->ObserveTrueSelectivity(q.box, q.selectivity);
    }
    EXPECT_TRUE(SameBits(shared[m], isolated)) << "model " << m;
  }
}

// The PR's second acceptance pin: a budget small enough to force
// continuous evict -> snapshot -> fault-back cycling must not change one
// bit of any estimate.
TEST(ModelCatalog, EvictionUnderBudgetRestoresBitwise) {
  Fleet fleet(8);
  auto free_group = BuildDeviceGroup("gpu").MoveValueOrDie();
  ModelCatalog free_catalog(free_group.get());
  fleet.RegisterAll(&free_catalog);
  const std::vector<std::vector<double>> unconstrained =
      fleet.Serve(&free_catalog);
  std::size_t model_bytes = 0;
  for (const ModelKey& key : fleet.keys) {
    model_bytes = std::max(
        model_bytes, free_catalog.StatsFor(key).MoveValueOrDie().device_bytes);
  }

  auto tight_group = BuildDeviceGroup("gpu").MoveValueOrDie();
  CatalogOptions options;
  options.device_budget_bytes = model_bytes * 5 / 2;  // ~2 of 8 resident.
  ModelCatalog tight(tight_group.get(), options);
  fleet.RegisterAll(&tight);
  const std::vector<std::vector<double>> constrained = fleet.Serve(&tight);

  for (std::size_t m = 0; m < 8; ++m) {
    EXPECT_TRUE(SameBits(constrained[m], unconstrained[m])) << "model " << m;
  }
  const CatalogStats stats = tight.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.faults, 0u);
  EXPECT_LE(stats.resident_models, 3u);
}

TEST(ModelCatalog, LruOrderAndPinning) {
  Fleet fleet(3);
  auto group = BuildDeviceGroup("cpu").MoveValueOrDie();
  ModelCatalog catalog(group.get());
  fleet.RegisterAll(&catalog);
  // Make all three resident, oldest-touched first.
  for (std::size_t m = 0; m < 3; ++m) {
    (void)catalog.Estimate(fleet.keys[m], fleet.workloads[m][0].box)
        .MoveValueOrDie();
  }
  ASSERT_TRUE(catalog.Pin(fleet.keys[0], true).ok());
  EXPECT_TRUE(catalog.Evict(fleet.keys[0]).IsFailedPrecondition());

  // Manual evict of a non-pinned model spills it; the next query faults
  // it back transparently.
  ASSERT_TRUE(catalog.Evict(fleet.keys[1]).ok());
  EXPECT_FALSE(catalog.StatsFor(fleet.keys[1]).MoveValueOrDie().resident);
  (void)catalog.Estimate(fleet.keys[1], fleet.workloads[1][1].box)
      .MoveValueOrDie();
  const ModelStats faulted = catalog.StatsFor(fleet.keys[1]).MoveValueOrDie();
  EXPECT_TRUE(faulted.resident);
  EXPECT_EQ(faulted.evictions, 1u);
  EXPECT_EQ(faulted.faults, 1u);

  // Unpinned again, model 0 becomes evictable.
  ASSERT_TRUE(catalog.Pin(fleet.keys[0], false).ok());
  EXPECT_TRUE(catalog.Evict(fleet.keys[0]).ok());
}

TEST(ModelCatalog, ExternalSnapshotPersistenceAcrossCatalogs) {
  Fleet fleet(1, 20);
  auto group_a = BuildDeviceGroup("cpu").MoveValueOrDie();
  ModelCatalog catalog_a(group_a.get());
  fleet.RegisterAll(&catalog_a);
  const std::vector<std::vector<double>> before = fleet.Serve(&catalog_a);
  const std::vector<std::uint8_t> blob =
      catalog_a.SaveSnapshot(fleet.keys[0]).MoveValueOrDie();

  // "Process restart": a fresh catalog on a fresh group, seeded from the
  // blob. The model must continue exactly where the old one stood.
  auto group_b = BuildDeviceGroup("cpu").MoveValueOrDie();
  ModelCatalog catalog_b(group_b.get());
  ModelSpec spec;
  spec.mode = KdeSelectivityEstimator::Mode::kAdaptive;
  spec.config = fleet.configs[0];
  spec.table = &fleet.tables[0];
  ASSERT_TRUE(
      catalog_b.RegisterFromSnapshot(fleet.keys[0], std::move(spec), blob)
          .ok());

  WorkloadGenerator generator(fleet.tables[0]);
  Rng rng(97);
  const std::vector<Query> stream = generator.Generate(
      ParseWorkloadName("dt").ValueOrDie(), 50, &rng);
  for (const Query& q : stream) {
    const double a = catalog_a.Estimate(fleet.keys[0], q.box).MoveValueOrDie();
    const double b = catalog_b.Estimate(fleet.keys[0], q.box).MoveValueOrDie();
    ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0);
    ASSERT_TRUE(catalog_a.Feedback(fleet.keys[0], q.box, q.selectivity).ok());
    ASSERT_TRUE(catalog_b.Feedback(fleet.keys[0], q.box, q.selectivity).ok());
  }
}

TEST(ModelCatalog, FactoryRoutesKdeThroughCatalogAndDriverRuns) {
  Fleet fleet(1, 15);
  auto group = BuildDeviceGroup("cpu").MoveValueOrDie();
  ModelCatalog catalog(group.get());
  Executor executor(&fleet.tables[0]);

  EstimatorBuildContext context;
  context.executor = &executor;
  context.catalog = &catalog;
  context.table_name = "orders";
  context.seed = 11;
  auto handle = BuildEstimator("kde_adaptive", context).MoveValueOrDie();
  EXPECT_EQ(handle->name(), "catalog:orders(c0,c1,c2)");
  EXPECT_EQ(handle->dims(), 3u);

  // The handle serves through the catalog: stats move with every call.
  ModelKey key;
  key.table = "orders";
  key.columns = {"c0", "c1", "c2"};
  (void)handle->EstimateSelectivity(fleet.workloads[0][0].box);
  handle->ObserveTrueSelectivity(fleet.workloads[0][0].box,
                                 fleet.workloads[0][0].selectivity);
  ModelStats stats = catalog.StatsFor(key).MoveValueOrDie();
  EXPECT_EQ(stats.queries_served, 1u);
  EXPECT_EQ(stats.feedback_applied, 1u);

  // And the catalog-aware driver produces a full RunStats.
  const RunStats run =
      FeedbackDriver::RunCatalog(&catalog, key, fleet.workloads[0])
          .MoveValueOrDie();
  EXPECT_EQ(run.absolute_errors.size(), fleet.workloads[0].size());
  stats = catalog.StatsFor(key).MoveValueOrDie();
  EXPECT_EQ(stats.queries_served, 1u + fleet.workloads[0].size());
}

// Catalog-level lock discipline: K client threads round-robining disjoint
// model sets through ONE catalog under the strict hazard checker. The
// per-entry admission mutex serializes each model's serving while the
// registry mutex only guards map lookups, so the threads make progress
// concurrently — and every model's estimate stream must be bitwise the
// single-threaded replay, with no scratch leaked once the models drop.
TEST(ModelCatalog, ConcurrentClientsMatchSingleThreadedReplayBitwise) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kModelsPerThread = 2;
  constexpr std::size_t kModels = kThreads * kModelsPerThread;
  Fleet fleet(kModels, 10);
  DeviceGroupOptions group_options;
  group_options.hazard_mode = HazardMode::kStrict;
  auto group = BuildDeviceGroup("gpu", group_options).MoveValueOrDie();
  auto catalog = std::make_unique<ModelCatalog>(group.get());
  fleet.RegisterAll(catalog.get());

  // Thread t owns models {t, t+K, ...}: disjoint ownership keeps each
  // model's query order deterministic while the catalog arbitrates the
  // shared group between threads.
  std::vector<std::vector<std::vector<double>>> streams(kThreads);
  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    streams[t].resize(kModelsPerThread);
    clients.emplace_back([&, t] {
      for (std::size_t q = 0; q < fleet.workloads[0].size(); ++q) {
        for (std::size_t j = 0; j < kModelsPerThread; ++j) {
          const std::size_t m = t + j * kThreads;
          const Query& query = fleet.workloads[m][q];
          streams[t][j].push_back(
              catalog->Estimate(fleet.keys[m], query.box).MoveValueOrDie());
          FKDE_CHECK_OK(
              catalog->Feedback(fleet.keys[m], query.box, query.selectivity));
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  // Single-threaded replay on a fresh catalog: per-model bits must agree
  // (cross-model interleaving never leaks into a model's estimates).
  auto replay_group = BuildDeviceGroup("gpu", group_options).MoveValueOrDie();
  ModelCatalog replay(replay_group.get());
  fleet.RegisterAll(&replay);
  const std::vector<std::vector<double>> expected = fleet.Serve(&replay);
  for (std::size_t t = 0; t < kThreads; ++t) {
    for (std::size_t j = 0; j < kModelsPerThread; ++j) {
      const std::size_t m = t + j * kThreads;
      EXPECT_TRUE(SameBits(streams[t][j], expected[m])) << "model " << m;
    }
  }
  for (const ModelKey& key : fleet.keys) {
    EXPECT_EQ(catalog->StatsFor(key).MoveValueOrDie().queries_served,
              fleet.workloads[0].size());
  }

  // Dropping every model tears the estimators down; nothing may leak.
  for (const ModelKey& key : fleet.keys) {
    ASSERT_TRUE(catalog->Drop(key).ok());
  }
  catalog.reset();
  EXPECT_EQ(group->AggregateScratchStats().outstanding, 0u);
}

// ---------------------------------------------------------------------------
// Destruction-order regression: two estimators tenanting one DeviceGroup,
// both with passes still enqueued, torn down in either order under the
// strict hazard checker. Destruction must drain cleanly — no queue-drain
// assert, no leaked scratch handles.

class DestructionOrder : public ::testing::TestWithParam<bool> {};

TEST_P(DestructionOrder, TwoTenantsWithInflightPassesEitherOrder) {
  const Table table =
      GenerateDataset("synthetic", 2000, 3, 5).MoveValueOrDie();
  DeviceGroupOptions options;
  options.hazard_mode = HazardMode::kStrict;
  auto group = BuildDeviceGroup("cpu+gpu", options).MoveValueOrDie();

  KdeConfig config;
  config.sample_size = 128;
  config.seed = 7;
  auto first = KdeSelectivityEstimator::Create(
                   KdeSelectivityEstimator::Mode::kAdaptive, group.get(),
                   &table, config)
                   .MoveValueOrDie();
  config.seed = 8;
  auto second = KdeSelectivityEstimator::Create(
                    KdeSelectivityEstimator::Mode::kAdaptive, group.get(),
                    &table, config)
                    .MoveValueOrDie();

  WorkloadGenerator generator(table);
  Rng rng(13);
  const std::vector<Query> queries = generator.Generate(
      ParseWorkloadName("dt").ValueOrDie(), 6, &rng);
  // Interleave, and leave BOTH with a pending gradient pass enqueued.
  for (const Query& q : queries) {
    (void)first->EstimateSelectivity(q.box);
    (void)second->EstimateSelectivity(q.box);
    first->ObserveTrueSelectivity(q.box, q.selectivity);
    second->ObserveTrueSelectivity(q.box, q.selectivity);
  }
  (void)first->EstimateSelectivity(queries[0].box);
  (void)second->EstimateSelectivity(queries[1].box);

  if (GetParam()) {
    first.reset();
    second.reset();
  } else {
    second.reset();
    first.reset();
  }
  // No scratch handle may outlive its estimator.
  EXPECT_EQ(group->AggregateScratchStats().outstanding, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothOrders, DestructionOrder, ::testing::Bool());

}  // namespace
}  // namespace fkde
