#include <memory>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "runtime/driver.h"
#include "runtime/evolving_runner.h"
#include "runtime/executor.h"
#include "runtime/factory.h"

namespace fkde {
namespace {

Table SmallClustered(std::uint64_t seed, std::size_t dims = 3) {
  ClusterBoxesParams params;
  params.rows = 10000;
  params.dims = dims;
  return GenerateClusterBoxes(params, seed);
}

TEST(Executor, CountMatchesTableScan) {
  Table table = SmallClustered(1);
  Executor executor(&table);
  const Box box({0.1, 0.1, 0.1}, {0.6, 0.4, 0.9});
  EXPECT_EQ(executor.Count(box), table.CountInBox(box));
  executor.BuildIndex();
  EXPECT_EQ(executor.Count(box), table.CountInBox(box));
}

TEST(Executor, MutationInvalidatesIndex) {
  Table table = SmallClustered(2);
  Executor executor(&table);
  executor.BuildIndex();
  const Box everything = table.Bounds();
  const std::size_t before = executor.Count(everything);
  executor.Insert(std::vector<double>{0.5, 0.5, 0.5}, 99);
  // Index dropped: the new row must be visible.
  EXPECT_EQ(executor.Count(everything), before + 1);
  EXPECT_EQ(executor.DeleteByTag(99), 1u);
  EXPECT_EQ(executor.Count(everything), before);
}

TEST(Executor, TrueSelectivityNormalized) {
  Table table = SmallClustered(3);
  Executor executor(&table);
  EXPECT_DOUBLE_EQ(executor.TrueSelectivity(table.Bounds()), 1.0);
  Table empty(2);
  Executor empty_executor(&empty);
  EXPECT_DOUBLE_EQ(
      empty_executor.TrueSelectivity(Box({0.0, 0.0}, {1.0, 1.0})), 0.0);
}

TEST(Executor, RegionCounterSeesLiveTable) {
  Table table = SmallClustered(4);
  Executor executor(&table);
  const RegionCounter counter = executor.MakeRegionCounter();
  const Box everything = table.Bounds();
  const std::size_t before = counter(everything);
  executor.Insert(std::vector<double>{0.5, 0.5, 0.5});
  EXPECT_EQ(counter(everything), before + 1);
}

TEST(Factory, BuildsEveryEstimator) {
  Table table = SmallClustered(5);
  Executor executor(&table);
  executor.BuildIndex();
  Device device(DeviceProfile::OpenClCpu());
  WorkloadGenerator generator(table);
  Rng rng(6);
  const auto training =
      generator.Generate(ParseWorkloadName("dt").ValueOrDie(), 30, &rng);

  EstimatorBuildContext context;
  context.device = &device;
  context.executor = &executor;
  context.training = training;
  for (const std::string& name : EstimatorNames()) {
    const auto result = BuildEstimator(name, context);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
    EXPECT_EQ(result.ValueOrDie()->name(), name);
    EXPECT_EQ(result.ValueOrDie()->dims(), 3u);
  }
  // AVI is available although not part of the paper's five.
  EXPECT_TRUE(BuildEstimator("avi", context).ok());
  EXPECT_FALSE(BuildEstimator("oracle", context).ok());
}

TEST(Factory, MemoryBudgetShapesModels) {
  Table table = SmallClustered(7);
  Executor executor(&table);
  Device device(DeviceProfile::OpenClCpu());
  EstimatorBuildContext context;
  context.device = &device;
  context.executor = &executor;
  context.memory_bytes = 3 * 4096;  // d * 4kB.
  auto kde = BuildEstimator("kde_heuristic", context).MoveValueOrDie();
  // 3*4096 bytes / (4 bytes * 3 dims) = 1024 sample rows.
  EXPECT_NEAR(static_cast<double>(kde->ModelBytes()),
              3.0 * 4096.0, 3.0 * 4096.0);  // Within 2x (contributions etc).
  auto sth = BuildEstimator("stholes", context).MoveValueOrDie();
  EXPECT_LE(sth->ModelBytes(), 2u * 3u * 4096u);
}

TEST(Factory, KdeWithoutDeviceFails) {
  Table table = SmallClustered(8);
  Executor executor(&table);
  EstimatorBuildContext context;
  context.executor = &executor;
  EXPECT_FALSE(BuildEstimator("kde_heuristic", context).ok());
  // STHoles does not need a device.
  EXPECT_TRUE(BuildEstimator("stholes", context).ok());
}

TEST(Driver, RunPrecomputedRecordsErrors) {
  Table table = SmallClustered(9);
  Executor executor(&table);
  executor.BuildIndex();
  Device device(DeviceProfile::OpenClCpu());
  EstimatorBuildContext context;
  context.device = &device;
  context.executor = &executor;
  auto estimator = BuildEstimator("kde_heuristic", context).MoveValueOrDie();

  WorkloadGenerator generator(table);
  Rng rng(10);
  const auto queries =
      generator.Generate(ParseWorkloadName("dt").ValueOrDie(), 20, &rng);
  const RunStats stats =
      FeedbackDriver::RunPrecomputed(estimator.get(), queries);
  ASSERT_EQ(stats.absolute_errors.size(), 20u);
  ASSERT_EQ(stats.signed_errors.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_GE(stats.absolute_errors[i], 0.0);
    EXPECT_NEAR(std::abs(stats.signed_errors[i]), stats.absolute_errors[i],
                1e-15);
    EXPECT_DOUBLE_EQ(stats.truths[i], queries[i].selectivity);
  }
  EXPECT_GE(stats.MeanAbsoluteError(), 0.0);
  EXPECT_EQ(stats.AbsoluteErrorSummary().count, 20u);
}

TEST(Driver, RunLiveMatchesExecutorTruth) {
  Table table = SmallClustered(11);
  Executor executor(&table);
  Device device(DeviceProfile::OpenClCpu());
  EstimatorBuildContext context;
  context.device = &device;
  context.executor = &executor;
  auto estimator = BuildEstimator("kde_heuristic", context).MoveValueOrDie();
  const std::vector<Box> boxes = {Box({0.0, 0.0, 0.0}, {0.5, 0.5, 0.5}),
                                  Box({0.2, 0.2, 0.2}, {0.9, 0.9, 0.9})};
  const RunStats stats =
      FeedbackDriver::RunLive(estimator.get(), &executor, boxes);
  ASSERT_EQ(stats.truths.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(stats.truths[i], executor.TrueSelectivity(boxes[i]));
  }
}

TEST(EvolvingRunner, TraceCoversWholeRun) {
  EvolvingParams params;
  params.dims = 3;
  params.tuples_per_cluster = 200;
  params.cycles = 3;
  params.inserts_per_query = 25;

  Table table(params.dims);
  Executor executor(&table);
  // Pre-load so the estimator can be built.
  EvolvingWorkload workload(params, 12);
  EvolvingEvent event;
  std::size_t preload = params.initial_clusters * params.tuples_per_cluster;
  while (preload > 0 && workload.Next(table, &event)) {
    if (event.kind == EvolvingEvent::Kind::kInsert) {
      table.Insert(event.row, event.tag);
      --preload;
    }
  }
  Device device(DeviceProfile::OpenClCpu());
  EstimatorBuildContext context;
  context.device = &device;
  context.executor = &executor;
  auto estimator = BuildEstimator("kde_adaptive", context).MoveValueOrDie();

  const EvolvingTrace trace =
      RunEvolving(estimator.get(), &executor, &workload);
  EXPECT_EQ(trace.inserts, params.cycles * params.tuples_per_cluster);
  EXPECT_EQ(trace.deletes, params.cycles * params.tuples_per_cluster);
  EXPECT_GT(trace.absolute_errors.size(), 10u);
  EXPECT_EQ(trace.absolute_errors.size(), trace.table_sizes.size());
  EXPECT_GE(trace.WindowMean(0, trace.absolute_errors.size()), 0.0);
}

}  // namespace
}  // namespace fkde
