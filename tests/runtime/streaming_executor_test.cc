// StreamingExecutor: N queries in flight per estimator. Pins the PR's
// acceptance criterion — streamed execution under the strict hazard
// checker returns estimates bitwise-identical to a serial replay of the
// same admission schedule — plus the window=1 == classic-loop identity,
// ring wrap-around across multi-device shards, open-loop arrival
// generation, and catalog-served streaming with eviction afterwards.

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "kde/kde_estimator.h"
#include "parallel/device_group.h"
#include "runtime/catalog.h"
#include "runtime/driver.h"
#include "runtime/streaming_executor.h"
#include "runtime/topology.h"
#include "workload/workload.h"

namespace fkde {
namespace {

struct Rig {
  explicit Rig(std::size_t queries = 24, std::uint64_t seed = 3)
      : table(GenerateDataset("synthetic", 3000, 3, seed).MoveValueOrDie()) {
    WorkloadGenerator generator(table);
    Rng rng(seed + 17);
    const std::vector<Query> generated = generator.Generate(
        ParseWorkloadName("dt").ValueOrDie(), queries, &rng);
    for (const Query& q : generated) {
      StreamedQuery sq;
      sq.box = q.box;
      sq.truth = q.selectivity;
      workload.push_back(sq);
      queries_classic.push_back(q);
    }
    config.sample_size = 128;
    config.seed = seed + 29;
  }

  /// Fresh strict-hazard group + fresh adaptive model, same seeds every
  /// time: any two runs that execute the same logical schedule must agree
  /// bitwise.
  StreamingReport Run(const std::string& topology,
                      const StreamingOptions& options) const {
    DeviceGroupOptions group_options;
    group_options.hazard_mode = HazardMode::kStrict;
    auto group = BuildDeviceGroup(topology, group_options).MoveValueOrDie();
    auto model = KdeSelectivityEstimator::Create(
                     KdeSelectivityEstimator::Mode::kAdaptive, group.get(),
                     &table, config)
                     .MoveValueOrDie();
    StreamingExecutor executor(group.get(), options);
    StreamingReport report =
        executor.Run(model.get(), workload).MoveValueOrDie();
    EXPECT_EQ(model->stream_in_flight(), 0u);
    EXPECT_EQ(model->streaming_depth(), 0u);
    model.reset();
    EXPECT_EQ(group->AggregateScratchStats().outstanding, 0u);
    return report;
  }

  Table table;
  std::vector<StreamedQuery> workload;
  std::vector<Query> queries_classic;
  KdeConfig config;
};

bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// The acceptance pin: pipelined streaming (4 in flight, ring wrap several
// times over) under HazardMode::kStrict is bitwise the serial replay of
// the same schedule.
TEST(StreamingExecutor, StreamedMatchesSerialReplayBitwiseStrictHazard) {
  Rig rig(30);
  StreamingOptions streamed;
  streamed.window = 4;
  streamed.execution_seconds = 100e-6;
  StreamingOptions replay = streamed;
  replay.pipeline = false;

  for (const char* topology : {"gpu", "cpu+gpu"}) {
    const StreamingReport a = rig.Run(topology, streamed);
    const StreamingReport b = rig.Run(topology, replay);
    EXPECT_TRUE(SameBits(a.estimates, b.estimates)) << topology;
    EXPECT_EQ(a.completed, rig.workload.size());
    EXPECT_GT(a.throughput_qps, 0.0);
  }
}

// window=1 streaming enqueues exactly the classic Estimate/Observe pair
// sequence, so it must reproduce the classic driver loop bit-for-bit.
TEST(StreamingExecutor, WindowOneMatchesClassicLoopBitwise) {
  Rig rig(20);
  StreamingOptions serial;
  serial.window = 1;
  const StreamingReport streamed = rig.Run("gpu", serial);

  DeviceGroupOptions group_options;
  group_options.hazard_mode = HazardMode::kStrict;
  auto group = BuildDeviceGroup("gpu", group_options).MoveValueOrDie();
  auto model = KdeSelectivityEstimator::Create(
                   KdeSelectivityEstimator::Mode::kAdaptive, group.get(),
                   &rig.table, rig.config)
                   .MoveValueOrDie();
  std::vector<double> classic;
  for (const StreamedQuery& q : rig.workload) {
    classic.push_back(model->EstimateSelectivity(q.box));
    model->ObserveTrueSelectivity(q.box, q.truth);
  }
  EXPECT_TRUE(SameBits(streamed.estimates, classic));
}

// Deep window on a two-shard group: every descriptor slot is reused
// several times (ring wrap), with each shard's queue pipelining its own
// copy of the per-slot chain. Feedback off exercises the retire path.
TEST(StreamingExecutor, RingWrapAcrossShardsFrozenModel) {
  Rig rig(40);
  StreamingOptions streamed;
  streamed.window = 6;
  streamed.feedback = false;
  StreamingOptions replay = streamed;
  replay.pipeline = false;
  const StreamingReport a = rig.Run("cpu+gpu", streamed);
  const StreamingReport b = rig.Run("cpu+gpu", replay);
  EXPECT_TRUE(SameBits(a.estimates, b.estimates));

  // A frozen model never folds feedback, so the estimates also match a
  // frozen classic loop.
  DeviceGroupOptions group_options;
  group_options.hazard_mode = HazardMode::kStrict;
  auto group = BuildDeviceGroup("cpu+gpu", group_options).MoveValueOrDie();
  auto model = KdeSelectivityEstimator::Create(
                   KdeSelectivityEstimator::Mode::kAdaptive, group.get(),
                   &rig.table, rig.config)
                   .MoveValueOrDie();
  std::vector<double> frozen;
  for (const StreamedQuery& q : rig.workload) {
    frozen.push_back(model->EstimateSelectivity(q.box));
  }
  EXPECT_TRUE(SameBits(a.estimates, frozen));
}

TEST(StreamingExecutor, PoissonArrivalsDeterministicAndMonotone) {
  const std::vector<double> a = StreamingExecutor::PoissonArrivals(50, 1e4, 7);
  const std::vector<double> b = StreamingExecutor::PoissonArrivals(50, 1e4, 7);
  ASSERT_EQ(a.size(), 50u);
  EXPECT_TRUE(SameBits(a, b));
  double previous = 0.0;
  for (double t : a) {
    EXPECT_GT(t, previous);
    previous = t;
  }
  // Closed loop: every arrival at t=0.
  const std::vector<double> closed =
      StreamingExecutor::PoissonArrivals(5, 0.0, 7);
  for (double t : closed) EXPECT_EQ(t, 0.0);
}

// Open-loop run: latencies are measured from arrival, so they must be
// finite and positive, and the span must cover the last arrival.
TEST(StreamingExecutor, OpenLoopLatenciesAndReportShape) {
  Rig rig(24);
  StreamingOptions options;
  options.window = 3;
  options.offered_load_qps = 2000.0;
  options.execution_seconds = 50e-6;
  const StreamingReport report = rig.Run("gpu", options);
  ASSERT_EQ(report.latencies_s.size(), rig.workload.size());
  for (double l : report.latencies_s) {
    EXPECT_GT(l, 0.0);
    EXPECT_LT(l, 1.0);
  }
  EXPECT_GT(report.span_s, 0.0);
  EXPECT_GT(report.total_commands, 0u);
  EXPECT_GE(report.queue_depth_high_water, 1u);
  EXPECT_GE(report.idle_gap, 0.0);
}

// The driver facade: errors come back in arrival order against truths.
TEST(StreamingExecutor, DriverRunStreamedReportsErrors) {
  Rig rig(16);
  DeviceGroupOptions group_options;
  group_options.hazard_mode = HazardMode::kStrict;
  auto group = BuildDeviceGroup("gpu", group_options).MoveValueOrDie();
  auto model = KdeSelectivityEstimator::Create(
                   KdeSelectivityEstimator::Mode::kAdaptive, group.get(),
                   &rig.table, rig.config)
                   .MoveValueOrDie();
  StreamingOptions options;
  options.window = 4;
  StreamingReport report;
  const RunStats stats = FeedbackDriver::RunStreamed(
                             model.get(), rig.queries_classic, options,
                             &report)
                             .MoveValueOrDie();
  ASSERT_EQ(stats.absolute_errors.size(), rig.workload.size());
  ASSERT_EQ(report.estimates.size(), rig.workload.size());
  for (std::size_t i = 0; i < rig.workload.size(); ++i) {
    EXPECT_DOUBLE_EQ(
        stats.absolute_errors[i],
        std::abs(report.estimates[i] - rig.queries_classic[i].selectivity));
  }
}

// Catalog-served streaming: the stream pins the model, and afterwards the
// catalog can still evict and fault it back for classic serving.
TEST(StreamingExecutor, RunCatalogStreamsThenEvictsCleanly) {
  Rig rig(18);
  DeviceGroupOptions group_options;
  group_options.hazard_mode = HazardMode::kStrict;
  auto group = BuildDeviceGroup("gpu", group_options).MoveValueOrDie();
  ModelCatalog catalog(group.get());
  ModelKey key;
  key.table = "t";
  key.columns = {"a", "b", "c"};
  ModelSpec spec;
  spec.mode = KdeSelectivityEstimator::Mode::kAdaptive;
  spec.config = rig.config;
  spec.table = &rig.table;
  ASSERT_TRUE(catalog.Register(key, std::move(spec)).ok());

  StreamingOptions options;
  options.window = 4;
  const StreamingReport report =
      StreamingExecutor::RunCatalog(&catalog, key, rig.workload, options)
          .MoveValueOrDie();
  EXPECT_EQ(report.completed, rig.workload.size());
  EXPECT_FALSE(catalog.StatsFor(key).MoveValueOrDie().pinned);

  ASSERT_TRUE(catalog.Evict(key).ok());
  const double estimate =
      catalog.Estimate(key, rig.workload[0].box).MoveValueOrDie();
  EXPECT_GE(estimate, 0.0);
  EXPECT_LE(estimate, 1.0);
}

// Regression: ticket ids are session-local. The counter used to carry
// across streaming sessions, which made it hidden persistent state — a
// snapshot-restored model (whose counter starts fresh) would hand out
// different ids than the original for the same admission schedule.
// Every EnableStreaming now restarts ids at 0.
TEST(StreamingExecutor, TicketIdsRestartEachSession) {
  Rig rig(8);
  DeviceGroupOptions group_options;
  group_options.hazard_mode = HazardMode::kStrict;
  auto group = BuildDeviceGroup("gpu", group_options).MoveValueOrDie();
  auto model = KdeSelectivityEstimator::Create(
                   KdeSelectivityEstimator::Mode::kAdaptive, group.get(),
                   &rig.table, rig.config)
                   .MoveValueOrDie();

  ASSERT_TRUE(model->EnableStreaming(2).ok());
  for (std::size_t k = 0; k < 3; ++k) {
    const StreamedQuery& q = rig.workload[k];
    const std::uint64_t ticket = model->StreamBegin(q.box);
    EXPECT_EQ(ticket, static_cast<std::uint64_t>(k));
    model->StreamDeliver(ticket);
    model->StreamFeedback(ticket, q.truth);
  }
  model->DisableStreaming();

  // A second session on the same model starts over at ticket 0 — the
  // same ids a freshly restored copy of the model would hand out.
  ASSERT_TRUE(model->EnableStreaming(2).ok());
  const std::uint64_t first = model->StreamBegin(rig.workload[3].box);
  EXPECT_EQ(first, 0u);
  model->StreamDeliver(first);
  model->StreamRetire(first);
  model->DisableStreaming();
}

}  // namespace
}  // namespace fkde
