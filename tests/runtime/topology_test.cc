// The shared device-topology vocabulary (runtime/topology.h): one
// name->profile mapping for runtime and bench, group construction from
// '+'-specs, and loud rejection of typos.

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "parallel/device_group.h"
#include "runtime/topology.h"

namespace fkde {
namespace {

TEST(Topology, IsGroupTopology) {
  EXPECT_FALSE(IsGroupTopology("cpu"));
  EXPECT_FALSE(IsGroupTopology("cpu-simd"));
  EXPECT_TRUE(IsGroupTopology("cpu+gpu"));
  EXPECT_TRUE(IsGroupTopology("gpu+gpu+gpu"));
}

TEST(Topology, ProfileByNameResolvesTheSharedVocabulary) {
  EXPECT_EQ(DeviceProfileByName("cpu").MoveValueOrDie().name,
            DeviceProfile::OpenClCpu().name);
  EXPECT_EQ(DeviceProfileByName("gpu").MoveValueOrDie().name,
            DeviceProfile::SimulatedGtx460().name);
  EXPECT_EQ(DeviceProfileByName("cpu-simd").MoveValueOrDie().name,
            DeviceProfile::SimdCpu().name);
}

TEST(Topology, ProfileByNameRejectsTyposAndGroupSpecs) {
  EXPECT_FALSE(DeviceProfileByName("tpu").ok());
  EXPECT_FALSE(DeviceProfileByName("").ok());
  // A group spec is not a profile; the error says so rather than
  // silently returning the first member.
  EXPECT_FALSE(DeviceProfileByName("cpu+gpu").ok());
}

TEST(Topology, BuildDeviceGroupSingleAndMulti) {
  auto single = BuildDeviceGroup("gpu").MoveValueOrDie();
  EXPECT_EQ(single->size(), 1u);
  EXPECT_EQ(single->device(0)->profile().name,
            DeviceProfile::SimulatedGtx460().name);

  auto multi = BuildDeviceGroup("cpu+gpu+cpu-simd").MoveValueOrDie();
  EXPECT_EQ(multi->size(), 3u);
  EXPECT_EQ(multi->device(0)->profile().name, DeviceProfile::OpenClCpu().name);
  EXPECT_EQ(multi->device(1)->profile().name,
            DeviceProfile::SimulatedGtx460().name);
  EXPECT_EQ(multi->device(2)->profile().name, DeviceProfile::SimdCpu().name);

  EXPECT_FALSE(BuildDeviceGroup("cpu+warp").ok());
}

TEST(Topology, BuildDeviceGroupForwardsOptions) {
  DeviceGroupOptions options;
  options.rebalance = false;
  options.min_shard_rows = 7;
  auto group = BuildDeviceGroup("cpu+cpu", options).MoveValueOrDie();
  EXPECT_FALSE(group->options().rebalance);
  EXPECT_EQ(group->options().min_shard_rows, 7u);
}

}  // namespace
}  // namespace fkde
