#include "kde/batch.h"

#include <memory>

#include <gtest/gtest.h>

#include "data/generators.h"

namespace fkde {
namespace {

struct BatchFixture {
  BatchFixture(std::size_t rows, std::size_t dims, std::uint64_t seed) {
    ClusterBoxesParams params;
    params.rows = rows;
    params.dims = dims;
    params.num_clusters = 8;
    params.noise_fraction = 0.05;
    table = std::make_unique<Table>(GenerateClusterBoxes(params, seed));
    device = std::make_unique<Device>(DeviceProfile::OpenClCpu());
    sample = std::make_unique<DeviceSample>(device.get(), 512, dims);
    Rng sample_rng(seed + 1);
    FKDE_CHECK_OK(sample->LoadFromTable(*table, &sample_rng));
    engine = std::make_unique<KdeEngine>(sample.get(), KernelType::kGaussian);

    WorkloadGenerator generator(*table);
    Rng workload_rng(seed + 2);
    const WorkloadSpec spec = ParseWorkloadName("dt").ValueOrDie();
    training = generator.Generate(spec, 60, &workload_rng);
    test = generator.Generate(spec, 100, &workload_rng);
  }

  std::unique_ptr<Table> table;
  std::unique_ptr<Device> device;
  std::unique_ptr<DeviceSample> sample;
  std::unique_ptr<KdeEngine> engine;
  std::vector<Query> training;
  std::vector<Query> test;
};

TEST(BatchOptimize, ReducesTrainingLoss) {
  BatchFixture f(30000, 3, 1);
  Rng rng(3);
  const BatchReport report =
      OptimizeBandwidthBatch(f.engine.get(), f.training, BatchOptions(), &rng)
          .ValueOrDie();
  EXPECT_LE(report.final_error, report.initial_error);
  EXPECT_GT(report.evaluations, 0u);
  // The installed bandwidth reproduces the reported final error.
  EXPECT_NEAR(MeanWorkloadLoss(f.engine.get(), f.training,
                               LossType::kQuadratic),
              report.final_error, 1e-12);
}

TEST(BatchOptimize, GeneralizesToTestQueries) {
  BatchFixture f(30000, 3, 2);
  const double scott_test_error = MeanWorkloadLoss(
      f.engine.get(), f.test, LossType::kQuadratic);
  Rng rng(4);
  (void)OptimizeBandwidthBatch(f.engine.get(), f.training, BatchOptions(),
                               &rng)
      .ValueOrDie();
  const double tuned_test_error = MeanWorkloadLoss(
      f.engine.get(), f.test, LossType::kQuadratic);
  // On strongly clustered data the tuned bandwidth clearly beats Scott
  // out of sample (the paper's central claim, Section 6.2).
  EXPECT_LT(tuned_test_error, scott_test_error);
}

TEST(BatchOptimize, LinearSpaceAlsoWorks) {
  BatchFixture f(20000, 2, 5);
  BatchOptions options;
  options.log_space = false;
  Rng rng(6);
  const BatchReport report =
      OptimizeBandwidthBatch(f.engine.get(), f.training, options, &rng)
          .ValueOrDie();
  EXPECT_LE(report.final_error, report.initial_error);
  for (double h : f.engine->bandwidth()) EXPECT_GT(h, 0.0);
}

TEST(BatchOptimize, HonorsAlternativeLosses) {
  for (LossType loss : {LossType::kAbsolute, LossType::kSquaredQ,
                        LossType::kSquaredRelative}) {
    BatchFixture f(15000, 2, 7);
    BatchOptions options;
    options.loss = loss;
    Rng rng(8);
    const BatchReport report =
        OptimizeBandwidthBatch(f.engine.get(), f.training, options, &rng)
            .ValueOrDie();
    EXPECT_LE(report.final_error, report.initial_error + 1e-12)
        << LossName(loss);
  }
}

TEST(BatchOptimize, EmptyTrainingSetRejected) {
  BatchFixture f(5000, 2, 9);
  Rng rng(10);
  EXPECT_FALSE(
      OptimizeBandwidthBatch(f.engine.get(), {}, BatchOptions(), &rng).ok());
}

TEST(BatchOptimize, BandwidthStaysWithinConfiguredBounds) {
  BatchFixture f(20000, 2, 11);
  const std::vector<double> start = f.engine->bandwidth();
  BatchOptions options;
  options.min_factor = 0.5;
  options.max_factor = 2.0;
  Rng rng(12);
  (void)OptimizeBandwidthBatch(f.engine.get(), f.training, options, &rng)
      .ValueOrDie();
  for (std::size_t j = 0; j < start.size(); ++j) {
    EXPECT_GE(f.engine->bandwidth()[j], start[j] * 0.5 - 1e-12);
    EXPECT_LE(f.engine->bandwidth()[j], start[j] * 2.0 + 1e-12);
  }
}

TEST(BatchOptimize, DeterministicForFixedSeed) {
  BatchFixture f1(15000, 2, 13);
  BatchFixture f2(15000, 2, 13);
  Rng rng1(14), rng2(14);
  (void)OptimizeBandwidthBatch(f1.engine.get(), f1.training, BatchOptions(),
                               &rng1)
      .ValueOrDie();
  (void)OptimizeBandwidthBatch(f2.engine.get(), f2.training, BatchOptions(),
                               &rng2)
      .ValueOrDie();
  EXPECT_EQ(f1.engine->bandwidth(), f2.engine->bandwidth());
}

TEST(MeanWorkloadLoss, AveragesOverQueries) {
  BatchFixture f(5000, 2, 15);
  const double loss = MeanWorkloadLoss(f.engine.get(), f.test,
                                       LossType::kAbsolute);
  EXPECT_GE(loss, 0.0);
  EXPECT_LE(loss, 1.0);
}

}  // namespace
}  // namespace fkde
