// Tests for the variable-KDE extension (paper Section 8).

#include "kde/variable.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "opt/optimizer.h"

namespace fkde {
namespace {

struct VariableFixture {
  /// Mixed-scale 1D data: a razor-thin cluster plus a broad background —
  /// the scenario where one global bandwidth cannot win.
  explicit VariableFixture(std::size_t sample_size = 512,
                           std::uint64_t seed = 5) {
    Rng rng(seed);
    table = std::make_unique<Table>(1);
    for (int i = 0; i < 30000; ++i) {
      const double x = rng.Bernoulli(0.5) ? rng.Gaussian(0.0, 0.01)
                                          : rng.Gaussian(0.0, 10.0);
      table->Insert(std::vector<double>{x});
    }
    device = std::make_unique<Device>(DeviceProfile::OpenClCpu());
    sample = std::make_unique<DeviceSample>(device.get(), sample_size, 1);
    Rng sample_rng(seed + 1);
    FKDE_CHECK_OK(sample->LoadFromTable(*table, &sample_rng));
    engine = std::make_unique<KdeEngine>(sample.get(), KernelType::kGaussian);
  }

  double TruthOf(const Box& box) const {
    return static_cast<double>(table->CountInBox(box)) /
           static_cast<double>(table->num_rows());
  }

  std::unique_ptr<Table> table;
  std::unique_ptr<Device> device;
  std::unique_ptr<DeviceSample> sample;
  std::unique_ptr<KdeEngine> engine;
};

TEST(VariableKde, ScalesArePositiveAndClamped) {
  VariableFixture f;
  VariableKdeOptions options;
  options.max_ratio = 4.0;
  const std::vector<double> scales =
      ComputeVariableScales(f.engine.get(), options).ValueOrDie();
  ASSERT_EQ(scales.size(), f.engine->sample_size());
  for (double s : scales) {
    EXPECT_GE(s, 0.25 - 1e-12);
    EXPECT_LE(s, 4.0 + 1e-12);
  }
}

TEST(VariableKde, DensePointsGetSmallerScales) {
  VariableFixture f;
  const std::vector<double> scales =
      ComputeVariableScales(f.engine.get()).ValueOrDie();
  // Points in the thin spike (|x| < 0.05) must smooth tighter than
  // points in the broad background (|x| > 3).
  double dense_sum = 0.0, sparse_sum = 0.0;
  std::size_t dense_count = 0, sparse_count = 0;
  for (std::size_t i = 0; i < f.engine->sample_size(); ++i) {
    const double x = f.sample->ReadRow(i)[0];
    if (std::abs(x) < 0.05) {
      dense_sum += scales[i];
      ++dense_count;
    } else if (std::abs(x) > 3.0) {
      sparse_sum += scales[i];
      ++sparse_count;
    }
  }
  ASSERT_GT(dense_count, 10u);
  ASSERT_GT(sparse_count, 10u);
  EXPECT_LT(dense_sum / dense_count, 0.6 * (sparse_sum / sparse_count));
}

TEST(VariableKde, ZeroSensitivityIsUnitScales) {
  VariableFixture f;
  VariableKdeOptions options;
  options.sensitivity = 0.0;
  const std::vector<double> scales =
      ComputeVariableScales(f.engine.get(), options).ValueOrDie();
  for (double s : scales) EXPECT_DOUBLE_EQ(s, 1.0);
}

TEST(VariableKde, EstimatorRemainsAProbabilityMeasure) {
  VariableFixture f;
  FKDE_CHECK_OK(EnableVariableKde(f.engine.get()));
  EXPECT_TRUE(f.engine->has_point_scales());
  // Total mass is 1 and sub-boxes are monotone.
  EXPECT_NEAR(f.engine->Estimate(Box({-1000.0}, {1000.0})), 1.0, 1e-6);
  const double small = f.engine->Estimate(Box({-0.1}, {0.1}));
  const double large = f.engine->Estimate(Box({-1.0}, {1.0}));
  EXPECT_GE(small, 0.0);
  EXPECT_LE(small, large + 1e-12);
}

TEST(VariableKde, ImprovesMixedScaleEstimates) {
  VariableFixture f;
  // Queries at both scales: tight boxes in the spike, broad boxes in the
  // background.
  std::vector<Box> queries;
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    const double c = rng.Gaussian(0.0, 0.01);
    queries.emplace_back(std::vector<double>{c - 0.01},
                         std::vector<double>{c + 0.01});
    const double b = rng.Gaussian(0.0, 10.0);
    queries.emplace_back(std::vector<double>{b - 2.0},
                         std::vector<double>{b + 2.0});
  }
  auto mean_error = [&] {
    double total = 0.0;
    for (const Box& box : queries) {
      total += std::abs(f.engine->Estimate(box) - f.TruthOf(box));
    }
    return total / queries.size();
  };
  const double fixed_error = mean_error();
  FKDE_CHECK_OK(EnableVariableKde(f.engine.get()));
  const double variable_error = mean_error();
  EXPECT_LT(variable_error, fixed_error);
}

TEST(VariableKde, GradientMatchesFiniteDifferenceWithScales) {
  VariableFixture f(128);
  FKDE_CHECK_OK(EnableVariableKde(f.engine.get()));
  const Box box({-0.5}, {0.5});
  Objective objective = [&](std::span<const double> h,
                            std::span<double> grad) {
    FKDE_CHECK_OK(f.engine->SetBandwidth(h));
    if (grad.empty()) return f.engine->Estimate(box);
    std::vector<double> g;
    const double est = f.engine->EstimateWithGradient(box, &g);
    std::copy(g.begin(), g.end(), grad.begin());
    return est;
  };
  const std::vector<double> h0 = f.engine->bandwidth();
  EXPECT_LT(MaxGradientError(objective, h0, 1e-5), 2e-3);
}

TEST(VariableKde, ClearRestoresFixedModel) {
  VariableFixture f;
  const Box box({-0.05}, {0.05});
  const double fixed = f.engine->Estimate(box);
  FKDE_CHECK_OK(EnableVariableKde(f.engine.get()));
  const double variable = f.engine->Estimate(box);
  EXPECT_NE(fixed, variable);
  f.engine->ClearPointScales();
  EXPECT_DOUBLE_EQ(f.engine->Estimate(box), fixed);
}

TEST(VariableKde, RejectsBadInputs) {
  VariableFixture f(64);
  VariableKdeOptions options;
  options.sensitivity = 2.0;
  EXPECT_FALSE(ComputeVariableScales(f.engine.get(), options).ok());
  options.sensitivity = 0.5;
  options.max_ratio = 0.5;
  EXPECT_FALSE(ComputeVariableScales(f.engine.get(), options).ok());
  EXPECT_FALSE(ComputeVariableScales(nullptr).ok());
  // Wrong arity / non-positive scales.
  EXPECT_FALSE(f.engine->SetPointScales(std::vector<double>{1.0}).ok());
  std::vector<double> bad(f.engine->sample_size(), 1.0);
  bad[3] = -1.0;
  EXPECT_FALSE(f.engine->SetPointScales(bad).ok());
}

}  // namespace
}  // namespace fkde
