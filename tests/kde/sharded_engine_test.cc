// Multi-device sharded execution: numerical equivalence against the
// single-device engine, the segmented-reduction sweep, self-tuning
// rebalancing, Karma across migrations, and the modeled multi-device
// speedup (paper Section 5.4 past one device's ceiling).

#include <cmath>
#include <cstddef>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/box.h"
#include "kde/engine.h"
#include "kde/karma.h"
#include "kde/sample.h"
#include "parallel/device.h"
#include "parallel/device_group.h"

namespace fkde {
namespace {

std::vector<double> RandomRows(std::size_t rows, std::size_t dims,
                               std::uint64_t seed) {
  std::vector<double> data(rows * dims);
  Rng rng(seed);
  for (double& v : data) v = rng.Uniform();
  return data;
}

Box RandomBox(std::size_t dims, Rng* rng) {
  std::vector<double> lo(dims), hi(dims);
  for (std::size_t j = 0; j < dims; ++j) {
    const double a = rng->Uniform();
    const double b = rng->Uniform();
    lo[j] = std::min(a, b);
    hi[j] = std::max(a, b);
  }
  return Box(std::move(lo), std::move(hi));
}

/// The same rows loaded into a single-device engine and a sharded one.
struct Twin {
  Twin(std::size_t rows_count, std::size_t dims, const std::string& topology,
       DeviceGroupOptions options = {}, std::uint64_t seed = 42)
      : rows(RandomRows(rows_count, dims, seed)) {
    single_device = std::make_unique<Device>(DeviceProfile::SimulatedGtx460());
    single_sample =
        std::make_unique<DeviceSample>(single_device.get(), rows_count, dims);
    FKDE_CHECK_OK(single_sample->LoadRows(rows, rows_count));
    single = std::make_unique<KdeEngine>(single_sample.get(),
                                         KernelType::kGaussian);

    group = std::make_unique<DeviceGroup>(
        ParseDeviceTopology(topology).ValueOrDie(), std::move(options));
    sharded_sample =
        std::make_unique<DeviceSample>(group.get(), rows_count, dims);
    FKDE_CHECK_OK(sharded_sample->LoadRows(rows, rows_count));
    sharded = std::make_unique<KdeEngine>(sharded_sample.get(),
                                          KernelType::kGaussian);
  }

  std::vector<double> rows;
  std::unique_ptr<Device> single_device;
  std::unique_ptr<DeviceSample> single_sample;
  std::unique_ptr<KdeEngine> single;
  std::unique_ptr<DeviceGroup> group;
  std::unique_ptr<DeviceSample> sharded_sample;
  std::unique_ptr<KdeEngine> sharded;
};

// ---------------------------------------------------------------------------
// Satellite: segmented reduction vs a scalar reference, per shard and after
// the cross-device fold, sweeping segment sizes around the group-size
// boundaries (1, sub-group, group^2 - 1, just past group^2).

TEST(ShardedReduction, SegmentSweepMatchesScalarReference) {
  for (const std::size_t s : {std::size_t{1}, std::size_t{7},
                              std::size_t{1023}, std::size_t{4097}}) {
    Device device(DeviceProfile::OpenClCpu());
    const std::size_t segments = 3;
    std::vector<double> host(segments * s);
    Rng rng(s);
    for (double& v : host) v = rng.Uniform(-1.0, 1.0);
    auto buffer = device.CreateBuffer<double>(host.size());
    device.CopyToDevice(host.data(), host.size(), &buffer);
    auto out = device.CreateBuffer<double>(segments);

    Event done = EnqueueReduceSumSegments(device.default_queue(), buffer, 0,
                                          s, segments, &out);
    done.Wait();
    std::vector<double> sums(segments);
    device.CopyToHost(out, 0, segments, sums.data());
    for (std::size_t seg = 0; seg < segments; ++seg) {
      double reference = 0.0;
      for (std::size_t i = 0; i < s; ++i) reference += host[seg * s + i];
      EXPECT_NEAR(sums[seg], reference, 1e-12 * std::max(1.0, s * 1.0))
          << "s=" << s << " segment=" << seg;
      // The blocking single-segment primitive agrees with the segmented
      // one bit-for-bit (same group tree).
      EXPECT_DOUBLE_EQ(ReduceSum(&device, buffer, seg * s, s), sums[seg]);
    }
  }
}

TEST(ShardedReduction, CrossDeviceFoldMatchesScalarReference) {
  DeviceGroup group(ParseDeviceTopology("cpu+gpu").ValueOrDie());
  for (const std::size_t s : {std::size_t{1}, std::size_t{7},
                              std::size_t{1023}, std::size_t{4097}}) {
    // Split the same logical vector across the two devices at an uneven
    // cut, reduce each shard on its own queue, fold on the host.
    std::vector<double> host(2 * s + 1);
    Rng rng(1000 + s);
    for (double& v : host) v = rng.Uniform(-1.0, 1.0);
    const std::size_t cut = s;  // Shard 0: s values, shard 1: s + 1.
    double reference = 0.0;
    for (double v : host) reference += v;

    double fold = 0.0;
    std::vector<DeviceBuffer<double>> buffers;
    std::vector<DeviceBuffer<double>> outs;
    std::vector<Event> events;
    for (std::size_t shard = 0; shard < 2; ++shard) {
      Device* device = group.device(shard);
      const std::size_t begin = shard == 0 ? 0 : cut;
      const std::size_t count = shard == 0 ? cut : host.size() - cut;
      buffers.push_back(device->CreateBuffer<double>(count));
      device->CopyToDevice(host.data() + begin, count, &buffers.back());
      outs.push_back(device->CreateBuffer<double>(1));
      events.push_back(EnqueueReduceSumSegments(
          device->default_queue(), buffers.back(), 0, count, 1,
          &outs.back()));
    }
    for (std::size_t shard = 0; shard < 2; ++shard) {
      events[shard].Wait();
      double partial = 0.0;
      group.device(shard)->CopyToHost(outs[shard], 0, 1, &partial);
      fold += partial;
    }
    EXPECT_NEAR(fold, reference, 1e-12 * std::max(1.0, s * 1.0)) << "s=" << s;
  }
}

// ---------------------------------------------------------------------------
// Numerical equivalence: every engine hot path folds to the single-device
// answer within 1e-12.

TEST(ShardedEngine, ScottBandwidthMatchesSingleDevice) {
  Twin twin(2048, 3, "cpu+gpu");
  const std::vector<double>& a = twin.single->bandwidth();
  const std::vector<double>& b = twin.sharded->bandwidth();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j) {
    EXPECT_NEAR(a[j], b[j], 1e-12 * a[j]) << "dim " << j;
  }
}

TEST(ShardedEngine, EstimateMatchesSingleDevice) {
  Twin twin(2048, 3, "cpu+gpu");
  Rng rng(7);
  for (int q = 0; q < 8; ++q) {
    const Box box = RandomBox(3, &rng);
    EXPECT_NEAR(twin.sharded->Estimate(box), twin.single->Estimate(box),
                1e-12)
        << "query " << q;
  }
}

TEST(ShardedEngine, GradientPathsMatchSingleDevice) {
  Twin twin(1536, 4, "cpu+gpu");
  Rng rng(11);
  for (int q = 0; q < 4; ++q) {
    const Box box = RandomBox(4, &rng);
    std::vector<double> g_single, g_sharded;
    const double e_single =
        twin.single->EstimateWithGradient(box, &g_single);
    const double e_sharded =
        twin.sharded->EstimateWithGradient(box, &g_sharded);
    EXPECT_NEAR(e_sharded, e_single, 1e-12);
    ASSERT_EQ(g_sharded.size(), g_single.size());
    for (std::size_t j = 0; j < g_single.size(); ++j) {
      EXPECT_NEAR(g_sharded[j], g_single[j],
                  1e-12 * std::max(1.0, std::fabs(g_single[j])));
    }

    // The asynchronous enqueue/collect pair folds to the same gradient.
    (void)twin.single->Estimate(box);
    (void)twin.sharded->Estimate(box);
    twin.single->EnqueueGradient();
    twin.sharded->EnqueueGradient();
    std::vector<double> a_single, a_sharded;
    twin.single->CollectGradient(&a_single);
    twin.sharded->CollectGradient(&a_sharded);
    for (std::size_t j = 0; j < a_single.size(); ++j) {
      EXPECT_NEAR(a_sharded[j], a_single[j],
                  1e-12 * std::max(1.0, std::fabs(a_single[j])));
    }
  }
}

TEST(ShardedEngine, BatchPathsMatchSingleDevice) {
  Twin twin(2048, 3, "cpu+gpu");
  Rng rng(13);
  std::vector<Box> boxes;
  for (int q = 0; q < 17; ++q) boxes.push_back(RandomBox(3, &rng));

  std::vector<double> est_single(boxes.size()), est_sharded(boxes.size());
  twin.single->EstimateBatch(boxes, est_single);
  twin.sharded->EstimateBatch(boxes, est_sharded);
  for (std::size_t q = 0; q < boxes.size(); ++q) {
    EXPECT_NEAR(est_sharded[q], est_single[q], 1e-12) << "query " << q;
  }

  std::vector<double> grad_single(boxes.size() * 3);
  std::vector<double> grad_sharded(boxes.size() * 3);
  twin.single->EstimateBatchWithGradient(boxes, est_single, grad_single);
  twin.sharded->EstimateBatchWithGradient(boxes, est_sharded, grad_sharded);
  for (std::size_t q = 0; q < boxes.size(); ++q) {
    EXPECT_NEAR(est_sharded[q], est_single[q], 1e-12);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(grad_sharded[q * 3 + j], grad_single[q * 3 + j],
                  1e-12 * std::max(1.0, std::fabs(grad_single[q * 3 + j])));
    }
  }
}

TEST(ShardedEngine, BatchLossMatchesSingleDevice) {
  Twin twin(2048, 3, "cpu+gpu");
  Rng rng(17);
  std::vector<Box> boxes;
  std::vector<double> truths;
  for (int q = 0; q < 9; ++q) {
    boxes.push_back(RandomBox(3, &rng));
    truths.push_back(rng.Uniform());
  }
  for (const LossType loss :
       {LossType::kQuadratic, LossType::kSquaredQ}) {
    std::vector<double> g_single, g_sharded;
    const double l_single = twin.single->EstimateBatchLoss(
        boxes, truths, loss, 1e-5, &g_single);
    const double l_sharded = twin.sharded->EstimateBatchLoss(
        boxes, truths, loss, 1e-5, &g_sharded);
    EXPECT_NEAR(l_sharded, l_single,
                1e-10 * std::max(1.0, std::fabs(l_single)));
    ASSERT_EQ(g_sharded.size(), g_single.size());
    for (std::size_t j = 0; j < g_single.size(); ++j) {
      EXPECT_NEAR(g_sharded[j], g_single[j],
                  1e-10 * std::max(1.0, std::fabs(g_single[j])));
    }
    // Loss-only path too.
    EXPECT_NEAR(twin.sharded->EstimateBatchLoss(boxes, truths, loss, 1e-5,
                                                nullptr),
                l_single, 1e-10 * std::max(1.0, std::fabs(l_single)));
  }
}

TEST(ShardedEngine, PointScalesMatchSingleDevice) {
  Twin twin(1024, 3, "cpu+gpu");
  std::vector<double> scales(1024);
  Rng rng(19);
  for (double& v : scales) v = rng.Uniform(0.5, 2.0);
  ASSERT_TRUE(twin.single->SetPointScales(scales).ok());
  ASSERT_TRUE(twin.sharded->SetPointScales(scales).ok());
  Rng qrng(23);
  for (int q = 0; q < 6; ++q) {
    const Box box = RandomBox(3, &qrng);
    EXPECT_NEAR(twin.sharded->Estimate(box), twin.single->Estimate(box),
                1e-12);
  }
}

TEST(ShardedEngine, GpuGpuTopologyAlsoMatches) {
  Twin twin(1024, 2, "gpu+gpu");
  Rng rng(29);
  for (int q = 0; q < 4; ++q) {
    const Box box = RandomBox(2, &rng);
    EXPECT_NEAR(twin.sharded->Estimate(box), twin.single->Estimate(box),
                1e-12);
  }
}

// ---------------------------------------------------------------------------
// Self-tuning rebalancer.

TEST(ShardedSample, RebalancerConvergesFromSkewedStart) {
  // Two identical devices, but a deliberately wrong 95/5 initial split.
  // The measured-throughput EWMA must pull the partition back toward the
  // modeled-throughput ratio (50/50 here) within a handful of passes.
  // The sample must be large enough that per-row compute dominates the
  // fixed per-pass launch/transfer latencies — otherwise rows/busy-second
  // cannot resolve the device's intrinsic throughput (the same reason the
  // paper's Figure 7 is latency-flat for small models).
  DeviceGroupOptions options;
  options.initial_weights = {0.95, 0.05};
  options.rebalance_interval = 2;
  options.ewma_alpha = 0.5;
  Twin twin(262144, 8, "gpu+gpu", options, /*seed=*/5);
  const std::vector<std::size_t> before = twin.sharded_sample->shard_sizes();
  EXPECT_GT(before[0], 3u * before[1]);  // Skew actually applied.

  Rng rng(31);
  std::vector<double> reference;
  std::vector<Box> boxes;
  for (int pass = 0; pass < 16; ++pass) {
    const Box box = RandomBox(8, &rng);
    boxes.push_back(box);
    reference.push_back(twin.single->Estimate(box));
    (void)twin.sharded->Estimate(box);
  }
  const std::vector<std::size_t> after = twin.sharded_sample->shard_sizes();
  const double total = static_cast<double>(after[0] + after[1]);
  // Identical devices => modeled-throughput ratio 1.0; converge within
  // 10% of the even split.
  EXPECT_NEAR(static_cast<double>(after[0]) / total, 0.5, 0.10)
      << after[0] << "/" << after[1];
  EXPECT_GT(twin.sharded_sample->rows_migrated(), 0u);
  EXPECT_GT(twin.sharded_sample->migration_epoch(), 0u);

  // Migration preserved the model: estimates still match the
  // single-device engine after rows moved between devices (tolerance
  // scaled for quarter-million-term reordered sums).
  for (std::size_t q = 0; q < 4; ++q) {
    EXPECT_NEAR(twin.sharded->Estimate(boxes[q]), reference[q], 1e-10);
  }
}

TEST(ShardedSample, ReplaceRowFollowsMigratedSlots) {
  DeviceGroupOptions options;
  options.initial_weights = {0.9, 0.1};
  options.rebalance_interval = 1;
  DeviceGroup group(ParseDeviceTopology("gpu+gpu").ValueOrDie(), options);
  DeviceSample sample(&group, 512, 2);
  FKDE_CHECK_OK(sample.LoadRows(RandomRows(512, 2, 3), 512));
  // Force a migration by reporting equal per-row throughput.
  const std::vector<std::size_t> sizes = sample.shard_sizes();
  std::vector<double> busy = {sizes[0] / 1000.0, sizes[1] / 1000.0};
  sample.ObserveShardSeconds(busy);
  ASSERT_TRUE(sample.MaybeRebalance());
  // Global slots stay addressable through the slot map.
  const std::vector<double> row = {0.25, 0.75};
  for (const std::size_t slot : {std::size_t{0}, std::size_t{300},
                                 std::size_t{511}}) {
    sample.ReplaceRow(slot, row);
    EXPECT_EQ(sample.ReadRow(slot),
              (std::vector<double>{0.25, 0.75}));
  }
}

// ---------------------------------------------------------------------------
// Karma over a sharded sample.

TEST(ShardedKarma, UpdateReturnsGlobalSlots) {
  Twin twin(1024, 2, "cpu+gpu", {}, /*seed=*/9);
  KarmaOptions options;
  options.threshold = -0.0;  // Any negative Karma flags a replacement.
  options.empty_region_shortcut = false;
  KarmaMaintainer single_k(twin.single.get(), options);
  KarmaMaintainer sharded_k(twin.sharded.get(), options);
  Rng rng(37);
  for (int q = 0; q < 6; ++q) {
    const Box box = RandomBox(2, &rng);
    const double est = twin.single->Estimate(box);
    (void)twin.sharded->Estimate(box);
    // Feed a deliberately wrong truth so Karma moves.
    const double truth = est < 0.5 ? est + 0.4 : est - 0.4;
    const std::vector<std::size_t> a = single_k.Update(box, truth);
    const std::vector<std::size_t> b = sharded_k.Update(box, truth);
    EXPECT_EQ(a, b) << "query " << q;
    for (const std::size_t slot : b) EXPECT_LT(slot, 1024u);
  }
  // Karma scores gathered back in global-slot order agree too.
  const std::vector<double> ka = single_k.ReadKarma();
  const std::vector<double> kb = sharded_k.ReadKarma();
  ASSERT_EQ(ka.size(), kb.size());
  for (std::size_t i = 0; i < ka.size(); ++i) {
    EXPECT_NEAR(kb[i], ka[i], 1e-9 * std::max(1.0, std::fabs(ka[i])));
  }
}

TEST(ShardedKarma, MigrationInFlightDiscardsThePass) {
  DeviceGroupOptions options;
  options.initial_weights = {0.9, 0.1};
  options.rebalance_interval = 1;
  Twin twin(1024, 2, "gpu+gpu", options, /*seed=*/9);
  KarmaOptions karma_options;
  karma_options.empty_region_shortcut = false;
  KarmaMaintainer karma(twin.sharded.get(), karma_options);
  Rng rng(41);
  const Box box = RandomBox(2, &rng);
  const double est = twin.sharded->Estimate(box);
  karma.EnqueueUpdate(box, est + 0.4);
  // Rows migrate while the pass is in flight: local-row Karma becomes
  // meaningless, so the collect must discard the pass and re-zero.
  DeviceSample* sample = twin.sharded_sample.get();
  const std::vector<std::size_t> sizes = sample->shard_sizes();
  sample->ObserveShardSeconds(
      std::vector<double>{sizes[0] / 1000.0, sizes[1] / 1000.0});
  ASSERT_TRUE(sample->MaybeRebalance());
  EXPECT_TRUE(karma.CollectPending().empty());
  for (const double k : karma.ReadKarma()) EXPECT_DOUBLE_EQ(k, 0.0);
}

// ---------------------------------------------------------------------------
// Modeled multi-device speedup (ISSUE acceptance): with launch latency
// amortized at 256K x 8D, two GPUs beat one by >= 1.5x and the CPU+GPU mix
// beats the best single device by >= 1.2x (its theoretical ceiling is the
// combined-throughput ratio 1.31e9/1.05e9 ~ 1.25x).

TEST(ShardedSpeedup, MultiDeviceBeatsSingleDevice) {
  const std::size_t s = 262144;
  const std::size_t d = 8;
  const std::vector<double> rows = RandomRows(s, d, 47);
  Rng rng(53);
  const Box box = RandomBox(d, &rng);

  const auto modeled_single = [&](DeviceProfile profile) {
    Device device(profile);
    DeviceSample sample(&device, s, d);
    FKDE_CHECK_OK(sample.LoadRows(rows, s));
    KdeEngine engine(&sample, KernelType::kGaussian);
    device.ResetModeledTime();
    (void)engine.Estimate(box);
    return device.ModeledSeconds();
  };
  const auto modeled_group = [&](const std::string& topology) {
    DeviceGroupOptions options;
    options.rebalance = false;  // Pure static throughput-weighted split.
    DeviceGroup group(ParseDeviceTopology(topology).ValueOrDie(),
                      std::move(options));
    DeviceSample sample(&group, s, d);
    FKDE_CHECK_OK(sample.LoadRows(rows, s));
    KdeEngine engine(&sample, KernelType::kGaussian);
    group.ResetModeledTime();
    (void)engine.Estimate(box);
    return group.MaxModeledSeconds();
  };

  const double t_gpu = modeled_single(DeviceProfile::SimulatedGtx460());
  const double t_cpu = modeled_single(DeviceProfile::OpenClCpu());
  const double best_single = std::min(t_gpu, t_cpu);

  const double t_gpu_gpu = modeled_group("gpu+gpu");
  EXPECT_GE(best_single / t_gpu_gpu, 1.5)
      << "gpu+gpu " << t_gpu_gpu << "s vs best single " << best_single;

  const double t_cpu_gpu = modeled_group("cpu+gpu");
  EXPECT_GE(best_single / t_cpu_gpu, 1.2)
      << "cpu+gpu " << t_cpu_gpu << "s vs best single " << best_single;
}

}  // namespace
}  // namespace fkde
