#include "kde/engine.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "opt/optimizer.h"

namespace fkde {
namespace {

/// Host-side reference implementation of eq. (2)/(13) for validation.
double ReferenceEstimate(const std::vector<double>& sample, std::size_t s,
                         std::size_t d, const std::vector<double>& h,
                         const Box& box, KernelType kernel) {
  double total = 0.0;
  for (std::size_t i = 0; i < s; ++i) {
    double prod = 1.0;
    for (std::size_t j = 0; j < d; ++j) {
      prod *= kernel::CdfDiff(kernel, sample[i * d + j], h[j], box.lower(j),
                              box.upper(j));
    }
    total += prod;
  }
  return total / static_cast<double>(s);
}

struct EngineFixture {
  EngineFixture(std::size_t rows, std::size_t dims, std::size_t sample_size,
                KernelType kernel, std::uint64_t seed) {
    ClusterBoxesParams params;
    params.rows = rows;
    params.dims = dims;
    table = std::make_unique<Table>(GenerateClusterBoxes(params, seed));
    device = std::make_unique<Device>(DeviceProfile::OpenClCpu());
    sample = std::make_unique<DeviceSample>(device.get(), sample_size, dims);
    Rng rng(seed + 1);
    FKDE_CHECK_OK(sample->LoadFromTable(*table, &rng));
    engine = std::make_unique<KdeEngine>(sample.get(), kernel);
    // Host copy of the sample for reference computations.
    std::vector<float> staging(sample->size() * dims);
    device->CopyToHost(sample->buffer(), 0, staging.size(), staging.data());
    host_sample.assign(staging.begin(), staging.end());
  }

  std::unique_ptr<Table> table;
  std::unique_ptr<Device> device;
  std::unique_ptr<DeviceSample> sample;
  std::unique_ptr<KdeEngine> engine;
  std::vector<double> host_sample;
};

TEST(Sample, LoadAndReadBack) {
  Device device(DeviceProfile::OpenClCpu());
  Table table(2);
  table.Insert(std::vector<double>{1.0, 2.0});
  table.Insert(std::vector<double>{3.0, 4.0});
  DeviceSample sample(&device, 2, 2);
  Rng rng(1);
  ASSERT_TRUE(sample.LoadFromTable(table, &rng).ok());
  EXPECT_EQ(sample.size(), 2u);
  // Both table rows must be present (sample == table here).
  const auto r0 = sample.ReadRow(0);
  const auto r1 = sample.ReadRow(1);
  const bool ordered = (r0[0] == 1.0 && r1[0] == 3.0);
  const bool swapped = (r0[0] == 3.0 && r1[0] == 1.0);
  EXPECT_TRUE(ordered || swapped);
}

TEST(Sample, ReplaceRowSingleTransfer) {
  Device device(DeviceProfile::OpenClCpu());
  Table table(3);
  for (int i = 0; i < 10; ++i) {
    table.Insert(std::vector<double>{1.0 * i, 2.0 * i, 3.0 * i});
  }
  DeviceSample sample(&device, 4, 3);
  Rng rng(2);
  ASSERT_TRUE(sample.LoadFromTable(table, &rng).ok());
  const auto before = device.ledger();
  sample.ReplaceRow(2, std::vector<double>{7.0, 8.0, 9.0});
  const auto after = device.ledger();
  EXPECT_EQ(after.transfers_to_device - before.transfers_to_device, 1u);
  EXPECT_EQ(after.bytes_to_device - before.bytes_to_device,
            3u * sizeof(float));
  EXPECT_EQ(sample.ReadRow(2), (std::vector<double>{7.0, 8.0, 9.0}));
}

TEST(Sample, RejectsMismatchedInputs) {
  Device device(DeviceProfile::OpenClCpu());
  Table narrow(1);
  narrow.Insert(std::vector<double>{1.0});
  DeviceSample sample(&device, 4, 2);
  Rng rng(3);
  EXPECT_FALSE(sample.LoadFromTable(narrow, &rng).ok());
  Table empty(2);
  EXPECT_FALSE(sample.LoadFromTable(empty, &rng).ok());
  EXPECT_FALSE(sample.LoadRows(std::vector<double>{1.0, 2.0, 3.0}, 2).ok());
}

TEST(Engine, ScottMatchesHostFormula) {
  EngineFixture f(20000, 3, 512, KernelType::kGaussian, 10);
  const std::vector<double> device_scott = f.engine->bandwidth();
  const std::size_t s = f.sample->size();
  for (std::size_t j = 0; j < 3; ++j) {
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t i = 0; i < s; ++i) {
      sum += f.host_sample[i * 3 + j];
      sum_sq += f.host_sample[i * 3 + j] * f.host_sample[i * 3 + j];
    }
    const double mean = sum / s;
    const double sigma = std::sqrt(std::max(sum_sq / s - mean * mean, 0.0));
    const double expected = std::pow(static_cast<double>(s), -1.0 / 7.0) *
                            sigma;
    EXPECT_NEAR(device_scott[j], expected, 1e-6 * expected) << "dim " << j;
  }
}

TEST(Engine, EstimateMatchesReference) {
  EngineFixture f(20000, 3, 512, KernelType::kGaussian, 11);
  Rng rng(12);
  for (int round = 0; round < 20; ++round) {
    std::vector<double> lo(3), hi(3);
    for (int j = 0; j < 3; ++j) {
      const double a = rng.Uniform(), b = rng.Uniform();
      lo[j] = std::min(a, b);
      hi[j] = std::max(a, b);
    }
    const Box box(lo, hi);
    const double device_est = f.engine->Estimate(box);
    const double reference =
        ReferenceEstimate(f.host_sample, f.sample->size(), 3,
                          f.engine->bandwidth(), box, KernelType::kGaussian);
    EXPECT_NEAR(device_est, reference, 1e-10);
    EXPECT_DOUBLE_EQ(f.engine->last_estimate(), device_est);
  }
}

TEST(Engine, FullDomainEstimateIsOne) {
  EngineFixture f(10000, 2, 256, KernelType::kGaussian, 13);
  // A region vastly larger than data +- many bandwidths captures all mass.
  const Box everything({-1000.0, -1000.0}, {1000.0, 1000.0});
  EXPECT_NEAR(f.engine->Estimate(everything), 1.0, 1e-9);
}

TEST(Engine, EmptyRegionFarAwayIsZero) {
  EngineFixture f(10000, 2, 256, KernelType::kGaussian, 14);
  const Box far({100.0, 100.0}, {101.0, 101.0});
  EXPECT_NEAR(f.engine->Estimate(far), 0.0, 1e-12);
}

TEST(Engine, MonotoneUnderBoxInclusion) {
  EngineFixture f(10000, 3, 256, KernelType::kGaussian, 15);
  const Box small({0.3, 0.3, 0.3}, {0.6, 0.6, 0.6});
  const Box large({0.2, 0.2, 0.2}, {0.7, 0.7, 0.7});
  EXPECT_LE(f.engine->Estimate(small), f.engine->Estimate(large) + 1e-12);
}

TEST(Engine, EstimateTracksActualSelectivity) {
  // With a decent sample and Scott bandwidth, the estimate lands in the
  // right ballpark for a mid-size region.
  EngineFixture f(50000, 2, 1024, KernelType::kGaussian, 16);
  const Box box({0.2, 0.2}, {0.6, 0.6});
  const double truth = static_cast<double>(f.table->CountInBox(box)) /
                       static_cast<double>(f.table->num_rows());
  const double estimate = f.engine->Estimate(box);
  EXPECT_NEAR(estimate, truth, 0.3 * std::max(truth, 0.05));
}

TEST(Engine, EpanechnikovEstimateMatchesReference) {
  EngineFixture f(10000, 3, 256, KernelType::kEpanechnikov, 17);
  Rng rng(18);
  for (int round = 0; round < 10; ++round) {
    std::vector<double> lo(3), hi(3);
    for (int j = 0; j < 3; ++j) {
      const double a = rng.Uniform(), b = rng.Uniform();
      lo[j] = std::min(a, b);
      hi[j] = std::max(a, b);
    }
    const Box box(lo, hi);
    EXPECT_NEAR(f.engine->Estimate(box),
                ReferenceEstimate(f.host_sample, f.sample->size(), 3,
                                  f.engine->bandwidth(), box,
                                  KernelType::kEpanechnikov),
                1e-10);
  }
}

TEST(Engine, SetBandwidthValidation) {
  EngineFixture f(1000, 2, 64, KernelType::kGaussian, 19);
  EXPECT_FALSE(f.engine->SetBandwidth(std::vector<double>{1.0}).ok());
  EXPECT_FALSE(f.engine->SetBandwidth(std::vector<double>{1.0, 0.0}).ok());
  EXPECT_FALSE(f.engine->SetBandwidth(std::vector<double>{1.0, -2.0}).ok());
  EXPECT_FALSE(
      f.engine
          ->SetBandwidth(std::vector<double>{
              1.0, std::numeric_limits<double>::infinity()})
          .ok());
  EXPECT_TRUE(f.engine->SetBandwidth(std::vector<double>{0.5, 2.0}).ok());
  EXPECT_EQ(f.engine->bandwidth(), (std::vector<double>{0.5, 2.0}));
}

// The estimator gradient (eq. 17) against finite differences — the core
// correctness requirement of the whole optimization machinery.
class EngineGradientSweep
    : public ::testing::TestWithParam<std::tuple<int, KernelType>> {};

TEST_P(EngineGradientSweep, GradientMatchesFiniteDifference) {
  const int dims = std::get<0>(GetParam());
  const KernelType kernel = std::get<1>(GetParam());
  EngineFixture f(5000, dims, 128, kernel, 20 + dims);
  Rng rng(21);
  // A few random boxes, gradient checked in h-space.
  for (int round = 0; round < 5; ++round) {
    std::vector<double> lo(dims), hi(dims);
    for (int j = 0; j < dims; ++j) {
      const double a = rng.Uniform(), b = rng.Uniform();
      lo[j] = std::min(a, b);
      hi[j] = std::max(a, b);
    }
    const Box box(lo, hi);
    const std::vector<double> h0 = f.engine->bandwidth();

    Objective objective = [&](std::span<const double> h,
                              std::span<double> grad) {
      FKDE_CHECK_OK(f.engine->SetBandwidth(h));
      if (grad.empty()) return f.engine->Estimate(box);
      std::vector<double> g;
      const double est = f.engine->EstimateWithGradient(box, &g);
      std::copy(g.begin(), g.end(), grad.begin());
      return est;
    };
    EXPECT_LT(MaxGradientError(objective, h0, 1e-5), 2e-3)
        << "dims=" << dims << " kernel=" << KernelName(kernel) << " box "
        << box.ToString();
    FKDE_CHECK_OK(f.engine->SetBandwidth(h0));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineGradientSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8),
                       ::testing::Values(KernelType::kGaussian,
                                         KernelType::kEpanechnikov)));

TEST(Engine, GradientAgreesWithEstimate) {
  // EstimateWithGradient must return the same estimate as Estimate.
  EngineFixture f(5000, 3, 128, KernelType::kGaussian, 30);
  const Box box({0.2, 0.3, 0.1}, {0.7, 0.8, 0.9});
  const double plain = f.engine->Estimate(box);
  std::vector<double> grad;
  const double with_grad = f.engine->EstimateWithGradient(box, &grad);
  EXPECT_DOUBLE_EQ(plain, with_grad);
  EXPECT_EQ(grad.size(), 3u);
}

TEST(Engine, ContributionsRetainedAndConsistent) {
  EngineFixture f(5000, 2, 128, KernelType::kGaussian, 31);
  const Box box({0.1, 0.1}, {0.5, 0.5});
  const double estimate = f.engine->Estimate(box);
  // Average of retained per-point contributions equals the estimate.
  const std::size_t s = f.sample->size();
  std::vector<double> contrib(s);
  f.device->CopyToHost(f.engine->contributions(), 0, s, contrib.data());
  double total = 0.0;
  for (double c : contrib) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-12);
    total += c;
  }
  EXPECT_NEAR(total / static_cast<double>(s), estimate, 1e-12);
}

TEST(Engine, PerQueryTrafficIsTiny) {
  // The paper's transfer-efficiency property: after construction, an
  // estimate moves only bounds down and one scalar up.
  EngineFixture f(5000, 4, 1024, KernelType::kGaussian, 32);
  const Box box({0.1, 0.1, 0.1, 0.1}, {0.5, 0.5, 0.5, 0.5});
  (void)f.engine->Estimate(box);  // Warm.
  const auto before = f.device->ledger();
  (void)f.engine->Estimate(box);
  const auto after = f.device->ledger();
  EXPECT_EQ(after.bytes_to_device - before.bytes_to_device,
            2 * 4 * sizeof(double));  // Bounds.
  EXPECT_EQ(after.bytes_to_host - before.bytes_to_host, sizeof(double));
}

}  // namespace
}  // namespace fkde
