#include "kde/scv.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "opt/optimizer.h"

namespace fkde {
namespace {

// Gaussian sample with known per-dimension scales.
std::vector<double> MakeGaussianSample(std::size_t n, std::size_t d,
                                       const std::vector<double>& sigma,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample(n * d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      sample[i * d + j] = rng.Gaussian(0.0, sigma[j]);
    }
  }
  return sample;
}

std::vector<double> ScottFor(const std::vector<double>& sample, std::size_t n,
                             std::size_t d) {
  std::vector<double> scott(d);
  for (std::size_t j = 0; j < d; ++j) {
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += sample[i * d + j];
      sum_sq += sample[i * d + j] * sample[i * d + j];
    }
    const double mean = sum / n;
    const double sigma = std::sqrt(std::max(sum_sq / n - mean * mean, 1e-12));
    scott[j] = std::pow(static_cast<double>(n),
                        -1.0 / (static_cast<double>(d) + 4.0)) *
               sigma;
  }
  return scott;
}

TEST(ScvCriterion, GradientMatchesFiniteDifference) {
  const std::size_t n = 120, d = 2;
  const std::vector<double> sample =
      MakeGaussianSample(n, d, {1.0, 2.0}, 42);
  const std::vector<double> pilot = ScottFor(sample, n, d);

  Objective objective = [&](std::span<const double> h,
                            std::span<double> grad) {
    std::vector<double> g;
    const double f = ScvCriterion(sample, n, d, h, pilot,
                                  grad.empty() ? nullptr : &g);
    if (!grad.empty()) std::copy(g.begin(), g.end(), grad.begin());
    return f;
  };
  for (const std::vector<double>& h :
       {std::vector<double>{0.3, 0.6}, {0.8, 0.4}, {0.1, 1.5}}) {
    EXPECT_LT(MaxGradientError(objective, h, 1e-6), 1e-4)
        << "h = " << h[0] << "," << h[1];
  }
}

TEST(ScvCriterion, PenalizesExtremeBandwidths) {
  const std::size_t n = 200, d = 1;
  const std::vector<double> sample = MakeGaussianSample(n, d, {1.0}, 7);
  const std::vector<double> pilot = ScottFor(sample, n, d);

  auto scv = [&](double h) {
    std::vector<double> hv = {h};
    return ScvCriterion(sample, n, d, hv, pilot, nullptr);
  };
  const double at_pilot = scv(pilot[0]);
  EXPECT_LT(at_pilot, scv(pilot[0] * 50.0));
  EXPECT_LT(at_pilot, scv(pilot[0] / 50.0));
}

TEST(ScvSelect, RecoversSensibleScaleOnGaussianData) {
  // On truly normal data the SCV optimum lands near the normal-reference
  // (Scott) bandwidth — within a factor of ~3 either way.
  const std::size_t n = 256, d = 2;
  const std::vector<double> sample =
      MakeGaussianSample(n, d, {1.0, 5.0}, 99);
  const std::vector<double> scott = ScottFor(sample, n, d);
  const std::vector<double> h =
      ScvSelectBandwidth(sample, n, d, scott).ValueOrDie();
  ASSERT_EQ(h.size(), d);
  for (std::size_t j = 0; j < d; ++j) {
    EXPECT_GT(h[j], scott[j] / 3.0) << "dim " << j;
    EXPECT_LT(h[j], scott[j] * 3.0) << "dim " << j;
  }
  // And it respects the anisotropy: dim 1 spreads 5x wider than dim 0.
  EXPECT_GT(h[1] / h[0], 2.0);
}

TEST(ScvSelect, FindsSmallerBandwidthOnBimodalData) {
  // Two well-separated modes: the normal-reference rule oversmooths
  // (sigma spans both modes); SCV should pick a clearly smaller h.
  const std::size_t n = 300, d = 1;
  Rng rng(5);
  std::vector<double> sample(n);
  for (std::size_t i = 0; i < n; ++i) {
    sample[i] = rng.Gaussian(rng.Bernoulli(0.5) ? -5.0 : 5.0, 0.3);
  }
  const std::vector<double> scott = ScottFor(sample, n, d);
  const std::vector<double> h =
      ScvSelectBandwidth(sample, n, d, scott).ValueOrDie();
  EXPECT_LT(h[0], 0.5 * scott[0]);
}

TEST(ScvSelect, RejectsBadInputs) {
  const std::vector<double> sample = {1.0, 2.0, 3.0};
  EXPECT_FALSE(ScvSelectBandwidth(sample, 2, 2, {{1.0, 1.0}}).ok());
  EXPECT_FALSE(ScvSelectBandwidth(sample, 3, 1, {{-1.0}}).ok());
  EXPECT_FALSE(ScvSelectBandwidth(sample, 3, 1, {{1.0, 2.0}}).ok());
}

}  // namespace
}  // namespace fkde
