// Property-based tests on KDE estimator invariants, swept over dimension,
// kernel, bandwidth scale and random query boxes.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "kde/engine.h"

namespace fkde {
namespace {

struct PropertyCase {
  std::size_t dims;
  KernelType kernel;
  double bandwidth_scale;  // Multiplier on Scott's rule.
};

class EngineProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  void SetUp() override {
    const PropertyCase c = GetParam();
    ClusterBoxesParams params;
    params.rows = 8000;
    params.dims = c.dims;
    table_ = std::make_unique<Table>(GenerateClusterBoxes(params, 77));
    device_ = std::make_unique<Device>(DeviceProfile::OpenClCpu());
    sample_ = std::make_unique<DeviceSample>(device_.get(), 256, c.dims);
    Rng rng(78);
    FKDE_CHECK_OK(sample_->LoadFromTable(*table_, &rng));
    engine_ = std::make_unique<KdeEngine>(sample_.get(), c.kernel);
    std::vector<double> h = engine_->bandwidth();
    for (double& v : h) v *= c.bandwidth_scale;
    FKDE_CHECK_OK(engine_->SetBandwidth(h));
  }

  Box RandomBox(Rng* rng) const {
    const std::size_t d = GetParam().dims;
    std::vector<double> lo(d), hi(d);
    for (std::size_t j = 0; j < d; ++j) {
      const double a = rng->Uniform(-0.2, 1.2);
      const double b = rng->Uniform(-0.2, 1.2);
      lo[j] = std::min(a, b);
      hi[j] = std::max(a, b);
    }
    return Box(lo, hi);
  }

  std::unique_ptr<Table> table_;
  std::unique_ptr<Device> device_;
  std::unique_ptr<DeviceSample> sample_;
  std::unique_ptr<KdeEngine> engine_;
};

TEST_P(EngineProperties, EstimatesAreProbabilities) {
  Rng rng(1);
  for (int round = 0; round < 40; ++round) {
    const double est = engine_->Estimate(RandomBox(&rng));
    ASSERT_GE(est, -1e-12);
    ASSERT_LE(est, 1.0 + 1e-12);
  }
}

TEST_P(EngineProperties, AdditiveOverDisjointSplit) {
  // p̂ is a measure: splitting a box along one dimension preserves mass.
  Rng rng(2);
  for (int round = 0; round < 20; ++round) {
    const Box whole = RandomBox(&rng);
    const std::size_t dim = rng.UniformInt(std::uint64_t{GetParam().dims});
    const double cut =
        rng.Uniform(whole.lower(dim), whole.upper(dim));
    std::vector<double> mid_hi = whole.upper_bounds();
    mid_hi[dim] = cut;
    std::vector<double> mid_lo = whole.lower_bounds();
    mid_lo[dim] = cut;
    const Box left(whole.lower_bounds(), mid_hi);
    const Box right(mid_lo, whole.upper_bounds());
    const double total = engine_->Estimate(whole);
    const double parts =
        engine_->Estimate(left) + engine_->Estimate(right);
    ASSERT_NEAR(total, parts, 1e-10) << whole.ToString();
  }
}

TEST_P(EngineProperties, MonotoneUnderGrowth) {
  Rng rng(3);
  for (int round = 0; round < 20; ++round) {
    const Box inner = RandomBox(&rng);
    const Box outer = inner.ScaledAboutCenter(1.5);
    ASSERT_LE(engine_->Estimate(inner),
              engine_->Estimate(outer) + 1e-12);
  }
}

TEST_P(EngineProperties, TranslationInvarianceOfTotalMass) {
  // A huge box anywhere containing all data + tails has mass ~1.
  const std::size_t d = GetParam().dims;
  const Box everything(std::vector<double>(d, -500.0),
                       std::vector<double>(d, 500.0));
  EXPECT_NEAR(engine_->Estimate(everything), 1.0, 1e-6);
}

TEST_P(EngineProperties, GradientIsFiniteEverywhere) {
  Rng rng(4);
  std::vector<double> gradient;
  for (int round = 0; round < 10; ++round) {
    (void)engine_->EstimateWithGradient(RandomBox(&rng), &gradient);
    for (double g : gradient) ASSERT_TRUE(std::isfinite(g));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineProperties,
    ::testing::Values(
        PropertyCase{1, KernelType::kGaussian, 1.0},
        PropertyCase{2, KernelType::kGaussian, 1.0},
        PropertyCase{3, KernelType::kGaussian, 0.1},
        PropertyCase{3, KernelType::kGaussian, 10.0},
        PropertyCase{8, KernelType::kGaussian, 1.0},
        PropertyCase{2, KernelType::kEpanechnikov, 1.0},
        PropertyCase{3, KernelType::kEpanechnikov, 0.1},
        PropertyCase{8, KernelType::kEpanechnikov, 10.0}));

TEST(EngineConsistency, ConvergesToTruthOnUniformData) {
  // On uniform data the KDE estimate of a fixed box approaches the true
  // selectivity as the sample grows (statistical consistency).
  Rng data_rng(5);
  Table table(2);
  for (int i = 0; i < 60000; ++i) {
    table.Insert(std::vector<double>{data_rng.Uniform(), data_rng.Uniform()});
  }
  const Box box({0.2, 0.3}, {0.7, 0.9});
  const double truth = static_cast<double>(table.CountInBox(box)) / 60000.0;

  Device device(DeviceProfile::OpenClCpu());
  double previous_error = 1.0;
  for (std::size_t s : {64u, 1024u, 16384u}) {
    DeviceSample sample(&device, s, 2);
    Rng rng(6);
    FKDE_CHECK_OK(sample.LoadFromTable(table, &rng));
    KdeEngine engine(&sample, KernelType::kGaussian);
    const double error = std::abs(engine.Estimate(box) - truth);
    EXPECT_LT(error, std::max(previous_error, 0.02));
    previous_error = error;
  }
  EXPECT_LT(previous_error, 0.01);
}

}  // namespace
}  // namespace fkde
