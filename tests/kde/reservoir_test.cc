#include "kde/reservoir.h"

#include <limits>

#include <gtest/gtest.h>

#include "data/table.h"

namespace fkde {
namespace {

constexpr std::size_t kRejected = std::numeric_limits<std::size_t>::max();

struct ReservoirFixture {
  ReservoirFixture(std::size_t sample_rows, std::size_t dims)
      : device(DeviceProfile::OpenClCpu()),
        sample(&device, sample_rows, dims),
        rng(1),
        maintainer(&sample, &rng) {
    // Fill the sample with marker rows.
    std::vector<double> rows(sample_rows * dims, -1.0);
    FKDE_CHECK_OK(sample.LoadRows(rows, sample_rows));
  }

  Device device;
  DeviceSample sample;
  Rng rng;
  ReservoirMaintainer maintainer;
};

TEST(Reservoir, AcceptanceRateMatchesSOverR) {
  ReservoirFixture f(100, 1);
  // Table size fixed at 1000: acceptance probability 100/1000 = 0.1.
  const std::vector<double> row = {5.0};
  const int trials = 20000;
  int accepted = 0;
  for (int i = 0; i < trials; ++i) {
    if (f.maintainer.OnInsert(row, 1000) != kRejected) ++accepted;
  }
  EXPECT_NEAR(accepted / static_cast<double>(trials), 0.1, 0.01);
  EXPECT_EQ(f.maintainer.accepted(), static_cast<std::size_t>(accepted));
  EXPECT_EQ(f.maintainer.observed(), static_cast<std::size_t>(trials));
}

TEST(Reservoir, SmallTableAlwaysAccepts) {
  ReservoirFixture f(100, 1);
  // |R| <= s: probability clamps to 1.
  for (int i = 0; i < 50; ++i) {
    EXPECT_NE(f.maintainer.OnInsert(std::vector<double>{1.0}, 50),
              kRejected);
  }
}

TEST(Reservoir, AcceptedRowLandsInSample) {
  ReservoirFixture f(10, 2);
  const std::vector<double> row = {3.5, 7.5};
  std::size_t slot = kRejected;
  while (slot == kRejected) {
    slot = f.maintainer.OnInsert(row, 20);
  }
  EXPECT_EQ(f.sample.ReadRow(slot), row);
}

TEST(Reservoir, ReplacedSlotsAreUniform) {
  ReservoirFixture f(10, 1);
  std::vector<int> hits(10, 0);
  int accepted = 0;
  while (accepted < 5000) {
    const std::size_t slot =
        f.maintainer.OnInsert(std::vector<double>{1.0}, 20);
    if (slot != kRejected) {
      ++hits[slot];
      ++accepted;
    }
  }
  for (int h : hits) {
    EXPECT_NEAR(h / 5000.0, 0.1, 0.03);
  }
}

TEST(Reservoir, AcceptanceDecaysAsTableGrows) {
  // Streaming behavior of Algorithm R: later inserts are accepted less
  // often; overall, the expected number of accepts over a growth from s
  // to N is s * (H(N) - H(s)) ~ s ln(N/s).
  ReservoirFixture f(100, 1);
  std::size_t table_size = 100;
  for (int i = 0; i < 10000; ++i) {
    ++table_size;
    (void)f.maintainer.OnInsert(std::vector<double>{1.0}, table_size);
  }
  const double expected = 100.0 * std::log(table_size / 100.0);
  EXPECT_NEAR(static_cast<double>(f.maintainer.accepted()), expected,
              0.25 * expected);
}

TEST(Reservoir, TransferOnlyOnAccept) {
  ReservoirFixture f(10, 1);
  const auto base = f.device.ledger().transfers_to_device;
  std::size_t accepts = 0;
  for (int i = 0; i < 1000; ++i) {
    if (f.maintainer.OnInsert(std::vector<double>{2.0}, 10000) != kRejected) {
      ++accepts;
    }
  }
  // Exactly one device transfer per accepted row: rejected inserts are
  // decided host-side with zero bus traffic (the paper's optimality).
  EXPECT_EQ(f.device.ledger().transfers_to_device - base, accepts);
}

}  // namespace
}  // namespace fkde
