#include "kde/kde_estimator.h"

#include <memory>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "runtime/driver.h"

namespace fkde {
namespace {

using Mode = KdeSelectivityEstimator::Mode;

struct EstimatorFixture {
  explicit EstimatorFixture(std::uint64_t seed, std::size_t dims = 3,
                            std::size_t rows = 20000) {
    ClusterBoxesParams params;
    params.rows = rows;
    params.dims = dims;
    params.num_clusters = 6;
    params.noise_fraction = 0.05;
    table = std::make_unique<Table>(GenerateClusterBoxes(params, seed));
    device = std::make_unique<Device>(DeviceProfile::OpenClCpu());
    WorkloadGenerator generator(*table);
    Rng rng(seed + 1);
    const WorkloadSpec spec = ParseWorkloadName("dt").ValueOrDie();
    training = generator.Generate(spec, 50, &rng);
    test = generator.Generate(spec, 100, &rng);
  }

  std::unique_ptr<KdeSelectivityEstimator> Build(Mode mode,
                                                 KdeConfig config = {}) {
    config.sample_size = 512;
    return KdeSelectivityEstimator::Create(mode, device.get(), table.get(),
                                           config, training)
        .MoveValueOrDie();
  }

  std::unique_ptr<Table> table;
  std::unique_ptr<Device> device;
  std::vector<Query> training;
  std::vector<Query> test;
};

TEST(KdeEstimator, NamesMatchModes) {
  EstimatorFixture f(1);
  EXPECT_EQ(f.Build(Mode::kHeuristic)->name(), "kde_heuristic");
  EXPECT_EQ(f.Build(Mode::kBatch)->name(), "kde_batch");
  EXPECT_EQ(f.Build(Mode::kAdaptive)->name(), "kde_adaptive");
  EXPECT_EQ(KdeModeName(Mode::kScv), "kde_scv");
}

TEST(KdeEstimator, EstimatesAreValidSelectivities) {
  EstimatorFixture f(2);
  auto estimator = f.Build(Mode::kHeuristic);
  for (const Query& q : f.test) {
    const double est = estimator->EstimateSelectivity(q.box);
    EXPECT_GE(est, 0.0);
    EXPECT_LE(est, 1.0);
  }
}

TEST(KdeEstimator, BatchBeatsHeuristicOnClusteredData) {
  EstimatorFixture f(3);
  auto heuristic = f.Build(Mode::kHeuristic);
  auto batch = f.Build(Mode::kBatch);
  const RunStats h = FeedbackDriver::RunPrecomputed(heuristic.get(), f.test);
  const RunStats b = FeedbackDriver::RunPrecomputed(batch.get(), f.test);
  EXPECT_LT(b.MeanAbsoluteError(), h.MeanAbsoluteError());
}

TEST(KdeEstimator, BatchReportsOptimization) {
  EstimatorFixture f(4);
  auto batch = f.Build(Mode::kBatch);
  EXPECT_LE(batch->batch_report().final_error,
            batch->batch_report().initial_error);
  EXPECT_GT(batch->batch_report().evaluations, 0u);
}

TEST(KdeEstimator, BatchRequiresTraining) {
  EstimatorFixture f(5);
  KdeConfig config;
  config.sample_size = 128;
  const auto result = KdeSelectivityEstimator::Create(
      Mode::kBatch, f.device.get(), f.table.get(), config, {});
  EXPECT_FALSE(result.ok());
}

TEST(KdeEstimator, AdaptiveImprovesWithFeedback) {
  EstimatorFixture f(6);
  auto adaptive = f.Build(Mode::kAdaptive);
  // Warm up on the training stream (estimate + feedback).
  FeedbackDriver::Train(adaptive.get(), f.training);
  FeedbackDriver::Train(adaptive.get(), f.training);
  const RunStats tuned = FeedbackDriver::RunPrecomputed(adaptive.get(),
                                                        f.test);
  auto heuristic = f.Build(Mode::kHeuristic);
  const RunStats frozen =
      FeedbackDriver::RunPrecomputed(heuristic.get(), f.test);
  EXPECT_LT(tuned.MeanAbsoluteError(), frozen.MeanAbsoluteError());
}

TEST(KdeEstimator, AdaptiveChangesBandwidthOverStream) {
  EstimatorFixture f(7);
  auto adaptive = f.Build(Mode::kAdaptive);
  const std::vector<double> initial = adaptive->bandwidth();
  FeedbackDriver::Train(adaptive.get(), f.training);
  EXPECT_NE(adaptive->bandwidth(), initial);
  for (double h : adaptive->bandwidth()) EXPECT_GT(h, 0.0);
}

TEST(KdeEstimator, NonAdaptiveModesIgnoreFeedback) {
  EstimatorFixture f(8);
  for (Mode mode : {Mode::kHeuristic, Mode::kBatch}) {
    auto estimator = f.Build(mode);
    const std::vector<double> before = estimator->bandwidth();
    FeedbackDriver::Train(estimator.get(), f.training);
    EXPECT_EQ(estimator->bandwidth(), before);
  }
}

TEST(KdeEstimator, ScvModeProducesDistinctValidBandwidth) {
  EstimatorFixture f(9);
  auto scv = f.Build(Mode::kScv);
  for (double h : scv->bandwidth()) {
    EXPECT_GT(h, 0.0);
    EXPECT_TRUE(std::isfinite(h));
  }
  const RunStats stats = FeedbackDriver::RunPrecomputed(scv.get(), f.test);
  EXPECT_LT(stats.MeanAbsoluteError(), 0.5);
}

TEST(KdeEstimator, OutOfOrderFeedbackIsHandled) {
  EstimatorFixture f(10);
  auto adaptive = f.Build(Mode::kAdaptive);
  // Feedback for a box never estimated: must not crash, must still adapt.
  for (const Query& q : f.training) {
    adaptive->ObserveTrueSelectivity(q.box, q.selectivity);
  }
  for (double h : adaptive->bandwidth()) EXPECT_GT(h, 0.0);
}

TEST(KdeEstimator, KarmaReplacesStalePointsAfterBulkDelete) {
  // Build on clustered data, delete one cluster, query its region
  // repeatedly with truth 0: the sample points of that cluster must get
  // replaced.
  EstimatorFixture f(11);
  auto adaptive = f.Build(Mode::kAdaptive);
  // Identify cluster 0's bounding box from tagged rows.
  std::vector<double> lo(3, 1e300), hi(3, -1e300);
  for (std::size_t i = 0; i < f.table->num_rows(); ++i) {
    if (f.table->Tag(i) != 0) continue;
    for (std::size_t j = 0; j < 3; ++j) {
      lo[j] = std::min(lo[j], f.table->At(i, j));
      hi[j] = std::max(hi[j], f.table->At(i, j));
    }
  }
  const Box cluster_box(lo, hi);
  f.table->DeleteByTag(0);
  adaptive->OnDelete(0, f.table->num_rows());
  for (int i = 0; i < 30; ++i) {
    (void)adaptive->EstimateSelectivity(cluster_box);
    adaptive->ObserveTrueSelectivity(cluster_box, 0.0);
  }
  EXPECT_GT(adaptive->karma_replacements(), 0u);
}

TEST(KdeEstimator, ReservoirSamplesInsertStream) {
  EstimatorFixture f(12);
  auto adaptive = f.Build(Mode::kAdaptive);
  // Insert far-away rows; eventually some enter the sample, shifting
  // estimates toward the new region.
  const Box new_region({5.0, 5.0, 5.0}, {7.0, 7.0, 7.0});
  const double before = adaptive->EstimateSelectivity(new_region);
  Rng rng(13);
  for (int i = 0; i < 3000; ++i) {
    std::vector<double> row = {rng.Uniform(5.0, 7.0), rng.Uniform(5.0, 7.0),
                               rng.Uniform(5.0, 7.0)};
    f.table->Insert(row);
    adaptive->OnInsert(row, f.table->num_rows());
  }
  const double after = adaptive->EstimateSelectivity(new_region);
  EXPECT_GT(after, before + 0.01);
}

TEST(KdeEstimator, ModelBytesTracksBudget) {
  EstimatorFixture f(14);
  KdeConfig config;
  config.sample_size = 1024;
  auto estimator =
      KdeSelectivityEstimator::Create(Mode::kHeuristic, f.device.get(),
                                      f.table.get(), config)
          .MoveValueOrDie();
  // Sample payload dominates: 1024 rows x 3 dims x 4 bytes.
  EXPECT_GE(estimator->ModelBytes(), 1024u * 3u * 4u);
  EXPECT_LE(estimator->ModelBytes(), 2u * 1024u * 3u * 4u + 16384u);
}

TEST(KdeEstimator, SampleSizeClampedToTable) {
  Table tiny(2);
  for (int i = 0; i < 10; ++i) {
    tiny.Insert(std::vector<double>{i * 1.0, i * 2.0});
  }
  Device device(DeviceProfile::OpenClCpu());
  KdeConfig config;
  config.sample_size = 1000;
  auto estimator = KdeSelectivityEstimator::Create(Mode::kHeuristic, &device,
                                                   &tiny, config)
                       .MoveValueOrDie();
  EXPECT_EQ(estimator->engine()->sample_size(), 10u);
}

TEST(KdeEstimator, RejectsInvalidConstruction) {
  EstimatorFixture f(15);
  KdeConfig config;
  EXPECT_FALSE(KdeSelectivityEstimator::Create(Mode::kHeuristic,
                                               static_cast<Device*>(nullptr),
                                               f.table.get(), config)
                   .ok());
  EXPECT_FALSE(KdeSelectivityEstimator::Create(Mode::kHeuristic,
                                               f.device.get(), nullptr,
                                               config)
                   .ok());
  Table empty(3);
  EXPECT_FALSE(KdeSelectivityEstimator::Create(Mode::kHeuristic,
                                               f.device.get(), &empty, config)
                   .ok());
  config.sample_size = 0;
  EXPECT_FALSE(KdeSelectivityEstimator::Create(Mode::kHeuristic,
                                               f.device.get(), f.table.get(),
                                               config)
                   .ok());
}

TEST(KdeEstimator, EpanechnikovKernelEndToEnd) {
  EstimatorFixture f(16);
  KdeConfig config;
  config.kernel = KernelType::kEpanechnikov;
  config.sample_size = 256;
  auto estimator =
      KdeSelectivityEstimator::Create(Mode::kAdaptive, f.device.get(),
                                      f.table.get(), config)
          .MoveValueOrDie();
  FeedbackDriver::Train(estimator.get(), f.training);
  const RunStats stats = FeedbackDriver::RunPrecomputed(estimator.get(),
                                                        f.test);
  EXPECT_LT(stats.MeanAbsoluteError(), 0.5);
}

}  // namespace
}  // namespace fkde
