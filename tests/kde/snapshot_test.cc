// Snapshot codec: golden format pin (magic/version/header bytes), corrupt
// and version-mismatch rejection, and the warm-restart property — a
// restored model is bitwise-faithful to the original over a long
// subsequent query stream, including its Karma replacement decisions.

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/box.h"
#include "data/generators.h"
#include "kde/kde_estimator.h"
#include "kde/snapshot.h"
#include "parallel/device.h"
#include "parallel/device_group.h"
#include "workload/workload.h"

namespace fkde {
namespace {

Table MakeTable(std::size_t rows = 4000, std::size_t dims = 3,
                std::uint64_t seed = 11) {
  return GenerateDataset("synthetic", rows, dims, seed).MoveValueOrDie();
}

std::vector<Query> MakeQueries(const Table& table, std::size_t count,
                               std::uint64_t seed) {
  WorkloadGenerator generator(table);
  Rng rng(seed);
  return generator.Generate(ParseWorkloadName("dt").ValueOrDie(), count,
                            &rng);
}

KdeConfig SmallConfig() {
  KdeConfig config;
  config.sample_size = 256;
  config.seed = 5;
  return config;
}

std::unique_ptr<KdeSelectivityEstimator> MakeAdaptive(Device* device,
                                                      const Table* table) {
  return KdeSelectivityEstimator::Create(
             KdeSelectivityEstimator::Mode::kAdaptive, device, table,
             SmallConfig())
      .MoveValueOrDie();
}

// ---------------------------------------------------------------------------
// Golden format pin. These bytes are the on-disk contract: if this test
// breaks, bump kModelSnapshotVersion instead of silently changing layout.

TEST(SnapshotFormat, GoldenHeaderBytes) {
  Device device(DeviceProfile::OpenClCpu());
  const Table table = MakeTable();
  auto model = MakeAdaptive(&device, &table);
  const std::vector<std::uint8_t> blob =
      SnapshotModel(model.get()).MoveValueOrDie();

  // magic "FKDM" little-endian, then version 1, then mode kAdaptive (4),
  // then dims 3.
  ASSERT_GE(blob.size(), 16u);
  const std::uint8_t golden_prefix[16] = {
      0x46, 0x4B, 0x44, 0x4D,  // magic
      0x01, 0x00, 0x00, 0x00,  // version
      0x04, 0x00, 0x00, 0x00,  // mode
      0x03, 0x00, 0x00, 0x00,  // dims
  };
  EXPECT_EQ(std::memcmp(blob.data(), golden_prefix, sizeof(golden_prefix)),
            0);

  const ModelSnapshotHeader header =
      ReadModelSnapshotHeader(blob).MoveValueOrDie();
  EXPECT_EQ(header.version, kModelSnapshotVersion);
  EXPECT_EQ(header.mode, KdeSelectivityEstimator::Mode::kAdaptive);
  EXPECT_EQ(header.dims, 3u);
  EXPECT_EQ(header.capacity, 256u);
  EXPECT_EQ(header.rows, 256u);
  EXPECT_EQ(header.shards, 1u);
}

TEST(SnapshotFormat, RejectsBadMagicVersionAndCorruption) {
  Device device(DeviceProfile::OpenClCpu());
  const Table table = MakeTable();
  auto model = MakeAdaptive(&device, &table);
  std::vector<std::uint8_t> blob =
      SnapshotModel(model.get()).MoveValueOrDie();

  std::vector<std::uint8_t> bad_magic = blob;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(ReadModelSnapshotHeader(bad_magic).ok());

  std::vector<std::uint8_t> bad_version = blob;
  bad_version[4] = 0x7F;
  EXPECT_FALSE(ReadModelSnapshotHeader(bad_version).ok());

  // Flip one payload byte: header still parses, restore must reject.
  std::vector<std::uint8_t> corrupt = blob;
  corrupt[blob.size() / 2] ^= 0x01;
  EXPECT_TRUE(ReadModelSnapshotHeader(corrupt).ok());
  Device target(DeviceProfile::OpenClCpu());
  auto restored = RestoreModel(corrupt, &target, &table);
  ASSERT_FALSE(restored.ok());
  EXPECT_TRUE(restored.status().IsInvalidArgument());

  std::vector<std::uint8_t> truncated(blob.begin(), blob.begin() + 40);
  EXPECT_FALSE(RestoreModel(truncated, &target, &table).ok());
}

// ---------------------------------------------------------------------------
// Warm-restart property: original and restored models agree bitwise on
// every subsequent estimate AND on every Karma replacement decision.

TEST(SnapshotRoundTrip, AdaptiveBitwiseFaithfulOver1kQueries) {
  const Table table = MakeTable();
  Device device(DeviceProfile::SimulatedGtx460());
  auto original = MakeAdaptive(&device, &table);

  // Adapt through a warm-up stream, then snapshot MID-FLIGHT: the last
  // estimate's gradient pass and the previous feedback's Karma pass are
  // still pending on the queue when Quiesce folds them in.
  const std::vector<Query> warmup = MakeQueries(table, 60, 23);
  for (const Query& q : warmup) {
    (void)original->EstimateSelectivity(q.box);
    original->ObserveTrueSelectivity(q.box, q.selectivity);
  }
  (void)original->EstimateSelectivity(warmup[0].box);  // Leave one pending.

  const std::vector<std::uint8_t> blob =
      SnapshotModel(original.get()).MoveValueOrDie();
  Device target(DeviceProfile::SimulatedGtx460());
  auto restored = RestoreModel(blob, &target, &table).MoveValueOrDie();

  EXPECT_EQ(restored->mode(), original->mode());
  EXPECT_EQ(restored->bandwidth(), original->bandwidth());
  EXPECT_EQ(restored->karma_replacements(), original->karma_replacements());

  const std::vector<Query> stream = MakeQueries(table, 1000, 31);
  for (const Query& q : stream) {
    const double a = original->EstimateSelectivity(q.box);
    const double b = restored->EstimateSelectivity(q.box);
    ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0)
        << "estimates diverged at " << q.box.ToString();
    original->ObserveTrueSelectivity(q.box, q.selectivity);
    restored->ObserveTrueSelectivity(q.box, q.selectivity);
    // Same Karma decisions: replacement counters advance in lock-step.
    ASSERT_EQ(restored->karma_replacements(),
              original->karma_replacements());
    ASSERT_EQ(restored->bandwidth(), original->bandwidth());
  }
  EXPECT_GT(original->karma_replacements(), 0u);
}

TEST(SnapshotRoundTrip, EstimateBatchMatchesBitwise) {
  const Table table = MakeTable();
  Device device(DeviceProfile::SimulatedGtx460());
  auto original = MakeAdaptive(&device, &table);
  const std::vector<Query> warmup = MakeQueries(table, 40, 7);
  for (const Query& q : warmup) {
    (void)original->EstimateSelectivity(q.box);
    original->ObserveTrueSelectivity(q.box, q.selectivity);
  }
  const std::vector<std::uint8_t> blob =
      SnapshotModel(original.get()).MoveValueOrDie();
  Device target(DeviceProfile::SimulatedGtx460());
  auto restored = RestoreModel(blob, &target, &table).MoveValueOrDie();

  const std::vector<Query> batch = MakeQueries(table, 64, 13);
  std::vector<Box> boxes;
  for (const Query& q : batch) boxes.push_back(q.box);
  std::vector<double> a(boxes.size()), b(boxes.size());
  original->engine()->EstimateBatch(boxes, a);
  restored->engine()->EstimateBatch(boxes, b);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0);
}

TEST(SnapshotRoundTrip, SnapshotIsNonDestructive) {
  // The original must keep serving identically after being snapshotted —
  // eviction copies state, it does not steal it.
  const Table table = MakeTable();
  Device device_a(DeviceProfile::SimulatedGtx460());
  Device device_b(DeviceProfile::SimulatedGtx460());
  auto snapshotted = MakeAdaptive(&device_a, &table);
  auto untouched = MakeAdaptive(&device_b, &table);

  const std::vector<Query> warmup = MakeQueries(table, 50, 41);
  for (const Query& q : warmup) {
    (void)snapshotted->EstimateSelectivity(q.box);
    snapshotted->ObserveTrueSelectivity(q.box, q.selectivity);
    (void)untouched->EstimateSelectivity(q.box);
    untouched->ObserveTrueSelectivity(q.box, q.selectivity);
  }
  (void)SnapshotModel(snapshotted.get()).MoveValueOrDie();

  const std::vector<Query> stream = MakeQueries(table, 200, 43);
  for (const Query& q : stream) {
    const double a = snapshotted->EstimateSelectivity(q.box);
    const double b = untouched->EstimateSelectivity(q.box);
    ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0);
    snapshotted->ObserveTrueSelectivity(q.box, q.selectivity);
    untouched->ObserveTrueSelectivity(q.box, q.selectivity);
  }
}

TEST(SnapshotRoundTrip, PeriodicModeCarriesRingAndCounters) {
  const Table table = MakeTable();
  Device device(DeviceProfile::OpenClCpu());
  KdeConfig config = SmallConfig();
  config.feedback_window = 32;
  config.reoptimize_every = 16;
  auto original = KdeSelectivityEstimator::Create(
                      KdeSelectivityEstimator::Mode::kPeriodic, &device,
                      &table, config)
                      .MoveValueOrDie();
  const std::vector<Query> warmup = MakeQueries(table, 40, 3);
  for (const Query& q : warmup) {
    (void)original->EstimateSelectivity(q.box);
    original->ObserveTrueSelectivity(q.box, q.selectivity);
  }
  EXPECT_GT(original->reoptimizations(), 0u);

  const std::vector<std::uint8_t> blob =
      SnapshotModel(original.get()).MoveValueOrDie();
  Device target(DeviceProfile::OpenClCpu());
  auto restored = RestoreModel(blob, &target, &table).MoveValueOrDie();
  EXPECT_EQ(restored->reoptimizations(), original->reoptimizations());
  EXPECT_EQ(restored->feedback_ring().size(),
            original->feedback_ring().size());
  EXPECT_EQ(restored->bandwidth(), original->bandwidth());

  // The NEXT re-optimization fires at the same point with the same
  // result: ring contents and the since-last counter both round-tripped.
  const std::vector<Query> stream = MakeQueries(table, 40, 9);
  for (const Query& q : stream) {
    const double a = original->EstimateSelectivity(q.box);
    const double b = restored->EstimateSelectivity(q.box);
    ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0);
    original->ObserveTrueSelectivity(q.box, q.selectivity);
    restored->ObserveTrueSelectivity(q.box, q.selectivity);
    ASSERT_EQ(restored->reoptimizations(), original->reoptimizations());
  }
}

TEST(SnapshotRoundTrip, GroupShardLayoutReproducedVerbatim) {
  const Table table = MakeTable(6000, 3, 19);
  DeviceGroup group(ParseDeviceTopology("cpu+gpu").MoveValueOrDie());
  KdeConfig config = SmallConfig();
  config.sample_size = 512;
  auto original = KdeSelectivityEstimator::Create(
                      KdeSelectivityEstimator::Mode::kAdaptive, &group,
                      &table, config)
                      .MoveValueOrDie();
  const std::vector<Query> warmup = MakeQueries(table, 80, 29);
  for (const Query& q : warmup) {
    (void)original->EstimateSelectivity(q.box);
    original->ObserveTrueSelectivity(q.box, q.selectivity);
  }
  const std::vector<std::uint8_t> blob =
      SnapshotModel(original.get()).MoveValueOrDie();

  // Restoring onto a mismatched shard count is refused, not re-split.
  Device single(DeviceProfile::SimulatedGtx460());
  auto wrong = RestoreModel(blob, &single, &table);
  ASSERT_FALSE(wrong.ok());
  EXPECT_TRUE(wrong.status().IsFailedPrecondition());

  DeviceGroup target(ParseDeviceTopology("cpu+gpu").MoveValueOrDie());
  auto restored = RestoreModel(blob, &target, &table).MoveValueOrDie();
  const std::vector<Query> stream = MakeQueries(table, 100, 37);
  for (const Query& q : stream) {
    const double a = original->EstimateSelectivity(q.box);
    const double b = restored->EstimateSelectivity(q.box);
    ASSERT_EQ(std::memcmp(&a, &b, sizeof(double)), 0);
    original->ObserveTrueSelectivity(q.box, q.selectivity);
    restored->ObserveTrueSelectivity(q.box, q.selectivity);
  }
}

}  // namespace
}  // namespace fkde
