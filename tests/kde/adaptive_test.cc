#include "kde/adaptive.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fkde {
namespace {

AdaptiveOptions FastOptions(bool log_updates, std::size_t mini_batch = 2) {
  AdaptiveOptions options;
  options.mini_batch = mini_batch;
  options.log_updates = log_updates;
  return options;
}

TEST(Adaptive, UpdatesOnlyWhenMiniBatchFull) {
  AdaptiveBandwidth adaptive(1, FastOptions(true, 3));
  std::vector<double> h = {1.0};
  const std::vector<double> grad = {0.5};
  EXPECT_FALSE(adaptive.Observe(grad, &h));
  EXPECT_FALSE(adaptive.Observe(grad, &h));
  EXPECT_DOUBLE_EQ(h[0], 1.0);  // Unchanged so far.
  EXPECT_TRUE(adaptive.Observe(grad, &h));
  EXPECT_NE(h[0], 1.0);
  EXPECT_EQ(adaptive.updates_applied(), 1u);
}

TEST(Adaptive, PositiveGradientShrinksBandwidth) {
  // Positive dL/dh means the loss grows with h: the step must shrink h.
  for (bool log_updates : {false, true}) {
    AdaptiveBandwidth adaptive(1, FastOptions(log_updates, 1));
    std::vector<double> h = {2.0};
    EXPECT_TRUE(adaptive.Observe(std::vector<double>{1.0}, &h));
    EXPECT_LT(h[0], 2.0) << "log=" << log_updates;
    EXPECT_GT(h[0], 0.0);
  }
}

TEST(Adaptive, NegativeGradientGrowsBandwidth) {
  for (bool log_updates : {false, true}) {
    AdaptiveBandwidth adaptive(1, FastOptions(log_updates, 1));
    std::vector<double> h = {2.0};
    EXPECT_TRUE(adaptive.Observe(std::vector<double>{-1.0}, &h));
    EXPECT_GT(h[0], 2.0) << "log=" << log_updates;
  }
}

TEST(Adaptive, LinearModePositivitySafeguard) {
  // The paper's safeguard: a step toward zero is capped at h/2.
  AdaptiveOptions options = FastOptions(false, 1);
  options.lr_initial = 50.0;  // Huge rate: unguarded step would go negative.
  AdaptiveBandwidth adaptive(1, options);
  std::vector<double> h = {1.0};
  for (int i = 0; i < 20; ++i) {
    adaptive.Observe(std::vector<double>{10.0}, &h);
    ASSERT_GT(h[0], 0.0) << "iteration " << i;
  }
  // Bounded below by (1/2)^20 but never zero or negative.
  EXPECT_GT(h[0], 0.0);
}

TEST(Adaptive, LogModeAllowsBandwidthBelowOne) {
  // Appendix D: the log parameterization must reach h < 1 (the linear
  // safeguard would only asymptote toward 0 but the log form has no
  // artificial floor at 1).
  AdaptiveBandwidth adaptive(1, FastOptions(true, 1));
  std::vector<double> h = {4.0};
  for (int i = 0; i < 200; ++i) {
    adaptive.Observe(std::vector<double>{1.0}, &h);
  }
  EXPECT_LT(h[0], 1.0);
  EXPECT_GT(h[0], 0.0);
}

TEST(Adaptive, LearningRateGrowsOnAgreement) {
  AdaptiveBandwidth adaptive(1, FastOptions(true, 1));
  std::vector<double> h = {1.0};
  adaptive.Observe(std::vector<double>{1.0}, &h);
  const double rate_after_first = adaptive.learning_rates()[0];
  adaptive.Observe(std::vector<double>{1.0}, &h);
  adaptive.Observe(std::vector<double>{1.0}, &h);
  EXPECT_GT(adaptive.learning_rates()[0], rate_after_first);
}

TEST(Adaptive, LearningRateShrinksOnSignFlip) {
  AdaptiveBandwidth adaptive(1, FastOptions(true, 1));
  std::vector<double> h = {1.0};
  adaptive.Observe(std::vector<double>{1.0}, &h);
  adaptive.Observe(std::vector<double>{1.0}, &h);
  const double grown = adaptive.learning_rates()[0];
  adaptive.Observe(std::vector<double>{-1.0}, &h);
  EXPECT_LT(adaptive.learning_rates()[0], grown);
}

TEST(Adaptive, LearningRateClampedToPaperRange) {
  AdaptiveOptions options = FastOptions(true, 1);
  AdaptiveBandwidth adaptive(1, options);
  std::vector<double> h = {1.0};
  // Hammer agreement: rate must saturate at lr_max = 50.
  for (int i = 0; i < 100; ++i) {
    adaptive.Observe(std::vector<double>{1e-3}, &h);
  }
  EXPECT_LE(adaptive.learning_rates()[0], options.lr_max);
  // Hammer disagreement: rate must floor at lr_min = 1e-6.
  double sign = 1.0;
  for (int i = 0; i < 100; ++i) {
    adaptive.Observe(std::vector<double>{sign}, &h);
    sign = -sign;
  }
  EXPECT_GE(adaptive.learning_rates()[0], options.lr_min);
}

TEST(Adaptive, MiniBatchAveragesOutliers) {
  // One huge outlier gradient inside a mini-batch of 10 moves the model
  // far less than it would alone.
  AdaptiveBandwidth small_batch(1, FastOptions(true, 1));
  AdaptiveBandwidth big_batch(1, FastOptions(true, 10));
  std::vector<double> h_small = {1.0}, h_big = {1.0};
  small_batch.Observe(std::vector<double>{100.0}, &h_small);
  for (int i = 0; i < 9; ++i) {
    big_batch.Observe(std::vector<double>{0.0}, &h_big);
  }
  big_batch.Observe(std::vector<double>{100.0}, &h_big);
  // Both updated once; the averaged one moved less.
  EXPECT_LT(std::abs(std::log(h_big[0])), std::abs(std::log(h_small[0])));
}

TEST(Adaptive, PerDimensionIndependence) {
  AdaptiveBandwidth adaptive(2, FastOptions(true, 1));
  std::vector<double> h = {1.0, 1.0};
  adaptive.Observe(std::vector<double>{1.0, -1.0}, &h);
  EXPECT_LT(h[0], 1.0);
  EXPECT_GT(h[1], 1.0);
}

TEST(Adaptive, ResetBatchDropsPartialGradients) {
  AdaptiveBandwidth adaptive(1, FastOptions(true, 2));
  std::vector<double> h = {1.0};
  adaptive.Observe(std::vector<double>{100.0}, &h);
  adaptive.ResetBatch();
  // Next observation starts a fresh batch: still no update after one.
  EXPECT_FALSE(adaptive.Observe(std::vector<double>{1.0}, &h));
  EXPECT_TRUE(adaptive.Observe(std::vector<double>{1.0}, &h));
}

TEST(Adaptive, ConvergesTowardsAKnownOptimum) {
  // Synthetic 1D problem: loss = (h - 3)^2, gradient 2(h-3). The learner
  // should settle near h = 3 from either side.
  for (double start : {0.5, 10.0}) {
    AdaptiveBandwidth adaptive(1, FastOptions(true, 5));
    std::vector<double> h = {start};
    for (int i = 0; i < 2000; ++i) {
      adaptive.Observe(std::vector<double>{2.0 * (h[0] - 3.0)}, &h);
    }
    EXPECT_NEAR(h[0], 3.0, 0.5) << "start " << start;
  }
}

TEST(AdaptiveDeath, RejectsBadConfig) {
  AdaptiveOptions options;
  options.mini_batch = 0;
  EXPECT_DEATH(AdaptiveBandwidth(1, options), "");
}

}  // namespace
}  // namespace fkde
