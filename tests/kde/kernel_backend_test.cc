// Tests for the pluggable kernel backends (kde/kernel_backend.h): the
// pinned error bounds of the float approximation stack, the simd-vs-scalar
// equivalence sweep (double path within 1e-12, float path within the
// documented tolerance, remainder-lane tails included), and the SoA-mirror
// maintenance under point replacement and shard migration.

#include "kde/kernel_backend.h"

#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/box.h"
#include "kde/engine.h"
#include "kde/sample.h"
#include "parallel/device.h"
#include "parallel/device_group.h"

namespace fkde {
namespace {

// Whether the simd request actually resolves to vector code in this
// process (AVX2 present and no FKDE_KERNEL_BACKEND=scalar override). The
// equivalence sweeps still run when it does not — the simd engine then
// falls back to scalar-over-SoA, which must also match.
bool SimdResolved() {
  return ResolveKernelBackend(KernelBackend::kSimd) == KernelBackend::kSimd;
}

TEST(FloatApprox, ErfBoundPinned) {
  // A&S 7.1.26 is bounded by 1.5e-7 in exact arithmetic; with float
  // rounding and ExpApproxF the documented contract is 1e-6 absolute.
  double worst = 0.0;
  for (int i = -60000; i <= 60000; ++i) {
    const double x = static_cast<double>(i) * 1e-4;  // [-6, 6]
    const double err = std::abs(
        static_cast<double>(kernel::ErfApproxF(static_cast<float>(x))) -
        std::erf(x));
    worst = std::max(worst, err);
  }
  EXPECT_LE(worst, 1e-6);
  // Odd extension and saturation.
  EXPECT_EQ(kernel::ErfApproxF(0.0f), 0.0f);
  EXPECT_NEAR(kernel::ErfApproxF(10.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(kernel::ErfApproxF(-10.0f), -1.0f, 1e-6f);
}

TEST(FloatApprox, ExpBoundPinned) {
  // The float argument reduction loses precision with |x| (the n * ln2
  // subtraction), so the pin tightens toward the origin. The kernel math
  // only reads exp where its value is non-negligible — ErfApproxF
  // saturates past |x| ~ 6 and the Gaussian dh factor decays as
  // exp(-z^2/2) — which is the inner range.
  double worst_near = 0.0;   // [-10, 10]
  double worst_mid = 0.0;    // [-40, 40]
  double worst_full = 0.0;   // [-80, 80]
  for (int i = -8000; i <= 8000; ++i) {
    const double x = static_cast<double>(i) * 1e-2;
    const double exact = std::exp(x);
    const double approx =
        static_cast<double>(kernel::ExpApproxF(static_cast<float>(x)));
    const double rel = std::abs(approx - exact) / exact;
    worst_full = std::max(worst_full, rel);
    if (std::abs(x) <= 40.0) worst_mid = std::max(worst_mid, rel);
    if (std::abs(x) <= 10.0) worst_near = std::max(worst_near, rel);
  }
  EXPECT_LE(worst_near, 1e-6);
  EXPECT_LE(worst_mid, 3e-6);
  EXPECT_LE(worst_full, 5e-6);
}

TEST(FloatApprox, EpanechnikovCdfExactAtSupportBoundaries) {
  // The branchless lane clamp relies on the polynomial being exact at the
  // support edge in float arithmetic: F(-1) = 0, F(1) = 1.
  EXPECT_EQ(0.25f * (2.0f + 3.0f * -1.0f - (-1.0f * -1.0f * -1.0f)), 0.0f);
  EXPECT_EQ(0.25f * (2.0f + 3.0f * 1.0f - (1.0f * 1.0f * 1.0f)), 1.0f);
  EXPECT_EQ(kernel::EpanechnikovCdfF(-1.0f), 0.0f);
  EXPECT_EQ(kernel::EpanechnikovCdfF(1.0f), 1.0f);
}

// ---------------------------------------------------------------------------
// Backend equivalence sweep.

struct EnginePair {
  std::unique_ptr<Device> device;
  std::unique_ptr<DeviceSample> sample;
  std::unique_ptr<KdeEngine> engine;
};

std::vector<double> MakeRows(std::size_t s, std::size_t d,
                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> rows(s * d);
  for (double& x : rows) x = rng.Uniform();
  return rows;
}

EnginePair MakeEngine(const DeviceProfile& profile,
                      const std::vector<double>& rows, std::size_t s,
                      std::size_t d, KernelType kernel) {
  EnginePair pair;
  pair.device = std::make_unique<Device>(profile);
  pair.sample = std::make_unique<DeviceSample>(pair.device.get(), s, d);
  FKDE_CHECK_OK(pair.sample->LoadRows(rows, s));
  pair.engine = std::make_unique<KdeEngine>(pair.sample.get(), kernel);
  return pair;
}

DeviceProfile SimdDoubleProfile() {
  DeviceProfile profile = DeviceProfile::SimdCpu();
  profile.kernel_precision = KernelPrecision::kDouble;
  return profile;
}

std::vector<Box> SweepBoxes(std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Box> boxes;
  for (std::size_t q = 0; q < 12; ++q) {
    std::vector<double> lo(d), hi(d);
    for (std::size_t j = 0; j < d; ++j) {
      const double a = rng.Uniform();
      const double b = rng.Uniform();
      lo[j] = std::min(a, b);
      hi[j] = std::max(a, b);
    }
    boxes.emplace_back(lo, hi);
  }
  return boxes;
}

// Sweeps s x d x kernel comparing the simd backend against the scalar
// reference: estimates, gradients, and the batched path. The s values are
// chosen to exercise the remainder-lane tails (1 and 7 are all-tail; 1023
// = 127*8 + 7 and 4097 = 512*8 + 1 leave partial tails).
TEST(BackendEquivalence, SimdMatchesScalarAcrossSizesAndDims) {
  for (const KernelType kernel :
       {KernelType::kGaussian, KernelType::kEpanechnikov}) {
    for (const std::size_t s : {std::size_t{1}, std::size_t{7},
                                std::size_t{1023}, std::size_t{4097}}) {
      for (const std::size_t d :
           {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
        const std::vector<double> rows = MakeRows(s, d, 17 * s + d);
        EnginePair scalar =
            MakeEngine(DeviceProfile::OpenClCpu(), rows, s, d, kernel);
        EnginePair simd_f64 =
            MakeEngine(SimdDoubleProfile(), rows, s, d, kernel);
        EnginePair simd_f32 =
            MakeEngine(DeviceProfile::SimdCpu(), rows, s, d, kernel);
        ASSERT_EQ(scalar.engine->shard_backend(0), KernelBackend::kScalar);

        // Identical samples and backend-independent moments must yield
        // identical Scott bandwidths.
        ASSERT_EQ(scalar.engine->bandwidth(), simd_f64.engine->bandwidth());
        ASSERT_EQ(scalar.engine->bandwidth(), simd_f32.engine->bandwidth());

        const std::vector<Box> boxes = SweepBoxes(d, 23 * s + d);
        std::vector<double> g_ref, g_f64, g_f32;
        for (const Box& box : boxes) {
          const double ref =
              scalar.engine->EstimateWithGradient(box, &g_ref);
          const double e64 =
              simd_f64.engine->EstimateWithGradient(box, &g_f64);
          const double e32 =
              simd_f32.engine->EstimateWithGradient(box, &g_f32);

          // Double lanes: 1e-12 relative of the scalar backend.
          EXPECT_NEAR(e64, ref, 1e-12 * std::max(1.0, std::abs(ref)));
          for (std::size_t j = 0; j < d; ++j) {
            EXPECT_NEAR(g_f64[j], g_ref[j],
                        1e-12 * std::max(1.0, std::abs(g_ref[j])));
          }

          // Float lanes: the documented absolute estimate bound, and an
          // atol+rtol form for the gradient (its scale carries 1/h^2).
          EXPECT_NEAR(e32, ref, kb::FloatPathEstimateTolerance(d));
          for (std::size_t j = 0; j < d; ++j) {
            const double h = scalar.engine->bandwidth()[j];
            const double tol =
                1e-4 * std::max(1.0, std::abs(g_ref[j])) + 2e-5 / h;
            EXPECT_NEAR(g_f32[j], g_ref[j], tol)
                << "kernel=" << static_cast<int>(kernel) << " s=" << s
                << " d=" << d << " j=" << j;
          }
        }

        // Batched path, all queries in one pass.
        std::vector<double> batch_ref(boxes.size());
        std::vector<double> batch_f64(boxes.size());
        std::vector<double> batch_f32(boxes.size());
        scalar.engine->EstimateBatch(boxes, batch_ref);
        simd_f64.engine->EstimateBatch(boxes, batch_f64);
        simd_f32.engine->EstimateBatch(boxes, batch_f32);
        for (std::size_t q = 0; q < boxes.size(); ++q) {
          EXPECT_NEAR(batch_f64[q], batch_ref[q],
                      1e-12 * std::max(1.0, std::abs(batch_ref[q])));
          EXPECT_NEAR(batch_f32[q], batch_ref[q],
                      kb::FloatPathEstimateTolerance(d));
        }
      }
    }
  }
}

// The variable-KDE point scales defeat the per-query hoist; both backends
// must still agree.
TEST(BackendEquivalence, SimdMatchesScalarWithPointScales) {
  const std::size_t s = 1023;
  const std::size_t d = 3;
  const std::vector<double> rows = MakeRows(s, d, 99);
  for (const KernelType kernel :
       {KernelType::kGaussian, KernelType::kEpanechnikov}) {
    EnginePair scalar =
        MakeEngine(DeviceProfile::OpenClCpu(), rows, s, d, kernel);
    EnginePair simd_f64 = MakeEngine(SimdDoubleProfile(), rows, s, d, kernel);
    EnginePair simd_f32 =
        MakeEngine(DeviceProfile::SimdCpu(), rows, s, d, kernel);
    Rng rng(7);
    std::vector<double> scales(s);
    for (double& x : scales) x = 0.5 + rng.Uniform();
    FKDE_CHECK_OK(scalar.engine->SetPointScales(scales));
    FKDE_CHECK_OK(simd_f64.engine->SetPointScales(scales));
    FKDE_CHECK_OK(simd_f32.engine->SetPointScales(scales));
    for (const Box& box : SweepBoxes(d, 31)) {
      const double ref = scalar.engine->Estimate(box);
      EXPECT_NEAR(simd_f64.engine->Estimate(box), ref,
                  1e-12 * std::max(1.0, std::abs(ref)));
      EXPECT_NEAR(simd_f32.engine->Estimate(box), ref,
                  kb::FloatPathEstimateTolerance(d));
    }
  }
}

// ---------------------------------------------------------------------------
// SoA-mirror maintenance.

TEST(SoaMirror, ReplaceRowKeepsStripsCurrent) {
  const std::size_t s = 513;  // Odd size: remainder tail in every lane op.
  const std::size_t d = 3;
  std::vector<double> rows = MakeRows(s, d, 5);
  EnginePair simd = MakeEngine(SimdDoubleProfile(), rows, s, d,
                               KernelType::kGaussian);
  if (!SimdResolved()) {
    GTEST_SKIP() << "simd backend resolves to scalar here; no mirror";
  }
  ASSERT_TRUE(simd.sample->soa_enabled(0));
  const Box box(std::vector<double>(d, 0.2), std::vector<double>(d, 0.8));
  (void)simd.engine->Estimate(box);

  // Replace a scatter of rows (the Karma/reservoir path), then compare
  // against a scalar engine built over the post-replacement rows.
  Rng rng(11);
  for (const std::size_t slot : {std::size_t{0}, std::size_t{8},
                                 std::size_t{511}, std::size_t{512}}) {
    std::vector<double> row(d);
    for (double& x : row) x = rng.Uniform();
    for (std::size_t j = 0; j < d; ++j) rows[slot * d + j] = row[j];
    simd.sample->ReplaceRow(slot, row);
  }
  EnginePair scalar =
      MakeEngine(DeviceProfile::OpenClCpu(), rows, s, d,
                 KernelType::kGaussian);
  FKDE_CHECK_OK(scalar.engine->SetBandwidth(simd.engine->bandwidth()));
  const double ref = scalar.engine->Estimate(box);
  EXPECT_NEAR(simd.engine->Estimate(box), ref,
              1e-12 * std::max(1.0, std::abs(ref)));
}

TEST(SoaMirror, MigrationMarksReceiverTailDirty) {
  // Two simd (double) shards; skewed busy observations force a migration,
  // after which the receiver's appended strips must be repacked before
  // the next pass.
  const std::size_t s = 1024;
  const std::size_t d = 3;
  const std::vector<double> rows = MakeRows(s, d, 13);
  DeviceGroupOptions options;
  options.rebalance_interval = 1;
  DeviceGroup group({SimdDoubleProfile(), SimdDoubleProfile()},
                    std::move(options));
  DeviceSample sample(&group, s, d);
  FKDE_CHECK_OK(sample.LoadRows(rows, s));
  KdeEngine engine(&sample, KernelType::kGaussian);

  Device scalar_device{DeviceProfile::OpenClCpu()};
  DeviceSample scalar_sample(&scalar_device, s, d);
  FKDE_CHECK_OK(scalar_sample.LoadRows(rows, s));
  KdeEngine scalar_engine(&scalar_sample, KernelType::kGaussian);
  FKDE_CHECK_OK(engine.SetBandwidth(scalar_engine.bandwidth()));

  const Box box(std::vector<double>(d, 0.2), std::vector<double>(d, 0.8));
  const double ref = scalar_engine.Estimate(box);
  EXPECT_NEAR(engine.Estimate(box), ref,
              1e-12 * std::max(1.0, std::abs(ref)));

  // Pretend shard 0 is 4x slower than shard 1 until rows migrate.
  const std::uint64_t epoch = sample.migration_epoch();
  for (int pass = 0; pass < 64 && sample.migration_epoch() == epoch;
       ++pass) {
    const double sizes[] = {static_cast<double>(sample.shard_size(0)),
                            static_cast<double>(sample.shard_size(1))};
    const double busy[] = {sizes[0] * 4e-6, sizes[1] * 1e-6};
    sample.ObserveShardSeconds(busy);
    sample.MaybeRebalance();
  }
  ASSERT_GT(sample.migration_epoch(), epoch) << "no migration triggered";
  ASSERT_GT(sample.rows_migrated(), 0u);
  EXPECT_NEAR(engine.Estimate(box), ref,
              1e-12 * std::max(1.0, std::abs(ref)));
}

// ---------------------------------------------------------------------------
// Resolution, profiles, calibration.

TEST(BackendResolution, ParseAndNames) {
  EXPECT_EQ(ParseKernelBackendName("scalar").ValueOrDie(),
            KernelBackend::kScalar);
  EXPECT_EQ(ParseKernelBackendName("SIMD").ValueOrDie(),
            KernelBackend::kSimd);
  EXPECT_FALSE(ParseKernelBackendName("avx9000").ok());
  EXPECT_EQ(ParseKernelPrecisionName("float").ValueOrDie(),
            KernelPrecision::kFloat);
  EXPECT_EQ(ParseKernelPrecisionName("f64").ValueOrDie(),
            KernelPrecision::kDouble);
  EXPECT_STREQ(KernelBackendName(KernelBackend::kSimd), "simd");
  EXPECT_STREQ(KernelPrecisionName(KernelPrecision::kFloat), "float");
}

TEST(BackendResolution, EnvOverrideForcesScalar) {
  // The CI matrix runs this binary once plainly and once with
  // FKDE_KERNEL_BACKEND=scalar; under the override every simd request
  // must resolve to scalar (and the sweeps above then pin that the
  // fallback still matches the reference).
  const char* env = std::getenv("FKDE_KERNEL_BACKEND");
  if (env != nullptr && std::string(env) == "scalar") {
    EXPECT_EQ(ResolveKernelBackend(KernelBackend::kSimd),
              KernelBackend::kScalar);
    EnginePair simd = MakeEngine(DeviceProfile::SimdCpu(),
                                 MakeRows(64, 2, 3), 64, 2,
                                 KernelType::kGaussian);
    EXPECT_EQ(simd.engine->shard_backend(0), KernelBackend::kScalar);
  } else if (CpuSupportsSimd()) {
    EXPECT_EQ(ResolveKernelBackend(KernelBackend::kSimd),
              KernelBackend::kSimd);
  }
}

TEST(BackendResolution, ScalarProfileNeverTouchesSoa) {
  // The default profiles keep the seed's behavior: no SoA mirror, no
  // extra launches (the ledger pins elsewhere depend on this).
  EnginePair scalar = MakeEngine(DeviceProfile::OpenClCpu(),
                                 MakeRows(128, 2, 3), 128, 2,
                                 KernelType::kGaussian);
  EXPECT_EQ(scalar.engine->shard_backend(0), KernelBackend::kScalar);
  EXPECT_FALSE(scalar.sample->soa_enabled(0));
}

TEST(Calibration, InstallsRatioIntoSimdCpuProfile) {
  const kb::BackendCalibration& cal = kb::CalibrateKernelBackends();
  EXPECT_GT(cal.scalar_ops_per_sec, 0.0);
  EXPECT_GT(cal.simd_ops_per_sec, 0.0);
  if (!SimdResolved()) {
    EXPECT_EQ(cal.ratio, 1.0);
    return;
  }
  EXPECT_GT(cal.ratio, 1.0);
  EXPECT_EQ(SimdThroughputRatio(), cal.ratio);
  // Profiles built after calibration model the measured CPU.
  const DeviceProfile cpu = DeviceProfile::OpenClCpu();
  const DeviceProfile simd = DeviceProfile::SimdCpu();
  EXPECT_NEAR(simd.compute_throughput, cpu.compute_throughput * cal.ratio,
              1e-9 * simd.compute_throughput);
}

}  // namespace
}  // namespace fkde
