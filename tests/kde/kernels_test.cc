#include "kde/kernels.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fkde {
namespace {

TEST(KernelParse, KnownNames) {
  EXPECT_EQ(ParseKernelName("gaussian").ValueOrDie(), KernelType::kGaussian);
  EXPECT_EQ(ParseKernelName("Gauss").ValueOrDie(), KernelType::kGaussian);
  EXPECT_EQ(ParseKernelName("EPANECHNIKOV").ValueOrDie(),
            KernelType::kEpanechnikov);
  EXPECT_EQ(ParseKernelName("epa").ValueOrDie(), KernelType::kEpanechnikov);
}

TEST(KernelParse, UnknownNameFails) {
  EXPECT_FALSE(ParseKernelName("triangle").ok());
  EXPECT_FALSE(ParseKernelName("").ok());
}

TEST(KernelParse, NamesRoundTrip) {
  for (KernelType type :
       {KernelType::kGaussian, KernelType::kEpanechnikov}) {
    EXPECT_EQ(ParseKernelName(KernelName(type)).ValueOrDie(), type);
  }
}

// ---------------------------------------------------------------------------
// CDF-difference properties, parameterized over kernel, center, bandwidth.
// ---------------------------------------------------------------------------

struct KernelCase {
  KernelType type;
  double t;  // Kernel center (sample value).
  double h;  // Bandwidth.
};

class CdfDiffProperty : public ::testing::TestWithParam<KernelCase> {};

TEST_P(CdfDiffProperty, MassIsAProbability) {
  const KernelCase c = GetParam();
  for (double lo : {-5.0, -1.0, 0.0, 0.7}) {
    for (double width : {0.0, 0.1, 1.0, 10.0}) {
      const double mass = kernel::CdfDiff(c.type, c.t, c.h, lo, lo + width);
      EXPECT_GE(mass, 0.0);
      EXPECT_LE(mass, 1.0 + 1e-12);
    }
  }
}

TEST_P(CdfDiffProperty, FullLineHasUnitMass) {
  const KernelCase c = GetParam();
  const double span = c.type == KernelType::kGaussian ? 50.0 * c.h : 2.0 * c.h;
  const double mass =
      kernel::CdfDiff(c.type, c.t, c.h, c.t - span, c.t + span);
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST_P(CdfDiffProperty, EmptyIntervalHasZeroMass) {
  const KernelCase c = GetParam();
  EXPECT_DOUBLE_EQ(kernel::CdfDiff(c.type, c.t, c.h, 1.5, 1.5), 0.0);
}

TEST_P(CdfDiffProperty, MonotoneInUpperBound) {
  const KernelCase c = GetParam();
  double previous = 0.0;
  for (double u = c.t - 3.0 * c.h; u <= c.t + 3.0 * c.h; u += 0.1 * c.h) {
    const double mass =
        kernel::CdfDiff(c.type, c.t, c.h, c.t - 3.0 * c.h, u);
    EXPECT_GE(mass, previous - 1e-12);
    previous = mass;
  }
}

TEST_P(CdfDiffProperty, SymmetricAroundCenter) {
  const KernelCase c = GetParam();
  const double left = kernel::CdfDiff(c.type, c.t, c.h, c.t - 2.0 * c.h, c.t);
  const double right = kernel::CdfDiff(c.type, c.t, c.h, c.t, c.t + 2.0 * c.h);
  EXPECT_NEAR(left, right, 1e-12);
}

TEST_P(CdfDiffProperty, AdditiveOverAdjacentIntervals) {
  const KernelCase c = GetParam();
  const double a = c.t - 1.3 * c.h;
  const double m = c.t + 0.2 * c.h;
  const double b = c.t + 2.1 * c.h;
  const double whole = kernel::CdfDiff(c.type, c.t, c.h, a, b);
  const double parts = kernel::CdfDiff(c.type, c.t, c.h, a, m) +
                       kernel::CdfDiff(c.type, c.t, c.h, m, b);
  EXPECT_NEAR(whole, parts, 1e-12);
}

TEST_P(CdfDiffProperty, DerivativeMatchesFiniteDifference) {
  const KernelCase c = GetParam();
  // Avoid kink points of the Epanechnikov support boundary by testing
  // generic interval positions.
  for (double lo : {c.t - 1.7 * c.h, c.t - 0.45 * c.h, c.t + 0.3 * c.h}) {
    for (double width : {0.37 * c.h, 1.1 * c.h}) {
      const double hi = lo + width;
      const double analytic = kernel::CdfDiffDh(c.type, c.t, c.h, lo, hi);
      const double eps = 1e-6 * c.h;
      const double numeric =
          (kernel::CdfDiff(c.type, c.t, c.h + eps, lo, hi) -
           kernel::CdfDiff(c.type, c.t, c.h - eps, lo, hi)) /
          (2.0 * eps);
      EXPECT_NEAR(analytic, numeric,
                  1e-5 * std::max(1.0, std::abs(numeric)))
          << "kernel=" << KernelName(c.type) << " lo=" << lo << " hi=" << hi;
    }
  }
}

TEST_P(CdfDiffProperty, WiderBandwidthSpreadsMassOutward) {
  const KernelCase c = GetParam();
  // Mass in a small interval right at the center decreases as h grows.
  const double narrow =
      kernel::CdfDiff(c.type, c.t, c.h, c.t - 0.1 * c.h, c.t + 0.1 * c.h);
  const double wide = kernel::CdfDiff(c.type, c.t, 3.0 * c.h,
                                      c.t - 0.1 * c.h, c.t + 0.1 * c.h);
  EXPECT_GT(narrow, wide);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, CdfDiffProperty,
    ::testing::Values(KernelCase{KernelType::kGaussian, 0.0, 1.0},
                      KernelCase{KernelType::kGaussian, 2.5, 0.2},
                      KernelCase{KernelType::kGaussian, -7.0, 5.0},
                      KernelCase{KernelType::kGaussian, 100.0, 0.01},
                      KernelCase{KernelType::kEpanechnikov, 0.0, 1.0},
                      KernelCase{KernelType::kEpanechnikov, 2.5, 0.2},
                      KernelCase{KernelType::kEpanechnikov, -7.0, 5.0},
                      KernelCase{KernelType::kEpanechnikov, 100.0, 0.01}));

TEST(EpanechnikovCdf, KnownValues) {
  EXPECT_DOUBLE_EQ(kernel::EpanechnikovCdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(kernel::EpanechnikovCdf(1.0), 1.0);
  EXPECT_DOUBLE_EQ(kernel::EpanechnikovCdf(0.0), 0.5);
  EXPECT_DOUBLE_EQ(kernel::EpanechnikovCdf(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(kernel::EpanechnikovCdf(5.0), 1.0);
}

TEST(GaussianCdfDiff, MatchesNormalQuantiles) {
  // One standard deviation around the mean holds ~68.27% of the mass.
  EXPECT_NEAR(kernel::GaussianCdfDiff(0.0, 1.0, -1.0, 1.0), 0.6826894921,
              1e-9);
  // Two standard deviations: ~95.45%.
  EXPECT_NEAR(kernel::GaussianCdfDiff(0.0, 1.0, -2.0, 2.0), 0.9544997361,
              1e-9);
}

TEST(GaussianCdfDiffDh, ZeroForCenteredSymmetricIntervalExtremes) {
  // For a huge interval the mass is ~1 regardless of h: derivative ~0.
  EXPECT_NEAR(kernel::GaussianCdfDiffDh(0.0, 1.0, -100.0, 100.0), 0.0, 1e-12);
}

TEST(HoistedFactors, BitwiseEqualToUnhoistedForms) {
  // The kernel backends hoist the per-(query, dim) reciprocals once per
  // descriptor; this must be a pure refactor — the hoisted forms compute
  // the same expressions in the same order, so results are bitwise equal,
  // which is what keeps the scalar backend's ledger pins intact.
  Rng rng(29);
  for (const KernelType type :
       {KernelType::kGaussian, KernelType::kEpanechnikov}) {
    for (int i = 0; i < 2000; ++i) {
      const double t = rng.Uniform(-2.0, 2.0);
      const double h = rng.Uniform(0.01, 1.5);
      const double a = rng.Uniform(-2.0, 2.0);
      const double b = rng.Uniform(-2.0, 2.0);
      const double l = std::min(a, b);
      const double u = std::max(a, b);
      const kernel::HoistedFactors f = kernel::HoistFactors(type, h);
      EXPECT_EQ(kernel::CdfDiffHoisted(type, t, f.inv_cdf, l, u),
                kernel::CdfDiff(type, t, h, l, u));
      EXPECT_EQ(kernel::CdfDiffDhHoisted(type, t, f.inv_dh, l, u),
                kernel::CdfDiffDh(type, t, h, l, u));
    }
  }
}

}  // namespace
}  // namespace fkde
