// Discrete-attribute behavior (paper Section 8, "Support for Discrete and
// String Data"): the paper argues its estimator already copes with
// discrete attributes to a degree, because the bandwidth optimization
// learns not to smooth across category boundaries — the optimized
// bandwidth on a discrete column shrinks far below Scott's rule,
// effectively degrading to counting matching tuples.

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "kde/batch.h"
#include "kde/engine.h"
#include "workload/workload.h"

namespace fkde {
namespace {

/// Mixed table: column 0 continuous (uniform), column 1 discrete with
/// categories {0, 5, 10} whose frequencies depend on the category.
Table MixedTable(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  Table table(2);
  const double categories[] = {0.0, 5.0, 10.0};
  const std::vector<double> weights = {0.6, 0.3, 0.1};
  for (std::size_t i = 0; i < rows; ++i) {
    table.Insert(std::vector<double>{rng.Uniform(),
                                     categories[rng.Categorical(weights)]});
  }
  return table;
}

struct DiscreteFixture {
  DiscreteFixture() {
    table = std::make_unique<Table>(MixedTable(40000, 1));
    device = std::make_unique<Device>(DeviceProfile::OpenClCpu());
    sample = std::make_unique<DeviceSample>(device.get(), 1024, 2);
    Rng rng(2);
    FKDE_CHECK_OK(sample->LoadFromTable(*table, &rng));
    engine = std::make_unique<KdeEngine>(sample.get(), KernelType::kGaussian);
  }

  /// Query: continuous range x category-point predicate.
  Query CategoryQuery(double lo_x, double hi_x, double category) const {
    Query query;
    query.box = Box({lo_x, category - 0.5}, {hi_x, category + 0.5});
    query.selectivity =
        static_cast<double>(table->CountInBox(query.box)) /
        static_cast<double>(table->num_rows());
    return query;
  }

  std::unique_ptr<Table> table;
  std::unique_ptr<Device> device;
  std::unique_ptr<DeviceSample> sample;
  std::unique_ptr<KdeEngine> engine;
};

TEST(Discrete, ScottOversmoothsAcrossCategories) {
  DiscreteFixture f;
  // Scott's sigma on the category column spans the {0,5,10} spread, so
  // probability mass leaks between categories and the per-category
  // estimates are badly wrong (the rare category loses most of its mass
  // to the space between categories).
  const Query rare = f.CategoryQuery(0.0, 1.0, 10.0);
  const double estimate = f.engine->Estimate(rare.box);
  EXPECT_GT(std::abs(estimate - rare.selectivity), 0.3 * rare.selectivity);
}

TEST(Discrete, OptimizationShrinksDiscreteBandwidth) {
  DiscreteFixture f;
  Rng rng(3);
  // Training workload of category-point queries at varying x ranges.
  std::vector<Query> training;
  const double categories[] = {0.0, 5.0, 10.0};
  for (int i = 0; i < 90; ++i) {
    const double a = rng.Uniform(), b = rng.Uniform();
    training.push_back(f.CategoryQuery(std::min(a, b), std::max(a, b),
                                       categories[i % 3]));
  }
  const std::vector<double> scott = f.engine->bandwidth();
  BatchOptions options;
  (void)OptimizeBandwidthBatch(f.engine.get(), training, options, &rng)
      .ValueOrDie();
  const std::vector<double> tuned = f.engine->bandwidth();

  // Paper's claim: the discrete dimension's bandwidth collapses (the
  // optimizer learns not to smooth across categories)...
  EXPECT_LT(tuned[1], 0.25 * scott[1]);
  // ...while the continuous dimension stays at a sane smoothing scale.
  EXPECT_GT(tuned[0], 0.05 * scott[0]);

  // And accuracy on held-out category queries improves.
  std::vector<Query> test;
  for (int i = 0; i < 60; ++i) {
    const double a = rng.Uniform(), b = rng.Uniform();
    test.push_back(f.CategoryQuery(std::min(a, b), std::max(a, b),
                                   categories[i % 3]));
  }
  auto mean_error = [&](const std::vector<double>& h) {
    FKDE_CHECK_OK(f.engine->SetBandwidth(h));
    double total = 0.0;
    for (const Query& q : test) {
      total += std::abs(f.engine->Estimate(q.box) - q.selectivity);
    }
    return total / test.size();
  };
  EXPECT_LT(mean_error(tuned), mean_error(scott));
}

TEST(Discrete, TinyBandwidthCountsMatchingTuples) {
  DiscreteFixture f;
  // With a near-zero bandwidth on the category column, the estimator
  // degenerates to counting sample tuples in the category — the behavior
  // the paper describes.
  std::vector<double> h = f.engine->bandwidth();
  h[1] = 1e-3;
  FKDE_CHECK_OK(f.engine->SetBandwidth(h));
  // The x range extends past the data so the continuous kernel loses no
  // boundary mass and the category dimension is isolated.
  for (double category : {0.0, 5.0, 10.0}) {
    const Query q = f.CategoryQuery(-0.5, 1.5, category);
    // Sample-counting accuracy: within sampling noise of the truth.
    EXPECT_NEAR(f.engine->Estimate(q.box), q.selectivity, 0.05)
        << "category " << category;
  }
}

}  // namespace
}  // namespace fkde
