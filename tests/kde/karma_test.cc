#include "kde/karma.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"

namespace fkde {
namespace {

/// Builds a small engine over an explicit sample (rows of `dims` doubles).
struct KarmaFixture {
  KarmaFixture(std::vector<double> rows, std::size_t dims,
               std::vector<double> bandwidth,
               KarmaOptions options = KarmaOptions()) {
    const std::size_t s = rows.size() / dims;
    device = std::make_unique<Device>(DeviceProfile::OpenClCpu());
    sample = std::make_unique<DeviceSample>(device.get(), s, dims);
    FKDE_CHECK_OK(sample->LoadRows(rows, s));
    engine = std::make_unique<KdeEngine>(sample.get(), KernelType::kGaussian);
    FKDE_CHECK_OK(engine->SetBandwidth(bandwidth));
    karma = std::make_unique<KarmaMaintainer>(engine.get(), options);
  }

  std::unique_ptr<Device> device;
  std::unique_ptr<DeviceSample> sample;
  std::unique_ptr<KdeEngine> engine;
  std::unique_ptr<KarmaMaintainer> karma;
};

TEST(Karma, StartsAtZero) {
  KarmaFixture f({0.0, 1.0, 2.0, 3.0}, 1, {0.1});
  for (double k : f.karma->ReadKarma()) EXPECT_DOUBLE_EQ(k, 0.0);
}

TEST(Karma, HelpfulPointsGainHurtfulPointsLose) {
  // Sample: three points at 0.5 (inside the query), one stale point at
  // 10 (outside). Query [0,1] with true selectivity 1.0: the inside
  // points help (removing one lowers the estimate -> larger error), the
  // outside point hurts (removing it raises the estimate toward truth).
  KarmaFixture f({0.5, 0.5, 0.5, 10.0}, 1, {0.05});
  const Box query({0.0}, {1.0});
  (void)f.engine->Estimate(query);
  (void)f.karma->Update(query, 1.0);
  const std::vector<double> karma = f.karma->ReadKarma();
  EXPECT_GT(karma[0], 0.0);
  EXPECT_GT(karma[1], 0.0);
  EXPECT_GT(karma[2], 0.0);
  EXPECT_LT(karma[3], 0.0);
}

TEST(Karma, CumulativeKarmaSaturatesAtKMax) {
  KarmaOptions options;
  options.k_max = 0.02;
  KarmaFixture f({0.5, 0.5, 0.5, 10.0}, 1, {0.05}, options);
  const Box query({0.0}, {1.0});
  for (int i = 0; i < 50; ++i) {
    (void)f.engine->Estimate(query);
    (void)f.karma->Update(query, 1.0);
  }
  const std::vector<double> karma = f.karma->ReadKarma();
  for (int i = 0; i < 3; ++i) EXPECT_LE(karma[i], options.k_max + 1e-12);
  // And saturation is reachable.
  EXPECT_NEAR(karma[0], options.k_max, 1e-9);
}

TEST(Karma, ThresholdTriggersReplacement) {
  KarmaOptions options;
  options.threshold = -1e-4;
  options.empty_region_shortcut = false;
  KarmaFixture f({0.5, 0.5, 0.5, 10.0}, 1, {0.05}, options);
  const Box query({0.0}, {1.0});
  std::vector<std::size_t> slots;
  for (int i = 0; i < 100 && slots.empty(); ++i) {
    (void)f.engine->Estimate(query);
    slots = f.karma->Update(query, 1.0);
  }
  ASSERT_EQ(slots.size(), 1u);
  EXPECT_EQ(slots[0], 3u);  // The stale point at 10.
}

TEST(Karma, ResetSlotClearsScore) {
  KarmaOptions options;
  options.empty_region_shortcut = false;
  KarmaFixture f({0.5, 0.5, 0.5, 10.0}, 1, {0.05}, options);
  const Box query({0.0}, {1.0});
  (void)f.engine->Estimate(query);
  (void)f.karma->Update(query, 1.0);
  EXPECT_LT(f.karma->ReadKarma()[3], 0.0);
  f.karma->ResetSlot(3);
  EXPECT_DOUBLE_EQ(f.karma->ReadKarma()[3], 0.0);
}

TEST(Karma, PerfectEstimateLeavesKarmaNearZeroChange) {
  // If every point is identical, leave-one-out equals the estimate and
  // each per-query Karma is exactly zero.
  KarmaFixture f({0.5, 0.5, 0.5, 0.5}, 1, {0.1});
  const Box query({0.0}, {1.0});
  (void)f.engine->Estimate(query);
  (void)f.karma->Update(query, f.engine->last_estimate());
  for (double k : f.karma->ReadKarma()) EXPECT_NEAR(k, 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Appendix E empty-region shortcut.
// ---------------------------------------------------------------------------

TEST(KarmaShortcut, BoundProvesContainmentNeverFalsely) {
  // Property: any point OUTSIDE the region contributes strictly less than
  // the bound; points well inside (centered) contribute at least it.
  Rng rng(5);
  for (int round = 0; round < 200; ++round) {
    const std::size_t d = 1 + rng.UniformInt(std::uint64_t{3});
    std::vector<double> lo(d), hi(d), bandwidth(d);
    for (std::size_t j = 0; j < d; ++j) {
      lo[j] = rng.Uniform(-1.0, 0.5);
      hi[j] = lo[j] + rng.Uniform(0.1, 1.0);
      bandwidth[j] = rng.Uniform(0.02, 0.5);
    }
    const Box box(lo, hi);
    const double bound = KarmaMaintainer::InsideContributionBound(box,
                                                                  bandwidth);

    // A point just outside along a random dimension, centered elsewhere —
    // this is the worst case of the derivation.
    const std::size_t out_dim = rng.UniformInt(std::uint64_t{d});
    std::vector<double> outside(d);
    for (std::size_t j = 0; j < d; ++j) outside[j] = box.Center(j);
    outside[out_dim] =
        rng.Bernoulli(0.5) ? lo[out_dim] - rng.Uniform(0.0, 0.2)
                           : hi[out_dim] + rng.Uniform(0.0, 0.2);
    double contribution = 1.0;
    for (std::size_t j = 0; j < d; ++j) {
      contribution *= kernel::GaussianCdfDiff(outside[j], bandwidth[j],
                                              lo[j], hi[j]);
    }
    EXPECT_LE(contribution, bound + 1e-12)
        << "outside point misclassified as inside, round " << round;
  }
}

TEST(KarmaShortcut, CenterPointAlwaysFlaggable) {
  // The exact center's contribution is p_max >= bound whenever the bound
  // ratio <= 2 ... verify on concrete shapes that the center is caught.
  for (double h : {0.05, 0.2, 1.0}) {
    const Box box({0.0, 0.0}, {1.0, 1.0});
    const std::vector<double> bandwidth = {h, h};
    const double bound =
        KarmaMaintainer::InsideContributionBound(box, bandwidth);
    double center_contribution = 1.0;
    for (int j = 0; j < 2; ++j) {
      center_contribution *=
          kernel::GaussianCdfDiff(0.5, h, 0.0, 1.0);
    }
    EXPECT_GE(center_contribution, bound) << "h=" << h;
  }
}

TEST(KarmaShortcut, EmptyQueryInstantlyReplacesProvablyInsidePoints) {
  // Points clustered mid-region; query over them returns truth = 0 (they
  // were deleted from the database). The shortcut must flag the centered
  // points on the FIRST query, without waiting for Karma decay.
  KarmaOptions options;
  options.threshold = -1e18;  // Disable threshold path; isolate shortcut.
  KarmaFixture f({0.5, 0.52, 5.0, -3.0}, 1, {0.02}, options);
  const Box query({0.3}, {0.7});
  (void)f.engine->Estimate(query);
  const std::vector<std::size_t> slots = f.karma->Update(query, 0.0);
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0], 0u);
  EXPECT_EQ(slots[1], 1u);
}

TEST(KarmaShortcut, NonEmptyQueryDoesNotTriggerShortcut) {
  KarmaOptions options;
  options.threshold = -1e18;
  KarmaFixture f({0.5, 0.52, 5.0, -3.0}, 1, {0.02}, options);
  const Box query({0.3}, {0.7});
  (void)f.engine->Estimate(query);
  EXPECT_TRUE(f.karma->Update(query, 0.5).empty());
}

TEST(KarmaShortcut, DisabledViaOption) {
  KarmaOptions options;
  options.threshold = -1e18;
  options.empty_region_shortcut = false;
  KarmaFixture f({0.5, 0.52, 5.0, -3.0}, 1, {0.02}, options);
  const Box query({0.3}, {0.7});
  (void)f.engine->Estimate(query);
  EXPECT_TRUE(f.karma->Update(query, 0.0).empty());
}

TEST(Karma, ThresholdReplacementMovesOnlyBitmapAndReplacedRows) {
  // The full maintenance loop must cost exactly s/8 bitmap bytes per
  // query on the device->host path, and the device-bound traffic of a
  // replacement must be exactly the replaced rows (d floats each) plus
  // the per-slot Karma reset (one double) — nothing else.
  KarmaOptions options;
  options.threshold = -1e-4;
  options.empty_region_shortcut = false;
  // 32 rows => the replacement bitmap is exactly one 32-bit word, so the
  // "s/8 bytes" claim is exact rather than rounded up.
  std::vector<double> rows(32, 0.5);
  rows[17] = 10.0;  // The stale point the threshold will eventually flag.
  KarmaFixture f(rows, 1, {0.05}, options);
  const Box query({0.0}, {1.0});
  const std::vector<double> fresh_row = {0.5};
  std::size_t replaced = 0;
  for (int i = 0; i < 200 && replaced == 0; ++i) {
    (void)f.engine->Estimate(query);
    const auto before = f.device->ledger();
    f.karma->EnqueueUpdate(query, 1.0);
    const std::vector<std::size_t> slots = f.karma->CollectPending();
    const auto after_update = f.device->ledger();
    EXPECT_EQ(after_update.bytes_to_host - before.bytes_to_host, 32u / 8u);
    EXPECT_EQ(after_update.bytes_to_device, before.bytes_to_device);
    for (std::size_t slot : slots) {
      f.sample->ReplaceRow(slot, fresh_row);
      f.karma->ResetSlot(slot);
      ++replaced;
    }
    const auto after_replace = f.device->ledger();
    EXPECT_EQ(after_replace.bytes_to_device - after_update.bytes_to_device,
              slots.size() * (1 * sizeof(float) + sizeof(double)));
    EXPECT_EQ(after_replace.bytes_to_host, after_update.bytes_to_host);
  }
  EXPECT_EQ(replaced, 1u);
}

TEST(Karma, BitmapTransferIsCompact) {
  // The replacement bitmap must cost s/8 bytes per query, not s bytes.
  ClusterBoxesParams params;
  params.rows = 5000;
  params.dims = 2;
  const Table table = GenerateClusterBoxes(params, 1);
  Device device(DeviceProfile::OpenClCpu());
  DeviceSample sample(&device, 1024, 2);
  Rng rng(2);
  FKDE_CHECK_OK(sample.LoadFromTable(table, &rng));
  KdeEngine engine(&sample, KernelType::kGaussian);
  KarmaMaintainer karma(&engine, KarmaOptions());
  const Box query({0.2, 0.2}, {0.4, 0.4});
  (void)engine.Estimate(query);
  const auto before = device.ledger();
  (void)karma.Update(query, 0.01);
  const auto after = device.ledger();
  EXPECT_EQ(after.bytes_to_host - before.bytes_to_host, 1024u / 8u);
}

}  // namespace
}  // namespace fkde
