// Tests for the Periodic estimator mode — the Section 3.4 deployment
// recipe (ring buffer of recent feedback + periodic batch re-optimization).

#include <memory>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "kde/kde_estimator.h"
#include "runtime/driver.h"

namespace fkde {
namespace {

using Mode = KdeSelectivityEstimator::Mode;

struct PeriodicFixture {
  explicit PeriodicFixture(std::uint64_t seed = 1) {
    ClusterBoxesParams params;
    params.rows = 20000;
    params.dims = 3;
    params.num_clusters = 6;
    table = std::make_unique<Table>(GenerateClusterBoxes(params, seed));
    device = std::make_unique<Device>(DeviceProfile::OpenClCpu());
    WorkloadGenerator generator(*table);
    Rng rng(seed + 1);
    const WorkloadSpec dt = ParseWorkloadName("dt").ValueOrDie();
    stream = generator.Generate(dt, 250, &rng);
    test = generator.Generate(dt, 100, &rng);
  }

  std::unique_ptr<KdeSelectivityEstimator> Build(KdeConfig config = {}) {
    config.sample_size = 512;
    return KdeSelectivityEstimator::Create(Mode::kPeriodic, device.get(),
                                           table.get(), config)
        .MoveValueOrDie();
  }

  std::unique_ptr<Table> table;
  std::unique_ptr<Device> device;
  std::vector<Query> stream;
  std::vector<Query> test;
};

TEST(Periodic, NameAndConstruction) {
  PeriodicFixture f;
  auto estimator = f.Build();
  EXPECT_EQ(estimator->name(), "kde_periodic");
  EXPECT_EQ(estimator->reoptimizations(), 0u);
}

TEST(Periodic, ReoptimizesOnSchedule) {
  PeriodicFixture f;
  KdeConfig config;
  config.reoptimize_every = 50;
  config.feedback_window = 100;
  auto estimator = f.Build(config);
  for (std::size_t i = 0; i < 120; ++i) {
    (void)estimator->EstimateSelectivity(f.stream[i].box);
    estimator->ObserveTrueSelectivity(f.stream[i].box,
                                      f.stream[i].selectivity);
  }
  // Optimizations at feedback 50 and 100.
  EXPECT_EQ(estimator->reoptimizations(), 2u);
}

TEST(Periodic, ImprovesOverScottAfterFirstWindow) {
  PeriodicFixture f;
  KdeConfig config;
  config.reoptimize_every = 80;
  auto periodic = f.Build(config);
  const std::vector<double> scott = periodic->bandwidth();
  FeedbackDriver::Train(periodic.get(), f.stream);
  EXPECT_GT(periodic->reoptimizations(), 0u);
  EXPECT_NE(periodic->bandwidth(), scott);

  // Error after tuning beats the frozen Scott model.
  auto heuristic =
      KdeSelectivityEstimator::Create(Mode::kHeuristic, f.device.get(),
                                      f.table.get(), config)
          .MoveValueOrDie();
  const double tuned =
      FeedbackDriver::RunPrecomputed(periodic.get(), f.test)
          .MeanAbsoluteError();
  const double frozen =
      FeedbackDriver::RunPrecomputed(heuristic.get(), f.test)
          .MeanAbsoluteError();
  EXPECT_LT(tuned, frozen);
}

TEST(Periodic, RingBufferKeepsOnlyRecentQueries) {
  // After the window cycles, the ring must contain exactly the most
  // recent `feedback_window` observations — older ones are overwritten.
  PeriodicFixture f(7);
  KdeConfig config;
  config.feedback_window = 60;
  config.reoptimize_every = 60;

  auto cycled = f.Build(config);
  for (std::size_t i = 0; i < 60; ++i) {  // Old phase fills the ring once.
    cycled->ObserveTrueSelectivity(f.stream[i].box, f.stream[i].selectivity);
  }
  for (std::size_t i = 100; i < 160; ++i) {  // New phase overwrites it.
    cycled->ObserveTrueSelectivity(f.stream[i].box, f.stream[i].selectivity);
  }
  ASSERT_EQ(cycled->reoptimizations(), 2u);
  const auto& ring = cycled->feedback_ring();
  ASSERT_EQ(ring.size(), 60u);
  // Every ring entry is one of the NEW-phase queries; none of the old.
  for (const Query& entry : ring) {
    bool found = false;
    for (std::size_t i = 100; i < 160 && !found; ++i) {
      found = entry.box == f.stream[i].box;
    }
    EXPECT_TRUE(found);
  }
}

TEST(Periodic, RejectsZeroIntervals) {
  PeriodicFixture f;
  KdeConfig config;
  config.sample_size = 64;
  config.reoptimize_every = 0;
  EXPECT_FALSE(KdeSelectivityEstimator::Create(Mode::kPeriodic,
                                               f.device.get(), f.table.get(),
                                               config)
                   .ok());
  config.reoptimize_every = 10;
  config.feedback_window = 0;
  EXPECT_FALSE(KdeSelectivityEstimator::Create(Mode::kPeriodic,
                                               f.device.get(), f.table.get(),
                                               config)
                   .ok());
}

TEST(Periodic, AvailableThroughFactoryName) {
  EXPECT_EQ(KdeModeName(Mode::kPeriodic), "kde_periodic");
}

}  // namespace
}  // namespace fkde
