/// \file batch_launch_test.cc
/// \brief Launch/transfer-count regression tests for the batched hot
/// paths, verified against the device ledger and the modeled cost.
///
/// The point of the batched API is asymptotic: a whole bandwidth-objective
/// evaluation over m training queries must cost O(1) kernel launches and
/// ONE descriptor upload, independent of m — not the ~m*(d+2) launches of
/// a per-query loop. These tests pin those counts so regressions that
/// quietly reintroduce per-query round trips fail loudly.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "kde/engine.h"
#include "kde/loss.h"

namespace fkde {
namespace {

struct LaunchFixture {
  explicit LaunchFixture(const DeviceProfile& profile,
                         std::size_t sample_size = 1024,
                         std::size_t dims = 3) {
    ClusterBoxesParams params;
    params.rows = 8000;
    params.dims = dims;
    table = std::make_unique<Table>(GenerateClusterBoxes(params, 60));
    device = std::make_unique<Device>(profile);
    sample = std::make_unique<DeviceSample>(device.get(), sample_size, dims);
    Rng rng(61);
    FKDE_CHECK_OK(sample->LoadFromTable(*table, &rng));
    engine = std::make_unique<KdeEngine>(sample.get(), KernelType::kGaussian);
  }

  std::vector<Box> RandomBoxes(std::size_t count, std::uint64_t seed) const {
    const std::size_t d = engine->dims();
    Rng rng(seed);
    std::vector<Box> boxes;
    boxes.reserve(count);
    for (std::size_t q = 0; q < count; ++q) {
      std::vector<double> lo(d), hi(d);
      for (std::size_t j = 0; j < d; ++j) {
        const double a = rng.Uniform(), b = rng.Uniform();
        lo[j] = std::min(a, b);
        hi[j] = std::max(a, b);
      }
      boxes.emplace_back(lo, hi);
    }
    return boxes;
  }

  std::unique_ptr<Table> table;
  std::unique_ptr<Device> device;
  std::unique_ptr<DeviceSample> sample;
  std::unique_ptr<KdeEngine> engine;
};

TEST(BatchLaunch, ObjectiveWithGradientIsFiveLaunchesOneUpload) {
  // The ISSUE acceptance bound: a full batched objective evaluation over
  // 100 training queries (s=1024, d=3) in <= 5 launches and ONE bounds
  // transfer. Exact budget: fused contribution+partials kernel (1), the
  // two-level segmented estimate reduction (2), the loss-weighted fold
  // kernel (1) and the one-level segmented fold reduction (1).
  LaunchFixture f(DeviceProfile::OpenClCpu());
  const std::size_t m = 100;
  const std::size_t d = f.engine->dims();
  const std::vector<Box> boxes = f.RandomBoxes(m, 62);
  const std::vector<double> truths(m, 0.1);

  f.device->ResetLedger();
  std::vector<double> grad;
  (void)f.engine->EstimateBatchLoss(boxes, truths, LossType::kQuadratic,
                                    1e-5, &grad);
  const TransferLedger& ledger = f.device->ledger();
  EXPECT_LE(ledger.kernel_launches, 5u);
  EXPECT_EQ(ledger.transfers_to_device, 1u);
  EXPECT_EQ(ledger.bytes_to_device, (m * 2 * d + m) * sizeof(double));
  // One (d+1)-double read-back: d gradient dot-products + the loss sum.
  EXPECT_EQ(ledger.transfers_to_host, 1u);
  EXPECT_EQ(ledger.bytes_to_host, (d + 1) * sizeof(double));
}

TEST(BatchLaunch, LaunchCountIndependentOfQueryCount) {
  LaunchFixture f(DeviceProfile::OpenClCpu());
  std::vector<std::uint64_t> grad_launches, est_launches;
  for (std::size_t m : {1ul, 10ul, 100ul}) {
    const std::vector<Box> boxes = f.RandomBoxes(m, 63);
    const std::vector<double> truths(m, 0.1);
    f.device->ResetLedger();
    std::vector<double> grad;
    (void)f.engine->EstimateBatchLoss(boxes, truths, LossType::kQuadratic,
                                      1e-5, &grad);
    grad_launches.push_back(f.device->ledger().kernel_launches);

    std::vector<double> estimates(m);
    f.device->ResetLedger();
    f.engine->EstimateBatch(boxes, estimates);
    est_launches.push_back(f.device->ledger().kernel_launches);
    EXPECT_EQ(f.device->ledger().transfers_to_device, 1u) << m;
    EXPECT_EQ(f.device->ledger().transfers_to_host, 1u) << m;
  }
  EXPECT_EQ(grad_launches[0], grad_launches[1]);
  EXPECT_EQ(grad_launches[1], grad_launches[2]);
  EXPECT_EQ(est_launches[0], est_launches[1]);
  EXPECT_EQ(est_launches[1], est_launches[2]);
}

TEST(BatchLaunch, BatchedObjectiveAtLeastFiveTimesFasterOnGpuModel) {
  // The launch-latency-bound regime the batching targets: on the modeled
  // GTX-460 profile, evaluating the objective for 100 queries via the
  // batched pass must model >= 5x faster than the per-query loop it
  // replaced (the ISSUE acceptance bound).
  LaunchFixture f(DeviceProfile::SimulatedGtx460());
  const std::size_t m = 100;
  const std::size_t d = f.engine->dims();
  const std::vector<Box> boxes = f.RandomBoxes(m, 64);
  const std::vector<double> truths(m, 0.1);

  f.device->ResetModeledTime();
  std::vector<double> grad;
  (void)f.engine->EstimateBatchLoss(boxes, truths, LossType::kQuadratic,
                                    1e-5, &grad);
  const double batched_s = f.device->ModeledSeconds();

  // The pre-batching objective: per-query gradient estimate plus a
  // host-side loss fold.
  f.device->ResetModeledTime();
  std::vector<double> loss_grad(d, 0.0);
  double loss = 0.0;
  for (std::size_t q = 0; q < m; ++q) {
    std::vector<double> g;
    const double est = f.engine->EstimateWithGradient(boxes[q], &g);
    loss += EvaluateLoss(LossType::kQuadratic, est, truths[q], 1e-5);
    const double dloss =
        LossDerivative(LossType::kQuadratic, est, truths[q], 1e-5);
    for (std::size_t k = 0; k < d; ++k) loss_grad[k] += dloss * g[k];
  }
  const double per_query_s = f.device->ModeledSeconds();

  EXPECT_GE(per_query_s, 5.0 * batched_s)
      << "batched " << batched_s << "s vs per-query " << per_query_s << "s";
}

TEST(BatchLaunch, EmptyBatchIsAMeteredNoOp) {
  // m == 0 must not touch the device at all: no descriptor upload, no
  // kernel, no read-back, no modeled time — on either batched entry
  // point. Pinned via the ledger so a stray unconditional upload or
  // launch in the batch pipeline fails loudly.
  LaunchFixture f(DeviceProfile::OpenClCpu());
  f.device->ResetLedger();
  f.device->ResetModeledTime();

  f.engine->EstimateBatch({}, {});
  f.engine->EstimateBatchWithGradient({}, {}, {});

  const TransferLedger& ledger = f.device->ledger();
  EXPECT_EQ(ledger.kernel_launches, 0u);
  EXPECT_EQ(ledger.transfers_to_device, 0u);
  EXPECT_EQ(ledger.transfers_to_host, 0u);
  EXPECT_EQ(ledger.total_bytes(), 0u);
  EXPECT_DOUBLE_EQ(f.device->ModeledSeconds(), 0.0);
}

TEST(BatchLaunch, BatchScratchComesFromThePoolAfterWarmup) {
  // The batched paths draw their temporaries (descriptor upload, tile
  // contribution/partial buffers, per-query sums) from the device scratch
  // pool: after one warm-up call, repeated evaluations of the same shape
  // must allocate NOTHING — every acquisition is a pool hit.
  LaunchFixture f(DeviceProfile::OpenClCpu());
  const std::vector<Box> boxes = f.RandomBoxes(32, 67);
  std::vector<double> estimates(boxes.size());
  std::vector<double> gradients(boxes.size() * f.engine->dims());

  f.engine->EstimateBatch(boxes, estimates);
  f.engine->EstimateBatchWithGradient(boxes, estimates, gradients);
  const BufferPoolStats warm = f.device->scratch_pool_stats();

  for (int i = 0; i < 4; ++i) {
    f.engine->EstimateBatch(boxes, estimates);
    f.engine->EstimateBatchWithGradient(boxes, estimates, gradients);
  }
  const BufferPoolStats steady = f.device->scratch_pool_stats();
  EXPECT_EQ(steady.misses, warm.misses) << "batched path allocated";
  EXPECT_GT(steady.hits, warm.hits);
  EXPECT_EQ(steady.outstanding, warm.outstanding);
}

TEST(BatchLaunch, ScottInitIsTwoLaunchesPerConstruction) {
  // The fused moments kernel + one segmented reduction, regardless of d —
  // formerly ~4d launches (per-dimension sum and sum-of-squares trees).
  ClusterBoxesParams params;
  params.rows = 8000;
  params.dims = 5;
  const Table table = GenerateClusterBoxes(params, 65);
  Device device(DeviceProfile::OpenClCpu());
  DeviceSample sample(&device, 1024, 5);
  Rng rng(66);
  FKDE_CHECK_OK(sample.LoadFromTable(table, &rng));
  device.ResetLedger();
  KdeEngine engine(&sample, KernelType::kGaussian);
  // Construction = Scott init (kernel + segmented reduce levels) + the
  // SetBandwidth upload; no per-dimension launch fan-out.
  EXPECT_LE(device.ledger().kernel_launches, 3u);
}

}  // namespace
}  // namespace fkde
