#include "kde/loss.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fkde {
namespace {

constexpr LossType kAllLosses[] = {
    LossType::kQuadratic, LossType::kAbsolute, LossType::kRelative,
    LossType::kSquaredRelative, LossType::kSquaredQ};

TEST(LossParse, KnownNames) {
  EXPECT_EQ(ParseLossName("l2").ValueOrDie(), LossType::kQuadratic);
  EXPECT_EQ(ParseLossName("Quadratic").ValueOrDie(), LossType::kQuadratic);
  EXPECT_EQ(ParseLossName("L1").ValueOrDie(), LossType::kAbsolute);
  EXPECT_EQ(ParseLossName("relative").ValueOrDie(), LossType::kRelative);
  EXPECT_EQ(ParseLossName("squared_relative").ValueOrDie(),
            LossType::kSquaredRelative);
  EXPECT_EQ(ParseLossName("q").ValueOrDie(), LossType::kSquaredQ);
  EXPECT_FALSE(ParseLossName("huber").ok());
}

TEST(LossParse, NamesRoundTrip) {
  for (LossType type : kAllLosses) {
    EXPECT_EQ(ParseLossName(LossName(type)).ValueOrDie(), type);
  }
}

TEST(Loss, KnownValues) {
  EXPECT_DOUBLE_EQ(EvaluateLoss(LossType::kQuadratic, 0.3, 0.1), 0.04);
  EXPECT_DOUBLE_EQ(EvaluateLoss(LossType::kAbsolute, 0.3, 0.1), 0.2);
  EXPECT_NEAR(EvaluateLoss(LossType::kRelative, 0.3, 0.1, 0.1), 1.0, 1e-12);
  EXPECT_NEAR(EvaluateLoss(LossType::kSquaredRelative, 0.3, 0.1, 0.1), 1.0,
              1e-12);
  const double q = std::log(0.4 + 1e-5) - std::log(0.2 + 1e-5);
  EXPECT_NEAR(EvaluateLoss(LossType::kSquaredQ, 0.4, 0.2), q * q, 1e-12);
}

TEST(Loss, ZeroAtPerfectEstimate) {
  for (LossType type : kAllLosses) {
    EXPECT_DOUBLE_EQ(EvaluateLoss(type, 0.25, 0.25), 0.0)
        << LossName(type);
    EXPECT_DOUBLE_EQ(LossDerivative(type, 0.25, 0.25), 0.0)
        << LossName(type);
  }
}

TEST(Loss, NonNegativeEverywhere) {
  for (LossType type : kAllLosses) {
    for (double est : {0.0, 0.1, 0.5, 1.0}) {
      for (double truth : {0.0, 0.2, 0.9}) {
        EXPECT_GE(EvaluateLoss(type, est, truth), 0.0)
            << LossName(type) << " est=" << est << " truth=" << truth;
      }
    }
  }
}

TEST(Loss, SignOfDerivativeTracksError) {
  for (LossType type : kAllLosses) {
    EXPECT_GT(LossDerivative(type, 0.5, 0.2), 0.0) << LossName(type);
    EXPECT_LT(LossDerivative(type, 0.1, 0.6), 0.0) << LossName(type);
  }
}

TEST(Loss, RelativeLossesHandleZeroTruth) {
  // lambda keeps these finite at truth = 0 (empty queries are common).
  for (LossType type : {LossType::kRelative, LossType::kSquaredRelative,
                        LossType::kSquaredQ}) {
    const double value = EvaluateLoss(type, 0.1, 0.0, 1e-5);
    EXPECT_TRUE(std::isfinite(value)) << LossName(type);
    EXPECT_GT(value, 0.0) << LossName(type);
    EXPECT_TRUE(std::isfinite(LossDerivative(type, 0.1, 0.0, 1e-5)));
  }
}

// Derivative vs finite differences, parameterized over all losses.
class LossDerivativeSweep : public ::testing::TestWithParam<LossType> {};

TEST_P(LossDerivativeSweep, MatchesFiniteDifference) {
  const LossType type = GetParam();
  const double lambda = 1e-4;
  for (double truth : {0.0, 0.05, 0.4}) {
    for (double est : {0.01, 0.2, 0.7}) {
      if (type == LossType::kAbsolute || type == LossType::kRelative) {
        // Piecewise-linear: derivative valid away from est == truth only.
        if (std::abs(est - truth) < 1e-3) continue;
      }
      const double eps = 1e-7;
      const double numeric = (EvaluateLoss(type, est + eps, truth, lambda) -
                              EvaluateLoss(type, est - eps, truth, lambda)) /
                             (2.0 * eps);
      const double analytic = LossDerivative(type, est, truth, lambda);
      EXPECT_NEAR(analytic, numeric, 1e-4 * std::max(1.0, std::abs(numeric)))
          << LossName(type) << " est=" << est << " truth=" << truth;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllLosses, LossDerivativeSweep,
                         ::testing::ValuesIn(kAllLosses));

TEST(Loss, QuadraticIsSymmetric) {
  EXPECT_DOUBLE_EQ(EvaluateLoss(LossType::kQuadratic, 0.3, 0.1),
                   EvaluateLoss(LossType::kQuadratic, 0.1, 0.3));
}

TEST(Loss, QErrorPenalizesRatios) {
  // Q-error treats 2x overestimate and 2x underestimate symmetrically in
  // log space (for lambda << values).
  const double over = EvaluateLoss(LossType::kSquaredQ, 0.4, 0.2, 1e-9);
  const double under = EvaluateLoss(LossType::kSquaredQ, 0.1, 0.2, 1e-9);
  EXPECT_NEAR(over, under, 1e-6);
}

}  // namespace
}  // namespace fkde
