/// \file batch_eval_test.cc
/// \brief Correctness of the batched evaluation paths: batched estimates,
/// batched gradients and the fused batched loss must reproduce the
/// per-query reference paths (and finite differences) exactly.

#include <cmath>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "kde/engine.h"
#include "kde/loss.h"
#include "opt/optimizer.h"

namespace fkde {
namespace {

struct BatchFixture {
  BatchFixture(std::size_t rows, std::size_t dims, std::size_t sample_size,
               KernelType kernel, std::uint64_t seed, bool with_scales) {
    ClusterBoxesParams params;
    params.rows = rows;
    params.dims = dims;
    table = std::make_unique<Table>(GenerateClusterBoxes(params, seed));
    device = std::make_unique<Device>(DeviceProfile::OpenClCpu());
    sample = std::make_unique<DeviceSample>(device.get(), sample_size, dims);
    Rng rng(seed + 1);
    FKDE_CHECK_OK(sample->LoadFromTable(*table, &rng));
    engine = std::make_unique<KdeEngine>(sample.get(), kernel);
    if (with_scales) {
      std::vector<double> scales(sample->size());
      for (double& v : scales) v = rng.Uniform(0.5, 2.0);
      FKDE_CHECK_OK(engine->SetPointScales(scales));
    }
  }

  std::vector<Box> RandomBoxes(std::size_t count, std::uint64_t seed) const {
    const std::size_t d = engine->dims();
    Rng rng(seed);
    std::vector<Box> boxes;
    boxes.reserve(count);
    for (std::size_t q = 0; q < count; ++q) {
      std::vector<double> lo(d), hi(d);
      for (std::size_t j = 0; j < d; ++j) {
        const double a = rng.Uniform(), b = rng.Uniform();
        lo[j] = std::min(a, b);
        hi[j] = std::max(a, b);
      }
      boxes.emplace_back(lo, hi);
    }
    return boxes;
  }

  std::unique_ptr<Table> table;
  std::unique_ptr<Device> device;
  std::unique_ptr<DeviceSample> sample;
  std::unique_ptr<KdeEngine> engine;
};

double RelError(double got, double want) {
  return std::abs(got - want) / std::max(1.0, std::abs(want));
}

// Kernel x variable-KDE-scales sweep for every comparison below.
class BatchEvalSweep
    : public ::testing::TestWithParam<std::tuple<KernelType, bool>> {
 protected:
  BatchFixture MakeFixture(std::uint64_t seed) const {
    return BatchFixture(8000, 3, 256, std::get<0>(GetParam()), seed,
                        std::get<1>(GetParam()));
  }
};

TEST_P(BatchEvalSweep, BatchEstimatesBitIdenticalToPerQuery) {
  BatchFixture f = MakeFixture(40);
  const std::vector<Box> boxes = f.RandomBoxes(37, 41);
  std::vector<double> batched(boxes.size());
  f.engine->EstimateBatch(boxes, batched);
  for (std::size_t q = 0; q < boxes.size(); ++q) {
    // Same contribution math, same reduction tree: bitwise equal.
    EXPECT_EQ(batched[q], f.engine->Estimate(boxes[q])) << "query " << q;
  }
}

TEST_P(BatchEvalSweep, BatchGradientsMatchPerQuery) {
  BatchFixture f = MakeFixture(42);
  const std::vector<Box> boxes = f.RandomBoxes(23, 43);
  const std::size_t d = f.engine->dims();
  std::vector<double> estimates(boxes.size());
  std::vector<double> gradients(boxes.size() * d);
  f.engine->EstimateBatchWithGradient(boxes, estimates, gradients);
  for (std::size_t q = 0; q < boxes.size(); ++q) {
    std::vector<double> g;
    const double est = f.engine->EstimateWithGradient(boxes[q], &g);
    EXPECT_LE(RelError(estimates[q], est), 1e-12) << "query " << q;
    for (std::size_t k = 0; k < d; ++k) {
      EXPECT_LE(RelError(gradients[q * d + k], g[k]), 1e-12)
          << "query " << q << " dim " << k;
    }
  }
}

TEST_P(BatchEvalSweep, BatchLossMatchesHostFoldedPerQuery) {
  BatchFixture f = MakeFixture(44);
  const std::vector<Box> boxes = f.RandomBoxes(31, 45);
  const std::size_t m = boxes.size();
  const std::size_t d = f.engine->dims();
  Rng rng(46);
  std::vector<double> truths(m);
  for (double& t : truths) t = rng.Uniform(0.0, 0.4);

  for (LossType loss : {LossType::kQuadratic, LossType::kSquaredRelative}) {
    const double lambda = 1e-5;
    std::vector<double> grad;
    const double batched =
        f.engine->EstimateBatchLoss(boxes, truths, loss, lambda, &grad);
    const double no_grad_loss = f.engine->EstimateBatchLoss(
        boxes, truths, loss, lambda, /*gradient=*/nullptr);
    EXPECT_LE(RelError(no_grad_loss, batched), 1e-12);

    // Host-folded reference: per-query estimate + gradient, chained with
    // the loss derivative on the host (the pre-batching code path).
    double ref_loss = 0.0;
    std::vector<double> ref_grad(d, 0.0);
    for (std::size_t q = 0; q < m; ++q) {
      std::vector<double> g;
      const double est = f.engine->EstimateWithGradient(boxes[q], &g);
      ref_loss += EvaluateLoss(loss, est, truths[q], lambda);
      const double dloss = LossDerivative(loss, est, truths[q], lambda);
      for (std::size_t k = 0; k < d; ++k) ref_grad[k] += dloss * g[k];
    }
    ref_loss /= static_cast<double>(m);
    for (double& g : ref_grad) g /= static_cast<double>(m);

    EXPECT_LE(RelError(batched, ref_loss), 1e-12);
    ASSERT_EQ(grad.size(), d);
    for (std::size_t k = 0; k < d; ++k) {
      EXPECT_LE(RelError(grad[k], ref_grad[k]), 1e-10) << "dim " << k;
    }
  }
}

TEST_P(BatchEvalSweep, BatchLossGradientMatchesFiniteDifference) {
  BatchFixture f = MakeFixture(47);
  const std::vector<Box> boxes = f.RandomBoxes(15, 48);
  Rng rng(49);
  std::vector<double> truths(boxes.size());
  for (double& t : truths) t = rng.Uniform(0.0, 0.4);
  const std::vector<double> h0 = f.engine->bandwidth();

  Objective objective = [&](std::span<const double> h,
                            std::span<double> grad) {
    FKDE_CHECK_OK(f.engine->SetBandwidth(h));
    if (grad.empty()) {
      return f.engine->EstimateBatchLoss(boxes, truths, LossType::kQuadratic,
                                         1e-5, /*gradient=*/nullptr);
    }
    std::vector<double> g;
    const double loss = f.engine->EstimateBatchLoss(
        boxes, truths, LossType::kQuadratic, 1e-5, &g);
    std::copy(g.begin(), g.end(), grad.begin());
    return loss;
  };
  EXPECT_LT(MaxGradientError(objective, h0, 1e-5), 2e-3);
  FKDE_CHECK_OK(f.engine->SetBandwidth(h0));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BatchEvalSweep,
    ::testing::Combine(::testing::Values(KernelType::kGaussian,
                                         KernelType::kEpanechnikov),
                       ::testing::Bool()));

TEST(BatchEval, TiledBatchesMatchPerQuery) {
  // Large s x d forces the 64MB tile cap to split the batch; results must
  // be unchanged.
  BatchFixture f(40000, 8, 32768, KernelType::kGaussian, 50,
                 /*with_scales=*/false);
  const std::size_t d = f.engine->dims();
  const std::vector<Box> boxes = f.RandomBoxes(60, 51);
  std::vector<double> estimates(boxes.size());
  std::vector<double> gradients(boxes.size() * d);
  f.engine->EstimateBatchWithGradient(boxes, estimates, gradients);
  Rng rng(52);
  for (int round = 0; round < 8; ++round) {
    const std::size_t q = rng.UniformInt(boxes.size());
    std::vector<double> g;
    const double est = f.engine->EstimateWithGradient(boxes[q], &g);
    EXPECT_LE(RelError(estimates[q], est), 1e-12) << "query " << q;
    for (std::size_t k = 0; k < d; ++k) {
      EXPECT_LE(RelError(gradients[q * d + k], g[k]), 1e-12)
          << "query " << q << " dim " << k;
    }
  }
}

TEST(BatchEval, DoesNotDisturbRetainedContributions) {
  // Karma consumes the contributions retained by the last single-query
  // estimate; a batched evaluation in between must not clobber them.
  BatchFixture f(8000, 3, 256, KernelType::kGaussian, 53,
                 /*with_scales=*/false);
  const std::vector<Box> boxes = f.RandomBoxes(20, 54);
  const Box probe = f.RandomBoxes(1, 55)[0];
  const double est = f.engine->Estimate(probe);
  const std::size_t s = f.engine->sample_size();
  std::vector<double> before(s);
  f.device->CopyToHost(f.engine->contributions(), 0, s, before.data());

  std::vector<double> estimates(boxes.size());
  f.engine->EstimateBatch(boxes, estimates);
  std::vector<double> truths(boxes.size(), 0.1);
  std::vector<double> grad;
  (void)f.engine->EstimateBatchLoss(boxes, truths, LossType::kQuadratic,
                                    1e-5, &grad);

  EXPECT_DOUBLE_EQ(f.engine->last_estimate(), est);
  std::vector<double> after(s);
  f.device->CopyToHost(f.engine->contributions(), 0, s, after.data());
  EXPECT_EQ(before, after);
}

TEST(BatchEval, EmptyBatchIsANoOp) {
  BatchFixture f(2000, 2, 64, KernelType::kGaussian, 56,
                 /*with_scales=*/false);
  std::vector<Box> no_boxes;
  std::vector<double> no_estimates;
  f.engine->EstimateBatch(no_boxes, no_estimates);  // Must not crash.
}

}  // namespace
}  // namespace fkde
