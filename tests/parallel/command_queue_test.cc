#include "parallel/command_queue.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/device.h"

namespace fkde {
namespace {

TEST(CommandQueue, InvalidEventIsCompleteAndFreeToWaitOn) {
  const Event event;
  EXPECT_FALSE(event.valid());
  EXPECT_TRUE(event.complete());
  EXPECT_DOUBLE_EQ(event.modeled_end_seconds(), 0.0);
  event.Wait();  // No-op, must not crash or charge anything.
}

TEST(CommandQueue, CommandsReallyExecuteAsynchronously) {
  Device device(DeviceProfile::OpenClCpu());
  std::atomic<bool> release{false};
  std::atomic<bool> ran{false};
  const Event event = device.default_queue()->EnqueueLaunch(
      "blocked", 1, 1.0, [&](std::size_t, std::size_t) {
        while (!release.load()) std::this_thread::yield();
        ran.store(true);
      });
  // The enqueue returned while the kernel is still blocked: it is running
  // on the dispatcher, not inline on this thread.
  EXPECT_FALSE(event.complete());
  EXPECT_FALSE(ran.load());
  release.store(true);
  event.Wait();
  EXPECT_TRUE(event.complete());
  EXPECT_TRUE(ran.load());
}

TEST(CommandQueue, ExecutesInEnqueueOrder) {
  Device device(DeviceProfile::OpenClCpu());
  // Unsynchronized appends from the kernel bodies: only safe because the
  // in-order queue runs one command at a time. TSan guards this too.
  std::vector<int> order;
  CommandQueue* queue = device.default_queue();
  for (int i = 0; i < 16; ++i) {
    queue->EnqueueLaunch("step", 1, 1.0,
                         [&order, i](std::size_t, std::size_t) {
                           order.push_back(i);
                         });
  }
  queue->Finish();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(CommandQueue, FinishDrainsEverythingPending) {
  Device device(DeviceProfile::OpenClCpu());
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i) {
    device.default_queue()->EnqueueLaunch(
        "work", 1, 1.0,
        [&done](std::size_t, std::size_t) { done.fetch_add(1); });
  }
  device.default_queue()->Finish();
  EXPECT_EQ(done.load(), 8);
  device.default_queue()->Finish();  // Idempotent on a drained queue.
}

TEST(CommandQueue, TransfersAndKernelsInterleaveInOrder) {
  Device device(DeviceProfile::OpenClCpu());
  auto buffer = device.CreateBuffer<double>(4);
  CommandQueue* queue = device.default_queue();
  const std::vector<double> init = {1.0, 2.0, 3.0, 4.0};
  queue->EnqueueCopyToDevice(init.data(), 4, &buffer);
  double* data = buffer.device_data();
  queue->EnqueueLaunch("double", 4, 1.0,
                       [data](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           data[i] *= 2.0;
                         }
                       });
  std::vector<double> out(4);
  const Event read = queue->EnqueueCopyToHost(buffer, 0, 4, out.data());
  read.Wait();
  EXPECT_EQ(out, (std::vector<double>{2.0, 4.0, 6.0, 8.0}));
}

TEST(CommandQueue, WaitListSequencesAcrossQueues) {
  Device device(DeviceProfile::OpenClCpu());
  CommandQueue side_queue(&device);
  std::atomic<bool> release{false};
  std::atomic<bool> first_ran{false};
  const Event first = device.default_queue()->EnqueueLaunch(
      "first", 1, 1.0, [&](std::size_t, std::size_t) {
        while (!release.load()) std::this_thread::yield();
        first_ran.store(true);
      });
  // The side queue's command lists `first` in its wait list, so it may
  // not start until the default queue's command completed — even though
  // the two queues dispatch independently.
  bool ordered = false;
  const Event second = side_queue.EnqueueLaunch(
      "second", 1, 1.0,
      [&](std::size_t, std::size_t) { ordered = first_ran.load(); },
      /*accesses=*/{}, std::span<const Event>(&first, 1));
  EXPECT_GE(second.modeled_end_seconds(), first.modeled_end_seconds());
  release.store(true);
  second.Wait();
  EXPECT_TRUE(ordered);
}

TEST(CommandQueue, ModeledClockIsBookedAtEnqueueTime) {
  DeviceProfile profile;
  profile.launch_latency_s = 1e-3;
  profile.compute_throughput = 1e6;
  Device device(profile);
  std::atomic<bool> release{false};
  const Event slow = device.default_queue()->EnqueueLaunch(
      "gated", 1000, 1.0, [&](std::size_t, std::size_t) {
        while (!release.load()) std::this_thread::yield();
      });
  // Real execution has not even started, yet the modeled schedule is
  // final: deterministic bookkeeping never depends on thread timing.
  EXPECT_NEAR(slow.modeled_end_seconds(), 1e-3 + 1e-3, 1e-9);
  EXPECT_NEAR(device.ModeledSeconds(), 1e-3, 1e-9);
  EXPECT_NEAR(device.DeviceBusySeconds(), 1e-3, 1e-9);
  release.store(true);
  slow.Wait();
}

TEST(CommandQueue, BackToBackCommandsPipelineSubmissionLatency) {
  DeviceProfile profile;
  profile.launch_latency_s = 1e-3;
  profile.compute_throughput = 1e6;  // 1000 items -> 1 ms compute each.
  Device device(profile);
  CommandQueue* queue = device.default_queue();
  Event last;
  for (int i = 0; i < 3; ++i) {
    last = queue->EnqueueLaunch("stage", 1000, 1.0,
                                [](std::size_t, std::size_t) {});
  }
  last.Wait();
  // Submissions overlap earlier compute, so the pipeline finishes at
  // 3 launches x 1 ms latency + one trailing 1 ms of compute — not the
  // 6 ms a fully serialized launch-then-wait sequence would cost.
  EXPECT_NEAR(device.ModeledSeconds(), 4e-3, 1e-9);
  EXPECT_NEAR(device.DeviceBusySeconds(), 3e-3, 1e-9);
}

TEST(CommandQueue, StatsTrackDepthHighWaterAndDrain) {
  Device device(DeviceProfile::OpenClCpu());
  CommandQueue* queue = device.default_queue();
  const CommandQueueStats fresh = queue->Stats();
  EXPECT_EQ(fresh.total_commands, 0u);
  EXPECT_EQ(fresh.pending, 0u);
  EXPECT_EQ(fresh.depth_high_water, 0u);

  // Hold the dispatcher on a gate so five more commands pile up behind it.
  std::atomic<bool> release{false};
  (void)queue->EnqueueLaunch("gate", 1, 1.0, [&](std::size_t, std::size_t) {
    while (!release.load()) std::this_thread::yield();
  });
  for (int i = 0; i < 5; ++i) {
    (void)queue->EnqueueLaunch("queued", 1, 1.0,
                               [](std::size_t, std::size_t) {});
  }
  const CommandQueueStats backed_up = queue->Stats();
  EXPECT_EQ(backed_up.total_commands, 6u);
  EXPECT_GE(backed_up.pending, 5u);
  EXPECT_GE(backed_up.depth_high_water, 5u);

  release.store(true);
  queue->Finish();
  const CommandQueueStats drained = queue->Stats();
  EXPECT_EQ(drained.total_commands, 6u);
  EXPECT_EQ(drained.pending, 0u);
  // The high-water mark is a high-water mark: draining must not lower it.
  EXPECT_GE(drained.depth_high_water, backed_up.depth_high_water);
  // The dispatcher idled at least while the test thread set up the gate.
  EXPECT_GE(drained.dispatcher_wait_s, 0.0);
}

}  // namespace
}  // namespace fkde
