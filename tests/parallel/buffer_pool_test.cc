#include <type_traits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/device.h"

namespace fkde {
namespace {

TEST(DeviceBufferMove, MoveConstructionTransfersStorage) {
  Device device(DeviceProfile::OpenClCpu());
  DeviceBuffer<double> source = device.CreateBuffer<double>(64);
  const std::vector<double> payload(64, 3.5);
  device.CopyToDevice(payload.data(), payload.size(), &source);
  const double* data = source.device_data();

  DeviceBuffer<double> target(std::move(source));
  EXPECT_EQ(target.size(), 64u);
  // The backing allocation moves with the buffer — pointers captured by
  // enqueued kernels stay valid across the move.
  EXPECT_EQ(target.device_data(), data);
  EXPECT_DOUBLE_EQ(target.device_data()[63], 3.5);
  EXPECT_TRUE(source.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(DeviceBufferMove, MoveAssignmentReleasesOldStorageOnce) {
  Device device(DeviceProfile::OpenClCpu());
  DeviceBuffer<double> a = device.CreateBuffer<double>(16);
  DeviceBuffer<double> b = device.CreateBuffer<double>(32);
  const double* b_data = b.device_data();
  // Old storage of `a` is freed exactly once here; ASan would flag a
  // double-release.
  a = std::move(b);
  EXPECT_EQ(a.size(), 32u);
  EXPECT_EQ(a.device_data(), b_data);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move)
  // Self-contained scope exit destroys both; again single-release.
}

TEST(BufferPool, MissThenHitOnRecycle) {
  Device device(DeviceProfile::OpenClCpu());
  const BufferPoolStats before = device.scratch_pool_stats();
  const double* first_data = nullptr;
  {
    ScratchBuffer first = device.AcquireScratch(1000);
    ASSERT_GE(first->size(), 1000u);
    first_data = first->device_data();
    const BufferPoolStats stats = device.scratch_pool_stats();
    EXPECT_EQ(stats.misses, before.misses + 1);
    EXPECT_EQ(stats.hits, before.hits);
    EXPECT_EQ(stats.outstanding, before.outstanding + 1);
  }  // Handle drops -> parked, not freed.
  const BufferPoolStats parked = device.scratch_pool_stats();
  EXPECT_EQ(parked.releases, before.releases + 1);
  EXPECT_EQ(parked.outstanding, before.outstanding);
  EXPECT_GT(parked.pooled_bytes, 0u);

  // Same bucket -> the exact storage comes back, no allocation.
  ScratchBuffer second = device.AcquireScratch(700);
  EXPECT_EQ(second->device_data(), first_data);
  const BufferPoolStats stats = device.scratch_pool_stats();
  EXPECT_EQ(stats.hits, before.hits + 1);
  EXPECT_EQ(stats.misses, before.misses + 1);
}

TEST(BufferPool, BucketsRoundUpToPowersOfTwo) {
  Device device(DeviceProfile::OpenClCpu());
  EXPECT_EQ(device.AcquireScratch(1)->size(), 256u);    // Min bucket.
  EXPECT_EQ(device.AcquireScratch(256)->size(), 256u);
  EXPECT_EQ(device.AcquireScratch(257)->size(), 512u);
  EXPECT_EQ(device.AcquireScratch(5000)->size(), 8192u);
}

TEST(BufferPool, PoolTrafficIsNeverMetered) {
  Device device(DeviceProfile::OpenClCpu());
  device.ResetLedger();
  for (int round = 0; round < 3; ++round) {
    ScratchBuffer a = device.AcquireScratch(4096);
    ScratchBuffer b = device.AcquireScratch(512);
  }
  device.TrimScratchPool();
  // Acquire/release/trim are host-side bookkeeping: the transfer ledger
  // and the modeled clocks never see them.
  const TransferLedger& ledger = device.ledger();
  EXPECT_EQ(ledger.total_bytes(), 0u);
  EXPECT_EQ(ledger.transfers_to_device, 0u);
  EXPECT_EQ(ledger.transfers_to_host, 0u);
  EXPECT_EQ(ledger.kernel_launches, 0u);
  EXPECT_DOUBLE_EQ(device.ModeledSeconds(), 0.0);
}

TEST(BufferPool, TrimFreesParkedButNotOutstanding) {
  Device device(DeviceProfile::OpenClCpu());
  ScratchBuffer held = device.AcquireScratch(256);
  { ScratchBuffer parked = device.AcquireScratch(256); }
  EXPECT_GT(device.scratch_pool_stats().pooled_bytes, 0u);
  device.TrimScratchPool();
  EXPECT_EQ(device.scratch_pool_stats().pooled_bytes, 0u);
  // The outstanding handle still parks cleanly after the trim.
  held->device_data()[0] = 1.0;
  held.reset();
  EXPECT_GT(device.scratch_pool_stats().pooled_bytes, 0u);
}

TEST(BufferPool, HandlesCapturedByEnqueuedKernelsParkAfterCompletion) {
  Device device(DeviceProfile::OpenClCpu());
  CommandQueue* queue = device.default_queue();
  const BufferPoolStats before = device.scratch_pool_stats();
  Event done;
  {
    ScratchBuffer scratch = device.AcquireScratch(1024);
    double* out = scratch->device_data();
    done = queue->EnqueueLaunch(
        "fill", 1024, 1.0,
        [scratch, out](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) out[i] = 1.0;
          (void)scratch;
        });
  }  // Host handle dropped; the enqueued command still owns the buffer.
  done.Wait();
  queue->Finish();  // Command destruction releases the captured handle.
  const BufferPoolStats after = device.scratch_pool_stats();
  EXPECT_EQ(after.releases, before.releases + 1);
  EXPECT_EQ(after.outstanding, before.outstanding);
}

TEST(BufferPool, ReductionScratchRecyclesAcrossCalls) {
  Device device(DeviceProfile::OpenClCpu());
  const std::size_t n = 10000;
  auto buffer = device.CreateBuffer<double>(n);
  std::vector<double> ones(n, 1.0);
  device.CopyToDevice(ones.data(), n, &buffer);
  EXPECT_DOUBLE_EQ(ReduceSum(&device, buffer, 0, n),
                   static_cast<double>(n));
  device.default_queue()->Finish();
  const BufferPoolStats warm = device.scratch_pool_stats();
  EXPECT_GT(warm.misses, 0u);
  // Steady state: every further reduction of the same shape is served
  // entirely from the pool.
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(ReduceSum(&device, buffer, 0, n),
                     static_cast<double>(n));
  }
  device.default_queue()->Finish();
  const BufferPoolStats stats = device.scratch_pool_stats();
  EXPECT_EQ(stats.misses, warm.misses);
  EXPECT_GT(stats.hits, warm.hits);
}

}  // namespace
}  // namespace fkde
