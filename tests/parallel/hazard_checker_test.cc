// Device-level hazard checker: one deliberately-racy negative test per
// hazard class (RAW, WAR, WAW, use-after-free, use-before-init, leaked
// scratch, unwaited readback) pinning the diagnostics, positive controls
// pinning zero false positives on ordered chains and on the sharded KDE
// hot paths, and regression tests for the DeviceBuffer registry and the
// draining queue destructor.
//
// The racy kernels never touch the buffers they declare: detection is
// static, at enqueue time, so the tests stay clean under TSan while the
// declared access-sets describe a genuine race.

#include "parallel/hazard_checker.h"

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/box.h"
#include "kde/engine.h"
#include "kde/sample.h"
#include "parallel/device.h"
#include "parallel/device_group.h"

namespace fkde {
namespace {

void Nop(std::size_t, std::size_t) {}

std::shared_ptr<HazardChecker> AttachDeferred(Device* device) {
  device->EnableHazardChecking(HazardMode::kDeferred);
  return device->shared_hazard_checker();
}

std::size_t CountKind(const std::vector<HazardReport>& reports,
                      HazardKind kind) {
  std::size_t n = 0;
  for (const HazardReport& r : reports) n += r.kind == kind ? 1 : 0;
  return n;
}

std::string Messages(const std::vector<HazardReport>& reports) {
  std::string all;
  for (const HazardReport& r : reports) all += r.message + "\n";
  return all;
}

// ---------------------------------------------------------------------------
// Negative tests: one per hazard class, each with an actionable diagnostic
// naming the kernels and queues involved.

TEST(HazardNegative, ReadAfterWriteAcrossQueues) {
  Device device(DeviceProfile::OpenClCpu());
  auto checker = AttachDeferred(&device);
  auto buf = device.CreateBuffer<double>(16);
  CommandQueue side(&device);
  const BufferAccess writes[] = {Writes(buf)};
  const BufferAccess reads[] = {Reads(buf)};
  device.default_queue()->EnqueueLaunch("producer", 1, 1.0, Nop, writes);
  // No wait-list edge: the side queue may read while the write runs.
  side.EnqueueLaunch("consumer", 1, 1.0, Nop, reads);
  side.Finish();
  device.default_queue()->Finish();
  const std::vector<HazardReport> reports = checker->Validate();
  ASSERT_EQ(CountKind(reports, HazardKind::kRaw), 1u) << Messages(reports);
  const std::string& msg = Messages(reports);
  EXPECT_NE(msg.find("read-after-write"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'consumer'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'producer'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("queue "), std::string::npos) << msg;
}

TEST(HazardNegative, WriteAfterReadAcrossQueues) {
  Device device(DeviceProfile::OpenClCpu());
  auto checker = AttachDeferred(&device);
  auto buf = device.CreateBuffer<double>(8);
  CommandQueue side(&device);
  const BufferAccess writes[] = {Writes(buf)};
  const BufferAccess reads[] = {Reads(buf)};
  // Init + read are properly ordered; only the second write races the
  // reader, so exactly one WAR (and nothing else) must be reported.
  const Event init = side.EnqueueLaunch("init", 1, 1.0, Nop, writes);
  device.default_queue()->EnqueueLaunch("reader", 1, 1.0, Nop, reads,
                                        std::span<const Event>(&init, 1));
  side.EnqueueLaunch("overwriter", 1, 1.0, Nop, writes);
  side.Finish();
  device.default_queue()->Finish();
  const std::vector<HazardReport> reports = checker->Validate();
  EXPECT_EQ(CountKind(reports, HazardKind::kWar), 1u) << Messages(reports);
  EXPECT_EQ(reports.size(), 1u) << Messages(reports);
  const std::string& msg = Messages(reports);
  EXPECT_NE(msg.find("write-after-read"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'overwriter'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'reader'"), std::string::npos) << msg;
}

TEST(HazardNegative, WriteAfterWriteAcrossQueues) {
  Device device(DeviceProfile::OpenClCpu());
  auto checker = AttachDeferred(&device);
  auto buf = device.CreateBuffer<double>(8);
  CommandQueue side(&device);
  const BufferAccess writes[] = {Writes(buf)};
  device.default_queue()->EnqueueLaunch("writer_a", 1, 1.0, Nop, writes);
  side.EnqueueLaunch("writer_b", 1, 1.0, Nop, writes);
  side.Finish();
  device.default_queue()->Finish();
  const std::vector<HazardReport> reports = checker->Validate();
  EXPECT_EQ(CountKind(reports, HazardKind::kWaw), 1u) << Messages(reports);
  const std::string& msg = Messages(reports);
  EXPECT_NE(msg.find("write-after-write"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'writer_b'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'writer_a'"), std::string::npos) << msg;
}

TEST(HazardNegative, DisjointRangesDoNotRace) {
  Device device(DeviceProfile::OpenClCpu());
  auto checker = AttachDeferred(&device);
  auto buf = device.CreateBuffer<double>(16);
  CommandQueue side(&device);
  // Unordered writes to the two halves: byte-precise tracking must not
  // report a race for disjoint ranges.
  const BufferAccess lo[] = {Writes(buf, 0, 8)};
  const BufferAccess hi[] = {Writes(buf, 8, 8)};
  device.default_queue()->EnqueueLaunch("writer_lo", 1, 1.0, Nop, lo);
  side.EnqueueLaunch("writer_hi", 1, 1.0, Nop, hi);
  side.Finish();
  device.default_queue()->Finish();
  EXPECT_TRUE(checker->Validate().empty())
      << Messages(checker->Validate());
}

TEST(HazardNegative, UseAfterFreeReleaseWhileInFlight) {
  Device device(DeviceProfile::OpenClCpu());
  auto checker = AttachDeferred(&device);
  std::atomic<bool> release{false};
  {
    auto buf = device.CreateBuffer<double>(8);
    const BufferAccess writes[] = {Writes(buf)};
    device.default_queue()->EnqueueLaunch(
        "holder", 1, 1.0,
        [&release](std::size_t, std::size_t) {
          while (!release.load()) std::this_thread::yield();
        },
        writes);
    // `buf` dies here while 'holder' is still in flight.
  }
  release.store(true);
  device.default_queue()->Finish();
  const std::vector<HazardReport> reports = checker->Validate();
  ASSERT_EQ(CountKind(reports, HazardKind::kUseAfterFree), 1u)
      << Messages(reports);
  const std::string& msg = Messages(reports);
  EXPECT_NE(msg.find("use-after-free"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'holder'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("in flight"), std::string::npos) << msg;
}

TEST(HazardNegative, UseAfterFreeStaleDeclaredId) {
  Device device(DeviceProfile::OpenClCpu());
  auto checker = AttachDeferred(&device);
  BufferAccess stale;
  {
    auto buf = device.CreateBuffer<double>(8);
    stale = Writes(buf);
  }
  device.default_queue()->EnqueueLaunch(
      "stale_user", 1, 1.0, Nop, std::span<const BufferAccess>(&stale, 1));
  device.default_queue()->Finish();
  const std::vector<HazardReport> reports = checker->Validate();
  ASSERT_EQ(CountKind(reports, HazardKind::kUseAfterFree), 1u)
      << Messages(reports);
  EXPECT_NE(Messages(reports).find("was already released"),
            std::string::npos)
      << Messages(reports);
}

TEST(HazardNegative, UseBeforeInitialization) {
  Device device(DeviceProfile::OpenClCpu());
  auto checker = AttachDeferred(&device);
  auto buf = device.CreateBuffer<double>(8);
  const BufferAccess reads[] = {Reads(buf)};
  device.default_queue()->EnqueueLaunch("eager_reader", 1, 1.0, Nop, reads);
  device.default_queue()->Finish();
  const std::vector<HazardReport> reports = checker->Validate();
  ASSERT_EQ(CountKind(reports, HazardKind::kUseBeforeInit), 1u)
      << Messages(reports);
  const std::string& msg = Messages(reports);
  EXPECT_NE(msg.find("use-before-initialization"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'eager_reader'"), std::string::npos) << msg;
}

TEST(HazardNegative, OpaqueKernelSuppressesUseBeforeInit) {
  Device device(DeviceProfile::OpenClCpu());
  auto checker = AttachDeferred(&device);
  auto buf = device.CreateBuffer<double>(8);
  // An opaque (undeclared) kernel may have produced the data: a read
  // ordered after it is not flagged. This keeps legacy undeclared code
  // checkable without false positives.
  device.default_queue()->EnqueueLaunch("legacy_writer", 1, 1.0, Nop);
  const BufferAccess reads[] = {Reads(buf)};
  device.default_queue()->EnqueueLaunch("reader", 1, 1.0, Nop, reads);
  device.default_queue()->Finish();
  EXPECT_TRUE(checker->Validate().empty())
      << Messages(checker->Validate());
}

TEST(HazardNegative, LeakedScratchParkedWhileInFlight) {
  Device device(DeviceProfile::OpenClCpu());
  auto checker = AttachDeferred(&device);
  std::atomic<bool> release{false};
  {
    ScratchBuffer scratch = device.AcquireScratch(4);
    const BufferAccess writes[] = {Writes(*scratch)};
    // The kernel body does NOT capture the handle — the lifetime
    // discipline of command_queue.h is violated on purpose.
    device.default_queue()->EnqueueLaunch(
        "scratch_user", 1, 1.0,
        [&release](std::size_t, std::size_t) {
          while (!release.load()) std::this_thread::yield();
        },
        writes);
    // Last handle drops here: the buffer parks with 'scratch_user' in
    // flight.
  }
  release.store(true);
  device.default_queue()->Finish();
  const std::vector<HazardReport> reports = checker->Validate();
  ASSERT_EQ(CountKind(reports, HazardKind::kLeakedScratch), 1u)
      << Messages(reports);
  const std::string& msg = Messages(reports);
  EXPECT_NE(msg.find("scratch released in flight"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'scratch_user'"), std::string::npos) << msg;
}

TEST(HazardNegative, UnwaitedReadback) {
  Device device(DeviceProfile::OpenClCpu());
  auto checker = AttachDeferred(&device);
  auto buf = device.CreateBuffer<double>(4);
  const std::vector<double> init = {1.0, 2.0, 3.0, 4.0};
  device.CopyToDevice(init.data(), 4, &buf);
  std::vector<double> staging(4);
  const Event read =
      device.default_queue()->EnqueueCopyToHost(buf, 0, 4, staging.data());
  // Validate before any Wait: the host never observed completion, so the
  // staging bytes may be torn.
  const std::vector<HazardReport> reports = checker->Validate();
  ASSERT_EQ(CountKind(reports, HazardKind::kUnwaitedReadback), 1u)
      << Messages(reports);
  EXPECT_NE(Messages(reports).find("copy_to_host"), std::string::npos)
      << Messages(reports);
  // Waiting covers the readback; Validate is a liveness check, not a
  // sticky report.
  read.Wait();
  EXPECT_TRUE(checker->Validate().empty())
      << Messages(checker->Validate());
}

#if GTEST_HAS_DEATH_TEST
TEST(HazardStrictDeathTest, AbortsAtFirstHazardWithDiagnostic) {
  // The "fast" style forks with live dispatcher threads; re-executing
  // the binary is the only fork-safe option here.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Device device(DeviceProfile::OpenClCpu());
        device.EnableHazardChecking(HazardMode::kStrict);
        auto buf = device.CreateBuffer<double>(8);
        CommandQueue side(&device);
        const BufferAccess writes[] = {Writes(buf)};
        device.default_queue()->EnqueueLaunch("writer_a", 1, 1.0, Nop,
                                              writes);
        side.EnqueueLaunch("writer_b", 1, 1.0, Nop, writes);
      },
      "write-after-write race");
}
#endif

// ---------------------------------------------------------------------------
// Positive controls: properly ordered chains and the real sharded KDE hot
// paths must validate clean (no false positives).

TEST(HazardPositive, OrderedCrossQueueChainIsClean) {
  Device device(DeviceProfile::OpenClCpu());
  auto checker = AttachDeferred(&device);
  auto buf = device.CreateBuffer<double>(8);
  CommandQueue side(&device);
  const BufferAccess writes[] = {Writes(buf)};
  const BufferAccess reads[] = {Reads(buf)};
  const Event w1 =
      device.default_queue()->EnqueueLaunch("w1", 1, 1.0, Nop, writes);
  const Event r = side.EnqueueLaunch("r", 1, 1.0, Nop, reads,
                                     std::span<const Event>(&w1, 1));
  device.default_queue()->EnqueueLaunch("w2", 1, 1.0, Nop, writes,
                                        std::span<const Event>(&r, 1));
  device.default_queue()->Finish();
  side.Finish();
  EXPECT_TRUE(checker->Validate().empty())
      << Messages(checker->Validate());
}

TEST(HazardPositive, EnvToggleAttachesStrictChecker) {
  const char* ambient = std::getenv("HAZARD_STRICT");
  const std::string saved = ambient != nullptr ? ambient : "";
  ASSERT_EQ(setenv("HAZARD_STRICT", "1", /*overwrite=*/1), 0);
  {
    Device strict_device(DeviceProfile::OpenClCpu());
    ASSERT_NE(strict_device.hazard_checker(), nullptr);
    EXPECT_EQ(strict_device.hazard_checker()->mode(), HazardMode::kStrict);
  }
  ASSERT_EQ(setenv("HAZARD_STRICT", "0", /*overwrite=*/1), 0);
  {
    Device off_device(DeviceProfile::OpenClCpu());
    EXPECT_EQ(off_device.hazard_checker(), nullptr);
  }
  // Restore the ambient value: a CI-wide HAZARD_STRICT=1 run must keep
  // covering the tests that follow in this binary.
  if (ambient != nullptr) {
    ASSERT_EQ(setenv("HAZARD_STRICT", saved.c_str(), /*overwrite=*/1), 0);
  } else {
    unsetenv("HAZARD_STRICT");
  }
}

TEST(HazardPositive, ShardedBatchGradientValidatesClean) {
  constexpr std::size_t kRows = 256;
  constexpr std::size_t kDims = 3;
  constexpr std::size_t kQueries = 9;
  for (const char* topology : {"cpu+gpu", "gpu+gpu"}) {
    SCOPED_TRACE(topology);
    DeviceGroupOptions options;
    options.hazard_mode = HazardMode::kDeferred;
    DeviceGroup group(ParseDeviceTopology(topology).ValueOrDie(),
                      std::move(options));
    ASSERT_NE(group.hazard_checker(), nullptr);
    DeviceSample sample(&group, kRows, kDims);
    std::vector<double> rows(kRows * kDims);
    Rng rng(7);
    for (double& v : rows) v = rng.Uniform();
    FKDE_CHECK_OK(sample.LoadRows(rows, kRows));
    KdeEngine engine(&sample, KernelType::kGaussian);

    std::vector<Box> boxes;
    for (std::size_t q = 0; q < kQueries; ++q) {
      std::vector<double> lo(kDims), hi(kDims);
      for (std::size_t j = 0; j < kDims; ++j) {
        const double a = rng.Uniform();
        const double b = rng.Uniform();
        lo[j] = std::min(a, b);
        hi[j] = std::max(a, b);
      }
      boxes.emplace_back(std::move(lo), std::move(hi));
    }
    std::vector<double> estimates(kQueries);
    std::vector<double> gradients(kQueries * kDims);
    engine.EstimateBatchWithGradient(boxes, estimates, gradients);
    // The single-query paths ride the same command DAG.
    std::vector<double> gradient;
    engine.EstimateWithGradient(boxes.front(), &gradient);
    engine.Estimate(boxes.back());

    const std::vector<HazardReport> reports =
        group.hazard_checker()->Validate();
    EXPECT_TRUE(reports.empty()) << Messages(reports);
  }
}

// ---------------------------------------------------------------------------
// Satellite regressions: DeviceBuffer move semantics against the global
// registry, and the draining queue destructor.

// ---------------------------------------------------------------------------
// Regression: the scott_moments view surface (found by fkde-lint's
// access-set check). The moments kernel received a ShardKernelView
// packing a `bandwidth_dev` pointer its declared access set omitted —
// undeclared accesses are invisible here: the checker reasons only over
// declared sets, so had the kernel dereferenced that pointer, a
// concurrent bandwidth write would have raced it silently. The fix
// trims the view (KdeEngine::MomentsView packs only the sample buffers
// kb::Moments reads — the bandwidth the moments *derive* is not even
// initialized yet; declaring the read instead trips use-before-init).
// The pair below pins both halves of why the static rule exists: an
// undeclared surface is invisible, a declared one is ordered.

TEST(HazardRegression, UndeclaredViewPointerHidesBandwidthRace) {
  Device device(DeviceProfile::OpenClCpu());
  auto checker = AttachDeferred(&device);
  auto moments = device.CreateBuffer<double>(32);
  auto bandwidth = device.CreateBuffer<double>(4);
  CommandQueue side(&device);
  // The pre-fix shape: only the output declared, not the view-packed
  // pointer the kernel could have read.
  const BufferAccess undeclared[] = {Writes(moments)};
  const BufferAccess bw_writes[] = {Writes(bandwidth)};
  device.default_queue()->EnqueueLaunch("scott_moments", 1, 1.0, Nop,
                                        undeclared);
  side.EnqueueLaunch("bandwidth_update", 1, 1.0, Nop, bw_writes);
  side.Finish();
  device.default_queue()->Finish();
  // A genuine race, but no report: declared sets are the checker's whole
  // world. fkde-lint's access-set check closes this gap statically.
  EXPECT_TRUE(checker->Validate().empty());
}

TEST(HazardRegression, DeclaredViewPointerOrdersBandwidthRace) {
  Device device(DeviceProfile::OpenClCpu());
  auto checker = AttachDeferred(&device);
  auto moments = device.CreateBuffer<double>(32);
  auto bandwidth = device.CreateBuffer<double>(4);
  CommandQueue side(&device);
  // The declared shape: with the read in the access set, the same
  // concurrent write is detected and reported.
  const BufferAccess declared[] = {Writes(moments), Reads(bandwidth)};
  const BufferAccess bw_writes[] = {Writes(bandwidth)};
  device.default_queue()->EnqueueLaunch("scott_moments", 1, 1.0, Nop,
                                        declared);
  side.EnqueueLaunch("bandwidth_update", 1, 1.0, Nop, bw_writes);
  side.Finish();
  device.default_queue()->Finish();
  const std::vector<HazardReport> reports = checker->Validate();
  ASSERT_EQ(CountKind(reports, HazardKind::kWar), 1u) << Messages(reports);
  const std::string& msg = Messages(reports);
  EXPECT_NE(msg.find("'scott_moments'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("'bandwidth_update'"), std::string::npos) << msg;
}

TEST(BufferRegistry, MoveAssignReleasesMovedOverRegistration) {
  Device device(DeviceProfile::OpenClCpu());
  auto a = device.CreateBuffer<double>(4);
  auto b = device.CreateBuffer<double>(8);
  const std::uint64_t id_a = a.buffer_id();
  const std::uint64_t id_b = b.buffer_id();
  ASSERT_NE(id_a, 0u);
  ASSERT_NE(id_b, 0u);
  internal::BufferRegistry& registry = internal::BufferRegistry::Global();
  EXPECT_TRUE(registry.Lookup(id_a, nullptr));

  a = std::move(b);
  // The moved-over allocation's registration is gone; the adopted one
  // lives on under its original id; the moved-from buffer is empty.
  EXPECT_FALSE(registry.Lookup(id_a, nullptr));
  std::size_t bytes = 0;
  EXPECT_TRUE(registry.Lookup(id_b, &bytes));
  EXPECT_EQ(bytes, 8 * sizeof(double));
  EXPECT_EQ(a.buffer_id(), id_b);
  EXPECT_EQ(b.buffer_id(), 0u);

  DeviceBuffer<double> c(std::move(a));
  EXPECT_EQ(c.buffer_id(), id_b);
  EXPECT_EQ(a.buffer_id(), 0u);
  EXPECT_TRUE(registry.Lookup(id_b, nullptr));
}

TEST(CommandQueueDtor, DrainsAndBooksModeledTime) {
  DeviceProfile profile;
  profile.launch_latency_s = 1e-3;
  profile.compute_throughput = 1e6;  // 1000 items -> 1 ms compute.
  Device device(profile);
  std::atomic<bool> ran{false};
  {
    CommandQueue queue(&device);
    queue.EnqueueLaunch("tail", 1000, 1.0,
                        [&ran](std::size_t, std::size_t) { ran.store(true); });
    // The destructor must Finish(): drain the command and stall the host
    // clock to its modeled end before joining the dispatcher.
  }
  EXPECT_TRUE(ran.load());
  EXPECT_NEAR(device.ModeledSeconds(), 2e-3, 1e-9);
}

}  // namespace
}  // namespace fkde
