#include "parallel/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace fkde {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, 64, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, 1, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SmallRangeRunsInline) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id executed;
  pool.ParallelFor(10, 1024, [&](std::size_t, std::size_t) {
    executed = std::this_thread::get_id();
  });
  EXPECT_EQ(executed, caller);
}

TEST(ThreadPool, SumReductionCorrect) {
  ThreadPool pool(8);
  const std::size_t n = 1000000;
  std::atomic<long long> total{0};
  pool.ParallelFor(n, 1000, [&](std::size_t begin, std::size_t end) {
    long long local = 0;
    for (std::size_t i = begin; i < end; ++i) {
      local += static_cast<long long>(i);
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(),
            static_cast<long long>(n) * (static_cast<long long>(n) - 1) / 2);
}

TEST(ThreadPool, RunsChunksConcurrently) {
  ThreadPool pool(4);
  // Each chunk parks until at least two chunks are inside the body (or a
  // timeout passes); if the pool were serial this would always time out.
  std::atomic<int> inside{0};
  std::atomic<bool> overlapped{false};
  pool.ParallelFor(1 << 16, 1024, [&](std::size_t, std::size_t) {
    inside.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(200);
    while (std::chrono::steady_clock::now() < deadline) {
      if (inside.load() >= 2) {
        overlapped.store(true);
        break;
      }
      std::this_thread::yield();
    }
    inside.fetch_sub(1);
  });
  EXPECT_TRUE(overlapped.load());
}

TEST(ThreadPool, SequentialCallsReuseWorkers) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.ParallelFor(10000, 100, [&](std::size_t begin, std::size_t end) {
      count.fetch_add(static_cast<int>(end - begin));
    });
    ASSERT_EQ(count.load(), 10000);
  }
}

TEST(ThreadPool, CompletionPathStress) {
  // Regression guard for a use-after-free on ParallelFor's stack-allocated
  // completion mutex: the final worker must publish completion UNDER the
  // mutex, or the waiter can destroy it mid-notify. Hammer the completion
  // handshake with many tiny multi-chunk dispatches.
  ThreadPool pool(4);
  for (int round = 0; round < 3000; ++round) {
    std::atomic<int> count{0};
    // n and grain chosen so every dispatch takes the multi-chunk path
    // with near-empty bodies (maximal pressure on the handshake).
    pool.ParallelFor(8, 1, [&](std::size_t begin, std::size_t end) {
      count.fetch_add(static_cast<int>(end - begin),
                      std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 8);
  }
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::Global(), &ThreadPool::Global());
  EXPECT_GE(ThreadPool::Global().num_threads(), 1u);
}

TEST(ThreadPool, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

}  // namespace
}  // namespace fkde
