#include "parallel/device.h"

#include <numeric>
#include <type_traits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fkde {
namespace {

// DeviceBuffer models a device allocation: copying one would duplicate
// "device memory" without a metered transfer, so it is move-only.
static_assert(!std::is_copy_constructible_v<DeviceBuffer<float>>);
static_assert(!std::is_copy_assignable_v<DeviceBuffer<float>>);
static_assert(std::is_nothrow_move_constructible_v<DeviceBuffer<double>>);
static_assert(std::is_nothrow_move_assignable_v<DeviceBuffer<double>>);

TEST(Device, RoundTripTransfer) {
  Device device(DeviceProfile::OpenClCpu());
  auto buffer = device.CreateBuffer<float>(100);
  std::vector<float> in(100);
  std::iota(in.begin(), in.end(), 0.0f);
  device.CopyToDevice(in.data(), in.size(), &buffer);
  std::vector<float> out(100);
  device.CopyToHost(buffer, 0, 100, out.data());
  EXPECT_EQ(in, out);
}

TEST(Device, PartialTransferWithOffset) {
  Device device(DeviceProfile::OpenClCpu());
  auto buffer = device.CreateBuffer<double>(10);
  const std::vector<double> zeros(10, 0.0);
  device.CopyToDevice(zeros.data(), 10, &buffer);
  const double value = 42.0;
  device.CopyToDevice(&value, 1, &buffer, 3);
  std::vector<double> out(10);
  device.CopyToHost(buffer, 0, 10, out.data());
  EXPECT_DOUBLE_EQ(out[3], 42.0);
  EXPECT_DOUBLE_EQ(out[2], 0.0);
}

TEST(Device, LedgerCountsBytesAndTransfers) {
  Device device(DeviceProfile::OpenClCpu());
  auto buffer = device.CreateBuffer<float>(256);
  std::vector<float> data(256, 1.0f);
  device.CopyToDevice(data.data(), 256, &buffer);
  device.CopyToHost(buffer, 0, 16, data.data());
  const TransferLedger& ledger = device.ledger();
  EXPECT_EQ(ledger.transfers_to_device, 1u);
  EXPECT_EQ(ledger.transfers_to_host, 1u);
  EXPECT_EQ(ledger.bytes_to_device, 256u * sizeof(float));
  EXPECT_EQ(ledger.bytes_to_host, 16u * sizeof(float));
  EXPECT_EQ(ledger.total_bytes(), (256u + 16u) * sizeof(float));
  device.ResetLedger();
  EXPECT_EQ(device.ledger().total_bytes(), 0u);
}

TEST(Device, LaunchExecutesKernelBody) {
  Device device(DeviceProfile::OpenClCpu());
  auto buffer = device.CreateBuffer<double>(1000);
  double* data = buffer.device_data();
  device.Launch("fill", 1000, 1.0, [data](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      data[i] = static_cast<double>(i) * 2.0;
    }
  });
  std::vector<double> out(1000);
  device.CopyToHost(buffer, 0, 1000, out.data());
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[999], 1998.0);
  EXPECT_EQ(device.ledger().kernel_launches, 1u);
}

TEST(Device, ModeledTimeAccumulatesLaunchAndCompute) {
  DeviceProfile profile;
  profile.launch_latency_s = 1e-3;
  profile.transfer_latency_s = 0.0;
  profile.transfer_bandwidth = 1e18;
  profile.compute_throughput = 1e6;  // 1M ops/s.
  Device device(profile);
  device.Launch("noop", 1000, 1.0, [](std::size_t, std::size_t) {});
  // 1 ms launch + 1000 ops / 1e6 ops/s = 1 ms -> 2 ms total.
  EXPECT_NEAR(device.ModeledSeconds(), 2e-3, 1e-9);
  device.ResetModeledTime();
  EXPECT_DOUBLE_EQ(device.ModeledSeconds(), 0.0);
}

TEST(Device, EnqueuedLaunchHidesBehindExternalHostWork) {
  DeviceProfile profile;
  profile.launch_latency_s = 1e-3;
  profile.compute_throughput = 1.0;  // Absurdly slow: compute would be huge.
  Device device(profile);
  const Event event = device.default_queue()->EnqueueLaunch(
      "hidden", 1000000, 1.0, [](std::size_t, std::size_t) {});
  // Only the submission latency has been charged so far.
  EXPECT_NEAR(device.ModeledSeconds(), 1e-3, 1e-9);
  // The "database" executes the query while the device crunches; by the
  // time the host collects the event, the compute has long finished on
  // the modeled timeline — no stall.
  device.AdvanceHostTime(2e6);
  event.Wait();
  EXPECT_NEAR(device.ModeledSeconds(), 1e-3, 1e-9);
  EXPECT_DOUBLE_EQ(device.HostStallSeconds(), 0.0);
  // The device itself was busy for the full modeled compute duration.
  EXPECT_NEAR(device.DeviceBusySeconds(), 1e6, 1.0);
}

TEST(Device, WaitChargesTheUnhiddenRemainderAsStall) {
  DeviceProfile profile;
  profile.launch_latency_s = 1e-3;
  profile.compute_throughput = 1e6;  // 1000 items -> 1 ms of compute.
  Device device(profile);
  const Event event = device.default_queue()->EnqueueLaunch(
      "partially_hidden", 1000, 1.0, [](std::size_t, std::size_t) {});
  // Half the compute is covered by external work; the rest stalls.
  device.AdvanceHostTime(0.5e-3);
  event.Wait();
  // 1 ms latency + 0.5 ms stall (external time itself is excluded).
  EXPECT_NEAR(device.ModeledSeconds(), 1.5e-3, 1e-9);
  EXPECT_NEAR(device.HostStallSeconds(), 0.5e-3, 1e-9);
}

TEST(Device, BlockingLaunchChargesLatencyPlusFullCompute) {
  DeviceProfile profile;
  profile.launch_latency_s = 1e-3;
  profile.compute_throughput = 1e6;
  Device device(profile);
  // Blocking Launch is exactly enqueue + Wait: the whole compute lands on
  // the host timeline as a stall.
  device.Launch("sync", 1000, 1.0, [](std::size_t, std::size_t) {});
  EXPECT_NEAR(device.ModeledSeconds(), 2e-3, 1e-9);
  EXPECT_NEAR(device.HostStallSeconds(), 1e-3, 1e-9);
}

TEST(Device, ZeroLengthTransfersAreFreeAndUnmetered) {
  Device device(DeviceProfile::OpenClCpu());
  auto buffer = device.CreateBuffer<double>(8);
  double dummy = 0.0;
  device.ResetLedger();
  device.ResetModeledTime();
  device.CopyToDevice(&dummy, 0, &buffer);
  device.CopyToDevice(&dummy, 0, &buffer, /*offset=*/8);  // At-end no-op.
  device.CopyToHost(buffer, 0, 0, &dummy);
  EXPECT_FALSE(device.default_queue()
                   ->EnqueueCopyToHost(buffer, 4, 0, &dummy)
                   .valid());
  const TransferLedger& ledger = device.ledger();
  EXPECT_EQ(ledger.transfers_to_device, 0u);
  EXPECT_EQ(ledger.transfers_to_host, 0u);
  EXPECT_EQ(ledger.total_bytes(), 0u);
  EXPECT_DOUBLE_EQ(device.ModeledSeconds(), 0.0);
}

TEST(DeviceBuffer, MoveKeepsStoragePointerStable) {
  Device device(DeviceProfile::OpenClCpu());
  auto buffer = device.CreateBuffer<double>(64);
  const double* data = buffer.device_data();
  DeviceBuffer<double> moved = std::move(buffer);
  EXPECT_EQ(moved.device_data(), data);
  EXPECT_EQ(moved.size(), 64u);
}

TEST(Device, TransferTimeUsesBandwidth) {
  DeviceProfile profile;
  profile.transfer_latency_s = 1e-4;
  profile.transfer_bandwidth = 1e6;  // 1 MB/s.
  Device device(profile);
  auto buffer = device.CreateBuffer<std::uint8_t>(1000000);
  std::vector<std::uint8_t> data(1000000, 0);
  device.CopyToDevice(data.data(), data.size(), &buffer);
  EXPECT_NEAR(device.ModeledSeconds(), 1.0 + 1e-4, 1e-6);
}

TEST(Device, GpuProfileFasterComputeSlowerLatency) {
  const DeviceProfile cpu = DeviceProfile::OpenClCpu();
  const DeviceProfile gpu = DeviceProfile::SimulatedGtx460();
  EXPECT_GT(gpu.compute_throughput, 3.5 * cpu.compute_throughput);
  EXPECT_LT(gpu.compute_throughput, 4.5 * cpu.compute_throughput);
  EXPECT_GT(gpu.transfer_latency_s, cpu.transfer_latency_s);
}

// ---------------------------------------------------------------------------
// ReduceSum, parameterized across sizes including group-size boundaries.
// ---------------------------------------------------------------------------

class ReduceSumSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReduceSumSweep, MatchesSequentialSum) {
  const std::size_t n = GetParam();
  Device device(DeviceProfile::OpenClCpu());
  auto buffer = device.CreateBuffer<double>(std::max<std::size_t>(n, 1));
  Rng rng(n + 1);
  std::vector<double> values(n);
  double expected = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = rng.Uniform(-1.0, 1.0);
    expected += values[i];
  }
  if (n > 0) device.CopyToDevice(values.data(), n, &buffer);
  const double sum = ReduceSum(&device, buffer, 0, n);
  EXPECT_NEAR(sum, expected, 1e-9 * std::max(1.0, std::abs(expected)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReduceSumSweep,
                         ::testing::Values(0, 1, 2, 255, 256, 257, 1000,
                                           65536, 65537, 200000));

TEST(ReduceSum, DoesNotClobberInput) {
  Device device(DeviceProfile::OpenClCpu());
  const std::size_t n = 10000;
  auto buffer = device.CreateBuffer<double>(n);
  std::vector<double> values(n, 1.0);
  device.CopyToDevice(values.data(), n, &buffer);
  (void)ReduceSum(&device, buffer, 0, n);
  std::vector<double> after(n);
  device.CopyToHost(buffer, 0, n, after.data());
  EXPECT_EQ(after, values);
}

TEST(ReduceSum, RespectsOffset) {
  Device device(DeviceProfile::OpenClCpu());
  auto buffer = device.CreateBuffer<double>(2000);
  std::vector<double> values(2000);
  for (std::size_t i = 0; i < 2000; ++i) values[i] = (i < 1000) ? 100.0 : 1.0;
  device.CopyToDevice(values.data(), 2000, &buffer);
  EXPECT_DOUBLE_EQ(ReduceSum(&device, buffer, 1000, 1000), 1000.0);
  EXPECT_DOUBLE_EQ(ReduceSum(&device, buffer, 0, 1000), 100000.0);
}

// ---------------------------------------------------------------------------
// ReduceSumSegments: the batched (multi-segment) reduction primitive.
// ---------------------------------------------------------------------------

struct SegmentedCase {
  std::size_t segment_size;
  std::size_t num_segments;
};

class ReduceSegmentsSweep : public ::testing::TestWithParam<SegmentedCase> {};

TEST_P(ReduceSegmentsSweep, MatchesPerSegmentReduceSumBitwise) {
  const SegmentedCase param = GetParam();
  const std::size_t n = param.segment_size * param.num_segments;
  Device device(DeviceProfile::OpenClCpu());
  auto buffer = device.CreateBuffer<double>(std::max<std::size_t>(n, 1));
  Rng rng(n + 3 * param.num_segments + 1);
  std::vector<double> values(n);
  for (double& v : values) v = rng.Uniform(-1.0, 1.0);
  if (n > 0) device.CopyToDevice(values.data(), n, &buffer);

  auto out = device.CreateBuffer<double>(param.num_segments);
  ReduceSumSegments(&device, buffer, 0, param.segment_size,
                    param.num_segments, &out);
  std::vector<double> sums(param.num_segments);
  device.CopyToHost(out, 0, param.num_segments, sums.data());
  for (std::size_t seg = 0; seg < param.num_segments; ++seg) {
    // Bit-identical to a standalone ReduceSum over the same segment: both
    // fold through the same 256-wide group tree.
    const double expected = ReduceSum(&device, buffer,
                                      seg * param.segment_size,
                                      param.segment_size);
    EXPECT_EQ(sums[seg], expected) << "segment " << seg;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ReduceSegmentsSweep,
    ::testing::Values(SegmentedCase{0, 4}, SegmentedCase{1, 1},
                      SegmentedCase{1, 7}, SegmentedCase{255, 3},
                      SegmentedCase{256, 3}, SegmentedCase{257, 3},
                      SegmentedCase{1000, 10}, SegmentedCase{65537, 2}));

TEST(ReduceSumSegments, LaunchCountIndependentOfSegmentCount) {
  Device device(DeviceProfile::OpenClCpu());
  const std::size_t segment_size = 70000;  // Three reduction levels.
  for (std::size_t num_segments : {1ul, 4ul, 32ul}) {
    auto buffer = device.CreateBuffer<double>(segment_size * num_segments);
    std::vector<double> values(segment_size * num_segments, 1.0);
    device.CopyToDevice(values.data(), values.size(), &buffer);
    auto out = device.CreateBuffer<double>(num_segments);
    device.ResetLedger();
    ReduceSumSegments(&device, buffer, 0, segment_size, num_segments, &out);
    EXPECT_EQ(device.ledger().kernel_launches, 3u)
        << num_segments << " segments";
  }
}

TEST(ReduceSumSegments, DoesNotClobberInputAndRespectsOutOffset) {
  Device device(DeviceProfile::OpenClCpu());
  const std::size_t n = 4 * 1000;
  auto buffer = device.CreateBuffer<double>(n);
  std::vector<double> values(n, 0.5);
  device.CopyToDevice(values.data(), n, &buffer);
  auto out = device.CreateBuffer<double>(6);
  const std::vector<double> sentinel = {-1.0, -1.0, -1.0, -1.0, -1.0, -1.0};
  device.CopyToDevice(sentinel.data(), 6, &out);
  ReduceSumSegments(&device, buffer, 0, 1000, 4, &out, /*out_offset=*/2);
  std::vector<double> after(n);
  device.CopyToHost(buffer, 0, n, after.data());
  EXPECT_EQ(after, values);
  std::vector<double> sums(6);
  device.CopyToHost(out, 0, 6, sums.data());
  EXPECT_DOUBLE_EQ(sums[0], -1.0);
  EXPECT_DOUBLE_EQ(sums[1], -1.0);
  for (std::size_t seg = 0; seg < 4; ++seg) {
    EXPECT_DOUBLE_EQ(sums[2 + seg], 500.0);
  }
}

TEST(ReduceSumSegments, EnqueuedLevelsHideBehindExternalWork) {
  DeviceProfile profile;
  profile.launch_latency_s = 1e-3;
  profile.transfer_latency_s = 0.0;
  profile.transfer_bandwidth = 1e18;
  profile.compute_throughput = 1.0;  // Compute would dominate if waited on.
  Device device(profile);
  const std::size_t n = 8 * 65536;
  auto buffer = device.CreateBuffer<double>(n);
  std::vector<double> values(n, 1.0);
  device.CopyToDevice(values.data(), n, &buffer);
  auto out = device.CreateBuffer<double>(8);
  device.ResetModeledTime();
  const Event last = EnqueueReduceSumSegments(device.default_queue(), buffer,
                                              0, 65536, 8, &out);
  // 2 levels (65536 -> 256 -> 1): only the two submission latencies have
  // hit the host timeline; the (enormous) compute runs on the device
  // clock and hides behind the external work below.
  EXPECT_NEAR(device.ModeledSeconds(), 2e-3, 1e-6);
  device.AdvanceHostTime(1e7);
  last.Wait();
  EXPECT_NEAR(device.ModeledSeconds(), 2e-3, 1e-6);
  EXPECT_DOUBLE_EQ(device.HostStallSeconds(), 0.0);
}

TEST(ReduceSumSegments, EventChainsAcrossDependentCommands) {
  DeviceProfile profile;
  profile.launch_latency_s = 1e-3;
  profile.transfer_latency_s = 0.0;
  profile.transfer_bandwidth = 1e18;
  profile.compute_throughput = 1e6;
  Device device(profile);
  const std::size_t n = 512;  // One reduction level of 2 groups.
  auto buffer = device.CreateBuffer<double>(n);
  std::vector<double> values(n, 2.0);
  device.CopyToDevice(values.data(), n, &buffer);
  auto out = device.CreateBuffer<double>(1);
  device.ResetModeledTime();
  CommandQueue* queue = device.default_queue();
  const Event reduced =
      EnqueueReduceSumSegments(queue, buffer, 0, n, 1, &out);
  // A read-back that waits on the reduction via its event: the in-order
  // queue already sequences it, and the wait-list folds the reduction's
  // modeled end into the transfer's start.
  double sum = 0.0;
  const Event read = queue->EnqueueCopyToHost(
      out, 0, 1, &sum, std::span<const Event>(&reduced, 1));
  EXPECT_GE(read.modeled_end_seconds(), reduced.modeled_end_seconds());
  read.Wait();
  EXPECT_DOUBLE_EQ(sum, 1024.0);
}

}  // namespace
}  // namespace fkde
