#include "parallel/device_group.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace fkde {
namespace {

TEST(DeviceGroup, ParsesTopologySpecs) {
  const std::vector<DeviceProfile> single =
      ParseDeviceTopology("gpu").ValueOrDie();
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].compute_throughput,
            DeviceProfile::SimulatedGtx460().compute_throughput);

  const std::vector<DeviceProfile> mixed =
      ParseDeviceTopology("cpu+gpu").ValueOrDie();
  ASSERT_EQ(mixed.size(), 2u);
  EXPECT_EQ(mixed[0].compute_throughput,
            DeviceProfile::OpenClCpu().compute_throughput);
  EXPECT_EQ(mixed[1].compute_throughput,
            DeviceProfile::SimulatedGtx460().compute_throughput);

  EXPECT_EQ(ParseDeviceTopology("gpu+gpu").ValueOrDie().size(), 2u);
  EXPECT_FALSE(ParseDeviceTopology("tpu").ok());
  EXPECT_FALSE(ParseDeviceTopology("").ok());
  EXPECT_FALSE(ParseDeviceTopology("cpu+").ok());
}

TEST(DeviceGroup, InitialWeightsFollowModeledThroughput) {
  DeviceGroup group(ParseDeviceTopology("cpu+gpu").ValueOrDie());
  ASSERT_EQ(group.size(), 2u);
  const std::vector<double> weights = group.InitialWeights();
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_NEAR(weights[0] + weights[1], 1.0, 1e-12);
  const double cpu = DeviceProfile::OpenClCpu().compute_throughput;
  const double gpu = DeviceProfile::SimulatedGtx460().compute_throughput;
  EXPECT_NEAR(weights[1] / weights[0], gpu / cpu, 1e-9);
}

TEST(DeviceGroup, ExplicitInitialWeightsOverrideProfiles) {
  DeviceGroupOptions options;
  options.initial_weights = {3.0, 1.0};
  DeviceGroup group(ParseDeviceTopology("gpu+gpu").ValueOrDie(), options);
  const std::vector<double> weights = group.InitialWeights();
  EXPECT_NEAR(weights[0], 0.75, 1e-12);
  EXPECT_NEAR(weights[1], 0.25, 1e-12);
}

TEST(DeviceGroup, MemberDevicesRunIndependentQueues) {
  DeviceGroup group(ParseDeviceTopology("gpu+gpu").ValueOrDie());
  // Identical work on both members submitted back-to-back: each runs on
  // its own queue, so the group cost is the max, not the sum.
  std::vector<Event> events;
  for (std::size_t i = 0; i < group.size(); ++i) {
    events.push_back(group.device(i)->default_queue()->EnqueueLaunch(
        "work", 1 << 16, 16.0, [](std::size_t, std::size_t) {}));
  }
  for (Event& e : events) e.Wait();
  const double d0 = group.device(0)->ModeledSeconds();
  const double d1 = group.device(1)->ModeledSeconds();
  EXPECT_GT(d0, 0.0);
  EXPECT_GT(d1, 0.0);
  const double group_cost = group.MaxModeledSeconds();
  EXPECT_LT(group_cost, d0 + d1);
  EXPECT_GE(group_cost + 1e-15, std::max(d0, d1));
}

TEST(DeviceGroup, AggregateLedgerSumsMembers) {
  DeviceGroup group(ParseDeviceTopology("cpu+gpu").ValueOrDie());
  std::vector<double> payload(100, 1.0);
  auto b0 = group.device(0)->CreateBuffer<double>(100);
  auto b1 = group.device(1)->CreateBuffer<double>(50);
  group.device(0)->CopyToDevice(payload.data(), 100, &b0);
  group.device(1)->CopyToDevice(payload.data(), 50, &b1);
  const TransferLedger total = group.AggregateLedger();
  EXPECT_EQ(total.transfers_to_device, 2u);
  EXPECT_EQ(total.bytes_to_device, 150u * sizeof(double));
  group.ResetLedger();
  EXPECT_EQ(group.AggregateLedger().total_bytes(), 0u);
}

TEST(DeviceGroup, AdvanceHostTimeCoversAllMembers) {
  DeviceGroup group(ParseDeviceTopology("gpu+gpu").ValueOrDie());
  // Enqueue work on both devices, advance external time past both, then
  // wait: no member should stall.
  std::vector<Event> events;
  for (std::size_t i = 0; i < group.size(); ++i) {
    events.push_back(group.device(i)->default_queue()->EnqueueLaunch(
        "work", 1024, 4.0, [](std::size_t, std::size_t) {}));
  }
  group.AdvanceHostTime(1.0);  // Far beyond the enqueued work.
  for (Event& e : events) e.Wait();
  EXPECT_DOUBLE_EQ(group.TotalHostStallSeconds(), 0.0);
  group.ResetModeledTime();
  EXPECT_DOUBLE_EQ(group.MaxModeledSeconds(), 0.0);
}

TEST(DeviceGroup, AggregateQueueStatsFoldsMemberQueues) {
  DeviceGroup group(ParseDeviceTopology("gpu+gpu").ValueOrDie());
  // Unbalanced load: 3 commands on member 0, 1 on member 1. Totals sum
  // across queues; the depth high-water is the max of the members.
  for (int i = 0; i < 3; ++i) {
    (void)group.device(0)->default_queue()->EnqueueLaunch(
        "a", 16, 1.0, [](std::size_t, std::size_t) {});
  }
  (void)group.device(1)->default_queue()->EnqueueLaunch(
      "b", 16, 1.0, [](std::size_t, std::size_t) {});
  group.device(0)->default_queue()->Finish();
  group.device(1)->default_queue()->Finish();

  const CommandQueueStats folded = group.AggregateQueueStats();
  EXPECT_EQ(folded.total_commands, 4u);
  EXPECT_EQ(folded.pending, 0u);
  EXPECT_EQ(folded.depth_high_water,
            std::max(group.device(0)->queue_stats().depth_high_water,
                     group.device(1)->queue_stats().depth_high_water));
  EXPECT_GE(folded.dispatcher_wait_s,
            group.device(0)->queue_stats().dispatcher_wait_s);
}

}  // namespace
}  // namespace fkde
