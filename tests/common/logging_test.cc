#include "common/logging.h"

#include <gtest/gtest.h>

#include "common/status.h"

namespace fkde {
namespace {

TEST(Check, PassingConditionIsSilent) {
  FKDE_CHECK(1 + 1 == 2);
  FKDE_CHECK_MSG(true, "never shown");
  FKDE_CHECK_OK(Status::OK());
  SUCCEED();
}

TEST(CheckDeath, FailingConditionAborts) {
  EXPECT_DEATH(FKDE_CHECK(1 == 2), "1 == 2");
}

TEST(CheckDeath, MessageIsIncluded) {
  EXPECT_DEATH(FKDE_CHECK_MSG(false, "buffer overrun detected"),
               "buffer overrun detected");
}

TEST(CheckDeath, StatusMessageIsIncluded) {
  EXPECT_DEATH(FKDE_CHECK_OK(Status::Internal("disk on fire")),
               "disk on fire");
}

TEST(Dcheck, EnabledMatchesBuildType) {
#ifdef NDEBUG
  FKDE_DCHECK(false);  // Compiled away in release builds.
  SUCCEED();
#else
  EXPECT_DEATH(FKDE_DCHECK(false), "false");
#endif
}

TEST(Log, StreamsToStderr) {
  testing::internal::CaptureStderr();
  FKDE_LOG(INFO) << "built " << 42 << " buckets";
  const std::string output = testing::internal::GetCapturedStderr();
  EXPECT_NE(output.find("[INFO] built 42 buckets"), std::string::npos);
}

}  // namespace
}  // namespace fkde
