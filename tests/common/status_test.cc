#include "common/status.h"

#include <gtest/gtest.h>

namespace fkde {
namespace {

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
  EXPECT_TRUE(status.message().empty());
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status status = Status::InvalidArgument("bad dims");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(status.message(), "bad dims");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad dims");
}

TEST(Status, AllCodePredicates) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
}

TEST(Status, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
}

TEST(Result, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie(), 42);
  EXPECT_TRUE(result.status().ok());
  EXPECT_EQ(result.ValueOr(-1), 42);
}

TEST(Result, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.ValueOr(-1), -1);
}

TEST(Result, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  const std::string moved = result.MoveValueOrDie();
  EXPECT_EQ(moved, "payload");
}

Status FailThrough() { return Status::Internal("inner"); }

Status Propagates() {
  FKDE_RETURN_NOT_OK(FailThrough());
  return Status::OK();
}

TEST(Macros, ReturnNotOkPropagates) {
  EXPECT_TRUE(Propagates().IsInternal());
}

Result<int> ProduceValue(bool fail) {
  if (fail) return Status::OutOfRange("nope");
  return 7;
}

Status ConsumeValue(bool fail, int* out) {
  FKDE_ASSIGN_OR_RETURN(const int value, ProduceValue(fail));
  *out = value;
  return Status::OK();
}

TEST(Macros, AssignOrReturnSuccess) {
  int out = 0;
  EXPECT_TRUE(ConsumeValue(false, &out).ok());
  EXPECT_EQ(out, 7);
}

TEST(Macros, AssignOrReturnPropagatesError) {
  int out = 0;
  EXPECT_TRUE(ConsumeValue(true, &out).IsOutOfRange());
  EXPECT_EQ(out, 0);
}

TEST(Result, DiesOnValueAccessOfError) {
  Result<int> result(Status::Internal("boom"));
  EXPECT_DEATH((void)result.ValueOrDie(), "boom");
}

TEST(Status, AbortIfErrorDiesOnError) {
  EXPECT_DEATH(Status::Internal("fatal case").AbortIfError("test"),
               "fatal case");
}

}  // namespace
}  // namespace fkde
