#include "common/table_printer.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace fkde {
namespace {

std::string Capture(const TablePrinter& printer, bool csv) {
  char buffer[4096] = {};
  std::FILE* f = tmpfile();
  printer.Print(csv, f);
  std::rewind(f);
  const std::size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  std::fclose(f);
  return std::string(buffer, n);
}

TEST(TablePrinter, CsvOutput) {
  TablePrinter printer;
  printer.SetHeader({"name", "value"});
  printer.AddRow({"a", "1"});
  printer.AddRow({"b", "2.5"});
  EXPECT_EQ(Capture(printer, true), "name,value\na,1\nb,2.5\n");
}

TEST(TablePrinter, TableAligned) {
  TablePrinter printer;
  printer.SetHeader({"n", "long_header"});
  printer.AddRow({"xxxxx", "1"});
  const std::string out = Capture(printer, false);
  // Columns padded to max width: "n" padded to 5, value to 11.
  EXPECT_NE(out.find("n      long_header"), std::string::npos);
  EXPECT_NE(out.find("xxxxx  1"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TablePrinter, NumFormatsCompactly) {
  EXPECT_EQ(TablePrinter::Num(0.123456789, 3), "0.123");
  EXPECT_EQ(TablePrinter::Num(1000000.0, 5), "1e+06");
  EXPECT_EQ(TablePrinter::Num(2.0), "2");
}

TEST(TablePrinter, RowCountTracked) {
  TablePrinter printer;
  printer.SetHeader({"a"});
  EXPECT_EQ(printer.num_rows(), 0u);
  printer.AddRow({"1"});
  printer.AddRow({"2"});
  EXPECT_EQ(printer.num_rows(), 2u);
}

TEST(TablePrinterDeath, ArityMismatchChecks) {
  TablePrinter printer;
  printer.SetHeader({"a", "b"});
  EXPECT_DEATH(printer.AddRow({"only_one"}), "arity");
}

}  // namespace
}  // namespace fkde
