#include "common/flags.h"

#include <gtest/gtest.h>

namespace fkde {
namespace {

// Helper building argv from string literals.
class ArgvBuilder {
 public:
  explicit ArgvBuilder(std::vector<std::string> args)
      : storage_(std::move(args)) {
    pointers_.push_back(const_cast<char*>("prog"));
    for (auto& s : storage_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> pointers_;
};

TEST(Flags, EqualsSyntax) {
  FlagParser parser;
  std::int64_t n = 1;
  double x = 0.5;
  std::string s = "a";
  parser.AddInt64("n", &n, "");
  parser.AddDouble("x", &x, "");
  parser.AddString("s", &s, "");
  ArgvBuilder args({"--n=42", "--x=2.5", "--s=hello"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(n, 42);
  EXPECT_DOUBLE_EQ(x, 2.5);
  EXPECT_EQ(s, "hello");
}

TEST(Flags, SpaceSyntax) {
  FlagParser parser;
  std::int64_t n = 1;
  parser.AddInt64("n", &n, "");
  ArgvBuilder args({"--n", "99"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(n, 99);
}

TEST(Flags, BoolForms) {
  FlagParser parser;
  bool a = false, b = true, c = false;
  parser.AddBool("a", &a, "");
  parser.AddBool("b", &b, "");
  parser.AddBool("c", &c, "");
  ArgvBuilder args({"--a", "--no-b", "--c=true"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
  EXPECT_TRUE(c);
}

TEST(Flags, DefaultsSurviveWhenUnset) {
  FlagParser parser;
  std::int64_t n = 7;
  parser.AddInt64("n", &n, "");
  ArgvBuilder args({});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(n, 7);
}

TEST(Flags, UnknownFlagFails) {
  FlagParser parser;
  std::int64_t n = 0;
  parser.AddInt64("n", &n, "");
  ArgvBuilder args({"--typo=1"});
  const Status status = parser.Parse(args.argc(), args.argv());
  EXPECT_TRUE(status.IsInvalidArgument());
}

TEST(Flags, BadIntegerFails) {
  FlagParser parser;
  std::int64_t n = 0;
  parser.AddInt64("n", &n, "");
  ArgvBuilder args({"--n=12abc"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(Flags, BadDoubleFails) {
  FlagParser parser;
  double x = 0;
  parser.AddDouble("x", &x, "");
  ArgvBuilder args({"--x=not_a_number"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(Flags, MissingValueFails) {
  FlagParser parser;
  std::int64_t n = 0;
  parser.AddInt64("n", &n, "");
  ArgvBuilder args({"--n"});
  EXPECT_FALSE(parser.Parse(args.argc(), args.argv()).ok());
}

TEST(Flags, PositionalArgumentsCollected) {
  FlagParser parser;
  std::int64_t n = 0;
  parser.AddInt64("n", &n, "");
  ArgvBuilder args({"first", "--n=3", "second"});
  ASSERT_TRUE(parser.Parse(args.argc(), args.argv()).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(Flags, HelpListsFlagsWithDefaults) {
  FlagParser parser;
  std::int64_t dims = 3;
  parser.AddInt64("dims", &dims, "dataset dimensionality");
  const std::string help = parser.Help();
  EXPECT_NE(help.find("--dims"), std::string::npos);
  EXPECT_NE(help.find("3"), std::string::npos);
  EXPECT_NE(help.find("dataset dimensionality"), std::string::npos);
}

}  // namespace
}  // namespace fkde
