#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

#include <gtest/gtest.h>

namespace fkde {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng rng(5);
  const std::uint64_t first = rng.Next64();
  rng.Next64();
  rng.Seed(5);
  EXPECT_EQ(rng.Next64(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.Uniform();
    sum += u;
    sum_sq += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.005);
  EXPECT_NEAR(sum_sq / n - 0.25, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntChiSquare) {
  // 10 bins, 100K draws: chi-square with 9 dof should stay below ~30
  // (p ~ 4e-4) for an unbiased generator.
  Rng rng(12);
  const int bins = 10, n = 100000;
  std::vector<int> counts(bins, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(bins)];
  const double expected = static_cast<double>(n) / bins;
  double chi2 = 0.0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  EXPECT_LT(chi2, 30.0);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(14);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0, sum_cu = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
    sum_cu += g * g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
  EXPECT_NEAR(sum_cu / n, 0.0, 0.05);  // Symmetry.
}

TEST(Rng, GaussianParameterized) {
  Rng rng(15);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian(10.0, 3.0);
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(sum_sq / n - mean * mean), 3.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(16);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalMatchesWeights) {
  Rng rng(18);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, CategoricalSkipsZeroWeights) {
  Rng rng(19);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Categorical(weights), 1u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(20);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // Astronomically unlikely to be identity.
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleUniformFirstPosition) {
  // Every element should land in position 0 about equally often.
  std::map<int, int> counts;
  const int trials = 30000;
  Rng rng(21);
  for (int t = 0; t < trials; ++t) {
    std::vector<int> v = {0, 1, 2, 3, 4};
    rng.Shuffle(v);
    ++counts[v[0]];
  }
  for (const auto& [value, count] : counts) {
    EXPECT_NEAR(count / static_cast<double>(trials), 0.2, 0.02)
        << "value " << value;
  }
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(22);
  Rng child = parent.Fork();
  // The child stream should differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next64() == child.Next64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace fkde
