#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fkde {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> values = {1.0, 4.0, 2.0, 8.0, 5.0};
  RunningStats stats;
  for (double v : values) stats.Add(v);
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.0);
  // Sample variance: sum((x-4)^2)/4 = (9+0+4+16+1)/4 = 7.5.
  EXPECT_DOUBLE_EQ(stats.variance(), 7.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 8.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(1);
  RunningStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Gaussian(5.0, 2.0);
    whole.Add(v);
    (i < 400 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(2.0);
  const double mean = a.mean();
  a.Merge(b);  // No-op.
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.Merge(a);  // Adopt.
  EXPECT_DOUBLE_EQ(b.mean(), mean);
  EXPECT_EQ(b.count(), 2u);
}

TEST(Quantile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(Quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, InterpolatesBetweenOrderStatistics) {
  // Sorted: 1,2,3,4. q=0.5 -> position 1.5 -> 2.5.
  EXPECT_DOUBLE_EQ(Quantile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.5);
}

TEST(Quantile, Extremes) {
  const std::vector<double> v = {5.0, -1.0, 3.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), -1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 5.0);
}

TEST(Quantile, SingleElement) {
  EXPECT_DOUBLE_EQ(Quantile({7.0}, 0.25), 7.0);
}

TEST(Summary, FiveNumberSummary) {
  std::vector<double> values;
  for (int i = 1; i <= 101; ++i) values.push_back(static_cast<double>(i));
  const Summary s = Summarize(values);
  EXPECT_EQ(s.count, 101u);
  EXPECT_DOUBLE_EQ(s.median, 51.0);
  EXPECT_DOUBLE_EQ(s.p25, 26.0);
  EXPECT_DOUBLE_EQ(s.p75, 76.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 101.0);
  EXPECT_DOUBLE_EQ(s.mean, 51.0);
}

TEST(Summary, EmptyInput) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace fkde
