// Ablation: logarithmic vs linear bandwidth updates (paper Appendix D).
//
// The paper reports that updating log(h) instead of h improved the
// adaptive estimator in 68% of all experiments. This harness runs the
// adaptive estimator with both parameterizations across the dataset x
// workload grid and reports the per-cell errors plus the overall win rate
// of the logarithmic variant.

#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace fkde;
  using namespace fkde::bench;

  CommonFlags common;
  common.workloads = "dt,dv";
  std::int64_t dims = 3;
  FlagParser parser;
  common.Register(&parser);
  parser.AddInt64("dims", &dims, "dataset dimensionality");
  parser.Parse(argc, argv).AbortIfError("flags");
  common.Finalize();

  const auto datasets = SplitCsv(common.datasets);
  const auto workloads = SplitCsv(common.workloads);

  TablePrinter printer;
  printer.SetHeader({"dataset", "workload", "rep", "error_linear",
                     "error_log", "log_wins"});
  std::size_t log_wins = 0, experiments = 0;

  for (const std::string& dataset : datasets) {
    for (const std::string& workload : workloads) {
      Table table = GenerateDataset(dataset,
                                    static_cast<std::size_t>(common.rows),
                                    static_cast<std::size_t>(dims),
                                    static_cast<std::uint64_t>(common.seed))
                        .MoveValueOrDie();
      Executor executor(&table);
      executor.BuildIndex();
      const WorkloadGenerator generator(table);
      const WorkloadSpec spec = ParseWorkloadName(workload).ValueOrDie();
      Device device(ProfileByName("cpu"));

      for (std::int64_t rep = 0; rep < common.reps; ++rep) {
        const std::uint64_t seed =
            static_cast<std::uint64_t>(common.seed) * 131 + rep;
        Rng rng(seed);
        const auto training = generator.Generate(
            spec, static_cast<std::size_t>(common.train), &rng);
        const auto test = generator.Generate(
            spec, static_cast<std::size_t>(common.test), &rng);

        double errors[2] = {0.0, 0.0};
        for (int variant = 0; variant < 2; ++variant) {
          EstimatorBuildContext context;
          context.device = &device;
          context.executor = &executor;
          context.seed = seed;
          context.kde.adaptive.log_updates = (variant == 1);
          auto estimator =
              BuildEstimator("kde_adaptive", context).MoveValueOrDie();
          FeedbackDriver::Train(estimator.get(), training);
          errors[variant] =
              FeedbackDriver::RunPrecomputed(estimator.get(), test)
                  .MeanAbsoluteError();
        }
        ++experiments;
        const bool log_better = errors[1] < errors[0];
        if (log_better) ++log_wins;
        printer.AddRow({dataset, spec.Name(), std::to_string(rep),
                        TablePrinter::Num(errors[0]),
                        TablePrinter::Num(errors[1]),
                        log_better ? "yes" : "no"});
      }
      std::fprintf(stderr, "  done: %s %s\n", dataset.c_str(),
                   spec.Name().c_str());
    }
  }
  printer.Print(common.csv);
  std::printf("\nlogarithmic updates won %zu / %zu experiments (%.1f%%) — "
              "paper reports 68%%\n",
              log_wins, experiments,
              100.0 * log_wins / std::max<std::size_t>(experiments, 1));
  return 0;
}
