/// \file traffic_bench.cc
/// \brief Sustained-traffic benchmark: open-loop query streams through the
/// `StreamingExecutor`, per topology.
///
/// For each topology (cpu, gpu, cpu-simd+gpu, gpu+gpu) three closed-loop
/// runs establish the headline:
///
///  - **serial**   window=1 — classic one-at-a-time Estimate/Observe
///                 driving; every chain is enqueued and immediately waited.
///  - **streamed** window=W pipelined — query k+1's estimate chain enqueues
///                 while query k's gradient and Karma feedback are pending.
///  - **replay**   window=W with a full drain after every admit/retire step
///                 — the *same* logical command sequence executed serially.
///
/// Acceptance properties, measured per topology:
///
///  1. `bitwise_streamed_equals_serial_replay`: the streamed estimates are
///     bit-for-bit the replay estimates (scheduling may move modeled time,
///     never the math).
///  2. streamed throughput strictly above serial, streamed steady-state
///     idle-gap fraction strictly below serial.
///
/// Then an open-loop sweep (Poisson arrivals at fractions of the streamed
/// closed-loop capacity) reports p50/p99/p999 modeled latency and the
/// idle-gap fraction at each offered load — the latency-vs-load curve.
/// Exit status is non-zero when property 1 fails anywhere or property 2
/// fails on the gpu or cpu-simd+gpu topologies.
///
/// The size of the streaming win is a function of the device-compute to
/// host-overhead ratio, which `--sample` and `--execution_us` steer:
/// below ~25us per kernel (launch latency) the host never waits and both
/// modes tie; far above it the device saturates and the win narrows to
/// the hidden host-side gaps. The defaults put the two-shard topologies
/// in the balanced regime (their aggregate throughput is ~2.5x a single
/// gpu); a single gpu is balanced around `--sample 16384`. Note the
/// kernels really execute (the bitwise property is measured, not
/// modeled), so wall time scales with queries*sample*dims.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "data/generators.h"
#include "runtime/driver.h"
#include "runtime/topology.h"
#include "workload/workload.h"

namespace fkde {
namespace {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

struct TrafficRun {
  StreamingReport report;
  RunStats stats;
  std::vector<double> per_device_idle_gap;
};

/// One full run on a fresh group + fresh model (same seeds every time, so
/// runs that execute the same logical schedule must agree bitwise).
TrafficRun RunTraffic(const std::string& topology, const Table& table,
                      const KdeConfig& config,
                      std::span<const Query> workload,
                      const StreamingOptions& options) {
  std::unique_ptr<DeviceGroup> group =
      BuildDeviceGroup(topology).MoveValueOrDie();
  auto model = KdeSelectivityEstimator::Create(
                   KdeSelectivityEstimator::Mode::kAdaptive, group.get(),
                   &table, config)
                   .MoveValueOrDie();
  TrafficRun run;
  run.stats =
      FeedbackDriver::RunStreamed(model.get(), workload, options, &run.report)
          .MoveValueOrDie();
  for (std::size_t i = 0; i < group->size(); ++i) {
    run.per_device_idle_gap.push_back(group->device(i)->IdleGapFraction());
  }
  return run;
}

struct CurvePoint {
  double offered_qps = 0.0;
  double achieved_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double idle_gap = 0.0;
};

struct TopologyResult {
  std::string topology;
  TrafficRun serial;
  TrafficRun streamed;
  TrafficRun replay;
  bool bitwise = false;
  std::vector<CurvePoint> curve;
};

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) out.push_back(csv.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace
}  // namespace fkde

int main(int argc, char** argv) {
  using namespace fkde;

  std::int64_t queries = 100000;
  std::int64_t rows = 131072;
  std::int64_t dims = 5;
  std::int64_t sample = 65536;
  std::int64_t window = 4;
  std::int64_t seed = 1;
  double execution_us = 100.0;
  double offered_load = 0.0;
  std::string topologies = "cpu,gpu,cpu-simd+gpu,gpu+gpu";
  bool sweep = true;
  bool json = false;
  FlagParser parser;
  parser.AddInt64("queries", &queries, "queries per run (1e5-1e6 typical)");
  parser.AddInt64("rows", &rows, "rows in the base table");
  parser.AddInt64("dims", &dims, "dataset dimensionality");
  parser.AddInt64("sample", &sample,
                  "KDE sample size (device compute per query scales with "
                  "sample*dims)");
  parser.AddInt64("window", &window, "streamed admission window (queries)");
  parser.AddInt64("seed", &seed, "base random seed");
  parser.AddDouble("execution_us", &execution_us,
                   "modeled per-query database execution window, us");
  parser.AddDouble("offered_load", &offered_load,
                   "fixed open-loop arrival rate in qps for the latency "
                   "curve (0 = sweep fractions of streamed capacity)");
  parser.AddString("topologies", &topologies,
                   "comma-separated device topologies to benchmark");
  parser.AddBool("sweep", &sweep,
                 "run the open-loop latency-vs-load sweep per topology");
  parser.AddBool("json", &json, "write BENCH_traffic.json");
  parser.Parse(argc, argv).AbortIfError("flags");

  const std::size_t n = static_cast<std::size_t>(queries);
  const std::size_t d = static_cast<std::size_t>(dims);
  const std::uint64_t base_seed = static_cast<std::uint64_t>(seed) * 7919;

  const Table table =
      GenerateDataset("synthetic", static_cast<std::size_t>(rows), d,
                      base_seed)
          .MoveValueOrDie();
  WorkloadGenerator generator(table);
  Rng rng(base_seed + 17);
  const WorkloadSpec spec = ParseWorkloadName("dt").ValueOrDie();
  const std::vector<Query> workload = generator.Generate(spec, n, &rng);

  KdeConfig config;
  config.sample_size = static_cast<std::size_t>(sample);
  config.seed = base_seed + 29;

  // The serial/streamed/replay comparison runs are always closed-loop
  // (back-to-back arrivals): they measure capacity and idle gap. The
  // offered-load flag / sweep drives only the open-loop latency curve.
  StreamingOptions base;
  base.window = static_cast<std::size_t>(window);
  base.execution_seconds = execution_us * 1e-6;
  base.feedback = true;
  base.offered_load_qps = 0.0;
  base.arrival_seed = base_seed + 41;

  std::vector<TopologyResult> results;
  bool all_bitwise = true;
  bool headline_ok = true;
  for (const std::string& topology : SplitCsv(topologies)) {
    TopologyResult result;
    result.topology = topology;

    StreamingOptions serial_options = base;
    serial_options.window = 1;
    result.serial = RunTraffic(topology, table, config, workload,
                               serial_options);

    StreamingOptions streamed_options = base;
    result.streamed = RunTraffic(topology, table, config, workload,
                                 streamed_options);

    StreamingOptions replay_options = streamed_options;
    replay_options.pipeline = false;
    result.replay = RunTraffic(topology, table, config, workload,
                               replay_options);

    result.bitwise = SameBits(result.streamed.report.estimates,
                              result.replay.report.estimates);
    if (!result.bitwise) {
      all_bitwise = false;
      std::fprintf(stderr, "%s: streamed estimates diverged from replay\n",
                   topology.c_str());
    }

    const bool faster = result.streamed.report.throughput_qps >
                        result.serial.report.throughput_qps;
    const bool tighter =
        result.streamed.report.idle_gap < result.serial.report.idle_gap;
    if ((topology == "gpu" || topology == "cpu-simd+gpu") &&
        (!faster || !tighter)) {
      headline_ok = false;
      std::fprintf(stderr,
                   "%s: streamed not strictly better (throughput %s, "
                   "idle gap %s)\n",
                   topology.c_str(), faster ? "ok" : "FAIL",
                   tighter ? "ok" : "FAIL");
    }

    if (sweep) {
      // Offered loads as fractions of the streamed closed-loop capacity
      // (comfortably below, near, and at the knee of saturation), or the
      // single fixed rate the caller asked for.
      const double capacity = result.streamed.report.throughput_qps;
      std::vector<double> loads;
      if (offered_load > 0.0) {
        loads.push_back(offered_load);
      } else {
        for (const double fraction : {0.5, 0.8, 0.95}) {
          loads.push_back(capacity * fraction);
        }
      }
      for (const double qps : loads) {
        StreamingOptions open = streamed_options;
        open.offered_load_qps = qps;
        const TrafficRun run =
            RunTraffic(topology, table, config, workload, open);
        CurvePoint point;
        point.offered_qps = qps;
        point.achieved_qps = run.report.throughput_qps;
        point.p50_ms = Percentile(run.report.latencies_s, 0.50) * 1e3;
        point.p99_ms = Percentile(run.report.latencies_s, 0.99) * 1e3;
        point.p999_ms = Percentile(run.report.latencies_s, 0.999) * 1e3;
        point.idle_gap = run.report.idle_gap;
        result.curve.push_back(point);
      }
    }

    std::printf(
        "%-14s serial %8.0f qps gap %.3f | streamed(w=%lld) %8.0f qps "
        "gap %.3f | bitwise %s | mae %.5f\n",
        topology.c_str(), result.serial.report.throughput_qps,
        result.serial.report.idle_gap, static_cast<long long>(window),
        result.streamed.report.throughput_qps,
        result.streamed.report.idle_gap,
        result.bitwise ? "true" : "FALSE",
        Mean(result.streamed.stats.absolute_errors));
    for (const CurvePoint& point : result.curve) {
      std::printf(
          "    load %8.0f qps -> p50 %7.3fms p99 %7.3fms p999 %7.3fms "
          "gap %.3f\n",
          point.offered_qps, point.p50_ms, point.p99_ms, point.p999_ms,
          point.idle_gap);
    }
    results.push_back(std::move(result));
  }

  if (json) {
    std::FILE* f = std::fopen("BENCH_traffic.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_traffic.json\n");
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"queries\": %zu,\n", n);
    std::fprintf(f, "  \"window\": %lld,\n", static_cast<long long>(window));
    std::fprintf(f, "  \"execution_us\": %.17g,\n", execution_us);
    std::fprintf(f, "  \"topologies\": [\n");
    for (std::size_t t = 0; t < results.size(); ++t) {
      const TopologyResult& r = results[t];
      std::fprintf(f, "    {\n");
      std::fprintf(f, "      \"topology\": \"%s\",\n", r.topology.c_str());
      std::fprintf(f, "      \"bitwise_streamed_equals_serial_replay\": %s,\n",
                   r.bitwise ? "true" : "false");
      std::fprintf(f, "      \"serial_throughput_qps\": %.17g,\n",
                   r.serial.report.throughput_qps);
      std::fprintf(f, "      \"streamed_throughput_qps\": %.17g,\n",
                   r.streamed.report.throughput_qps);
      std::fprintf(f, "      \"replay_throughput_qps\": %.17g,\n",
                   r.replay.report.throughput_qps);
      std::fprintf(f, "      \"speedup\": %.17g,\n",
                   r.serial.report.throughput_qps > 0.0
                       ? r.streamed.report.throughput_qps /
                             r.serial.report.throughput_qps
                       : 0.0);
      std::fprintf(f, "      \"serial_idle_gap\": %.17g,\n",
                   r.serial.report.idle_gap);
      std::fprintf(f, "      \"streamed_idle_gap\": %.17g,\n",
                   r.streamed.report.idle_gap);
      std::fprintf(f, "      \"streamed_mae\": %.17g,\n",
                   Mean(r.streamed.stats.absolute_errors));
      std::fprintf(f, "      \"queue_depth_high_water\": %zu,\n",
                   r.streamed.report.queue_depth_high_water);
      std::fprintf(f, "      \"total_commands\": %zu,\n",
                   r.streamed.report.total_commands);
      std::fprintf(f, "      \"per_device_idle_gap\": [");
      for (std::size_t i = 0; i < r.streamed.per_device_idle_gap.size();
           ++i) {
        std::fprintf(f, "%s%.17g", i > 0 ? ", " : "",
                     r.streamed.per_device_idle_gap[i]);
      }
      std::fprintf(f, "],\n");
      std::fprintf(f, "      \"offered_load_curve\": [\n");
      for (std::size_t i = 0; i < r.curve.size(); ++i) {
        const CurvePoint& point = r.curve[i];
        std::fprintf(f,
                     "        {\"offered_qps\": %.17g, \"achieved_qps\": "
                     "%.17g, \"p50_ms\": %.17g, \"p99_ms\": %.17g, "
                     "\"p999_ms\": %.17g, \"idle_gap\": %.17g}%s\n",
                     point.offered_qps, point.achieved_qps, point.p50_ms,
                     point.p99_ms, point.p999_ms, point.idle_gap,
                     i + 1 < r.curve.size() ? "," : "");
      }
      std::fprintf(f, "      ]\n");
      std::fprintf(f, "    }%s\n", t + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_traffic.json\n");
  }

  return all_bitwise && headline_ok ? 0 : 1;
}
