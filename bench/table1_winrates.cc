// Table 1: pairwise win-rate matrix.
//
// Runs the full static-quality grid (both 3D and 8D, all datasets and
// workloads) and reports, for each ordered estimator pair (A, B), the
// percentage of (cell, repetition) experiments in which A's mean absolute
// error was strictly lower than B's — the paper's Table 1.
//
// Expected qualitative result (paper):
//   Batch > Heuristic in >90%; Batch > SCV in ~63%; Batch > STHoles in
//   ~84%; Adaptive > STHoles in ~71%; Adaptive between Batch and SCV.

#include <cstdio>
#include <map>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace fkde;
  using namespace fkde::bench;

  CommonFlags common;
  // The win-rate matrix runs the whole 3D+8D grid; default to a lighter
  // per-cell setting than the figure binaries (--full restores 25 reps).
  common.reps = 2;
  common.rows = 30000;
  common.test = 150;
  std::string dims_flag = "3,8";
  FlagParser parser;
  common.Register(&parser);
  parser.AddString("dims", &dims_flag, "comma-separated dimensionalities");
  parser.Parse(argc, argv).AbortIfError("flags");
  common.Finalize();

  const auto datasets = SplitCsv(common.datasets);
  const auto workloads = SplitCsv(common.workloads);
  const auto estimators = SplitCsv(common.estimators);
  const auto dims_list = SplitCsv(dims_flag);

  // wins[a][b] = experiments where a beat b; ties count for neither.
  std::map<std::string, std::map<std::string, std::size_t>> wins;
  std::size_t experiments = 0;

  for (const std::string& dims_str : dims_list) {
    const std::size_t dims = std::stoul(dims_str);
    for (const std::string& dataset : datasets) {
      for (const std::string& workload : workloads) {
        CellSpec spec;
        spec.dataset = dataset;
        spec.rows = static_cast<std::size_t>(common.rows);
        spec.dims = dims;
        spec.workload = ParseWorkloadName(workload).ValueOrDie();
        spec.training_queries = static_cast<std::size_t>(common.train);
        spec.test_queries = static_cast<std::size_t>(common.test);
        spec.repetitions = static_cast<std::size_t>(common.reps);
        spec.seed = static_cast<std::uint64_t>(common.seed) + dims;
        const CellResult cell = RunCell(spec, estimators);
        for (std::size_t rep = 0; rep < spec.repetitions; ++rep) {
          ++experiments;
          for (const std::string& a : estimators) {
            for (const std::string& b : estimators) {
              if (a == b) continue;
              const double ea = cell.errors_by_estimator.at(a)[rep];
              const double eb = cell.errors_by_estimator.at(b)[rep];
              if (ea < eb) ++wins[a][b];
            }
          }
        }
        std::fprintf(stderr, "  done: %zuD %s %s\n", dims, dataset.c_str(),
                     spec.workload.Name().c_str());
      }
    }
  }

  TablePrinter printer;
  std::vector<std::string> header = {"wins \\ over"};
  for (const std::string& b : estimators) header.push_back(b);
  printer.SetHeader(header);
  const double total = static_cast<double>(experiments);
  for (const std::string& a : estimators) {
    std::vector<std::string> row = {a};
    for (const std::string& b : estimators) {
      if (a == b) {
        row.push_back("-");
      } else {
        row.push_back(
            TablePrinter::Num(100.0 * wins[a][b] / total, 3) + "%");
      }
    }
    printer.AddRow(row);
  }
  std::printf("pairwise win rates over %zu experiments "
              "(row beat column in X%% of runs):\n",
              experiments);
  printer.Print(common.csv);
  return 0;
}
