/// \file serving_bench.cc
/// \brief Multi-model serving benchmark: N adaptive KDE models sharing one
/// device group behind a `ModelCatalog`.
///
/// Two acceptance properties are measured, not assumed:
///
///  1. **Isolation under sharing** (`bitwise_match_isolated`): a mixed
///     round-robin query+feedback workload served through the catalog
///     returns, per model, exactly the estimate bits of the same model
///     running alone on its own device.
///  2. **Eviction transparency** (`eviction_restore_bitwise`): the same
///     workload under a device-memory budget small enough to force
///     continuous evict->snapshot->fault-back cycling returns the same
///     bits again.
///
/// Also reported per model: mean absolute error and modeled p50/p99
/// serving latency (per-query deltas of the group's modeled clock).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "data/generators.h"
#include "harness.h"
#include "runtime/catalog.h"
#include "runtime/topology.h"
#include "workload/workload.h"

namespace fkde {
namespace {

struct ModelRun {
  ModelKey key;
  std::vector<double> estimates;
  std::vector<double> abs_errors;
  std::vector<double> latencies_s;  ///< Modeled seconds per served query.
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (double v : values) total += v;
  return total / static_cast<double>(values.size());
}

/// Serves every model's workload through `catalog` in round-robin order
/// (query j of model 0, then model 1, ... then query j+1), the arrival
/// pattern a shared optimizer would produce.
std::vector<ModelRun> ServeInterleaved(
    ModelCatalog* catalog, const std::vector<ModelKey>& keys,
    const std::vector<std::vector<Query>>& workloads) {
  std::vector<ModelRun> runs(keys.size());
  for (std::size_t m = 0; m < keys.size(); ++m) runs[m].key = keys[m];
  const std::size_t queries = workloads[0].size();
  for (std::size_t q = 0; q < queries; ++q) {
    for (std::size_t m = 0; m < keys.size(); ++m) {
      const Query& query = workloads[m][q];
      const double t0 = catalog->group()->MaxModeledSeconds();
      const double estimate =
          catalog->Estimate(keys[m], query.box).MoveValueOrDie();
      catalog->Feedback(keys[m], query.box, query.selectivity)
          .AbortIfError("feedback");
      const double t1 = catalog->group()->MaxModeledSeconds();
      runs[m].estimates.push_back(estimate);
      runs[m].abs_errors.push_back(std::abs(estimate - query.selectivity));
      runs[m].latencies_s.push_back(t1 - t0);
    }
  }
  return runs;
}

bool SameBits(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

}  // namespace
}  // namespace fkde

int main(int argc, char** argv) {
  using namespace fkde;

  std::int64_t models = 8;
  std::int64_t queries = 40;
  std::int64_t rows = 20000;
  std::int64_t dims = 3;
  std::int64_t seed = 1;
  bool json = false;
  FlagParser parser;
  parser.AddInt64("models", &models, "concurrently served models");
  parser.AddInt64("queries", &queries, "served queries per model");
  parser.AddInt64("rows", &rows, "rows per model's base table");
  parser.AddInt64("dims", &dims, "dimensionality of every model");
  parser.AddInt64("seed", &seed, "base random seed");
  parser.AddBool("json", &json, "write BENCH_serving.json");
  parser.Parse(argc, argv).AbortIfError("flags");

  const std::size_t n_models = static_cast<std::size_t>(models);
  const std::size_t d = static_cast<std::size_t>(dims);

  // Each model covers its own relation (distinct synthetic dataset) with
  // its own workload; all share one single-device "gpu" group, so their
  // enqueued passes interleave on one in-order queue.
  std::vector<Table> tables;
  std::vector<std::vector<Query>> workloads;
  std::vector<ModelKey> keys;
  std::vector<KdeConfig> configs;
  tables.reserve(n_models);
  for (std::size_t m = 0; m < n_models; ++m) {
    const std::uint64_t model_seed =
        static_cast<std::uint64_t>(seed) * 7919 + m;
    tables.push_back(GenerateDataset("synthetic",
                                     static_cast<std::size_t>(rows), d,
                                     model_seed)
                         .MoveValueOrDie());
    WorkloadGenerator generator(tables.back());
    Rng rng(model_seed + 17);
    const WorkloadSpec spec = ParseWorkloadName("dt").ValueOrDie();
    workloads.push_back(generator.Generate(
        spec, static_cast<std::size_t>(queries), &rng));
    ModelKey key;
    key.table = "t";
    key.table += std::to_string(m);
    for (std::size_t c = 0; c < d; ++c) {
      std::string col = "c";
      col += std::to_string(c);
      key.columns.push_back(std::move(col));
    }
    keys.push_back(std::move(key));
    KdeConfig config;
    config.sample_size = 1024;  // The paper's d*4kB float budget.
    config.seed = model_seed + 29;
    configs.push_back(config);
  }

  const auto register_all = [&](ModelCatalog* catalog) {
    for (std::size_t m = 0; m < n_models; ++m) {
      ModelSpec spec;
      spec.mode = KdeSelectivityEstimator::Mode::kAdaptive;
      spec.config = configs[m];
      spec.table = &tables[m];
      catalog->Register(keys[m], std::move(spec)).AbortIfError("register");
    }
  };

  // --- Shared serving, unlimited memory. ---
  std::unique_ptr<DeviceGroup> shared_group =
      BuildDeviceGroup("gpu").MoveValueOrDie();
  ModelCatalog shared_catalog(shared_group.get());
  register_all(&shared_catalog);
  const std::vector<ModelRun> shared =
      ServeInterleaved(&shared_catalog, keys, workloads);

  // --- Isolated baselines: one model, one fresh device, same seeds. ---
  bool bitwise_match_isolated = true;
  for (std::size_t m = 0; m < n_models; ++m) {
    std::unique_ptr<DeviceGroup> solo_group =
        BuildDeviceGroup("gpu").MoveValueOrDie();
    auto solo = KdeSelectivityEstimator::Create(
                    KdeSelectivityEstimator::Mode::kAdaptive,
                    solo_group.get(), &tables[m], configs[m])
                    .MoveValueOrDie();
    std::vector<double> estimates;
    for (const Query& query : workloads[m]) {
      estimates.push_back(solo->EstimateSelectivity(query.box));
      solo->ObserveTrueSelectivity(query.box, query.selectivity);
    }
    if (!SameBits(estimates, shared[m].estimates)) {
      bitwise_match_isolated = false;
      std::fprintf(stderr, "model %zu diverged from its isolated run\n", m);
    }
  }

  // --- Constrained budget: evict/fault-back must not change the bits. ---
  std::size_t model_bytes = 0;
  for (std::size_t m = 0; m < n_models; ++m) {
    model_bytes = std::max(
        model_bytes,
        shared_catalog.StatsFor(keys[m]).MoveValueOrDie().device_bytes);
  }
  std::unique_ptr<DeviceGroup> tight_group =
      BuildDeviceGroup("gpu").MoveValueOrDie();
  CatalogOptions tight_options;
  // Room for ~2 resident models out of N: every round-robin turn faults.
  tight_options.device_budget_bytes = model_bytes * 5 / 2;
  ModelCatalog tight_catalog(tight_group.get(), tight_options);
  register_all(&tight_catalog);
  const std::vector<ModelRun> constrained =
      ServeInterleaved(&tight_catalog, keys, workloads);
  bool eviction_restore_bitwise = true;
  for (std::size_t m = 0; m < n_models; ++m) {
    if (!SameBits(constrained[m].estimates, shared[m].estimates)) {
      eviction_restore_bitwise = false;
      std::fprintf(stderr, "model %zu diverged under eviction\n", m);
    }
  }
  const CatalogStats tight_stats = tight_catalog.Stats();

  // --- Report. ---
  std::printf("serving %zu models x %lld queries (shared gpu group)\n",
              n_models, static_cast<long long>(queries));
  std::printf("bitwise_match_isolated:   %s\n",
              bitwise_match_isolated ? "true" : "false");
  std::printf("eviction_restore_bitwise: %s (evictions=%llu faults=%llu)\n",
              eviction_restore_bitwise ? "true" : "false",
              static_cast<unsigned long long>(tight_stats.evictions),
              static_cast<unsigned long long>(tight_stats.faults));
  for (std::size_t m = 0; m < n_models; ++m) {
    std::printf(
        "  %-12s mae=%.5f modeled p50=%.3fms p99=%.3fms\n",
        shared[m].key.ToString().c_str(), Mean(shared[m].abs_errors),
        Percentile(shared[m].latencies_s, 0.50) * 1e3,
        Percentile(shared[m].latencies_s, 0.99) * 1e3);
  }

  if (json) {
    std::FILE* f = std::fopen("BENCH_serving.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_serving.json\n");
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"models\": %zu,\n", n_models);
    std::fprintf(f, "  \"queries_per_model\": %lld,\n",
                 static_cast<long long>(queries));
    std::fprintf(f, "  \"bitwise_match_isolated\": %s,\n",
                 bitwise_match_isolated ? "true" : "false");
    std::fprintf(f, "  \"eviction_restore_bitwise\": %s,\n",
                 eviction_restore_bitwise ? "true" : "false");
    std::fprintf(f, "  \"evictions\": %llu,\n",
                 static_cast<unsigned long long>(tight_stats.evictions));
    std::fprintf(f, "  \"faults\": %llu,\n",
                 static_cast<unsigned long long>(tight_stats.faults));
    std::fprintf(f, "  \"per_model\": [\n");
    for (std::size_t m = 0; m < n_models; ++m) {
      std::fprintf(
          f,
          "    {\"key\": \"%s\", \"mae\": %.17g, \"modeled_p50_ms\": %.17g, "
          "\"modeled_p99_ms\": %.17g}%s\n",
          shared[m].key.ToString().c_str(), Mean(shared[m].abs_errors),
          Percentile(shared[m].latencies_s, 0.50) * 1e3,
          Percentile(shared[m].latencies_s, 0.99) * 1e3,
          m + 1 < n_models ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::fprintf(stderr, "wrote BENCH_serving.json\n");
  }
  return (bitwise_match_isolated && eviction_restore_bitwise) ? 0 : 1;
}
