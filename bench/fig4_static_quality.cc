// Figures 4 & 5: estimation quality on static datasets.
//
// Reproduces the paper's Section 6.2 grid — five estimators x five
// datasets x four workloads — reporting the distribution (boxplot
// statistics) of the mean absolute selectivity estimation error over
// repeated runs. `--dims 3` regenerates Figure 4, `--dims 8` Figure 5.
//
// Expected qualitative result (paper):
//   kde_batch < kde_adaptive ~ kde_scv < stholes ~ kde_heuristic,
// with kde_batch beating kde_heuristic in >90% of cells.

#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace fkde;
  using namespace fkde::bench;

  CommonFlags common;
  std::int64_t dims = 3;
  FlagParser parser;
  common.Register(&parser);
  parser.AddInt64("dims", &dims, "dataset dimensionality (3 or 8)");
  parser.Parse(argc, argv).AbortIfError("flags");
  common.Finalize();

  const auto datasets = SplitCsv(common.datasets);
  const auto workloads = SplitCsv(common.workloads);
  const auto estimators = SplitCsv(common.estimators);

  std::fprintf(stderr,
               "fig%s: static quality grid, %lldD, %zu datasets x %zu "
               "workloads x %zu estimators, %lld reps\n",
               dims == 3 ? "4" : "5", static_cast<long long>(dims),
               datasets.size(), workloads.size(), estimators.size(),
               static_cast<long long>(common.reps));

  TablePrinter printer;
  printer.SetHeader(
      SummaryHeader({"dataset", "workload", "estimator", "reps"}));

  for (const std::string& dataset : datasets) {
    for (const std::string& workload : workloads) {
      CellSpec spec;
      spec.dataset = dataset;
      spec.rows = static_cast<std::size_t>(common.rows);
      spec.dims = static_cast<std::size_t>(dims);
      spec.workload = ParseWorkloadName(workload).ValueOrDie();
      spec.training_queries = static_cast<std::size_t>(common.train);
      spec.test_queries = static_cast<std::size_t>(common.test);
      spec.repetitions = static_cast<std::size_t>(common.reps);
      spec.seed = static_cast<std::uint64_t>(common.seed) + dims;

      const CellResult cell = RunCell(spec, estimators);
      for (const std::string& estimator : estimators) {
        AddSummaryColumns(&printer,
                          {dataset, spec.workload.Name(), estimator,
                           std::to_string(common.reps)},
                          cell.SummaryFor(estimator));
      }
      std::fprintf(stderr, "  done: %s %s\n", dataset.c_str(),
                   spec.workload.Name().c_str());
    }
  }
  printer.Print(common.csv);
  return 0;
}
