// Figure 6: estimation quality with growing model size.
//
// Forest-like dataset, 8D, DT workload (the paper's setup): sweep the KDE
// sample size from 1K to 32K and report the absolute estimation error of
// Heuristic, Batch and Adaptive per size.
//
// Expected qualitative result (paper):
//   * error decays roughly as a power law in the sample size — growing
//     the sample 1K -> 32K cuts the error to about a third;
//   * the optimized estimators (Batch, Adaptive) are ~2x more accurate
//     than Heuristic at every size.

#include <cstdio>

#include "harness.h"

int main(int argc, char** argv) {
  using namespace fkde;
  using namespace fkde::bench;

  CommonFlags common;
  common.reps = 2;
  common.rows = 100000;
  common.test = 100;
  common.estimators = "kde_heuristic,kde_batch,kde_adaptive";
  std::int64_t dims = 8;
  std::string sizes_flag = "1024,2048,4096,8192,16384";
  std::string dataset = "forest";
  FlagParser parser;
  common.Register(&parser);
  parser.AddInt64("dims", &dims, "dataset dimensionality");
  parser.AddString("sizes", &sizes_flag, "comma-separated sample sizes");
  parser.AddString("dataset", &dataset, "dataset name");
  parser.Parse(argc, argv).AbortIfError("flags");
  common.Finalize();
  if (common.full) {
    common.reps = 10;  // The paper's repetition count for this figure.
    sizes_flag = "1024,2048,4096,8192,16384,32768";
  }

  const auto estimators = SplitCsv(common.estimators);
  const auto sizes = SplitCsv(sizes_flag);

  TablePrinter printer;
  printer.SetHeader(SummaryHeader({"sample_size", "estimator"}));
  for (const std::string& size_str : sizes) {
    const std::size_t sample_size = std::stoul(size_str);
    CellSpec spec;
    spec.dataset = dataset;
    spec.rows = static_cast<std::size_t>(common.rows);
    spec.dims = static_cast<std::size_t>(dims);
    spec.workload = ParseWorkloadName("dt").ValueOrDie();
    spec.training_queries = static_cast<std::size_t>(common.train);
    spec.test_queries = static_cast<std::size_t>(common.test);
    spec.repetitions = static_cast<std::size_t>(common.reps);
    spec.seed = static_cast<std::uint64_t>(common.seed);
    // Model size is the independent variable: sample rows * d floats.
    spec.memory_bytes = sample_size * spec.dims * sizeof(float);

    const CellResult cell = RunCell(spec, estimators);
    for (const std::string& estimator : estimators) {
      AddSummaryColumns(&printer, {size_str, estimator},
                        cell.SummaryFor(estimator));
    }
    std::fprintf(stderr, "  done: sample size %zu\n", sample_size);
  }
  printer.Print(common.csv);
  return 0;
}
