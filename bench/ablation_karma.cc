// Ablation: Karma-based sample maintenance (paper Section 4.2/Appendix E).
//
// Runs the evolving-database workload with the adaptive estimator under
// different maintenance configurations:
//   * Karma on/off, reservoir on/off (isolating each mechanism);
//   * the Appendix E empty-region shortcut on/off;
//   * a sweep over the saturation constant K_max (paper default: 4).
//
// Reports the mean error in the final third of the run (steady churn) and
// the number of sample points replaced, showing that Karma + shortcut is
// what keeps the device sample in sync with the database.

#include <cstdio>

#include "harness.h"
#include "kde/kde_estimator.h"
#include "runtime/evolving_runner.h"
#include "workload/evolving.h"

namespace {

using namespace fkde;
using namespace fkde::bench;

struct Variant {
  std::string name;
  bool karma = true;
  bool reservoir = true;
  bool shortcut = true;
  double k_max = 4.0;
};

}  // namespace

int main(int argc, char** argv) {
  CommonFlags common;
  std::int64_t dims = 5;
  std::int64_t cycles = 8;
  FlagParser parser;
  common.Register(&parser);
  parser.AddInt64("dims", &dims, "dataset dimensionality");
  parser.AddInt64("cycles", &cycles, "insert/archive cycles");
  parser.Parse(argc, argv).AbortIfError("flags");
  common.Finalize();

  const std::vector<Variant> variants = {
      {"full (paper defaults)", true, true, true, 4.0},
      {"no shortcut", true, true, false, 4.0},
      {"no karma", false, true, true, 4.0},
      {"no reservoir", true, false, true, 4.0},
      {"no maintenance", false, false, false, 4.0},
      {"k_max = 1", true, true, true, 1.0},
      {"k_max = 16", true, true, true, 16.0},
  };

  EvolvingParams params;
  params.dims = static_cast<std::size_t>(dims);
  params.cycles = static_cast<std::size_t>(cycles);

  TablePrinter printer;
  printer.SetHeader({"variant", "early_error", "late_error", "replacements"});

  for (const Variant& variant : variants) {
    RunningStats early, late, replacements;
    for (std::int64_t rep = 0; rep < common.reps; ++rep) {
      const std::uint64_t seed =
          static_cast<std::uint64_t>(common.seed) + 31 * rep;
      Table table(params.dims);
      Executor executor(&table);
      EvolvingWorkload workload(params, seed);
      // Initial load before model construction.
      EvolvingEvent event;
      std::size_t pending =
          params.initial_clusters * params.tuples_per_cluster;
      while (pending > 0 && workload.Next(table, &event)) {
        if (event.kind == EvolvingEvent::Kind::kInsert) {
          executor.Insert(event.row, event.tag);
          --pending;
        }
      }

      KdeConfig config;
      config.sample_size = 1024;
      config.seed = seed;
      config.enable_karma = variant.karma;
      config.enable_reservoir = variant.reservoir;
      config.karma.empty_region_shortcut = variant.shortcut;
      config.karma.k_max = variant.k_max;
      Device device(ProfileByName("cpu"));
      auto estimator =
          KdeSelectivityEstimator::Create(
              KdeSelectivityEstimator::Mode::kAdaptive, &device, &table,
              config)
              .MoveValueOrDie();
      const EvolvingTrace trace =
          RunEvolving(estimator.get(), &executor, &workload);
      const std::size_t n = trace.absolute_errors.size();
      early.Add(trace.WindowMean(0, n / 3));
      late.Add(trace.WindowMean(2 * n / 3, n));
      replacements.Add(static_cast<double>(estimator->karma_replacements()));
    }
    printer.AddRow({variant.name, TablePrinter::Num(early.mean(), 4),
                    TablePrinter::Num(late.mean(), 4),
                    TablePrinter::Num(replacements.mean(), 5)});
    std::fprintf(stderr, "  done: %s\n", variant.name.c_str());
  }
  printer.Print(common.csv);
  return 0;
}
