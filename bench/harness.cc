#include "harness.h"

#include <algorithm>

#include "common/logging.h"
#include "runtime/topology.h"

namespace fkde {
namespace bench {

DeviceProfile ProfileByName(const std::string& name) {
  // Thin wrapper over the shared vocabulary (runtime/topology.h); bench
  // call sites want the crash-on-typo ergonomics.
  return ::fkde::DeviceProfileByName(name).MoveValueOrDie();
}

std::unique_ptr<DeviceGroup> MakeDeviceGroup(const std::string& topology,
                                             DeviceGroupOptions options) {
  return ::fkde::BuildDeviceGroup(topology, std::move(options))
      .MoveValueOrDie();
}

CellResult RunCell(const CellSpec& spec,
                   const std::vector<std::string>& estimators) {
  CellResult result;
  Table table =
      GenerateDataset(spec.dataset, spec.rows, spec.dims, spec.seed)
          .MoveValueOrDie();
  Executor executor(&table);
  executor.BuildIndex();
  const WorkloadGenerator generator(table);
  // A '+'-topology shards the KDE sample across a device group; a plain
  // profile name keeps the single-device path.
  const bool grouped = IsGroupTopology(spec.device);
  std::unique_ptr<DeviceGroup> group;
  std::unique_ptr<Device> device;
  if (grouped) {
    group = MakeDeviceGroup(spec.device);
  } else {
    device = std::make_unique<Device>(ProfileByName(spec.device));
  }

  for (std::size_t rep = 0; rep < spec.repetitions; ++rep) {
    const std::uint64_t rep_seed = spec.seed * 7919 + rep;
    Rng workload_rng(rep_seed);
    const std::vector<Query> training =
        generator.Generate(spec.workload, spec.training_queries,
                           &workload_rng);
    const std::vector<Query> test =
        generator.Generate(spec.workload, spec.test_queries, &workload_rng);

    EstimatorBuildContext context;
    context.device = device.get();
    context.device_group = group.get();
    context.executor = &executor;
    context.memory_bytes = spec.memory_bytes;
    context.seed = rep_seed;  // Same seed => same sample for all KDEs.
    context.training = training;

    for (const std::string& name : estimators) {
      auto estimator = BuildEstimator(name, context).MoveValueOrDie();
      // Self-tuning estimators absorb the training stream as feedback,
      // mirroring how the paper warms up STHoles and Adaptive.
      if (name == "kde_adaptive" || name == "stholes") {
        FeedbackDriver::Train(estimator.get(), training);
      }
      const RunStats stats =
          FeedbackDriver::RunPrecomputed(estimator.get(), test);
      result.errors_by_estimator[name].push_back(stats.MeanAbsoluteError());
    }
  }
  return result;
}

void CommonFlags::Register(FlagParser* parser) {
  parser->AddInt64("reps", &reps, "repetitions per experiment cell");
  parser->AddInt64("rows", &rows, "rows per generated dataset");
  parser->AddInt64("train", &train, "training queries per repetition");
  parser->AddInt64("test", &test, "test queries per repetition");
  parser->AddInt64("seed", &seed, "base random seed");
  parser->AddBool("csv", &csv, "emit CSV instead of an aligned table");
  parser->AddBool("full", &full,
                  "paper-sized preset (25 reps, more rows; slow)");
  parser->AddString("datasets", &datasets, "comma-separated dataset names");
  parser->AddString("workloads", &workloads,
                    "comma-separated workload names (dt,dv,ut,uv)");
  parser->AddString("estimators", &estimators,
                    "comma-separated estimator names");
}

void CommonFlags::Finalize() {
  if (full) {
    reps = 25;
    rows = std::max<std::int64_t>(rows, 500000);
  }
}

std::vector<std::string> SplitCsv(const std::string& value) {
  std::vector<std::string> out;
  std::string current;
  for (char c : value) {
    if (c == ',') {
      if (!current.empty()) out.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

std::vector<std::string> SummaryHeader(std::vector<std::string> prefix) {
  for (const char* col :
       {"mean", "min", "p25", "median", "p75", "max", "stddev"}) {
    prefix.emplace_back(col);
  }
  return prefix;
}

void AddSummaryColumns(TablePrinter* printer, std::vector<std::string> prefix,
                       const Summary& summary) {
  prefix.push_back(TablePrinter::Num(summary.mean));
  prefix.push_back(TablePrinter::Num(summary.min));
  prefix.push_back(TablePrinter::Num(summary.p25));
  prefix.push_back(TablePrinter::Num(summary.median));
  prefix.push_back(TablePrinter::Num(summary.p75));
  prefix.push_back(TablePrinter::Num(summary.max));
  prefix.push_back(TablePrinter::Num(summary.stddev));
  printer->AddRow(std::move(prefix));
}

}  // namespace bench
}  // namespace fkde
