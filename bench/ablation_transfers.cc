// Ablation: PCI-Express traffic of the maintenance schemes (Section 4.2).
//
// The Karma scheme exists because classic sample maintenance would stream
// the sample over the bus. This harness runs the evolving workload and
// meters, via the device transfer ledger, the per-query bus traffic of:
//   * adaptive + Karma/reservoir (the paper's design);
//   * adaptive without maintenance (lower bound);
//   * a strawman that re-uploads a fresh sample every K queries (what
//     "periodic rebuild" would cost).
//
// Expected result: Karma's traffic is within a small constant of the
// no-maintenance lower bound (bitmap + replaced rows), orders of
// magnitude below periodic re-upload.

#include <cstdio>

#include "harness.h"
#include "kde/kde_estimator.h"
#include "runtime/evolving_runner.h"
#include "workload/evolving.h"

namespace {

using namespace fkde;
using namespace fkde::bench;

struct Config {
  std::string name;
  bool karma = true;
  bool reservoir = true;
  std::size_t reupload_every = 0;  // 0 = never.
};

}  // namespace

int main(int argc, char** argv) {
  CommonFlags common;
  std::int64_t dims = 5;
  std::int64_t sample_size = 1024;
  FlagParser parser;
  common.Register(&parser);
  parser.AddInt64("dims", &dims, "dataset dimensionality");
  parser.AddInt64("sample-size", &sample_size, "KDE sample rows");
  parser.Parse(argc, argv).AbortIfError("flags");
  common.Finalize();

  const std::vector<Config> configs = {
      {"karma + reservoir (paper)", true, true, 0},
      {"reservoir only", false, true, 0},
      {"no maintenance", false, false, 0},
      {"re-upload every 10 queries", false, false, 10},
      {"re-upload every query", false, false, 1},
  };

  EvolvingParams params;
  params.dims = static_cast<std::size_t>(dims);
  params.cycles = 6;

  TablePrinter printer;
  printer.SetHeader({"strategy", "bytes_down/query", "bytes_up/query",
                     "late_error"});

  for (const Config& config : configs) {
    Table table(params.dims);
    Executor executor(&table);
    EvolvingWorkload workload(params, static_cast<std::uint64_t>(common.seed));
    EvolvingEvent event;
    std::size_t pending = params.initial_clusters * params.tuples_per_cluster;
    while (pending > 0 && workload.Next(table, &event)) {
      if (event.kind == EvolvingEvent::Kind::kInsert) {
        executor.Insert(event.row, event.tag);
        --pending;
      }
    }

    KdeConfig kde;
    kde.sample_size = static_cast<std::size_t>(sample_size);
    kde.seed = static_cast<std::uint64_t>(common.seed);
    kde.enable_karma = config.karma;
    kde.enable_reservoir = config.reservoir;
    Device device(DeviceProfile::SimulatedGtx460());
    auto estimator =
        KdeSelectivityEstimator::Create(
            KdeSelectivityEstimator::Mode::kAdaptive, &device, &table, kde)
            .MoveValueOrDie();

    // Run the rest of the stream manually so the strawman can re-upload.
    device.ResetLedger();
    Rng rng(static_cast<std::uint64_t>(common.seed) + 5);
    std::size_t queries = 0;
    std::vector<double> errors;
    while (workload.Next(table, &event)) {
      switch (event.kind) {
        case EvolvingEvent::Kind::kInsert:
          executor.Insert(event.row, event.tag);
          estimator->OnInsert(event.row, table.num_rows());
          break;
        case EvolvingEvent::Kind::kDeleteCluster:
          executor.DeleteByTag(event.tag);
          estimator->OnDelete(0, table.num_rows());
          break;
        case EvolvingEvent::Kind::kQuery: {
          ++queries;
          if (config.reupload_every > 0 &&
              queries % config.reupload_every == 0) {
            // Strawman: keep the sample fresh by re-drawing it.
            FKDE_CHECK_OK(
                estimator->engine()->sample()->LoadFromTable(table, &rng));
          }
          const double estimate =
              estimator->EstimateSelectivity(event.query.box);
          estimator->ObserveTrueSelectivity(event.query.box,
                                            event.query.selectivity);
          errors.push_back(std::abs(estimate - event.query.selectivity));
          break;
        }
      }
    }
    const TransferLedger& ledger = device.ledger();
    double late = 0.0;
    for (std::size_t i = 2 * errors.size() / 3; i < errors.size(); ++i) {
      late += errors[i];
    }
    late /= static_cast<double>(errors.size() - 2 * errors.size() / 3);
    printer.AddRow(
        {config.name,
         TablePrinter::Num(
             static_cast<double>(ledger.bytes_to_device) / queries, 5),
         TablePrinter::Num(
             static_cast<double>(ledger.bytes_to_host) / queries, 5),
         TablePrinter::Num(late, 4)});
    std::fprintf(stderr, "  done: %s\n", config.name.c_str());
  }
  printer.Print(common.csv);
  return 0;
}
