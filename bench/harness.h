/// \file harness.h
/// \brief Shared experiment protocol for the paper-reproduction benches.
///
/// Implements the Section 6.2 measurement protocol once so every figure
/// binary agrees on it:
///
///   1. generate the dataset (fixed per experiment cell);
///   2. per repetition: draw fresh training (default 100) and test
///      (default 300) queries from the workload;
///   3. build every estimator under the d*4kB memory budget; all KDE
///      variants share one sample per repetition (same construction seed);
///   4. give self-tuning estimators (Adaptive, STHoles) the training
///      stream as feedback; Batch receives it at construction;
///   5. measure the mean absolute selectivity error on the test stream
///      (feedback stays on, as in the paper's deployment scenario).

#ifndef FKDE_BENCH_HARNESS_H_
#define FKDE_BENCH_HARNESS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table_printer.h"
#include "data/generators.h"
#include "parallel/device.h"
#include "parallel/device_group.h"
#include "runtime/driver.h"
#include "runtime/executor.h"
#include "runtime/factory.h"
#include "workload/workload.h"

namespace fkde {
namespace bench {

/// \brief One experiment cell of the Figure 4/5 grid.
struct CellSpec {
  std::string dataset = "synthetic";
  std::size_t rows = 100000;
  std::size_t dims = 3;
  WorkloadSpec workload;
  std::size_t training_queries = 100;
  std::size_t test_queries = 300;
  std::size_t repetitions = 5;
  std::uint64_t seed = 1;
  /// Memory budget per estimator; 0 means the paper's d * 4kB.
  std::size_t memory_bytes = 0;
  /// Device topology for KDE variants: "cpu", "gpu", or a '+'-separated
  /// multi-device group such as "cpu+gpu" (the sample then shards across
  /// the group).
  std::string device = "cpu";
};

/// \brief Per-estimator outcome of one cell.
struct CellResult {
  /// Mean absolute error per repetition (boxplot raw data).
  std::map<std::string, std::vector<double>> errors_by_estimator;

  Summary SummaryFor(const std::string& estimator) const {
    auto it = errors_by_estimator.find(estimator);
    return it == errors_by_estimator.end() ? Summary()
                                           : Summarize(it->second);
  }
};

/// Resolves "cpu"/"gpu" into a device profile.
DeviceProfile ProfileByName(const std::string& name);

/// Builds a `DeviceGroup` from a '+'-separated topology ("cpu+gpu",
/// "gpu+gpu"); single names yield a one-device group.
std::unique_ptr<DeviceGroup> MakeDeviceGroup(const std::string& topology,
                                             DeviceGroupOptions options = {});

/// Runs one cell for the named estimators and returns the per-repetition
/// mean absolute errors. Estimators see identical queries within a
/// repetition (the paper's fairness rule).
CellResult RunCell(const CellSpec& spec,
                   const std::vector<std::string>& estimators);

/// Standard flag pack shared by the experiment binaries.
struct CommonFlags {
  std::int64_t reps = 3;
  std::int64_t rows = 50000;
  std::int64_t train = 100;
  std::int64_t test = 200;
  std::int64_t seed = 1;
  bool csv = false;
  bool full = false;  ///< Paper-sized preset (25 reps etc).
  std::string datasets = "synthetic,bike,forest,power,protein";
  std::string workloads = "dt,dv,ut,uv";
  std::string estimators =
      "stholes,kde_heuristic,kde_scv,kde_batch,kde_adaptive";

  void Register(FlagParser* parser);
  /// Applies the --full preset (call after Parse).
  void Finalize();
};

/// Splits a comma-separated flag value.
std::vector<std::string> SplitCsv(const std::string& value);

/// Formats a Summary as boxplot columns.
void AddSummaryColumns(TablePrinter* printer, std::vector<std::string> prefix,
                       const Summary& summary);

/// Boxplot header suffix used with AddSummaryColumns.
std::vector<std::string> SummaryHeader(std::vector<std::string> prefix);

}  // namespace bench
}  // namespace fkde

#endif  // FKDE_BENCH_HARNESS_H_
