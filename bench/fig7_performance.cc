// Figure 7: estimator runtime with growing model size.
//
// Measures the per-query estimation overhead of Heuristic and Adaptive on
// the CPU and the (simulated) GPU as the KDE sample grows 1K -> 256K
// points, plus STHoles under the equivalent memory budget, on a synthetic
// 8D table with random-volume (UV) queries — the paper's Section 6.4
// setup.
//
// Reported times:
//   * ms_modeled  — the device cost model (launch latency + transfers +
//     compute throughput); this is the Figure 7 y-axis. The GPU backend
//     executes on host threads, so only its modeled time is meaningful.
//   * ms_measured — wall-clock on this machine (CPU rows only,
//     informational).
//
// Between each estimate and its feedback the harness advances the modeled
// host clock by a per-query execution budget (Device::AdvanceHostTime) —
// the database executing the query. The adaptive estimator's enqueued
// gradient and Karma passes drain inside that window, so their compute
// never reaches ms_modeled: what remains of the Adaptive-Heuristic gap is
// the constant enqueue/read-back latencies, independent of model size.
// That is how Figure 7's constant offset emerges here — from the real
// dependency timeline, not from a flag that discounts the work.
//
// Expected qualitative result (paper):
//   * flat, latency-dominated region up to ~16-32K points, then linear;
//   * GPU ~4x faster than CPU in the linear regime; Adaptive within 1 ms
//     at 128K points on the GPU;
//   * the Adaptive-Heuristic gap is a constant (hidden gradient work,
//     only extra launch latencies remain);
//   * STHoles is faster for small models but 3-10x slower at large ones.

#include <cstdio>

#include "common/stopwatch.h"
#include "harness.h"

namespace {

using namespace fkde;
using namespace fkde::bench;

struct Row {
  std::string model_points;
  std::string estimator;
  std::string device;
  double ms_modeled = 0.0;
  double ms_measured = 0.0;
  /// Host stall fraction of the modeled clock (Event::Wait time /
  /// ModeledSeconds), summed across group members for '+'-topologies.
  double idle_gap = 0.0;
  /// Per-member stall fraction for '+'-topologies (empty otherwise): the
  /// group aggregate hides which shard the host actually waited on.
  std::vector<double> shard_idle_gaps;
  std::string note;
};

std::string JsonEscape(const std::string& value) {
  std::string out;
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

// Machine-readable mirror of the table for CI trend tracking.
void WriteJson(const std::string& path, const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"fig7_performance\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(f,
                 "    {\"model_points\": %s, \"estimator\": \"%s\", "
                 "\"device\": \"%s\", \"ms_modeled\": %.6g, "
                 "\"ms_measured\": %.6g, \"idle_gap\": %.6g, "
                 "\"shard_idle_gaps\": [",
                 row.model_points.c_str(), JsonEscape(row.estimator).c_str(),
                 JsonEscape(row.device).c_str(), row.ms_modeled,
                 row.ms_measured, row.idle_gap);
    for (std::size_t s = 0; s < row.shard_idle_gaps.size(); ++s) {
      std::fprintf(f, "%s%.6g", s > 0 ? ", " : "", row.shard_idle_gaps[s]);
    }
    std::fprintf(f, "], \"note\": \"%s\"}%s\n", JsonEscape(row.note).c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  CommonFlags common;
  common.rows = 300000;
  std::string sizes_flag = "1024,4096,16384,65536,131072,262144";
  std::int64_t dims = 8;
  std::int64_t queries = 100;
  std::int64_t sth_train = 1500;
  std::int64_t exec_ms = 50;
  FlagParser parser;
  common.Register(&parser);
  parser.AddString("sizes", &sizes_flag, "comma-separated model sizes");
  parser.AddInt64("dims", &dims, "dataset dimensionality");
  parser.AddInt64("queries", &queries, "measured queries per configuration");
  parser.AddInt64("sth-train", &sth_train,
                  "feedback queries used to fill the STHoles model");
  parser.AddInt64("exec-ms", &exec_ms,
                  "modeled per-query database execution time that hides "
                  "enqueued estimator work (ms)");
  std::string json_path = "BENCH_fig7.json";
  parser.AddString("json", &json_path,
                   "machine-readable output path (empty disables)");
  parser.Parse(argc, argv).AbortIfError("flags");
  common.Finalize();
  if (common.full) {
    common.rows = 3000000;  // The paper's 3M-row table.
    sth_train = 10000;
  }

  Table table = GenerateDataset("synthetic", common.rows, dims, common.seed)
                    .MoveValueOrDie();
  Executor executor(&table);
  executor.BuildIndex();
  WorkloadGenerator generator(table);
  Rng rng(static_cast<std::uint64_t>(common.seed) + 1);
  const WorkloadSpec uv = ParseWorkloadName("uv").ValueOrDie();
  const std::vector<Query> workload =
      generator.Generate(uv, static_cast<std::size_t>(queries), &rng);

  std::vector<Row> rows;
  for (const std::string& size_str : SplitCsv(sizes_flag)) {
    const std::size_t points = std::stoul(size_str);
    const std::size_t bytes = points * dims * sizeof(float);

    // Single devices, then the sharded multi-device groups (Section 5.4
    // past one device's ceiling): the '+'-topologies split the sample
    // across the devices, every per-query pass runs per-shard
    // concurrently, and the group-level modeled cost is the max over the
    // member clocks. cpu-simd is the vectorized CPU backend whose modeled
    // throughput comes from the measured calibration ratio.
    for (const std::string device_name :
         {"cpu", "cpu-simd", "gpu", "cpu+gpu", "cpu-simd+gpu", "gpu+gpu"}) {
      for (const std::string estimator_name :
           {"kde_heuristic", "kde_adaptive"}) {
        const bool grouped = device_name.find('+') != std::string::npos;
        std::unique_ptr<DeviceGroup> group;
        std::unique_ptr<Device> device;
        if (grouped) {
          group = MakeDeviceGroup(device_name);
        } else {
          device = std::make_unique<Device>(ProfileByName(device_name));
        }
        EstimatorBuildContext context;
        context.device = device.get();
        context.device_group = group.get();
        context.executor = &executor;
        context.memory_bytes = bytes;
        context.seed = static_cast<std::uint64_t>(common.seed);
        auto estimator =
            BuildEstimator(estimator_name, context).MoveValueOrDie();

        const auto advance = [&](double seconds) {
          if (grouped) {
            group->AdvanceHostTime(seconds);
          } else {
            device->AdvanceHostTime(seconds);
          }
        };

        // Warm once, then measure the estimate+feedback loop. The
        // modeled execution window between estimate and feedback is
        // where the enqueued gradient/Karma passes drain.
        const double exec_s = static_cast<double>(exec_ms) * 1e-3;
        (void)estimator->EstimateSelectivity(workload[0].box);
        advance(exec_s);
        estimator->ObserveTrueSelectivity(workload[0].box,
                                          workload[0].selectivity);
        if (grouped) {
          group->ResetModeledTime();
        } else {
          device->ResetModeledTime();
        }
        Stopwatch watch;
        for (const Query& query : workload) {
          (void)estimator->EstimateSelectivity(query.box);
          advance(exec_s);
          estimator->ObserveTrueSelectivity(query.box, query.selectivity);
        }
        Row row;
        row.model_points = size_str;
        row.estimator = estimator_name;
        row.device = device_name;
        row.ms_modeled = (grouped ? group->MaxModeledSeconds()
                                  : device->ModeledSeconds()) *
                         1e3 / workload.size();
        const double modeled_s =
            grouped ? group->MaxModeledSeconds() : device->ModeledSeconds();
        const double stall_s = grouped ? group->TotalHostStallSeconds()
                                       : device->HostStallSeconds();
        row.idle_gap = modeled_s > 0.0 ? stall_s / modeled_s : 0.0;
        if (grouped) {
          for (std::size_t i = 0; i < group->size(); ++i) {
            row.shard_idle_gaps.push_back(
                group->device(i)->IdleGapFraction());
          }
        }
        // Backends executing on real host threads also report wall-clock.
        row.ms_measured = (device_name == "cpu" || device_name == "cpu-simd")
                              ? watch.ElapsedMillis() / workload.size()
                              : 0.0;
        if (grouped) {
          DeviceSample* sample =
              static_cast<KdeSelectivityEstimator*>(estimator.get())
                  ->engine()
                  ->sample();
          std::string shards;
          for (std::size_t sz : sample->shard_sizes()) {
            if (!shards.empty()) shards += "/";
            shards += std::to_string(sz);
          }
          row.note = "shards " + shards + ", migrated " +
                     std::to_string(sample->rows_migrated());
        }
        rows.push_back(row);
      }
    }

    // STHoles under the same memory budget: filled by a training
    // workload, then measured on estimation only (the paper excludes
    // its maintenance time).
    {
      SthOptions options;
      options.max_buckets = SthBucketBudgetForBytes(bytes, dims);
      STHoles histogram(table.Bounds(), table.num_rows(),
                        executor.MakeRegionCounter(), options);
      Rng train_rng(static_cast<std::uint64_t>(common.seed) + 2);
      const WorkloadSpec dt = ParseWorkloadName("dt").ValueOrDie();
      Stopwatch maintenance_watch;
      double maintenance_ms = 0.0;
      std::int64_t trained = 0;
      for (; trained < sth_train &&
             histogram.NumBuckets() < options.max_buckets;
           ++trained) {
        const Query query = generator.GenerateOne(dt, &train_rng);
        (void)histogram.EstimateSelectivity(query.box);
        maintenance_watch.Reset();
        histogram.ObserveTrueSelectivity(query.box, query.selectivity);
        maintenance_ms += maintenance_watch.ElapsedMillis();
      }
      Stopwatch watch;
      for (const Query& query : workload) {
        (void)histogram.EstimateSelectivity(query.box);
      }
      Row row;
      row.model_points = size_str;
      row.estimator = "stholes";
      row.device = "cpu";
      row.ms_measured = watch.ElapsedMillis() / workload.size();
      row.ms_modeled = row.ms_measured;  // Host structure: measured = model.
      char note[96];
      std::snprintf(note, sizeof(note),
                    "%zu/%zu buckets, maintenance %.2f ms/query",
                    histogram.NumBuckets(), options.max_buckets,
                    trained > 0 ? maintenance_ms / trained : 0.0);
      row.note = note;
      rows.push_back(row);
    }
    std::fprintf(stderr, "  done: %zu points\n", points);
  }

  TablePrinter printer;
  printer.SetHeader({"model_points", "estimator", "device", "ms_modeled",
                     "ms_measured", "idle_gap", "note"});
  for (const Row& row : rows) {
    printer.AddRow({row.model_points, row.estimator, row.device,
                    TablePrinter::Num(row.ms_modeled, 4),
                    row.ms_measured > 0.0
                        ? TablePrinter::Num(row.ms_measured, 4)
                        : "-",
                    TablePrinter::Num(row.idle_gap, 3),
                    row.note.empty() ? "-" : row.note});
  }
  printer.Print(common.csv);
  if (!json_path.empty()) WriteJson(json_path, rows);
  return 0;
}
