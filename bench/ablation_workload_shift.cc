// Ablation: bandwidth adaptation under WORKLOAD change (Section 4.1).
//
// Figure 8 covers database changes; this harness isolates the other
// trigger the paper names for online learning — "changes in the query
// workload ... lead to a gradual change in the optimal bandwidth
// configuration". The data is static; the query focus moves:
//
//   phase A: DT queries centered on one region of the data;
//   phase B: the focus jumps to a different region with much finer
//            structure (different optimal bandwidth).
//
// kde_batch is trained on phase A and frozen; kde_periodic re-optimizes
// over a ring buffer of recent feedback (Section 3.4's deployment
// recipe); kde_adaptive keeps learning online. Expected: all do well in
// phase A; after the shift the frozen Batch model stays tuned to the old
// workload while Periodic and Adaptive re-converge.

#include <cstdio>

#include "harness.h"
#include "kde/kde_estimator.h"

namespace {

using namespace fkde;
using namespace fkde::bench;

/// Two-region dataset: region A is broad and smooth, region B is a grid
/// of many tiny clusters (needs a much smaller bandwidth).
Table TwoRegimeTable(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  Table table(2);
  for (std::size_t i = 0; i < rows; ++i) {
    if (rng.Bernoulli(0.5)) {
      // Region A: broad blob around (0.25, 0.25).
      table.Insert(std::vector<double>{rng.Gaussian(0.25, 0.08),
                                       rng.Gaussian(0.25, 0.08)});
    } else {
      // Region B: 5x5 grid of tight spikes around (0.75, 0.75).
      const double gx = 0.65 + 0.05 * rng.UniformInt(std::uint64_t{5});
      const double gy = 0.65 + 0.05 * rng.UniformInt(std::uint64_t{5});
      table.Insert(std::vector<double>{rng.Gaussian(gx, 0.004),
                                       rng.Gaussian(gy, 0.004)});
    }
  }
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  CommonFlags common;
  std::int64_t phase_queries = 300;
  FlagParser parser;
  common.Register(&parser);
  parser.AddInt64("phase-queries", &phase_queries, "queries per phase");
  parser.Parse(argc, argv).AbortIfError("flags");
  common.Finalize();

  TablePrinter printer;
  printer.SetHeader(
      {"rep", "phase", "window", "kde_batch", "kde_periodic",
       "kde_adaptive"});

  for (std::int64_t rep = 0; rep < common.reps; ++rep) {
    const std::uint64_t seed = static_cast<std::uint64_t>(common.seed) + rep;
    Table table = TwoRegimeTable(static_cast<std::size_t>(common.rows), seed);
    Executor executor(&table);
    executor.BuildIndex();
    const WorkloadGenerator generator(table);
    Rng rng(seed + 1);

    // Region-focused DT queries: restrict centers by rejection sampling.
    auto region_queries = [&](bool region_b, std::size_t count) {
      const WorkloadSpec dt = ParseWorkloadName("dt").ValueOrDie();
      std::vector<Query> queries;
      while (queries.size() < count) {
        Query q = generator.GenerateOne(dt, &rng);
        const double cx = q.box.Center(0);
        const bool in_b = cx > 0.5;
        if (in_b == region_b) queries.push_back(std::move(q));
      }
      return queries;
    };
    const auto train_a = region_queries(false, 100);
    const auto phase_a =
        region_queries(false, static_cast<std::size_t>(phase_queries));
    const auto phase_b =
        region_queries(true, static_cast<std::size_t>(phase_queries));

    Device device(ProfileByName("cpu"));
    EstimatorBuildContext context;
    context.device = &device;
    context.executor = &executor;
    context.seed = seed;
    context.training = train_a;
    auto batch = BuildEstimator("kde_batch", context).MoveValueOrDie();
    auto periodic = BuildEstimator("kde_periodic", context).MoveValueOrDie();
    auto adaptive = BuildEstimator("kde_adaptive", context).MoveValueOrDie();
    FeedbackDriver::Train(periodic.get(), train_a);
    FeedbackDriver::Train(adaptive.get(), train_a);

    // Run both phases, recording windowed errors.
    auto run_phase = [&](const std::vector<Query>& queries,
                         const char* phase) {
      const RunStats batch_stats =
          FeedbackDriver::RunPrecomputed(batch.get(), queries);
      const RunStats periodic_stats =
          FeedbackDriver::RunPrecomputed(periodic.get(), queries);
      const RunStats adaptive_stats =
          FeedbackDriver::RunPrecomputed(adaptive.get(), queries);
      const std::size_t windows = 3;
      const std::size_t per = queries.size() / windows;
      for (std::size_t w = 0; w < windows; ++w) {
        double batch_mean = 0.0, periodic_mean = 0.0, adaptive_mean = 0.0;
        for (std::size_t i = w * per; i < (w + 1) * per; ++i) {
          batch_mean += batch_stats.absolute_errors[i];
          periodic_mean += periodic_stats.absolute_errors[i];
          adaptive_mean += adaptive_stats.absolute_errors[i];
        }
        printer.AddRow({std::to_string(rep), phase, std::to_string(w),
                        TablePrinter::Num(batch_mean / per, 4),
                        TablePrinter::Num(periodic_mean / per, 4),
                        TablePrinter::Num(adaptive_mean / per, 4)});
      }
    };
    run_phase(phase_a, "A (trained focus)");
    run_phase(phase_b, "B (shifted focus)");
    std::fprintf(stderr, "  done: rep %lld\n", static_cast<long long>(rep));
  }
  printer.Print(common.csv);
  std::printf("\nafter the shift (phase B), the frozen batch model keeps "
              "phase-A smoothing; periodic re-optimizes at its next window "
              "and adaptive re-converges within a few mini-batches.\n");
  return 0;
}
