// Kernel-backend throughput check: measures the per-element throughput of
// the scalar and simd fused-contribution loops (the calibration the cost
// model installs into the cpu-simd profile), prints a human table, writes
// the machine-readable BENCH_micro.json, and exits non-zero when the simd
// backend misses the required speedup — the tentpole's >= 3x acceptance
// gate at s = 256K, d = 3.
//
// On hosts without AVX2 (or with FKDE_KERNEL_BACKEND=scalar forced) the
// gate is skipped: the ratio is reported as 1x and the exit code is 0,
// so CI legs that force the scalar fallback still pass.

#include <cstdio>

#include "common/flags.h"
#include "common/table_printer.h"
#include "kde/kernel_backend.h"
#include "parallel/device.h"
#include "parallel/simd.h"

int main(int argc, char** argv) {
  using namespace fkde;

  std::int64_t rows = 262144;
  std::int64_t dims = 3;
  std::int64_t reps = 5;
  double min_speedup = 3.0;
  std::string json_path = "BENCH_micro.json";
  bool csv = false;
  FlagParser parser;
  parser.AddInt64("rows", &rows, "sample points per measurement");
  parser.AddInt64("dims", &dims, "dimensions per point");
  parser.AddInt64("reps", &reps, "timed repetitions per backend");
  parser.AddDouble("min-speedup", &min_speedup,
                   "required simd/scalar throughput ratio (0 disables)");
  parser.AddString("json", &json_path,
                   "machine-readable output path (empty disables)");
  parser.AddBool("csv", &csv, "emit CSV instead of an aligned table");
  parser.Parse(argc, argv).AbortIfError("flags");

  const bool simd_available =
      ResolveKernelBackend(KernelBackend::kSimd) == KernelBackend::kSimd;

  struct Cell {
    const char* name;
    KernelBackend backend;
    KernelPrecision precision;
    double ops_per_sec = 0.0;
  };
  Cell cells[] = {
      {"scalar", KernelBackend::kScalar, KernelPrecision::kDouble},
      {"simd-double", KernelBackend::kSimd, KernelPrecision::kDouble},
      {"simd-float", KernelBackend::kSimd, KernelPrecision::kFloat},
  };
  for (Cell& cell : cells) {
    cell.ops_per_sec = kb::MeasureFusedContributionThroughput(
        cell.backend, cell.precision, KernelType::kGaussian,
        static_cast<std::size_t>(rows), static_cast<std::size_t>(dims),
        static_cast<std::size_t>(reps));
  }

  // The acceptance ratio is mixed precision vs the scalar reference —
  // the same pair the cost-model calibration installs.
  const double ratio =
      simd_available ? cells[2].ops_per_sec / cells[0].ops_per_sec : 1.0;

  TablePrinter printer;
  printer.SetHeader({"backend", "precision", "Melem/s", "speedup"});
  for (const Cell& cell : cells) {
    const bool is_simd = cell.backend == KernelBackend::kSimd;
    printer.AddRow(
        {cell.name, KernelPrecisionName(cell.precision),
         TablePrinter::Num(cell.ops_per_sec * 1e-6, 4),
         TablePrinter::Num(cell.ops_per_sec / cells[0].ops_per_sec, 3)});
    if (is_simd && !simd_available) break;  // Fallback rows are identical.
  }
  printer.Print(csv);
  if (!simd_available) {
    std::fprintf(stderr,
                 "simd backend resolves to scalar here (no AVX2 or forced "
                 "off); speedup gate skipped\n");
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\n  \"benchmark\": \"backend_check\",\n"
                   "  \"rows\": %lld,\n  \"dims\": %lld,\n"
                   "  \"simd_available\": %s,\n  \"cells\": [\n",
                   static_cast<long long>(rows),
                   static_cast<long long>(dims),
                   simd_available ? "true" : "false");
      const std::size_t n = sizeof(cells) / sizeof(cells[0]);
      for (std::size_t i = 0; i < n; ++i) {
        std::fprintf(
            f,
            "    {\"backend\": \"%s\", \"elements_per_sec\": %.6g, "
            "\"speedup\": %.6g}%s\n",
            cells[i].name, cells[i].ops_per_sec,
            cells[i].ops_per_sec / cells[0].ops_per_sec,
            i + 1 < n ? "," : "");
      }
      std::fprintf(f, "  ],\n  \"mixed_precision_speedup\": %.6g\n}\n",
                   ratio);
      std::fclose(f);
      std::fprintf(stderr, "wrote %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    }
  }

  if (simd_available && min_speedup > 0.0 && ratio < min_speedup) {
    std::fprintf(stderr, "FAIL: simd speedup %.2fx < required %.2fx\n",
                 ratio, min_speedup);
    return 1;
  }
  std::printf("simd mixed-precision speedup: %.2fx (gate: %s)\n", ratio,
              simd_available && min_speedup > 0.0 ? "enforced" : "skipped");
  return 0;
}
