// Ablation: variable (adaptive) KDE vs the fixed-bandwidth model — the
// paper's Section 8 extension. For each dataset, compares the mean
// absolute error of the batch-optimized fixed model against the same
// model with Abramson per-point scales installed, sweeping the
// sensitivity exponent.
//
// Expected result: on strongly clustered data the variable model helps
// (tighter smoothing inside clusters, wider in sparse regions); on
// near-homogeneous data the sensitivity sweep is flat.

#include <cstdio>

#include "harness.h"
#include "kde/batch.h"
#include "kde/variable.h"

int main(int argc, char** argv) {
  using namespace fkde;
  using namespace fkde::bench;

  CommonFlags common;
  std::int64_t dims = 3;
  std::string sensitivities = "0,0.25,0.5";
  FlagParser parser;
  common.Register(&parser);
  parser.AddInt64("dims", &dims, "dataset dimensionality");
  parser.AddString("sensitivities", &sensitivities,
                   "comma-separated Abramson exponents");
  parser.Parse(argc, argv).AbortIfError("flags");
  common.Finalize();

  TablePrinter printer;
  printer.SetHeader({"dataset", "rep", "fixed_error", "sensitivity",
                     "variable_error"});

  for (const std::string& dataset : SplitCsv(common.datasets)) {
    Table table = GenerateDataset(dataset,
                                  static_cast<std::size_t>(common.rows),
                                  static_cast<std::size_t>(dims),
                                  static_cast<std::uint64_t>(common.seed))
                      .MoveValueOrDie();
    const WorkloadGenerator generator(table);
    const WorkloadSpec dt = ParseWorkloadName("dt").ValueOrDie();
    Device device(ProfileByName("cpu"));

    for (std::int64_t rep = 0; rep < common.reps; ++rep) {
      Rng rng(static_cast<std::uint64_t>(common.seed) * 17 + rep);
      const auto training =
          generator.Generate(dt, static_cast<std::size_t>(common.train),
                             &rng);
      const auto test = generator.Generate(
          dt, static_cast<std::size_t>(common.test), &rng);

      DeviceSample sample(&device, 1024, table.num_cols());
      FKDE_CHECK_OK(sample.LoadFromTable(table, &rng));
      KdeEngine engine(&sample, KernelType::kGaussian);
      (void)OptimizeBandwidthBatch(&engine, training, BatchOptions(), &rng)
          .ValueOrDie();

      auto mean_error = [&] {
        double total = 0.0;
        for (const Query& q : test) {
          total += std::abs(engine.Estimate(q.box) - q.selectivity);
        }
        return total / static_cast<double>(test.size());
      };
      engine.ClearPointScales();
      const double fixed_error = mean_error();

      const std::vector<double> fixed_bandwidth = engine.bandwidth();
      for (const std::string& s_str : SplitCsv(sensitivities)) {
        VariableKdeOptions options;
        options.sensitivity = std::stod(s_str);
        engine.ClearPointScales();
        FKDE_CHECK_OK(engine.SetBandwidth(fixed_bandwidth));
        FKDE_CHECK_OK(EnableVariableKde(&engine, options));
        // Section 8: "our bandwidth optimization approach should be
        // portable to variable KDE models" — re-optimize the global
        // bandwidth with the per-point scales installed.
        if (options.sensitivity > 0.0) {
          (void)OptimizeBandwidthBatch(&engine, training, BatchOptions(),
                                       &rng)
              .ValueOrDie();
        }
        printer.AddRow({dataset, std::to_string(rep),
                        TablePrinter::Num(fixed_error, 4), s_str,
                        TablePrinter::Num(mean_error(), 4)});
      }
    }
    std::fprintf(stderr, "  done: %s\n", dataset.c_str());
  }
  printer.Print(common.csv);
  return 0;
}
