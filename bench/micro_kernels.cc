// Microbenchmarks (google-benchmark) for the device kernels behind
// Figure 7: the estimate kernel (eq. 13), the fused estimate+gradient
// kernel (eq. 17), the binary-tree reduction, Scott's rule, and the Karma
// update pass. These give the per-point costs that the Figure 7 cost
// model is built from.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "data/generators.h"
#include "kde/engine.h"
#include "kde/karma.h"
#include "kde/kernel_backend.h"
#include "parallel/device_group.h"
#include "parallel/simd.h"

namespace fkde {
namespace {

struct MicroFixture {
  MicroFixture(std::size_t sample_size, std::size_t dims)
      : device(DeviceProfile::OpenClCpu()),
        sample(&device, sample_size, dims) {
    ClusterBoxesParams params;
    params.rows = sample_size * 2;
    params.dims = dims;
    const Table table = GenerateClusterBoxes(params, 7);
    Rng rng(8);
    FKDE_CHECK_OK(sample.LoadFromTable(table, &rng));
    engine = std::make_unique<KdeEngine>(&sample, KernelType::kGaussian);
    std::vector<double> lo(dims, 0.25), hi(dims, 0.75);
    box = Box(lo, hi);
  }

  std::vector<Box> RandomBoxes(std::size_t count) const {
    const std::size_t dims = sample.dims();
    Rng rng(9);
    std::vector<Box> boxes;
    boxes.reserve(count);
    for (std::size_t q = 0; q < count; ++q) {
      std::vector<double> lo(dims), hi(dims);
      for (std::size_t j = 0; j < dims; ++j) {
        const double a = rng.Uniform(), b = rng.Uniform();
        lo[j] = std::min(a, b);
        hi[j] = std::max(a, b);
      }
      boxes.emplace_back(lo, hi);
    }
    return boxes;
  }

  Device device;
  DeviceSample sample;
  std::unique_ptr<KdeEngine> engine;
  Box box;
};

void BM_Estimate(benchmark::State& state) {
  MicroFixture fixture(static_cast<std::size_t>(state.range(0)),
                       static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.engine->Estimate(fixture.box));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_Estimate)
    ->ArgsProduct({{1024, 16384, 131072}, {3, 8}})
    ->Unit(benchmark::kMicrosecond);

void BM_EstimateWithGradient(benchmark::State& state) {
  MicroFixture fixture(static_cast<std::size_t>(state.range(0)),
                       static_cast<std::size_t>(state.range(1)));
  std::vector<double> gradient;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.engine->EstimateWithGradient(fixture.box, &gradient));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_EstimateWithGradient)
    ->ArgsProduct({{1024, 16384, 131072}, {3, 8}})
    ->Unit(benchmark::kMicrosecond);

// Batched multi-query evaluation vs the per-query loop it replaces, over
// the bandwidth-optimization batch sizes (m queries x s sample points).
// args: {s, m}.
void BM_EstimateBatch(benchmark::State& state) {
  MicroFixture fixture(static_cast<std::size_t>(state.range(0)), 3);
  const std::vector<Box> boxes =
      fixture.RandomBoxes(static_cast<std::size_t>(state.range(1)));
  std::vector<double> estimates(boxes.size());
  for (auto _ : state) {
    fixture.engine->EstimateBatch(boxes, estimates);
    benchmark::DoNotOptimize(estimates.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_EstimateBatch)
    ->ArgsProduct({{1024, 16384}, {1, 10, 100}})
    ->Unit(benchmark::kMicrosecond);

void BM_EstimatePerQueryLoop(benchmark::State& state) {
  MicroFixture fixture(static_cast<std::size_t>(state.range(0)), 3);
  const std::vector<Box> boxes =
      fixture.RandomBoxes(static_cast<std::size_t>(state.range(1)));
  for (auto _ : state) {
    for (const Box& box : boxes) {
      benchmark::DoNotOptimize(fixture.engine->Estimate(box));
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_EstimatePerQueryLoop)
    ->ArgsProduct({{1024, 16384}, {1, 10, 100}})
    ->Unit(benchmark::kMicrosecond);

void BM_EstimateBatchLossGradient(benchmark::State& state) {
  MicroFixture fixture(static_cast<std::size_t>(state.range(0)), 3);
  const std::vector<Box> boxes =
      fixture.RandomBoxes(static_cast<std::size_t>(state.range(1)));
  const std::vector<double> truths(boxes.size(), 0.1);
  std::vector<double> gradient;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.engine->EstimateBatchLoss(
        boxes, truths, LossType::kQuadratic, 1e-5, &gradient));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_EstimateBatchLossGradient)
    ->ArgsProduct({{1024, 16384}, {1, 10, 100}})
    ->Unit(benchmark::kMicrosecond);

void BM_EstimateGradientPerQueryLoop(benchmark::State& state) {
  MicroFixture fixture(static_cast<std::size_t>(state.range(0)), 3);
  const std::vector<Box> boxes =
      fixture.RandomBoxes(static_cast<std::size_t>(state.range(1)));
  const std::vector<double> truths(boxes.size(), 0.1);
  std::vector<double> gradient;
  for (auto _ : state) {
    double loss = 0.0;
    for (std::size_t q = 0; q < boxes.size(); ++q) {
      const double est =
          fixture.engine->EstimateWithGradient(boxes[q], &gradient);
      loss += EvaluateLoss(LossType::kQuadratic, est, truths[q], 1e-5);
    }
    benchmark::DoNotOptimize(loss);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_EstimateGradientPerQueryLoop)
    ->ArgsProduct({{1024, 16384}, {1, 10, 100}})
    ->Unit(benchmark::kMicrosecond);

// Host-side cost of submitting one command to the in-order queue without
// waiting for it — the price the adaptive loop pays per enqueued gradient
// command. The queue drains after timing ends.
void BM_EnqueueLaunchOverhead(benchmark::State& state) {
  Device device(DeviceProfile::OpenClCpu());
  CommandQueue* queue = device.default_queue();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        queue->EnqueueLaunch("nop", 1, 1.0, [](std::size_t, std::size_t) {}));
  }
  queue->Finish();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnqueueLaunchOverhead)->Unit(benchmark::kNanosecond);

void BM_BlockingLaunchOverhead(benchmark::State& state) {
  Device device(DeviceProfile::OpenClCpu());
  for (auto _ : state) {
    device.Launch("nop", 1, 1.0, [](std::size_t, std::size_t) {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockingLaunchOverhead)->Unit(benchmark::kNanosecond);

// Overlap efficiency of the adaptive gradient pass. The sync variant
// blocks on the full estimate+gradient pipeline; the enqueued variant
// hides the gradient behind a modeled query-execution window. Both report
// the modeled per-query milliseconds and the idle-gap fraction
// (HostStallSeconds / ModeledSeconds): sync stalls for most of its
// modeled time, enqueued should stall for almost none of it.
void ReportModeledCounters(benchmark::State& state, const Device& device) {
  const double modeled = device.ModeledSeconds();
  const double iters = static_cast<double>(state.iterations());
  state.counters["modeled_ms"] =
      iters > 0.0 ? modeled * 1e3 / iters : 0.0;
  state.counters["idle_gap"] = device.IdleGapFraction();
}

void BM_GradientSync(benchmark::State& state) {
  MicroFixture fixture(static_cast<std::size_t>(state.range(0)), 8);
  std::vector<double> gradient;
  fixture.device.ResetModeledTime();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.engine->EstimateWithGradient(fixture.box, &gradient));
  }
  ReportModeledCounters(state, fixture.device);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GradientSync)
    ->Arg(1024)
    ->Arg(131072)
    ->Unit(benchmark::kMicrosecond);

void BM_GradientEnqueued(benchmark::State& state) {
  MicroFixture fixture(static_cast<std::size_t>(state.range(0)), 8);
  // Execution window comfortably above the largest gradient pass here
  // (131072 points x 8 dims x 3 ops at CPU throughput ~= 12 ms).
  constexpr double kQueryExecutionS = 25e-3;
  std::vector<double> gradient;
  fixture.device.ResetModeledTime();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.engine->Estimate(fixture.box));
    fixture.engine->EnqueueGradient();
    fixture.device.AdvanceHostTime(kQueryExecutionS);
    fixture.engine->CollectGradient(&gradient);
    benchmark::DoNotOptimize(gradient.data());
  }
  ReportModeledCounters(state, fixture.device);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GradientEnqueued)
    ->Arg(1024)
    ->Arg(131072)
    ->Unit(benchmark::kMicrosecond);

void BM_ReduceSum(benchmark::State& state) {
  Device device(DeviceProfile::OpenClCpu());
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto buffer = device.CreateBuffer<double>(n);
  std::vector<double> data(n, 1.0);
  device.CopyToDevice(data.data(), n, &buffer);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReduceSum(&device, buffer, 0, n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReduceSum)
    ->Arg(1024)
    ->Arg(65536)
    ->Arg(1 << 20)
    ->Unit(benchmark::kMicrosecond);

void BM_ScottBandwidth(benchmark::State& state) {
  MicroFixture fixture(static_cast<std::size_t>(state.range(0)), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.engine->ComputeScottBandwidth());
  }
}
BENCHMARK(BM_ScottBandwidth)
    ->Arg(1024)
    ->Arg(65536)
    ->Unit(benchmark::kMicrosecond);

void BM_KarmaUpdate(benchmark::State& state) {
  MicroFixture fixture(static_cast<std::size_t>(state.range(0)), 5);
  KarmaMaintainer karma(fixture.engine.get(), KarmaOptions());
  (void)fixture.engine->Estimate(fixture.box);
  for (auto _ : state) {
    benchmark::DoNotOptimize(karma.Update(fixture.box, 0.01));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KarmaUpdate)
    ->Arg(1024)
    ->Arg(65536)
    ->Unit(benchmark::kMicrosecond);

void BM_SampleReplaceRow(benchmark::State& state) {
  MicroFixture fixture(1024, 8);
  const std::vector<double> row(8, 0.5);
  std::size_t slot = 0;
  for (auto _ : state) {
    fixture.sample.ReplaceRow(slot, row);
    slot = (slot + 1) % fixture.sample.size();
  }
}
BENCHMARK(BM_SampleReplaceRow)->Unit(benchmark::kNanosecond);

// The raw fused contribution loop of one kernel backend, outside the
// device/queue machinery: per-element cost of the scalar reference, the
// simd double path (hoisted scalar math over SoA strips; 4-wide for
// Epanechnikov), and the simd float path (8-wide AVX2 with the polynomial
// erf/exp lanes). This is the tentpole's per-element number — the
// speedup column is the calibration ratio the cost model installs.
// args: {sample_size, backend(0=scalar, 1=simd-double, 2=simd-float)}.
void BM_FusedContribution(benchmark::State& state) {
  const std::size_t s = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 3;
  const KernelBackend requested =
      state.range(1) == 0 ? KernelBackend::kScalar : KernelBackend::kSimd;
  const KernelPrecision requested_precision = state.range(1) == 2
                                                  ? KernelPrecision::kFloat
                                                  : KernelPrecision::kDouble;
  const KernelBackend backend = ResolveKernelBackend(requested);
  if (requested == KernelBackend::kSimd &&
      backend != KernelBackend::kSimd) {
    state.SkipWithError("simd backend unavailable (no AVX2 or forced off)");
    return;
  }
  Rng rng(8);
  std::vector<float> aos(s * d);
  for (float& x : aos) x = static_cast<float>(rng.Uniform());
  std::vector<float> soa(s * d);
  for (std::size_t i = 0; i < s; ++i) {
    for (std::size_t j = 0; j < d; ++j) soa[j * s + i] = aos[i * d + j];
  }
  const std::vector<double> h(d, 0.12);
  std::vector<double> bounds(2 * d);
  for (std::size_t j = 0; j < d; ++j) {
    bounds[2 * j] = 0.2;
    bounds[2 * j + 1] = 0.7;
  }
  kb::ShardKernelView view;
  view.backend = backend;
  view.precision = ResolveKernelPrecision(requested_precision);
  view.kernel = KernelType::kGaussian;
  view.d = d;
  view.aos = aos.data();
  view.soa = backend == KernelBackend::kSimd ? soa.data() : nullptr;
  view.soa_stride = s;
  view.h = h.data();
  std::vector<double> contrib(s);
  for (auto _ : state) {
    kb::FusedContribution(view, bounds.data(), contrib.data(), 0, s);
    benchmark::DoNotOptimize(contrib.data());
  }
  state.SetItemsProcessed(state.iterations() * s * d);
}
BENCHMARK(BM_FusedContribution)
    ->ArgsProduct({{16384, 262144}, {0, 1, 2}})
    ->Unit(benchmark::kMicrosecond);

// Sharded estimation across a DeviceGroup vs the same sample on one
// device. Per-device counters expose how well the concurrent per-shard
// chains overlap on the modeled timeline: modeled_ms is the group max,
// idle_gap_i each member's stall fraction (host waiting on the fold).
// args: {sample_size, topology(0=cpu+gpu, 1=gpu+gpu, 2=cpu-simd+gpu)}.
void BM_EstimateSharded(benchmark::State& state) {
  const std::size_t sample_size = static_cast<std::size_t>(state.range(0));
  static const char* kTopologies[] = {"cpu+gpu", "gpu+gpu", "cpu-simd+gpu"};
  const std::string topology = kTopologies[state.range(1)];
  // Install the measured ratio into the simd profile before building it.
  if (state.range(1) == 2) kb::CalibrateKernelBackends();
  DeviceGroup group(ParseDeviceTopology(topology).MoveValueOrDie());
  DeviceSample sample(&group, sample_size, 8);
  ClusterBoxesParams params;
  params.rows = sample_size * 2;
  params.dims = 8;
  const Table table = GenerateClusterBoxes(params, 7);
  Rng rng(8);
  FKDE_CHECK_OK(sample.LoadFromTable(table, &rng));
  KdeEngine engine(&sample, KernelType::kGaussian);
  const Box box(std::vector<double>(8, 0.25), std::vector<double>(8, 0.75));
  group.ResetModeledTime();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Estimate(box));
  }
  const double modeled = group.MaxModeledSeconds();
  const double iters = static_cast<double>(state.iterations());
  state.counters["modeled_ms"] = iters > 0.0 ? modeled * 1e3 / iters : 0.0;
  for (std::size_t i = 0; i < group.size(); ++i) {
    state.counters["idle_gap_" + std::to_string(i)] =
        group.device(i)->IdleGapFraction();
  }
  state.counters["queue_depth_hw"] = static_cast<double>(
      group.AggregateQueueStats().depth_high_water);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EstimateSharded)
    ->ArgsProduct({{16384, 262144}, {0, 1, 2}})
    ->Unit(benchmark::kMicrosecond);

// The same sharded workload with the group-wide strict hazard checker
// attached. Comparing against BM_EstimateSharded bounds the checker's
// overhead on the hot path — and pins that the checker-off path costs
// nothing but a null-pointer branch (the two must match when this one is
// run with the checker detached).
void BM_EstimateShardedHazardChecked(benchmark::State& state) {
  const std::size_t sample_size = static_cast<std::size_t>(state.range(0));
  const std::string topology = state.range(1) == 0 ? "cpu+gpu" : "gpu+gpu";
  DeviceGroupOptions options;
  options.hazard_mode = HazardMode::kStrict;
  DeviceGroup group(ParseDeviceTopology(topology).MoveValueOrDie(),
                    std::move(options));
  DeviceSample sample(&group, sample_size, 8);
  ClusterBoxesParams params;
  params.rows = sample_size * 2;
  params.dims = 8;
  const Table table = GenerateClusterBoxes(params, 7);
  Rng rng(8);
  FKDE_CHECK_OK(sample.LoadFromTable(table, &rng));
  KdeEngine engine(&sample, KernelType::kGaussian);
  const Box box(std::vector<double>(8, 0.25), std::vector<double>(8, 0.75));
  group.ResetModeledTime();
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.Estimate(box));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EstimateShardedHazardChecked)
    ->ArgsProduct({{16384, 262144}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

// Scratch-pool effectiveness under the batched paths: after the first
// iteration every acquisition should hit the pool, so the steady-state
// hit rate approaches 1 and no per-call allocations remain.
void BM_BatchScratchPoolReuse(benchmark::State& state) {
  MicroFixture fixture(static_cast<std::size_t>(state.range(0)), 3);
  const std::vector<Box> boxes = fixture.RandomBoxes(64);
  std::vector<double> estimates(boxes.size());
  fixture.engine->EstimateBatch(boxes, estimates);  // Populate the pool.
  const BufferPoolStats warm = fixture.device.scratch_pool_stats();
  for (auto _ : state) {
    fixture.engine->EstimateBatch(boxes, estimates);
    benchmark::DoNotOptimize(estimates.data());
  }
  const BufferPoolStats stats = fixture.device.scratch_pool_stats();
  const double acquisitions =
      static_cast<double>((stats.hits - warm.hits) +
                          (stats.misses - warm.misses));
  state.counters["pool_hit_rate"] =
      acquisitions > 0.0
          ? static_cast<double>(stats.hits - warm.hits) / acquisitions
          : 0.0;
  state.SetItemsProcessed(state.iterations() * boxes.size());
}
BENCHMARK(BM_BatchScratchPoolReuse)
    ->Arg(1024)
    ->Arg(16384)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace fkde

BENCHMARK_MAIN();
