// Figure 8: estimation quality on changing data.
//
// The Section 6.5 evolving-database experiment: load three clusters, then
// run cycles of gradually inserting a fresh cluster and archiving the
// oldest, interleaved with recency-biased DT queries. Reports the
// progression of the absolute estimation error (binned into windows) for
// Heuristic, STHoles and Adaptive, in 5D and 8D.
//
// Expected qualitative result (paper):
//   Heuristic cannot follow the changes and degrades; STHoles partially
//   adapts; Adaptive (RMSprop + Karma/reservoir maintenance) tracks the
//   churn and keeps the lowest error.

#include <cstdio>

#include "harness.h"
#include "runtime/evolving_runner.h"
#include "workload/evolving.h"

namespace {

using namespace fkde;
using namespace fkde::bench;

// Applies the first `count` inserts of the stream to `executor`, dropping
// interleaved queries (the estimator is built after the initial load, as
// in the paper).
void ApplyInitialLoad(EvolvingWorkload* workload, Executor* executor,
                      std::size_t count) {
  EvolvingEvent event;
  while (count > 0 && workload->Next(*executor->table(), &event)) {
    if (event.kind == EvolvingEvent::Kind::kInsert) {
      executor->Insert(event.row, event.tag);
      --count;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  CommonFlags common;
  common.reps = 3;
  common.estimators = "kde_heuristic,stholes,kde_adaptive";
  std::string dims_flag = "5,8";
  std::int64_t cycles = 10;
  std::int64_t tuples_per_cluster = 1500;
  std::int64_t windows = 12;
  FlagParser parser;
  common.Register(&parser);
  parser.AddString("dims", &dims_flag, "comma-separated dimensionalities");
  parser.AddInt64("cycles", &cycles, "insert/archive cycles");
  parser.AddInt64("tuples-per-cluster", &tuples_per_cluster,
                  "cluster size (paper: 1500)");
  parser.AddInt64("windows", &windows, "error-trace bins in the output");
  parser.Parse(argc, argv).AbortIfError("flags");
  common.Finalize();
  if (common.full) common.reps = 10;  // The paper's repetition count.

  const auto estimators = SplitCsv(common.estimators);

  TablePrinter printer;
  std::vector<std::string> header = {"dims", "window", "table_rows"};
  for (const auto& name : estimators) header.push_back(name);
  printer.SetHeader(header);

  for (const std::string& dims_str : SplitCsv(dims_flag)) {
    const std::size_t dims = std::stoul(dims_str);
    EvolvingParams params;
    params.dims = dims;
    params.cycles = static_cast<std::size_t>(cycles);
    params.tuples_per_cluster =
        static_cast<std::size_t>(tuples_per_cluster);

    // window -> estimator -> mean errors across reps; plus table sizes.
    std::vector<std::map<std::string, RunningStats>> window_errors(
        static_cast<std::size_t>(windows));
    std::vector<RunningStats> window_rows(static_cast<std::size_t>(windows));

    for (std::int64_t rep = 0; rep < common.reps; ++rep) {
      const std::uint64_t seed =
          static_cast<std::uint64_t>(common.seed) + 97 * rep + dims;
      for (const std::string& name : estimators) {
        Table table(params.dims);
        Executor executor(&table);
        EvolvingWorkload workload(params, seed);
        ApplyInitialLoad(&workload, &executor,
                         params.initial_clusters *
                             params.tuples_per_cluster);
        Device device(ProfileByName("cpu"));
        EstimatorBuildContext context;
        context.device = &device;
        context.executor = &executor;
        context.seed = seed;
        auto estimator = BuildEstimator(name, context).MoveValueOrDie();
        const EvolvingTrace trace =
            RunEvolving(estimator.get(), &executor, &workload);

        const std::size_t per_window =
            trace.absolute_errors.size() / static_cast<std::size_t>(windows);
        for (std::size_t w = 0; w < static_cast<std::size_t>(windows); ++w) {
          const std::size_t begin = w * per_window;
          const std::size_t end = (w + 1 == static_cast<std::size_t>(windows))
                                      ? trace.absolute_errors.size()
                                      : begin + per_window;
          window_errors[w][name].Add(trace.WindowMean(begin, end));
          for (std::size_t i = begin; i < end && i < trace.table_sizes.size();
               ++i) {
            window_rows[w].Add(static_cast<double>(trace.table_sizes[i]));
          }
        }
      }
      std::fprintf(stderr, "  done: %zuD rep %lld\n", dims,
                   static_cast<long long>(rep));
    }

    for (std::size_t w = 0; w < static_cast<std::size_t>(windows); ++w) {
      std::vector<std::string> row = {
          dims_str, std::to_string(w),
          TablePrinter::Num(window_rows[w].mean(), 5)};
      for (const auto& name : estimators) {
        row.push_back(TablePrinter::Num(window_errors[w][name].mean(), 4));
      }
      printer.AddRow(std::move(row));
    }
  }
  printer.Print(common.csv);
  return 0;
}
