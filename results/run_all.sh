#!/bin/bash
# Runs every paper-reproduction bench with quick presets, teeing outputs.
set -u
cd "$(dirname "$0")/.."
B=build/bench
R=results
run() { name=$1; shift; echo "=== $name: $* ==="; "$@" > "$R/$name.txt" 2> "$R/$name.log" || echo "FAILED: $name"; }
run fig4 $B/fig4_static_quality --dims=3
run fig5 $B/fig4_static_quality --dims=8
run table1 $B/table1_winrates --reps=2 --rows=30000 --test=150
run fig6 $B/fig6_model_size
run fig7 $B/fig7_performance
run fig8 $B/fig8_adaptivity
run ablation_log_updates $B/ablation_log_updates
run ablation_karma $B/ablation_karma
run ablation_transfers $B/ablation_transfers
run ablation_variable_kde $B/ablation_variable_kde
run ablation_workload_shift $B/ablation_workload_shift
run micro_kernels $B/micro_kernels --benchmark_min_time=0.2
echo ALL_DONE
