#include "runtime/evolving_runner.h"

#include <cmath>

#include "common/logging.h"

namespace fkde {

double EvolvingTrace::WindowMean(std::size_t begin, std::size_t end) const {
  end = std::min(end, absolute_errors.size());
  if (begin >= end) return 0.0;
  double total = 0.0;
  for (std::size_t i = begin; i < end; ++i) total += absolute_errors[i];
  return total / static_cast<double>(end - begin);
}

EvolvingTrace RunEvolving(SelectivityEstimator* estimator, Executor* executor,
                          EvolvingWorkload* workload) {
  EvolvingTrace trace;
  Table* table = executor->table();
  EvolvingEvent event;
  while (workload->Next(*table, &event)) {
    switch (event.kind) {
      case EvolvingEvent::Kind::kInsert:
        executor->Insert(event.row, event.tag);
        estimator->OnInsert(event.row, table->num_rows());
        ++trace.inserts;
        break;
      case EvolvingEvent::Kind::kDeleteCluster: {
        const std::size_t removed = executor->DeleteByTag(event.tag);
        estimator->OnDelete(removed, table->num_rows());
        trace.deletes += removed;
        break;
      }
      case EvolvingEvent::Kind::kQuery: {
        const double estimate =
            estimator->EstimateSelectivity(event.query.box);
        const double truth = event.query.selectivity;
        estimator->ObserveTrueSelectivity(event.query.box, truth);
        trace.absolute_errors.push_back(std::abs(estimate - truth));
        trace.table_sizes.push_back(table->num_rows());
        break;
      }
    }
  }
  return trace;
}

}  // namespace fkde
