/// \file evolving_runner.h
/// \brief Driver for the Section 6.5 evolving-database experiment.
///
/// Streams an `EvolvingWorkload` into the table and an estimator: inserts
/// and cluster deletions mutate the table and notify the estimator; query
/// events run the estimate/execute/feedback protocol. The error trace over
/// query index is Figure 8's y-axis; the table-size trace is the black
/// line on top of the paper's plot.

#ifndef FKDE_RUNTIME_EVOLVING_RUNNER_H_
#define FKDE_RUNTIME_EVOLVING_RUNNER_H_

#include <vector>

#include "estimator/estimator.h"
#include "runtime/executor.h"
#include "workload/evolving.h"

namespace fkde {

/// \brief Time series produced by the evolving run.
struct EvolvingTrace {
  /// One entry per query event, in order.
  std::vector<double> absolute_errors;
  /// Table cardinality at each query event.
  std::vector<std::size_t> table_sizes;
  /// Total rows inserted / deleted over the run.
  std::size_t inserts = 0;
  std::size_t deletes = 0;

  /// Mean absolute error over a [begin, end) window of query indexes.
  double WindowMean(std::size_t begin, std::size_t end) const;
};

/// Runs the workload to exhaustion against `estimator`, mutating the
/// executor's table in place. The estimator must have been built over the
/// table's initial contents (which may be empty only if the estimator
/// tolerates it; the Figure 8 protocol builds after the initial load —
/// see bench/fig8_adaptivity.cc).
EvolvingTrace RunEvolving(SelectivityEstimator* estimator,
                          Executor* executor, EvolvingWorkload* workload);

}  // namespace fkde

#endif  // FKDE_RUNTIME_EVOLVING_RUNNER_H_
