/// \file driver.h
/// \brief Feedback-loop driver: the evaluation protocol of Section 6.
///
/// For each query the driver (1) asks the estimator for a selectivity,
/// (2) "executes" the query to obtain the truth, (3) feeds the truth back
/// (self-tuning estimators adapt here), and (4) records the absolute
/// estimation error |p̂ - p| — the paper's quality metric.

#ifndef FKDE_RUNTIME_DRIVER_H_
#define FKDE_RUNTIME_DRIVER_H_

#include <span>
#include <vector>

#include "common/stats.h"
#include "estimator/estimator.h"
#include "runtime/executor.h"
#include "workload/workload.h"

namespace fkde {

/// \brief Per-workload error record.
struct RunStats {
  /// |estimate - truth| per query, in execution order.
  std::vector<double> absolute_errors;
  /// Signed (estimate - truth) per query.
  std::vector<double> signed_errors;
  /// Truths per query (for relative metrics downstream).
  std::vector<double> truths;

  double MeanAbsoluteError() const;
  Summary AbsoluteErrorSummary() const { return Summarize(absolute_errors); }
};

/// \brief Runs workloads through estimators with query feedback.
class FeedbackDriver {
 public:
  /// The queries carry their exact selectivity from generation time (the
  /// table must be unchanged since), so no re-execution is needed. Set
  /// `feedback` to false to measure a frozen model (no adaptation).
  static RunStats RunPrecomputed(SelectivityEstimator* estimator,
                                 std::span<const Query> workload,
                                 bool feedback = true);

  /// Runs a workload computing the truth against the live table via
  /// `executor` (used when the table mutates between queries).
  static RunStats RunLive(SelectivityEstimator* estimator,
                          Executor* executor,
                          std::span<const Box> queries,
                          bool feedback = true);

  /// Feeds a training workload (estimate + feedback) without recording —
  /// the warm-up used to let self-tuning estimators (Adaptive, STHoles)
  /// absorb the training phase that Batch receives explicitly.
  static void Train(SelectivityEstimator* estimator,
                    std::span<const Query> workload);
};

}  // namespace fkde

#endif  // FKDE_RUNTIME_DRIVER_H_
