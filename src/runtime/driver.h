/// \file driver.h
/// \brief Feedback-loop driver: the evaluation protocol of Section 6.
///
/// For each query the driver (1) asks the estimator for a selectivity,
/// (2) "executes" the query to obtain the truth, (3) feeds the truth back
/// (self-tuning estimators adapt here), and (4) records the absolute
/// estimation error |p̂ - p| — the paper's quality metric.
///
/// Step (2) is where the paper's overlap happens: work the estimator
/// enqueued during step (1) — the adaptive gradient pass, the previous
/// query's Karma scoring — executes on the device while the database
/// executes the query. `RunOptions::modeled_execution_s` advances the
/// device's modeled host clock across step (2) so the modeled timeline
/// reflects that concurrency (`Device::AdvanceHostTime`; the external
/// time itself is excluded from `ModeledSeconds()`). In `RunLive` the
/// executor's scan genuinely runs concurrently with the enqueued device
/// commands — there is no synchronization point between the estimate and
/// the feedback.

#ifndef FKDE_RUNTIME_DRIVER_H_
#define FKDE_RUNTIME_DRIVER_H_

#include <span>
#include <vector>

#include "common/stats.h"
#include "estimator/estimator.h"
#include "parallel/device.h"
#include "parallel/device_group.h"
#include "runtime/catalog.h"
#include "runtime/executor.h"
#include "runtime/streaming_executor.h"
#include "workload/workload.h"

namespace fkde {

/// \brief Per-workload error record.
struct RunStats {
  /// |estimate - truth| per query, in execution order.
  std::vector<double> absolute_errors;
  /// Signed (estimate - truth) per query.
  std::vector<double> signed_errors;
  /// Truths per query (for relative metrics downstream).
  std::vector<double> truths;

  double MeanAbsoluteError() const;
  Summary AbsoluteErrorSummary() const { return Summarize(absolute_errors); }
};

/// \brief Knobs of one driver run.
struct RunOptions {
  /// Feed the truth back after each query (false = frozen model).
  bool feedback = true;
  /// When set, `modeled_execution_s` of external query-execution time is
  /// applied between each estimate and its feedback via
  /// `device->AdvanceHostTime` — the window that hides enqueued device
  /// work on the modeled timeline.
  Device* device = nullptr;
  /// Multi-device variant of `device`: the execution window advances every
  /// device in the group (takes precedence when both are set).
  DeviceGroup* device_group = nullptr;
  /// Modeled wall time of executing one query in the database, seconds.
  double modeled_execution_s = 0.0;
};

/// \brief Runs workloads through estimators with query feedback.
class FeedbackDriver {
 public:
  /// The queries carry their exact selectivity from generation time (the
  /// table must be unchanged since), so no re-execution is needed.
  static RunStats RunPrecomputed(SelectivityEstimator* estimator,
                                 std::span<const Query> workload,
                                 const RunOptions& options = {});
  /// Back-compat shorthand for `{.feedback = feedback}`.
  static RunStats RunPrecomputed(SelectivityEstimator* estimator,
                                 std::span<const Query> workload,
                                 bool feedback);

  /// Runs a workload computing the truth against the live table via
  /// `executor` (used when the table mutates between queries).
  static RunStats RunLive(SelectivityEstimator* estimator,
                          Executor* executor, std::span<const Box> queries,
                          const RunOptions& options = {});
  /// Back-compat shorthand for `{.feedback = feedback}`.
  static RunStats RunLive(SelectivityEstimator* estimator,
                          Executor* executor, std::span<const Box> queries,
                          bool feedback);

  /// Feeds a training workload (estimate + feedback) without recording —
  /// the warm-up used to let self-tuning estimators (Adaptive, STHoles)
  /// absorb the training phase that Batch receives explicitly.
  static void Train(SelectivityEstimator* estimator,
                    std::span<const Query> workload,
                    const RunOptions& options = {});

  /// Runs a precomputed workload through one catalog-served model: the
  /// serving analogue of RunPrecomputed, where residency (lazy build,
  /// eviction, fault-back) is the catalog's business. When
  /// `options.device_group` is unset, the catalog's group is used for the
  /// modeled execution window.
  static Result<RunStats> RunCatalog(ModelCatalog* catalog,
                                     const ModelKey& key,
                                     std::span<const Query> workload,
                                     const RunOptions& options = {});

  /// Streamed analogue of RunPrecomputed: keeps `options.window` queries
  /// in flight through a `StreamingExecutor` (the estimator must be
  /// hosted on a DeviceGroup) and reports errors in arrival order.
  /// `report`, when non-null, receives the timing/throughput report.
  static Result<RunStats> RunStreamed(KdeSelectivityEstimator* estimator,
                                      std::span<const Query> workload,
                                      const StreamingOptions& options = {},
                                      StreamingReport* report = nullptr);
};

}  // namespace fkde

#endif  // FKDE_RUNTIME_DRIVER_H_
