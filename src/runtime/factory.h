/// \file factory.h
/// \brief Uniform construction of every evaluated estimator.
///
/// The benchmarks of Section 6.2 compare five estimators under a common
/// memory budget of d*4kB. This factory builds any of them by name with
/// that budget translated into the model-specific size knob:
///
///   kde_heuristic | kde_scv | kde_batch | kde_adaptive :
///       sample rows = bytes / (4 * d)  (float storage)
///   stholes : buckets = bytes / (4 * (2d + 1))
///   genhist : buckets = bytes / (4 * (2d + 1))
///   avi     : buckets/dim = bytes / (d * 16)

#ifndef FKDE_RUNTIME_FACTORY_H_
#define FKDE_RUNTIME_FACTORY_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "estimator/estimator.h"
#include "kde/kde_estimator.h"
#include "parallel/device.h"
#include "parallel/device_group.h"
#include "runtime/catalog.h"
#include "runtime/executor.h"
#include "workload/workload.h"

namespace fkde {

/// \brief Everything needed to build any evaluated estimator.
struct EstimatorBuildContext {
  Device* device = nullptr;        ///< For KDE variants.
  /// When set, KDE variants shard their sample across this group instead
  /// of `device` (Section 5.4 past one device's ceiling); `device` is
  /// then ignored for them.
  DeviceGroup* device_group = nullptr;
  Executor* executor = nullptr;    ///< Table access + STHoles counting.
  std::size_t memory_bytes = 0;    ///< Paper budget: d * 4096.
  std::uint64_t seed = 7;
  /// Training workload (required by kde_batch; ignored by others —
  /// self-tuning estimators are warmed up by the driver instead).
  std::span<const Query> training;
  /// Overrides for the KDE configuration (loss, kernel, adaptive knobs);
  /// sample_size is recomputed from memory_bytes.
  KdeConfig kde;

  /// When set, KDE variants are registered in this catalog (keyed by
  /// `table_name` + `columns`) and built lazily under its memory budget;
  /// the returned estimator is a catalog handle, and `device` /
  /// `device_group` are ignored in favor of the catalog's group.
  ModelCatalog* catalog = nullptr;
  /// Catalog key parts; columns default to "c0".."c{d-1}" when empty.
  std::string table_name = "table";
  std::vector<std::string> columns;
};

/// Names accepted by BuildEstimator, in the paper's presentation order.
std::vector<std::string> EstimatorNames();

/// Builds the named estimator over the context's table.
Result<std::unique_ptr<SelectivityEstimator>> BuildEstimator(
    const std::string& name, const EstimatorBuildContext& context);

}  // namespace fkde

#endif  // FKDE_RUNTIME_FACTORY_H_
