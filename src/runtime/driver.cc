#include "runtime/driver.h"

#include <cmath>

namespace fkde {

namespace {

/// The database executes the query between estimate and feedback; on the
/// modeled timeline that is external host time, during which enqueued
/// device work keeps running.
void ModelQueryExecution(const RunOptions& options) {
  if (options.modeled_execution_s <= 0.0) return;
  if (options.device_group != nullptr) {
    // Every device in the group sees the same external wall time.
    options.device_group->AdvanceHostTime(options.modeled_execution_s);
  } else if (options.device != nullptr) {
    options.device->AdvanceHostTime(options.modeled_execution_s);
  }
}

}  // namespace

double RunStats::MeanAbsoluteError() const {
  if (absolute_errors.empty()) return 0.0;
  double total = 0.0;
  for (double e : absolute_errors) total += e;
  return total / static_cast<double>(absolute_errors.size());
}

RunStats FeedbackDriver::RunPrecomputed(SelectivityEstimator* estimator,
                                        std::span<const Query> workload,
                                        const RunOptions& options) {
  RunStats stats;
  stats.absolute_errors.reserve(workload.size());
  stats.signed_errors.reserve(workload.size());
  stats.truths.reserve(workload.size());
  for (const Query& query : workload) {
    const double estimate = estimator->EstimateSelectivity(query.box);
    ModelQueryExecution(options);
    if (options.feedback) {
      estimator->ObserveTrueSelectivity(query.box, query.selectivity);
    }
    stats.absolute_errors.push_back(std::abs(estimate - query.selectivity));
    stats.signed_errors.push_back(estimate - query.selectivity);
    stats.truths.push_back(query.selectivity);
  }
  return stats;
}

RunStats FeedbackDriver::RunPrecomputed(SelectivityEstimator* estimator,
                                        std::span<const Query> workload,
                                        bool feedback) {
  RunOptions options;
  options.feedback = feedback;
  return RunPrecomputed(estimator, workload, options);
}

RunStats FeedbackDriver::RunLive(SelectivityEstimator* estimator,
                                 Executor* executor,
                                 std::span<const Box> queries,
                                 const RunOptions& options) {
  RunStats stats;
  stats.absolute_errors.reserve(queries.size());
  for (const Box& box : queries) {
    const double estimate = estimator->EstimateSelectivity(box);
    // The executor's scan runs on the host while the commands the
    // estimator just enqueued drain on the device queue — real overlap,
    // no synchronization until the estimator collects its events inside
    // ObserveTrueSelectivity.
    const double truth = executor->TrueSelectivity(box);
    ModelQueryExecution(options);
    if (options.feedback) estimator->ObserveTrueSelectivity(box, truth);
    stats.absolute_errors.push_back(std::abs(estimate - truth));
    stats.signed_errors.push_back(estimate - truth);
    stats.truths.push_back(truth);
  }
  return stats;
}

RunStats FeedbackDriver::RunLive(SelectivityEstimator* estimator,
                                 Executor* executor,
                                 std::span<const Box> queries,
                                 bool feedback) {
  RunOptions options;
  options.feedback = feedback;
  return RunLive(estimator, executor, queries, options);
}

void FeedbackDriver::Train(SelectivityEstimator* estimator,
                           std::span<const Query> workload,
                           const RunOptions& options) {
  for (const Query& query : workload) {
    (void)estimator->EstimateSelectivity(query.box);
    ModelQueryExecution(options);
    estimator->ObserveTrueSelectivity(query.box, query.selectivity);
  }
}

Result<RunStats> FeedbackDriver::RunCatalog(ModelCatalog* catalog,
                                            const ModelKey& key,
                                            std::span<const Query> workload,
                                            const RunOptions& options) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("catalog must be non-null");
  }
  RunOptions effective = options;
  if (effective.device_group == nullptr && effective.device == nullptr) {
    effective.device_group = catalog->group();
  }
  RunStats stats;
  stats.absolute_errors.reserve(workload.size());
  stats.signed_errors.reserve(workload.size());
  stats.truths.reserve(workload.size());
  for (const Query& query : workload) {
    FKDE_ASSIGN_OR_RETURN(const double estimate,
                          catalog->Estimate(key, query.box));
    ModelQueryExecution(effective);
    if (effective.feedback) {
      FKDE_RETURN_NOT_OK(
          catalog->Feedback(key, query.box, query.selectivity));
    }
    stats.absolute_errors.push_back(std::abs(estimate - query.selectivity));
    stats.signed_errors.push_back(estimate - query.selectivity);
    stats.truths.push_back(query.selectivity);
  }
  return stats;
}

Result<RunStats> FeedbackDriver::RunStreamed(
    KdeSelectivityEstimator* estimator, std::span<const Query> workload,
    const StreamingOptions& options, StreamingReport* report) {
  if (estimator == nullptr) {
    return Status::InvalidArgument("estimator must be non-null");
  }
  DeviceGroup* group = estimator->engine()->sample()->group();
  if (group == nullptr) {
    return Status::InvalidArgument(
        "streamed runs need a group-hosted estimator");
  }
  std::vector<StreamedQuery> queries(workload.size());
  for (std::size_t i = 0; i < workload.size(); ++i) {
    queries[i].box = workload[i].box;
    queries[i].truth = workload[i].selectivity;
  }
  StreamingExecutor executor(group, options);
  FKDE_ASSIGN_OR_RETURN(StreamingReport streamed,
                        executor.Run(estimator, queries));
  RunStats stats;
  stats.absolute_errors.reserve(workload.size());
  stats.signed_errors.reserve(workload.size());
  stats.truths.reserve(workload.size());
  for (std::size_t i = 0; i < workload.size(); ++i) {
    stats.absolute_errors.push_back(
        std::abs(streamed.estimates[i] - workload[i].selectivity));
    stats.signed_errors.push_back(streamed.estimates[i] -
                                  workload[i].selectivity);
    stats.truths.push_back(workload[i].selectivity);
  }
  if (report != nullptr) *report = std::move(streamed);
  return stats;
}

}  // namespace fkde
