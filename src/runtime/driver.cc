#include "runtime/driver.h"

#include <cmath>

namespace fkde {

double RunStats::MeanAbsoluteError() const {
  if (absolute_errors.empty()) return 0.0;
  double total = 0.0;
  for (double e : absolute_errors) total += e;
  return total / static_cast<double>(absolute_errors.size());
}

RunStats FeedbackDriver::RunPrecomputed(SelectivityEstimator* estimator,
                                        std::span<const Query> workload,
                                        bool feedback) {
  RunStats stats;
  stats.absolute_errors.reserve(workload.size());
  stats.signed_errors.reserve(workload.size());
  stats.truths.reserve(workload.size());
  for (const Query& query : workload) {
    const double estimate = estimator->EstimateSelectivity(query.box);
    if (feedback) {
      estimator->ObserveTrueSelectivity(query.box, query.selectivity);
    }
    stats.absolute_errors.push_back(std::abs(estimate - query.selectivity));
    stats.signed_errors.push_back(estimate - query.selectivity);
    stats.truths.push_back(query.selectivity);
  }
  return stats;
}

RunStats FeedbackDriver::RunLive(SelectivityEstimator* estimator,
                                 Executor* executor,
                                 std::span<const Box> queries,
                                 bool feedback) {
  RunStats stats;
  stats.absolute_errors.reserve(queries.size());
  for (const Box& box : queries) {
    const double estimate = estimator->EstimateSelectivity(box);
    const double truth = executor->TrueSelectivity(box);
    if (feedback) estimator->ObserveTrueSelectivity(box, truth);
    stats.absolute_errors.push_back(std::abs(estimate - truth));
    stats.signed_errors.push_back(estimate - truth);
    stats.truths.push_back(truth);
  }
  return stats;
}

void FeedbackDriver::Train(SelectivityEstimator* estimator,
                           std::span<const Query> workload) {
  for (const Query& query : workload) {
    (void)estimator->EstimateSelectivity(query.box);
    estimator->ObserveTrueSelectivity(query.box, query.selectivity);
  }
}

}  // namespace fkde
