/// \file streaming_executor.h
/// \brief Sustained-traffic serving: N queries in flight per estimator.
///
/// The feedback driver (driver.h) serves one query at a time: estimate,
/// modeled execution window, feedback, repeat. On the modeled timeline
/// most of that cycle is the host waiting — the estimate's read-back
/// stall plus the execution window — while the device sits idle between
/// chains. `StreamingExecutor` closes the gap by keeping a bounded
/// admission window of N queries in flight against one
/// `KdeSelectivityEstimator`: query k+1's estimate chain is enqueued
/// (onto the per-device in-order queues, into its own descriptor ring
/// slot) while query k's gradient collection and Karma feedback are
/// still pending on the device. Completion is tracked per query through
/// the slot's read-back `Event`s, and delivery/feedback retire strictly
/// FIFO.
///
/// ## Determinism and the replay contract
///
/// The schedule is a pure function of the arrival order and the window
/// size — admit while a slot is free, otherwise retire the oldest —
/// never of modeled time, and modeled time never feeds back into the
/// math. Setting `StreamingOptions::pipeline = false` replays the SAME
/// logical op sequence with a full device drain after every admission
/// and retirement: genuinely serial execution, identical estimates, bit
/// for bit. That pair is the correctness pin for the overlap (verified
/// under the strict hazard checker); the throughput win is the modeled
/// span shrinking toward max(device busy time, arrival spacing) as the
/// per-query stalls vanish.
///
/// ## Open-loop traffic
///
/// `PoissonArrivals` precomputes an open-loop arrival schedule at a
/// configured offered load; admission paces the modeled clock to each
/// query's arrival (`Device::AdvanceHostTime` — external wall time, like
/// the driver's execution window), and per-query modeled latency is
/// delivery time minus arrival time. With `offered_load_qps == 0` the
/// stream is closed-loop: every query is ready at t=0 and the span
/// measures peak sustainable throughput.

#ifndef FKDE_RUNTIME_STREAMING_EXECUTOR_H_
#define FKDE_RUNTIME_STREAMING_EXECUTOR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "data/box.h"
#include "kde/kde_estimator.h"
#include "parallel/device_group.h"
#include "runtime/catalog.h"

namespace fkde {

/// \brief Knobs of one streamed run.
struct StreamingOptions {
  /// In-flight queries per estimator (the descriptor-ring depth). 1
  /// degenerates to the classic one-at-a-time cycle.
  std::size_t window = 4;
  /// false = serial replay: same op order, full drain after every step.
  /// The streamed run of the same schedule is bitwise-identical.
  bool pipeline = true;
  /// Modeled wall time the database spends executing each query between
  /// its delivery and its feedback (the paper's overlap window).
  double execution_seconds = 0.0;
  /// Apply the true selectivity after each delivery (false = frozen
  /// model; tickets still retire).
  bool feedback = true;
  /// Open-loop offered load; 0 = closed loop (all queries ready at t=0).
  double offered_load_qps = 0.0;
  /// Seed of the Poisson arrival process.
  std::uint64_t arrival_seed = 42;
};

/// \brief One query of a streamed workload.
struct StreamedQuery {
  Box box;
  double truth = 0.0;
};

/// \brief Outcome of one streamed run, on the modeled timeline.
struct StreamingReport {
  /// Clamped estimates, arrival order (the bitwise-comparison payload).
  std::vector<double> estimates;
  /// Per-query modeled latency: delivery time - arrival time.
  std::vector<double> latencies_s;
  std::size_t completed = 0;
  /// Modeled makespan from run start to the final drain.
  double span_s = 0.0;
  double throughput_qps = 0.0;  ///< completed / span_s.
  /// Group modeled-time deltas over the run.
  double modeled_s = 0.0;
  double stall_s = 0.0;
  double idle_gap = 0.0;  ///< stall_s / modeled_s — the steady-state gap.
  /// Queue occupancy over the run (group fold; high-water is a max and
  /// is NOT delta-adjusted, so compare runs on fresh groups).
  std::uint64_t total_commands = 0;
  std::size_t queue_depth_high_water = 0;
};

/// \brief Drives one estimator with a bounded window of in-flight queries.
class StreamingExecutor {
 public:
  /// `group` is the device group the estimator's sample lives on; it
  /// provides the modeled clock, the drain points and the idle-gap
  /// counters. Must outlive the executor.
  StreamingExecutor(DeviceGroup* group, StreamingOptions options);

  /// Streams `queries` through `model`: enables streaming at the window
  /// depth, runs the deterministic admit/retire schedule, disables
  /// streaming (draining the queues) and reports. The model is returned
  /// to classic serving regardless of outcome.
  Result<StreamingReport> Run(KdeSelectivityEstimator* model,
                              std::span<const StreamedQuery> queries);

  /// Catalog-served variant: opens and PINS the model (so a concurrent
  /// thread's budget enforcement cannot evict mid-stream — eviction
  /// quiesce would fault on in-flight tickets), streams, unpins.
  static Result<StreamingReport> RunCatalog(
      ModelCatalog* catalog, const ModelKey& key,
      std::span<const StreamedQuery> queries,
      const StreamingOptions& options);

  /// Open-loop Poisson arrival schedule: n exponential inter-arrival
  /// gaps at `offered_load_qps`, cumulated, seconds from run start.
  static std::vector<double> PoissonArrivals(std::size_t n,
                                             double offered_load_qps,
                                             std::uint64_t seed);

  const StreamingOptions& options() const { return options_; }

 private:
  /// Max host position across the group, relative to run start:
  /// ModeledSeconds folds enqueue overhead and stalls; external advances
  /// (arrival pacing, execution windows) are tracked in `advanced_`.
  double Now() const;
  /// Advances the modeled clock to `target` (external wall time on every
  /// device); no-op when the clock is already past it.
  void AdvanceTo(double target);
  /// Waits out every device queue (replay-mode serialization point).
  void Drain();

  DeviceGroup* group_;
  StreamingOptions options_;
  double advanced_ = 0.0;
  double start_s_ = 0.0;
};

}  // namespace fkde

#endif  // FKDE_RUNTIME_STREAMING_EXECUTOR_H_
