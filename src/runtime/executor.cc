#include "runtime/executor.h"

namespace fkde {

std::size_t Executor::Count(const Box& box) const {
  if (index_ != nullptr) return index_->Count(box);
  return table_->CountInBox(box);
}

double Executor::TrueSelectivity(const Box& box) const {
  if (table_->empty()) return 0.0;
  return static_cast<double>(Count(box)) /
         static_cast<double>(table_->num_rows());
}

void Executor::BuildIndex() {
  index_ = std::make_unique<KdTreeCounter>(*table_);
}

void Executor::Insert(std::span<const double> row, std::uint32_t tag) {
  table_->Insert(row, tag);
  index_.reset();
}

std::size_t Executor::DeleteByTag(std::uint32_t tag) {
  const std::size_t removed = table_->DeleteByTag(tag);
  if (removed > 0) index_.reset();
  return removed;
}

RegionCounter Executor::MakeRegionCounter() const {
  return [this](const Box& box) { return this->Count(box); };
}

}  // namespace fkde
