#include "runtime/topology.h"

#include <utility>

#include "kde/kernel_backend.h"

namespace fkde {

bool IsGroupTopology(const std::string& spec) {
  return spec.find('+') != std::string::npos;
}

Result<DeviceProfile> DeviceProfileByName(const std::string& name) {
  if (IsGroupTopology(name)) {
    return Status::InvalidArgument("'" + name +
                                   "' is a group topology, not a profile");
  }
  if (name == "cpu-simd") {
    // The SimdCpu profile's modeled ops/sec is the measured ratio on this
    // host; no-op after the first call, pinned to 1x when the simd
    // backend cannot resolve here.
    kb::CalibrateKernelBackends();
  }
  FKDE_ASSIGN_OR_RETURN(std::vector<DeviceProfile> profiles,
                        ParseDeviceTopology(name));
  return profiles[0];
}

Result<std::unique_ptr<DeviceGroup>> BuildDeviceGroup(
    const std::string& topology, DeviceGroupOptions options) {
  if (topology.find("cpu-simd") != std::string::npos) {
    kb::CalibrateKernelBackends();
  }
  FKDE_ASSIGN_OR_RETURN(std::vector<DeviceProfile> profiles,
                        ParseDeviceTopology(topology));
  return std::make_unique<DeviceGroup>(profiles, std::move(options));
}

}  // namespace fkde
