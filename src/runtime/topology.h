/// \file topology.h
/// \brief The one device-topology vocabulary shared by runtime and bench.
///
/// Device specs appear wherever an experiment or a serving catalog names
/// its hardware: a single profile name ("cpu", "cpu-simd", "gpu") or a
/// '+'-separated multi-device group ("cpu+gpu", "gpu+gpu") whose members
/// jointly host sharded KDE samples. The name->profile mapping itself
/// lives in `ParseDeviceTopology` (parallel layer); these helpers add the
/// piece the parallel layer cannot: the "cpu-simd" profile's modeled
/// throughput is only honest after `kb::CalibrateKernelBackends()` has
/// measured this host's vectorized-vs-scalar ratio, and that calibration
/// lives in the KDE layer. Every call site that previously paired the
/// parse with an ad-hoc calibration check now routes through here.

#ifndef FKDE_RUNTIME_TOPOLOGY_H_
#define FKDE_RUNTIME_TOPOLOGY_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "parallel/device.h"
#include "parallel/device_group.h"

namespace fkde {

/// True when `spec` names a multi-device group ('+'-separated) rather
/// than a single profile.
bool IsGroupTopology(const std::string& spec);

/// Resolves one profile name ("cpu", "cpu-simd", "gpu") through the
/// `ParseDeviceTopology` vocabulary, calibrating the simd backend first
/// when the name requires it.
Result<DeviceProfile> DeviceProfileByName(const std::string& name);

/// Builds a `DeviceGroup` from a topology spec; single names yield a
/// one-device group. Calibrates the simd backend when any member needs
/// it.
Result<std::unique_ptr<DeviceGroup>> BuildDeviceGroup(
    const std::string& topology, DeviceGroupOptions options = {});

}  // namespace fkde

#endif  // FKDE_RUNTIME_TOPOLOGY_H_
