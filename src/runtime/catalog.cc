#include "runtime/catalog.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "kde/snapshot.h"

namespace fkde {
namespace {

/// Catalog-bound estimator facade: routes the SelectivityEstimator
/// protocol through the catalog so residency stays fluid underneath a
/// long-lived handle.
class CatalogModelHandle : public SelectivityEstimator {
 public:
  CatalogModelHandle(ModelCatalog* catalog, ModelKey key, std::size_t dims)
      : catalog_(catalog), key_(std::move(key)), dims_(dims) {}

  std::string name() const override { return "catalog:" + key_.ToString(); }
  std::size_t dims() const override { return dims_; }

  double EstimateSelectivity(const Box& box) override {
    return catalog_->Estimate(key_, box).MoveValueOrDie();
  }

  void ObserveTrueSelectivity(const Box& box, double selectivity) override {
    FKDE_CHECK_OK(catalog_->Feedback(key_, box, selectivity));
  }

  void OnInsert(std::span<const double> row,
                std::size_t table_rows_after) override {
    // Insert notifications only matter to a resident adaptive model; a
    // cold model's reservoir counters resume from its snapshot, exactly
    // as the paper's lazily-loaded models miss no correctness (the
    // sample just refreshes through later inserts/Karma).
    Result<KdeSelectivityEstimator*> model = catalog_->Open(key_);
    FKDE_CHECK_OK(model.status());
    model.ValueOrDie()->OnInsert(row, table_rows_after);
  }

  std::size_t ModelBytes() const override {
    Result<ModelStats> stats = catalog_->StatsFor(key_);
    return stats.ok() ? stats.ValueOrDie().device_bytes : 0;
  }

 private:
  ModelCatalog* catalog_;
  ModelKey key_;
  std::size_t dims_;
};

}  // namespace

std::string ModelKey::ToString() const {
  std::string out = table + "(";
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ",";
    out += columns[i];
  }
  out += ")";
  return out;
}

ModelCatalog::ModelCatalog(DeviceGroup* group, CatalogOptions options)
    : group_(group), options_(options) {
  FKDE_CHECK(group != nullptr);
}

ModelCatalog::~ModelCatalog() = default;

Status ModelCatalog::Register(const ModelKey& key, ModelSpec spec) {
  if (spec.table == nullptr || spec.table->empty()) {
    return Status::InvalidArgument("model spec needs a non-empty table");
  }
  if (!key.columns.empty() &&
      key.columns.size() != spec.table->num_cols()) {
    return Status::InvalidArgument(
        "key names " + std::to_string(key.columns.size()) +
        " columns but the table has " +
        std::to_string(spec.table->num_cols()));
  }
  if (entries_.count(key) > 0) {
    return Status::AlreadyExists("model already registered: " +
                                 key.ToString());
  }
  Entry& entry = entries_[key];
  entry.spec = std::move(spec);
  return Status::OK();
}

Status ModelCatalog::RegisterFromSnapshot(const ModelKey& key, ModelSpec spec,
                                          std::vector<std::uint8_t> snapshot) {
  FKDE_ASSIGN_OR_RETURN(const ModelSnapshotHeader header,
                        ReadModelSnapshotHeader(snapshot));
  if (spec.table != nullptr && spec.table->num_cols() != header.dims) {
    return Status::InvalidArgument("snapshot dims do not match the table");
  }
  FKDE_RETURN_NOT_OK(Register(key, std::move(spec)));
  entries_[key].snapshot = std::move(snapshot);
  return Status::OK();
}

Status ModelCatalog::Drop(const ModelKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("no model registered: " + key.ToString());
  }
  entries_.erase(it);
  return Status::OK();
}

Result<ModelCatalog::Entry*> ModelCatalog::Find(const ModelKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("no model registered: " + key.ToString());
  }
  return &it->second;
}

Result<double> ModelCatalog::Estimate(const ModelKey& key, const Box& box) {
  FKDE_ASSIGN_OR_RETURN(Entry * entry, Find(key));
  FKDE_RETURN_NOT_OK(EnsureResident(entry));
  ++entry->stats.queries_served;
  return entry->model->EstimateSelectivity(box);
}

Status ModelCatalog::Feedback(const ModelKey& key, const Box& box,
                              double selectivity) {
  FKDE_ASSIGN_OR_RETURN(Entry * entry, Find(key));
  FKDE_RETURN_NOT_OK(EnsureResident(entry));
  ++entry->stats.feedback_applied;
  entry->model->ObserveTrueSelectivity(box, selectivity);
  entry->stats.device_bytes = entry->model->ModelBytes();
  return Status::OK();
}

Result<KdeSelectivityEstimator*> ModelCatalog::Open(const ModelKey& key) {
  FKDE_ASSIGN_OR_RETURN(Entry * entry, Find(key));
  FKDE_RETURN_NOT_OK(EnsureResident(entry));
  return entry->model.get();
}

Status ModelCatalog::Pin(const ModelKey& key, bool pinned) {
  FKDE_ASSIGN_OR_RETURN(Entry * entry, Find(key));
  entry->stats.pinned = pinned;
  return Status::OK();
}

Result<std::vector<std::uint8_t>> ModelCatalog::SaveSnapshot(
    const ModelKey& key) {
  FKDE_ASSIGN_OR_RETURN(Entry * entry, Find(key));
  if (entry->model != nullptr) {
    return SnapshotModel(entry->model.get());
  }
  if (!entry->snapshot.empty()) return entry->snapshot;
  return Status::FailedPrecondition(
      "model was never built, nothing to snapshot: " + key.ToString());
}

Status ModelCatalog::Evict(const ModelKey& key) {
  FKDE_ASSIGN_OR_RETURN(Entry * entry, Find(key));
  if (entry->model == nullptr) return Status::OK();
  if (entry->stats.pinned) {
    return Status::FailedPrecondition("model is pinned: " + key.ToString());
  }
  return EvictEntry(entry);
}

Result<std::unique_ptr<SelectivityEstimator>> ModelCatalog::Handle(
    const ModelKey& key) {
  FKDE_ASSIGN_OR_RETURN(Entry * entry, Find(key));
  return std::unique_ptr<SelectivityEstimator>(std::make_unique<
      CatalogModelHandle>(this, key, entry->spec.table->num_cols()));
}

Result<ModelStats> ModelCatalog::StatsFor(const ModelKey& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("no model registered: " + key.ToString());
  }
  return it->second.stats;
}

CatalogStats ModelCatalog::Stats() const {
  CatalogStats stats;
  stats.models = entries_.size();
  for (const auto& [key, entry] : entries_) {
    if (entry.stats.resident) ++stats.resident_models;
  }
  stats.evictions = evictions_;
  stats.faults = faults_;
  stats.budget_bytes = options_.device_budget_bytes;
  stats.used_bytes = UsedBytes();
  return stats;
}

std::vector<ModelKey> ModelCatalog::Keys() const {
  std::vector<ModelKey> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) keys.push_back(key);
  return keys;
}

Status ModelCatalog::EnsureResident(Entry* entry) {
  entry->lru_tick = ++lru_clock_;
  if (entry->model == nullptr) {
    if (!entry->snapshot.empty()) {
      // Fault the evicted model back; the restored instance is
      // bitwise-faithful, so eviction history never shows in estimates.
      FKDE_ASSIGN_OR_RETURN(
          entry->model,
          RestoreModel(entry->snapshot, group_, entry->spec.table));
      ++entry->stats.faults;
      ++faults_;
    } else {
      FKDE_ASSIGN_OR_RETURN(
          entry->model,
          KdeSelectivityEstimator::Create(entry->spec.mode, group_,
                                          entry->spec.table,
                                          entry->spec.config,
                                          entry->spec.training));
    }
    entry->stats.resident = true;
    entry->stats.device_bytes = entry->model->ModelBytes();
  }
  // Admit first, then shed: the serving model itself is exempt, so a
  // single over-budget model still serves (matching how the paper's
  // directory never refuses the model the optimizer is asking for).
  return EnforceBudget(entry);
}

Status ModelCatalog::EnforceBudget(const Entry* keep) {
  if (options_.device_budget_bytes == 0) return Status::OK();
  if (UsedBytes() <= options_.device_budget_bytes) return Status::OK();
  // Cheapest first: parked scratch buffers are pure cache.
  group_->TrimScratchPools();
  while (UsedBytes() > options_.device_budget_bytes) {
    Entry* victim = nullptr;
    for (auto& [key, entry] : entries_) {
      if (entry.model == nullptr || entry.stats.pinned || &entry == keep) {
        continue;
      }
      if (victim == nullptr || entry.lru_tick < victim->lru_tick) {
        victim = &entry;
      }
    }
    if (victim == nullptr) return Status::OK();  // Nothing evictable left.
    FKDE_RETURN_NOT_OK(EvictEntry(victim));
  }
  return Status::OK();
}

Status ModelCatalog::EvictEntry(Entry* entry) {
  // SnapshotModel quiesces: in-flight gradient/Karma passes fold into
  // host state before the engine's destructor drains the queues.
  FKDE_ASSIGN_OR_RETURN(entry->snapshot, SnapshotModel(entry->model.get()));
  entry->model.reset();
  entry->stats.resident = false;
  entry->stats.device_bytes = 0;
  ++entry->stats.evictions;
  ++evictions_;
  return Status::OK();
}

std::size_t ModelCatalog::UsedBytes() const {
  std::size_t bytes = group_->AggregateScratchStats().pooled_bytes;
  for (const auto& [key, entry] : entries_) {
    bytes += entry.stats.device_bytes;
  }
  return bytes;
}

}  // namespace fkde
