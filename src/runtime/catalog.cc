#include "runtime/catalog.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "kde/snapshot.h"

namespace fkde {
namespace {

/// Catalog-bound estimator facade: routes the SelectivityEstimator
/// protocol through the catalog so residency stays fluid underneath a
/// long-lived handle.
class CatalogModelHandle : public SelectivityEstimator {
 public:
  CatalogModelHandle(ModelCatalog* catalog, ModelKey key, std::size_t dims)
      : catalog_(catalog), key_(std::move(key)), dims_(dims) {}

  std::string name() const override { return "catalog:" + key_.ToString(); }
  std::size_t dims() const override { return dims_; }

  double EstimateSelectivity(const Box& box) override {
    return catalog_->Estimate(key_, box).MoveValueOrDie();
  }

  void ObserveTrueSelectivity(const Box& box, double selectivity) override {
    FKDE_CHECK_OK(catalog_->Feedback(key_, box, selectivity));
  }

  void OnInsert(std::span<const double> row,
                std::size_t table_rows_after) override {
    // Insert notifications only matter to a resident adaptive model; a
    // cold model's reservoir counters resume from its snapshot, exactly
    // as the paper's lazily-loaded models miss no correctness (the
    // sample just refreshes through later inserts/Karma).
    Result<KdeSelectivityEstimator*> model = catalog_->Open(key_);
    FKDE_CHECK_OK(model.status());
    model.ValueOrDie()->OnInsert(row, table_rows_after);
  }

  std::size_t ModelBytes() const override {
    Result<ModelStats> stats = catalog_->StatsFor(key_);
    return stats.ok() ? stats.ValueOrDie().device_bytes : 0;
  }

 private:
  ModelCatalog* catalog_;
  ModelKey key_;
  std::size_t dims_;
};

}  // namespace

std::string ModelKey::ToString() const {
  std::string out = table + "(";
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += ",";
    out += columns[i];
  }
  out += ")";
  return out;
}

ModelCatalog::ModelCatalog(DeviceGroup* group, CatalogOptions options)
    : group_(group), options_(options) {
  FKDE_CHECK(group != nullptr);
}

ModelCatalog::~ModelCatalog() = default;

Status ModelCatalog::Register(const ModelKey& key, ModelSpec spec) {
  if (spec.table == nullptr || spec.table->empty()) {
    return Status::InvalidArgument("model spec needs a non-empty table");
  }
  if (!key.columns.empty() &&
      key.columns.size() != spec.table->num_cols()) {
    return Status::InvalidArgument(
        "key names " + std::to_string(key.columns.size()) +
        " columns but the table has " +
        std::to_string(spec.table->num_cols()));
  }
  auto entry = std::make_shared<Entry>();
  entry->spec = std::move(spec);
  std::lock_guard<std::mutex> lock(registry_mu_);
  if (!entries_.emplace(key, std::move(entry)).second) {
    return Status::AlreadyExists("model already registered: " +
                                 key.ToString());
  }
  return Status::OK();
}

Status ModelCatalog::RegisterFromSnapshot(const ModelKey& key, ModelSpec spec,
                                          std::vector<std::uint8_t> snapshot) {
  FKDE_ASSIGN_OR_RETURN(const ModelSnapshotHeader header,
                        ReadModelSnapshotHeader(snapshot));
  if (spec.table != nullptr && spec.table->num_cols() != header.dims) {
    return Status::InvalidArgument("snapshot dims do not match the table");
  }
  FKDE_RETURN_NOT_OK(Register(key, std::move(spec)));
  FKDE_ASSIGN_OR_RETURN(std::shared_ptr<Entry> entry, Find(key));
  std::lock_guard<std::mutex> lock(entry->mu);
  entry->snapshot = std::move(snapshot);
  return Status::OK();
}

Status ModelCatalog::Drop(const ModelKey& key) {
  // Erase under the registry lock only: a thread mid-serve on this model
  // holds its own shared_ptr and finishes on the orphaned entry; the
  // entry (and its device buffers) dies with the last reference.
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("no model registered: " + key.ToString());
  }
  entries_.erase(it);
  return Status::OK();
}

Result<std::shared_ptr<ModelCatalog::Entry>> ModelCatalog::Find(
    const ModelKey& key) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("no model registered: " + key.ToString());
  }
  return it->second;
}

Result<double> ModelCatalog::Estimate(const ModelKey& key, const Box& box) {
  FKDE_ASSIGN_OR_RETURN(std::shared_ptr<Entry> entry, Find(key));
  std::lock_guard<std::mutex> lock(entry->mu);
  FKDE_RETURN_NOT_OK(EnsureResidentLocked(entry.get()));
  entry->queries_served.fetch_add(1, std::memory_order_relaxed);
  return entry->model->EstimateSelectivity(box);
}

Status ModelCatalog::Feedback(const ModelKey& key, const Box& box,
                              double selectivity) {
  FKDE_ASSIGN_OR_RETURN(std::shared_ptr<Entry> entry, Find(key));
  std::lock_guard<std::mutex> lock(entry->mu);
  FKDE_RETURN_NOT_OK(EnsureResidentLocked(entry.get()));
  entry->feedback_applied.fetch_add(1, std::memory_order_relaxed);
  entry->model->ObserveTrueSelectivity(box, selectivity);
  entry->device_bytes.store(entry->model->ModelBytes(),
                            std::memory_order_relaxed);
  return Status::OK();
}

Result<KdeSelectivityEstimator*> ModelCatalog::Open(const ModelKey& key) {
  FKDE_ASSIGN_OR_RETURN(std::shared_ptr<Entry> entry, Find(key));
  std::lock_guard<std::mutex> lock(entry->mu);
  FKDE_RETURN_NOT_OK(EnsureResidentLocked(entry.get()));
  return entry->model.get();
}

Status ModelCatalog::Pin(const ModelKey& key, bool pinned) {
  FKDE_ASSIGN_OR_RETURN(std::shared_ptr<Entry> entry, Find(key));
  // Take the entry lock so a pin cannot slip between a concurrent
  // enforcer's pinned-check and its eviction.
  std::lock_guard<std::mutex> lock(entry->mu);
  entry->pinned.store(pinned, std::memory_order_relaxed);
  return Status::OK();
}

Result<std::vector<std::uint8_t>> ModelCatalog::SaveSnapshot(
    const ModelKey& key) {
  FKDE_ASSIGN_OR_RETURN(std::shared_ptr<Entry> entry, Find(key));
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->model != nullptr) {
    return SnapshotModel(entry->model.get());
  }
  if (!entry->snapshot.empty()) return entry->snapshot;
  return Status::FailedPrecondition(
      "model was never built, nothing to snapshot: " + key.ToString());
}

Status ModelCatalog::Evict(const ModelKey& key) {
  FKDE_ASSIGN_OR_RETURN(std::shared_ptr<Entry> entry, Find(key));
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->model == nullptr) return Status::OK();
  if (entry->pinned.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("model is pinned: " + key.ToString());
  }
  return EvictEntryLocked(entry.get());
}

Result<std::unique_ptr<SelectivityEstimator>> ModelCatalog::Handle(
    const ModelKey& key) {
  FKDE_ASSIGN_OR_RETURN(std::shared_ptr<Entry> entry, Find(key));
  return std::unique_ptr<SelectivityEstimator>(std::make_unique<
      CatalogModelHandle>(this, key, entry->spec.table->num_cols()));
}

Result<ModelStats> ModelCatalog::StatsFor(const ModelKey& key) const {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return Status::NotFound("no model registered: " + key.ToString());
    }
    entry = it->second;
  }
  ModelStats stats;
  stats.queries_served = entry->queries_served.load(std::memory_order_relaxed);
  stats.feedback_applied =
      entry->feedback_applied.load(std::memory_order_relaxed);
  stats.evictions = entry->evictions.load(std::memory_order_relaxed);
  stats.faults = entry->faults.load(std::memory_order_relaxed);
  stats.device_bytes = entry->device_bytes.load(std::memory_order_relaxed);
  stats.resident = entry->resident.load(std::memory_order_relaxed);
  stats.pinned = entry->pinned.load(std::memory_order_relaxed);
  return stats;
}

CatalogStats ModelCatalog::Stats() const {
  CatalogStats stats;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    stats.models = entries_.size();
    for (const auto& [key, entry] : entries_) {
      if (entry->resident.load(std::memory_order_relaxed)) {
        ++stats.resident_models;
      }
    }
  }
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  stats.faults = faults_.load(std::memory_order_relaxed);
  stats.budget_bytes = options_.device_budget_bytes;
  stats.used_bytes = UsedBytes();
  return stats;
}

std::vector<ModelKey> ModelCatalog::Keys() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  std::vector<ModelKey> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) keys.push_back(key);
  return keys;
}

Status ModelCatalog::EnsureResidentLocked(Entry* entry) {
  entry->lru_tick.store(lru_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  if (entry->model == nullptr) {
    if (!entry->snapshot.empty()) {
      // Fault the evicted model back; the restored instance is
      // bitwise-faithful, so eviction history never shows in estimates.
      FKDE_ASSIGN_OR_RETURN(
          entry->model,
          RestoreModel(entry->snapshot, group_, entry->spec.table));
      entry->faults.fetch_add(1, std::memory_order_relaxed);
      faults_.fetch_add(1, std::memory_order_relaxed);
    } else {
      FKDE_ASSIGN_OR_RETURN(
          entry->model,
          KdeSelectivityEstimator::Create(entry->spec.mode, group_,
                                          entry->spec.table,
                                          entry->spec.config,
                                          entry->spec.training));
    }
    entry->resident.store(true, std::memory_order_relaxed);
    entry->device_bytes.store(entry->model->ModelBytes(),
                              std::memory_order_relaxed);
  }
  // Admit first, then shed: the serving model itself is exempt, so a
  // single over-budget model still serves (matching how the paper's
  // directory never refuses the model the optimizer is asking for).
  return EnforceBudget(entry);
}

Status ModelCatalog::EnforceBudget(const Entry* keep) {
  if (options_.device_budget_bytes == 0) return Status::OK();
  if (UsedBytes() <= options_.device_budget_bytes) return Status::OK();
  // Cheapest first: parked scratch buffers are pure cache.
  group_->TrimScratchPools();
  while (UsedBytes() > options_.device_budget_bytes) {
    // Snapshot the candidates under the registry lock, then lock the
    // victim OUTSIDE it — blocking on an entry mutex while holding the
    // registry (or another entry, as the caller does with `keep`) is the
    // forbidden inversion, so victims are taken with try_lock and busy
    // models are skipped: whoever is serving them will re-enforce on
    // their own admission.
    std::vector<std::shared_ptr<Entry>> candidates;
    {
      std::lock_guard<std::mutex> lock(registry_mu_);
      for (const auto& [key, entry] : entries_) {
        if (entry.get() == keep) continue;
        if (!entry->resident.load(std::memory_order_relaxed)) continue;
        if (entry->pinned.load(std::memory_order_relaxed)) continue;
        candidates.push_back(entry);
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const std::shared_ptr<Entry>& a,
                 const std::shared_ptr<Entry>& b) {
                return a->lru_tick.load(std::memory_order_relaxed) <
                       b->lru_tick.load(std::memory_order_relaxed);
              });
    bool evicted = false;
    for (const std::shared_ptr<Entry>& victim : candidates) {
      std::unique_lock<std::mutex> victim_lock(victim->mu, std::try_to_lock);
      if (!victim_lock.owns_lock()) continue;
      // Re-check under the lock: the candidate scan was unlocked.
      if (victim->model == nullptr ||
          victim->pinned.load(std::memory_order_relaxed)) {
        continue;
      }
      FKDE_RETURN_NOT_OK(EvictEntryLocked(victim.get()));
      evicted = true;
      break;
    }
    if (!evicted) return Status::OK();  // Nothing evictable (now) left.
  }
  return Status::OK();
}

Status ModelCatalog::EvictEntryLocked(Entry* entry) {
  // SnapshotModel quiesces: in-flight gradient/Karma passes fold into
  // host state before the engine's destructor drains the queues.
  FKDE_ASSIGN_OR_RETURN(entry->snapshot, SnapshotModel(entry->model.get()));
  entry->model.reset();
  entry->resident.store(false, std::memory_order_relaxed);
  entry->device_bytes.store(0, std::memory_order_relaxed);
  entry->evictions.fetch_add(1, std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::size_t ModelCatalog::UsedBytes() const {
  std::size_t bytes = group_->AggregateScratchStats().pooled_bytes;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& [key, entry] : entries_) {
    bytes += entry->device_bytes.load(std::memory_order_relaxed);
  }
  return bytes;
}

}  // namespace fkde
