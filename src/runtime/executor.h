/// \file executor.h
/// \brief The "database side" of the feedback loop.
///
/// The paper's estimator lives inside Postgres and sees three things from
/// the engine: random samples at ANALYZE time, update notifications, and
/// true selectivities after query execution. `Executor` supplies the
/// latter two over a `Table`, standing in for the Postgres executor
/// (DESIGN.md §1).

#ifndef FKDE_RUNTIME_EXECUTOR_H_
#define FKDE_RUNTIME_EXECUTOR_H_

#include <memory>

#include "data/box.h"
#include "data/kdtree_counter.h"
#include "data/table.h"
#include "histogram/stholes.h"

namespace fkde {

/// \brief Exact range execution over a table, with an optional static
/// index for repeated counting.
class Executor {
 public:
  /// Wraps `table`; the table must outlive the executor.
  explicit Executor(Table* table) : table_(table) {
    FKDE_CHECK(table != nullptr);
  }

  Table* table() { return table_; }
  const Table* table() const { return table_; }

  /// Exact number of rows inside the box right now.
  std::size_t Count(const Box& box) const;

  /// Exact selectivity (fraction of rows) of the box right now.
  double TrueSelectivity(const Box& box) const;

  /// Builds (or rebuilds) a k-d index over the current table snapshot so
  /// subsequent counting is sublinear. Must be re-armed after mutations;
  /// any mutation through the executor drops the index automatically.
  void BuildIndex();

  /// Mutations (forwarded to the table; they invalidate the index).
  void Insert(std::span<const double> row, std::uint32_t tag = 0);
  std::size_t DeleteByTag(std::uint32_t tag);

  /// A RegionCounter view for STHoles' result-stream counting.
  RegionCounter MakeRegionCounter() const;

 private:
  Table* table_;
  std::unique_ptr<KdTreeCounter> index_;
};

}  // namespace fkde

#endif  // FKDE_RUNTIME_EXECUTOR_H_
