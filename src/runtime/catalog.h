/// \file catalog.h
/// \brief Multi-model serving: many KDE models on one shared device group.
///
/// A database does not keep one selectivity model — it keeps one per
/// (table, column-set) that ANALYZE has seen, all sharing the one
/// accelerator. In the paper's Postgres integration this is the
/// `pg_kdemodels` catalog relation plus the in-memory model directory:
/// models are built at ANALYZE time, persisted, reloaded lazily on first
/// use, and dropped when memory runs short. `ModelCatalog` is that layer:
///
///  * **Lifecycle** — `Register` declares a model spec under a `ModelKey`;
///    the estimator itself is built lazily on the first query ("open"),
///    and `Drop` removes it. Per-model `ModelStats` count queries served,
///    feedback observations applied, evictions, faults and the model's
///    device footprint.
///  * **Persistence** — eviction and `SaveSnapshot` serialize models with
///    the versioned codec of kde/snapshot.h; a restored model is
///    bitwise-faithful (same estimate bits, same Karma/bandwidth
///    decisions), so serving quality never depends on residency history.
///  * **Admission & eviction** — `CatalogOptions::device_budget_bytes`
///    bounds the models' aggregate device footprint. On pressure the
///    catalog first trims the group's parked scratch buffers (free
///    memory, no model impact), then evicts least-recently-used
///    non-pinned models: quiesce, snapshot to the in-memory blob store,
///    destroy. An evicted model faults back transparently on its next
///    query.
///
/// All models are tenants of ONE `DeviceGroup`: their per-query passes
/// interleave on the shared in-order queues, which is safe because every
/// engine pass declares its buffer access-sets (hazard checker) and each
/// model's buffers are disjoint.
///
/// ## Lock discipline (multi-threaded serving)
///
/// Multiple client threads may drive one catalog concurrently. Two lock
/// levels, never inverted:
///
///  * `registry_mu_` guards ONLY the key → entry map (register, drop,
///    lookup, iteration). It is never held across model work.
///  * each entry's `mu` serializes that one model's build / serve /
///    snapshot / evict. Admission onto the shared device queues happens
///    under it, so one model's command chains enqueue in program order
///    (per-model estimates stay deterministic); different models'
///    chains interleave freely on the in-order queues.
///
/// Blocking on an entry `mu` while holding `registry_mu_` or another
/// entry's `mu` is forbidden — budget enforcement walks victims with
/// `try_lock` and simply skips models another thread is serving.
/// Cross-thread-read counters (stats, LRU ticks, footprints) are
/// atomics, so `Stats()`/`UsedBytes()` never need a model's lock.

#ifndef FKDE_RUNTIME_CATALOG_H_
#define FKDE_RUNTIME_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"
#include "estimator/estimator.h"
#include "kde/kde_estimator.h"
#include "parallel/device_group.h"
#include "workload/workload.h"

namespace fkde {

/// \brief Catalog key: which relation and attribute set a model covers.
struct ModelKey {
  std::string table;
  std::vector<std::string> columns;

  bool operator<(const ModelKey& other) const {
    if (table != other.table) return table < other.table;
    return columns < other.columns;
  }
  bool operator==(const ModelKey& other) const {
    return table == other.table && columns == other.columns;
  }

  /// "orders(price,discount)" — diagnostics and handle names.
  std::string ToString() const;
};

/// \brief Everything the catalog needs to build (and rebuild) one model.
struct ModelSpec {
  KdeSelectivityEstimator::Mode mode =
      KdeSelectivityEstimator::Mode::kAdaptive;
  KdeConfig config;
  /// Base table; must outlive the catalog entry (replacement rows and
  /// lazy builds read it).
  const Table* table = nullptr;
  /// Training workload (required by Mode::kBatch, ignored otherwise).
  /// Owned: a lazy build may happen long after the caller's span died.
  std::vector<Query> training;
};

/// \brief Per-model serving counters.
struct ModelStats {
  std::uint64_t queries_served = 0;
  std::uint64_t feedback_applied = 0;
  std::uint64_t evictions = 0;  ///< Times spilled to a snapshot.
  std::uint64_t faults = 0;     ///< Times restored from a snapshot.
  std::size_t device_bytes = 0;  ///< Model footprint while resident, else 0.
  bool resident = false;
  bool pinned = false;
};

/// \brief Catalog-wide counters and budget occupancy.
struct CatalogStats {
  std::size_t models = 0;
  std::size_t resident_models = 0;
  std::uint64_t evictions = 0;
  std::uint64_t faults = 0;
  std::size_t budget_bytes = 0;  ///< 0 = unbounded.
  /// Resident model bytes + the group's parked scratch bytes — what the
  /// budget is enforced against.
  std::size_t used_bytes = 0;
};

struct CatalogOptions {
  /// Aggregate device-memory budget for model payloads plus parked
  /// scratch; 0 disables eviction. The most-recently-touched model is
  /// never evicted, so one model over budget still serves.
  std::size_t device_budget_bytes = 0;
};

/// \brief Registry of concurrently-served KDE models sharing one group.
class ModelCatalog {
 public:
  /// All models shard across (or, for a one-device group, reside on)
  /// `group`, which must outlive the catalog.
  ModelCatalog(DeviceGroup* group, CatalogOptions options = {});
  ~ModelCatalog();

  ModelCatalog(const ModelCatalog&) = delete;
  ModelCatalog& operator=(const ModelCatalog&) = delete;

  /// Declares a model. Construction is lazy: the estimator is built on
  /// the first query (ANALYZE writes the catalog row; the optimizer's
  /// first lookup loads the model). AlreadyExists on a duplicate key,
  /// InvalidArgument on a null/empty table or a column-count mismatch.
  Status Register(const ModelKey& key, ModelSpec spec);

  /// Removes the model, its snapshot blob and its stats entirely.
  Status Drop(const ModelKey& key);

  /// Serves one estimate through the model (building or faulting it in
  /// first if needed).
  Result<double> Estimate(const ModelKey& key, const Box& box);

  /// Applies query feedback through the model.
  Status Feedback(const ModelKey& key, const Box& box, double selectivity);

  /// Ensures the model is resident and returns it (catalog retains
  /// ownership; the pointer is valid until the model is evicted or
  /// dropped). Prefer Estimate/Feedback, which also maintain stats.
  /// Under concurrent serving, `Pin` the model first: another thread's
  /// budget enforcement may otherwise evict it between your calls.
  Result<KdeSelectivityEstimator*> Open(const ModelKey& key);

  /// Pins (or unpins) the model: pinned models are never evicted.
  Status Pin(const ModelKey& key, bool pinned);

  /// Serializes the model's current state (resident or not) and returns
  /// the blob — external persistence across process restarts.
  Result<std::vector<std::uint8_t>> SaveSnapshot(const ModelKey& key);

  /// Registers a model directly from a snapshot blob (warm restart from
  /// external storage). The model starts cold and faults in on first use.
  Status RegisterFromSnapshot(const ModelKey& key, ModelSpec spec,
                              std::vector<std::uint8_t> snapshot);

  /// Evicts the model now (quiesce + snapshot + destroy); no-op when not
  /// resident. FailedPrecondition when pinned.
  Status Evict(const ModelKey& key);

  /// Wraps the model as a `SelectivityEstimator` bound to this catalog —
  /// drivers and benches run unchanged against it while the catalog keeps
  /// the model's residency fluid underneath.
  Result<std::unique_ptr<SelectivityEstimator>> Handle(const ModelKey& key);

  Result<ModelStats> StatsFor(const ModelKey& key) const;
  CatalogStats Stats() const;
  DeviceGroup* group() const { return group_; }
  const CatalogOptions& options() const { return options_; }

  /// Registered keys in key order (diagnostics, benches).
  std::vector<ModelKey> Keys() const;

 private:
  struct Entry {
    /// Immutable after Register (readable without any lock).
    ModelSpec spec;
    /// Serializes this model's build / serve / snapshot / evict. Held
    /// while the model enqueues onto the shared device queues.
    std::mutex mu;
    /// Live estimator; null while cold (snapshot holds the state).
    /// Guarded by `mu`.
    std::unique_ptr<KdeSelectivityEstimator> model;
    /// Last snapshot; state of record while the model is cold. Guarded
    /// by `mu`.
    std::vector<std::uint8_t> snapshot;
    /// Counters read by Stats()/UsedBytes() without taking `mu`.
    std::atomic<std::uint64_t> queries_served{0};
    std::atomic<std::uint64_t> feedback_applied{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> faults{0};
    std::atomic<std::size_t> device_bytes{0};
    std::atomic<bool> resident{false};
    std::atomic<bool> pinned{false};
    std::atomic<std::uint64_t> lru_tick{0};
  };

  /// Looks the entry up under `registry_mu_`; the shared_ptr keeps it
  /// alive across a concurrent Drop.
  Result<std::shared_ptr<Entry>> Find(const ModelKey& key);
  /// Builds or faults in the entry's model and bumps its LRU tick; then
  /// sheds memory down to the budget (never evicting `entry` itself).
  /// Caller holds `entry->mu`.
  Status EnsureResidentLocked(Entry* entry);
  /// Trims scratch, then evicts LRU non-pinned models until under budget.
  /// `keep` survives (the model serving the current query). Victims are
  /// acquired with try_lock; models busy in another thread are skipped.
  Status EnforceBudget(const Entry* keep);
  /// Caller holds `entry->mu`.
  Status EvictEntryLocked(Entry* entry);
  std::size_t UsedBytes() const;

  DeviceGroup* group_;
  CatalogOptions options_;
  /// Guards only the map itself (entries are shared_ptr-stable).
  mutable std::mutex registry_mu_;
  std::map<ModelKey, std::shared_ptr<Entry>> entries_;
  std::atomic<std::uint64_t> lru_clock_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> faults_{0};
};

}  // namespace fkde

#endif  // FKDE_RUNTIME_CATALOG_H_
