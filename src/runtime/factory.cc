#include "runtime/factory.h"

#include <algorithm>

#include "histogram/avi.h"
#include "histogram/genhist.h"
#include "histogram/stholes.h"

namespace fkde {

std::vector<std::string> EstimatorNames() {
  return {"stholes", "kde_heuristic", "kde_scv", "kde_batch", "kde_adaptive"};
}

Result<std::unique_ptr<SelectivityEstimator>> BuildEstimator(
    const std::string& name, const EstimatorBuildContext& context) {
  if (context.executor == nullptr) {
    return Status::InvalidArgument("context.executor must be set");
  }
  const Table* table = context.executor->table();
  if (table->empty()) {
    return Status::FailedPrecondition("cannot build estimators on empty data");
  }
  const std::size_t d = table->num_cols();
  const std::size_t bytes =
      context.memory_bytes > 0 ? context.memory_bytes : d * 4096;

  auto build_kde = [&](KdeSelectivityEstimator::Mode mode)
      -> Result<std::unique_ptr<SelectivityEstimator>> {
    KdeConfig config = context.kde;
    config.sample_size = std::max<std::size_t>(16, bytes / (sizeof(float) * d));
    config.seed = context.seed;
    if (context.catalog != nullptr) {
      // Serving path: register the model under its (table, column-set)
      // key and hand back a catalog handle. Construction happens lazily
      // on the first query, under the catalog's device-memory budget.
      ModelKey key;
      key.table = context.table_name;
      key.columns = context.columns;
      if (key.columns.empty()) {
        for (std::size_t i = 0; i < d; ++i) {
          std::string col = "c";
          col += std::to_string(i);
          key.columns.push_back(std::move(col));
        }
      }
      ModelSpec spec;
      spec.mode = mode;
      spec.config = config;
      spec.table = table;
      spec.training.assign(context.training.begin(), context.training.end());
      FKDE_RETURN_NOT_OK(context.catalog->Register(key, std::move(spec)));
      return context.catalog->Handle(key);
    }
    if (context.device == nullptr && context.device_group == nullptr) {
      return Status::InvalidArgument(
          "KDE estimators need context.device, context.device_group or "
          "context.catalog");
    }
    Result<std::unique_ptr<KdeSelectivityEstimator>> built =
        context.device_group != nullptr
            ? KdeSelectivityEstimator::Create(mode, context.device_group,
                                              table, config, context.training)
            : KdeSelectivityEstimator::Create(mode, context.device, table,
                                              config, context.training);
    FKDE_ASSIGN_OR_RETURN(std::unique_ptr<KdeSelectivityEstimator> kde,
                          std::move(built));
    return std::unique_ptr<SelectivityEstimator>(std::move(kde));
  };

  if (name == "kde_heuristic") {
    return build_kde(KdeSelectivityEstimator::Mode::kHeuristic);
  }
  if (name == "kde_scv") {
    return build_kde(KdeSelectivityEstimator::Mode::kScv);
  }
  if (name == "kde_batch") {
    return build_kde(KdeSelectivityEstimator::Mode::kBatch);
  }
  if (name == "kde_periodic") {
    return build_kde(KdeSelectivityEstimator::Mode::kPeriodic);
  }
  if (name == "kde_adaptive") {
    return build_kde(KdeSelectivityEstimator::Mode::kAdaptive);
  }
  if (name == "stholes") {
    SthOptions options;
    options.max_buckets = SthBucketBudgetForBytes(bytes, d);
    return std::unique_ptr<SelectivityEstimator>(std::make_unique<STHoles>(
        table->Bounds(), table->num_rows(),
        context.executor->MakeRegionCounter(), options));
  }
  if (name == "genhist") {
    GenHistOptions options;
    options.max_buckets = SthBucketBudgetForBytes(bytes, d);
    options.seed = context.seed;
    FKDE_ASSIGN_OR_RETURN(GenHist hist, GenHist::Build(*table, options));
    return std::unique_ptr<SelectivityEstimator>(
        std::make_unique<GenHist>(std::move(hist)));
  }
  if (name == "avi") {
    const std::size_t buckets = std::max<std::size_t>(8, bytes / (d * 16));
    FKDE_ASSIGN_OR_RETURN(AviHistogram avi,
                          AviHistogram::Build(*table, buckets));
    return std::unique_ptr<SelectivityEstimator>(
        std::make_unique<AviHistogram>(std::move(avi)));
  }
  return Status::InvalidArgument("unknown estimator: " + name);
}

}  // namespace fkde
