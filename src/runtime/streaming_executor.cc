#include "runtime/streaming_executor.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace fkde {

StreamingExecutor::StreamingExecutor(DeviceGroup* group,
                                     StreamingOptions options)
    : group_(group), options_(options) {
  FKDE_CHECK(group != nullptr);
  FKDE_CHECK_MSG(options_.window >= 1, "window must be >= 1");
}

std::vector<double> StreamingExecutor::PoissonArrivals(
    std::size_t n, double offered_load_qps, std::uint64_t seed) {
  std::vector<double> arrivals(n, 0.0);
  if (offered_load_qps <= 0.0) return arrivals;  // Closed loop: all at t=0.
  Rng rng(seed);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.Exponential(offered_load_qps);
    arrivals[i] = t;
  }
  return arrivals;
}

double StreamingExecutor::Now() const {
  return group_->MaxModeledSeconds() + advanced_ - start_s_;
}

void StreamingExecutor::AdvanceTo(double target) {
  const double now = Now();
  if (target <= now) return;
  group_->AdvanceHostTime(target - now);
  advanced_ += target - now;
}

void StreamingExecutor::Drain() {
  for (std::size_t i = 0; i < group_->size(); ++i) {
    group_->device(i)->default_queue()->Finish();
  }
}

Result<StreamingReport> StreamingExecutor::Run(
    KdeSelectivityEstimator* model, std::span<const StreamedQuery> queries) {
  if (model == nullptr) {
    return Status::InvalidArgument("model must be non-null");
  }
  const std::size_t n = queries.size();
  const std::vector<double> arrivals =
      PoissonArrivals(n, options_.offered_load_qps, options_.arrival_seed);

  // Counter baselines: the report is a delta over this run, so streamed
  // vs replay compare cleanly even on a warm group.
  const double modeled0 = group_->MaxModeledSeconds();
  const double stall0 = group_->TotalHostStallSeconds();
  advanced_ = 0.0;
  start_s_ = modeled0;

  FKDE_RETURN_NOT_OK(model->EnableStreaming(options_.window));

  StreamingReport report;
  report.estimates.resize(n);
  report.latencies_s.resize(n);
  std::vector<std::uint64_t> tickets(n);

  // The deterministic admit/retire schedule: fill the window, then
  // alternate retire-oldest / admit-next until the tail drains. A pure
  // function of (arrival order, window) — never of modeled time — so the
  // pipelined and replay modes execute the same logical op sequence.
  std::size_t admitted = 0;
  std::size_t retired = 0;
  while (retired < n) {
    if (admitted < n && admitted - retired < options_.window) {
      // Open loop: the query does not exist before its arrival. (Closed
      // loop: arrivals are all 0 and this never advances.)
      AdvanceTo(arrivals[admitted]);
      tickets[admitted] = model->StreamBegin(queries[admitted].box);
      ++admitted;
      if (!options_.pipeline) Drain();
      continue;
    }
    const std::size_t k = retired;
    report.estimates[k] = model->StreamDeliver(tickets[k]);
    report.latencies_s[k] = Now() - arrivals[k];
    // The database executes query k while k+1..'s chains (and k's
    // pipelined gradient) crunch on the devices.
    if (options_.execution_seconds > 0.0) {
      AdvanceTo(Now() + options_.execution_seconds);
    }
    if (options_.feedback) {
      model->StreamFeedback(tickets[k], queries[k].truth);
    } else {
      model->StreamRetire(tickets[k]);
    }
    ++retired;
    if (!options_.pipeline) Drain();
  }

  // Retire the ring before the report: DisableStreaming drains every
  // queue, so the span includes the tail's device work.
  model->DisableStreaming();
  report.completed = n;
  report.span_s = Now();
  report.throughput_qps =
      report.span_s > 0.0 ? static_cast<double>(n) / report.span_s : 0.0;
  report.modeled_s = group_->MaxModeledSeconds() - modeled0;
  report.stall_s = group_->TotalHostStallSeconds() - stall0;
  report.idle_gap =
      report.modeled_s > 0.0 ? report.stall_s / report.modeled_s : 0.0;
  const CommandQueueStats queue_stats = group_->AggregateQueueStats();
  report.total_commands = queue_stats.total_commands;
  report.queue_depth_high_water = queue_stats.depth_high_water;
  return report;
}

Result<StreamingReport> StreamingExecutor::RunCatalog(
    ModelCatalog* catalog, const ModelKey& key,
    std::span<const StreamedQuery> queries, const StreamingOptions& options) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("catalog must be non-null");
  }
  // Pin across the stream: another thread's budget enforcement must not
  // evict a model with tickets in flight (its quiesce would fault). The
  // per-entry serving lock is NOT held here — Open admits the model and
  // returns; the stream then drives the estimator directly, which is
  // safe because tickets are this thread's private state and eviction is
  // excluded by the pin.
  FKDE_RETURN_NOT_OK(catalog->Pin(key, true));
  FKDE_ASSIGN_OR_RETURN(KdeSelectivityEstimator * model, catalog->Open(key));
  StreamingExecutor executor(catalog->group(), options);
  Result<StreamingReport> report = executor.Run(model, queries);
  FKDE_RETURN_NOT_OK(catalog->Pin(key, false));
  return report;
}

}  // namespace fkde
