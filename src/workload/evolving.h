/// \file evolving.h
/// \brief The Section 6.5 evolving-database workload.
///
/// The paper's final experiment mirrors "an evolving database where new
/// data is queried more frequently, and older data is periodically moved
/// into an archive": the workload loads three random clusters, then runs
/// ten cycles of gradually inserting a new cluster followed by deleting the
/// oldest one, interleaved with DT queries whose centers favor newer
/// clusters.
///
/// The workload is produced as a lazy event stream so the driver can apply
/// each event to the live table and estimator in order.

#ifndef FKDE_WORKLOAD_EVOLVING_H_
#define FKDE_WORKLOAD_EVOLVING_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.h"
#include "data/box.h"
#include "data/table.h"
#include "workload/workload.h"

namespace fkde {

/// \brief One step of the evolving workload.
struct EvolvingEvent {
  enum class Kind {
    kInsert,         ///< Insert `row` (tagged `tag`) into the table.
    kDeleteCluster,  ///< Delete all rows tagged `tag`.
    kQuery,          ///< Run `query` and feed the estimator its result.
  };
  Kind kind = Kind::kQuery;
  std::vector<double> row;
  std::uint32_t tag = 0;
  Query query;
};

/// \brief Parameters of the evolving workload (paper defaults).
struct EvolvingParams {
  std::size_t dims = 5;
  std::size_t initial_clusters = 3;
  std::size_t tuples_per_cluster = 1500;
  std::size_t cycles = 10;
  /// Queries emitted per batch of inserts.
  std::size_t inserts_per_query = 25;
  /// DT target selectivity of the interleaved queries.
  double target_selectivity = 0.01;
  /// Recency bias: the weight of a cluster decays by this factor per
  /// cluster age step, so newer clusters are queried more often.
  double recency_decay = 0.45;
  /// Probability that a query probes a recently archived (deleted)
  /// cluster instead of live data. Such probes usually return empty
  /// results — the signal that drives Karma decay and the Appendix E
  /// shortcut for sample points stranded in archived regions.
  double archive_probe_probability = 0.1;
  /// Cluster side-length range relative to the unit domain.
  double min_side = 0.1;
  double max_side = 0.3;
};

/// \brief Lazy generator of the evolving event stream.
///
/// Usage: repeatedly call `Next(table, &event)`; apply insert/delete events
/// to the table (and notify the estimator), and run query events through
/// the feedback loop. `Next` computes query selectivities against the
/// *current* table contents, so events must be applied in order.
class EvolvingWorkload {
 public:
  EvolvingWorkload(const EvolvingParams& params, std::uint64_t seed);

  /// Produces the next event; returns false when the stream is exhausted.
  bool Next(const Table& table, EvolvingEvent* event);

  /// Total number of query events the full stream will contain.
  std::size_t TotalQueries() const;

 private:
  struct Cluster {
    Box box;
    std::uint32_t tag;
  };

  Box NewClusterBox();
  std::vector<double> DrawRowIn(const Box& box);
  EvolvingEvent MakeQuery(const Table& table);

  EvolvingParams params_;
  Rng rng_;
  std::deque<Cluster> live_clusters_;  // Oldest at the front.
  std::deque<Box> archived_boxes_;     // Recently deleted cluster regions.
  std::uint32_t next_tag_ = 0;

  // Phase state machine.
  enum class Phase { kInitialLoad, kGrow, kDelete, kDone };
  Phase phase_ = Phase::kInitialLoad;
  std::size_t phase_inserts_done_ = 0;
  std::size_t inserts_since_query_ = 0;
  std::size_t cycles_done_ = 0;
  Box grow_box_;  // Cluster currently being filled.
};

}  // namespace fkde

#endif  // FKDE_WORKLOAD_EVOLVING_H_
