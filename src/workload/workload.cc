#include "workload/workload.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace fkde {

std::string WorkloadSpec::Name() const {
  std::string out;
  out += (center == CenterDistribution::kData) ? 'D' : 'U';
  out += (target == TargetType::kSelectivity) ? 'T' : 'V';
  if (target_value != 0.01) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "(%g)", target_value);
    out += buf;
  }
  return out;
}

Result<WorkloadSpec> ParseWorkloadName(const std::string& name) {
  std::string lower;
  for (char c : name) lower += static_cast<char>(std::tolower(c));
  WorkloadSpec spec;
  if (lower == "dt") {
    spec.center = CenterDistribution::kData;
    spec.target = TargetType::kSelectivity;
  } else if (lower == "dv") {
    spec.center = CenterDistribution::kData;
    spec.target = TargetType::kVolume;
  } else if (lower == "ut") {
    spec.center = CenterDistribution::kUniform;
    spec.target = TargetType::kSelectivity;
  } else if (lower == "uv") {
    spec.center = CenterDistribution::kUniform;
    spec.target = TargetType::kVolume;
  } else {
    return Status::InvalidArgument("unknown workload: " + name +
                                   " (expected DT, DV, UT or UV)");
  }
  return spec;
}

std::vector<WorkloadSpec> AllWorkloads() {
  std::vector<WorkloadSpec> out;
  for (const char* name : {"dt", "dv", "ut", "uv"}) {
    out.push_back(ParseWorkloadName(name).ValueOrDie());
  }
  return out;
}

WorkloadGenerator::WorkloadGenerator(const Table& table)
    : table_(table), counter_(table), bounds_(table.Bounds()) {
  FKDE_CHECK_MSG(!table.empty(), "cannot generate workloads on an empty table");
}

std::vector<double> WorkloadGenerator::DrawCenter(const WorkloadSpec& spec,
                                                  Rng* rng) const {
  const std::size_t d = table_.num_cols();
  std::vector<double> center(d);
  if (spec.center == CenterDistribution::kData) {
    const std::size_t row = table_.RandomRowIndex(rng);
    const auto r = table_.Row(row);
    std::copy(r.begin(), r.end(), center.begin());
  } else {
    for (std::size_t j = 0; j < d; ++j) {
      center[j] = rng->Uniform(bounds_.lower(j), bounds_.upper(j));
    }
  }
  return center;
}

Box WorkloadGenerator::MakeBox(const std::vector<double>& center,
                               const std::vector<double>& shape,
                               double scale) const {
  const std::size_t d = center.size();
  std::vector<double> lo(d), hi(d);
  for (std::size_t j = 0; j < d; ++j) {
    const double half = scale * shape[j];
    lo[j] = center[j] - half;
    hi[j] = center[j] + half;
  }
  return Box(std::move(lo), std::move(hi));
}

Query WorkloadGenerator::GenerateOne(const WorkloadSpec& spec,
                                     Rng* rng) const {
  const std::size_t d = table_.num_cols();
  const std::vector<double> center = DrawCenter(spec, rng);

  // Random aspect ratios: per-dimension half-extents proportional to the
  // domain extent, perturbed by a uniform factor so query shapes vary.
  std::vector<double> shape(d);
  for (std::size_t j = 0; j < d; ++j) {
    double extent = bounds_.Extent(j);
    if (extent <= 0.0) extent = 1.0;  // Degenerate attribute: unit scale.
    shape[j] = 0.5 * extent * rng->Uniform(0.5, 1.5);
  }

  Query query;
  if (spec.target == TargetType::kVolume) {
    // Scale so the box volume is target_value * domain volume. Every
    // factor of `scale` multiplies the volume by scale^d.
    double domain_volume = 1.0;
    for (std::size_t j = 0; j < d; ++j) {
      domain_volume *= std::max(bounds_.Extent(j), 1e-300);
    }
    double shape_volume = 1.0;
    for (std::size_t j = 0; j < d; ++j) shape_volume *= 2.0 * shape[j];
    const double scale = std::pow(
        spec.target_value * domain_volume / shape_volume, 1.0 / double(d));
    query.box = MakeBox(center, shape, scale);
  } else {
    // Binary search the scale so the selectivity hits the target. The
    // scale is bounded above by a box covering the whole domain several
    // times over; centers in empty regions may never reach the target, in
    // which case the closest achievable scale is used (matching how such
    // workloads behave on real data).
    const double n = static_cast<double>(table_.num_rows());
    const double target = spec.target_value;
    double lo = 0.0;
    double hi = 1e-3;
    // Grow until we bracket the target (or hit the cap).
    for (int i = 0; i < 40; ++i) {
      const double sel =
          static_cast<double>(counter_.Count(MakeBox(center, shape, hi))) / n;
      if (sel >= target || hi > 8.0) break;
      hi *= 2.0;
    }
    for (int i = 0; i < 40; ++i) {
      const double mid = 0.5 * (lo + hi);
      const double sel =
          static_cast<double>(counter_.Count(MakeBox(center, shape, mid))) /
          n;
      if (sel < target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    query.box = MakeBox(center, shape, hi);
  }
  query.selectivity =
      static_cast<double>(counter_.Count(query.box)) /
      static_cast<double>(table_.num_rows());
  return query;
}

std::vector<Query> WorkloadGenerator::Generate(const WorkloadSpec& spec,
                                               std::size_t count,
                                               Rng* rng) const {
  std::vector<Query> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(GenerateOne(spec, rng));
  return out;
}

}  // namespace fkde
