#include "workload/evolving.h"

#include <algorithm>
#include <cmath>

namespace fkde {

EvolvingWorkload::EvolvingWorkload(const EvolvingParams& params,
                                   std::uint64_t seed)
    : params_(params), rng_(seed) {
  FKDE_CHECK(params_.dims > 0);
  FKDE_CHECK(params_.initial_clusters > 0);
  FKDE_CHECK(params_.tuples_per_cluster > 0);
  FKDE_CHECK(params_.inserts_per_query > 0);
  // Create the initial clusters; the load phase fills them round-robin so
  // the 4500 initial tuples are "evenly distributed among three random
  // clusters" as in the paper.
  for (std::size_t c = 0; c < params_.initial_clusters; ++c) {
    live_clusters_.push_back({NewClusterBox(), next_tag_++});
  }
}

Box EvolvingWorkload::NewClusterBox() {
  std::vector<double> lo(params_.dims), hi(params_.dims);
  for (std::size_t j = 0; j < params_.dims; ++j) {
    const double side = rng_.Uniform(params_.min_side, params_.max_side);
    const double start = rng_.Uniform(0.0, 1.0 - side);
    lo[j] = start;
    hi[j] = start + side;
  }
  return Box(std::move(lo), std::move(hi));
}

std::vector<double> EvolvingWorkload::DrawRowIn(const Box& box) {
  std::vector<double> row(params_.dims);
  for (std::size_t j = 0; j < params_.dims; ++j) {
    row[j] = rng_.Uniform(box.lower(j), box.upper(j));
  }
  return row;
}

std::size_t EvolvingWorkload::TotalQueries() const {
  const std::size_t total_inserts =
      params_.tuples_per_cluster * (params_.initial_clusters + params_.cycles);
  return total_inserts / params_.inserts_per_query;
}

EvolvingEvent EvolvingWorkload::MakeQuery(const Table& table) {
  // Occasionally probe an archived region: a fixed-shape box inside a
  // recently deleted cluster (no selectivity targeting — the region is
  // expected to be empty now).
  if (!archived_boxes_.empty() &&
      rng_.Bernoulli(params_.archive_probe_probability)) {
    const Box& old_box =
        archived_boxes_[rng_.UniformInt(archived_boxes_.size())];
    std::vector<double> lo(params_.dims), hi(params_.dims);
    for (std::size_t j = 0; j < params_.dims; ++j) {
      const double side = old_box.Extent(j) * rng_.Uniform(0.3, 0.7);
      const double start =
          rng_.Uniform(old_box.lower(j), old_box.upper(j) - side);
      lo[j] = start;
      hi[j] = start + side;
    }
    EvolvingEvent event;
    event.kind = EvolvingEvent::Kind::kQuery;
    event.query.box = Box(std::move(lo), std::move(hi));
    event.query.selectivity =
        table.empty() ? 0.0
                      : static_cast<double>(
                            table.CountInBox(event.query.box)) /
                            static_cast<double>(table.num_rows());
    return event;
  }

  // Pick a cluster with recency bias: the newest cluster has weight 1,
  // each older one decays by recency_decay.
  std::vector<double> weights(live_clusters_.size());
  for (std::size_t i = 0; i < live_clusters_.size(); ++i) {
    const std::size_t age_from_newest = live_clusters_.size() - 1 - i;
    weights[i] = std::pow(params_.recency_decay,
                          static_cast<double>(age_from_newest));
  }
  const Cluster& cluster = live_clusters_[rng_.Categorical(weights)];
  std::vector<double> center = DrawRowIn(cluster.box);

  // Random-aspect box around the center, scaled by binary search until the
  // true selectivity on the *current* table hits the DT target.
  const std::size_t d = params_.dims;
  std::vector<double> shape(d);
  for (std::size_t j = 0; j < d; ++j) shape[j] = 0.5 * rng_.Uniform(0.5, 1.5);
  auto make_box = [&](double scale) {
    std::vector<double> lo(d), hi(d);
    for (std::size_t j = 0; j < d; ++j) {
      lo[j] = center[j] - scale * shape[j];
      hi[j] = center[j] + scale * shape[j];
    }
    return Box(std::move(lo), std::move(hi));
  };
  const double n = static_cast<double>(table.num_rows());
  double lo = 0.0, hi = 1e-3;
  for (int i = 0; i < 30; ++i) {
    if (static_cast<double>(table.CountInBox(make_box(hi))) / n >=
            params_.target_selectivity ||
        hi > 4.0) {
      break;
    }
    hi *= 2.0;
  }
  for (int i = 0; i < 30; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (static_cast<double>(table.CountInBox(make_box(mid))) / n <
        params_.target_selectivity) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  EvolvingEvent event;
  event.kind = EvolvingEvent::Kind::kQuery;
  event.query.box = make_box(hi);
  event.query.selectivity =
      static_cast<double>(table.CountInBox(event.query.box)) / n;
  return event;
}

bool EvolvingWorkload::Next(const Table& table, EvolvingEvent* event) {
  // Interleave: after every `inserts_per_query` inserts, emit one query
  // (but only once the table has data to query).
  if (inserts_since_query_ >= params_.inserts_per_query && !table.empty()) {
    inserts_since_query_ = 0;
    *event = MakeQuery(table);
    return true;
  }

  switch (phase_) {
    case Phase::kInitialLoad: {
      const std::size_t total =
          params_.initial_clusters * params_.tuples_per_cluster;
      if (phase_inserts_done_ < total) {
        // Round-robin across the initial clusters.
        const Cluster& cluster =
            live_clusters_[phase_inserts_done_ % params_.initial_clusters];
        event->kind = EvolvingEvent::Kind::kInsert;
        event->row = DrawRowIn(cluster.box);
        event->tag = cluster.tag;
        ++phase_inserts_done_;
        ++inserts_since_query_;
        return true;
      }
      phase_ = Phase::kGrow;
      phase_inserts_done_ = 0;
      grow_box_ = NewClusterBox();
      live_clusters_.push_back({grow_box_, next_tag_++});
      return Next(table, event);
    }
    case Phase::kGrow: {
      if (phase_inserts_done_ < params_.tuples_per_cluster) {
        event->kind = EvolvingEvent::Kind::kInsert;
        event->row = DrawRowIn(grow_box_);
        event->tag = live_clusters_.back().tag;
        ++phase_inserts_done_;
        ++inserts_since_query_;
        return true;
      }
      phase_ = Phase::kDelete;
      return Next(table, event);
    }
    case Phase::kDelete: {
      event->kind = EvolvingEvent::Kind::kDeleteCluster;
      event->tag = live_clusters_.front().tag;
      archived_boxes_.push_back(live_clusters_.front().box);
      if (archived_boxes_.size() > 3) archived_boxes_.pop_front();
      live_clusters_.pop_front();
      ++cycles_done_;
      if (cycles_done_ < params_.cycles) {
        phase_ = Phase::kGrow;
        phase_inserts_done_ = 0;
        grow_box_ = NewClusterBox();
        live_clusters_.push_back({grow_box_, next_tag_++});
      } else {
        phase_ = Phase::kDone;
      }
      return true;
    }
    case Phase::kDone:
      return false;
  }
  return false;
}

}  // namespace fkde
