/// \file workload.h
/// \brief Query workload generation following Bruno et al. [7].
///
/// The paper's Section 6.1.3 workloads are specified by (a) a distribution
/// for query centers — following the data, or uniform over the data space —
/// and (b) a target the queries must meet — a target selectivity or a
/// target fraction of the data-space volume:
///
///   * DT: data-centered, target selectivity 1%
///   * DV: data-centered, target volume 1%
///   * UT: uniform-centered, target selectivity 1%
///   * UV: uniform-centered, target volume 1% (mostly empty queries)
///
/// Target-selectivity queries are built by binary-searching a scale factor
/// for a randomly-proportioned box around the center until the true
/// selectivity (via KdTreeCounter) hits the target.

#ifndef FKDE_WORKLOAD_WORKLOAD_H_
#define FKDE_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/box.h"
#include "data/kdtree_counter.h"
#include "data/table.h"

namespace fkde {

/// \brief A range query with its exact selectivity on the source table.
struct Query {
  Box box;
  /// True fraction of table rows inside `box` at generation time.
  double selectivity = 0.0;
};

/// Where query centers are drawn from.
enum class CenterDistribution {
  kData,     ///< Centers follow the data distribution (sampled rows).
  kUniform,  ///< Centers uniform over the data bounding box.
};

/// What the generated queries must achieve.
enum class TargetType {
  kSelectivity,  ///< Fraction of tuples returned.
  kVolume,       ///< Fraction of the data-space volume covered.
};

/// \brief Full specification of a workload class.
struct WorkloadSpec {
  CenterDistribution center = CenterDistribution::kData;
  TargetType target = TargetType::kSelectivity;
  double target_value = 0.01;

  /// Canonical name: "DT", "DV", "UT" or "UV" (plus the target value when
  /// it differs from the paper's 1%).
  std::string Name() const;
};

/// Parses "dt"/"dv"/"ut"/"uv" (case-insensitive) into a spec with the
/// paper's 1% target.
Result<WorkloadSpec> ParseWorkloadName(const std::string& name);

/// The four paper workloads in presentation order.
std::vector<WorkloadSpec> AllWorkloads();

/// \brief Generates queries of a given class against a table snapshot.
///
/// Builds a KdTreeCounter over the table once; each generated query records
/// its exact selectivity.
class WorkloadGenerator {
 public:
  /// Indexes the current contents of `table`. The table must be non-empty
  /// and must not be mutated while this generator is in use.
  explicit WorkloadGenerator(const Table& table);

  /// Generates `count` queries according to `spec`.
  std::vector<Query> Generate(const WorkloadSpec& spec, std::size_t count,
                              Rng* rng) const;

  /// Generates a single query.
  Query GenerateOne(const WorkloadSpec& spec, Rng* rng) const;

  /// The data bounding box queries are generated within.
  const Box& data_bounds() const { return bounds_; }

 private:
  std::vector<double> DrawCenter(const WorkloadSpec& spec, Rng* rng) const;
  /// Box around `center` with per-dimension half-extents
  /// `scale * shape[j]`.
  Box MakeBox(const std::vector<double>& center,
              const std::vector<double>& shape, double scale) const;

  const Table& table_;
  KdTreeCounter counter_;
  Box bounds_;
};

}  // namespace fkde

#endif  // FKDE_WORKLOAD_WORKLOAD_H_
