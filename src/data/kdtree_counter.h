/// \file kdtree_counter.h
/// \brief Static k-d tree for fast exact range counting.
///
/// Workload generation (binary search on query extent to hit a target
/// selectivity, workload/generator.cc) and truth computation in the
/// feedback loop issue many thousands of range-count queries against the
/// same table snapshot. A balanced k-d tree with subtree counts answers
/// COUNT(*) WHERE x IN box in sublinear time: fully-contained subtrees
/// contribute their size without descending.

#ifndef FKDE_DATA_KDTREE_COUNTER_H_
#define FKDE_DATA_KDTREE_COUNTER_H_

#include <cstddef>
#include <vector>

#include "data/box.h"
#include "data/table.h"

namespace fkde {

/// \brief Immutable range-count index over a table snapshot.
///
/// Build is O(n log n); Count is O(n^(1-1/d) + k) worst case and far
/// faster on clustered data. The index copies the points, so later table
/// mutations do not affect it — rebuild after bulk changes.
class KdTreeCounter {
 public:
  /// Builds the index over all current rows of `table`.
  explicit KdTreeCounter(const Table& table);

  /// Builds the index over an explicit row-major point array.
  KdTreeCounter(std::vector<double> points, std::size_t dims);

  std::size_t num_points() const { return count_; }
  std::size_t dims() const { return dims_; }

  /// Number of indexed points inside the closed box.
  std::size_t Count(const Box& box) const;

 private:
  struct Node {
    // Children at 2i+1 / 2i+2 (implicit heap layout is wasteful for
    // unbalanced trees, so we store explicit indexes).
    int left = -1;
    int right = -1;
    std::size_t begin = 0;   // Range of points_ covered by this subtree.
    std::size_t end = 0;
    std::size_t split_dim = 0;
    double split_value = 0.0;
    Box bounds;              // Tight bounding box of the subtree's points.
  };

  int Build(std::size_t begin, std::size_t end);
  void CountRec(int node, const Box& box, std::size_t* acc) const;
  Box ComputeBounds(std::size_t begin, std::size_t end) const;

  std::size_t dims_ = 0;
  std::size_t count_ = 0;
  std::vector<double> points_;  // Row-major, permuted during build.
  std::vector<Node> nodes_;
  int root_ = -1;
  static constexpr std::size_t kLeafSize = 32;
};

}  // namespace fkde

#endif  // FKDE_DATA_KDTREE_COUNTER_H_
