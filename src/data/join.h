/// \file join.h
/// \brief PK-FK join sampling — the paper's Section 8 future-work item.
///
/// "If the predicate is known beforehand — for instance in case of PK-FK
/// joins — [join selectivity estimation] can be done by building the
/// estimator based on a sample collected directly from the join result,
/// e.g. by using the sampling algorithms presented in [9]."
///
/// For a PK-FK equi-join R ⋈ S (R holds the primary key, S the foreign
/// key), every S row matches exactly one R row, so |R ⋈ S| = |S| and a
/// uniform sample of S rows joined to their R partners is a uniform
/// sample of the join result (Chaudhuri, Motwani & Narasayya, SIGMOD'99).
/// The sampled join rows feed a `DeviceSample`/`KdeEngine` exactly like a
/// base-table sample, giving KDE selectivity estimates over the join.

#ifndef FKDE_DATA_JOIN_H_
#define FKDE_DATA_JOIN_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/table.h"

namespace fkde {

/// \brief A PK-FK equi-join between two tables.
///
/// The joined row layout is [pk_attributes..., fk_attributes...] (key
/// columns are only included if listed explicitly).
struct JoinSpec {
  const Table* pk_table = nullptr;  ///< Relation holding the primary key.
  std::size_t pk_column = 0;        ///< Key column in pk_table (unique).
  const Table* fk_table = nullptr;  ///< Relation holding the foreign key.
  std::size_t fk_column = 0;        ///< Foreign-key column in fk_table.
  /// Attributes projected into the join result, per side.
  std::vector<std::size_t> pk_attributes;
  std::vector<std::size_t> fk_attributes;

  std::size_t result_dims() const {
    return pk_attributes.size() + fk_attributes.size();
  }
};

/// Validates a spec: non-null tables, in-range columns, unique PK values,
/// and every FK value having a PK partner (referential integrity).
Status ValidateJoinSpec(const JoinSpec& spec);

/// Draws a uniform sample of `sample_rows` join-result rows without
/// materializing the join: samples fk_table rows without replacement and
/// hash-joins each to its unique PK partner. Returns a table with
/// `spec.result_dims()` columns. The sample is exactly uniform over the
/// join result because the join is PK-FK (see file comment).
Result<Table> SampleJoin(const JoinSpec& spec, std::size_t sample_rows,
                         Rng* rng);

/// Materializes the full join result (|fk_table| rows). Intended for
/// truth computation in tests and examples, not production use.
Result<Table> MaterializeJoin(const JoinSpec& spec);

}  // namespace fkde

#endif  // FKDE_DATA_JOIN_H_
