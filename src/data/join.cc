#include "data/join.h"

#include <unordered_map>

namespace fkde {

namespace {

/// Hash index from PK value (exact double bits) to row index.
Result<std::unordered_map<double, std::size_t>> BuildPkIndex(
    const JoinSpec& spec) {
  std::unordered_map<double, std::size_t> index;
  index.reserve(spec.pk_table->num_rows());
  for (std::size_t i = 0; i < spec.pk_table->num_rows(); ++i) {
    const double key = spec.pk_table->At(i, spec.pk_column);
    if (!index.emplace(key, i).second) {
      return Status::InvalidArgument(
          "pk_column is not unique: duplicate key " + std::to_string(key));
    }
  }
  return index;
}

void EmitJoinedRow(const JoinSpec& spec, std::size_t pk_row,
                   std::size_t fk_row, std::vector<double>* out) {
  out->clear();
  for (std::size_t column : spec.pk_attributes) {
    out->push_back(spec.pk_table->At(pk_row, column));
  }
  for (std::size_t column : spec.fk_attributes) {
    out->push_back(spec.fk_table->At(fk_row, column));
  }
}

}  // namespace

Status ValidateJoinSpec(const JoinSpec& spec) {
  if (spec.pk_table == nullptr || spec.fk_table == nullptr) {
    return Status::InvalidArgument("join spec tables must be non-null");
  }
  if (spec.pk_column >= spec.pk_table->num_cols() ||
      spec.fk_column >= spec.fk_table->num_cols()) {
    return Status::OutOfRange("join key column out of range");
  }
  for (std::size_t column : spec.pk_attributes) {
    if (column >= spec.pk_table->num_cols()) {
      return Status::OutOfRange("pk attribute out of range");
    }
  }
  for (std::size_t column : spec.fk_attributes) {
    if (column >= spec.fk_table->num_cols()) {
      return Status::OutOfRange("fk attribute out of range");
    }
  }
  if (spec.result_dims() == 0) {
    return Status::InvalidArgument("join projects no attributes");
  }
  FKDE_ASSIGN_OR_RETURN(const auto index, BuildPkIndex(spec));
  for (std::size_t i = 0; i < spec.fk_table->num_rows(); ++i) {
    if (index.find(spec.fk_table->At(i, spec.fk_column)) == index.end()) {
      return Status::FailedPrecondition(
          "dangling foreign key in row " + std::to_string(i));
    }
  }
  return Status::OK();
}

Result<Table> SampleJoin(const JoinSpec& spec, std::size_t sample_rows,
                         Rng* rng) {
  FKDE_RETURN_NOT_OK(ValidateJoinSpec(spec));
  if (spec.fk_table->empty()) {
    return Status::FailedPrecondition("fk table is empty");
  }
  FKDE_ASSIGN_OR_RETURN(const auto index, BuildPkIndex(spec));

  Table out(spec.result_dims());
  const std::vector<std::size_t> fk_rows =
      spec.fk_table->SampleWithoutReplacement(sample_rows, rng);
  out.Reserve(fk_rows.size());
  std::vector<double> row;
  for (std::size_t fk_row : fk_rows) {
    const double key = spec.fk_table->At(fk_row, spec.fk_column);
    const std::size_t pk_row = index.at(key);
    EmitJoinedRow(spec, pk_row, fk_row, &row);
    out.Insert(row);
  }
  return out;
}

Result<Table> MaterializeJoin(const JoinSpec& spec) {
  FKDE_RETURN_NOT_OK(ValidateJoinSpec(spec));
  FKDE_ASSIGN_OR_RETURN(const auto index, BuildPkIndex(spec));
  Table out(spec.result_dims());
  out.Reserve(spec.fk_table->num_rows());
  std::vector<double> row;
  for (std::size_t i = 0; i < spec.fk_table->num_rows(); ++i) {
    const double key = spec.fk_table->At(i, spec.fk_column);
    EmitJoinedRow(spec, index.at(key), i, &row);
    out.Insert(row);
  }
  return out;
}

}  // namespace fkde
