/// \file generators.h
/// \brief Dataset generators for the evaluation.
///
/// The paper evaluates on four UCI datasets (Bike, Forest, Power, Protein)
/// plus the synthetic cluster dataset of Gunopulos et al. [14]. The UCI
/// files are not redistributable here, so per DESIGN.md §1 we generate
/// synthetic stand-ins that reproduce each dataset's discriminating
/// statistical structure (cardinality, dimensionality, correlation,
/// clusteredness, tail behaviour). The cluster dataset is generated exactly
/// as described in [14]: random hyper-rectangular clusters with uniform
/// interiors plus uniform background noise.
///
/// Like the paper, d-dimensional versions (d=3 and d=8 in the evaluation)
/// are produced by projecting the full dataset onto a random attribute
/// subset.

#ifndef FKDE_DATA_GENERATORS_H_
#define FKDE_DATA_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"

namespace fkde {

/// \brief Parameters of the Gunopulos et al. [14] synthetic generator.
struct ClusterBoxesParams {
  std::size_t rows = 1000000;
  std::size_t dims = 8;
  std::size_t num_clusters = 10;
  /// Fraction of rows drawn from the uniform background instead of a
  /// cluster.
  double noise_fraction = 0.1;
  /// Cluster side lengths are drawn uniformly from this range (relative to
  /// the unit domain).
  double min_side = 0.02;
  double max_side = 0.25;
};

/// Generates the [14] synthetic dataset: hyper-rectangular clusters with
/// uniform interior distribution plus uniform noise, on [0,1]^dims. Each
/// row is tagged with its cluster id (noise rows get tag = num_clusters),
/// which the Section 6.5 evolving workload uses for bulk deletes.
Table GenerateClusterBoxes(const ClusterBoxesParams& params,
                           std::uint64_t seed);

/// Bike-sharing stand-in: 16 attributes driven by time-of-day/season
/// latents (temperature, humidity, wind, casual/registered/total rides...),
/// strongly correlated and periodic. Default 17379 rows like the original.
Table GenerateBikeLike(std::size_t rows, std::uint64_t seed);

/// Forest-cover stand-in: 10 continuous attributes from a mixture of
/// terrain clusters (elevation, slope, aspect, hydrology/roads/fire
/// distances, hillshades), multi-modal and correlated.
Table GenerateForestLike(std::size_t rows, std::uint64_t seed);

/// Household-power stand-in: 9 attributes from an AR(1) process with a
/// daily cycle (active/reactive power, voltage, intensity, sub-meters),
/// heavy temporal autocorrelation and spiky sub-meter distributions.
Table GeneratePowerLike(std::size_t rows, std::uint64_t seed);

/// Protein-structure stand-in: 9 attributes driven by a low-rank latent
/// factor model with lognormal marginals (surface areas, energies, ...),
/// heavy-tailed and strongly correlated.
Table GenerateProteinLike(std::size_t rows, std::uint64_t seed);

/// Projects `table` onto `dims` randomly chosen distinct attributes
/// (seeded), mirroring the paper's construction of the 3D/8D versions.
/// Requires dims <= table.num_cols(). Tags are preserved.
Table ProjectRandomAttributes(const Table& table, std::size_t dims,
                              std::uint64_t seed);

/// Names understood by GenerateDataset: "synthetic", "bike", "forest",
/// "power", "protein".
std::vector<std::string> DatasetNames();

/// One-stop generator used by the benchmark harness: builds the named
/// dataset with `rows` rows and projects it to `dims` dimensions.
/// Returns InvalidArgument for unknown names or dims larger than the
/// dataset's native attribute count.
Result<Table> GenerateDataset(const std::string& name, std::size_t rows,
                              std::size_t dims, std::uint64_t seed);

}  // namespace fkde

#endif  // FKDE_DATA_GENERATORS_H_
