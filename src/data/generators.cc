#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace fkde {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}  // namespace

Table GenerateClusterBoxes(const ClusterBoxesParams& params,
                           std::uint64_t seed) {
  FKDE_CHECK(params.dims > 0 && params.num_clusters > 0);
  FKDE_CHECK(params.noise_fraction >= 0.0 && params.noise_fraction <= 1.0);
  Rng rng(seed);
  const std::size_t d = params.dims;

  // Place the cluster boxes inside the unit cube.
  std::vector<Box> clusters;
  clusters.reserve(params.num_clusters);
  for (std::size_t c = 0; c < params.num_clusters; ++c) {
    std::vector<double> lo(d), hi(d);
    for (std::size_t j = 0; j < d; ++j) {
      const double side = rng.Uniform(params.min_side, params.max_side);
      const double start = rng.Uniform(0.0, 1.0 - side);
      lo[j] = start;
      hi[j] = start + side;
    }
    clusters.emplace_back(std::move(lo), std::move(hi));
  }

  Table table(d);
  table.Reserve(params.rows);
  std::vector<double> row(d);
  for (std::size_t i = 0; i < params.rows; ++i) {
    if (rng.Bernoulli(params.noise_fraction)) {
      for (std::size_t j = 0; j < d; ++j) row[j] = rng.Uniform();
      table.Insert(row, static_cast<std::uint32_t>(params.num_clusters));
    } else {
      const std::size_t c = rng.UniformInt(params.num_clusters);
      const Box& box = clusters[c];
      for (std::size_t j = 0; j < d; ++j) {
        row[j] = rng.Uniform(box.lower(j), box.upper(j));
      }
      table.Insert(row, static_cast<std::uint32_t>(c));
    }
  }
  return table;
}

Table GenerateBikeLike(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  Table table(16);
  table.Reserve(rows);
  std::vector<double> r(16);
  for (std::size_t i = 0; i < rows; ++i) {
    const double t = static_cast<double>(i);          // Hour index.
    const double hour = std::fmod(t, 24.0);
    const double day = std::floor(t / 24.0);
    const double weekday = std::fmod(day, 7.0);
    const double season = std::sin(kTwoPi * t / 8766.0);   // Yearly cycle.
    const double diurnal = std::sin(kTwoPi * (hour - 6.0) / 24.0);
    const double temp = 15.0 + 12.0 * season + 4.0 * diurnal +
                        rng.Gaussian(0.0, 2.5);
    const double atemp = temp + rng.Gaussian(0.0, 1.5);
    const double humidity =
        std::clamp(62.0 - 0.9 * (temp - 15.0) + rng.Gaussian(0.0, 9.0), 5.0,
                   100.0);
    const double wind = std::abs(rng.Gaussian(11.0, 6.0));
    const double workday = (weekday < 5.0) ? 1.0 : 0.0;
    const double commute =
        std::exp(-0.5 * std::pow((hour - 8.0) / 1.5, 2.0)) +
        std::exp(-0.5 * std::pow((hour - 17.5) / 1.8, 2.0));
    const double leisure = std::exp(-0.5 * std::pow((hour - 14.0) / 3.0, 2.0));
    const double casual = std::max(
        0.0, 8.0 + 2.2 * temp * leisure * (1.4 - workday) - 0.15 * humidity -
                 0.4 * wind + rng.Gaussian(0.0, 12.0));
    const double registered = std::max(
        0.0, 20.0 + 140.0 * commute * workday + 1.8 * temp - 0.2 * humidity +
                 rng.Gaussian(0.0, 25.0));
    r[0] = hour + rng.Uniform(0.0, 1.0);                 // Jittered hour.
    r[1] = weekday + rng.Uniform(0.0, 1.0);
    r[2] = std::fmod(day / 30.44, 12.0) + rng.Uniform(0.0, 1.0);  // Month.
    r[3] = season + rng.Gaussian(0.0, 0.05);
    r[4] = workday + rng.Uniform(0.0, 0.1);
    r[5] = temp;
    r[6] = atemp;
    r[7] = humidity;
    r[8] = wind;
    r[9] = casual;
    r[10] = registered;
    r[11] = casual + registered + rng.Gaussian(0.0, 3.0);  // Total count.
    r[12] = diurnal + rng.Gaussian(0.0, 0.05);
    r[13] = commute + rng.Gaussian(0.0, 0.03);
    r[14] = temp * humidity / 100.0 + rng.Gaussian(0.0, 1.0);  // Heat index.
    r[15] = t / 24.0 + rng.Uniform(0.0, 0.04);           // Day number.
    table.Insert(r);
  }
  return table;
}

Table GenerateForestLike(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  // Terrain archetypes: (elevation mean, elevation sd, slope mean, weight).
  struct Terrain {
    double elev_mu, elev_sd, slope_mu;
    double weight;
  };
  const std::vector<Terrain> terrains = {
      {2600.0, 120.0, 8.0, 0.35},  {2950.0, 90.0, 14.0, 0.3},
      {3250.0, 140.0, 22.0, 0.2},  {2100.0, 180.0, 5.0, 0.1},
      {3500.0, 80.0, 30.0, 0.05},
  };
  std::vector<double> weights;
  for (const auto& t : terrains) weights.push_back(t.weight);

  Table table(10);
  table.Reserve(rows);
  std::vector<double> r(10);
  for (std::size_t i = 0; i < rows; ++i) {
    const Terrain& t = terrains[rng.Categorical(weights)];
    const double elev = rng.Gaussian(t.elev_mu, t.elev_sd);
    const double slope = std::abs(rng.Gaussian(t.slope_mu, 5.0));
    const double aspect = rng.Uniform(0.0, 360.0);
    // Hydrology is closer at low elevations; roads cluster in valleys.
    const double hydro_h =
        std::abs(rng.Gaussian(0.08 * (elev - 1800.0), 60.0));
    const double hydro_v = hydro_h * rng.Uniform(0.05, 0.35) *
                           ((rng.Bernoulli(0.8)) ? 1.0 : -1.0);
    const double road = rng.Exponential(1.0 / (800.0 + 1.2 * (elev - 2000.0)));
    const double fire = rng.Exponential(1.0 / 1400.0) + 0.2 * road;
    // Hillshade values depend on aspect and slope (morning vs afternoon).
    const double aspect_rad = aspect * kTwoPi / 360.0;
    const double shade9 =
        std::clamp(220.0 + 30.0 * std::cos(aspect_rad - 0.8) -
                       1.2 * slope + rng.Gaussian(0.0, 8.0),
                   0.0, 254.0);
    const double shade12 = std::clamp(
        235.0 - 0.9 * slope + rng.Gaussian(0.0, 6.0), 0.0, 254.0);
    const double shade15 =
        std::clamp(210.0 - 30.0 * std::cos(aspect_rad - 0.8) -
                       1.1 * slope + rng.Gaussian(0.0, 8.0),
                   0.0, 254.0);
    r[0] = elev;
    r[1] = aspect;
    r[2] = slope;
    r[3] = hydro_h;
    r[4] = hydro_v;
    r[5] = road;
    r[6] = shade9;
    r[7] = shade12;
    r[8] = shade15;
    r[9] = fire;
    table.Insert(r);
  }
  return table;
}

Table GeneratePowerLike(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  Table table(9);
  table.Reserve(rows);
  std::vector<double> r(9);
  double ar = 0.0;  // AR(1) state for the active-power baseline.
  for (std::size_t i = 0; i < rows; ++i) {
    const double minute = static_cast<double>(i);
    const double tod = std::fmod(minute, 1440.0);  // Minute of day.
    ar = 0.97 * ar + rng.Gaussian(0.0, 0.12);
    const double daily = 0.9 + 0.7 * std::sin(kTwoPi * (tod - 420.0) / 1440.0);
    const double active = std::max(0.05, daily + ar + rng.Gaussian(0.0, 0.1));
    const double reactive =
        std::max(0.0, 0.12 * active + rng.Gaussian(0.05, 0.04));
    const double voltage = 241.0 - 1.8 * active + rng.Gaussian(0.0, 1.2);
    const double intensity = active * 1000.0 / voltage + rng.Gaussian(0.0, 0.2);
    // Sub-meters: kitchen (spiky), laundry (occasional), heater (evening).
    const double sub1 =
        rng.Bernoulli(0.12) ? rng.Uniform(20.0, 40.0) : rng.Uniform(0.0, 1.5);
    const double sub2 =
        rng.Bernoulli(0.06) ? rng.Uniform(15.0, 35.0) : rng.Uniform(0.0, 2.0);
    const double evening =
        std::exp(-0.5 * std::pow((tod - 1230.0) / 150.0, 2.0));
    const double sub3 =
        std::max(0.0, 17.0 * evening * active / 2.0 + rng.Gaussian(0.0, 2.0));
    r[0] = active;
    r[1] = reactive;
    r[2] = voltage;
    r[3] = intensity;
    r[4] = sub1;
    r[5] = sub2;
    r[6] = sub3;
    r[7] = tod + rng.Uniform(0.0, 1.0);
    r[8] = minute / 1440.0 + rng.Uniform(0.0, 0.01);  // Day number.
    table.Insert(r);
  }
  return table;
}

Table GenerateProteinLike(std::size_t rows, std::uint64_t seed) {
  Rng rng(seed);
  Table table(9);
  table.Reserve(rows);
  std::vector<double> r(9);
  for (std::size_t i = 0; i < rows; ++i) {
    // Two latent factors: protein size and packing quality.
    const double size = std::exp(rng.Gaussian(5.0, 0.5));       // Residues.
    const double quality = rng.Gaussian(0.0, 1.0);
    const double area_total = size * rng.Uniform(28.0, 36.0);   // F1.
    const double area_exposed =
        area_total * std::clamp(0.45 - 0.05 * quality +
                                    rng.Gaussian(0.0, 0.04),
                                0.1, 0.9);                      // F2-ish.
    const double frac_exposed = area_exposed / area_total;
    const double energy = -0.9 * size * (1.0 + 0.12 * quality) +
                          rng.Gaussian(0.0, 25.0);              // F5-ish.
    const double spatial = std::exp(rng.Gaussian(2.2, 0.35)) +
                           0.002 * size;                        // F4-ish.
    const double contacts = size * rng.Uniform(3.4, 4.2) +
                            40.0 * quality;                     // F6-ish.
    const double sec_struct =
        std::clamp(0.55 + 0.1 * quality + rng.Gaussian(0.0, 0.08), 0.0, 1.0);
    const double rmsd =
        std::abs(rng.Gaussian(5.0 - 1.8 * quality, 1.6));       // Target.
    r[0] = rmsd;
    r[1] = area_total;
    r[2] = area_exposed;
    r[3] = frac_exposed;
    r[4] = spatial;
    r[5] = energy;
    r[6] = contacts;
    r[7] = sec_struct;
    r[8] = size;
    table.Insert(r);
  }
  return table;
}

Table ProjectRandomAttributes(const Table& table, std::size_t dims,
                              std::uint64_t seed) {
  FKDE_CHECK_MSG(dims <= table.num_cols(),
                 "cannot project to more dims than the table has");
  Rng rng(seed);
  std::vector<std::size_t> cols(table.num_cols());
  std::iota(cols.begin(), cols.end(), 0);
  rng.Shuffle(cols);
  cols.resize(dims);
  std::sort(cols.begin(), cols.end());

  Table out(dims);
  out.Reserve(table.num_rows());
  std::vector<double> row(dims);
  for (std::size_t i = 0; i < table.num_rows(); ++i) {
    for (std::size_t j = 0; j < dims; ++j) row[j] = table.At(i, cols[j]);
    out.Insert(row, table.Tag(i));
  }
  return out;
}

std::vector<std::string> DatasetNames() {
  return {"synthetic", "bike", "forest", "power", "protein"};
}

Result<Table> GenerateDataset(const std::string& name, std::size_t rows,
                              std::size_t dims, std::uint64_t seed) {
  if (rows == 0 || dims == 0) {
    return Status::InvalidArgument("rows and dims must be positive");
  }
  if (name == "synthetic") {
    ClusterBoxesParams params;
    params.rows = rows;
    params.dims = dims;
    return GenerateClusterBoxes(params, seed);
  }
  Table full = [&]() -> Table {
    if (name == "bike") return GenerateBikeLike(rows, seed);
    if (name == "forest") return GenerateForestLike(rows, seed);
    if (name == "power") return GeneratePowerLike(rows, seed);
    if (name == "protein") return GenerateProteinLike(rows, seed);
    return Table(1);
  }();
  if (full.num_cols() == 1) {
    return Status::InvalidArgument("unknown dataset name: " + name);
  }
  if (dims > full.num_cols()) {
    return Status::InvalidArgument("dataset " + name + " has only " +
                                   std::to_string(full.num_cols()) +
                                   " attributes");
  }
  if (dims == full.num_cols()) return full;
  return ProjectRandomAttributes(full, dims, seed ^ 0xABCDEF12345ULL);
}

}  // namespace fkde
