#include "data/kdtree_counter.h"

#include <algorithm>
#include <numeric>

namespace fkde {

KdTreeCounter::KdTreeCounter(const Table& table)
    : KdTreeCounter(
          std::vector<double>(table.raw().begin(), table.raw().end()),
          table.num_cols()) {}

KdTreeCounter::KdTreeCounter(std::vector<double> points, std::size_t dims)
    : dims_(dims), points_(std::move(points)) {
  FKDE_CHECK(dims_ > 0);
  FKDE_CHECK(points_.size() % dims_ == 0);
  count_ = points_.size() / dims_;
  if (count_ > 0) {
    nodes_.reserve(2 * count_ / kLeafSize + 2);
    root_ = Build(0, count_);
  }
}

Box KdTreeCounter::ComputeBounds(std::size_t begin, std::size_t end) const {
  std::vector<double> lo(dims_), hi(dims_);
  for (std::size_t c = 0; c < dims_; ++c) {
    lo[c] = hi[c] = points_[begin * dims_ + c];
  }
  for (std::size_t i = begin + 1; i < end; ++i) {
    for (std::size_t c = 0; c < dims_; ++c) {
      const double v = points_[i * dims_ + c];
      lo[c] = std::min(lo[c], v);
      hi[c] = std::max(hi[c], v);
    }
  }
  return Box(std::move(lo), std::move(hi));
}

int KdTreeCounter::Build(std::size_t begin, std::size_t end) {
  Node node;
  node.begin = begin;
  node.end = end;
  node.bounds = ComputeBounds(begin, end);
  const int index = static_cast<int>(nodes_.size());
  nodes_.push_back(node);

  if (end - begin <= kLeafSize) return index;

  // Split on the widest dimension at the median.
  std::size_t split_dim = 0;
  double widest = -1.0;
  for (std::size_t c = 0; c < dims_; ++c) {
    const double extent = nodes_[index].bounds.Extent(c);
    if (extent > widest) {
      widest = extent;
      split_dim = c;
    }
  }
  if (widest <= 0.0) return index;  // All points identical: keep as leaf.

  const std::size_t mid = (begin + end) / 2;
  // nth_element over row indexes would need an indirection layer; instead
  // we sort rows in place by swapping whole rows via an index permutation.
  std::vector<std::size_t> order(end - begin);
  std::iota(order.begin(), order.end(), begin);
  std::nth_element(order.begin(), order.begin() + (mid - begin), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return points_[a * dims_ + split_dim] <
                            points_[b * dims_ + split_dim];
                   });
  // Materialize the permutation.
  std::vector<double> scratch((end - begin) * dims_);
  for (std::size_t i = 0; i < order.size(); ++i) {
    std::copy(points_.begin() + order[i] * dims_,
              points_.begin() + (order[i] + 1) * dims_,
              scratch.begin() + i * dims_);
  }
  std::copy(scratch.begin(), scratch.end(), points_.begin() + begin * dims_);

  nodes_[index].split_dim = split_dim;
  nodes_[index].split_value = points_[mid * dims_ + split_dim];
  const int left = Build(begin, mid);
  const int right = Build(mid, end);
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

void KdTreeCounter::CountRec(int node_index, const Box& box,
                             std::size_t* acc) const {
  const Node& node = nodes_[node_index];
  if (!box.Intersects(node.bounds)) return;
  if (box.ContainsBox(node.bounds)) {
    *acc += node.end - node.begin;
    return;
  }
  if (node.left < 0) {  // Leaf: scan.
    for (std::size_t i = node.begin; i < node.end; ++i) {
      if (box.Contains({points_.data() + i * dims_, dims_})) ++*acc;
    }
    return;
  }
  CountRec(node.left, box, acc);
  CountRec(node.right, box, acc);
}

std::size_t KdTreeCounter::Count(const Box& box) const {
  FKDE_CHECK(box.dims() == dims_);
  if (root_ < 0) return 0;
  std::size_t acc = 0;
  CountRec(root_, box, &acc);
  return acc;
}

}  // namespace fkde
