#include "data/box.h"

#include <cstdio>

namespace fkde {

Box Box::ScaledAboutCenter(double factor) const {
  FKDE_CHECK(factor >= 0.0);
  std::vector<double> lo(dims()), hi(dims());
  for (std::size_t i = 0; i < dims(); ++i) {
    const double c = Center(i);
    const double half = 0.5 * Extent(i) * factor;
    lo[i] = c - half;
    hi[i] = c + half;
  }
  return Box(std::move(lo), std::move(hi));
}

std::string Box::ToString() const {
  std::string out;
  char buf[80];
  for (std::size_t i = 0; i < dims(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s[%g,%g]", i == 0 ? "" : "x", lower_[i],
                  upper_[i]);
    out += buf;
  }
  return out;
}

}  // namespace fkde
