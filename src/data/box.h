/// \file box.h
/// \brief Axis-aligned hyper-rectangles — the query regions of the paper.
///
/// A range query Omega = (l_1,u_1) x ... x (l_d,u_d) over d real-valued
/// attributes (paper Section 2.1). Bounds are treated as a closed box for
/// point-containment; with continuous data the boundary has measure zero,
/// so closed-vs-open does not affect selectivities.

#ifndef FKDE_DATA_BOX_H_
#define FKDE_DATA_BOX_H_

#include <algorithm>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/logging.h"

namespace fkde {

/// \brief Axis-aligned box in R^d, stored as parallel lower/upper arrays.
class Box {
 public:
  Box() = default;

  /// Creates a box with the given per-dimension bounds. Requires
  /// lower.size() == upper.size() and lower[i] <= upper[i].
  Box(std::vector<double> lower, std::vector<double> upper)
      : lower_(std::move(lower)), upper_(std::move(upper)) {
    FKDE_CHECK(lower_.size() == upper_.size());
    for (std::size_t i = 0; i < lower_.size(); ++i) {
      FKDE_CHECK_MSG(lower_[i] <= upper_[i], "box with inverted bounds");
    }
  }

  /// Creates the degenerate box containing exactly `point`.
  static Box FromPoint(std::span<const double> point) {
    std::vector<double> p(point.begin(), point.end());
    return Box(p, p);
  }

  std::size_t dims() const { return lower_.size(); }

  double lower(std::size_t i) const { return lower_[i]; }
  double upper(std::size_t i) const { return upper_[i]; }
  const std::vector<double>& lower_bounds() const { return lower_; }
  const std::vector<double>& upper_bounds() const { return upper_; }

  /// Side length along dimension i.
  double Extent(std::size_t i) const { return upper_[i] - lower_[i]; }

  /// Product of side lengths.
  double Volume() const {
    double v = 1.0;
    for (std::size_t i = 0; i < dims(); ++i) v *= Extent(i);
    return v;
  }

  /// Center of the box along dimension i.
  double Center(std::size_t i) const { return 0.5 * (lower_[i] + upper_[i]); }

  /// True iff `point` lies inside the closed box.
  bool Contains(std::span<const double> point) const {
    FKDE_DCHECK(point.size() == dims());
    for (std::size_t i = 0; i < dims(); ++i) {
      if (point[i] < lower_[i] || point[i] > upper_[i]) return false;
    }
    return true;
  }

  /// True iff `other` lies entirely inside this (closed) box.
  bool ContainsBox(const Box& other) const {
    FKDE_DCHECK(other.dims() == dims());
    for (std::size_t i = 0; i < dims(); ++i) {
      if (other.lower_[i] < lower_[i] || other.upper_[i] > upper_[i]) {
        return false;
      }
    }
    return true;
  }

  /// True iff this box and `other` share any volume (closed intersection).
  bool Intersects(const Box& other) const {
    FKDE_DCHECK(other.dims() == dims());
    for (std::size_t i = 0; i < dims(); ++i) {
      if (other.upper_[i] < lower_[i] || other.lower_[i] > upper_[i]) {
        return false;
      }
    }
    return true;
  }

  /// Intersection of two overlapping boxes. Requires Intersects(other).
  Box Intersection(const Box& other) const {
    FKDE_DCHECK(Intersects(other));
    std::vector<double> lo(dims()), hi(dims());
    for (std::size_t i = 0; i < dims(); ++i) {
      lo[i] = std::max(lower_[i], other.lower_[i]);
      hi[i] = std::min(upper_[i], other.upper_[i]);
    }
    return Box(std::move(lo), std::move(hi));
  }

  /// Smallest box containing both this box and `other`.
  Box Union(const Box& other) const {
    FKDE_DCHECK(other.dims() == dims());
    std::vector<double> lo(dims()), hi(dims());
    for (std::size_t i = 0; i < dims(); ++i) {
      lo[i] = std::min(lower_[i], other.lower_[i]);
      hi[i] = std::max(upper_[i], other.upper_[i]);
    }
    return Box(std::move(lo), std::move(hi));
  }

  /// Grows the box (in place) to contain `point`.
  void ExpandToContain(std::span<const double> point) {
    FKDE_DCHECK(point.size() == dims());
    for (std::size_t i = 0; i < dims(); ++i) {
      lower_[i] = std::min(lower_[i], point[i]);
      upper_[i] = std::max(upper_[i], point[i]);
    }
  }

  /// Returns the box scaled about its center by `factor` per dimension.
  Box ScaledAboutCenter(double factor) const;

  /// "[l1,u1]x[l2,u2]x..." for debugging.
  std::string ToString() const;

  bool operator==(const Box& other) const {
    return lower_ == other.lower_ && upper_ == other.upper_;
  }

 private:
  std::vector<double> lower_;
  std::vector<double> upper_;
};

}  // namespace fkde

#endif  // FKDE_DATA_BOX_H_
