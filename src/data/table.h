/// \file table.h
/// \brief Minimal in-memory relation with insert/delete/update support.
///
/// This is the "database" side of the reproduction: the paper integrates
/// its estimator into Postgres, but only ever interacts with the engine
/// through (a) drawing random samples, (b) receiving notification of
/// inserts/deletes/updates, and (c) exact selectivities coming back as
/// query feedback. `Table` (here) plus `Executor` (runtime/executor.h)
/// provide exactly those interfaces.

#ifndef FKDE_DATA_TABLE_H_
#define FKDE_DATA_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/box.h"

namespace fkde {

/// \brief Row-major table of real-valued attributes.
///
/// Rows carry an optional user tag (e.g. a cluster id in the Section 6.5
/// evolving-data workload) that predicated deletes can target. Deletion
/// compacts by swapping with the last row, so row indexes are not stable
/// across deletes; random sampling only needs uniformity, not stability.
class Table {
 public:
  /// Creates an empty table with `num_cols` attributes.
  explicit Table(std::size_t num_cols) : num_cols_(num_cols) {
    FKDE_CHECK(num_cols > 0);
  }

  std::size_t num_cols() const { return num_cols_; }
  std::size_t num_rows() const { return tags_.size(); }
  bool empty() const { return tags_.empty(); }

  /// Appends a row. `row.size()` must equal num_cols().
  void Insert(std::span<const double> row, std::uint32_t tag = 0);

  /// Reserves storage for `n` rows.
  void Reserve(std::size_t n) {
    data_.reserve(n * num_cols_);
    tags_.reserve(n);
  }

  /// Returns row `i` as a span over `num_cols()` doubles.
  std::span<const double> Row(std::size_t i) const {
    FKDE_DCHECK(i < num_rows());
    return {data_.data() + i * num_cols_, num_cols_};
  }

  /// Value of attribute `col` in row `i`.
  double At(std::size_t i, std::size_t col) const {
    FKDE_DCHECK(i < num_rows() && col < num_cols_);
    return data_[i * num_cols_ + col];
  }

  std::uint32_t Tag(std::size_t i) const {
    FKDE_DCHECK(i < num_rows());
    return tags_[i];
  }

  /// Overwrites row `i` in place (an UPDATE).
  void Update(std::size_t i, std::span<const double> row);

  /// Deletes row `i` by swapping with the last row and popping.
  void Delete(std::size_t i);

  /// Deletes every row whose tag equals `tag`; returns the count removed.
  std::size_t DeleteByTag(std::uint32_t tag);

  /// Number of rows inside the (inclusive) box — the true selectivity
  /// numerator. O(rows * dims); use KdTreeCounter for repeated counting.
  std::size_t CountInBox(const Box& box) const;

  /// Draws one uniform random row index. Table must be non-empty.
  std::size_t RandomRowIndex(Rng* rng) const {
    FKDE_CHECK(!empty());
    return rng->UniformInt(static_cast<std::uint64_t>(num_rows()));
  }

  /// Draws a uniform sample of `k` rows without replacement
  /// (k > num_rows() returns all rows in random order).
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t k,
                                                    Rng* rng) const;

  /// Per-attribute minimum/maximum over current rows. Table must be
  /// non-empty.
  Box Bounds() const;

  /// Direct read-only access to the row-major payload (rows*cols doubles).
  std::span<const double> raw() const { return data_; }

 private:
  std::size_t num_cols_;
  std::vector<double> data_;       // row-major, num_rows * num_cols
  std::vector<std::uint32_t> tags_;
};

}  // namespace fkde

#endif  // FKDE_DATA_TABLE_H_
