#include "data/table.h"

#include <algorithm>

namespace fkde {

void Table::Insert(std::span<const double> row, std::uint32_t tag) {
  FKDE_CHECK_MSG(row.size() == num_cols_, "row arity mismatch");
  data_.insert(data_.end(), row.begin(), row.end());
  tags_.push_back(tag);
}

void Table::Update(std::size_t i, std::span<const double> row) {
  FKDE_CHECK(i < num_rows());
  FKDE_CHECK_MSG(row.size() == num_cols_, "row arity mismatch");
  std::copy(row.begin(), row.end(), data_.begin() + i * num_cols_);
}

void Table::Delete(std::size_t i) {
  FKDE_CHECK(i < num_rows());
  const std::size_t last = num_rows() - 1;
  if (i != last) {
    std::copy(data_.begin() + last * num_cols_,
              data_.begin() + (last + 1) * num_cols_,
              data_.begin() + i * num_cols_);
    tags_[i] = tags_[last];
  }
  data_.resize(last * num_cols_);
  tags_.pop_back();
}

std::size_t Table::DeleteByTag(std::uint32_t tag) {
  std::size_t removed = 0;
  std::size_t i = 0;
  while (i < num_rows()) {
    if (tags_[i] == tag) {
      Delete(i);  // Swaps the last row into slot i; re-examine slot i.
      ++removed;
    } else {
      ++i;
    }
  }
  return removed;
}

std::size_t Table::CountInBox(const Box& box) const {
  FKDE_CHECK(box.dims() == num_cols_);
  std::size_t count = 0;
  for (std::size_t i = 0; i < num_rows(); ++i) {
    if (box.Contains(Row(i))) ++count;
  }
  return count;
}

std::vector<std::size_t> Table::SampleWithoutReplacement(std::size_t k,
                                                         Rng* rng) const {
  const std::size_t n = num_rows();
  k = std::min(k, n);
  // Floyd's algorithm would avoid the O(n) shuffle, but reservoir-style
  // selection keeps the draw order uniform as well, which sample
  // construction relies on.
  std::vector<std::size_t> reservoir;
  reservoir.reserve(k);
  for (std::size_t i = 0; i < n; ++i) {
    if (reservoir.size() < k) {
      reservoir.push_back(i);
    } else {
      const std::size_t j = rng->UniformInt(static_cast<std::uint64_t>(i + 1));
      if (j < k) reservoir[j] = i;
    }
  }
  rng->Shuffle(reservoir);
  return reservoir;
}

Box Table::Bounds() const {
  FKDE_CHECK(!empty());
  std::vector<double> lo(num_cols_), hi(num_cols_);
  for (std::size_t c = 0; c < num_cols_; ++c) lo[c] = hi[c] = At(0, c);
  for (std::size_t i = 1; i < num_rows(); ++i) {
    for (std::size_t c = 0; c < num_cols_; ++c) {
      const double v = At(i, c);
      lo[c] = std::min(lo[c], v);
      hi[c] = std::max(hi[c], v);
    }
  }
  return Box(std::move(lo), std::move(hi));
}

}  // namespace fkde
