#include "histogram/genhist.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace fkde {

namespace {

double IntersectionVolume(const Box& a, const Box& b) {
  double volume = 1.0;
  for (std::size_t j = 0; j < a.dims(); ++j) {
    const double lo = std::max(a.lower(j), b.lower(j));
    const double hi = std::min(a.upper(j), b.upper(j));
    if (hi <= lo) return 0.0;
    volume *= hi - lo;
  }
  return volume;
}

}  // namespace

Result<GenHist> GenHist::Build(const Table& table,
                               const GenHistOptions& options) {
  if (table.empty()) {
    return Status::FailedPrecondition("cannot build GenHist on empty data");
  }
  if (options.max_buckets < 2) {
    return Status::InvalidArgument("max_buckets must be at least 2");
  }
  if (options.initial_resolution < 2) {
    return Status::InvalidArgument("initial_resolution must be >= 2");
  }
  if (options.resolution_decay <= 0.0 || options.resolution_decay >= 1.0) {
    return Status::InvalidArgument("resolution_decay must be in (0, 1)");
  }
  if (options.density_threshold <= 1.0) {
    return Status::InvalidArgument("density_threshold must exceed 1");
  }

  GenHist hist;
  hist.dims_ = table.num_cols();
  hist.total_rows_ = table.num_rows();
  const std::size_t d = hist.dims_;
  Box bounds = table.Bounds();
  // Pad degenerate (constant) dimensions so cell volumes stay positive.
  {
    std::vector<double> lo = bounds.lower_bounds();
    std::vector<double> hi = bounds.upper_bounds();
    for (std::size_t j = 0; j < d; ++j) {
      if (hi[j] <= lo[j]) {
        const double pad = std::max(std::abs(lo[j]), 1.0) * 1e-9;
        lo[j] -= pad;
        hi[j] += pad;
      }
    }
    bounds = Box(std::move(lo), std::move(hi));
  }

  // Working copy of all points (row-major) that buckets progressively
  // absorb.
  std::vector<double> live(table.raw().begin(), table.raw().end());
  std::size_t live_count = table.num_rows();
  Rng rng(options.seed);

  auto cell_of = [&](const double* point, std::size_t resolution) {
    std::size_t id = 0;
    for (std::size_t j = 0; j < d; ++j) {
      const double w = bounds.Extent(j) / static_cast<double>(resolution);
      std::size_t c = w > 0.0 ? static_cast<std::size_t>(
                                    (point[j] - bounds.lower(j)) / w)
                              : 0;
      c = std::min(c, resolution - 1);
      id = id * resolution + c;
    }
    return id;
  };
  auto cell_box = [&](std::size_t id, std::size_t resolution) {
    std::vector<double> lo(d), hi(d);
    for (std::size_t j = d; j-- > 0;) {
      const std::size_t c = id % resolution;
      id /= resolution;
      const double w = bounds.Extent(j) / static_cast<double>(resolution);
      lo[j] = bounds.lower(j) + static_cast<double>(c) * w;
      hi[j] = lo[j] + w;
    }
    return Box(std::move(lo), std::move(hi));
  };
  auto remove_point = [&](std::size_t index) {
    // Swap-delete from the live set.
    --live_count;
    for (std::size_t j = 0; j < d; ++j) {
      live[index * d + j] = live[live_count * d + j];
    }
  };

  // Reserve one slot for the catch-all residual bucket so total mass is
  // always conserved.
  const std::size_t bucket_budget = options.max_buckets - 1;
  double resolution_f = static_cast<double>(options.initial_resolution);
  // Cap the finest grid so cell ids fit in size_t (resolution^d).
  while (std::pow(resolution_f, static_cast<double>(d)) > 1e16) {
    resolution_f *= options.resolution_decay;
  }

  while (resolution_f >= 2.0 && live_count > 0 &&
         hist.buckets_.size() < bucket_budget) {
    const std::size_t resolution = static_cast<std::size_t>(resolution_f);
    // Bucket points by cell.
    std::unordered_map<std::size_t, std::vector<std::size_t>> cells;
    cells.reserve(live_count / 4 + 1);
    for (std::size_t i = 0; i < live_count; ++i) {
      cells[cell_of(live.data() + i * d, resolution)].push_back(i);
    }
    const double average =
        static_cast<double>(live_count) / static_cast<double>(cells.size());

    // Dense cells first, by count.
    std::vector<std::pair<std::size_t, std::size_t>> dense;  // (count, id)
    for (const auto& [id, members] : cells) {
      if (static_cast<double>(members.size()) >
          options.density_threshold * average) {
        dense.emplace_back(members.size(), id);
      }
    }
    std::sort(dense.rbegin(), dense.rend());

    // Convert dense cells into buckets holding their excess mass; the
    // absorbed tuples leave the working set so coarser levels see the
    // smoothed residual. Removals invalidate `cells` indices, so collect
    // candidate members first.
    for (const auto& [count, id] : dense) {
      if (hist.buckets_.size() >= bucket_budget) break;
      const std::size_t excess = count - static_cast<std::size_t>(average);
      if (excess == 0) continue;
      // Remove up to `excess` random members that still map to this cell
      // (the live set shifts under swap-deletes, so scan with a wrapping
      // cursor and a random start to avoid positional bias); the bucket's
      // frequency is exactly the mass actually absorbed, so the total
      // mass across buckets + residual is conserved.
      std::size_t removed = 0;
      std::size_t scanned = 0;
      std::size_t cursor =
          live_count > 0 ? rng.UniformInt(live_count) : 0;
      while (removed < excess && scanned <= live_count && live_count > 0) {
        if (cursor >= live_count) cursor = 0;
        if (cell_of(live.data() + cursor * d, resolution) == id) {
          remove_point(cursor);
          ++removed;
          scanned = 0;  // The swapped-in point is re-examined in place.
        } else {
          ++cursor;
          ++scanned;
        }
      }
      if (removed > 0) {
        hist.buckets_.push_back(
            {cell_box(id, resolution), static_cast<double>(removed)});
      }
    }
    resolution_f *= options.resolution_decay;
  }

  // Residual mass: a single catch-all bucket over the whole domain (the
  // uniform background assumption of the coarsest level).
  if (live_count > 0) {
    hist.buckets_.push_back({bounds, static_cast<double>(live_count)});
  }
  return hist;
}

double GenHist::EstimateSelectivity(const Box& box) {
  FKDE_CHECK(box.dims() == dims_);
  if (total_rows_ == 0) return 0.0;
  double tuples = 0.0;
  for (const Bucket& bucket : buckets_) {
    const double volume = bucket.box.Volume();
    if (volume <= 0.0) {
      // Degenerate bucket: counts iff its (point-like) box is inside.
      std::vector<double> center(dims_);
      for (std::size_t j = 0; j < dims_; ++j) center[j] = bucket.box.Center(j);
      if (box.Contains(center)) tuples += bucket.frequency;
      continue;
    }
    tuples += bucket.frequency * IntersectionVolume(bucket.box, box) / volume;
  }
  return std::clamp(tuples / static_cast<double>(total_rows_), 0.0, 1.0);
}

double GenHist::TotalFrequency() const {
  double total = 0.0;
  for (const Bucket& bucket : buckets_) total += bucket.frequency;
  return total;
}

std::size_t GenHist::ModelBytes() const {
  return buckets_.size() * 4 * (2 * dims_ + 1);
}

}  // namespace fkde
