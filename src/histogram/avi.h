/// \file avi.h
/// \brief Attribute-value-independence baseline estimator.
///
/// The classical approach the paper's introduction argues against: keep
/// one equi-depth histogram per attribute and multiply the d
/// one-dimensional selectivities, assuming attribute independence
/// (Section 2.2). Included as the sanity baseline that motivates
/// multidimensional estimators: it is tiny and fast but collapses on
/// correlated data.

#ifndef FKDE_HISTOGRAM_AVI_H_
#define FKDE_HISTOGRAM_AVI_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/table.h"
#include "estimator/estimator.h"

namespace fkde {

/// \brief Per-attribute equi-depth histograms under the AVI assumption.
class AviHistogram : public SelectivityEstimator {
 public:
  /// Builds equi-depth histograms with `buckets_per_dim` buckets over the
  /// current contents of `table`.
  static Result<AviHistogram> Build(const Table& table,
                                    std::size_t buckets_per_dim);

  std::string name() const override { return "avi"; }
  std::size_t dims() const override { return histograms_.size(); }
  double EstimateSelectivity(const Box& box) override;
  std::size_t ModelBytes() const override;

  /// One-dimensional selectivity of [lo, hi] on attribute `dim`.
  double MarginalSelectivity(std::size_t dim, double lo, double hi) const;

 private:
  struct Marginal {
    /// bucket i covers [edges[i], edges[i+1]); equi-depth construction
    /// gives each bucket ~1/buckets of the rows.
    std::vector<double> edges;
    std::vector<double> fractions;  ///< Row fraction per bucket.
  };

  AviHistogram() = default;

  std::vector<Marginal> histograms_;
};

}  // namespace fkde

#endif  // FKDE_HISTOGRAM_AVI_H_
