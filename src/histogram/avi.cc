#include "histogram/avi.h"

#include <algorithm>
#include <cmath>

namespace fkde {

Result<AviHistogram> AviHistogram::Build(const Table& table,
                                         std::size_t buckets_per_dim) {
  if (table.empty()) {
    return Status::FailedPrecondition("cannot build AVI on an empty table");
  }
  if (buckets_per_dim == 0) {
    return Status::InvalidArgument("buckets_per_dim must be positive");
  }
  AviHistogram avi;
  const std::size_t n = table.num_rows();
  const std::size_t d = table.num_cols();
  avi.histograms_.resize(d);
  std::vector<double> column(n);
  for (std::size_t c = 0; c < d; ++c) {
    for (std::size_t i = 0; i < n; ++i) column[i] = table.At(i, c);
    std::sort(column.begin(), column.end());

    Marginal& marginal = avi.histograms_[c];
    const std::size_t buckets = std::min(buckets_per_dim, n);
    marginal.edges.reserve(buckets + 1);
    marginal.fractions.reserve(buckets);
    marginal.edges.push_back(column.front());
    std::size_t start = 0;
    for (std::size_t b = 1; b <= buckets; ++b) {
      std::size_t end = (n * b) / buckets;
      if (b == buckets) end = n;
      if (end <= start) continue;
      // Extend the bucket so equal values never straddle an edge.
      while (end < n && column[end] == column[end - 1]) ++end;
      marginal.edges.push_back(column[end - 1]);
      marginal.fractions.push_back(static_cast<double>(end - start) /
                                   static_cast<double>(n));
      start = end;
      if (end == n) break;
    }
  }
  return avi;
}

double AviHistogram::MarginalSelectivity(std::size_t dim, double lo,
                                         double hi) const {
  const Marginal& marginal = histograms_[dim];
  if (marginal.fractions.empty() || hi < lo) return 0.0;
  double fraction = 0.0;
  for (std::size_t b = 0; b < marginal.fractions.size(); ++b) {
    const double b_lo = marginal.edges[b];
    const double b_hi = marginal.edges[b + 1];
    const double overlap_lo = std::max(lo, b_lo);
    const double overlap_hi = std::min(hi, b_hi);
    if (overlap_hi < overlap_lo) continue;
    const double width = b_hi - b_lo;
    const double share =
        width > 0.0 ? (overlap_hi - overlap_lo) / width : 1.0;
    fraction += marginal.fractions[b] * std::min(share, 1.0);
  }
  return std::clamp(fraction, 0.0, 1.0);
}

double AviHistogram::EstimateSelectivity(const Box& box) {
  FKDE_CHECK(box.dims() == dims());
  double selectivity = 1.0;
  for (std::size_t c = 0; c < dims(); ++c) {
    selectivity *= MarginalSelectivity(c, box.lower(c), box.upper(c));
    if (selectivity == 0.0) break;
  }
  return selectivity;
}

std::size_t AviHistogram::ModelBytes() const {
  std::size_t bytes = 0;
  for (const Marginal& marginal : histograms_) {
    bytes += (marginal.edges.size() + marginal.fractions.size()) *
             sizeof(double);
  }
  return bytes;
}

}  // namespace fkde
