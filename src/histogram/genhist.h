/// \file genhist.h
/// \brief GenHist: the multidimensional histogram of Gunopulos et al.
///
/// Reimplementation of the GENHIST algorithm from "Selectivity estimators
/// for multidimensional range queries over real attributes" (VLDB J. 14,
/// 2005) — the histogram that prior KDE work was benchmarked against and
/// the source of the paper's synthetic dataset. Included as a second
/// static baseline next to STHoles.
///
/// Construction intuition: lay an increasingly coarse sequence of grids
/// over the data; at each level, cells that are much denser than the
/// level average become histogram buckets capturing their *excess* mass,
/// and tuples accounted for by a bucket are removed from the working set
/// so coarser levels see a progressively smoother residual distribution.
/// Buckets may overlap across levels; the estimate for a query sums each
/// bucket's uniform-density contribution.
///
/// Unlike STHoles this is a static, data-scan-built estimator (no query
/// feedback), which is exactly its role in the literature.

#ifndef FKDE_HISTOGRAM_GENHIST_H_
#define FKDE_HISTOGRAM_GENHIST_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/table.h"
#include "estimator/estimator.h"

namespace fkde {

/// \brief GenHist construction parameters.
struct GenHistOptions {
  /// Maximum number of buckets (memory budget). The d*4kB parity rule
  /// gives the same bucket count as STHoles.
  std::size_t max_buckets = 500;
  /// Grid resolution of the finest level (cells per dimension).
  std::size_t initial_resolution = 16;
  /// Each subsequent level shrinks the resolution by this factor (the
  /// paper recommends a gentle decay so buckets can overlap).
  double resolution_decay = 0.7;
  /// A cell is "dense" when its count exceeds this multiple of the level
  /// average over occupied cells.
  double density_threshold = 1.5;
  std::uint64_t seed = 23;
};

/// \brief Static multidimensional histogram with overlapping buckets.
class GenHist : public SelectivityEstimator {
 public:
  /// Builds the histogram from a full scan of `table`.
  static Result<GenHist> Build(const Table& table,
                               const GenHistOptions& options = {});

  std::string name() const override { return "genhist"; }
  std::size_t dims() const override { return dims_; }
  double EstimateSelectivity(const Box& box) override;
  std::size_t ModelBytes() const override;

  std::size_t NumBuckets() const { return buckets_.size(); }

  /// Sum of bucket frequencies — equals the number of rows the histogram
  /// accounts for (== the table size at build time).
  double TotalFrequency() const;

 private:
  struct Bucket {
    Box box;
    double frequency;
  };

  GenHist() = default;

  std::size_t dims_ = 0;
  std::size_t total_rows_ = 0;
  std::vector<Bucket> buckets_;
};

}  // namespace fkde

#endif  // FKDE_HISTOGRAM_GENHIST_H_
