#include "histogram/stholes.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <limits>

#include "common/logging.h"

namespace fkde {

namespace {

constexpr double kVolumeEps = 1e-12;
constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// Volume of the (closed) intersection of two boxes; 0 when disjoint.
double IntersectionVolume(const Box& a, const Box& b) {
  double volume = 1.0;
  for (std::size_t j = 0; j < a.dims(); ++j) {
    const double lo = std::max(a.lower(j), b.lower(j));
    const double hi = std::min(a.upper(j), b.upper(j));
    if (hi <= lo) return 0.0;
    volume *= hi - lo;
  }
  return volume;
}

/// True when the boxes overlap with positive volume (touching faces do
/// not count — bucket disjointness is about interiors).
bool OverlapsInterior(const Box& a, const Box& b) {
  return IntersectionVolume(a, b) > 0.0;
}

}  // namespace

std::size_t SthBucketBudgetForBytes(std::size_t bytes, std::size_t dims) {
  // A bucket stores 2d box coordinates plus a frequency, 4 bytes each
  // (matching the paper's single-precision accounting for the KDE sample).
  const std::size_t per_bucket = 4 * (2 * dims + 1);
  return std::max<std::size_t>(4, bytes / per_bucket);
}

STHoles::STHoles(Box domain, std::size_t total_rows, RegionCounter counter,
                 const SthOptions& options)
    : total_rows_(total_rows),
      counter_(std::move(counter)),
      options_(options) {
  FKDE_CHECK(domain.dims() > 0);
  FKDE_CHECK(options_.max_buckets >= 1);
  root_ = std::make_unique<Bucket>();
  root_->box = std::move(domain);
  root_->frequency = static_cast<double>(total_rows);
}

double STHoles::RegionVolume(const Bucket& bucket) {
  double volume = bucket.box.Volume();
  for (const auto& child : bucket.children) {
    volume -= child->box.Volume();
  }
  return std::max(volume, 0.0);
}

double STHoles::QueryRegionVolume(const Bucket& bucket, const Box& query) {
  double volume = IntersectionVolume(bucket.box, query);
  for (const auto& child : bucket.children) {
    volume -= IntersectionVolume(child->box, query);
  }
  return std::max(volume, 0.0);
}

double STHoles::EstimateTuplesRec(const Bucket& bucket,
                                  const Box& query) const {
  if (!bucket.box.Intersects(query)) return 0.0;
  double tuples = 0.0;
  const double region_volume = RegionVolume(bucket);
  if (region_volume > kVolumeEps) {
    // Uniformity assumption inside the bucket's region.
    tuples +=
        bucket.frequency * QueryRegionVolume(bucket, query) / region_volume;
  } else if (IntersectionVolume(bucket.box, query) >=
             bucket.box.Volume() - kVolumeEps) {
    // Degenerate region fully covered by the query.
    tuples += bucket.frequency;
  }
  for (const auto& child : bucket.children) {
    tuples += EstimateTuplesRec(*child, query);
  }
  return tuples;
}

double STHoles::EstimateTuples(const Box& box) const {
  return EstimateTuplesRec(*root_, box);
}

double STHoles::EstimateSelectivity(const Box& box) {
  if (total_rows_ == 0) return 0.0;
  const double tuples = EstimateTuplesRec(*root_, box);
  return std::clamp(tuples / static_cast<double>(total_rows_), 0.0, 1.0);
}

double STHoles::SubtreeFrequency(const Bucket& bucket) {
  double total = bucket.frequency;
  for (const auto& child : bucket.children) {
    total += SubtreeFrequency(*child);
  }
  return total;
}

double STHoles::TotalFrequency() const { return SubtreeFrequency(*root_); }

std::size_t STHoles::CountBuckets(const Bucket& bucket) const {
  std::size_t count = 1;
  for (const auto& child : bucket.children) count += CountBuckets(*child);
  return count;
}

std::size_t STHoles::NumBuckets() const {
  FKDE_DCHECK(num_buckets_ == CountBuckets(*root_));
  return num_buckets_;
}

std::size_t STHoles::ModelBytes() const {
  return NumBuckets() * 4 * (2 * dims() + 1);
}

// ---------------------------------------------------------------------------
// Refinement
// ---------------------------------------------------------------------------

bool STHoles::ShrinkCandidate(const Bucket& bucket, Box* candidate) const {
  // Repeatedly cut the candidate along one dimension to exclude a child it
  // partially intersects, choosing the cut that keeps the most volume
  // (paper Section 4.2).
  for (;;) {
    const Bucket* offender = nullptr;
    for (const auto& child : bucket.children) {
      if (OverlapsInterior(child->box, *candidate) &&
          !candidate->ContainsBox(child->box)) {
        offender = child.get();
        break;
      }
    }
    if (offender == nullptr) return candidate->Volume() > kVolumeEps;

    // Best single-dimension cut excluding the offender.
    double best_volume = -1.0;
    std::size_t best_dim = 0;
    double best_lo = 0.0, best_hi = 0.0;
    for (std::size_t j = 0; j < candidate->dims(); ++j) {
      // Cut away the high side: candidate upper drops to offender lower.
      if (offender->box.lower(j) > candidate->lower(j) &&
          offender->box.lower(j) < candidate->upper(j)) {
        double volume = 1.0;
        for (std::size_t k = 0; k < candidate->dims(); ++k) {
          const double hi =
              (k == j) ? offender->box.lower(j) : candidate->upper(k);
          volume *= hi - candidate->lower(k);
        }
        if (volume > best_volume) {
          best_volume = volume;
          best_dim = j;
          best_lo = candidate->lower(j);
          best_hi = offender->box.lower(j);
        }
      }
      // Cut away the low side: candidate lower rises to offender upper.
      if (offender->box.upper(j) < candidate->upper(j) &&
          offender->box.upper(j) > candidate->lower(j)) {
        double volume = 1.0;
        for (std::size_t k = 0; k < candidate->dims(); ++k) {
          const double lo =
              (k == j) ? offender->box.upper(j) : candidate->lower(k);
          volume *= candidate->upper(k) - lo;
        }
        if (volume > best_volume) {
          best_volume = volume;
          best_dim = j;
          best_lo = offender->box.upper(j);
          best_hi = candidate->upper(j);
        }
      }
    }
    if (best_volume <= kVolumeEps) return false;  // Offender covers us.
    std::vector<double> lo = candidate->lower_bounds();
    std::vector<double> hi = candidate->upper_bounds();
    lo[best_dim] = best_lo;
    hi[best_dim] = best_hi;
    *candidate = Box(std::move(lo), std::move(hi));
  }
}

void STHoles::DrillHole(Bucket* bucket, const Box& candidate, double tuples) {
  auto hole = std::make_unique<Bucket>();
  hole->box = candidate;
  hole->frequency = tuples;
  hole->parent = bucket;
  // Children fully inside the candidate migrate into the new hole.
  std::vector<std::unique_ptr<Bucket>> keep;
  for (auto& child : bucket->children) {
    if (candidate.ContainsBox(child->box)) {
      child->parent = hole.get();
      hole->children.push_back(std::move(child));
    } else {
      keep.push_back(std::move(child));
    }
  }
  bucket->children = std::move(keep);
  bucket->frequency = std::max(0.0, bucket->frequency - tuples);
  bucket->children.push_back(std::move(hole));
  ++num_buckets_;
}

void STHoles::RefineRec(Bucket* bucket, const Box& query) {
  if (!OverlapsInterior(bucket->box, query)) return;

  // Children first: drilling below must not see this bucket's new holes.
  // Snapshot, since drilling may restructure the child list.
  std::vector<Bucket*> snapshot;
  snapshot.reserve(bucket->children.size());
  for (auto& child : bucket->children) snapshot.push_back(child.get());
  for (Bucket* child : snapshot) {
    // The child may have been re-parented by a drill on an earlier
    // sibling; only recurse if it is still ours.
    bool still_child = false;
    for (auto& c : bucket->children) {
      if (c.get() == child) {
        still_child = true;
        break;
      }
    }
    if (still_child) RefineRec(child, query);
  }

  Box candidate = query.Intersection(bucket->box);
  const bool covers_whole_box =
      IntersectionVolume(candidate, bucket->box) >=
      bucket->box.Volume() - kVolumeEps;

  if (covers_whole_box) {
    // Exact feedback for the entire bucket box: reset the region count.
    const double in_box = static_cast<double>(counter_(bucket->box));
    double in_children = 0.0;
    for (const auto& child : bucket->children) {
      in_children += SubtreeFrequency(*child);
    }
    bucket->frequency = std::max(0.0, in_box - in_children);
    return;
  }

  if (!ShrinkCandidate(*bucket, &candidate)) return;

  // Tuples in the candidate region (candidate box minus enclosed holes).
  const double in_candidate = static_cast<double>(counter_(candidate));
  double in_enclosed = 0.0;
  for (const auto& child : bucket->children) {
    if (candidate.ContainsBox(child->box)) {
      in_enclosed += SubtreeFrequency(*child);
    }
  }
  const double observed = std::max(0.0, in_candidate - in_enclosed);

  // Current estimate for the same region under the uniformity assumption.
  const double region_volume = RegionVolume(*bucket);
  double candidate_region_volume = candidate.Volume();
  for (const auto& child : bucket->children) {
    candidate_region_volume -= IntersectionVolume(child->box, candidate);
  }
  candidate_region_volume = std::max(candidate_region_volume, 0.0);
  const double current = region_volume > kVolumeEps
                             ? bucket->frequency * candidate_region_volume /
                                   region_volume
                             : 0.0;

  // Only drill when the observation meaningfully disagrees (paper drills
  // unconditionally; the epsilon avoids churning on exact buckets).
  if (std::abs(observed - current) <=
      options_.drill_epsilon * std::max(1.0, observed)) {
    return;
  }
  if (candidate_region_volume <= kVolumeEps) return;
  DrillHole(bucket, candidate, observed);
}

void STHoles::ObserveTrueSelectivity(const Box& box, double selectivity) {
  (void)selectivity;  // STHoles consumes counts via the RegionCounter.
  // Grow the root to cover queries beyond the original domain (the data
  // space may drift under updates).
  if (!root_->box.ContainsBox(box)) {
    root_->box = root_->box.Union(box);
  }
  RefineRec(root_.get(), box);
  EnforceBudget();
}

void STHoles::OnInsert(std::span<const double> row,
                       std::size_t table_rows_after) {
  total_rows_ = table_rows_after;
  // Keep the domain covering all data; frequencies adapt via feedback.
  if (!root_->box.Contains(row)) {
    Box grown = root_->box;
    grown.ExpandToContain(row);
    root_->box = grown;
  }
}

void STHoles::OnDelete(std::size_t rows_deleted, std::size_t table_rows_after) {
  (void)rows_deleted;
  total_rows_ = table_rows_after;
}

// ---------------------------------------------------------------------------
// Merging
// ---------------------------------------------------------------------------

double STHoles::ParentChildPenalty(const Bucket& parent,
                                   const Bucket& child) const {
  const double vp = RegionVolume(parent);
  const double vc = RegionVolume(child);
  const double vn = vp + vc;
  if (vn <= kVolumeEps) return 0.0;  // Degenerate: merging is free.
  const double fn = parent.frequency + child.frequency;
  return std::abs(parent.frequency - fn * vp / vn) +
         std::abs(child.frequency - fn * vc / vn);
}

double STHoles::SiblingPenalty(const Bucket& parent, const Bucket& b1,
                               const Bucket& b2, Box* merged_box,
                               std::vector<const Bucket*>* pulled) const {
  // Smallest box covering both siblings, expanded until it partially
  // intersects no other sibling (those it swallows become participants).
  Box bn = b1.box.Union(b2.box);
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& sibling : parent.children) {
      if (sibling.get() == &b1 || sibling.get() == &b2) continue;
      if (OverlapsInterior(sibling->box, bn) &&
          !bn.ContainsBox(sibling->box)) {
        bn = bn.Union(sibling->box);
        changed = true;
      }
    }
  }
  pulled->clear();
  for (const auto& sibling : parent.children) {
    if (sibling.get() == &b1 || sibling.get() == &b2) continue;
    if (bn.ContainsBox(sibling->box)) pulled->push_back(sibling.get());
  }

  // Share of the parent's own region absorbed by bn.
  double vp_in = bn.Volume() - b1.box.Volume() - b2.box.Volume();
  for (const Bucket* p : *pulled) vp_in -= p->box.Volume();
  vp_in = std::max(vp_in, 0.0);

  const double vp = RegionVolume(parent);
  const double f_p_in =
      vp > kVolumeEps ? parent.frequency * vp_in / vp : 0.0;
  const double f_bn = b1.frequency + b2.frequency + f_p_in;
  const double v1 = RegionVolume(b1);
  const double v2 = RegionVolume(b2);
  const double v_bn = vp_in + v1 + v2;
  if (v_bn <= kVolumeEps) return kInfinity;

  *merged_box = bn;
  return std::abs(f_p_in - f_bn * vp_in / v_bn) +
         std::abs(b1.frequency - f_bn * v1 / v_bn) +
         std::abs(b2.frequency - f_bn * v2 / v_bn);
}

void STHoles::MergeParentChild(Bucket* parent, Bucket* child) {
  parent->frequency += child->frequency;
  std::vector<std::unique_ptr<Bucket>> keep;
  std::unique_ptr<Bucket> removed;
  for (auto& c : parent->children) {
    if (c.get() == child) {
      removed = std::move(c);
    } else {
      keep.push_back(std::move(c));
    }
  }
  FKDE_CHECK(removed != nullptr);
  for (auto& grandchild : removed->children) {
    grandchild->parent = parent;
    keep.push_back(std::move(grandchild));
  }
  parent->children = std::move(keep);
  --num_buckets_;
}

void STHoles::MergeSiblings(Bucket* parent, Bucket* b1, Bucket* b2,
                            const Box& merged_box,
                            const std::vector<const Bucket*>& pulled) {
  // Recompute the absorbed parent share against the current state.
  double vp_in = merged_box.Volume() - b1->box.Volume() - b2->box.Volume();
  for (const Bucket* p : pulled) vp_in -= p->box.Volume();
  vp_in = std::max(vp_in, 0.0);
  const double vp = RegionVolume(*parent);
  const double f_p_in =
      vp > kVolumeEps ? parent->frequency * vp_in / vp : 0.0;

  auto merged = std::make_unique<Bucket>();
  merged->box = merged_box;
  merged->frequency = b1->frequency + b2->frequency + f_p_in;
  merged->parent = parent;

  std::vector<std::unique_ptr<Bucket>> keep;
  for (auto& child : parent->children) {
    Bucket* raw = child.get();
    const bool absorbed =
        raw == b1 || raw == b2 ||
        std::find(pulled.begin(), pulled.end(), raw) != pulled.end();
    if (!absorbed) {
      keep.push_back(std::move(child));
      continue;
    }
    if (raw == b1 || raw == b2) {
      // Their children become children of the merged bucket.
      for (auto& grandchild : raw->children) {
        grandchild->parent = merged.get();
        merged->children.push_back(std::move(grandchild));
      }
    } else {
      // Pulled participants survive as holes of the merged bucket.
      child->parent = merged.get();
      merged->children.push_back(std::move(child));
    }
  }
  parent->frequency = std::max(0.0, parent->frequency - f_p_in);
  keep.push_back(std::move(merged));
  parent->children = std::move(keep);
  --num_buckets_;  // b1 and b2 die, bn is born; pulled survive.
}

std::vector<STHoles::MergeCandidate> STHoles::CollectMergeCandidates(
    std::size_t limit) {
  std::vector<MergeCandidate> candidates;
  std::vector<Bucket*> stack = {root_.get()};
  std::vector<const Bucket*> pulled;
  Box merged_box;
  while (!stack.empty()) {
    Bucket* bucket = stack.back();
    stack.pop_back();
    for (auto& child : bucket->children) {
      stack.push_back(child.get());
      const double penalty = ParentChildPenalty(*bucket, *child);
      candidates.push_back(
          {penalty, bucket, child.get(), nullptr, Box(), {}});
    }
    // Sibling pairs: each child is only paired with its nearest siblings
    // by box-center distance (an implementation optimization over the
    // paper's full O(k^2) pair scan; distant sibling merges absorb huge
    // parent regions and essentially never win the penalty comparison).
    const std::size_t k = bucket->children.size();
    if (k >= 2) {
      constexpr std::size_t kNearest = 4;
      for (std::size_t i = 0; i < k; ++i) {
        std::vector<std::pair<double, std::size_t>> near;
        near.reserve(k - 1);
        for (std::size_t j = i + 1; j < k; ++j) {
          double dist2 = 0.0;
          for (std::size_t t = 0; t < dims(); ++t) {
            const double delta = bucket->children[i]->box.Center(t) -
                                 bucket->children[j]->box.Center(t);
            dist2 += delta * delta;
          }
          near.emplace_back(dist2, j);
        }
        const std::size_t take = std::min(kNearest, near.size());
        std::partial_sort(near.begin(), near.begin() + take, near.end());
        for (std::size_t t = 0; t < take; ++t) {
          Bucket* b1 = bucket->children[i].get();
          Bucket* b2 = bucket->children[near[t].second].get();
          const double penalty =
              SiblingPenalty(*bucket, *b1, *b2, &merged_box, &pulled);
          if (penalty < kInfinity) {
            candidates.push_back(
                {penalty, bucket, b1, b2, merged_box, pulled});
          }
        }
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const MergeCandidate& a, const MergeCandidate& b) {
              return a.penalty < b.penalty;
            });
  if (candidates.size() > limit) candidates.resize(limit);
  return candidates;
}

void STHoles::EnforceBudget() {
  while (num_buckets_ > options_.max_buckets) {
    // One scan yields a batch of cheap merges; apply them in penalty
    // order, dropping any candidate whose parent was already touched by
    // an earlier merge in the batch (its penalties are stale).
    const std::size_t excess = num_buckets_ - options_.max_buckets;
    std::vector<MergeCandidate> batch =
        CollectMergeCandidates(std::max<std::size_t>(excess, 8) * 2);
    if (batch.empty()) return;  // Only the root remains.
    std::set<const Bucket*> touched;
    std::size_t applied = 0;
    for (MergeCandidate& candidate : batch) {
      if (num_buckets_ <= options_.max_buckets) break;
      if (touched.count(candidate.parent) > 0 ||
          touched.count(candidate.b1) > 0 ||
          (candidate.b2 != nullptr && touched.count(candidate.b2) > 0)) {
        continue;
      }
      // Mark the whole neighborhood stale: the parent, the merged
      // buckets, and (for sibling merges) the pulled participants.
      touched.insert(candidate.parent);
      touched.insert(candidate.b1);
      if (candidate.b2 != nullptr) {
        touched.insert(candidate.b2);
        for (const Bucket* p : candidate.pulled) touched.insert(p);
        MergeSiblings(candidate.parent, candidate.b1, candidate.b2,
                      candidate.merged_box, candidate.pulled);
      } else {
        MergeParentChild(candidate.parent, candidate.b1);
      }
      ++applied;
    }
    if (applied == 0) return;  // All candidates stale: give up this round.
  }
}

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

void STHoles::CheckInvariants() const {
  std::vector<const Bucket*> stack = {root_.get()};
  while (!stack.empty()) {
    const Bucket* bucket = stack.back();
    stack.pop_back();
    FKDE_CHECK_MSG(bucket->frequency >= 0.0, "negative bucket frequency");
    for (std::size_t i = 0; i < bucket->children.size(); ++i) {
      const Bucket* child = bucket->children[i].get();
      FKDE_CHECK_MSG(bucket->box.ContainsBox(child->box),
                     "child bucket escapes its parent box");
      FKDE_CHECK_MSG(child->parent == bucket, "broken parent pointer");
      for (std::size_t j = i + 1; j < bucket->children.size(); ++j) {
        FKDE_CHECK_MSG(
            !OverlapsInterior(child->box, bucket->children[j]->box),
            "sibling buckets overlap");
      }
      stack.push_back(child);
    }
  }
}

}  // namespace fkde
