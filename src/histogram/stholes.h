/// \file stholes.h
/// \brief STHoles: the self-tuning multidimensional histogram baseline.
///
/// Reimplementation of Bruno, Chaudhuri & Gravano, "STHoles: A
/// Multidimensional Workload-Aware Histogram" (SIGMOD 2001) — the
/// histogram the paper compares against (Section 6.1.1).
///
/// An STHoles histogram is a tree of buckets. Each bucket owns a
/// hyper-rectangular box and a tuple frequency for its *region* — its box
/// minus the boxes of its children (the "holes" drilled into it).
/// The histogram refines itself from query feedback:
///
///  * for every bucket a query partially intersects, a *candidate hole*
///    (the intersection, shrunk so it does not partially cut any child)
///    is drilled as a new child carrying the observed tuple count;
///  * when the bucket budget is exceeded, the pair of buckets whose merge
///    changes the histogram the least (parent-child or sibling-sibling
///    penalty) is merged until the budget holds.
///
/// Feedback granularity: like the original system — which inspects the
/// query's result stream to count tuples per candidate hole — this
/// implementation needs exact counts for sub-regions of executed queries.
/// The driver provides a `RegionCounter` backed by the live table; it is
/// only ever invoked for regions inside the just-executed query box, which
/// is exactly the information the result stream exposes.

#ifndef FKDE_HISTOGRAM_STHOLES_H_
#define FKDE_HISTOGRAM_STHOLES_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/box.h"
#include "estimator/estimator.h"

namespace fkde {

/// Counts the tuples of the relation currently inside a box. See the file
/// comment for why STHoles receives this (result-stream inspection).
using RegionCounter = std::function<std::size_t(const Box&)>;

/// \brief STHoles configuration.
struct SthOptions {
  /// Maximum number of buckets (the memory budget). The Section 6.2
  /// parity budget d*4kB with (2d+1) 4-byte values per bucket yields
  /// 4096*d / (4*(2d+1)) buckets.
  std::size_t max_buckets = 500;
  /// Relative frequency deviation below which a candidate hole is not
  /// worth drilling (avoids churn on already-accurate buckets).
  double drill_epsilon = 0.05;
};

/// Bucket budget that matches the paper's d*4kB memory parity rule.
std::size_t SthBucketBudgetForBytes(std::size_t bytes, std::size_t dims);

/// \brief Self-tuning multidimensional histogram.
class STHoles : public SelectivityEstimator {
 public:
  /// Creates a histogram whose root covers `domain`. `total_rows` is the
  /// relation cardinality (maintained via OnInsert/OnDelete); `counter`
  /// supplies result-stream counts during refinement.
  STHoles(Box domain, std::size_t total_rows, RegionCounter counter,
          const SthOptions& options = {});

  std::string name() const override { return "stholes"; }
  std::size_t dims() const override { return root_->box.dims(); }
  double EstimateSelectivity(const Box& box) override;
  void ObserveTrueSelectivity(const Box& box, double selectivity) override;
  void OnInsert(std::span<const double> row,
                std::size_t table_rows_after) override;
  void OnDelete(std::size_t rows_deleted,
                std::size_t table_rows_after) override;
  std::size_t ModelBytes() const override;

  /// Current number of buckets in the tree.
  std::size_t NumBuckets() const;

  /// Estimated tuple count inside `box` (the un-normalized estimate).
  double EstimateTuples(const Box& box) const;

  /// Validates structural invariants (children nested & disjoint,
  /// non-negative frequencies). Aborts on violation; used by tests.
  void CheckInvariants() const;

  /// Sum of all bucket frequencies (should track the relation size).
  double TotalFrequency() const;

 private:
  struct Bucket {
    Box box;
    double frequency = 0.0;  // Tuples in box minus children boxes.
    std::vector<std::unique_ptr<Bucket>> children;
    Bucket* parent = nullptr;
  };

  // --- Estimation ---
  double EstimateTuplesRec(const Bucket& bucket, const Box& query) const;
  /// Volume of the bucket's region (box minus child boxes).
  static double RegionVolume(const Bucket& bucket);
  /// Volume of query ∩ region(bucket).
  static double QueryRegionVolume(const Bucket& bucket, const Box& query);

  // --- Refinement ---
  void RefineRec(Bucket* bucket, const Box& query);
  /// Shrinks candidate `c` until it partially intersects no child of
  /// `bucket` (paper Section 4.2 "shrinking"); returns an empty optional
  /// when the candidate shrinks away.
  bool ShrinkCandidate(const Bucket& bucket, Box* candidate) const;
  void DrillHole(Bucket* bucket, const Box& candidate, double tuples);

  // --- Merging ---
  void EnforceBudget();
  double ParentChildPenalty(const Bucket& parent, const Bucket& child) const;
  /// Computes the merge penalty of two siblings; fills `merged_box` with
  /// the (possibly expanded) merged box and `pulled` with the additional
  /// sibling participants. Returns infinity when the merge is impossible.
  double SiblingPenalty(const Bucket& parent, const Bucket& b1,
                        const Bucket& b2, Box* merged_box,
                        std::vector<const Bucket*>* pulled) const;
  void MergeParentChild(Bucket* parent, Bucket* child);
  void MergeSiblings(Bucket* parent, Bucket* b1, Bucket* b2,
                     const Box& merged_box,
                     const std::vector<const Bucket*>& pulled);

  static double SubtreeFrequency(const Bucket& bucket);
  std::size_t CountBuckets(const Bucket& bucket) const;

  /// One full-tree scan collecting merge candidates, best first.
  struct MergeCandidate {
    double penalty;
    Bucket* parent;
    Bucket* b1;
    Bucket* b2;  // nullptr for parent-child merges.
    Box merged_box;
    std::vector<const Bucket*> pulled;
  };
  std::vector<MergeCandidate> CollectMergeCandidates(std::size_t limit);

  std::unique_ptr<Bucket> root_;
  std::size_t num_buckets_ = 1;
  std::size_t total_rows_;
  RegionCounter counter_;
  SthOptions options_;
};

}  // namespace fkde

#endif  // FKDE_HISTOGRAM_STHOLES_H_
