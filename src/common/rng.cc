#include "common/rng.h"

namespace fkde {

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  FKDE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FKDE_DCHECK(w >= 0.0);
    total += w;
  }
  FKDE_CHECK_MSG(total > 0.0, "categorical weights must have a positive sum");
  double r = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // Guard against accumulated rounding.
}

}  // namespace fkde
