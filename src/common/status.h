/// \file status.h
/// \brief Error model for the library: `Status` and `Result<T>`.
///
/// Follows the Arrow/RocksDB idiom: fallible public APIs return a `Status`
/// (or a `Result<T>` when they produce a value) instead of throwing.
/// Exceptions never cross a library boundary; invariant violations are
/// handled by the FKDE_CHECK/FKDE_DCHECK macros in logging.h.

#ifndef FKDE_COMMON_STATUS_H_
#define FKDE_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace fkde {

/// Machine-readable error category carried by a non-OK Status.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  kNotImplemented = 8,
};

/// \brief Returns a short human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief Success-or-error outcome of an operation.
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries a
/// code plus message otherwise. Use the factory functions
/// (`Status::InvalidArgument(...)` etc.) to construct errors.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory for the OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  StatusCode code() const { return code_; }

  /// Error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const { return code_ == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }
  bool IsNotImplemented() const { return code_ == StatusCode::kNotImplemented; }

  /// Aborts the process if this status is not OK. Use at the top level of
  /// examples/benches where an error is unrecoverable.
  void AbortIfError(const char* context = nullptr) const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief Value-or-error outcome of an operation.
///
/// Holds either a `T` or a non-OK `Status`. Access to the value when the
/// result holds an error aborts (checked access); call `ok()` first or use
/// the FKDE_ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (error).
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Status of the result; OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(payload_);
  }

  /// Returns the held value; aborts if the result holds an error.
  const T& ValueOrDie() const {
    EnsureOk();
    return std::get<T>(payload_);
  }
  T& ValueOrDie() {
    EnsureOk();
    return std::get<T>(payload_);
  }

  /// Moves the held value out; aborts if the result holds an error.
  T MoveValueOrDie() {
    EnsureOk();
    return std::move(std::get<T>(payload_));
  }

  /// Returns the value or `fallback` when the result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  void EnsureOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::ValueOrDie on error: %s\n",
                   std::get<Status>(payload_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> payload_;
};

}  // namespace fkde

/// Propagates a non-OK status to the caller.
#define FKDE_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::fkde::Status _fkde_status = (expr);        \
    if (!_fkde_status.ok()) return _fkde_status; \
  } while (false)

#define FKDE_CONCAT_IMPL(a, b) a##b
#define FKDE_CONCAT(a, b) FKDE_CONCAT_IMPL(a, b)

/// Evaluates a Result-returning expression; on success binds the value to
/// `lhs`, on error returns the status to the caller.
#define FKDE_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto FKDE_CONCAT(_fkde_result_, __LINE__) = (expr);           \
  if (!FKDE_CONCAT(_fkde_result_, __LINE__).ok())               \
    return FKDE_CONCAT(_fkde_result_, __LINE__).status();       \
  lhs = FKDE_CONCAT(_fkde_result_, __LINE__).MoveValueOrDie()

#endif  // FKDE_COMMON_STATUS_H_
