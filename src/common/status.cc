#include "common/status.h"

namespace fkde {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

void Status::AbortIfError(const char* context) const {
  if (ok()) return;
  std::fprintf(stderr, "fatal%s%s: %s\n", context ? " in " : "",
               context ? context : "", ToString().c_str());
  std::abort();
}

}  // namespace fkde
