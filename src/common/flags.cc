#include "common/flags.h"

#include <charconv>
#include <cstdlib>
#include <sstream>

namespace fkde {

void FlagParser::AddInt64(const std::string& name, std::int64_t* target,
                          const std::string& help) {
  entries_[name] = Entry{Kind::kInt64, target, help, std::to_string(*target)};
}

void FlagParser::AddDouble(const std::string& name, double* target,
                           const std::string& help) {
  entries_[name] = Entry{Kind::kDouble, target, help, std::to_string(*target)};
}

void FlagParser::AddString(const std::string& name, std::string* target,
                           const std::string& help) {
  entries_[name] = Entry{Kind::kString, target, help, *target};
}

void FlagParser::AddBool(const std::string& name, bool* target,
                         const std::string& help) {
  entries_[name] = Entry{Kind::kBool, target, help, *target ? "true" : "false"};
}

Status FlagParser::SetValue(const std::string& name, const std::string& value) {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::InvalidArgument("unknown flag --" + name + "\n" + Help());
  }
  Entry& e = it->second;
  switch (e.kind) {
    case Kind::kInt64: {
      std::int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(value.data(), value.data() + value.size(), v);
      if (ec != std::errc() || ptr != value.data() + value.size()) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      *static_cast<std::int64_t*>(e.target) = v;
      break;
    }
    case Kind::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(value.c_str(), &end);
      if (end != value.c_str() + value.size() || value.empty()) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      *static_cast<double*>(e.target) = v;
      break;
    }
    case Kind::kString:
      *static_cast<std::string*>(e.target) = value;
      break;
    case Kind::kBool:
      if (value == "true" || value == "1") {
        *static_cast<bool*>(e.target) = true;
      } else if (value == "false" || value == "0") {
        *static_cast<bool*>(e.target) = false;
      } else {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      break;
  }
  return Status::OK();
}

Status FlagParser::Parse(int argc, char** argv) {
  positional_.clear();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      FKDE_RETURN_NOT_OK(SetValue(arg.substr(0, eq), arg.substr(eq + 1)));
      continue;
    }
    // --name value, --bool, or --no-bool.
    auto it = entries_.find(arg);
    if (it != entries_.end() && it->second.kind == Kind::kBool) {
      *static_cast<bool*>(it->second.target) = true;
      continue;
    }
    if (arg.rfind("no-", 0) == 0) {
      auto neg = entries_.find(arg.substr(3));
      if (neg != entries_.end() && neg->second.kind == Kind::kBool) {
        *static_cast<bool*>(neg->second.target) = false;
        continue;
      }
    }
    if (it == entries_.end()) {
      return Status::InvalidArgument("unknown flag --" + arg + "\n" + Help());
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag --" + arg + " is missing a value");
    }
    FKDE_RETURN_NOT_OK(SetValue(arg, argv[++i]));
  }
  return Status::OK();
}

std::string FlagParser::Help() const {
  std::ostringstream out;
  out << "flags:\n";
  for (const auto& [name, e] : entries_) {
    out << "  --" << name << " (default: " << e.default_repr << ")  " << e.help
        << "\n";
  }
  return out.str();
}

}  // namespace fkde
