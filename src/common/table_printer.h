/// \file table_printer.h
/// \brief Aligned text-table and CSV emission for the benchmark harness.

#ifndef FKDE_COMMON_TABLE_PRINTER_H_
#define FKDE_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace fkde {

/// \brief Collects rows of string cells and renders them either as an
/// aligned ASCII table (human consumption) or CSV (plotting scripts).
class TablePrinter {
 public:
  /// Sets the column headers; must be called before AddRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats a double with the given precision.
  static std::string Num(double v, int precision = 5);

  /// Renders an aligned table to `out` (default stdout).
  void PrintTable(std::FILE* out = stdout) const;

  /// Renders CSV to `out` (default stdout).
  void PrintCsv(std::FILE* out = stdout) const;

  /// Renders as table or CSV depending on `csv`.
  void Print(bool csv, std::FILE* out = stdout) const {
    if (csv) {
      PrintCsv(out);
    } else {
      PrintTable(out);
    }
  }

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fkde

#endif  // FKDE_COMMON_TABLE_PRINTER_H_
