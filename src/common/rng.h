/// \file rng.h
/// \brief Deterministic pseudo-random number generation.
///
/// Every randomized component in the library (sampling, workload generation,
/// optimizer restarts, data generators) takes an explicit `Rng` or seed so
/// that experiments are reproducible bit-for-bit.
///
/// The generator is xoshiro256** (Blackman & Vigna), a small, fast, high
/// quality non-cryptographic PRNG.

#ifndef FKDE_COMMON_RNG_H_
#define FKDE_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace fkde {

/// \brief Full serializable state of an `Rng` (model snapshots).
///
/// Covers the xoshiro256** words plus the Marsaglia-polar spare, so a
/// restored generator continues the exact stream of the saved one —
/// including a buffered second Gaussian variate.
struct RngState {
  std::uint64_t state[4] = {};
  bool has_spare = false;
  double spare = 0.0;
};

/// \brief xoshiro256** pseudo-random number generator.
///
/// Satisfies the UniformRandomBitGenerator concept so it can also be used
/// with `<random>` distributions, though the member helpers below are
/// preferred for determinism across standard library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; two Rng instances with the same seed produce the
  /// same stream on every platform.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds via splitmix64 expansion of `seed`.
  void Seed(std::uint64_t seed) {
    // splitmix64 to fill the state; avoids all-zero state for any seed.
    for (auto& s : state_) {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next 64 uniformly distributed bits.
  std::uint64_t Next64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  result_type operator()() { return Next64(); }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection to avoid
  /// modulo bias.
  std::uint64_t UniformInt(std::uint64_t n) {
    FKDE_DCHECK(n > 0);
    const std::uint64_t threshold = (~n + 1) % n;  // == 2^64 mod n
    for (;;) {
      const std::uint64_t r = Next64();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    FKDE_DCHECK(hi >= lo);
    return lo + static_cast<std::int64_t>(
                    UniformInt(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal variate (Marsaglia polar method).
  double Gaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = Uniform(-1.0, 1.0);
      v = Uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
  }

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Exponential variate with the given rate (lambda > 0).
  double Exponential(double rate) {
    FKDE_DCHECK(rate > 0.0);
    return -std::log(1.0 - Uniform()) / rate;
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Draws an index in [0, weights.size()) proportionally to `weights`.
  /// Weights must be non-negative with a positive sum.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `v` in place.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::swap(v[i - 1], v[UniformInt(i)]);
    }
  }

  /// Derives an independent child generator; used to hand deterministic
  /// streams to parallel workers.
  Rng Fork() { return Rng(Next64() ^ 0xD1B54A32D192ED03ULL); }

  /// Captures the complete generator state for serialization.
  RngState SaveState() const {
    RngState s;
    for (std::size_t i = 0; i < 4; ++i) s.state[i] = state_[i];
    s.has_spare = has_spare_;
    s.spare = spare_;
    return s;
  }

  /// Resumes the exact stream captured by `SaveState`.
  void RestoreState(const RngState& s) {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = s.state[i];
    has_spare_ = s.has_spare;
    spare_ = s.spare;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace fkde

#endif  // FKDE_COMMON_RNG_H_
