/// \file stats.h
/// \brief Summary statistics used by the evaluation harness.

#ifndef FKDE_COMMON_STATS_H_
#define FKDE_COMMON_STATS_H_

#include <cmath>
#include <cstddef>
#include <vector>

namespace fkde {

/// \brief Single-pass accumulator for mean/variance/min/max (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (count_ == 1 || x < min_) min_ = x;
    if (count_ == 1 || x > max_) max_ = x;
  }

  /// Merges another accumulator into this one (parallel-friendly).
  void Merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Five-number summary plus mean, as used by the paper's boxplots.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
};

/// \brief Returns the q-quantile (q in [0,1]) of `values` using linear
/// interpolation between order statistics. `values` need not be sorted.
double Quantile(std::vector<double> values, double q);

/// \brief Computes the full Summary of `values`.
Summary Summarize(const std::vector<double>& values);

}  // namespace fkde

#endif  // FKDE_COMMON_STATS_H_
