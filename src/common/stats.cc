#include "common/stats.h"

#include <algorithm>

#include "common/logging.h"

namespace fkde {

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * n2 / (n1 + n2);
  m2_ += other.m2_ + delta * delta * n1 * n2 / (n1 + n2);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Quantile(std::vector<double> values, double q) {
  FKDE_CHECK(!values.empty());
  FKDE_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  RunningStats rs;
  for (double v : values) rs.Add(v);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = rs.min();
  s.max = rs.max();
  s.p25 = Quantile(values, 0.25);
  s.median = Quantile(values, 0.5);
  s.p75 = Quantile(values, 0.75);
  return s;
}

}  // namespace fkde
