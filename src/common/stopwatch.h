/// \file stopwatch.h
/// \brief Wall-clock timing helper for the benchmark harness.

#ifndef FKDE_COMMON_STOPWATCH_H_
#define FKDE_COMMON_STOPWATCH_H_

#include <chrono>

namespace fkde {

/// \brief Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Microseconds elapsed since construction or the last Reset().
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fkde

#endif  // FKDE_COMMON_STOPWATCH_H_
