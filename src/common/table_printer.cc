#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace fkde {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  FKDE_CHECK(rows_.empty());
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  FKDE_CHECK_MSG(row.size() == header_.size(),
                 "row arity does not match header");
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

void TablePrinter::PrintTable(std::FILE* out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(width[c]), row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  std::size_t total = header_.size() > 0 ? 2 * (header_.size() - 1) : 0;
  for (std::size_t w : width) total += w;
  std::string rule(total, '-');
  std::fprintf(out, "%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", c == 0 ? "" : ",", row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace fkde
