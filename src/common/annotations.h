/// \file annotations.h
/// \brief Source annotations consumed by both the compiler and fkde-lint.
///
/// `FKDE_HOT` marks a function as being on the per-point kernel hot
/// path: it is called O(sample_size) times per estimate (the fused
/// contribution loops, the loss evaluations inside batch kernels).
/// Two consumers:
///
///   * the compiler: `[[gnu::hot]]` biases inlining and code layout;
///   * fkde-lint: the `hot-alloc` check forbids heap allocation
///     (new/malloc/allocating containers) inside FKDE_HOT bodies and
///     kernel lambdas — scratch must come from Device::AcquireScratch.
///
/// Keep the annotation on both the declaration and the definition: the
/// linter models one translation unit at a time.

#ifndef FKDE_COMMON_ANNOTATIONS_H_
#define FKDE_COMMON_ANNOTATIONS_H_

#if defined(__GNUC__) || defined(__clang__)
#define FKDE_HOT [[gnu::hot]]
#else
#define FKDE_HOT
#endif

#endif  // FKDE_COMMON_ANNOTATIONS_H_
