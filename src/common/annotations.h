/// \file annotations.h
/// \brief Source annotations consumed by both the compiler and fkde-lint.
///
/// `FKDE_HOT` marks a function as being on the per-point kernel hot
/// path: it is called O(sample_size) times per estimate (the fused
/// contribution loops, the loss evaluations inside batch kernels).
/// Two consumers:
///
///   * the compiler: `[[gnu::hot]]` biases inlining and code layout;
///   * fkde-lint: the `hot-alloc` check forbids heap allocation
///     (new/malloc/allocating containers) inside FKDE_HOT bodies and
///     kernel lambdas — scratch must come from Device::AcquireScratch.
///
/// Keep the annotation on both the declaration and the definition: the
/// linter models one translation unit at a time.
///
/// `FKDE_SNAPSHOT_EXCLUDE(reason)` exempts one persistent data member
/// of a snapshot-friend class (one declaring `friend class
/// ModelSnapshotAccess`) from fkde-lint's `snapshot-completeness`
/// check, which otherwise requires every such member to be written by
/// both the save and restore paths in snapshot.cc. Place it directly
/// before the member declaration with a string-literal reason:
///
///   FKDE_SNAPSHOT_EXCLUDE("borrowed pointer; caller re-supplies it")
///   const Table* table_;
///
/// It expands to nothing — the reason lives in the source, where the
/// next person deciding whether the member should persist will read it.

#ifndef FKDE_COMMON_ANNOTATIONS_H_
#define FKDE_COMMON_ANNOTATIONS_H_

#if defined(__GNUC__) || defined(__clang__)
#define FKDE_HOT [[gnu::hot]]
#else
#define FKDE_HOT
#endif

#define FKDE_SNAPSHOT_EXCLUDE(reason)

#endif  // FKDE_COMMON_ANNOTATIONS_H_
