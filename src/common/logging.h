/// \file logging.h
/// \brief Logging and invariant-check macros.
///
/// `FKDE_CHECK*` macros abort on violation in every build type and are meant
/// for cheap checks guarding memory safety or API contracts. `FKDE_DCHECK*`
/// compile away in NDEBUG builds and are meant for expensive internal
/// invariants.

#ifndef FKDE_COMMON_LOGGING_H_
#define FKDE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace fkde {
namespace internal {

/// Terminates the process after printing `file:line: msg` to stderr.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const std::string& msg) {
  std::fprintf(stderr, "%s:%d: check failed: %s %s\n", file, line, expr,
               msg.c_str());
  std::abort();
}

/// Stream-style message builder used by the CHECK macros.
class LogMessage {
 public:
  LogMessage(const char* level) { stream_ << "[" << level << "] "; }
  ~LogMessage() {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fkde

/// Unconditional stderr log line, e.g. `FKDE_LOG(INFO) << "built " << n;`.
#define FKDE_LOG(level) ::fkde::internal::LogMessage(#level)

#define FKDE_CHECK(cond)                                              \
  do {                                                                \
    if (!(cond))                                                      \
      ::fkde::internal::CheckFailed(__FILE__, __LINE__, #cond, "");   \
  } while (false)

#define FKDE_CHECK_MSG(cond, msg)                                      \
  do {                                                                 \
    if (!(cond))                                                       \
      ::fkde::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
  } while (false)

#define FKDE_CHECK_OK(expr)                                            \
  do {                                                                 \
    ::fkde::Status _fkde_chk = (expr);                                 \
    if (!_fkde_chk.ok())                                               \
      ::fkde::internal::CheckFailed(__FILE__, __LINE__, #expr,         \
                                    _fkde_chk.ToString());             \
  } while (false)

#ifdef NDEBUG
#define FKDE_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define FKDE_DCHECK(cond) FKDE_CHECK(cond)
#endif

#endif  // FKDE_COMMON_LOGGING_H_
