/// \file flags.h
/// \brief Minimal command-line flag parsing for examples and benchmarks.
///
/// Supports `--name=value`, `--name value`, and boolean `--name` /
/// `--no-name` forms. Unknown flags are an error so typos fail loudly.

#ifndef FKDE_COMMON_FLAGS_H_
#define FKDE_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace fkde {

/// \brief Declarative flag registry and parser.
///
/// Usage:
/// \code
///   FlagParser flags;
///   int64_t dims = 3;
///   bool csv = false;
///   flags.AddInt64("dims", &dims, "dataset dimensionality");
///   flags.AddBool("csv", &csv, "emit CSV instead of a table");
///   flags.Parse(argc, argv).AbortIfError("flag parsing");
/// \endcode
class FlagParser {
 public:
  /// Registers an int64 flag with a default taken from *target.
  void AddInt64(const std::string& name, std::int64_t* target,
                const std::string& help);
  /// Registers a double flag with a default taken from *target.
  void AddDouble(const std::string& name, double* target,
                 const std::string& help);
  /// Registers a string flag with a default taken from *target.
  void AddString(const std::string& name, std::string* target,
                 const std::string& help);
  /// Registers a bool flag; `--name` sets true, `--no-name` sets false.
  void AddBool(const std::string& name, bool* target, const std::string& help);

  /// Parses argv. Returns InvalidArgument on unknown flags or bad values.
  /// Positional (non-flag) arguments are collected into positional().
  Status Parse(int argc, char** argv);

  /// Non-flag arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders a usage/help string listing all registered flags.
  std::string Help() const;

 private:
  enum class Kind { kInt64, kDouble, kString, kBool };
  struct Entry {
    Kind kind;
    void* target;
    std::string help;
    std::string default_repr;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::map<std::string, Entry> entries_;
  std::vector<std::string> positional_;
};

}  // namespace fkde

#endif  // FKDE_COMMON_FLAGS_H_
