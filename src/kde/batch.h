/// \file batch.h
/// \brief Batch bandwidth optimization over query feedback (paper §3.3-3.4).
///
/// Solves optimization problem (5): pick the positive diagonal bandwidth
/// minimizing the average loss between the KDE estimate and the true
/// selectivity over a training workload. The objective and its gradient
/// (eq. 14 = loss derivative x estimator derivative eq. 17) are evaluated
/// on the device through `KdeEngine`; the numerical search mirrors the
/// paper's pipeline — a coarse MLSL-style global phase followed by
/// L-BFGS-B-style local refinement — using the solvers in src/opt/.
///
/// Following Appendix D, the search runs in log-bandwidth space by
/// default, which both enforces positivity and improved accuracy in 68%
/// of the paper's experiments.

#ifndef FKDE_KDE_BATCH_H_
#define FKDE_KDE_BATCH_H_

#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "kde/engine.h"
#include "kde/loss.h"
#include "opt/optimizer.h"
#include "workload/workload.h"

namespace fkde {

/// \brief Knobs for batch bandwidth optimization.
struct BatchOptions {
  LossType loss = LossType::kQuadratic;
  /// Smoothing constant for relative/Q losses.
  double lambda = 1e-5;
  /// Optimize log(h) instead of h (Appendix D).
  bool log_space = true;
  /// Per-dimension search bounds as multiples of the starting bandwidth.
  double min_factor = 1e-3;
  double max_factor = 1e3;
  LocalOptions local;
  GlobalOptions global;

  BatchOptions() {
    // The objective is an O(queries * sample) device pass per evaluation;
    // these budgets keep construction around a second at paper scale
    // (100 queries, 1K sample) while matching the paper's coarse-global +
    // local-refine recipe.
    local.max_iterations = 60;
    local.gradient_tolerance = 1e-7;
    local.f_tolerance = 1e-9;
    global.num_samples = 24;
    global.num_rounds = 1;
    global.starts_per_round = 2;
  }
};

/// \brief Result metadata of a batch optimization run.
struct BatchReport {
  double initial_error = 0.0;  ///< Mean training loss at the start.
  double final_error = 0.0;    ///< Mean training loss at the optimum.
  std::size_t evaluations = 0;
  bool converged = false;
};

/// Computes the mean loss of the engine's *current* bandwidth over a
/// workload (no optimization). Useful for reports and tests.
double MeanWorkloadLoss(KdeEngine* engine, std::span<const Query> workload,
                        LossType loss, double lambda = 1e-5);

/// Optimizes the engine's bandwidth over `training` queries and installs
/// the optimum into the engine. The engine's current bandwidth is the
/// starting point (Scott's rule in the paper's protocol). Returns
/// InvalidArgument for an empty training set.
Result<BatchReport> OptimizeBandwidthBatch(KdeEngine* engine,
                                           std::span<const Query> training,
                                           const BatchOptions& options,
                                           Rng* rng);

}  // namespace fkde

#endif  // FKDE_KDE_BATCH_H_
