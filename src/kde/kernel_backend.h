/// \file kernel_backend.h
/// \brief Pluggable execution backends for the fused KDE inner loops.
///
/// Every KDE hot path runs one of three fused per-point loops inside a
/// kernel body: the contribution kernel (eq. 13 product of per-dimension
/// CDF differences), the fused contribution+gradient kernel (eq. 17 via
/// prefix/suffix products), and the Scott moments kernel. This layer
/// provides those loops in two backends behind one call signature, so the
/// engine's `EnqueueLaunch` bodies are thin dispatchers:
///
///  * **scalar** — the seed's per-point loops over `kernel::CdfDiff*`,
///    reading the row-major (AoS) sample. With the per-(query, dim)
///    reciprocals hoisted by `kernel::HoistFactors` the math is
///    bitwise-identical to the pre-backend engine.
///  * **simd** — explicitly vectorized AVX2 loops reading a
///    structure-of-arrays (SoA) view of the shard (see
///    `DeviceSample::EnableSoaMirror`), so each lane load is a contiguous
///    per-dimension strip. 8-wide float lanes in `kFloat` precision with
///    the polynomial `ErfApproxF`/`ExpApproxF` math of kernels.h; 4-wide
///    double lanes in `kDouble` precision (the Gaussian double path calls
///    libm `erf`/`exp` per lane — there is no vector libm to lean on —
///    so it gains from the SoA strips and hoisting only, while the
///    Epanechnikov double path vectorizes fully).
///
/// ## Precision contract
///
/// The contribution/partial buffers are ALWAYS double and the segmented
/// reductions are untouched: float lane products are widened to double at
/// store. Consequences, pinned by kernel_backend_test:
///
///  * `kDouble` lanes produce estimates within 1e-12 (relative) of the
///    scalar backend — identical per-point math for the Gaussian; the
///    vectorized Epanechnikov may differ only by FMA-contraction rounding.
///  * `kFloat` lanes carry the polynomial-approximation error: each
///    Gaussian CDF-difference factor is within 1e-6 absolute (A&S 7.1.26
///    bound + float rounding), so a d-dimensional per-point contribution
///    is within ~d·1e-6 absolute and the averaged estimate within
///    `FloatPathEstimateTolerance(d)`.
///
/// ## Calibration
///
/// `CalibrateKernelBackends()` measures the raw per-element throughput of
/// the fused contribution loop under both backends (cached after the
/// first call) and installs the simd/scalar ratio via
/// `SetSimdThroughputRatio`, so `DeviceProfile::SimdCpu()` profiles
/// created afterwards model the cpu shard of `cpu-simd+gpu` topologies at
/// this machine's real vectorized throughput.

#ifndef FKDE_KDE_KERNEL_BACKEND_H_
#define FKDE_KDE_KERNEL_BACKEND_H_

#include <cstddef>

#include "common/annotations.h"
#include "kde/kernels.h"
#include "parallel/simd.h"

namespace fkde {
namespace kb {

/// Dimension ceiling of the fused loops' stack arrays; must match the
/// engine's kMaxDims (static_asserted in engine.cc).
inline constexpr std::size_t kMaxDims = 32;

/// \brief Everything a fused loop needs to read one shard: resolved
/// backend/precision, kernel type, and raw device pointers. Built per
/// shard per pass by the engine and captured by value into kernel bodies.
struct ShardKernelView {
  KernelBackend backend = KernelBackend::kScalar;
  KernelPrecision precision = KernelPrecision::kDouble;
  KernelType kernel = KernelType::kGaussian;
  std::size_t d = 0;
  /// Row-major sample storage (rows*d floats) — the scalar backend's
  /// input.
  const float* aos = nullptr;
  /// Dim-major SoA strips (`soa[j * soa_stride + i]`) — the simd
  /// backend's input; nullptr for scalar shards.
  const float* soa = nullptr;
  std::size_t soa_stride = 0;
  /// Device-resident diagonal bandwidth (d doubles).
  const double* h = nullptr;
  /// Per-point bandwidth scales (variable KDE), or nullptr. Scales defeat
  /// the per-query hoisting (h_eff = h_j * scale_i is per point) but both
  /// backends still vectorize/stream over them.
  const float* scales = nullptr;
};

/// Fused contribution loop over points [begin, end): writes the
/// d-dimensional product of CDF differences for query bounds `qb`
/// (layout l_0..l_{d-1}, u_0..u_{d-1}) into `contrib[i]`. Serves both the
/// single-query kernel and, called once per query of a tile, the batched
/// kernel.
FKDE_HOT void FusedContribution(const ShardKernelView& view,
                                const double* qb, double* contrib,
                                std::size_t begin, std::size_t end);

/// Fused contribution+gradient loop: additionally writes the per-dimension
/// gradient partial `prefix_j * dcdf_j * suffix_{j+1}` into
/// `partials[j * row_pitch + i]`. `row_pitch` is the segment pitch of the
/// downstream segmented reduction (the shard's current row count).
FKDE_HOT void FusedContributionGrad(const ShardKernelView& view,
                                    const double* qb, double* contrib,
                                    double* partials, std::size_t row_pitch,
                                    std::size_t begin, std::size_t end);

/// Scott moments loop: writes x into `out[(2j) * rows + i]` and x² into
/// `out[(2j+1) * rows + i]` for each dimension j. Always double math on
/// the widened float value (both precisions), so results are
/// backend-independent.
FKDE_HOT void Moments(const ShardKernelView& view, double* out,
                      std::size_t rows, std::size_t begin, std::size_t end);

/// Absolute tolerance of the float-precision estimate (mean of s
/// per-point contributions, each a product of d factors with ≤1e-6
/// absolute error on factors bounded by 1): d · 1e-6 plus slack for
/// accumulated float rounding. Pinned empirically by kernel_backend_test.
inline double FloatPathEstimateTolerance(std::size_t d) {
  return 2e-6 * static_cast<double>(d);
}

/// \brief Measured raw throughput of the fused contribution loop, in
/// point-attributes per second (the `ops_per_item` unit of the device
/// cost model).
struct BackendCalibration {
  double scalar_ops_per_sec = 0.0;
  double simd_ops_per_sec = 0.0;
  /// simd / scalar; 1.0 when the simd backend resolves to scalar (no
  /// AVX2 or `FKDE_KERNEL_BACKEND=scalar`).
  double ratio = 1.0;
};

/// Measures both backends once per process (Gaussian kernel, d=3,
/// thousands of points, single-threaded raw loops — no Device in the
/// way), caches the result, and installs the ratio into the parallel
/// layer via `SetSimdThroughputRatio`. Call before constructing
/// `DeviceProfile::SimdCpu()` devices whose modeled time should reflect
/// the measured CPU (the bench harness does this for `cpu-simd`
/// topologies).
const BackendCalibration& CalibrateKernelBackends();

/// Raw single-threaded throughput of one backend/precision combination
/// over `rows` synthetic points in `d` dimensions — the measurement
/// underlying both `CalibrateKernelBackends` and the backend_check bench.
/// Returns point-attributes per second.
double MeasureFusedContributionThroughput(KernelBackend backend,
                                          KernelPrecision precision,
                                          KernelType kernel, std::size_t rows,
                                          std::size_t d, int repetitions);

}  // namespace kb
}  // namespace fkde

#endif  // FKDE_KDE_KERNEL_BACKEND_H_
