#include "kde/reservoir.h"

#include <limits>

namespace fkde {

std::size_t ReservoirMaintainer::OnInsert(std::span<const double> row,
                                          std::size_t table_rows_after) {
  ++observed_;
  FKDE_CHECK(table_rows_after > 0);
  const std::size_t s = sample_->size();
  // Vitter's Algorithm R acceptance: probability s / |R|.
  const double p =
      static_cast<double>(s) / static_cast<double>(table_rows_after);
  if (!rng_->Bernoulli(std::min(p, 1.0))) {
    return std::numeric_limits<std::size_t>::max();
  }
  const std::size_t slot = rng_->UniformInt(static_cast<std::uint64_t>(s));
  sample_->ReplaceRow(slot, row);
  ++accepted_;
  return slot;
}

}  // namespace fkde
