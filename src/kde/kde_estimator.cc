#include "kde/kde_estimator.h"

#include <algorithm>
#include <cmath>

namespace fkde {

std::string KdeModeName(KdeSelectivityEstimator::Mode mode) {
  switch (mode) {
    case KdeSelectivityEstimator::Mode::kHeuristic:
      return "kde_heuristic";
    case KdeSelectivityEstimator::Mode::kScv:
      return "kde_scv";
    case KdeSelectivityEstimator::Mode::kBatch:
      return "kde_batch";
    case KdeSelectivityEstimator::Mode::kPeriodic:
      return "kde_periodic";
    case KdeSelectivityEstimator::Mode::kAdaptive:
      return "kde_adaptive";
  }
  return "kde_unknown";
}

KdeSelectivityEstimator::KdeSelectivityEstimator(Mode mode, Device* device,
                                                 const Table* table,
                                                 const KdeConfig& config)
    : mode_(mode), table_(table), config_(config), rng_(config.seed) {
  sample_ = std::make_unique<DeviceSample>(
      device, std::min(config.sample_size, table->num_rows()),
      table->num_cols());
}

Result<std::unique_ptr<KdeSelectivityEstimator>>
KdeSelectivityEstimator::Create(Mode mode, Device* device, const Table* table,
                                const KdeConfig& config,
                                std::span<const Query> training) {
  if (device == nullptr || table == nullptr) {
    return Status::InvalidArgument("device and table must be non-null");
  }
  if (table->empty()) {
    return Status::FailedPrecondition("cannot build a model on an empty table");
  }
  if (config.sample_size == 0) {
    return Status::InvalidArgument("sample_size must be positive");
  }

  std::unique_ptr<KdeSelectivityEstimator> est(
      new KdeSelectivityEstimator(mode, device, table, config));
  // ANALYZE step: draw the sample and push it to the device in one bulk
  // transfer; the engine then initializes the bandwidth via Scott's rule
  // computed on the device (Section 5.2).
  FKDE_RETURN_NOT_OK(est->sample_->LoadFromTable(*table, &est->rng_));
  est->engine_ =
      std::make_unique<KdeEngine>(est->sample_.get(), config.kernel);

  switch (mode) {
    case Mode::kHeuristic:
      break;  // Scott's rule is already installed.
    case Mode::kScv: {
      // Read the sample back once for the host-side SCV criterion.
      const std::size_t s = est->sample_->size();
      const std::size_t d = est->sample_->dims();
      std::vector<float> staging(s * d);
      device->CopyToHost(est->sample_->buffer(), 0, staging.size(),
                         staging.data());
      std::vector<double> host_sample(staging.begin(), staging.end());
      FKDE_ASSIGN_OR_RETURN(
          std::vector<double> bandwidth,
          ScvSelectBandwidth(host_sample, s, d, est->engine_->bandwidth(),
                             config.scv));
      FKDE_RETURN_NOT_OK(est->engine_->SetBandwidth(bandwidth));
      break;
    }
    case Mode::kBatch: {
      if (training.empty()) {
        return Status::InvalidArgument(
            "batch mode requires a training workload");
      }
      BatchOptions batch = config.batch;
      batch.loss = config.loss;
      batch.lambda = config.lambda;
      FKDE_ASSIGN_OR_RETURN(
          est->batch_report_,
          OptimizeBandwidthBatch(est->engine_.get(), training, batch,
                                 &est->rng_));
      break;
    }
    case Mode::kPeriodic: {
      if (config.feedback_window == 0 || config.reoptimize_every == 0) {
        return Status::InvalidArgument(
            "periodic mode needs a positive window and interval");
      }
      est->feedback_ring_.reserve(config.feedback_window);
      break;  // Scott start; the first re-optimization tunes it.
    }
    case Mode::kAdaptive: {
      est->adaptive_.emplace(table->num_cols(), config.adaptive);
      if (config.enable_karma) {
        // Karma keeps its own loss (relative-scale by default) — see
        // KarmaOptions::loss. The bandwidth loss is independent.
        est->karma_.emplace(est->engine_.get(), config.karma);
      }
      if (config.enable_reservoir) {
        est->reservoir_.emplace(est->sample_.get(), &est->rng_);
      }
      break;
    }
  }
  return est;
}

std::string KdeSelectivityEstimator::name() const {
  return KdeModeName(mode_);
}

double KdeSelectivityEstimator::EstimateSelectivity(const Box& box) {
  // All modes answer with the plain estimate pass. The adaptive variant
  // no longer computes a per-query gradient here: gradients for a whole
  // mini-batch are produced later by one batched device pass, hidden
  // behind query execution (Section 5.5, batched).
  const double estimate = engine_->Estimate(box);
  last_box_ = box;
  has_last_box_ = true;
  return std::clamp(estimate, 0.0, 1.0);
}

void KdeSelectivityEstimator::ObserveTrueSelectivity(const Box& box,
                                                     double selectivity) {
  if (mode_ == Mode::kPeriodic) {
    // Section 3.4 deployment: remember the last q queries in a ring
    // buffer and periodically re-solve optimization problem (5) over
    // them, starting from the current bandwidth.
    Query query;
    query.box = box;
    query.selectivity = selectivity;
    if (feedback_ring_.size() < config_.feedback_window) {
      feedback_ring_.push_back(std::move(query));
    } else {
      feedback_ring_[ring_next_] = std::move(query);
      ring_next_ = (ring_next_ + 1) % config_.feedback_window;
    }
    ++feedback_since_optimize_;
    if (feedback_since_optimize_ >= config_.reoptimize_every &&
        feedback_ring_.size() >= config_.reoptimize_every) {
      feedback_since_optimize_ = 0;
      BatchOptions batch = config_.batch;
      batch.loss = config_.loss;
      batch.lambda = config_.lambda;
      FKDE_CHECK_OK(
          OptimizeBandwidthBatch(engine_.get(), feedback_ring_, batch, &rng_)
              .status());
      ++reoptimizations_;
    }
    return;
  }
  if (mode_ != Mode::kAdaptive) return;

  // Out-of-order feedback (a box we did not just estimate): recompute the
  // estimate so the retained contributions Karma reuses below match `box`.
  if (!has_last_box_ || !(box == last_box_)) {
    engine_->Estimate(box);
    last_box_ = box;
    has_last_box_ = true;
  }

  // Buffer the feedback; when the mini-batch is full, ONE overlapped
  // batched pass computes the mean loss gradient over all N queries —
  // the device-side fold of eq. (14) — and feeds it to RMSprop. The
  // bandwidth is constant within the mini-batch, so this matches the
  // per-query gradient accumulation of Listing 1.
  pending_boxes_.push_back(box);
  pending_truths_.push_back(selectivity);
  if (pending_boxes_.size() >= config_.adaptive.mini_batch) {
    std::vector<double> mean_grad;
    engine_->EstimateBatchLoss(pending_boxes_, pending_truths_, config_.loss,
                               config_.lambda, &mean_grad,
                               /*overlapped=*/true);
    pending_boxes_.clear();
    pending_truths_.clear();
    std::vector<double> bandwidth = engine_->bandwidth();
    adaptive_->ObserveMiniBatch(mean_grad, &bandwidth);
    FKDE_CHECK_OK(engine_->SetBandwidth(bandwidth));
  }

  // Karma maintenance (Section 5.6) reuses the retained contributions.
  if (karma_.has_value() && table_ != nullptr && !table_->empty()) {
    const std::vector<std::size_t> slots = karma_->Update(box, selectivity);
    for (std::size_t slot : slots) {
      const std::size_t row = table_->RandomRowIndex(&rng_);
      sample_->ReplaceRow(slot, table_->Row(row));
      karma_->ResetSlot(slot);
      ++karma_replacements_;
    }
  }
}

void KdeSelectivityEstimator::OnInsert(std::span<const double> row,
                                       std::size_t table_rows_after) {
  if (mode_ != Mode::kAdaptive || !reservoir_.has_value()) return;
  const std::size_t slot = reservoir_->OnInsert(row, table_rows_after);
  if (slot != std::numeric_limits<std::size_t>::max() &&
      karma_.has_value()) {
    karma_->ResetSlot(slot);
  }
}

std::size_t KdeSelectivityEstimator::ModelBytes() const {
  std::size_t bytes = engine_->ModelBytes();
  if (karma_.has_value()) {
    bytes += sample_->size() * sizeof(double) + (sample_->size() + 7) / 8;
  }
  return bytes;
}

}  // namespace fkde
