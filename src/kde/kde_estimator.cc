#include "kde/kde_estimator.h"

#include <algorithm>
#include <cmath>

namespace fkde {

std::string KdeModeName(KdeSelectivityEstimator::Mode mode) {
  switch (mode) {
    case KdeSelectivityEstimator::Mode::kHeuristic:
      return "kde_heuristic";
    case KdeSelectivityEstimator::Mode::kScv:
      return "kde_scv";
    case KdeSelectivityEstimator::Mode::kBatch:
      return "kde_batch";
    case KdeSelectivityEstimator::Mode::kPeriodic:
      return "kde_periodic";
    case KdeSelectivityEstimator::Mode::kAdaptive:
      return "kde_adaptive";
  }
  return "kde_unknown";
}

KdeSelectivityEstimator::KdeSelectivityEstimator(Mode mode,
                                                 const Table* table,
                                                 const KdeConfig& config)
    : mode_(mode), table_(table), config_(config), rng_(config.seed) {}

Result<std::unique_ptr<KdeSelectivityEstimator>>
KdeSelectivityEstimator::Create(Mode mode, Device* device, const Table* table,
                                const KdeConfig& config,
                                std::span<const Query> training) {
  if (device == nullptr || table == nullptr) {
    return Status::InvalidArgument("device and table must be non-null");
  }
  if (table->empty()) {
    return Status::FailedPrecondition("cannot build a model on an empty table");
  }
  if (config.sample_size == 0) {
    return Status::InvalidArgument("sample_size must be positive");
  }
  std::unique_ptr<KdeSelectivityEstimator> est(
      new KdeSelectivityEstimator(mode, table, config));
  est->sample_ = std::make_unique<DeviceSample>(
      device, std::min(config.sample_size, table->num_rows()),
      table->num_cols());
  return CreateCommon(std::move(est), table, config, training);
}

Result<std::unique_ptr<KdeSelectivityEstimator>>
KdeSelectivityEstimator::Create(Mode mode, DeviceGroup* group,
                                const Table* table, const KdeConfig& config,
                                std::span<const Query> training) {
  if (group == nullptr || table == nullptr) {
    return Status::InvalidArgument("group and table must be non-null");
  }
  if (table->empty()) {
    return Status::FailedPrecondition("cannot build a model on an empty table");
  }
  if (config.sample_size == 0) {
    return Status::InvalidArgument("sample_size must be positive");
  }
  std::unique_ptr<KdeSelectivityEstimator> est(
      new KdeSelectivityEstimator(mode, table, config));
  est->sample_ = std::make_unique<DeviceSample>(
      group, std::min(config.sample_size, table->num_rows()),
      table->num_cols());
  return CreateCommon(std::move(est), table, config, training);
}

Result<std::unique_ptr<KdeSelectivityEstimator>>
KdeSelectivityEstimator::CreateCommon(
    std::unique_ptr<KdeSelectivityEstimator> est, const Table* table,
    const KdeConfig& config, std::span<const Query> training) {
  const Mode mode = est->mode_;
  // ANALYZE step: draw the sample and push it to the device in one bulk
  // transfer per shard; the engine then initializes the bandwidth via
  // Scott's rule computed on the device (Section 5.2).
  FKDE_RETURN_NOT_OK(est->sample_->LoadFromTable(*table, &est->rng_));
  est->engine_ =
      std::make_unique<KdeEngine>(est->sample_.get(), config.kernel);

  switch (mode) {
    case Mode::kHeuristic:
      break;  // Scott's rule is already installed.
    case Mode::kScv: {
      // Read the sample back once (one transfer per shard) for the
      // host-side SCV criterion.
      const std::size_t s = est->sample_->size();
      const std::size_t d = est->sample_->dims();
      const std::vector<double> host_sample = est->sample_->GatherRows();
      FKDE_ASSIGN_OR_RETURN(
          std::vector<double> bandwidth,
          ScvSelectBandwidth(host_sample, s, d, est->engine_->bandwidth(),
                             config.scv));
      FKDE_RETURN_NOT_OK(est->engine_->SetBandwidth(bandwidth));
      break;
    }
    case Mode::kBatch: {
      if (training.empty()) {
        return Status::InvalidArgument(
            "batch mode requires a training workload");
      }
      BatchOptions batch = config.batch;
      batch.loss = config.loss;
      batch.lambda = config.lambda;
      FKDE_ASSIGN_OR_RETURN(
          est->batch_report_,
          OptimizeBandwidthBatch(est->engine_.get(), training, batch,
                                 &est->rng_));
      break;
    }
    case Mode::kPeriodic: {
      if (config.feedback_window == 0 || config.reoptimize_every == 0) {
        return Status::InvalidArgument(
            "periodic mode needs a positive window and interval");
      }
      est->feedback_ring_.reserve(config.feedback_window);
      break;  // Scott start; the first re-optimization tunes it.
    }
    case Mode::kAdaptive: {
      est->adaptive_.emplace(table->num_cols(), config.adaptive);
      if (config.enable_karma) {
        // Karma keeps its own loss (relative-scale by default) — see
        // KarmaOptions::loss. The bandwidth loss is independent.
        est->karma_.emplace(est->engine_.get(), config.karma);
      }
      if (config.enable_reservoir) {
        est->reservoir_.emplace(est->sample_.get(), &est->rng_);
      }
      break;
    }
  }
  return est;
}

std::string KdeSelectivityEstimator::name() const {
  return KdeModeName(mode_);
}

double KdeSelectivityEstimator::EstimateSelectivity(const Box& box) {
  // All modes answer with the plain estimate pass; only it is on the
  // optimizer's critical path.
  const double estimate = engine_->Estimate(box);
  last_box_ = box;
  has_last_box_ = true;
  if (mode_ == Mode::kAdaptive && adaptive_.has_value()) {
    // Section 5.5, steps 5-6: the gradient pass for this query is
    // enqueued now and crunches while the database executes the query;
    // ObserveTrueSelectivity collects it when the feedback arrives. A
    // query that never gets feedback leaves a pending pass that the next
    // estimate's EnqueueGradient simply supersedes.
    engine_->EnqueueGradient();
  }
  return std::clamp(estimate, 0.0, 1.0);
}

void KdeSelectivityEstimator::ObserveTrueSelectivity(const Box& box,
                                                     double selectivity) {
  if (mode_ == Mode::kPeriodic) {
    ObservePeriodicFeedback(box, selectivity);
    return;
  }
  if (mode_ != Mode::kAdaptive) return;

  // Out-of-order feedback (a box we did not just estimate, or a second
  // feedback for the same box): recompute the estimate and re-enqueue the
  // gradient so both the pending pass and the retained contributions
  // Karma reuses below match `box`. This exceptional path pays the full
  // gradient cost inline.
  if (!has_last_box_ || !(box == last_box_) || !engine_->gradient_pending()) {
    engine_->Estimate(box);
    last_box_ = box;
    has_last_box_ = true;
    engine_->EnqueueGradient();
  }

  // Listing 1: collect the gradient pass enqueued at estimate time — by
  // now it has been hidden behind the query's execution — chain it with
  // ∂L/∂p̂ (eq. 14) and feed the per-query loss gradient to RMSprop.
  std::vector<double> est_grad;
  engine_->CollectGradient(&est_grad);
  const double dl_dp = LossDerivative(config_.loss, engine_->last_estimate(),
                                      selectivity, config_.lambda);
  for (double& g : est_grad) g *= dl_dp;
  std::vector<double> bandwidth = engine_->bandwidth();
  if (adaptive_->Observe(est_grad, &bandwidth)) {
    FKDE_CHECK_OK(engine_->SetBandwidth(bandwidth));
  }

  // Karma maintenance (Section 5.6): first collect the pass enqueued at
  // the PREVIOUS feedback — it ran while this query executed — and
  // replace the sample points it flagged (one d-float row upload each).
  // A quiesce (snapshot/eviction) may already have collected the pass
  // into pending_karma_slots_; either way the replacements apply here.
  if (karma_.has_value() && table_ != nullptr && !table_->empty()) {
    if (karma_->update_pending()) {
      const std::vector<std::size_t> slots = karma_->CollectPending();
      pending_karma_slots_.insert(pending_karma_slots_.end(), slots.begin(),
                                  slots.end());
    }
    ApplyPendingKarma();
    // Then enqueue the scoring pass for THIS query's feedback; it reuses
    // the retained contributions and runs while the database processes
    // the next statement.
    karma_->EnqueueUpdate(box, selectivity);
  }
}

void KdeSelectivityEstimator::ObservePeriodicFeedback(const Box& box,
                                                      double selectivity) {
  // Section 3.4 deployment: remember the last q queries in a ring
  // buffer and periodically re-solve optimization problem (5) over
  // them, starting from the current bandwidth.
  Query query;
  query.box = box;
  query.selectivity = selectivity;
  if (feedback_ring_.size() < config_.feedback_window) {
    feedback_ring_.push_back(std::move(query));
  } else {
    feedback_ring_[ring_next_] = std::move(query);
    ring_next_ = (ring_next_ + 1) % config_.feedback_window;
  }
  ++feedback_since_optimize_;
  if (feedback_since_optimize_ >= config_.reoptimize_every &&
      feedback_ring_.size() >= config_.reoptimize_every) {
    feedback_since_optimize_ = 0;
    BatchOptions batch = config_.batch;
    batch.loss = config_.loss;
    batch.lambda = config_.lambda;
    FKDE_CHECK_OK(
        OptimizeBandwidthBatch(engine_.get(), feedback_ring_, batch, &rng_)
            .status());
    ++reoptimizations_;
  }
}

Status KdeSelectivityEstimator::EnableStreaming(std::size_t depth) {
  if (depth == 0) {
    return Status::InvalidArgument("streaming depth must be >= 1");
  }
  FKDE_CHECK_MSG(tickets_.empty(), "cannot resize an active stream");
  // Fold classic-path pending state (an enqueued gradient, a pending
  // Karma pass) into host state so slot 0 starts the stream clean.
  Quiesce();
  FKDE_RETURN_NOT_OK(engine_->EnableStreaming(depth));
  stream_depth_ = depth;
  // Ticket ids are session-local: they restart at 0 for every streaming
  // session. Carrying the counter across sessions made it hidden
  // persistent state — a restored model would hand out different ids
  // than the original, breaking streamed replay equivalence.
  next_ticket_ = 0;
  return Status::OK();
}

void KdeSelectivityEstimator::DisableStreaming() {
  FKDE_CHECK_MSG(tickets_.empty(),
                 "disable requires all streamed tickets retired");
  if (stream_depth_ == 0) return;
  engine_->DisableStreaming();
  stream_depth_ = 0;
}

std::uint64_t KdeSelectivityEstimator::StreamBegin(const Box& box) {
  FKDE_CHECK_MSG(stream_depth_ > 0, "streaming not enabled");
  FKDE_CHECK_MSG(tickets_.size() < stream_depth_,
                 "admission window full: deliver feedback first");
  StreamTicket ticket;
  ticket.id = next_ticket_++;
  ticket.slot = static_cast<std::size_t>(ticket.id % stream_depth_);
  ticket.box = box;
  engine_->BeginEstimateSlot(box, ticket.slot);
  if (mode_ == Mode::kAdaptive && adaptive_.has_value()) {
    // Pipeline the gradient right behind the estimate chain: it crunches
    // while later queries stream in and is collected at feedback time.
    engine_->EnqueueGradientSlot(ticket.slot);
  }
  tickets_.push_back(std::move(ticket));
  return tickets_.back().id;
}

double KdeSelectivityEstimator::StreamDeliver(std::uint64_t ticket) {
  FKDE_CHECK_MSG(!tickets_.empty(), "no in-flight tickets");
  StreamTicket& front = tickets_.front();
  FKDE_CHECK_MSG(front.id == ticket, "tickets deliver FIFO");
  FKDE_CHECK_MSG(!front.delivered, "ticket already delivered");
  front.raw_estimate = engine_->FinishEstimateSlot(front.slot);
  front.delivered = true;
  return std::clamp(front.raw_estimate, 0.0, 1.0);
}

void KdeSelectivityEstimator::StreamRetire(std::uint64_t ticket) {
  FKDE_CHECK_MSG(!tickets_.empty(), "no in-flight tickets");
  FKDE_CHECK_MSG(tickets_.front().id == ticket, "tickets retire FIFO");
  FKDE_CHECK_MSG(tickets_.front().delivered, "retire before delivery");
  tickets_.pop_front();
}

void KdeSelectivityEstimator::StreamFeedback(std::uint64_t ticket,
                                             double selectivity) {
  FKDE_CHECK_MSG(!tickets_.empty(), "no in-flight tickets");
  const StreamTicket front = tickets_.front();
  FKDE_CHECK_MSG(front.id == ticket, "tickets retire FIFO");
  FKDE_CHECK_MSG(front.delivered, "feedback before delivery");
  tickets_.pop_front();
  if (mode_ == Mode::kPeriodic) {
    ObservePeriodicFeedback(front.box, selectivity);
    return;
  }
  if (mode_ != Mode::kAdaptive) return;

  // The same Listing-1 feedback cycle as ObserveTrueSelectivity, keyed to
  // the ticket's slot: collect ITS pipelined gradient, chain ∂L/∂p̂ from
  // ITS raw estimate, step RMSprop.
  std::vector<double> est_grad;
  engine_->CollectGradientSlot(front.slot, &est_grad);
  const double dl_dp = LossDerivative(config_.loss, front.raw_estimate,
                                      selectivity, config_.lambda);
  for (double& g : est_grad) g *= dl_dp;
  std::vector<double> bandwidth = engine_->bandwidth();
  if (adaptive_->Observe(est_grad, &bandwidth)) {
    FKDE_CHECK_OK(engine_->SetBandwidth(bandwidth));
  }

  // Karma (Section 5.6), one query late exactly as the classic path:
  // collect the pass enqueued at the previous ticket's feedback, apply
  // its replacements, then point the feedback context at THIS ticket's
  // slot so the new scoring pass reads the contributions and estimate of
  // the query the feedback belongs to.
  if (karma_.has_value() && table_ != nullptr && !table_->empty()) {
    if (karma_->update_pending()) {
      const std::vector<std::size_t> slots = karma_->CollectPending();
      pending_karma_slots_.insert(pending_karma_slots_.end(), slots.begin(),
                                  slots.end());
    }
    ApplyPendingKarma();
    engine_->SetFeedbackContext(front.slot, front.raw_estimate);
    karma_->EnqueueUpdate(front.box, selectivity);
  }
}

void KdeSelectivityEstimator::ApplyPendingKarma() {
  for (std::size_t slot : pending_karma_slots_) {
    const std::size_t row = table_->RandomRowIndex(&rng_);
    sample_->ReplaceRow(slot, table_->Row(row));
    karma_->ResetSlot(slot);
    ++karma_replacements_;
  }
  pending_karma_slots_.clear();
}

void KdeSelectivityEstimator::Quiesce() {
  // Streamed tickets cannot be folded into host state: their slots hold
  // estimates the client has not seen yet. The serving layer retires the
  // stream before snapshotting or evicting a model.
  FKDE_CHECK_MSG(tickets_.empty(), "quiesce with streamed tickets in flight");
  if (engine_->gradient_pending()) {
    // The pass belongs to last_box_; dropping it is safe because clearing
    // has_last_box_ below routes the next feedback through the recompute
    // path, which reproduces the same gradient bitwise (the pass is a
    // deterministic function of sample, bandwidth and box).
    std::vector<double> discarded;
    engine_->CollectGradient(&discarded);
  }
  if (karma_.has_value() && karma_->update_pending()) {
    const std::vector<std::size_t> slots = karma_->CollectPending();
    pending_karma_slots_.insert(pending_karma_slots_.end(), slots.begin(),
                                slots.end());
  }
  has_last_box_ = false;
}

void KdeSelectivityEstimator::OnInsert(std::span<const double> row,
                                       std::size_t table_rows_after) {
  if (mode_ != Mode::kAdaptive || !reservoir_.has_value()) return;
  const std::size_t slot = reservoir_->OnInsert(row, table_rows_after);
  if (slot != std::numeric_limits<std::size_t>::max() &&
      karma_.has_value()) {
    karma_->ResetSlot(slot);
  }
}

std::size_t KdeSelectivityEstimator::ModelBytes() const {
  std::size_t bytes = engine_->ModelBytes();
  if (karma_.has_value()) {
    bytes += sample_->size() * sizeof(double) + (sample_->size() + 7) / 8;
  }
  return bytes;
}

}  // namespace fkde
