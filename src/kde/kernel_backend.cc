#include "kde/kernel_backend.h"

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "parallel/device.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define FKDE_KB_X86 1
#endif

namespace fkde {
namespace kb {

namespace {

// ---------------------------------------------------------------------------
// Scalar backend: the seed's per-point loops with the per-(query, dim)
// reciprocals hoisted out of the point loop. Bitwise-identical to the
// pre-backend engine (the hoisted reciprocal is computed by the same
// expression the unhoisted kernel evaluated per point).

void ScalarContribution(const ShardKernelView& v, const double* qb,
                        double* contrib, std::size_t begin, std::size_t end) {
  const std::size_t d = v.d;
  kernel::HoistedFactors f[kMaxDims];
  if (v.scales == nullptr) {
    for (std::size_t j = 0; j < d; ++j) {
      f[j] = kernel::HoistFactors(v.kernel, v.h[j]);
    }
  }
  for (std::size_t i = begin; i < end; ++i) {
    const float* row = v.aos + i * d;
    double prod = 1.0;
    if (v.scales == nullptr) {
      for (std::size_t j = 0; j < d; ++j) {
        prod *= kernel::CdfDiffHoisted(v.kernel, static_cast<double>(row[j]),
                                       f[j].inv_cdf, qb[j], qb[d + j]);
      }
    } else {
      // Per-point bandwidths defeat the hoist; same per-point expression
      // as the unhoisted CdfDiff, so still bitwise-identical to the seed.
      const double scale = static_cast<double>(v.scales[i]);
      for (std::size_t j = 0; j < d; ++j) {
        const double hj = v.h[j] * scale;
        const double inv = v.kernel == KernelType::kGaussian
                               ? kernel::kInvSqrt2 / hj
                               : 1.0 / hj;
        prod *= kernel::CdfDiffHoisted(v.kernel, static_cast<double>(row[j]),
                                       inv, qb[j], qb[d + j]);
      }
    }
    contrib[i] = prod;
  }
}

void ScalarContributionGrad(const ShardKernelView& v, const double* qb,
                            double* contrib, double* partials,
                            std::size_t pitch, std::size_t begin,
                            std::size_t end) {
  const std::size_t d = v.d;
  kernel::HoistedFactors f[kMaxDims];
  if (v.scales == nullptr) {
    for (std::size_t j = 0; j < d; ++j) {
      f[j] = kernel::HoistFactors(v.kernel, v.h[j]);
    }
  }
  double cdf[kMaxDims];
  double dcdf[kMaxDims];
  double suffix[kMaxDims + 1];
  for (std::size_t i = begin; i < end; ++i) {
    const float* row = v.aos + i * d;
    if (v.scales == nullptr) {
      for (std::size_t j = 0; j < d; ++j) {
        const double t = static_cast<double>(row[j]);
        cdf[j] = kernel::CdfDiffHoisted(v.kernel, t, f[j].inv_cdf, qb[j],
                                        qb[d + j]);
        dcdf[j] = kernel::CdfDiffDhHoisted(v.kernel, t, f[j].inv_dh, qb[j],
                                           qb[d + j]);
      }
    } else {
      const double scale = static_cast<double>(v.scales[i]);
      for (std::size_t j = 0; j < d; ++j) {
        const double t = static_cast<double>(row[j]);
        const kernel::HoistedFactors fj =
            kernel::HoistFactors(v.kernel, v.h[j] * scale);
        cdf[j] = kernel::CdfDiffHoisted(v.kernel, t, fj.inv_cdf, qb[j],
                                        qb[d + j]);
        // Chain rule for the variable model: d/dh_j K(.; h_j * s_i)
        // = s_i * K'(.; h_j * s_i).
        dcdf[j] = scale * kernel::CdfDiffDhHoisted(v.kernel, t, fj.inv_dh,
                                                   qb[j], qb[d + j]);
      }
    }
    suffix[d] = 1.0;
    for (std::size_t j = d; j-- > 0;) suffix[j] = suffix[j + 1] * cdf[j];
    contrib[i] = suffix[0];
    double prefix = 1.0;
    for (std::size_t j = 0; j < d; ++j) {
      partials[j * pitch + i] = prefix * dcdf[j] * suffix[j + 1];
      prefix *= cdf[j];
    }
  }
}

void ScalarMoments(const ShardKernelView& v, double* out, std::size_t rows,
                   std::size_t begin, std::size_t end) {
  const std::size_t d = v.d;
  for (std::size_t i = begin; i < end; ++i) {
    const float* row = v.aos + i * d;
    for (std::size_t dim = 0; dim < d; ++dim) {
      const double val = static_cast<double>(row[dim]);
      out[(2 * dim) * rows + i] = val;
      out[(2 * dim + 1) * rows + i] = val * val;
    }
  }
}

// ---------------------------------------------------------------------------
// SIMD backend, double precision. There is no vector libm to lean on for
// erf/exp, so the Gaussian double path keeps scalar libm per point and
// gains from the hoisting and the contiguous SoA strips only (bitwise
// equal to the scalar backend); the Epanechnikov double path (pure
// polynomial) vectorizes 4-wide below.

void ContributionDoubleSoa(const ShardKernelView& v, const double* qb,
                           double* contrib, std::size_t begin,
                           std::size_t end) {
  const std::size_t d = v.d;
  const std::size_t stride = v.soa_stride;
  kernel::HoistedFactors f[kMaxDims];
  if (v.scales == nullptr) {
    for (std::size_t j = 0; j < d; ++j) {
      f[j] = kernel::HoistFactors(v.kernel, v.h[j]);
    }
  }
  for (std::size_t i = begin; i < end; ++i) {
    double prod = 1.0;
    if (v.scales == nullptr) {
      for (std::size_t j = 0; j < d; ++j) {
        const double t = static_cast<double>(v.soa[j * stride + i]);
        prod *= kernel::CdfDiffHoisted(v.kernel, t, f[j].inv_cdf, qb[j],
                                       qb[d + j]);
      }
    } else {
      const double scale = static_cast<double>(v.scales[i]);
      for (std::size_t j = 0; j < d; ++j) {
        const double t = static_cast<double>(v.soa[j * stride + i]);
        const double hj = v.h[j] * scale;
        const double inv = v.kernel == KernelType::kGaussian
                               ? kernel::kInvSqrt2 / hj
                               : 1.0 / hj;
        prod *= kernel::CdfDiffHoisted(v.kernel, t, inv, qb[j], qb[d + j]);
      }
    }
    contrib[i] = prod;
  }
}

void ContributionGradDoubleSoa(const ShardKernelView& v, const double* qb,
                               double* contrib, double* partials,
                               std::size_t pitch, std::size_t begin,
                               std::size_t end) {
  const std::size_t d = v.d;
  const std::size_t stride = v.soa_stride;
  kernel::HoistedFactors f[kMaxDims];
  if (v.scales == nullptr) {
    for (std::size_t j = 0; j < d; ++j) {
      f[j] = kernel::HoistFactors(v.kernel, v.h[j]);
    }
  }
  double cdf[kMaxDims];
  double dcdf[kMaxDims];
  double suffix[kMaxDims + 1];
  for (std::size_t i = begin; i < end; ++i) {
    if (v.scales == nullptr) {
      for (std::size_t j = 0; j < d; ++j) {
        const double t = static_cast<double>(v.soa[j * stride + i]);
        cdf[j] = kernel::CdfDiffHoisted(v.kernel, t, f[j].inv_cdf, qb[j],
                                        qb[d + j]);
        dcdf[j] = kernel::CdfDiffDhHoisted(v.kernel, t, f[j].inv_dh, qb[j],
                                           qb[d + j]);
      }
    } else {
      const double scale = static_cast<double>(v.scales[i]);
      for (std::size_t j = 0; j < d; ++j) {
        const double t = static_cast<double>(v.soa[j * stride + i]);
        const kernel::HoistedFactors fj =
            kernel::HoistFactors(v.kernel, v.h[j] * scale);
        cdf[j] = kernel::CdfDiffHoisted(v.kernel, t, fj.inv_cdf, qb[j],
                                        qb[d + j]);
        dcdf[j] = scale * kernel::CdfDiffDhHoisted(v.kernel, t, fj.inv_dh,
                                                   qb[j], qb[d + j]);
      }
    }
    suffix[d] = 1.0;
    for (std::size_t j = d; j-- > 0;) suffix[j] = suffix[j + 1] * cdf[j];
    contrib[i] = suffix[0];
    double prefix = 1.0;
    for (std::size_t j = 0; j < d; ++j) {
      partials[j * pitch + i] = prefix * dcdf[j] * suffix[j + 1];
      prefix *= cdf[j];
    }
  }
}

/// Dim-major moments over the SoA strips: the loop reorder (dimension
/// outside, point inside) turns every load and store into a sequential
/// stream. Pure widen-then-double math, so results are bitwise equal to
/// the scalar backend in both precisions.
void MomentsSoa(const ShardKernelView& v, double* out, std::size_t rows,
                std::size_t begin, std::size_t end) {
  const std::size_t d = v.d;
  for (std::size_t dim = 0; dim < d; ++dim) {
    const float* strip = v.soa + dim * v.soa_stride;
    double* first = out + (2 * dim) * rows;
    double* second = out + (2 * dim + 1) * rows;
    for (std::size_t i = begin; i < end; ++i) {
      const double val = static_cast<double>(strip[i]);
      first[i] = val;
      second[i] = val * val;
    }
  }
}

#if defined(FKDE_KB_X86)

// ---------------------------------------------------------------------------
// AVX2 lane math. All functions below are compiled for avx2+fma at
// function granularity (the translation unit itself builds with the
// project's baseline flags) and are only reached behind a
// `CpuSupportsSimd()` runtime check.

/// 8-wide mirror of kernel::ExpApproxF (same constants, same operation
/// order up to FMA contraction).
__attribute__((target("avx2,fma"))) inline __m256 ExpV8(__m256 x) {
  x = _mm256_min_ps(_mm256_max_ps(x, _mm256_set1_ps(-87.3f)),
                    _mm256_set1_ps(88.7f));
  const __m256 n = _mm256_floor_ps(_mm256_fmadd_ps(
      _mm256_set1_ps(1.44269504088896341f), x, _mm256_set1_ps(0.5f)));
  __m256 r = _mm256_fnmadd_ps(n, _mm256_set1_ps(0.693359375f), x);
  r = _mm256_fnmadd_ps(n, _mm256_set1_ps(-2.12194440e-4f), r);
  const __m256 r2 = _mm256_mul_ps(r, r);
  __m256 p = _mm256_set1_ps(1.9875691500e-4f);
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.3981999507e-3f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(8.3334519073e-3f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(4.1665795894e-2f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.6666665459e-1f));
  p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(5.0000001201e-1f));
  const __m256 y =
      _mm256_fmadd_ps(p, r2, _mm256_add_ps(r, _mm256_set1_ps(1.0f)));
  const __m256i exp_bits = _mm256_slli_epi32(
      _mm256_add_epi32(_mm256_cvtps_epi32(n), _mm256_set1_epi32(127)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(exp_bits));
}

/// 8-wide mirror of kernel::ErfApproxF (A&S 7.1.26 with odd extension).
__attribute__((target("avx2,fma"))) inline __m256 ErfV8(__m256 x) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0f);
  const __m256 sign = _mm256_and_ps(x, sign_mask);
  const __m256 ax = _mm256_andnot_ps(sign_mask, x);
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 s = _mm256_div_ps(
      one, _mm256_fmadd_ps(_mm256_set1_ps(0.3275911f), ax, one));
  __m256 poly = _mm256_set1_ps(1.061405429f);
  poly = _mm256_fmadd_ps(poly, s, _mm256_set1_ps(-1.453152027f));
  poly = _mm256_fmadd_ps(poly, s, _mm256_set1_ps(1.421413741f));
  poly = _mm256_fmadd_ps(poly, s, _mm256_set1_ps(-0.284496736f));
  poly = _mm256_fmadd_ps(poly, s, _mm256_set1_ps(0.254829592f));
  const __m256 e = ExpV8(_mm256_xor_ps(_mm256_mul_ps(ax, ax), sign_mask));
  const __m256 y = _mm256_fnmadd_ps(_mm256_mul_ps(poly, s), e, one);
  // erf(|x|) >= 0, so restoring the argument's sign bit is the odd
  // extension.
  return _mm256_or_ps(y, sign);
}

/// 8-wide Epanechnikov CDF: clamping z to [-1, 1] BEFORE the polynomial
/// is branchless and exact at the support boundaries (the polynomial
/// evaluates to exactly 0 at z=-1 and 1 at z=1 in float arithmetic), so
/// it matches the branching scalar mirror.
__attribute__((target("avx2,fma"))) inline __m256 EpaCdfV8(__m256 z) {
  const __m256 one = _mm256_set1_ps(1.0f);
  z = _mm256_min_ps(_mm256_max_ps(z, _mm256_set1_ps(-1.0f)), one);
  const __m256 z3 = _mm256_mul_ps(_mm256_mul_ps(z, z), z);
  const __m256 t = _mm256_sub_ps(
      _mm256_fmadd_ps(_mm256_set1_ps(3.0f), z, _mm256_set1_ps(2.0f)), z3);
  return _mm256_mul_ps(_mm256_set1_ps(0.25f), t);
}

__attribute__((target("avx2,fma"))) inline __m256 CdfDiffV8(
    KernelType kernel, __m256 t, __m256 inv, __m256 lo, __m256 hi) {
  const __m256 zu = _mm256_mul_ps(_mm256_sub_ps(hi, t), inv);
  const __m256 zl = _mm256_mul_ps(_mm256_sub_ps(lo, t), inv);
  if (kernel == KernelType::kGaussian) {
    return _mm256_mul_ps(_mm256_set1_ps(0.5f),
                         _mm256_sub_ps(ErfV8(zu), ErfV8(zl)));
  }
  return _mm256_sub_ps(EpaCdfV8(zu), EpaCdfV8(zl));
}

/// 8-wide mirror of kernel::GaussianCdfDiffDhF over the hoisted 1/h².
__attribute__((target("avx2,fma"))) inline __m256 DcdfGaussV8(__m256 t,
                                                              __m256 inv_h2,
                                                              __m256 lo,
                                                              __m256 hi) {
  const __m256 dl = _mm256_sub_ps(lo, t);
  const __m256 du = _mm256_sub_ps(hi, t);
  const __m256 mhalf = _mm256_set1_ps(-0.5f);
  const __m256 el = ExpV8(
      _mm256_mul_ps(mhalf, _mm256_mul_ps(_mm256_mul_ps(dl, dl), inv_h2)));
  const __m256 eu = ExpV8(
      _mm256_mul_ps(mhalf, _mm256_mul_ps(_mm256_mul_ps(du, du), inv_h2)));
  const __m256 diff =
      _mm256_fmsub_ps(dl, el, _mm256_mul_ps(du, eu));
  return _mm256_mul_ps(
      _mm256_mul_ps(_mm256_set1_ps(0.3989422804014327f), inv_h2), diff);
}

/// 8-wide mirror of kernel::EpanechnikovCdfDiffDhF over the hoisted 1/h.
/// The density mask is max(0, 0.75(1-z²)) — negative outside the support
/// and exactly zero at its edge, matching the branching scalar mirror.
__attribute__((target("avx2,fma"))) inline __m256 DcdfEpaV8(__m256 t,
                                                            __m256 inv,
                                                            __m256 lo,
                                                            __m256 hi) {
  const __m256 zl = _mm256_mul_ps(_mm256_sub_ps(lo, t), inv);
  const __m256 zu = _mm256_mul_ps(_mm256_sub_ps(hi, t), inv);
  const __m256 zero = _mm256_setzero_ps();
  const __m256 c = _mm256_set1_ps(0.75f);
  const __m256 kl = _mm256_max_ps(
      zero, _mm256_mul_ps(c, _mm256_fnmadd_ps(zl, zl, _mm256_set1_ps(1.0f))));
  const __m256 ku = _mm256_max_ps(
      zero, _mm256_mul_ps(c, _mm256_fnmadd_ps(zu, zu, _mm256_set1_ps(1.0f))));
  return _mm256_mul_ps(
      _mm256_fmsub_ps(zl, kl, _mm256_mul_ps(zu, ku)), inv);
}

/// Widens an 8-float lane to two 4-double stores.
__attribute__((target("avx2,fma"))) inline void StoreWide8(__m256 lane,
                                                           double* out) {
  _mm256_storeu_pd(out, _mm256_cvtps_pd(_mm256_castps256_ps128(lane)));
  _mm256_storeu_pd(out + 4, _mm256_cvtps_pd(_mm256_extractf128_ps(lane, 1)));
}

/// Float-precision fused contribution: 8-wide lanes over the SoA strips,
/// scalar float mirrors (same math) on the remainder tail, double
/// accumulation at store.
__attribute__((target("avx2,fma"))) void ContributionFloatAvx2(
    const ShardKernelView& v, const double* qb, double* contrib,
    std::size_t begin, std::size_t end) {
  const std::size_t d = v.d;
  const std::size_t stride = v.soa_stride;
  float inv_f[kMaxDims];
  float lo_f[kMaxDims];
  float hi_f[kMaxDims];
  for (std::size_t j = 0; j < d; ++j) {
    const double h = v.h[j];
    inv_f[j] = static_cast<float>(
        v.kernel == KernelType::kGaussian ? kernel::kInvSqrt2 / h : 1.0 / h);
    lo_f[j] = static_cast<float>(qb[j]);
    hi_f[j] = static_cast<float>(qb[d + j]);
  }
  std::size_t i = begin;
  const __m256 one = _mm256_set1_ps(1.0f);
  for (; i + 8 <= end; i += 8) {
    __m256 rcp = one;
    if (v.scales != nullptr) {
      rcp = _mm256_div_ps(one, _mm256_loadu_ps(v.scales + i));
    }
    __m256 prod = one;
    for (std::size_t j = 0; j < d; ++j) {
      const __m256 t = _mm256_loadu_ps(v.soa + j * stride + i);
      __m256 inv = _mm256_set1_ps(inv_f[j]);
      if (v.scales != nullptr) inv = _mm256_mul_ps(inv, rcp);
      prod = _mm256_mul_ps(prod, CdfDiffV8(v.kernel, t, inv,
                                           _mm256_set1_ps(lo_f[j]),
                                           _mm256_set1_ps(hi_f[j])));
    }
    StoreWide8(prod, contrib + i);
  }
  for (; i < end; ++i) {
    const float rcp = v.scales != nullptr ? 1.0f / v.scales[i] : 1.0f;
    float prod = 1.0f;
    for (std::size_t j = 0; j < d; ++j) {
      const float t = v.soa[j * stride + i];
      const float inv = v.scales != nullptr ? inv_f[j] * rcp : inv_f[j];
      prod *= kernel::CdfDiffHoistedF(v.kernel, t, inv, lo_f[j], hi_f[j]);
    }
    contrib[i] = static_cast<double>(prod);
  }
}

/// Float-precision fused contribution+gradient: per-dimension lane
/// registers for cdf/dcdf, float prefix/suffix products, widened stores.
__attribute__((target("avx2,fma"))) void ContributionGradFloatAvx2(
    const ShardKernelView& v, const double* qb, double* contrib,
    double* partials, std::size_t pitch, std::size_t begin, std::size_t end) {
  const std::size_t d = v.d;
  const std::size_t stride = v.soa_stride;
  const bool gaussian = v.kernel == KernelType::kGaussian;
  float inv_f[kMaxDims];
  float inv_dh_f[kMaxDims];
  float lo_f[kMaxDims];
  float hi_f[kMaxDims];
  for (std::size_t j = 0; j < d; ++j) {
    const double h = v.h[j];
    if (gaussian) {
      inv_f[j] = static_cast<float>(kernel::kInvSqrt2 / h);
      inv_dh_f[j] = static_cast<float>(1.0 / (h * h));
    } else {
      inv_f[j] = static_cast<float>(1.0 / h);
      inv_dh_f[j] = inv_f[j];
    }
    lo_f[j] = static_cast<float>(qb[j]);
    hi_f[j] = static_cast<float>(qb[d + j]);
  }
  const __m256 one = _mm256_set1_ps(1.0f);
  __m256 cdf[kMaxDims];
  __m256 dcdf[kMaxDims];
  __m256 suffix[kMaxDims + 1];
  std::size_t i = begin;
  for (; i + 8 <= end; i += 8) {
    __m256 sc = one;
    __m256 rcp = one;
    __m256 rcp_dh = one;
    if (v.scales != nullptr) {
      sc = _mm256_loadu_ps(v.scales + i);
      rcp = _mm256_div_ps(one, sc);
      rcp_dh = gaussian ? _mm256_mul_ps(rcp, rcp) : rcp;
    }
    for (std::size_t j = 0; j < d; ++j) {
      const __m256 t = _mm256_loadu_ps(v.soa + j * stride + i);
      __m256 inv = _mm256_set1_ps(inv_f[j]);
      __m256 inv_dh = _mm256_set1_ps(inv_dh_f[j]);
      if (v.scales != nullptr) {
        inv = _mm256_mul_ps(inv, rcp);
        inv_dh = _mm256_mul_ps(inv_dh, rcp_dh);
      }
      const __m256 lo = _mm256_set1_ps(lo_f[j]);
      const __m256 hi = _mm256_set1_ps(hi_f[j]);
      cdf[j] = CdfDiffV8(v.kernel, t, inv, lo, hi);
      __m256 dc = gaussian ? DcdfGaussV8(t, inv_dh, lo, hi)
                           : DcdfEpaV8(t, inv_dh, lo, hi);
      // Chain rule for the variable model (see the scalar backend).
      if (v.scales != nullptr) dc = _mm256_mul_ps(dc, sc);
      dcdf[j] = dc;
    }
    suffix[d] = one;
    for (std::size_t j = d; j-- > 0;) {
      suffix[j] = _mm256_mul_ps(suffix[j + 1], cdf[j]);
    }
    StoreWide8(suffix[0], contrib + i);
    __m256 prefix = one;
    for (std::size_t j = 0; j < d; ++j) {
      StoreWide8(
          _mm256_mul_ps(_mm256_mul_ps(prefix, dcdf[j]), suffix[j + 1]),
          partials + j * pitch + i);
      prefix = _mm256_mul_ps(prefix, cdf[j]);
    }
  }
  // Remainder tail: scalar float mirrors of the lane math.
  float cdf_s[kMaxDims];
  float dcdf_s[kMaxDims];
  float suffix_s[kMaxDims + 1];
  for (; i < end; ++i) {
    const float sc = v.scales != nullptr ? v.scales[i] : 1.0f;
    const float rcp = v.scales != nullptr ? 1.0f / sc : 1.0f;
    const float rcp_dh =
        v.scales != nullptr ? (gaussian ? rcp * rcp : rcp) : 1.0f;
    for (std::size_t j = 0; j < d; ++j) {
      const float t = v.soa[j * stride + i];
      const float inv = v.scales != nullptr ? inv_f[j] * rcp : inv_f[j];
      const float inv_dh =
          v.scales != nullptr ? inv_dh_f[j] * rcp_dh : inv_dh_f[j];
      cdf_s[j] = kernel::CdfDiffHoistedF(v.kernel, t, inv, lo_f[j], hi_f[j]);
      float dc =
          kernel::CdfDiffDhHoistedF(v.kernel, t, inv_dh, lo_f[j], hi_f[j]);
      if (v.scales != nullptr) dc *= sc;
      dcdf_s[j] = dc;
    }
    suffix_s[d] = 1.0f;
    for (std::size_t j = d; j-- > 0;) {
      suffix_s[j] = suffix_s[j + 1] * cdf_s[j];
    }
    contrib[i] = static_cast<double>(suffix_s[0]);
    float prefix = 1.0f;
    for (std::size_t j = 0; j < d; ++j) {
      partials[j * pitch + i] =
          static_cast<double>(prefix * dcdf_s[j] * suffix_s[j + 1]);
      prefix *= cdf_s[j];
    }
  }
}

/// 4-wide double Epanechnikov CDF (see EpaCdfV8 for the branchless-clamp
/// argument; it is exact at the boundaries in double too).
__attribute__((target("avx2,fma"))) inline __m256d EpaCdfV4(__m256d z) {
  const __m256d one = _mm256_set1_pd(1.0);
  z = _mm256_min_pd(_mm256_max_pd(z, _mm256_set1_pd(-1.0)), one);
  const __m256d z3 = _mm256_mul_pd(_mm256_mul_pd(z, z), z);
  const __m256d t = _mm256_sub_pd(
      _mm256_fmadd_pd(_mm256_set1_pd(3.0), z, _mm256_set1_pd(2.0)), z3);
  return _mm256_mul_pd(_mm256_set1_pd(0.25), t);
}

/// Double-precision Epanechnikov fused contribution: 4-wide lanes (the
/// only fully vectorizable double kernel — pure polynomial), scalar
/// double tail. Within FMA-contraction rounding of the scalar backend.
__attribute__((target("avx2,fma"))) void ContributionEpaDoubleAvx2(
    const ShardKernelView& v, const double* qb, double* contrib,
    std::size_t begin, std::size_t end) {
  const std::size_t d = v.d;
  const std::size_t stride = v.soa_stride;
  double inv_d[kMaxDims];
  for (std::size_t j = 0; j < d; ++j) inv_d[j] = 1.0 / v.h[j];
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    __m256d rcp = one;
    if (v.scales != nullptr) {
      rcp = _mm256_div_pd(one,
                          _mm256_cvtps_pd(_mm_loadu_ps(v.scales + i)));
    }
    __m256d prod = one;
    for (std::size_t j = 0; j < d; ++j) {
      const __m256d t =
          _mm256_cvtps_pd(_mm_loadu_ps(v.soa + j * stride + i));
      __m256d inv = _mm256_set1_pd(inv_d[j]);
      if (v.scales != nullptr) inv = _mm256_mul_pd(inv, rcp);
      const __m256d zu = _mm256_mul_pd(
          _mm256_sub_pd(_mm256_set1_pd(qb[d + j]), t), inv);
      const __m256d zl =
          _mm256_mul_pd(_mm256_sub_pd(_mm256_set1_pd(qb[j]), t), inv);
      prod = _mm256_mul_pd(prod, _mm256_sub_pd(EpaCdfV4(zu), EpaCdfV4(zl)));
    }
    _mm256_storeu_pd(contrib + i, prod);
  }
  if (i < end) {
    ShardKernelView tail = v;
    ContributionDoubleSoa(tail, qb, contrib, i, end);
  }
}

#endif  // FKDE_KB_X86

}  // namespace

FKDE_HOT void FusedContribution(const ShardKernelView& view,
                                const double* qb, double* contrib,
                                std::size_t begin, std::size_t end) {
  if (view.backend == KernelBackend::kSimd && view.soa != nullptr) {
#if defined(FKDE_KB_X86)
    if (CpuSupportsSimd()) {
      if (view.precision == KernelPrecision::kFloat) {
        ContributionFloatAvx2(view, qb, contrib, begin, end);
        return;
      }
      if (view.kernel == KernelType::kEpanechnikov) {
        ContributionEpaDoubleAvx2(view, qb, contrib, begin, end);
        return;
      }
    }
#endif
    // Gaussian double lanes (or no AVX2): hoisted scalar math over the
    // SoA strips.
    ContributionDoubleSoa(view, qb, contrib, begin, end);
    return;
  }
  ScalarContribution(view, qb, contrib, begin, end);
}

FKDE_HOT void FusedContributionGrad(const ShardKernelView& view,
                                    const double* qb, double* contrib,
                                    double* partials, std::size_t row_pitch,
                                    std::size_t begin, std::size_t end) {
  if (view.backend == KernelBackend::kSimd && view.soa != nullptr) {
#if defined(FKDE_KB_X86)
    if (CpuSupportsSimd() && view.precision == KernelPrecision::kFloat) {
      ContributionGradFloatAvx2(view, qb, contrib, partials, row_pitch,
                                begin, end);
      return;
    }
#endif
    ContributionGradDoubleSoa(view, qb, contrib, partials, row_pitch, begin,
                              end);
    return;
  }
  ScalarContributionGrad(view, qb, contrib, partials, row_pitch, begin, end);
}

FKDE_HOT void Moments(const ShardKernelView& view, double* out,
                      std::size_t rows, std::size_t begin,
                      std::size_t end) {
  if (view.backend == KernelBackend::kSimd && view.soa != nullptr) {
    MomentsSoa(view, out, rows, begin, end);
    return;
  }
  ScalarMoments(view, out, rows, begin, end);
}

double MeasureFusedContributionThroughput(KernelBackend backend,
                                          KernelPrecision precision,
                                          KernelType kernel, std::size_t rows,
                                          std::size_t d, int repetitions) {
  FKDE_CHECK(rows > 0 && d > 0 && d <= kMaxDims && repetitions > 0);
  // Deterministic synthetic sample in [0, 1): an LCG avoids dragging RNG
  // dependencies into this layer.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next_unit = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<double>(state >> 11) *
           (1.0 / 9007199254740992.0);
  };
  std::vector<float> aos(rows * d);
  for (float& x : aos) x = static_cast<float>(next_unit());
  std::vector<float> soa(rows * d);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < d; ++j) soa[j * rows + i] = aos[i * d + j];
  }
  std::vector<double> h(d, 0.12);
  std::vector<double> qb(2 * d);
  for (std::size_t j = 0; j < d; ++j) {
    qb[j] = 0.2;
    qb[d + j] = 0.7;
  }
  std::vector<double> contrib(rows, 0.0);

  ShardKernelView view;
  view.backend = ResolveKernelBackend(backend);
  view.precision = ResolveKernelPrecision(precision);
  view.kernel = kernel;
  view.d = d;
  view.aos = aos.data();
  view.soa = soa.data();
  view.soa_stride = rows;
  view.h = h.data();

  FusedContribution(view, qb.data(), contrib.data(), 0, rows);  // Warm-up.
  const auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < repetitions; ++rep) {
    FusedContribution(view, qb.data(), contrib.data(), 0, rows);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const double ops = static_cast<double>(repetitions) *
                     static_cast<double>(rows) * static_cast<double>(d);
  return ops / std::max(seconds, 1e-9);
}

const BackendCalibration& CalibrateKernelBackends() {
  static const BackendCalibration calibration = [] {
    BackendCalibration c;
    constexpr std::size_t kRows = 1 << 16;
    constexpr std::size_t kDims = 3;
    constexpr int kReps = 3;
    c.scalar_ops_per_sec = MeasureFusedContributionThroughput(
        KernelBackend::kScalar, KernelPrecision::kDouble,
        KernelType::kGaussian, kRows, kDims, kReps);
    c.simd_ops_per_sec = MeasureFusedContributionThroughput(
        KernelBackend::kSimd, KernelPrecision::kFloat, KernelType::kGaussian,
        kRows, kDims, kReps);
    c.ratio = c.scalar_ops_per_sec > 0.0
                  ? c.simd_ops_per_sec / c.scalar_ops_per_sec
                  : 1.0;
    // When the simd request resolves to scalar (no AVX2, or forced via
    // FKDE_KERNEL_BACKEND=scalar) the two measurements raced the same
    // loop; pin the ratio to exactly 1 so the cost model stays the seed's.
    if (ResolveKernelBackend(KernelBackend::kSimd) ==
        KernelBackend::kScalar) {
      c.ratio = 1.0;
    }
    SetSimdThroughputRatio(c.ratio);
    return c;
  }();
  return calibration;
}

}  // namespace kb
}  // namespace fkde
