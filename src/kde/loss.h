/// \file loss.h
/// \brief Loss functions for bandwidth optimization (paper Appendix C.1).
///
/// The bandwidth gradient factors as dL/dh_i = (dL/dp̂) * (dp̂/dh_i)
/// (eq. 14). This file supplies L and dL/dp̂ for every error metric the
/// paper lists; the estimator supplies dp̂/dh_i. Swapping the loss swaps
/// which metric the model optimization minimizes.

#ifndef FKDE_KDE_LOSS_H_
#define FKDE_KDE_LOSS_H_

#include <cmath>
#include <string>

#include "common/annotations.h"
#include "common/status.h"

namespace fkde {

/// Error metrics from Appendix C.1.
enum class LossType {
  kQuadratic,        ///< (p̂ - p)^2
  kAbsolute,         ///< |p̂ - p|
  kRelative,         ///< |p̂ - p| / (lambda + p)
  kSquaredRelative,  ///< ((p̂ - p) / (lambda + p))^2
  kSquaredQ,         ///< (log(lambda + p̂) - log(lambda + p))^2
};

/// Parses "quadratic"/"l2", "absolute"/"l1", "relative",
/// "squared_relative", "squared_q"/"q" (case-insensitive).
Result<LossType> ParseLossName(const std::string& name);
const char* LossName(LossType type);

/// \brief Loss evaluation. `lambda` is the small positive smoothing
/// constant preventing divisions by zero in the relative/Q metrics.
FKDE_HOT double EvaluateLoss(LossType type, double estimate, double truth,
                             double lambda = 1e-5);

/// \brief dL/dp̂ at (estimate, truth) — the first factor of eq. (14).
FKDE_HOT double LossDerivative(LossType type, double estimate, double truth,
                               double lambda = 1e-5);

}  // namespace fkde

#endif  // FKDE_KDE_LOSS_H_
