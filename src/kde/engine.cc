#include "kde/engine.h"

#include <cmath>

namespace fkde {

KdeEngine::KdeEngine(DeviceSample* sample, KernelType kernel)
    : sample_(sample), kernel_(kernel) {
  FKDE_CHECK(sample != nullptr);
  FKDE_CHECK_MSG(!sample->empty(), "engine requires a loaded sample");
  FKDE_CHECK_MSG(sample->dims() <= kMaxDims, "dims beyond engine limit");
  Device* dev = sample_->device();
  bandwidth_dev_ = dev->CreateBuffer<double>(sample_->dims());
  bounds_dev_ = dev->CreateBuffer<double>(2 * sample_->dims());
  contributions_ = dev->CreateBuffer<double>(sample_->capacity());
  grad_partials_ =
      dev->CreateBuffer<double>(sample_->dims() * sample_->capacity());
  point_scales_ = dev->CreateBuffer<float>(sample_->capacity());
  FKDE_CHECK_OK(SetBandwidth(ComputeScottBandwidth()));
}

Status KdeEngine::SetBandwidth(std::span<const double> bandwidth) {
  if (bandwidth.size() != dims()) {
    return Status::InvalidArgument("bandwidth arity mismatch");
  }
  for (double h : bandwidth) {
    if (!(h > 0.0) || !std::isfinite(h)) {
      return Status::InvalidArgument("bandwidth entries must be positive");
    }
  }
  bandwidth_.assign(bandwidth.begin(), bandwidth.end());
  device()->CopyToDevice(bandwidth_.data(), bandwidth_.size(),
                         &bandwidth_dev_);
  return Status::OK();
}

Status KdeEngine::SetPointScales(std::span<const double> scales) {
  if (scales.size() != sample_size()) {
    return Status::InvalidArgument("point scale arity mismatch");
  }
  std::vector<float> staging(scales.size());
  for (std::size_t i = 0; i < scales.size(); ++i) {
    if (!(scales[i] > 0.0) || !std::isfinite(scales[i])) {
      return Status::InvalidArgument("point scales must be positive");
    }
    staging[i] = static_cast<float>(scales[i]);
  }
  device()->CopyToDevice(staging.data(), staging.size(), &point_scales_);
  has_scales_ = true;
  return Status::OK();
}

std::vector<double> KdeEngine::ComputeScottBandwidth() {
  const std::size_t s = sample_size();
  const std::size_t d = dims();
  Device* dev = device();
  const float* data = sample_->buffer().device_data();

  // One kernel per dimension fills contributions_ with x, reduce; then
  // with x^2, reduce; sigma^2 = E[x^2] - E[x]^2 (Section 5.2).
  std::vector<double> bandwidth(d);
  const double factor =
      std::pow(static_cast<double>(s), -1.0 / (static_cast<double>(d) + 4.0));
  for (std::size_t dim = 0; dim < d; ++dim) {
    double* out = contributions_.device_data();
    dev->Launch("scott_sum", s, 1.0,
                [data, out, dim, d](std::size_t begin, std::size_t end) {
                  for (std::size_t i = begin; i < end; ++i) {
                    out[i] = static_cast<double>(data[i * d + dim]);
                  }
                });
    const double sum = ReduceSum(dev, contributions_, 0, s);
    dev->Launch("scott_sum_squares", s, 1.0,
                [data, out, dim, d](std::size_t begin, std::size_t end) {
                  for (std::size_t i = begin; i < end; ++i) {
                    const double v = static_cast<double>(data[i * d + dim]);
                    out[i] = v * v;
                  }
                });
    const double sum_sq = ReduceSum(dev, contributions_, 0, s);
    const double mean = sum / static_cast<double>(s);
    const double variance =
        std::max(sum_sq / static_cast<double>(s) - mean * mean, 0.0);
    double sigma = std::sqrt(variance);
    // Degenerate attribute (all sampled values equal): fall back to a
    // tiny positive bandwidth so the estimator stays well-defined.
    if (sigma <= 0.0) sigma = 1e-6 * std::max(std::abs(mean), 1.0);
    bandwidth[dim] = factor * sigma;
  }
  return bandwidth;
}

void KdeEngine::UploadBounds(const Box& box) {
  FKDE_CHECK_MSG(box.dims() == dims(), "query dims mismatch");
  double staging[2 * kMaxDims];
  for (std::size_t j = 0; j < dims(); ++j) {
    staging[j] = box.lower(j);
    staging[dims() + j] = box.upper(j);
  }
  device()->CopyToDevice(staging, 2 * dims(), &bounds_dev_);
}

double KdeEngine::Estimate(const Box& box) {
  UploadBounds(box);
  const std::size_t s = sample_size();
  const std::size_t d = dims();
  const float* data = sample_->buffer().device_data();
  const double* bounds = bounds_dev_.device_data();
  const double* h = bandwidth_dev_.device_data();
  double* contrib = contributions_.device_data();
  const KernelType kernel = kernel_;
  const float* scales = has_scales_ ? point_scales_.device_data() : nullptr;

  // Figure 3, step 2: one work item per sample point computes the
  // closed-form contribution (13) as a product over dimensions. With the
  // variable-KDE extension, point i smooths with h_j * scales[i].
  device()->Launch(
      "kde_contributions", s, static_cast<double>(d),
      [=](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          double prod = 1.0;
          const float* row = data + i * d;
          const double scale =
              scales ? static_cast<double>(scales[i]) : 1.0;
          for (std::size_t j = 0; j < d; ++j) {
            prod *= kernel::CdfDiff(kernel, static_cast<double>(row[j]),
                                    h[j] * scale, bounds[j], bounds[d + j]);
          }
          contrib[i] = prod;
        }
      });

  // Step 3: binary-tree reduction; step 4: scalar back to the host.
  const double total = ReduceSum(device(), contributions_, 0, s);
  last_estimate_ = total / static_cast<double>(s);
  return last_estimate_;
}

double KdeEngine::EstimateWithGradient(const Box& box,
                                       std::vector<double>* gradient,
                                       bool overlapped) {
  UploadBounds(box);
  const std::size_t s = sample_size();
  const std::size_t d = dims();
  const float* data = sample_->buffer().device_data();
  const double* bounds = bounds_dev_.device_data();
  const double* h = bandwidth_dev_.device_data();
  double* contrib = contributions_.device_data();
  double* partials = grad_partials_.device_data();
  const KernelType kernel = kernel_;
  const float* scales = has_scales_ ? point_scales_.device_data() : nullptr;

  // Fused kernel: per sample point, the per-dimension CDF differences and
  // their h-derivatives give both the contribution (13) and, via
  // prefix/suffix products (avoiding division by near-zero factors), the
  // per-dimension gradient terms of eq. (17). The gradient part is the
  // work the paper hides behind query execution (Section 5.5).
  auto body = [=](std::size_t begin, std::size_t end) {
    double cdf[kMaxDims];
    double dcdf[kMaxDims];
    double suffix[kMaxDims + 1];
    for (std::size_t i = begin; i < end; ++i) {
      const float* row = data + i * d;
      const double scale = scales ? static_cast<double>(scales[i]) : 1.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double t = static_cast<double>(row[j]);
        const double hj = h[j] * scale;
        cdf[j] = kernel::CdfDiff(kernel, t, hj, bounds[j], bounds[d + j]);
        // Chain rule for the variable model: d/dh_j K(.; h_j * s_i)
        // = s_i * K'(.; h_j * s_i).
        dcdf[j] =
            scale *
            kernel::CdfDiffDh(kernel, t, hj, bounds[j], bounds[d + j]);
      }
      suffix[d] = 1.0;
      for (std::size_t j = d; j-- > 0;) suffix[j] = suffix[j + 1] * cdf[j];
      contrib[i] = suffix[0];
      double prefix = 1.0;
      for (std::size_t j = 0; j < d; ++j) {
        partials[j * s + i] = prefix * dcdf[j] * suffix[j + 1];
        prefix *= cdf[j];
      }
    }
  };
  // The estimate part of the fused kernel is always charged — the query
  // optimizer blocks on it. Only the *extra* gradient work (the other
  // ~2/3 of the ops) is hidden behind query execution when overlapped
  // (Section 5.5): charging d ops/item models exactly the estimate cost.
  device()->Launch("kde_contributions_grad", s,
                   (overlapped ? 1.0 : 3.0) * static_cast<double>(d), body);

  // The estimate reduction is also on the critical path.
  const double total =
      ReduceSum(device(), contributions_, 0, s, /*overlapped=*/false);
  last_estimate_ = total / static_cast<double>(s);

  gradient->resize(d);
  for (std::size_t j = 0; j < d; ++j) {
    (*gradient)[j] =
        ReduceSum(device(), grad_partials_, j * s, s, overlapped) /
        static_cast<double>(s);
  }
  return last_estimate_;
}

std::size_t KdeEngine::ModelBytes() const {
  return sample_->PayloadBytes() + bandwidth_.size() * sizeof(double) +
         sample_size() * sizeof(double);
}

}  // namespace fkde
