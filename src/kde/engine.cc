#include "kde/engine.h"

#include <algorithm>
#include <cmath>

namespace fkde {

KdeEngine::KdeEngine(DeviceSample* sample, KernelType kernel)
    : sample_(sample), kernel_(kernel) {
  FKDE_CHECK(sample != nullptr);
  FKDE_CHECK_MSG(!sample->empty(), "engine requires a loaded sample");
  FKDE_CHECK_MSG(sample->dims() <= kMaxDims, "dims beyond engine limit");
  Device* dev = sample_->device();
  bandwidth_dev_ = dev->CreateBuffer<double>(sample_->dims());
  bounds_dev_ = dev->CreateBuffer<double>(2 * sample_->dims());
  contributions_ = dev->CreateBuffer<double>(sample_->capacity());
  grad_partials_ =
      dev->CreateBuffer<double>(sample_->dims() * sample_->capacity());
  grad_sums_ = dev->CreateBuffer<double>(sample_->dims());
  point_scales_ = dev->CreateBuffer<float>(sample_->capacity());
  // Sized once so enqueued gradient read-backs never race a reallocation.
  grad_staging_.resize(sample_->dims());
  FKDE_CHECK_OK(SetBandwidth(ComputeScottBandwidth()));
}

KdeEngine::~KdeEngine() {
  // Commands enqueued through this engine capture pointers into its
  // device buffers; drain them before the buffers go away.
  device()->default_queue()->Finish();
}

Status KdeEngine::SetBandwidth(std::span<const double> bandwidth) {
  if (bandwidth.size() != dims()) {
    return Status::InvalidArgument("bandwidth arity mismatch");
  }
  for (double h : bandwidth) {
    if (!(h > 0.0) || !std::isfinite(h)) {
      return Status::InvalidArgument("bandwidth entries must be positive");
    }
  }
  bandwidth_.assign(bandwidth.begin(), bandwidth.end());
  device()->CopyToDevice(bandwidth_.data(), bandwidth_.size(),
                         &bandwidth_dev_);
  return Status::OK();
}

Status KdeEngine::SetPointScales(std::span<const double> scales) {
  if (scales.size() != sample_size()) {
    return Status::InvalidArgument("point scale arity mismatch");
  }
  std::vector<float> staging(scales.size());
  for (std::size_t i = 0; i < scales.size(); ++i) {
    if (!(scales[i] > 0.0) || !std::isfinite(scales[i])) {
      return Status::InvalidArgument("point scales must be positive");
    }
    staging[i] = static_cast<float>(scales[i]);
  }
  device()->CopyToDevice(staging.data(), staging.size(), &point_scales_);
  has_scales_ = true;
  return Status::OK();
}

std::vector<double> KdeEngine::ComputeScottBandwidth() {
  const std::size_t s = sample_size();
  const std::size_t d = dims();
  Device* dev = device();
  const float* data = sample_->buffer().device_data();

  // One fused kernel fills 2d segments — x then x^2 per dimension — and
  // one segmented reduction yields all 2d sums in a single read-back;
  // sigma^2 = E[x^2] - E[x]^2 per dimension (Section 5.2). This replaces
  // the former 4d+ launches (per-dimension fill + reduce, twice) with a
  // launch count independent of d.
  DeviceBuffer<double> moments = dev->CreateBuffer<double>(2 * d * s);
  double* out = moments.device_data();
  dev->Launch("scott_moments", s, 2.0 * static_cast<double>(d),
              [data, out, d, s](std::size_t begin, std::size_t end) {
                for (std::size_t i = begin; i < end; ++i) {
                  const float* row = data + i * d;
                  for (std::size_t dim = 0; dim < d; ++dim) {
                    const double v = static_cast<double>(row[dim]);
                    out[(2 * dim) * s + i] = v;
                    out[(2 * dim + 1) * s + i] = v * v;
                  }
                }
              });
  DeviceBuffer<double> sums = dev->CreateBuffer<double>(2 * d);
  ReduceSumSegments(dev, moments, 0, s, 2 * d, &sums);
  std::vector<double> host_sums(2 * d);
  dev->CopyToHost(sums, 0, 2 * d, host_sums.data());

  std::vector<double> bandwidth(d);
  const double factor =
      std::pow(static_cast<double>(s), -1.0 / (static_cast<double>(d) + 4.0));
  for (std::size_t dim = 0; dim < d; ++dim) {
    const double sum = host_sums[2 * dim];
    const double sum_sq = host_sums[2 * dim + 1];
    const double mean = sum / static_cast<double>(s);
    const double variance =
        std::max(sum_sq / static_cast<double>(s) - mean * mean, 0.0);
    double sigma = std::sqrt(variance);
    // Degenerate attribute (all sampled values equal): fall back to a
    // tiny positive bandwidth so the estimator stays well-defined.
    if (sigma <= 0.0) sigma = 1e-6 * std::max(std::abs(mean), 1.0);
    bandwidth[dim] = factor * sigma;
  }
  return bandwidth;
}

void KdeEngine::UploadBounds(const Box& box) {
  FKDE_CHECK_MSG(box.dims() == dims(), "query dims mismatch");
  double staging[2 * kMaxDims];
  for (std::size_t j = 0; j < dims(); ++j) {
    staging[j] = box.lower(j);
    staging[dims() + j] = box.upper(j);
  }
  device()->CopyToDevice(staging, 2 * dims(), &bounds_dev_);
}

double KdeEngine::Estimate(const Box& box) {
  UploadBounds(box);
  const std::size_t s = sample_size();
  const std::size_t d = dims();
  const float* data = sample_->buffer().device_data();
  const double* bounds = bounds_dev_.device_data();
  const double* h = bandwidth_dev_.device_data();
  double* contrib = contributions_.device_data();
  const KernelType kernel = kernel_;
  const float* scales = has_scales_ ? point_scales_.device_data() : nullptr;

  // Figure 3, step 2: one work item per sample point computes the
  // closed-form contribution (13) as a product over dimensions. With the
  // variable-KDE extension, point i smooths with h_j * scales[i].
  device()->Launch(
      "kde_contributions", s, static_cast<double>(d),
      [=](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          double prod = 1.0;
          const float* row = data + i * d;
          const double scale =
              scales ? static_cast<double>(scales[i]) : 1.0;
          for (std::size_t j = 0; j < d; ++j) {
            prod *= kernel::CdfDiff(kernel, static_cast<double>(row[j]),
                                    h[j] * scale, bounds[j], bounds[d + j]);
          }
          contrib[i] = prod;
        }
      });

  // Step 3: binary-tree reduction; step 4: scalar back to the host.
  const double total = ReduceSum(device(), contributions_, 0, s);
  last_estimate_ = total / static_cast<double>(s);
  return last_estimate_;
}

void KdeEngine::EnqueueGradientPartialsKernel() {
  const std::size_t s = sample_size();
  const std::size_t d = dims();
  const float* data = sample_->buffer().device_data();
  const double* bounds = bounds_dev_.device_data();
  const double* h = bandwidth_dev_.device_data();
  double* contrib = contributions_.device_data();
  double* partials = grad_partials_.device_data();
  const KernelType kernel = kernel_;
  const float* scales = has_scales_ ? point_scales_.device_data() : nullptr;

  // Fused kernel: per sample point, the per-dimension CDF differences and
  // their h-derivatives give both the contribution (13) and, via
  // prefix/suffix products (avoiding division by near-zero factors), the
  // per-dimension gradient terms of eq. (17). Charged at its full 3d
  // ops/item; whether that cost reaches the host depends on who waits —
  // the synchronous path blocks on it, the enqueued path lets it run
  // while the database executes the query (Section 5.5).
  auto body = [=](std::size_t begin, std::size_t end) {
    double cdf[kMaxDims];
    double dcdf[kMaxDims];
    double suffix[kMaxDims + 1];
    for (std::size_t i = begin; i < end; ++i) {
      const float* row = data + i * d;
      const double scale = scales ? static_cast<double>(scales[i]) : 1.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double t = static_cast<double>(row[j]);
        const double hj = h[j] * scale;
        cdf[j] = kernel::CdfDiff(kernel, t, hj, bounds[j], bounds[d + j]);
        // Chain rule for the variable model: d/dh_j K(.; h_j * s_i)
        // = s_i * K'(.; h_j * s_i).
        dcdf[j] =
            scale *
            kernel::CdfDiffDh(kernel, t, hj, bounds[j], bounds[d + j]);
      }
      suffix[d] = 1.0;
      for (std::size_t j = d; j-- > 0;) suffix[j] = suffix[j + 1] * cdf[j];
      contrib[i] = suffix[0];
      double prefix = 1.0;
      for (std::size_t j = 0; j < d; ++j) {
        partials[j * s + i] = prefix * dcdf[j] * suffix[j + 1];
        prefix *= cdf[j];
      }
    }
  };
  device()->default_queue()->EnqueueLaunch(
      "kde_contributions_grad", s, 3.0 * static_cast<double>(d), body);
}

double KdeEngine::EstimateWithGradient(const Box& box,
                                       std::vector<double>* gradient) {
  UploadBounds(box);
  const std::size_t s = sample_size();
  const std::size_t d = dims();
  EnqueueGradientPartialsKernel();

  // The estimate reduction is on the critical path; its final read-back
  // drains the in-order queue, so the fused kernel's full cost lands on
  // the host timeline — this path hides nothing.
  const double total = ReduceSum(device(), contributions_, 0, s);
  last_estimate_ = total / static_cast<double>(s);

  // All d dim-major partial segments fold in ONE segmented reduction and
  // come back as one d-double transfer (bit-identical to d per-dimension
  // ReduceSum calls — same group tree per segment).
  ReduceSumSegments(device(), grad_partials_, 0, s, d, &grad_sums_);
  gradient->resize(d);
  device()->CopyToHost(grad_sums_, 0, d, gradient->data());
  const double inv_s = 1.0 / static_cast<double>(s);
  for (double& g : *gradient) g *= inv_s;
  return last_estimate_;
}

Event KdeEngine::EnqueueGradient() {
  const std::size_t s = sample_size();
  const std::size_t d = dims();
  // Section 5.5, steps 5-6, for the bounds of the last Estimate: partials
  // kernel, one segmented reduction, d-double read-back — all enqueued,
  // none waited for. The in-order queue sequences them; the read-back's
  // event is the collection handle. A still-pending previous gradient is
  // simply superseded: its commands complete in order and its staging
  // writes happen-before ours.
  EnqueueGradientPartialsKernel();
  CommandQueue* queue = device()->default_queue();
  EnqueueReduceSumSegments(queue, grad_partials_, 0, s, d, &grad_sums_);
  pending_gradient_ =
      queue->EnqueueCopyToHost(grad_sums_, 0, d, grad_staging_.data());
  gradient_pending_ = true;
  return pending_gradient_;
}

void KdeEngine::CollectGradient(std::vector<double>* gradient) {
  FKDE_CHECK_MSG(gradient_pending_, "no enqueued gradient to collect");
  pending_gradient_.Wait();
  pending_gradient_ = Event();
  gradient_pending_ = false;
  const std::size_t d = dims();
  gradient->resize(d);
  const double inv_s = 1.0 / static_cast<double>(sample_size());
  for (std::size_t j = 0; j < d; ++j) {
    (*gradient)[j] = grad_staging_[j] * inv_s;
  }
}

std::size_t KdeEngine::BatchTile(std::size_t queries,
                                 bool with_partials) const {
  const std::size_t per_query =
      sample_size() * (1 + (with_partials ? dims() : 0)) * sizeof(double);
  const std::size_t tile =
      std::max<std::size_t>(1, kMaxBatchTileBytes / std::max<std::size_t>(
                                                        per_query, 1));
  return std::min(tile, queries);
}

void KdeEngine::UploadBatchDescriptors(std::span<const Box> boxes,
                                       std::span<const double> truths) {
  const std::size_t m = boxes.size();
  const std::size_t d = dims();
  if (batch_bounds_.size() < m * (2 * d + 1)) {
    batch_bounds_ = device()->CreateBuffer<double>(m * (2 * d + 1));
  }
  std::vector<double> staging(m * 2 * d + truths.size());
  for (std::size_t q = 0; q < m; ++q) {
    FKDE_CHECK_MSG(boxes[q].dims() == d, "query dims mismatch");
    double* qb = staging.data() + q * 2 * d;
    for (std::size_t j = 0; j < d; ++j) {
      qb[j] = boxes[q].lower(j);
      qb[d + j] = boxes[q].upper(j);
    }
  }
  if (!truths.empty()) {
    std::copy(truths.begin(), truths.end(), staging.begin() + m * 2 * d);
  }
  device()->CopyToDevice(staging.data(), staging.size(), &batch_bounds_);
}

void KdeEngine::BatchContributionSums(
    std::span<const Box> boxes, bool with_partials,
    const std::function<void(std::size_t, std::size_t)>& fold) {
  const std::size_t m = boxes.size();
  const std::size_t s = sample_size();
  const std::size_t d = dims();
  const std::size_t tile = BatchTile(m, with_partials);
  if (batch_contrib_.size() < tile * s) {
    batch_contrib_ = device()->CreateBuffer<double>(tile * s);
  }
  if (with_partials && batch_partials_.size() < tile * d * s) {
    batch_partials_ = device()->CreateBuffer<double>(tile * d * s);
  }
  if (batch_est_.size() < m) {
    batch_est_ = device()->CreateBuffer<double>(m);
  }

  const float* data = sample_->buffer().device_data();
  const double* bounds = batch_bounds_.device_data();
  const double* h = bandwidth_dev_.device_data();
  double* contrib = batch_contrib_.device_data();
  double* partials = with_partials ? batch_partials_.device_data() : nullptr;
  const KernelType kernel = kernel_;
  const float* scales = has_scales_ ? point_scales_.device_data() : nullptr;

  for (std::size_t t0 = 0; t0 < m; t0 += tile) {
    const std::size_t t = std::min(tile, m - t0);
    if (!with_partials) {
      // Batched analogue of the single-query contribution kernel: each
      // work item owns a sample point and covers the whole query tile, so
      // all m contribution maps cost ONE launch (Figure 3 step 2,
      // batched). The query loop is hoisted outside the point loop so the
      // contrib writes of a work-group stay contiguous per query.
      auto body = [=](std::size_t begin, std::size_t end) {
        for (std::size_t q = 0; q < t; ++q) {
          const double* qb = bounds + (t0 + q) * 2 * d;
          double* out = contrib + q * s;
          for (std::size_t i = begin; i < end; ++i) {
            const float* row = data + i * d;
            const double scale =
                scales ? static_cast<double>(scales[i]) : 1.0;
            double prod = 1.0;
            for (std::size_t j = 0; j < d; ++j) {
              prod *= kernel::CdfDiff(kernel, static_cast<double>(row[j]),
                                      h[j] * scale, qb[j], qb[d + j]);
            }
            out[i] = prod;
          }
        }
      };
      device()->Launch("kde_batch_contributions", s,
                       static_cast<double>(t * d), body);
    } else {
      // Fused contribution+gradient kernel over the s×tile grid, reusing
      // the prefix/suffix-product scheme of EstimateWithGradient per
      // query. Partials are stored query-major ((q*d + j)*s + i) so both
      // the per-query segmented reduction and the loss-weighted fold
      // read contiguous segments.
      // Query loop outermost for the same reason as above: per (q, j)
      // the partial writes of a work-group land in one contiguous run.
      auto body = [=](std::size_t begin, std::size_t end) {
        double cdf[kMaxDims];
        double dcdf[kMaxDims];
        double suffix[kMaxDims + 1];
        for (std::size_t q = 0; q < t; ++q) {
          const double* qb = bounds + (t0 + q) * 2 * d;
          for (std::size_t i = begin; i < end; ++i) {
            const float* row = data + i * d;
            const double scale =
                scales ? static_cast<double>(scales[i]) : 1.0;
            for (std::size_t j = 0; j < d; ++j) {
              const double v = static_cast<double>(row[j]);
              const double hj = h[j] * scale;
              cdf[j] = kernel::CdfDiff(kernel, v, hj, qb[j], qb[d + j]);
              dcdf[j] = scale * kernel::CdfDiffDh(kernel, v, hj, qb[j],
                                                  qb[d + j]);
            }
            suffix[d] = 1.0;
            for (std::size_t j = d; j-- > 0;) {
              suffix[j] = suffix[j + 1] * cdf[j];
            }
            contrib[q * s + i] = suffix[0];
            double prefix = 1.0;
            for (std::size_t j = 0; j < d; ++j) {
              partials[(q * d + j) * s + i] = prefix * dcdf[j] * suffix[j + 1];
              prefix *= cdf[j];
            }
          }
        }
      };
      device()->Launch("kde_batch_contributions_grad", s,
                       3.0 * static_cast<double>(t * d), body);
    }
    // All tile estimates advance through every reduction level together.
    ReduceSumSegments(device(), batch_contrib_, 0, s, t, &batch_est_, t0);
    if (fold) fold(t0, t);
  }
}

void KdeEngine::EstimateBatch(std::span<const Box> boxes,
                              std::span<double> estimates) {
  FKDE_CHECK_MSG(estimates.size() == boxes.size(),
                 "estimate output arity mismatch");
  if (boxes.empty()) return;
  const std::size_t m = boxes.size();
  UploadBatchDescriptors(boxes, {});
  BatchContributionSums(boxes, /*with_partials=*/false, nullptr);
  device()->CopyToHost(batch_est_, 0, m, estimates.data());
  const double inv_s = 1.0 / static_cast<double>(sample_size());
  for (double& e : estimates) e *= inv_s;
}

void KdeEngine::EstimateBatchWithGradient(std::span<const Box> boxes,
                                          std::span<double> estimates,
                                          std::span<double> gradients) {
  FKDE_CHECK_MSG(estimates.size() == boxes.size(),
                 "estimate output arity mismatch");
  FKDE_CHECK_MSG(gradients.size() == boxes.size() * dims(),
                 "gradient output arity mismatch");
  if (boxes.empty()) return;
  const std::size_t m = boxes.size();
  const std::size_t s = sample_size();
  const std::size_t d = dims();
  if (batch_grad_.size() < m * d) {
    batch_grad_ = device()->CreateBuffer<double>(m * d);
  }
  UploadBatchDescriptors(boxes, {});
  auto fold = [this, s, d](std::size_t t0, std::size_t t) {
    // The tile's t*d gradient partial segments reduce as one batch.
    ReduceSumSegments(device(), batch_partials_, 0, s, t * d, &batch_grad_,
                      t0 * d);
  };
  BatchContributionSums(boxes, /*with_partials=*/true, fold);
  device()->CopyToHost(batch_est_, 0, m, estimates.data());
  device()->CopyToHost(batch_grad_, 0, m * d, gradients.data());
  const double inv_s = 1.0 / static_cast<double>(s);
  for (double& e : estimates) e *= inv_s;
  for (double& g : gradients) g *= inv_s;
}

double KdeEngine::EstimateBatchLoss(std::span<const Box> boxes,
                                    std::span<const double> truths,
                                    LossType loss, double lambda,
                                    std::vector<double>* gradient) {
  FKDE_CHECK_MSG(truths.size() == boxes.size(), "truth arity mismatch");
  FKDE_CHECK_MSG(!boxes.empty(), "batched loss needs at least one query");
  const std::size_t m = boxes.size();
  const std::size_t s = sample_size();
  const std::size_t d = dims();
  UploadBatchDescriptors(boxes, truths);
  // Pre-size the estimate buffer so its device pointer can be captured by
  // the fold kernels below (BatchContributionSums would otherwise grow it
  // after capture).
  if (batch_est_.size() < m) {
    batch_est_ = device()->CreateBuffer<double>(m);
  }
  const double* est = batch_est_.device_data();
  const double* truth_dev = batch_bounds_.device_data() + m * 2 * d;
  const double inv_s = 1.0 / static_cast<double>(s);

  if (gradient == nullptr) {
    BatchContributionSums(boxes, /*with_partials=*/false, nullptr);
    if (batch_results_.size() < d + 1) {
      batch_results_ = device()->CreateBuffer<double>(d + 1);
    }
    // One epilogue work item folds all m losses (Section 5.5 step 7 for
    // the whole batch); the scalar comes back in one read.
    double* results = batch_results_.device_data();
    auto body = [=](std::size_t begin, std::size_t end) {
      for (std::size_t item = begin; item < end; ++item) {
        double total = 0.0;
        for (std::size_t q = 0; q < m; ++q) {
          total += EvaluateLoss(loss, est[q] * inv_s, truth_dev[q], lambda);
        }
        results[item] = total;
      }
    };
    device()->Launch("kde_batch_loss", 1, static_cast<double>(m), body);
    double total = 0.0;
    device()->CopyToHost(batch_results_, 0, 1, &total);
    return total / static_cast<double>(m);
  }

  // Gradient path: the per-query ∂L/∂p̂ (eq. 14) is folded into the first
  // reduction level of the gradient partials, so only d+1 scalars — the d
  // loss-weighted gradient dot-products and the loss sum — ever reach the
  // host.
  const std::size_t gpseg = (s + kReduceGroupSize - 1) / kReduceGroupSize;
  if (batch_fold_.size() < (d + 1) * gpseg) {
    batch_fold_ = device()->CreateBuffer<double>((d + 1) * gpseg);
  }
  if (batch_results_.size() < d + 1) {
    batch_results_ = device()->CreateBuffer<double>(d + 1);
  }
  double loss_total = 0.0;
  std::vector<double> grad_total(d, 0.0);
  std::vector<double> tile_results(d + 1);
  auto fold = [&, est, truth_dev, inv_s, s, d, gpseg, loss,
               lambda](std::size_t t0, std::size_t t) {
    const double* partials = batch_partials_.device_data();
    double* fold_out = batch_fold_.device_data();
    // Items form d+1 segments of gpseg groups: segment k < d produces the
    // loss-weighted first reduction level of dimension k's partials;
    // segment d carries the tile's loss sum (group 0) padded with zeros,
    // so one segmented reduction finishes everything.
    auto body = [=](std::size_t begin, std::size_t end) {
      for (std::size_t item = begin; item < end; ++item) {
        const std::size_t k = item / gpseg;
        const std::size_t g = item % gpseg;
        if (k == d) {
          double total = 0.0;
          if (g == 0) {
            for (std::size_t q = 0; q < t; ++q) {
              total += EvaluateLoss(loss, est[t0 + q] * inv_s,
                                    truth_dev[t0 + q], lambda);
            }
          }
          fold_out[item] = total;
          continue;
        }
        const std::size_t lo = g * kReduceGroupSize;
        const std::size_t hi = std::min(lo + kReduceGroupSize, s);
        double acc = 0.0;
        for (std::size_t q = 0; q < t; ++q) {
          const double weight = LossDerivative(loss, est[t0 + q] * inv_s,
                                               truth_dev[t0 + q], lambda);
          const double* seg = partials + (q * d + k) * s;
          double sub = 0.0;
          for (std::size_t i = lo; i < hi; ++i) sub += seg[i];
          acc += weight * sub;
        }
        fold_out[item] = acc;
      }
    };
    device()->Launch("kde_batch_loss_grad_fold", (d + 1) * gpseg,
                     static_cast<double>(t * kReduceGroupSize), body);
    ReduceSumSegments(device(), batch_fold_, 0, gpseg, d + 1,
                      &batch_results_, 0);
    device()->CopyToHost(batch_results_, 0, d + 1, tile_results.data());
    for (std::size_t k = 0; k < d; ++k) grad_total[k] += tile_results[k];
    loss_total += tile_results[d];
  };
  BatchContributionSums(boxes, /*with_partials=*/true, fold);

  gradient->resize(d);
  const double inv_ms = 1.0 / (static_cast<double>(m) * static_cast<double>(s));
  for (std::size_t k = 0; k < d; ++k) (*gradient)[k] = grad_total[k] * inv_ms;
  return loss_total / static_cast<double>(m);
}

std::size_t KdeEngine::ModelBytes() const {
  return sample_->PayloadBytes() + bandwidth_.size() * sizeof(double) +
         sample_size() * sizeof(double);
}

}  // namespace fkde
